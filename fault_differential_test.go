package dsmrace

import (
	"errors"
	"testing"

	"dsmrace/internal/dsm"
	"dsmrace/internal/fault"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
	"dsmrace/internal/workload"
)

// runFaulty executes one workload with an optional fault schedule and
// returns its fingerprint plus the cluster for pool audits. kernels=0 is
// the plain single kernel.
func runFaulty(t *testing.T, w workload.Workload, sched *fault.Schedule,
	kernels int, seed int64, mut func(*rdma.Config), opts ...func(*dsm.Config)) (multiFingerprint, *dsm.Cluster) {
	t.Helper()
	d, err := NewDetector("vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rdma.DefaultConfig(d, nil)
	if mut != nil {
		mut(&rcfg)
	}
	cfg := dsm.Config{
		Procs: w.Procs, Seed: seed, RDMA: rcfg,
		Kernels: kernels, Partition: "blocks", Label: w.Name, Faults: sched,
	}
	if w.SharedRand {
		cfg.SerialOnly = true
	}
	if cfg.LocalityGroup == 0 {
		cfg.LocalityGroup = w.LocalityGroup
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	c, err := dsm.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Setup(c); err != nil {
		t.Fatal(err)
	}
	res, err := c.RunEach(w.Programs())
	if err != nil {
		t.Fatalf("kernels=%d: %v", kernels, err)
	}
	if ferr := res.FirstError(); ferr != nil {
		t.Fatalf("kernels=%d: %v", kernels, ferr)
	}
	return multiFingerprintOf(res), c
}

func auditPools(t *testing.T, c *dsm.Cluster, label string) {
	t.Helper()
	sys := c.System()
	for s := 0; s < sys.PoolShards(); s++ {
		if b := sys.PoolBalanceShard(s); b != (rdma.PoolBalance{}) {
			t.Fatalf("%s: pool shard %d unbalanced: %+v", label, s, b)
		}
	}
}

// TestFaultZeroFaultDifferential is the tentpole's first gate: enabling the
// fault layer with a benign schedule — the machinery threaded, no events,
// no drop rules — must leave every fingerprint bit-identical to a run with
// no fault layer at all, at K ∈ {1, 2, 4}, with every pool balanced.
func TestFaultZeroFaultDifferential(t *testing.T) {
	workloads := []workload.Workload{
		workload.Migratory(16, 3, 4),
		workload.MigratoryGroups(16, 4, 2, 4),
		workload.ProducerConsumerChain(8, 2, 4, 2),
	}
	benign := &fault.Schedule{Seed: 7}
	for _, w := range workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, _ := runFaulty(t, w, nil, 0, 3, nil)
			for _, k := range []int{1, 2, 4} {
				got, c := runFaulty(t, w, benign, k, 3, nil)
				g, wnt := got, want
				g.kernels, wnt.kernels = 0, 0
				if g != wnt {
					t.Fatalf("k=%d: benign fault layer perturbed the run:\n got  %+v\n want %+v", k, g, wnt)
				}
				auditPools(t, c, w.Name)
			}
		})
	}
}

// TestFaultArmedIdleDifferential pins the armed-but-idle contract: a
// schedule whose only content is a zero-probability drop rule arms every
// deadline (the rule itself is pruned from the per-send consult path at Arm
// time, since it can never fire), yet never perturbs
// behaviour — races, messages, bytes, virtual duration and final memory all
// match the fault-free run. Only the event count may grow (watchdog scans),
// which is exactly the overhead the E_Fault bench family meters in wall
// time.
func TestFaultArmedIdleDifferential(t *testing.T) {
	w := workload.Migratory(16, 3, 4)
	armed := &fault.Schedule{
		Seed: 7,
		Drop: []fault.DropRule{{Kind: fault.AnyKind, Src: fault.AnyNode, Dst: fault.AnyNode, P: 0}},
	}
	clean, _ := runFaulty(t, w, nil, 0, 3, nil)
	want, _ := runFaulty(t, w, armed, 0, 3, nil)
	// Against the fault-free run only the bookkeeping may move: watchdog
	// scans add events, and the last op's already-filed deadline scan
	// stretches the virtual end time. Races, messages, bytes and memory
	// must not.
	a, b := want, clean
	a.events, b.events = 0, 0
	a.dur, b.dur = 0, 0
	if a != b {
		t.Fatalf("armed-idle run diverged beyond bookkeeping:\n got  %+v\n want %+v", a, b)
	}
	// Across kernel counts the armed run is bit-identical to itself.
	for _, k := range []int{1, 2, 4} {
		got, c := runFaulty(t, w, armed, k, 3, nil)
		g, wnt := got, want
		g.kernels, wnt.kernels = 0, 0
		if g != wnt {
			t.Fatalf("k=%d: armed-idle run not deterministic:\n got  %+v\n want %+v", k, g, wnt)
		}
		auditPools(t, c, "armed-idle")
	}
}

// hostileSchedule is the determinism suite's adversarial plan: background
// loss on every message kind, a link outage window, and a crash with
// re-homing followed by a restart.
func hostileSchedule() *fault.Schedule {
	return &fault.Schedule{
		Seed: 11,
		Events: []fault.Event{
			{At: 20 * sim.Microsecond, Op: fault.CutLink, Src: 1, Dst: 2},
			{At: 80 * sim.Microsecond, Op: fault.HealLink, Src: 1, Dst: 2},
			{At: 100 * sim.Microsecond, Op: fault.Crash, Node: 2},
			{At: 240 * sim.Microsecond, Op: fault.Restart, Node: 2},
		},
		Drop: []fault.DropRule{{Kind: fault.AnyKind, Src: fault.AnyNode, Dst: fault.AnyNode, P: 0.03}},
	}
}

// TestFaultScheduleDeterminism is the tentpole's second gate: a hostile
// schedule — drops, a partition window, a crash with failover and restart —
// must replay bit-identically across 3 repeated runs and across kernel
// counts, with every pooled struct reclaimed. The workloads are the hostile
// (barrier-free, unreachable-tolerant) uniform and group patterns.
func TestFaultScheduleDeterminism(t *testing.T) {
	workloads := []workload.Workload{
		workload.HostileUniform(12, 24, 4, 40),
		workload.HostileGroups(12, 4, 6, 4),
	}
	sched := hostileSchedule()
	for _, w := range workloads {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			want, _ := runFaulty(t, w, sched, 0, 5, nil)
			for _, k := range []int{1, 2, 4, 8} {
				for rep := 0; rep < 3; rep++ {
					got, c := runFaulty(t, w, sched, k, 5, nil)
					g, wnt := got, want
					g.kernels, wnt.kernels = 0, 0
					if g != wnt {
						t.Fatalf("k=%d rep=%d: faulty schedule not deterministic:\n got  %+v\n want %+v",
							k, rep, g, wnt)
					}
					auditPools(t, c, w.Name)
				}
				// The window-machinery sweep: one-lookahead synchronous
				// windows and forced pipelining must replay the hostile
				// schedule bit-identically too.
				for _, mode := range windowModes {
					got, c := runFaulty(t, w, sched, k, 5, nil, mode.opt)
					g, wnt := got, want
					g.kernels, wnt.kernels = 0, 0
					if g != wnt {
						t.Fatalf("k=%d %s: faulty schedule not deterministic:\n got  %+v\n want %+v",
							k, mode.name, g, wnt)
					}
					auditPools(t, c, w.Name+"/"+mode.name)
				}
			}
		})
	}
}

// TestFaultHealBeforeRetry pins retry idempotence end to end: a link outage
// shorter than the retry budget's reach drops first attempts, the home
// serves retransmissions (deduplicating re-granted locks by request id),
// and every operation still completes — the run's final memory is
// bit-identical to the fault-free run's, no operation surfaces
// ErrUnreachable, and the outcome is identical at every kernel count.
func TestFaultHealBeforeRetry(t *testing.T) {
	w := workload.HostileMigratory(6, 8, 4)
	sched := &fault.Schedule{
		Seed: 3,
		Events: []fault.Event{
			{At: 30 * sim.Microsecond, Op: fault.CutLink, Src: 2, Dst: 0},
			{At: 95 * sim.Microsecond, Op: fault.HealLink, Src: 2, Dst: 0},
		},
	}
	clean, _ := runFaulty(t, w, nil, 0, 9, nil)
	want, _ := runFaulty(t, w, sched, 0, 9, nil)
	if want.memory != clean.memory {
		t.Fatalf("heal-before-retry lost operations:\n faulty %q\n clean  %q", want.memory, clean.memory)
	}
	for _, k := range []int{1, 2, 4} {
		got, c := runFaulty(t, w, sched, k, 9, nil)
		g, wnt := got, want
		g.kernels, wnt.kernels = 0, 0
		if g != wnt {
			t.Fatalf("k=%d: heal-before-retry run not deterministic:\n got  %+v\n want %+v", k, g, wnt)
		}
		auditPools(t, c, "heal-before-retry")
	}
}

// TestFaultCrashRehoming pins crash recovery without restart: the crashed
// node's home areas re-home to the deterministic successor after
// FailoverDelay, survivors complete against it, and the whole thing replays
// identically across kernel counts with balanced pools.
func TestFaultCrashRehoming(t *testing.T) {
	w := workload.HostileGroups(8, 4, 6, 4)
	sched := &fault.Schedule{
		Seed: 13,
		Events: []fault.Event{
			// Node 0 homes the first group's area; its crash forces the
			// group onto the successor for the rest of the run.
			{At: 60 * sim.Microsecond, Op: fault.Crash, Node: 0},
		},
	}
	want, _ := runFaulty(t, w, sched, 0, 7, nil)
	for _, k := range []int{1, 2, 4} {
		got, c := runFaulty(t, w, sched, k, 7, nil)
		g, wnt := got, want
		g.kernels, wnt.kernels = 0, 0
		if g != wnt {
			t.Fatalf("k=%d: crash re-homing not deterministic:\n got  %+v\n want %+v", k, g, wnt)
		}
		auditPools(t, c, "crash-rehoming")
	}
}

// TestFaultCoherenceBackends runs the fault differential against the causal
// and MESI backends: a benign fault layer must stay invisible at every
// kernel count, and a hostile schedule — drops, an outage window, a crash
// with restart — must replay bit-identically, with every pooled struct
// (including the MESI downgrade/writeback path's) reclaimed to zero
// balance.
func TestFaultCoherenceBackends(t *testing.T) {
	for _, coh := range []string{"causal", "mesi"} {
		coh := coh
		mut := func(c *rdma.Config) { c.Coherence = mustCoherence(coh) }
		t.Run(coh, func(t *testing.T) {
			w := workload.Migratory(16, 3, 4)
			benign := &fault.Schedule{Seed: 7}
			want, _ := runFaulty(t, w, nil, 0, 3, mut)
			for _, k := range []int{1, 2, 4} {
				got, c := runFaulty(t, w, benign, k, 3, mut)
				g, wnt := got, want
				g.kernels, wnt.kernels = 0, 0
				if g != wnt {
					t.Fatalf("k=%d: benign fault layer perturbed a %s run:\n got  %+v\n want %+v", k, coh, g, wnt)
				}
				auditPools(t, c, coh+"/benign")
			}
			hw := workload.HostileUniform(12, 24, 4, 40)
			sched := hostileSchedule()
			hwant, _ := runFaulty(t, hw, sched, 0, 5, mut)
			for _, k := range []int{1, 2, 4} {
				got, c := runFaulty(t, hw, sched, k, 5, mut)
				g, wnt := got, hwant
				g.kernels, wnt.kernels = 0, 0
				if g != wnt {
					t.Fatalf("k=%d: hostile %s schedule not deterministic:\n got  %+v\n want %+v", k, coh, g, wnt)
				}
				auditPools(t, c, coh+"/hostile")
			}
		})
	}
}

// TestFaultFacadeRunSpec pins the facade plumbing: RunSpec.Faults reaches
// the cluster, a benign schedule stays invisible, and a hostile one leaves
// the run deterministic.
func TestFaultFacadeRunSpec(t *testing.T) {
	spec := RunSpec{
		Procs:    8,
		Seed:     2,
		Detector: "vw-exact",
		Setup:    func(c *Cluster) error { return c.Alloc("obj", 0, 4) },
		Program: func(p *Proc) error {
			for r := 0; r < 3; r++ {
				if p.Crashed() {
					return nil
				}
				if err := p.Put("obj", p.ID()%4, Word(p.ID())); err != nil {
					if errors.Is(err, ErrUnreachable) {
						continue
					}
					return err
				}
			}
			return nil
		},
	}
	base, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = &FaultSchedule{Seed: 1}
	benign, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintOf(base) != fingerprintOf(benign) {
		t.Fatalf("benign RunSpec.Faults perturbed the run:\n got  %+v\n want %+v",
			fingerprintOf(benign), fingerprintOf(base))
	}
	spec.Faults = &FaultSchedule{
		Seed: 1,
		Drop: []DropRule{{Kind: FaultAnyKind, Src: FaultAnyNode, Dst: FaultAnyNode, P: 0.05}},
	}
	first, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintOf(first) != fingerprintOf(second) {
		t.Fatalf("hostile RunSpec.Faults not deterministic:\n first  %+v\n second %+v",
			fingerprintOf(first), fingerprintOf(second))
	}
}
