package dsmrace

import (
	"strings"
	"testing"
)

func TestLiteralRejectsNonClockDetectors(t *testing.T) {
	for _, det := range []string{"epoch", "lockset"} {
		_, err := Run(RunSpec{
			Procs: 2, Detector: det, Protocol: "literal",
			Setup:   func(c *Cluster) error { return c.Alloc("x", 0, 1) },
			Program: func(p *Proc) error { return nil },
		})
		if err == nil || !strings.Contains(err.Error(), "clock-based") {
			t.Errorf("%s+literal: err = %v, want clock-based rejection", det, err)
		}
	}
}
