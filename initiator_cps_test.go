package dsmrace

import (
	"runtime"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/dsm"
	"dsmrace/internal/network"
	"dsmrace/internal/rdma"
	"dsmrace/internal/workload"
)

// fingerprint condenses everything observable about a run.
type runFingerprint struct {
	races  int
	dur    int64
	events uint64
	stats  network.Stats
	hash   string
}

func fingerprintOf(res *Result) runFingerprint {
	return runFingerprint{
		races:  res.RaceCount,
		dur:    int64(res.Duration),
		events: res.Events,
		stats:  res.NetStats,
		hash:   reportHash(res),
	}
}

// TestInitiatorPathDifferential runs the same adversarial schedules under
// the continuation-passing initiator path and the legacy parked path
// (Config.LegacyInitiator) and requires bit-identical fingerprints — race
// reports, virtual durations, *event counts* and per-kind message totals.
// The CPS conversion relocates work between goroutines and event
// continuations but must not move a single event: every intermediate hop's
// continuation occupies exactly the (time, seq) slot the parked path's
// process wakeup occupied.
func TestInitiatorPathDifferential(t *testing.T) {
	type variant struct {
		name string
		mut  func(*rdma.Config)
		jit  float64
	}
	variants := []variant{
		{name: "piggyback", mut: func(c *rdma.Config) {}},
		{name: "piggyback-jitter", mut: func(c *rdma.Config) {}, jit: 0.3},
		{name: "literal", mut: func(c *rdma.Config) { c.Protocol = rdma.ProtocolLiteral }},
		{name: "literal-jitter", mut: func(c *rdma.Config) { c.Protocol = rdma.ProtocolLiteral }, jit: 0.3},
		{name: "write-invalidate", mut: func(c *rdma.Config) {
			c.Coherence = mustCoherenceProtocol(t, "write-invalidate")
		}},
		{name: "compress-word", mut: func(c *rdma.Config) {
			c.CompressClocks = true
			c.Granularity = rdma.GranularityWord
		}},
		{name: "no-absorb", mut: func(c *rdma.Config) {
			c.AbsorbOnGetReply = false
			c.AbsorbOnPutAck = false
		}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 23} {
				run := func(legacy bool) runFingerprint {
					d, err := NewDetector("vw-exact")
					if err != nil {
						t.Fatal(err)
					}
					cfg := rdma.DefaultConfig(d, nil)
					v.mut(&cfg)
					cfg.LegacyInitiator = legacy
					var lat network.LatencyModel
					if v.jit > 0 {
						lat = network.Jitter{Base: network.DefaultIB(), Frac: v.jit}
					}
					w := workload.Random(workload.RandomSpec{
						Procs: 6, Areas: 8, AreaWords: 4, OpsPerProc: 50,
						ReadPercent: 40, BarrierEvery: 20,
					})
					res, err := w.Run(dsm.Config{Seed: seed, Latency: lat, RDMA: cfg})
					if err != nil {
						t.Fatal(err)
					}
					return fingerprintOf(res)
				}
				cps, legacy := run(false), run(true)
				if cps != legacy {
					t.Errorf("seed %d: CPS and parked paths diverged:\n cps    %+v\n parked %+v",
						seed, cps, legacy)
				}
			}
		})
	}
}

// TestGoroutineFlatness pins the continuation-passing property the tentpole
// is named for: remote operations schedule no goroutines. Across 10k remote
// operations per process the process count of the whole program stays flat —
// one goroutine per simulated process for the lifetime of the run, zero
// per-operation hand-off goroutines.
func TestGoroutineFlatness(t *testing.T) {
	const procs, ops, samples = 4, 10_000, 8
	base := runtime.NumGoroutine()
	d, err := NewDetector("vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	c, err := dsm.New(dsm.Config{Procs: procs, Seed: 5, RDMA: rdma.DefaultConfig(d, nil)})
	if err != nil {
		t.Fatal(err)
	}
	c.MustAlloc("x", 0, 8)
	var minG, maxG int
	res, err := c.Run(func(p *dsm.Proc) error {
		for i := 0; i < ops; i++ {
			if i%2 == 0 {
				if err := p.Put("x", p.ID()%8, Word(i)); err != nil {
					return err
				}
			} else if _, err := p.Get("x", 0, 4); err != nil {
				return err
			}
			if p.ID() == 0 && i%(ops/samples) == 0 {
				g := runtime.NumGoroutine()
				if minG == 0 || g < minG {
					minG = g
				}
				if g > maxG {
					maxG = g
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ferr := res.FirstError(); ferr != nil {
		t.Fatal(ferr)
	}
	if minG == 0 {
		t.Fatal("no goroutine samples taken")
	}
	// Flat means flat: the simulation itself may not add or drop a single
	// goroutine between samples (the runtime's own background goroutines
	// get a tolerance of the process count).
	if maxG-minG > procs {
		t.Errorf("goroutine count varied %d..%d across %d remote ops/proc; remote operations must not spawn or retire goroutines",
			minG, maxG, ops)
	}
	if maxG > base+2*procs+4 {
		t.Errorf("goroutine high-water %d vs %d before the run: more than one goroutine per process in flight",
			maxG, base)
	}
}

func mustCoherenceProtocol(t *testing.T, name string) coherence.Protocol {
	t.Helper()
	p, err := coherence.FromName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
