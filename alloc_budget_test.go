package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/vclock"
)

// TestOnAccessAllocationBudget pins the zero-allocation contract of the
// detection hot path: once warm, a steady-state OnAccess step performs no
// allocation when it does not race, and at most one (the report) when it
// does. The absorb scratch buffer is threaded back in exactly as the NIC
// does.
func TestOnAccessAllocationBudget(t *testing.T) {
	// 16 is the historical debugging-scale size; 256 is the E_Scale regime —
	// the zero-allocation contract must hold at every measured cluster size.
	for _, n := range []int{16, 256} {
		n := n
		// Quiet stream: one writer whose node is the home — every access is
		// causally after the last, so no detector reports.
		t.Run(fmt.Sprintf("quiet/n=%d", n), func(t *testing.T) {
			for _, d := range benchDetectors() {
				d := d
				t.Run(d.Name(), func(t *testing.T) {
					st := d.NewAreaState(n)
					clk := vclock.New(n)
					var scratch vclock.Masked
					seq := uint64(0)
					step := func() {
						seq++
						clk.Tick(0)
						rep, absorbed := st.OnAccess(core.Access{
							Proc: 0, Seq: seq, Kind: core.Write, Clock: clk,
						}, 0, scratch)
						if rep != nil {
							t.Fatal("quiet stream raced")
						}
						if !absorbed.IsNil() {
							scratch = absorbed
						}
					}
					for i := 0; i < 32; i++ {
						step() // warm the state-owned buffers
					}
					if avg := testing.AllocsPerRun(100, step); avg > 0 {
						t.Errorf("steady-state quiet OnAccess allocates %.2f/op, want 0", avg)
					}
				})
			}
		})

		// Racing stream: rotating writers that never gossip — every access is
		// concurrent with the stored clock for the clock-based detectors. The
		// only permitted allocation is the race report itself.
		t.Run(fmt.Sprintf("racing/n=%d", n), func(t *testing.T) {
			for _, d := range benchDetectors() {
				d := d
				t.Run(d.Name(), func(t *testing.T) {
					st := d.NewAreaState(n)
					clocks := make([]vclock.VC, n)
					for i := range clocks {
						clocks[i] = vclock.New(n)
					}
					var scratch vclock.Masked
					seq, proc := uint64(0), 0
					step := func() {
						seq++
						proc = (proc + 1) % n
						clocks[proc].Tick(proc)
						_, absorbed := st.OnAccess(core.Access{
							Proc: proc, Seq: seq, Kind: core.Write, Clock: clocks[proc],
						}, 0, scratch)
						if !absorbed.IsNil() {
							scratch = absorbed
						}
					}
					for i := 0; i < 3*n; i++ {
						step()
					}
					if avg := testing.AllocsPerRun(100, step); avg > 1 {
						t.Errorf("steady-state racing OnAccess allocates %.2f/op, want <= 1 (the report)", avg)
					}
				})
			}
		})
	}
}
