package dsmrace

import (
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/workload"
)

// sampledRun executes the racy mixed workload with the given collector.
func sampledRun(t *testing.T, col *core.Collector) *Result {
	t.Helper()
	d, err := NewDetector("vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	cfg := rdma.DefaultConfig(d, col)
	w := workload.Random(workload.RandomSpec{
		Procs: 6, Areas: 8, AreaWords: 4, OpsPerProc: 60, ReadPercent: 40, BarrierEvery: 20,
	})
	res, err := w.Run(dsm.Config{Seed: 3, RDMA: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSamplingCollectorDeterministicSubset pins the sampling collector's
// contract: with a fixed schedule, the sampled report set is exactly the
// subset of the full run's reports selected by replaying the stride and
// per-area-cap decisions over the full signal sequence — same reports, same
// relative order — and the total race count is unchanged.
func TestSamplingCollectorDeterministicSubset(t *testing.T) {
	full := sampledRun(t, &core.Collector{})
	if full.RaceCount < 20 {
		t.Fatalf("workload signalled only %d races; need a racy schedule", full.RaceCount)
	}
	for _, spec := range []core.SampleSpec{
		{EveryN: 3},
		{AreaCap: 4},
		{EveryN: 2, AreaCap: 3},
	} {
		spec := spec
		col := &core.Collector{Sample: spec}
		res := sampledRun(t, col)
		if res.RaceCount != full.RaceCount {
			t.Fatalf("%+v: sampling changed RaceCount: %d vs %d", spec, res.RaceCount, full.RaceCount)
		}
		// Replay the sampling decision over the full report stream.
		var want []string
		areaCount := map[int]int{}
		for i, r := range full.Races {
			if spec.EveryN > 1 && i%spec.EveryN != 0 {
				continue
			}
			if spec.AreaCap > 0 {
				if areaCount[int(r.Area)] >= spec.AreaCap {
					continue
				}
				areaCount[int(r.Area)]++
			}
			want = append(want, r.String())
		}
		if len(res.Races) != len(want) {
			t.Fatalf("%+v: stored %d reports, want %d (of %d full)", spec, len(res.Races), len(want), len(full.Races))
		}
		for i, r := range res.Races {
			if r.String() != want[i] {
				t.Fatalf("%+v: sampled report %d is not the expected subset element:\n got  %s\n want %s",
					spec, i, r, want[i])
			}
		}
		st := col.SampleStats()
		if st.Seen != len(full.Races) || st.Stored != len(want) {
			t.Fatalf("%+v: SampleStats %+v inconsistent (full=%d stored=%d)", spec, st, len(full.Races), len(want))
		}
		if st.Stored+st.DroppedStride+st.DroppedAreaCap != st.Seen {
			t.Fatalf("%+v: SampleStats don't add up: %+v", spec, st)
		}
	}
}

// TestSamplingCollectorDefaultOff pins that the zero SampleSpec changes
// nothing: same stored reports as an unsampled collector.
func TestSamplingCollectorDefaultOff(t *testing.T) {
	full := sampledRun(t, &core.Collector{})
	again := sampledRun(t, &core.Collector{Sample: core.SampleSpec{}})
	if len(full.Races) != len(again.Races) || full.RaceCount != again.RaceCount {
		t.Fatalf("zero SampleSpec altered collection: %d/%d vs %d/%d",
			len(again.Races), again.RaceCount, len(full.Races), full.RaceCount)
	}
}
