module dsmrace

go 1.24
