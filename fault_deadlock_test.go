package dsmrace

import (
	"errors"
	"strings"
	"testing"

	"dsmrace/internal/sim"
)

// TestFaultDeadlockNamesCrashAwait pins the deadlock-report contract at the
// facade: a program parked on a restart that never comes surfaces as a
// DeadlockError whose blocked line names the crash wait, not a generic park.
func TestFaultDeadlockNamesCrashAwait(t *testing.T) {
	spec := RunSpec{
		Procs:    4,
		Seed:     6,
		Detector: "vw-exact",
		Faults: &FaultSchedule{
			Seed:   5,
			Events: []FaultEvent{{At: 30 * sim.Microsecond, Op: FaultCrash, Node: 2}},
		},
		Setup: func(c *Cluster) error { return c.Alloc("a", 0, 4) },
		Program: func(p *Proc) error {
			if p.ID() == 2 {
				// Keep issuing until the crash lands, then wait for a
				// restart that is not on the schedule.
				for !p.Crashed() {
					if err := p.Put("a", 0, 1); err != nil && !errors.Is(err, ErrUnreachable) {
						return err
					}
				}
				p.AwaitRestart()
				return nil
			}
			for i := 0; i < 10; i++ {
				if err := p.Put("a", 1, Word(i)); err != nil && !errors.Is(err, ErrUnreachable) {
					return err
				}
			}
			return nil
		},
	}
	_, err := Run(spec)
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if !strings.Contains(err.Error(), "crashed (await restart)") {
		t.Fatalf("deadlock report %q does not name the crash wait", err)
	}
}
