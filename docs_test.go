package dsmrace

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope; the repository's docs use inline
// links only.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownRelativeLinks fails on broken relative links in any *.md
// file of the repository — the docs gate CI runs. External URLs and
// pure in-page anchors are skipped; anchored file links are checked for
// the file part.
func TestMarkdownRelativeLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — link gate misconfigured")
	}
	for _, md := range mdFiles {
		raw, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			switch {
			case strings.Contains(target, "://"), strings.HasPrefix(target, "mailto:"):
				continue // external
			case strings.HasPrefix(target, "#"):
				continue // in-page anchor
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
