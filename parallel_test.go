package dsmrace

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"strings"
	"testing"
)

// trialSpec builds the i-th trial of a small mixed grid: seeds and
// coherence protocols vary with the trial index, everything is built inside
// the trial (the concurrency contract).
func trialSpec(i int) RunSpec {
	coh := "write-update"
	if i%2 == 1 {
		coh = "write-invalidate"
	}
	return RunSpec{
		Procs:     3,
		Seed:      int64(i / 2),
		Detector:  "vw-exact",
		Coherence: coh,
		Setup:     func(c *Cluster) error { return c.Alloc("x", 0, 4) },
		Program: func(p *Proc) error {
			for k := 0; k < 10; k++ {
				if (p.ID()+k)%2 == 0 {
					if err := p.Put("x", k%4, Word(k)); err != nil {
						return err
					}
				} else if _, err := p.GetWord("x", (k+1)%4); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// mergedFingerprint hashes everything observable about a merged result
// list: order, race reports, traffic, durations.
func mergedFingerprint(results []*Result) string {
	h := sha256.New()
	for i, res := range results {
		fmt.Fprintf(h, "%d %d %d %d %d %s\n", i, res.RaceCount, res.NetStats.TotalMsgs,
			res.NetStats.TotalBytes, int64(res.Duration), reportHash(res))
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// TestParallelMergeDeterminism is the driver's acceptance property: the
// merged output of a fixed trial list is bit-identical no matter how many
// workers run it or what GOMAXPROCS is.
func TestParallelMergeDeterminism(t *testing.T) {
	const trials = 12
	run := func(workers int) string {
		results, err := Parallel(trials, workers, func(i int) (*Result, error) {
			return Run(trialSpec(i))
		})
		if err != nil {
			t.Fatal(err)
		}
		return mergedFingerprint(results)
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8, 0} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: merged fingerprint %s, want %s", workers, got, want)
		}
	}
	// And under a different GOMAXPROCS entirely.
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := run(0); got != want {
		t.Errorf("GOMAXPROCS=2: merged fingerprint %s, want %s", got, want)
	}
}

// TestParallelErrorIsLowestIndexed: the returned error must not depend on
// completion order.
func TestParallelErrorIsLowestIndexed(t *testing.T) {
	_, err := Parallel(8, 4, func(i int) (int, error) {
		if i == 6 || i == 3 {
			return 0, fmt.Errorf("trial %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "trial 3 failed" {
		t.Fatalf("err = %v, want trial 3's", err)
	}
	out, err := Parallel(5, 3, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (order not preserved)", i, v, i*i)
		}
	}
}

// TestRunManyMatchesRun: RunMany's per-spec results equal individual Run
// calls.
func TestRunManyMatchesRun(t *testing.T) {
	specs := make([]RunSpec, 6)
	for i := range specs {
		specs[i] = trialSpec(i)
	}
	many, err := RunMany(specs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		solo, err := Run(trialSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		if many[i].RaceCount != solo.RaceCount || many[i].NetStats != solo.NetStats ||
			many[i].Duration != solo.Duration || reportHash(many[i]) != reportHash(solo) {
			t.Errorf("spec %d: RunMany result diverges from Run", i)
		}
	}
}

// TestExploreSchedulesDeterministicAcrossWorkers: the seed-sweep report is
// identical whether the sweep runs serially (ExploreSchedules' contract)
// or fanned across any number of workers.
func TestExploreSchedulesDeterministicAcrossWorkers(t *testing.T) {
	spec := RunSpec{
		Procs:    3,
		Detector: "vw-exact",
		Setup:    func(c *Cluster) error { return c.Alloc("x", 0, 1) },
		Program:  func(p *Proc) error { return p.Put("x", 0, Word(p.ID()+1)) },
	}
	sweep := func(workers int) string {
		rep, err := ExploreSchedulesParallel(spec, SeedRange(12), workers)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v/%s", rep.RaceCounts, mergedFingerprint(rep.Results))
	}
	serial, err := ExploreSchedules(spec, SeedRange(12))
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v/%s", serial.RaceCounts, mergedFingerprint(serial.Results))
	for _, workers := range []int{1, 3, 0} {
		if got := sweep(workers); got != want {
			t.Errorf("workers=%d: sweep diverged:\n  %s\n  %s", workers, got, want)
		}
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := sweep(0); got != want {
		t.Errorf("GOMAXPROCS=2: sweep diverged:\n  %s\n  %s", got, want)
	}
}

// TestExploreSchedulesNamesFailingSeed: a failing trial's error must
// identify the seed to re-run.
func TestExploreSchedulesNamesFailingSeed(t *testing.T) {
	spec := RunSpec{
		Procs: 2,
		Setup: func(c *Cluster) error { return c.Alloc("x", 0, 1) },
		Program: func(p *Proc) error {
			return fmt.Errorf("boom")
		},
	}
	_, err := ExploreSchedules(spec, []int64{5, 6})
	if err == nil || !strings.Contains(err.Error(), "seed 5") {
		t.Fatalf("err = %v, want mention of seed 5", err)
	}
}
