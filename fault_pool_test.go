package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/fault"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
	"dsmrace/internal/workload"
)

// This file is the pool-ownership stress suite for the fault layer: every
// scenario that interrupts a pooled struct's lifecycle mid-flight — a crash
// while a lock is held, a crash while fetches are outstanding, sustained
// probabilistic loss — must still reclaim every req, resp, op and clock into
// the shard pool that owns it, at one kernel and at four.

// runFaultyAudited runs the workload under the schedule at K ∈ {1, 4} —
// and again at K=4 under each window-machinery mode (one-lookahead
// synchronous windows, forced pipelining) — audits every pool shard after
// each run, and checks every variant agrees with K=1 bit-for-bit.
func runFaultyAudited(t *testing.T, w workload.Workload, sched *fault.Schedule,
	seed int64, mut func(*rdma.Config)) {
	t.Helper()
	want, c := runFaulty(t, w, sched, 1, seed, mut)
	auditPools(t, c, w.Name+"/k=1")
	got, c := runFaulty(t, w, sched, 4, seed, mut)
	auditPools(t, c, w.Name+"/k=4")
	g, wnt := got, want
	g.kernels, wnt.kernels = 0, 0
	if g != wnt {
		t.Fatalf("k=4 diverged from k=1:\n got  %+v\n want %+v", g, wnt)
	}
	for _, mode := range windowModes {
		got, c := runFaulty(t, w, sched, 4, seed, mut, mode.opt)
		auditPools(t, c, w.Name+"/k=4/"+mode.name)
		g := got
		g.kernels = 0
		if g != wnt {
			t.Fatalf("k=4 %s diverged from k=1:\n got  %+v\n want %+v", mode.name, g, wnt)
		}
	}
}

// TestFaultPoolCrashMidLockTenure crashes a node while the migratory lock is
// live: once the lock's home (node 0 — its grant tables, waiter queues and
// queued payloads die mid-protocol) and once a client caught holding or
// awaiting the lock. Both sweeps must complete every interrupted lifecycle:
// queued home-side reqs released, tenures expired, joins drained — pools
// balanced on every shard.
func TestFaultPoolCrashMidLockTenure(t *testing.T) {
	w := workload.HostileMigratory(6, 8, 4)
	for name, node := range map[string]int{"crash-lock-home": 0, "crash-lock-client": 3} {
		node := node
		t.Run(name, func(t *testing.T) {
			sched := &fault.Schedule{
				Seed:   21,
				Events: []fault.Event{{At: 50 * sim.Microsecond, Op: fault.Crash, Node: node}},
			}
			runFaultyAudited(t, w, sched, 17, nil)
		})
	}
}

// TestFaultPoolCrashMidFetch runs write-invalidate — the protocol whose
// fetches and invalidation rounds keep the most pooled state in flight — and
// crashes a home while the uniform workload hammers it. Outstanding fetch
// replies are dropped at the dead source, invalidation rounds are force-
// drained, and the sweep's orphan absorption must leave zero leaks.
func TestFaultPoolCrashMidFetch(t *testing.T) {
	w := workload.HostileUniform(8, 16, 4, 24)
	sched := &fault.Schedule{
		Seed: 23,
		Events: []fault.Event{
			{At: 40 * sim.Microsecond, Op: fault.Crash, Node: 1},
			{At: 200 * sim.Microsecond, Op: fault.Restart, Node: 1},
		},
	}
	runFaultyAudited(t, w, sched, 19, func(c *rdma.Config) {
		c.Coherence = mustCoherence("write-invalidate")
	})
}

// TestFaultPoolDropSweep sweeps the background loss rate from light to
// brutal. Every dropped message routes its pooled payload through the drop
// hooks (reclaim, NACK bounce, or loss notification) — whatever the rate,
// the pools balance and the run replays identically at K=1 and K=4.
func TestFaultPoolDropSweep(t *testing.T) {
	w := workload.HostileUniform(10, 20, 4, 24)
	for _, p := range []float64{0.01, 0.05, 0.2} {
		p := p
		t.Run(fmt.Sprintf("p=%g", p), func(t *testing.T) {
			sched := &fault.Schedule{
				Seed: 29,
				Drop: []fault.DropRule{{Kind: fault.AnyKind, Src: fault.AnyNode, Dst: fault.AnyNode, P: p}},
			}
			runFaultyAudited(t, w, sched, 23, nil)
		})
	}
}
