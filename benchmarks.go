package dsmrace

// The benchmark bodies shared between `go test -bench` (bench_test.go
// wrappers) and the cmd/bench harness, which runs them via
// testing.Benchmark and writes the machine-readable perf trajectory
// (BENCH_<pr>.json). Keeping one implementation ensures the JSON numbers
// and the interactive bench numbers measure the same code.

import (
	"fmt"
	"runtime"
	"testing"

	"dsmrace/internal/baseline"
	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/fault"
	"dsmrace/internal/mcheck"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
	"dsmrace/internal/workload"
)

// BenchSpec names one benchmark runnable by the harness.
type BenchSpec struct {
	Name string
	F    func(b *testing.B)
}

// benchOps runs a single-writer loop of b.N remote puts/gets under the
// given spec knobs and reports virtual message/byte/latency metrics.
func benchOps(b *testing.B, detector, protocol string, payloadWords int, read bool) {
	b.Helper()
	spec := RunSpec{
		Procs:    2,
		Seed:     1,
		Detector: detector,
		Protocol: protocol,
		Setup:    func(c *Cluster) error { return c.Alloc("x", 0, max(payloadWords, 1)) },
	}
	vals := make([]Word, payloadWords)
	n := b.N
	spec.Programs = []Program{
		nil,
		func(p *Proc) error {
			for i := 0; i < n; i++ {
				if read {
					if _, err := p.Get("x", 0, payloadWords); err != nil {
						return err
					}
				} else if err := p.Put("x", 0, vals...); err != nil {
					return err
				}
			}
			return nil
		},
	}
	b.ResetTimer()
	res, err := Run(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(res.NetStats.TotalMsgs)/float64(n), "msgs/op")
	b.ReportMetric(float64(res.NetStats.TotalBytes)/float64(n), "wireB/op")
	b.ReportMetric(float64(res.Duration)/float64(n), "vns/op")
}

// benchThroughput is the E-T4 body: the mixed random workload, b.N ops per
// process across n processes, detection as named.
func benchThroughput(b *testing.B, n int, det string) {
	b.Helper()
	d, err := NewDetector(det)
	if err != nil {
		b.Fatal(err)
	}
	w := workload.Random(workload.RandomSpec{
		Procs: n, Areas: 2 * n, AreaWords: 4,
		OpsPerProc: b.N, ReadPercent: 50,
	})
	b.ResetTimer()
	res, err := w.Run(dsm.Config{Seed: 1, RDMA: rdma.DefaultConfig(d, nil)})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	totalOps := float64(n * b.N)
	b.ReportMetric(float64(res.NetStats.TotalMsgs)/totalOps, "msgs/op")
	b.ReportMetric(float64(res.NetStats.TotalBytes)/totalOps, "wireB/op")
	b.ReportMetric(float64(res.Duration)/totalOps, "vns/op")
}

// benchScale is the E_Scale body: one of the large-n workloads with b.N
// rounds per process under the paper's exact detector. One op is one logical
// program operation (a critical section for the migratory families, one
// locked access for uniform), and every virtual metric — msgs/op, wireB/op,
// vns/op — is normalised by the run's total op count, the uniform accounting
// all benchmark families share.
func benchScale(b *testing.B, n int, mkW func(n, rounds int) workload.Workload) {
	b.Helper()
	d, err := NewDetector("vw-exact")
	if err != nil {
		b.Fatal(err)
	}
	w := mkW(n, b.N)
	b.ResetTimer()
	res, err := w.Run(dsm.Config{Seed: 1, RDMA: rdma.DefaultConfig(d, nil)})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	totalOps := float64(w.Procs * b.N)
	b.ReportMetric(float64(res.NetStats.TotalMsgs)/totalOps, "msgs/op")
	b.ReportMetric(float64(res.NetStats.TotalBytes)/totalOps, "wireB/op")
	b.ReportMetric(float64(res.Duration)/totalOps, "vns/op")
}

// scaleBenchWorkloads are the E_Scale workload shapes: uniform is the E_T4
// mixed random traffic under lock discipline (race-free, so the numbers
// measure detection overhead rather than report construction), migratory is
// the global lock-passing ring whose clocks go dense immediately, and groups
// is the partitioned variant whose clocks stay sparse at any cluster size.
var scaleBenchWorkloads = []struct {
	name string
	mk   func(n, rounds int) workload.Workload
}{
	{"uniform", func(n, rounds int) workload.Workload {
		return workload.Random(workload.RandomSpec{
			Procs: n, Areas: 2 * n, AreaWords: 4,
			OpsPerProc: rounds, ReadPercent: 50, LockDiscipline: true,
		})
	}},
	{"migratory", func(n, rounds int) workload.Workload { return workload.Migratory(n, rounds, 8) }},
	{"groups", func(n, rounds int) workload.Workload { return workload.MigratoryGroups(n, 8, rounds, 8) }},
}

// ScaleNs is the cluster-size sweep of the E_Scale family.
var ScaleNs = []int{16, 64, 128, 256, 512}

// ScaleBenchmarks returns the E_Scale family: every scale workload at every
// swept cluster size. They are kept out of StandardBenchmarks because the
// large-n entries are orders of magnitude more work per iteration; cmd/bench
// runs them with their own (smaller) benchtime, and the `go test -bench`
// wrappers only pick up the n≤64 entries.
func ScaleBenchmarks() []BenchSpec {
	var specs []BenchSpec
	for _, wl := range scaleBenchWorkloads {
		for _, n := range ScaleNs {
			wl, n := wl, n
			specs = append(specs, BenchSpec{
				Name: fmt.Sprintf("E_Scale/%s/n=%d", wl.name, n),
				F:    func(b *testing.B) { benchScale(b, n, wl.mk) },
			})
		}
	}
	return specs
}

// benchMcheck is the E_Mcheck body: one op is one complete exploration of a
// litmus/protocol pair, full enumeration or POR. The metrics expose what the
// reduction buys: sched/s is raw exploration throughput, runs/op the
// explored-schedule count (constant per row — exploration is deterministic),
// pruned/op the subtrees the POR rules cut, and dedup% the fraction of
// spawned candidates absorbed by the state-fingerprint memo.
func benchMcheck(b *testing.B, litmus, protocol string, por bool, workers int) {
	b.Helper()
	lit, err := mcheck.LitmusByName(litmus)
	if err != nil {
		b.Fatal(err)
	}
	var runs, pruned, memoHits float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := coherence.FromName(protocol)
		if err != nil {
			b.Fatal(err)
		}
		out, err := mcheck.Explore(mcheck.Config{
			Litmus: lit, Protocol: p, MaxRuns: 1 << 21, POR: por, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		runs += float64(out.Runs)
		pruned += float64(out.Pruned)
		memoHits += float64(out.MemoHits)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(runs/b.Elapsed().Seconds(), "sched/s")
	b.ReportMetric(runs/n, "runs/op")
	b.ReportMetric(pruned/n, "pruned/op")
	if cands := runs + memoHits; memoHits > 0 && cands > n {
		// Of the candidates that reached the memo, the fraction it absorbed
		// (the root prefixes of each op are not candidates).
		b.ReportMetric(100*memoHits/(cands-n), "dedup%")
	}
}

// McheckBenchmarks returns the E_Mcheck family: model-checker exploration
// throughput on full-vs-POR row pairs, plus the POR-only rows whose full
// enumerations are too big to time (the two MCHECK_EXHAUSTIVE matrix rows
// and the sb3 config full enumeration cannot finish at all). Kept out of
// StandardBenchmarks because one iteration is a whole exploration; cmd/bench
// runs them with their own benchtime, and the `go test -bench` wrapper picks
// up only the sub-second rows.
func McheckBenchmarks() []BenchSpec {
	var specs []BenchSpec
	for _, row := range []struct {
		litmus, protocol string
		full             bool // also time the full enumeration
	}{
		{"sb", "write-update", true},
		{"sb", "write-invalidate", true},
		{"iriw", "write-update", true},
		{"recall", "write-invalidate", false},
		{"iriw", "mesi", false},
		{"sb3", "mesi", false},
	} {
		row := row
		if row.full {
			specs = append(specs, BenchSpec{
				Name: fmt.Sprintf("E_Mcheck/%s/%s/full", row.litmus, row.protocol),
				F:    func(b *testing.B) { benchMcheck(b, row.litmus, row.protocol, false, 0) },
			})
		}
		specs = append(specs, BenchSpec{
			Name: fmt.Sprintf("E_Mcheck/%s/%s/por", row.litmus, row.protocol),
			F:    func(b *testing.B) { benchMcheck(b, row.litmus, row.protocol, true, 0) },
		})
	}
	return specs
}

// benchPartition is the E_Partition body: one of the scale workloads at
// cluster size n on kernels shards, b.N rounds per process, locality-aware
// partitioning. Fingerprints are bit-identical across kernels (gated by the
// multi-kernel differential), so these rows measure exactly one thing: the
// wall-clock cost/benefit of partitioned execution on this host. The
// effective shard count is recorded as a metric — a serial-only workload
// (uniform draws from the shared RNG) legitimately degrades to 1 and its
// rows measure the single kernel under the request.
func benchPartition(b *testing.B, n, kernels int, mkW func(n, rounds int) workload.Workload) {
	b.Helper()
	d, err := NewDetector("vw-exact")
	if err != nil {
		b.Fatal(err)
	}
	w := mkW(n, b.N)
	b.ResetTimer()
	res, err := w.Run(dsm.Config{Seed: 1, RDMA: rdma.DefaultConfig(d, nil), Kernels: kernels})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	totalOps := float64(w.Procs * b.N)
	b.ReportMetric(float64(res.NetStats.TotalMsgs)/totalOps, "msgs/op")
	b.ReportMetric(float64(res.Duration)/totalOps, "vns/op")
	b.ReportMetric(float64(res.Kernels), "kernels")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "procs")
	if st := res.WindowStats; st != nil {
		// Window/barrier machinery counters (last iteration's run): these
		// prove whether adaptive extension and pipelined replay fired, and
		// how the wall clock split between parallel windows and serial
		// barriers.
		b.ReportMetric(float64(st.Windows), "mk_windows")
		b.ReportMetric(float64(st.SubWindows), "mk_subwindows")
		b.ReportMetric(float64(st.Extensions), "mk_extensions")
		b.ReportMetric(float64(st.PipelinedReplays), "mk_pipelined")
		b.ReportMetric(float64(st.ReplayRecords), "mk_replay_recs")
		b.ReportMetric(float64(st.WindowNs), "mk_window_ns")
		b.ReportMetric(float64(st.BarrierNs), "mk_barrier_ns")
	}
}

// PartitionNs and PartitionKs are the E_Partition sweep axes.
var (
	PartitionNs = []int{64, 256, 512}
	PartitionKs = []int{1, 2, 4, 8}
)

// PartitionBenchmarks returns the E_Partition family: the uniform /
// migratory / groups shapes at n ∈ {64, 256, 512} across K ∈ {1, 2, 4, 8}
// kernel shards. K=1 rows are the baseline the speedups read against.
func PartitionBenchmarks() []BenchSpec {
	var specs []BenchSpec
	for _, wl := range scaleBenchWorkloads {
		for _, n := range PartitionNs {
			for _, k := range PartitionKs {
				wl, n, k := wl, n, k
				specs = append(specs, BenchSpec{
					Name: fmt.Sprintf("E_Partition/%s/n=%d/k=%d", wl.name, n, k),
					F:    func(b *testing.B) { benchPartition(b, n, k, wl.mk) },
				})
			}
		}
	}
	return specs
}

// homeBatchWorkload is the E_HomeBatch shape: barrier-phased colliding
// adders. Every round all workers hit the same cell in one delivery slot at
// the home and then meet at a barrier, so the round's span is bounded by
// the *last* completion — exactly the latency the batch's single lock
// tenure compresses (unbatched, the k-th op waits behind k-1 serialized
// occupancy windows). Barrier-phased, so race-free after the clock
// exchange; the two rows' verdicts and message totals are identical and
// vns/op carries the whole delta.
func homeBatchWorkload(procs, rounds int) workload.Workload {
	return workload.Workload{
		Name:    "lockstep-barrier",
		Procs:   procs,
		Profile: workload.RacyBenign,
		Setup:   func(c *dsm.Cluster) error { return c.Alloc("cell", 0, 1) },
		Programs: func() []dsm.Program {
			ps := make([]dsm.Program, procs)
			for i := range ps {
				ps[i] = func(p *dsm.Proc) error {
					for r := 0; r < rounds; r++ {
						if p.ID() != 0 {
							if _, err := p.FetchAdd("cell", 0, 1); err != nil {
								return err
							}
						}
						p.Barrier()
					}
					return nil
				}
			}
			return ps
		},
	}
}

// benchHomeBatch is the E_HomeBatch body: the colliding barrier-phased
// shape with home slot batching off or on; the msgs/op (must not move) and
// vns/op (drops by the coalesced lock tenures) deltas between the two rows
// are the ablation's record.
func benchHomeBatch(b *testing.B, n int, batch bool) {
	b.Helper()
	d, err := NewDetector("vw-exact")
	if err != nil {
		b.Fatal(err)
	}
	cfg := rdma.DefaultConfig(d, nil)
	cfg.HomeSlotBatch = batch
	w := homeBatchWorkload(n, b.N)
	b.ResetTimer()
	res, err := w.Run(dsm.Config{Seed: 1, RDMA: cfg})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	totalOps := float64((w.Procs - 1) * b.N)
	b.ReportMetric(float64(res.NetStats.TotalMsgs)/totalOps, "msgs/op")
	b.ReportMetric(float64(res.NetStats.TotalBytes)/totalOps, "wireB/op")
	b.ReportMetric(float64(res.Duration)/totalOps, "vns/op")
}

// HomeBatchBenchmarks returns the E_HomeBatch ablation pair.
func HomeBatchBenchmarks() []BenchSpec {
	var specs []BenchSpec
	for _, batch := range []bool{false, true} {
		batch := batch
		name := "off"
		if batch {
			name = "on"
		}
		specs = append(specs, BenchSpec{
			Name: fmt.Sprintf("E_HomeBatch/lockstep-barrier/n=64/batch=%s", name),
			F:    func(b *testing.B) { benchHomeBatch(b, 64, batch) },
		})
	}
	return specs
}

// benchFault is the E_Fault body: a workload with b.N ops (or rounds) per
// process under an optional fault schedule. The faults=off and faults=armed
// rows share a workload, so their host ns/op delta is the zero-fault tax of
// an armed-but-idle fault layer — deadline bookkeeping and watchdog scans;
// zero-probability drop rules are pruned from the per-send consult path at
// Arm time. Measured at a few percent on uniform/n=64, within host
// measurement noise of the 2% budget. The hostile rows meter a run that loses
// traffic and a node; their virtual metrics quantify the retry/re-homing
// cost per op.
func benchFault(b *testing.B, mkW func(rounds int) workload.Workload, sched *fault.Schedule) {
	b.Helper()
	d, err := NewDetector("vw-exact")
	if err != nil {
		b.Fatal(err)
	}
	w := mkW(b.N)
	b.ResetTimer()
	res, err := w.Run(dsm.Config{Seed: 1, RDMA: rdma.DefaultConfig(d, nil), Faults: sched})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	totalOps := float64(w.Procs * b.N)
	b.ReportMetric(float64(res.NetStats.TotalMsgs)/totalOps, "msgs/op")
	b.ReportMetric(float64(res.NetStats.TotalBytes)/totalOps, "wireB/op")
	b.ReportMetric(float64(res.Duration)/totalOps, "vns/op")
}

// FaultBenchmarks returns the E_Fault family: the armed-idle overhead pair
// on the uniform lock-discipline shape at n=64, and hostile rows — sustained
// loss, and loss plus a crash/restart — on the unreachable-tolerant uniform
// shape.
func FaultBenchmarks() []BenchSpec {
	uniform := func(rounds int) workload.Workload {
		return workload.Random(workload.RandomSpec{
			Procs: 64, Areas: 128, AreaWords: 4,
			OpsPerProc: rounds, ReadPercent: 50, LockDiscipline: true,
		})
	}
	hostile := func(rounds int) workload.Workload {
		return workload.HostileUniform(64, 128, 4, rounds)
	}
	armed := &fault.Schedule{
		Seed: 1,
		Drop: []fault.DropRule{{Kind: fault.AnyKind, Src: fault.AnyNode, Dst: fault.AnyNode, P: 0}},
	}
	lossy := &fault.Schedule{
		Seed: 1,
		Drop: []fault.DropRule{{Kind: fault.AnyKind, Src: fault.AnyNode, Dst: fault.AnyNode, P: 0.02}},
	}
	crash := &fault.Schedule{
		Seed: 1,
		Events: []fault.Event{
			{At: 100 * sim.Microsecond, Op: fault.Crash, Node: 2},
			{At: 400 * sim.Microsecond, Op: fault.Restart, Node: 2},
		},
		Drop: []fault.DropRule{{Kind: fault.AnyKind, Src: fault.AnyNode, Dst: fault.AnyNode, P: 0.02}},
	}
	return []BenchSpec{
		{Name: "E_Fault/uniform/n=64/faults=off", F: func(b *testing.B) { benchFault(b, uniform, nil) }},
		{Name: "E_Fault/uniform/n=64/faults=armed", F: func(b *testing.B) { benchFault(b, uniform, armed) }},
		{Name: "E_Fault/hostile-uniform/n=64/drop=0.02", F: func(b *testing.B) { benchFault(b, hostile, lossy) }},
		{Name: "E_Fault/hostile-uniform/n=64/crash+drop", F: func(b *testing.B) { benchFault(b, hostile, crash) }},
	}
}

// benchCoherence is the E-T12 body: a coherence-sensitive workload with
// b.N rounds under the named protocol; one op is one critical section /
// stage-round, so msgs/op exposes the per-protocol wire cost the
// BENCH_*.json trajectory tracks.
func benchCoherence(b *testing.B, coh string, mkW func(rounds int) workload.Workload) {
	b.Helper()
	cp, err := coherence.FromName(coh)
	if err != nil {
		b.Fatal(err)
	}
	d, err := NewDetector("vw-exact")
	if err != nil {
		b.Fatal(err)
	}
	cfg := rdma.DefaultConfig(d, nil)
	cfg.Coherence = cp
	w := mkW(b.N)
	b.ResetTimer()
	res, err := w.Run(dsm.Config{Seed: 1, RDMA: cfg})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	totalOps := float64(w.Procs * b.N)
	b.ReportMetric(float64(res.NetStats.TotalMsgs)/totalOps, "msgs/op")
	b.ReportMetric(float64(res.NetStats.TotalBytes)/totalOps, "wireB/op")
	b.ReportMetric(float64(res.Duration)/totalOps, "vns/op")
	b.ReportMetric(float64(res.Coherence.Hits)/totalOps, "hits/op")
	b.ReportMetric(float64(res.Coherence.Invalidations)/totalOps, "invals/op")
}

// coherenceBenchWorkloads are the protocol-divergent workloads measured
// per-protocol in the perf trajectory.
var coherenceBenchWorkloads = []struct {
	name string
	mk   func(rounds int) workload.Workload
}{
	{"migratory", func(rounds int) workload.Workload { return workload.Migratory(4, rounds, 8) }},
	{"prodchain", func(rounds int) workload.Workload { return workload.ProducerConsumerChain(4, rounds, 8, 4) }},
}

// benchDetectors lists the detectors the OnAccess microbenchmark measures.
func benchDetectors() []core.Detector {
	return []core.Detector{
		core.NewVWDetector(), core.NewExactVWDetector(),
		baseline.NewSingleClock(), baseline.NewEpoch(), baseline.NewLockset(), baseline.Nop{},
	}
}

// benchDetectorOnAccess measures one steady-state detection step: a
// rotating-writer stream against a single area state, threading the absorb
// scratch buffer exactly as the NIC hot path does.
func benchDetectorOnAccess(b *testing.B, d core.Detector, n int) {
	b.Helper()
	st := d.NewAreaState(n)
	clk := vclock.NewMasked(n)
	var scratch vclock.Masked
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Tick(i % n)
		acc := core.Access{Proc: i % n, Seq: uint64(i), Kind: core.Write, Clock: clk.V, ClockNZ: clk.M}
		_, absorbed := st.OnAccess(acc, 0, scratch)
		if !absorbed.IsNil() {
			scratch = absorbed
		}
	}
}

// StandardBenchmarks returns the canonical benchmark set the cmd/bench
// harness records in the perf trajectory: the raw put/get primitives, the
// wire-protocol ablation, the E-T4 throughput grid, the per-coherence
// workload comparison, and the per-detector OnAccess microbenchmark.
func StandardBenchmarks() []BenchSpec {
	specs := []BenchSpec{
		{Name: "E_F2_Put", F: func(b *testing.B) { benchOps(b, "off", "", 1, false) }},
		{Name: "E_F2_Get", F: func(b *testing.B) { benchOps(b, "off", "", 1, true) }},
		{Name: "E_T2_Protocols/piggyback", F: func(b *testing.B) { benchOps(b, "vw", "piggyback", 1, false) }},
		{Name: "E_T2_Protocols/literal", F: func(b *testing.B) { benchOps(b, "vw", "literal", 1, false) }},
	}
	for _, n := range []int{2, 4, 8, 16} {
		for _, det := range []string{"off", "vw-exact"} {
			n, det := n, det
			specs = append(specs, BenchSpec{
				Name: fmt.Sprintf("E_T4_Throughput/n=%d/det=%s", n, det),
				F:    func(b *testing.B) { benchThroughput(b, n, det) },
			})
		}
	}
	for _, wl := range coherenceBenchWorkloads {
		for _, coh := range CoherenceNames() {
			wl, coh := wl, coh
			specs = append(specs, BenchSpec{
				Name: fmt.Sprintf("E_Coherence/%s/%s", wl.name, coh),
				F:    func(b *testing.B) { benchCoherence(b, coh, wl.mk) },
			})
		}
	}
	for _, d := range benchDetectors() {
		for _, n := range []int{16, 256} {
			d, n := d, n
			name := "DetectorOnAccess/" + d.Name()
			if n != 16 {
				name = fmt.Sprintf("DetectorOnAccess%d/%s", n, d.Name())
			}
			specs = append(specs, BenchSpec{
				Name: name,
				F:    func(b *testing.B) { benchDetectorOnAccess(b, d, n) },
			})
		}
	}
	return specs
}
