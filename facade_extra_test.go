package dsmrace

import (
	"strings"
	"testing"

	"dsmrace/internal/network"
	"dsmrace/internal/sim"
)

func TestWordGranularityThroughFacade(t *testing.T) {
	spec := RunSpec{
		Procs:       3,
		Seed:        1,
		Detector:    "vw-exact",
		Granularity: "word",
		Setup:       func(c *Cluster) error { return c.Alloc("slots", 0, 3) },
		Program: func(p *Proc) error {
			return p.Put("slots", p.ID(), Word(p.ID()))
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("disjoint-slot writes flagged at word granularity: %v", res.Races)
	}
}

func TestWordGranularityRejectsLiteral(t *testing.T) {
	spec := racySpec(1)
	spec.Granularity = "word"
	spec.Protocol = "literal"
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "piggyback") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompressClocksThroughFacade(t *testing.T) {
	run := func(compress bool) uint64 {
		spec := racySpec(1)
		spec.CompressClocks = compress
		spec.Trace = false
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.NetStats.TotalBytes
	}
	full, delta := run(false), run(true)
	if delta >= full {
		t.Fatalf("delta bytes %d >= full %d", delta, full)
	}
}

func TestCustomLatencyModel(t *testing.T) {
	// A much slower network stretches virtual completion time.
	run := func(lat network.LatencyModel) Time {
		spec := racySpec(1)
		spec.Trace = false
		spec.Latency = lat
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration
	}
	fast := run(network.Constant{L: 100 * sim.Nanosecond})
	slow := run(network.Constant{L: 100 * sim.Microsecond})
	if slow <= fast {
		t.Fatalf("latency model ignored: %v vs %v", fast, slow)
	}
}

func TestTopologyLatencyThroughFacade(t *testing.T) {
	spec := racySpec(1)
	spec.Trace = false
	spec.Latency = network.Hops{Topo: network.Ring{N: 3}, PerHop: sim.Microsecond, PerByte: 1}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("races should be detected regardless of topology")
	}
}

func TestScoreDetectorNameFlows(t *testing.T) {
	res, err := Run(racySpec(3))
	if err != nil {
		t.Fatal(err)
	}
	score, err := ScoreDetector(res, "vw-exact")
	if err != nil {
		t.Fatal(err)
	}
	if score.DetectorName != "vw-exact" {
		t.Fatalf("name = %q", score.DetectorName)
	}
	if score.TruePairs == 0 {
		t.Fatal("racy spec must have true pairs")
	}
}
