package dsmrace

import (
	"fmt"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/workload"
)

// coherenceGolden pins the full observable output of the two
// ownership-sensitive workloads under both coherence protocols — the same
// bit-identity contract goldenRuns enforces for the random workload, here
// additionally covering the write-invalidate transport (fetch/inval message
// machinery, cache-hit absorption, patch-on-write). The hash is sha256("")
// because both workloads are race-free.
type coherenceGolden struct {
	wl, coh      string
	races        int
	dur          int64
	msgs, bytes  uint64
	fetches      uint64
	hits         uint64
	invals       uint64
	reportDigest string
}

var coherenceGoldenRuns = []coherenceGolden{
	{"migratory", "write-update", 0, 242400, 224, 17758, 0, 0, 0, "e3b0c44298fc1c14"},
	{"migratory", "write-invalidate", 0, 312872, 254, 17662, 24, 0, 23, "e3b0c44298fc1c14"},
	{"prodchain", "write-update", 0, 124116, 352, 31168, 0, 0, 0, "e3b0c44298fc1c14"},
	{"prodchain", "write-invalidate", 0, 84972, 256, 18592, 24, 72, 24, "e3b0c44298fc1c14"},
	{"migratory", "causal", 0, 176402, 223, 19832, 3, 21, 0, "e3b0c44298fc1c14"},
	{"migratory", "mesi", 0, 368836, 298, 20410, 24, 0, 23, "e3b0c44298fc1c14"},
	{"prodchain", "causal", 0, 51762, 192, 21328, 4, 92, 0, "e3b0c44298fc1c14"},
	{"prodchain", "mesi", 0, 103356, 304, 20128, 24, 72, 24, "e3b0c44298fc1c14"},
}

func coherenceGoldenWorkload(name string) workload.Workload {
	if name == "migratory" {
		return workload.Migratory(4, 8, 8)
	}
	return workload.ProducerConsumerChain(4, 6, 8, 4)
}

// TestDeterminismCoherenceFingerprints verifies fixed-seed bit-identity of
// the coherence-sensitive workloads under both protocols.
func TestDeterminismCoherenceFingerprints(t *testing.T) {
	for _, g := range coherenceGoldenRuns {
		g := g
		t.Run(fmt.Sprintf("%s/%s", g.wl, g.coh), func(t *testing.T) {
			w := coherenceGoldenWorkload(g.wl)
			d, err := NewDetector("vw-exact")
			if err != nil {
				t.Fatal(err)
			}
			cp, err := coherence.FromName(g.coh)
			if err != nil {
				t.Fatal(err)
			}
			cfg := rdma.DefaultConfig(d, nil)
			cfg.Coherence = cp
			res, err := w.Run(dsm.Config{Seed: 1, RDMA: cfg})
			if err != nil {
				t.Fatal(err)
			}
			got := coherenceGolden{
				wl: g.wl, coh: g.coh,
				races: res.RaceCount, dur: int64(res.Duration),
				msgs: res.NetStats.TotalMsgs, bytes: res.NetStats.TotalBytes,
				fetches: res.Coherence.Fetches, hits: res.Coherence.Hits,
				invals: res.Coherence.Invalidations, reportDigest: reportHash(res),
			}
			if got != g {
				t.Errorf("fingerprint drift:\n got  %+v\n want %+v", got, g)
			}
		})
	}
}
