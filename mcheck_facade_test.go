package dsmrace

import "testing"

// TestMcheckFacade pins the facade model-checker entry point: name
// resolution for litmuses, stock protocols and seeded mutations, the budget
// error path, and one end-to-end verdict per interesting protocol class.
func TestMcheckFacade(t *testing.T) {
	if got := McheckLitmusNames(); len(got) != 4 {
		t.Fatalf("McheckLitmusNames() = %v, want 4 names", got)
	}
	out, err := Mcheck("sb", "causal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Weakest != McheckLevelCausal || out.SCViolations == 0 {
		t.Errorf("sb/causal: weakest=%s sc-viol=%d, want causal with SC violations", out.Weakest, out.SCViolations)
	}
	out, err = Mcheck("sb", "write-invalidate", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Weakest != McheckLevelSC {
		t.Errorf("sb/write-invalidate: weakest=%s, want sc", out.Weakest)
	}
	out, err = Mcheck("sb", "wi-skip-last-inval", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.SCViolations == 0 {
		t.Error("sb/wi-skip-last-inval: seeded mutation not caught through the facade")
	}
	if _, err := Mcheck("nope", "causal", 0); err == nil {
		t.Error("unknown litmus accepted")
	}
	if _, err := Mcheck("sb", "nope", 0); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := Mcheck("sb", "mesi", 8); err == nil {
		t.Error("budget overrun did not error")
	}
}
