package dsmrace

import "testing"

// TestMcheckFacade pins the facade model-checker entry point: name
// resolution for litmuses, stock protocols and seeded mutations, the budget
// error path, and one end-to-end verdict per interesting protocol class.
func TestMcheckFacade(t *testing.T) {
	if got := McheckLitmusNames(); len(got) != 5 {
		t.Fatalf("McheckLitmusNames() = %v, want 5 names", got)
	}
	out2, err := Mcheck("sb", "causal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Weakest != McheckLevelCausal || out2.SCViolations == 0 {
		t.Errorf("sb/causal: weakest=%s sc-viol=%d, want causal with SC violations", out2.Weakest, out2.SCViolations)
	}
	out := out2
	out, err = Mcheck("sb", "write-invalidate", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Weakest != McheckLevelSC {
		t.Errorf("sb/write-invalidate: weakest=%s, want sc", out.Weakest)
	}
	out, err = Mcheck("sb", "wi-skip-last-inval", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.SCViolations == 0 {
		t.Error("sb/wi-skip-last-inval: seeded mutation not caught through the facade")
	}
	if _, err := Mcheck("nope", "causal", 0); err == nil {
		t.Error("unknown litmus accepted")
	}
	if _, err := Mcheck("sb", "nope", 0); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := Mcheck("sb", "mesi", 8); err == nil {
		t.Error("budget overrun did not error")
	}
	por, err := McheckExplore("sb", "causal", McheckOptions{POR: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if por.Weakest != McheckLevelCausal || por.FirstNonSC != out2.FirstNonSC ||
		por.UniqueStates != out2.UniqueStates || por.StateFold != out2.StateFold {
		t.Errorf("sb/causal under POR: %+v, want state set and verdict of full enumeration %+v", por, out2)
	}
	if por.Runs >= out2.Runs {
		t.Errorf("sb/causal under POR ran %d schedules, full enumeration %d — no reduction", por.Runs, out2.Runs)
	}
}
