package dsmrace

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestDsmlintTreeClean builds cmd/dsmlint and drives it over the whole
// module through the `go vet -vettool` protocol — the exact invocation the
// CI lint job uses — and asserts the tree is clean. This is both the smoke
// test for the vet-protocol handshake (-V=full, -flags, vet.cfg, vetx
// output) and the regression gate for the invariant triage: at the time
// the suite landed, every determinism/eventctx finding was resolved by a
// reviewed annotation (host-metric wall clocks, order-insensitive map
// folds, event-handler continuations) and none was a genuine bug, so any
// new finding is a regression to triage, not pre-existing noise.
func TestDsmlintTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module; skipped in -short")
	}
	tool := filepath.Join(t.TempDir(), "dsmlint")
	if out, err := exec.Command("go", "build", "-o", tool, "./cmd/dsmlint").CombinedOutput(); err != nil {
		t.Fatalf("building dsmlint: %v\n%s", err, out)
	}
	if out, err := exec.Command("go", "vet", "-vettool="+tool, "./...").CombinedOutput(); err != nil {
		t.Fatalf("dsmlint findings (or vet failure): %v\n%s", err, out)
	}
}
