package core

import (
	"testing"

	"dsmrace/internal/vclock"
)

func TestClockInternDedups(t *testing.T) {
	var tab clockIntern
	a := vclock.VC{1, 2, 3}
	b := vclock.VC{1, 2, 3}
	c := vclock.VC{4, 5, 6}
	ia := tab.get(a)
	ib := tab.get(b)
	ic := tab.get(c)
	if &ia[0] != &ib[0] {
		t.Error("equal clocks not shared")
	}
	if &ia[0] == &ic[0] {
		t.Error("distinct clocks shared")
	}
	if got := tab.get(nil); got != nil {
		t.Errorf("intern(nil) = %v", got)
	}
	if tab.unique != 2 || tab.refs != 3 {
		t.Errorf("unique=%d refs=%d, want 2/3", tab.unique, tab.refs)
	}
	if tab.bytes != 2*3*8 || tab.naive != 3*3*8 {
		t.Errorf("bytes=%d naive=%d, want 48/72", tab.bytes, tab.naive)
	}
	// The canonical copy must not alias the caller's buffer.
	a[0] = 99
	if ia[0] != 1 {
		t.Error("interned snapshot aliases the input buffer")
	}
}

// TestCloneInternedMatchesClone pins the equivalence that keeps report-hash
// fingerprints safe: an interned clone renders identically to a deep clone.
func TestCloneInternedMatchesClone(t *testing.T) {
	prior := &Access{Proc: 1, Seq: 4, Kind: Write, Clock: vclock.VC{0, 7}, Locks: []int{2}}
	r := Report{
		Detector:    "vw",
		Area:        3,
		Current:     Access{Proc: 0, Seq: 9, Kind: Read, Clock: vclock.VC{5, 1}, ClockNZ: vclock.Mask{1}},
		StoredClock: vclock.VC{4, 7},
		Prior:       prior,
	}
	var tab clockIntern
	a, b := r.Clone(), r.cloneInterned(&tab)
	if a.String() != b.String() {
		t.Errorf("interned clone renders differently:\n%s\n%s", a.String(), b.String())
	}
	if b.Current.ClockNZ != nil || b.Prior == prior {
		t.Error("interned clone retains borrowed structure")
	}
	// Shared storage across reports with equal clocks.
	c := r.cloneInterned(&tab)
	if &b.StoredClock[0] != &c.StoredClock[0] {
		t.Error("repeated interned clones do not share storage")
	}
}

func TestCollectorInternStats(t *testing.T) {
	mk := func(noIntern bool) *Collector {
		col := &Collector{NoIntern: noIntern}
		stored := vclock.VC{9, 9, 9, 9}
		priorClock := vclock.VC{1, 0, 0, 0}
		for i := 0; i < 100; i++ {
			cur := vclock.VC{0, uint64(i + 1), 0, 0} // unique per report
			col.Signal(Report{
				Detector:    "vw",
				Current:     Access{Proc: 1, Seq: uint64(i), Kind: Read, Clock: cur},
				StoredClock: stored, // identical across all reports
				Prior:       &Access{Proc: 0, Seq: 1, Kind: Write, Clock: priorClock},
			})
		}
		return col
	}
	a, b := mk(false), mk(true)
	ra, rb := a.Reports(), b.Reports()
	if len(ra) != len(rb) {
		t.Fatalf("report counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].String() != rb[i].String() {
			t.Fatalf("report %d differs between interned and plain collectors", i)
		}
	}
	st := a.InternStats()
	// 300 clock fields stored, but only 102 distinct values (one stored
	// clock, one prior clock, 100 current clocks).
	if st.Refs != 300 || st.Unique != 102 {
		t.Errorf("refs=%d unique=%d, want 300/102", st.Refs, st.Unique)
	}
	if st.Bytes*2 >= st.NaiveBytes {
		t.Errorf("interning saved too little: %d of %d naive bytes", st.Bytes, st.NaiveBytes)
	}
	if zero := b.InternStats(); zero != (InternStats{}) {
		t.Errorf("NoIntern collector tracked stats: %+v", zero)
	}
}

// TestCollectorInternBoundedByLimit: reports streamed to OnReport past the
// storage limit must not grow the intern table — it tracks exactly the
// stored reports.
func TestCollectorInternBoundedByLimit(t *testing.T) {
	streamed := 0
	col := &Collector{Limit: 2, OnReport: func(Report) { streamed++ }}
	for i := 0; i < 50; i++ {
		col.Signal(Report{
			Current:     Access{Proc: 0, Seq: uint64(i), Clock: vclock.VC{uint64(i), 1}},
			StoredClock: vclock.VC{7, uint64(i)},
		})
	}
	if streamed != 50 || col.Total() != 50 {
		t.Fatalf("streamed=%d total=%d, want 50/50", streamed, col.Total())
	}
	st := col.InternStats()
	if st.Refs != 4 { // 2 stored reports x 2 clock fields (no Prior)
		t.Errorf("refs = %d, want 4 (only stored reports interned)", st.Refs)
	}
}
