package core

import "dsmrace/internal/vclock"

// clockIntern hash-conses the vector-clock snapshots stored reports carry.
//
// A racy large-n workload signals one report per conflicting access, and
// every stored report used to pay three O(n) clock copies (StoredClock,
// Current.Clock, Prior.Clock). The values repeat heavily: between two
// writes, every racing read observes the same stored write clock, and a
// whole train of reports names the same prior conflicting access. Interning
// lets all of them share one immutable snapshot — the canonical copy is
// collector-owned, identical by value to what Clone would have produced, so
// report content (and therefore every report-hash fingerprint) is
// unchanged; only the backing storage is deduplicated.
//
// Interned clocks are shared and must never be mutated. The Collector is
// the only producer, and reports it hands out are documented read-only.
type clockIntern struct {
	buckets map[uint64][]vclock.VC
	// bytes is the storage actually held: 8 bytes per component per unique
	// snapshot. naive is what per-report cloning would have held.
	bytes, naive int
	refs, unique int
}

// hashClock is FNV-1a over the clock's components.
func hashClock(c vclock.VC) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range c {
		h ^= x
		h *= 1099511628211
	}
	return h
}

func equalClock(a, b vclock.VC) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the canonical snapshot equal to c, copying c in on first
// sight. nil stays nil.
func (t *clockIntern) get(c vclock.VC) vclock.VC {
	if c == nil {
		return nil
	}
	t.refs++
	t.naive += 8 * len(c)
	if t.buckets == nil {
		t.buckets = make(map[uint64][]vclock.VC)
	}
	h := hashClock(c)
	for _, e := range t.buckets[h] {
		if equalClock(e, c) {
			return e
		}
	}
	cc := c.Copy()
	t.buckets[h] = append(t.buckets[h], cc)
	t.unique++
	t.bytes += 8 * len(cc)
	return cc
}

// InternStats summarises a collector's report-clock storage.
type InternStats struct {
	// Refs is the number of clock fields stored across all reports.
	Refs int
	// Unique is the number of distinct snapshots actually held.
	Unique int
	// Bytes is the storage held by those snapshots.
	Bytes int
	// NaiveBytes is what per-report cloning (no interning) would hold.
	NaiveBytes int
}

// cloneInterned is Report.Clone with every copied clock routed through the
// intern table. The semantics match Clone exactly: the result shares no
// storage with detector or process scratch buffers — it shares storage only
// with other interned reports, all of which treat it as immutable.
func (r Report) cloneInterned(t *clockIntern) Report {
	c := r
	c.StoredClock = t.get(r.StoredClock)
	c.Current.Clock = t.get(r.Current.Clock)
	c.Current.ClockNZ = nil
	if r.Prior != nil {
		p := *r.Prior
		p.Clock = t.get(r.Prior.Clock)
		p.ClockNZ = nil
		if r.Prior.Locks != nil {
			p.Locks = append([]int(nil), r.Prior.Locks...)
		}
		c.Prior = &p
	}
	return c
}
