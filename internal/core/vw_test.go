package core

import (
	"strings"
	"testing"

	"dsmrace/internal/vclock"
)

func acc(proc int, seq uint64, kind AccessKind, clk ...uint64) Access {
	return Access{Proc: proc, Seq: seq, Area: 0, Kind: kind, Clock: vclock.VC(clk)}
}

func TestCheckFunctions(t *testing.T) {
	// Fig. 5(a)'s decisive comparison: 001 against stored 110.
	if !CheckWrite(vclock.VC{0, 0, 1}, vclock.VC{1, 1, 0}) {
		t.Fatal("write concurrent with stored access clock must race")
	}
	// Fig. 5(b)'s decisive comparison: 132 against stored 130.
	if CheckWrite(vclock.VC{1, 3, 2}, vclock.VC{1, 3, 0}) {
		t.Fatal("causally dominating write must not race")
	}
	// Reads compare against W only.
	if CheckRead(vclock.VC{0, 1, 0}, vclock.VC{0, 0, 0}) {
		t.Fatal("read over never-written area must not race")
	}
	if !CheckRead(vclock.VC{0, 1, 0}, vclock.VC{1, 0, 0}) {
		t.Fatal("read concurrent with a write must race")
	}
}

func TestVWFig5aScenario(t *testing.T) {
	// P0 and P2 both put into P1's memory with no causal relation.
	d := NewVWDetector()
	st := d.NewAreaState(3)
	rep, absorbed := st.OnAccess(acc(0, 1, Write, 1, 0, 0), 1, vclock.Masked{})
	if rep != nil {
		t.Fatalf("first write raced: %v", rep)
	}
	// After m1 the area clock must be 110, as printed in Fig. 5(a).
	if absorbed.V.String() != "110" {
		t.Fatalf("area clock after m1 = %s, want 110", absorbed.V)
	}
	rep, _ = st.OnAccess(acc(2, 1, Write, 0, 0, 1), 1, vclock.Masked{})
	if rep == nil {
		t.Fatal("Fig. 5(a) race not detected")
	}
	if rep.StoredClock.String() != "110" || rep.Current.Clock.String() != "001" {
		t.Fatalf("report clocks = %s vs %s, want 110 vs 001", rep.StoredClock, rep.Current.Clock)
	}
	if rep.Prior == nil || rep.Prior.Proc != 0 {
		t.Fatalf("prior context should be P0's write: %+v", rep.Prior)
	}
}

func TestVWFig4ConcurrentReadsAreBenign(t *testing.T) {
	// Variable initialised by its home, then read concurrently by P0 and P2:
	// not a race (§IV-D, Fig. 4).
	d := NewVWDetector()
	st := d.NewAreaState(3)
	// Home P1 initialises a = A (write with clock 010).
	if rep, _ := st.OnAccess(acc(1, 1, Write, 0, 1, 0), 1, vclock.Masked{}); rep != nil {
		t.Fatalf("init write raced: %v", rep)
	}
	// Both readers have absorbed the initialisation (e.g. via a barrier):
	// clocks dominate W but are concurrent with each other.
	r0 := acc(0, 1, Read, 1, 2, 0)
	r2 := acc(2, 1, Read, 0, 2, 1)
	if !vclock.ConcurrentWith(r0.Clock, r2.Clock) {
		t.Fatal("test setup: readers must be mutually concurrent")
	}
	if rep, _ := st.OnAccess(r0, 1, vclock.Masked{}); rep != nil {
		t.Fatalf("read 1 falsely raced: %v", rep)
	}
	if rep, _ := st.OnAccess(r2, 1, vclock.Masked{}); rep != nil {
		t.Fatalf("read 2 falsely raced: %v", rep)
	}
}

func TestVWReadAgainstConcurrentWriteRaces(t *testing.T) {
	d := NewVWDetector()
	st := d.NewAreaState(2)
	if rep, _ := st.OnAccess(acc(0, 1, Write, 1, 0), 0, vclock.Masked{}); rep != nil {
		t.Fatal("unexpected race")
	}
	rep, _ := st.OnAccess(acc(1, 1, Read, 0, 1), 0, vclock.Masked{})
	if rep == nil {
		t.Fatal("read concurrent with write must race")
	}
	if rep.Prior == nil || rep.Prior.Kind != Write {
		t.Fatal("prior context should be the write")
	}
}

func TestVWWriteAfterConcurrentReadRaces(t *testing.T) {
	d := NewVWDetector()
	st := d.NewAreaState(2)
	st.OnAccess(acc(0, 1, Read, 1, 0), 0, vclock.Masked{})
	rep, _ := st.OnAccess(acc(1, 1, Write, 0, 1), 0, vclock.Masked{})
	if rep == nil {
		t.Fatal("write concurrent with a read must race (write checks V)")
	}
	if rep.Prior == nil || rep.Prior.Kind != Read {
		t.Fatalf("prior should be the read: %+v", rep.Prior)
	}
}

func TestVWReaderAbsorbsWriteClock(t *testing.T) {
	d := NewVWDetector()
	st := d.NewAreaState(2)
	_, wclk := st.OnAccess(acc(0, 1, Write, 1, 0), 0, vclock.Masked{})
	_ = wclk
	_, absorbed := st.OnAccess(acc(1, 1, Read, 1, 1), 0, vclock.Masked{})
	// Reply to a read carries W so the reader inherits the reads-from edge.
	if absorbed.V.String() != "20" { // write merged 10, home tick -> 20
		t.Fatalf("read reply clock = %s, want 20", absorbed.V)
	}
}

func TestVWHomeTickAblation(t *testing.T) {
	d := &VWDetector{TickHomeOnWrite: false}
	st := d.NewAreaState(3)
	_, clk := st.OnAccess(acc(0, 1, Write, 1, 0, 0), 1, vclock.Masked{})
	if clk.V.String() != "100" {
		t.Fatalf("passive home: clock = %s, want 100", clk.V)
	}
}

func TestVWStorageBytesDoubles(t *testing.T) {
	// §IV-D: the W clock doubles detection memory.
	n := 16
	vw := NewVWDetector().NewAreaState(n)
	single := vw.StorageBytes()
	// Each clock stores its fixed wire bytes plus the occupancy mask (8
	// bytes per 64 components) the masked representation keeps locally.
	want := 2 * (2 + 8*n + 8*vclock.MaskWords(n))
	if single != want {
		t.Fatalf("VW storage = %d, want %d", single, want)
	}
}

func TestClockAccessor(t *testing.T) {
	st := NewVWDetector().NewAreaState(2).(ClockAccessor)
	v, w := st.Clocks()
	if !v.IsZero() || !w.IsZero() {
		t.Fatal("fresh clocks must be zero")
	}
	st.SetClocks(vclock.VC{3, 0}, vclock.VC{1, 0})
	v, w = st.Clocks()
	if v.String() != "30" || w.String() != "10" {
		t.Fatalf("after SetClocks: %s %s", v, w)
	}
	// Partial update.
	st.SetClocks(nil, vclock.VC{2, 2})
	v, w = st.Clocks()
	if v.String() != "30" || w.String() != "22" {
		t.Fatalf("after partial SetClocks: %s %s", v, w)
	}
	// Returned clocks must be copies.
	v.Tick(0)
	v2, _ := st.Clocks()
	if v2.String() != "30" {
		t.Fatal("Clocks leaked internal state")
	}
}

func TestCollector(t *testing.T) {
	var seen int
	c := &Collector{Limit: 2, OnReport: func(Report) { seen++ }}
	for i := 0; i < 5; i++ {
		c.Signal(Report{Detector: "vw"})
	}
	if len(c.Reports()) != 2 {
		t.Fatalf("stored %d, want 2", len(c.Reports()))
	}
	if c.Total() != 5 || seen != 5 {
		t.Fatalf("total=%d seen=%d, want 5", c.Total(), seen)
	}
	unlimited := &Collector{}
	for i := 0; i < 3; i++ {
		unlimited.Signal(Report{})
	}
	if len(unlimited.Reports()) != 3 {
		t.Fatal("unlimited collector must keep everything")
	}
}

func TestReportStringAndPair(t *testing.T) {
	prior := acc(0, 7, Write, 1, 0)
	r := Report{
		Detector:    "vw",
		Area:        3,
		Current:     acc(1, 9, Read, 0, 1),
		StoredClock: vclock.VC{1, 0},
		Prior:       &prior,
	}
	s := r.String()
	for _, want := range []string{"RACE", "vw", "P1", "P0", "read", "write"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	a, b, ok := r.Pair()
	if !ok || a != [2]uint64{1, 9} || b != [2]uint64{0, 7} {
		t.Fatalf("Pair = %v %v %v", a, b, ok)
	}
	r.Prior = nil
	if _, _, ok := r.Pair(); ok {
		t.Fatal("Pair without prior must report !ok")
	}
}

func TestAccessKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("AccessKind.String broken")
	}
}

func TestVWSequentialAccessesNeverRace(t *testing.T) {
	// A single process hammering an area is always ordered by program order.
	d := NewVWDetector()
	st := d.NewAreaState(2)
	clk := vclock.New(2)
	for i := 0; i < 50; i++ {
		clk.Tick(0)
		kind := Write
		if i%3 == 0 {
			kind = Read
		}
		rep, absorbed := st.OnAccess(Access{Proc: 0, Seq: uint64(i), Kind: kind, Clock: clk.Copy()}, 1, vclock.Masked{})
		if rep != nil {
			t.Fatalf("op %d raced: %v", i, rep)
		}
		clk.Merge(absorbed.V)
	}
}
