package core

import (
	"math/rand"
	"testing"

	"dsmrace/internal/vclock"
)

// refHistory is a brute-force full-history oracle: it stores every access
// clock and decides races pairwise.
type refHistory struct {
	entries []Access
}

func (h *refHistory) check(acc Access) bool {
	for _, prev := range h.entries {
		if acc.Kind == Read && prev.Kind == Read {
			continue
		}
		if vclock.ConcurrentWith(acc.Clock, prev.Clock) {
			return true
		}
	}
	return false
}

func (h *refHistory) add(acc Access) { h.entries = append(h.entries, acc) }

// TestExactVWMatchesFullHistoryOracle drives random access streams with
// random causal structure through the exact detector and the brute-force
// oracle simultaneously: the merged-summary check (K against V or W) must
// agree with the pairwise answer on every single access. This is the formal
// backbone of the "vw-exact is exact" claim.
func TestExactVWMatchesFullHistoryOracle(t *testing.T) {
	const procs = 5
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		det := NewExactVWDetector()
		st := det.NewAreaState(procs)
		oracle := &refHistory{}
		clocks := make([]vclock.VC, procs)
		for i := range clocks {
			clocks[i] = vclock.New(procs)
		}
		var lastV, lastW vclock.VC
		lastV, lastW = vclock.New(procs), vclock.New(procs)

		for step := 0; step < 120; step++ {
			p := rng.Intn(procs)
			kind := Write
			if rng.Intn(2) == 0 {
				kind = Read
			}
			// Random extra causality: sometimes absorb another process's
			// clock (models locks/barriers/messages between the procs).
			if rng.Intn(4) == 0 {
				q := rng.Intn(procs)
				clocks[p].Merge(clocks[q])
			}
			clocks[p].Tick(p)
			acc := Access{Proc: p, Seq: uint64(step), Kind: kind, Clock: clocks[p].Copy()}

			want := oracle.check(acc)
			rep, absorb := st.OnAccess(acc, 0, vclock.Masked{})
			got := rep != nil
			if got != want {
				t.Fatalf("seed %d step %d: detector=%v oracle=%v for %v (V=%s W=%s)",
					seed, step, got, want, acc, lastV, lastW)
			}
			oracle.add(acc)
			// Mirror the runtime absorption: writers absorb V, readers W.
			if !absorb.IsNil() {
				clocks[p].Merge(absorb.V)
			}
			ca := st.(ClockAccessor)
			lastV, lastW = ca.Clocks()
		}
	}
}

// TestHomeTickMasksConcurrency is the minimal deterministic witness of the
// reproduction finding in DESIGN.md: the home tick occupies the home
// process's clock component, so a write by the *home process itself* that
// is genuinely concurrent with a remote write can compare as "ordered"
// against the tick-inflated area clock and slip past the paper-mode
// detector. The exact variant flags it.
func TestHomeTickMasksConcurrency(t *testing.T) {
	// Area homed on node 0. P1 writes first (clock 010), then P0 writes
	// concurrently (clock 100, no knowledge of P1's write).
	w1 := Access{Proc: 1, Seq: 1, Kind: Write, Clock: vclock.VC{0, 1, 0}}
	w0 := Access{Proc: 0, Seq: 1, Kind: Write, Clock: vclock.VC{1, 0, 0}}
	if !vclock.ConcurrentWith(w0.Clock, w1.Clock) {
		t.Fatal("setup: the writes must be concurrent")
	}

	exact := NewExactVWDetector().NewAreaState(3)
	exact.OnAccess(w1, 0, vclock.Masked{})
	if rep, _ := exact.OnAccess(w0, 0, vclock.Masked{}); rep == nil {
		t.Fatal("exact mode must flag the concurrent write")
	}

	paper := NewVWDetector().NewAreaState(3)
	paper.OnAccess(w1, 0, vclock.Masked{}) // V becomes 110: merge(010) + tick of home 0
	if rep, _ := paper.OnAccess(w0, 0, vclock.Masked{}); rep != nil {
		// K=100 vs V=110 compares Before — the tick masked the race. If
		// this ever starts flagging, the semantics changed; update
		// DESIGN.md's finding.
		t.Fatalf("paper mode unexpectedly flagged: %v (home-tick semantics changed?)", rep)
	}
}
