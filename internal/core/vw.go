package core

import (
	"dsmrace/internal/vclock"
)

// CheckWrite is Algorithm 1's race test: a remote write with initiator
// clock k races iff k is concurrent with the area's general-purpose clock v
// (a causally unrelated prior access of any kind exists). Pure function so
// the literal protocol can run it at the initiator after fetching v.
func CheckWrite(k, v vclock.VC) bool { return vclock.ConcurrentWith(k, v) }

// CheckRead is Algorithm 2's race test: a remote read with initiator clock
// k races iff k is concurrent with the area's *write* clock w. Comparing
// against w rather than v is the paper's false-positive refinement (§IV-D):
// concurrent read-only accesses never race.
func CheckRead(k, w vclock.VC) bool { return vclock.ConcurrentWith(k, w) }

// VWState is the paper's per-area detection state: the general-purpose
// clock V and the write clock W (§IV-A), plus best-effort context about the
// most recent conflicting accesses for report quality.
type VWState struct {
	V vclock.VC
	W vclock.VC
	// lastWrite and lastRead provide Prior context in reports.
	lastWrite *Access
	lastRead  *Access
	name      string
}

// VWDetector implements the paper's detector.
//
// TickHomeOnWrite controls whether a write-apply increments the home
// component of the area clock, modelling the reception as an event of the
// home node exactly as the figures do (Fig. 5: P1 moving to 110 after m1).
//
// The tick makes the detector *conservative*: the home component of an area
// clock shares its index with the home process's own event counter, so a
// process whose clock dominates every prior access clock may still miss
// tick counts it never gossiped — a flagged access with no concurrent
// conflicting partner. Soundness is unaffected (every true race is still
// flagged; see TestPaperModeIsSoundButConservative). Disabling the tick
// gives the exact detector, whose verdicts coincide with pairwise ground
// truth — the E-T10 ablation quantifies the difference.
type VWDetector struct {
	// TickHomeOnWrite: see above. The paper's figures require true.
	TickHomeOnWrite bool
}

// NewVWDetector returns the detector configured as in the paper's figures.
func NewVWDetector() *VWDetector { return &VWDetector{TickHomeOnWrite: true} }

// NewExactVWDetector returns the variant without the home tick, whose
// flags match exact pairwise ground truth.
func NewExactVWDetector() *VWDetector { return &VWDetector{TickHomeOnWrite: false} }

// Name implements Detector.
func (d *VWDetector) Name() string {
	if d.TickHomeOnWrite {
		return "vw"
	}
	return "vw-exact"
}

// NewAreaState implements Detector.
func (d *VWDetector) NewAreaState(n int) AreaState {
	return &vwAreaState{
		det: d,
		st:  VWState{V: vclock.New(n), W: vclock.New(n)},
	}
}

type vwAreaState struct {
	det *VWDetector
	st  VWState
}

// OnAccess implements AreaState: Algorithm 1 (writes) and Algorithm 2
// (reads), with the clock updates of Algorithms 4–5 folded in.
func (s *vwAreaState) OnAccess(acc Access, home int) (*Report, vclock.VC) {
	var rep *Report
	switch acc.Kind {
	case Write:
		if CheckWrite(acc.Clock, s.st.V) {
			rep = s.report(acc, s.st.V.Copy(), s.conflictContext(acc))
		}
		// update_clock + update_clock_W (Algorithms 4–5): merge the
		// initiator's clock, count the write as an event of the home node,
		// and advance the write clock to the new access clock.
		s.st.V.Merge(acc.Clock)
		if s.det.TickHomeOnWrite {
			s.st.V.Tick(home)
		}
		s.st.W = s.st.V.Copy()
		a := acc
		s.st.lastWrite = &a
		// The initiator absorbs the merged clock on the ack (production
		// mode; the runtime decides whether to apply it).
		return rep, s.st.V.Copy()
	default: // Read
		if CheckRead(acc.Clock, s.st.W) {
			rep = s.report(acc, s.st.W.Copy(), s.st.lastWrite)
		}
		// Reads mark the access clock but are not write events: no home
		// tick, no W update.
		s.st.V.Merge(acc.Clock)
		a := acc
		s.st.lastRead = &a
		// The reply carries W: the reader absorbs the clock of the write it
		// observed (reads-from edge).
		return rep, s.st.W.Copy()
	}
}

// conflictContext picks the most useful prior access to attach to a write
// race: a concurrent prior write if one is known, else a concurrent prior
// read, else whichever access is recorded.
func (s *vwAreaState) conflictContext(acc Access) *Access {
	if s.st.lastWrite != nil && vclock.ConcurrentWith(acc.Clock, s.st.lastWrite.Clock) {
		return s.st.lastWrite
	}
	if s.st.lastRead != nil && vclock.ConcurrentWith(acc.Clock, s.st.lastRead.Clock) {
		return s.st.lastRead
	}
	if s.st.lastWrite != nil {
		return s.st.lastWrite
	}
	return s.st.lastRead
}

func (s *vwAreaState) report(acc Access, stored vclock.VC, prior *Access) *Report {
	return &Report{
		Detector:    s.det.Name(),
		Area:        acc.Area,
		Current:     acc,
		StoredClock: stored,
		Prior:       prior,
		Time:        acc.Time,
	}
}

// StorageBytes implements AreaState: two vector clocks — the paper's
// "drawback ... it doubles the necessary amount of memory" (§IV-D).
func (s *vwAreaState) StorageBytes() int {
	return s.st.V.WireSize() + s.st.W.WireSize()
}

// Clocks exposes copies of (V, W) for the literal protocol's get_clock /
// get_clock_W operations and for tests.
func (s *vwAreaState) Clocks() (v, w vclock.VC) {
	return s.st.V.Copy(), s.st.W.Copy()
}

// SetClocks overwrites the stored clocks — the literal protocol's put_clock
// after the initiator computed max_clock locally.
func (s *vwAreaState) SetClocks(v, w vclock.VC) {
	if v != nil {
		s.st.V = v.Copy()
	}
	if w != nil {
		s.st.W = w.Copy()
	}
}

// ClockAccessor is implemented by clock-based area states that support the
// literal protocol's remote clock read/write primitives.
type ClockAccessor interface {
	Clocks() (v, w vclock.VC)
	SetClocks(v, w vclock.VC)
}

var _ ClockAccessor = (*vwAreaState)(nil)
