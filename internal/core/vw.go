package core

import (
	"dsmrace/internal/vclock"
)

// CheckWrite is Algorithm 1's race test: a remote write with initiator
// clock k races iff k is concurrent with the area's general-purpose clock v
// (a causally unrelated prior access of any kind exists). Pure function so
// the literal protocol can run it at the initiator after fetching v.
func CheckWrite(k, v vclock.VC) bool { return vclock.ConcurrentWith(k, v) }

// CheckRead is Algorithm 2's race test: a remote read with initiator clock
// k races iff k is concurrent with the area's *write* clock w. Comparing
// against w rather than v is the paper's false-positive refinement (§IV-D):
// concurrent read-only accesses never race.
func CheckRead(k, w vclock.VC) bool { return vclock.ConcurrentWith(k, w) }

// maskedClock wraps an access's clock and occupancy mask for the masked
// clock walks (a nil mask means dense — observationally identical).
func maskedClock(acc Access) vclock.Masked {
	return vclock.Masked{V: acc.Clock, M: acc.ClockNZ}
}

// VWDetector implements the paper's detector.
//
// TickHomeOnWrite controls whether a write-apply increments the home
// component of the area clock, modelling the reception as an event of the
// home node exactly as the figures do (Fig. 5: P1 moving to 110 after m1).
//
// The tick makes the detector *conservative*: the home component of an area
// clock shares its index with the home process's own event counter, so a
// process whose clock dominates every prior access clock may still miss
// tick counts it never gossiped — a flagged access with no concurrent
// conflicting partner. Soundness is unaffected (every true race is still
// flagged; see TestPaperModeIsSoundButConservative). Disabling the tick
// gives the exact detector, whose verdicts coincide with pairwise ground
// truth — the E-T10 ablation quantifies the difference.
type VWDetector struct {
	// TickHomeOnWrite: see above. The paper's figures require true.
	TickHomeOnWrite bool
}

// NewVWDetector returns the detector configured as in the paper's figures.
func NewVWDetector() *VWDetector { return &VWDetector{TickHomeOnWrite: true} }

// NewExactVWDetector returns the variant without the home tick, whose
// flags match exact pairwise ground truth.
func NewExactVWDetector() *VWDetector { return &VWDetector{TickHomeOnWrite: false} }

// Name implements Detector.
func (d *VWDetector) Name() string {
	if d.TickHomeOnWrite {
		return "vw"
	}
	return "vw-exact"
}

// NewAreaState implements Detector.
func (d *VWDetector) NewAreaState(n int) AreaState {
	return &vwAreaState{
		det:  d,
		v:    vclock.NewMasked(n),
		w:    vclock.NewMasked(n),
		wIsV: false,
	}
}

// vwAreaState is the paper's per-area detection state — the general-purpose
// clock V and the write clock W (§IV-A) — maintained allocation-free in
// steady state and sublinear in cluster size on communication-local
// workloads:
//
//   - V and W carry occupancy masks (vclock.Masked): every clock walk
//     skips spans both sides can prove zero, so an area touched by k of the
//     n processes costs O(k) per access, not O(n).
//   - W is a copy-on-write alias of V: a write sets W = V conceptually
//     (Algorithm 5), which the state records as a flag instead of a copy.
//     The stored W bytes are materialised only when a later read is about
//     to diverge V from W.
//   - The write path is compare-then-fold: the order decides whether the
//     fold is a block copy (covering writer), a no-op (covered writer) or —
//     only when racing — a snapshot plus a real merge.
//   - Last-access context for report quality is stored by value in
//     state-owned buffers, so reports borrow rather than allocate.
type vwAreaState struct {
	det *VWDetector
	v   vclock.Masked
	// w holds the write clock's storage. When wIsV is set the logical W
	// equals V and w's contents are stale.
	w    vclock.Masked
	wIsV bool
	// elide: see core.AbsorbElider.
	elide bool

	// lastWrite and lastRead provide Prior context in reports; their Clock
	// fields point into the state-owned lwClock/lrClock buffers.
	lastWrite, lastRead       Access
	hasLastWrite, hasLastRead bool
	lwClock, lrClock          vclock.Masked

	// repClock and priorBuf back the StoredClock and Prior fields of
	// returned reports (borrowed; see AreaState.OnAccess).
	repClock   vclock.VC
	priorBuf   Access
	priorClock vclock.VC
}

// EnableAbsorbElision implements AbsorbElider.
func (s *vwAreaState) EnableAbsorbElision() { s.elide = true }

// wClock returns the logical write clock, honouring the copy-on-write alias.
func (s *vwAreaState) wClock() vclock.Masked {
	if s.wIsV {
		return s.v
	}
	return s.w
}

// OnAccess implements AreaState: Algorithm 1 (writes) and Algorithm 2
// (reads), with the clock updates of Algorithms 4–5 folded in.
func (s *vwAreaState) OnAccess(acc Access, home int, absorb vclock.Masked) (*Report, vclock.Masked) {
	var rep *Report
	in := maskedClock(acc)
	switch acc.Kind {
	case Write:
		// Algorithm 3 classifies the writer against V, then Algorithm 4
		// folds it in — and the fold's shape follows from the order, so
		// each pass stays cheap: a covering writer (After, which
		// lock-disciplined traffic produces on nearly every write) replaces
		// V with a masked block copy, a covered writer (Before/Equal)
		// changes nothing, and only the racing case pays for the pre-merge
		// snapshot a report must show plus a real merge — and there the
		// compare early-exited the moment both directions were seen.
		ord := in.Compare(s.v)
		switch ord {
		case vclock.Concurrent: // CheckWrite
			s.repClock = s.v.V.CopyInto(s.repClock)
			rep = s.report(acc, s.conflictContext(in))
			s.v.Merge(in)
		case vclock.After:
			s.v = in.CopyInto(s.v)
		}
		// Count the write as an event of the home node (Algorithm 5) and
		// advance the write clock: W = V is recorded as an alias, not a
		// copy.
		if s.det.TickHomeOnWrite {
			s.v.Tick(home)
		}
		s.wIsV = true
		s.setLast(&s.lastWrite, &s.lwClock, &s.hasLastWrite, acc)
		// The initiator absorbs the merged clock on the ack (production
		// mode; the runtime decides whether to apply it). A covering writer
		// with no home tick already *is* the merged clock: elide as covered.
		if s.elide && !s.det.TickHomeOnWrite && (ord == vclock.After || ord == vclock.Equal) {
			return rep, vclock.Masked{Covered: true}
		}
		return rep, s.v.CopyInto(absorb)
	default: // Read
		// Reads mark the access clock but are not write events: no home
		// tick, no W update. While W aliases V, one comparison against V
		// answers every question at once — is the read racing W(=V)
		// (CheckRead, Algorithm 3), must W diverge, and is the reply's W
		// already covered by the reader. A covering reader replaces V
		// outright: W adopts V's old buffer (its correct value) and V
		// becomes a copy of the reader's clock.
		covered := false
		if s.wIsV {
			ord := in.Compare(s.v)
			switch ord {
			case vclock.Concurrent: // CheckRead
				s.repClock = s.v.V.CopyInto(s.repClock)
				rep = s.report(acc, s.priorWrite())
				s.w = s.v.CopyInto(s.w)
				s.wIsV = false
				s.v.Merge(in)
			case vclock.After:
				// max(V, in) = in: swap the buffers instead of copying V
				// aside and merging.
				s.v, s.w = s.w, s.v
				s.v = in.CopyInto(s.v)
				s.wIsV = false
			}
			// in ≥ W(=V before any divergence): absorbing W is a no-op.
			covered = ord == vclock.After || ord == vclock.Equal
		} else {
			ord := in.Compare(s.w)
			if ord == vclock.Concurrent { // CheckRead
				s.repClock = s.w.V.CopyInto(s.repClock)
				rep = s.report(acc, s.priorWrite())
			}
			s.v.MergeAndCompare(in)
			covered = ord == vclock.After || ord == vclock.Equal
		}
		s.setLast(&s.lastRead, &s.lrClock, &s.hasLastRead, acc)
		// The reply carries W: the reader absorbs the clock of the write it
		// observed (reads-from edge) — elided as covered when the reader
		// provably observed that write already.
		if s.elide && covered {
			return rep, vclock.Masked{Covered: true}
		}
		return rep, s.wClock().CopyInto(absorb)
	}
}

// setLast records acc into a state-owned last-access slot, copying its
// clock (and mask) into the slot's buffer so the caller's clock is not
// retained.
func (s *vwAreaState) setLast(slot *Access, clk *vclock.Masked, has *bool, acc Access) {
	*clk = maskedClock(acc).CopyInto(*clk)
	*slot = acc
	slot.Clock = clk.V
	slot.ClockNZ = clk.M
	*has = true
}

// priorWrite returns the last write as report context, or nil.
func (s *vwAreaState) priorWrite() *Access {
	if s.hasLastWrite {
		return &s.lastWrite
	}
	return nil
}

// conflictContext picks the most useful prior access to attach to a write
// race: a concurrent prior write if one is known, else a concurrent prior
// read, else whichever access is recorded.
func (s *vwAreaState) conflictContext(in vclock.Masked) *Access {
	if s.hasLastWrite && in.ConcurrentWith(s.lwClock) {
		return &s.lastWrite
	}
	if s.hasLastRead && in.ConcurrentWith(s.lrClock) {
		return &s.lastRead
	}
	if s.hasLastWrite {
		return &s.lastWrite
	}
	if s.hasLastRead {
		return &s.lastRead
	}
	return nil
}

// report builds a race report around the repClock scratch the caller has
// already rebuilt (the pre-update stored clock); prior (a pointer into
// the last-access slots) is snapshotted into priorBuf because the same
// OnAccess call overwrites those slots on its way out.
func (s *vwAreaState) report(acc Access, prior *Access) *Report {
	rep := &Report{
		Detector:    s.det.Name(),
		Area:        acc.Area,
		Current:     acc,
		StoredClock: s.repClock,
		Time:        acc.Time,
	}
	if prior != nil {
		s.priorClock = prior.Clock.CopyInto(s.priorClock)
		s.priorBuf = *prior
		s.priorBuf.Clock = s.priorClock
		s.priorBuf.ClockNZ = nil
		rep.Prior = &s.priorBuf
	}
	return rep
}

// StorageBytes implements AreaState: two vector clocks — the paper's
// "drawback ... it doubles the necessary amount of memory" (§IV-D) — plus
// their occupancy masks (8 bytes per 64 components each). The copy-on-write
// alias is an implementation detail; the modelled cost keeps both clocks.
func (s *vwAreaState) StorageBytes() int {
	return 2 * s.v.StorageBytes()
}

// Clocks exposes copies of (V, W) for the literal protocol's get_clock /
// get_clock_W operations and for tests.
func (s *vwAreaState) Clocks() (v, w vclock.VC) {
	return s.v.V.Copy(), s.wClock().V.Copy()
}

// SetClocks overwrites the stored clocks — the literal protocol's put_clock
// after the initiator computed max_clock locally. Raw clock writes carry no
// masks, so the stored masks saturate (dense fallback).
func (s *vwAreaState) SetClocks(v, w vclock.VC) {
	if s.wIsV {
		// Break the alias first: a partial update must not drag the other
		// clock along.
		s.w = s.v.CopyInto(s.w)
		s.wIsV = false
	}
	if v != nil {
		s.v = vclock.Dense(v).CopyInto(s.v)
	}
	if w != nil {
		s.w = vclock.Dense(w).CopyInto(s.w)
	}
}

// ClockAccessor is implemented by clock-based area states that support the
// literal protocol's remote clock read/write primitives.
type ClockAccessor interface {
	Clocks() (v, w vclock.VC)
	SetClocks(v, w vclock.VC)
}

var _ ClockAccessor = (*vwAreaState)(nil)
