// Package core implements the paper's contribution: an online race-condition
// detector for RDMA-based distributed shared memory built purely on vector
// clocks (§IV, Algorithms 1–5).
//
// Every shared memory area carries two clocks — a general-purpose clock V
// updated by every access and a write clock W updated by writes only
// (§IV-A). An incoming operation carries the initiator's vector clock K
// (ticked before the operation, Algorithm 1/2's update_local_clock). A
// *write* races iff K is concurrent with V: some prior access is causally
// unrelated to the write. A *read* races iff K is concurrent with W: it only
// conflicts with prior writes, which is exactly how the W clock eliminates
// the false positives that concurrent read-only accesses would otherwise
// produce (Fig. 4, §IV-D).
//
// The package exposes the decision logic both as a stateful per-area
// Detector (used by the piggyback protocol, where the home NIC checks and
// updates under its local lock) and as pure check functions (used by the
// literal protocol, where the initiating library fetches the remote clocks,
// compares locally per Algorithm 3 and writes back merged clocks per
// Algorithms 4–5).
package core
