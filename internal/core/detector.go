package core

import (
	"fmt"

	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// AccessKind distinguishes remote reads (get) from remote writes (put).
type AccessKind int

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// Access describes one remote memory operation as seen by a detector.
type Access struct {
	// Proc is the initiating process.
	Proc int
	// Seq is the initiator's per-process operation sequence number; together
	// with Proc it identifies the operation in traces and ground truth.
	Seq uint64
	// Area is the shared variable being accessed.
	Area memory.AreaID
	// Kind is Read (get) or Write (put).
	Kind AccessKind
	// Clock is the initiator's vector clock K, ticked just before the
	// operation was issued.
	Clock vclock.VC
	// ClockNZ is Clock's occupancy mask (see vclock.Mask); nil means dense.
	// Purely an accelerator: detectors use it to skip provably-zero clock
	// spans, never to decide values.
	ClockNZ vclock.Mask
	// Locks are the user-level locks held by the initiator, for
	// lockset-style detectors. Nil when none.
	Locks []int
	// Time is the virtual time the operation was checked.
	Time sim.Time
}

// String renders the access compactly for reports.
func (a Access) String() string {
	return fmt.Sprintf("%s by P%d (op %d) on area %d with clock %s", a.Kind, a.Proc, a.Seq, a.Area, a.Clock)
}

// Report is one signalled race condition. Per §IV-D races are signalled and
// never abort the execution: some algorithms race on purpose.
type Report struct {
	// Detector is the name of the detector that produced the report.
	Detector string
	// Area is the shared variable involved.
	Area memory.AreaID
	// Current is the access whose check failed.
	Current Access
	// StoredClock is the area clock Current was compared against (V for
	// writes, W for reads, in the paper's detector).
	StoredClock vclock.VC
	// Prior is best-effort context: the most recent conflicting access known
	// to the detector. The merged clock is authoritative; Prior may not be
	// the only conflicting operation.
	Prior *Access
	// Time is the virtual detection time.
	Time sim.Time
}

// String renders the report in the signal_race_condition format.
func (r Report) String() string {
	s := fmt.Sprintf("RACE [%s] t=%v area=%d: %s is concurrent with area clock %s",
		r.Detector, r.Time, r.Area, r.Current, r.StoredClock)
	if r.Prior != nil {
		s += fmt.Sprintf(" (last conflicting: %s)", *r.Prior)
	}
	return s
}

// Clone returns a copy of the report that shares no storage with the
// detector state that produced it. Reports returned by OnAccess borrow
// their StoredClock and Prior from per-state scratch buffers (the
// zero-allocation contract); anything that retains a report past the next
// OnAccess call on the same state must Clone it first.
//
// Current.Clock is copied too: the initiator's clock rides in a per-process
// scratch buffer that the process's *next* operation overwrites, so a
// retained report must own its bytes.
func (r Report) Clone() Report {
	c := r
	c.StoredClock = r.StoredClock.Copy()
	c.Current.Clock = r.Current.Clock.Copy()
	c.Current.ClockNZ = nil
	if r.Prior != nil {
		p := *r.Prior
		p.Clock = r.Prior.Clock.Copy()
		p.ClockNZ = nil
		if r.Prior.Locks != nil {
			p.Locks = append([]int(nil), r.Prior.Locks...)
		}
		c.Prior = &p
	}
	return c
}

// Pair returns the unordered (proc,seq) endpoints of the report when prior
// context exists, for matching against ground truth.
func (r Report) Pair() (a, b [2]uint64, ok bool) {
	if r.Prior == nil {
		return a, b, false
	}
	a = [2]uint64{uint64(r.Current.Proc), r.Current.Seq}
	b = [2]uint64{uint64(r.Prior.Proc), r.Prior.Seq}
	return a, b, true
}

// AreaState is per-area (or per-node, at node granularity) detector state
// owned by the home NIC. Implementations are not safe for real concurrent
// use; the simulation serialises all calls, mirroring the paper's
// requirement that the area lock is held around check+update ("Since the
// shared memory area is locked, there cannot exist a race condition between
// the remote memory accesses induced by the detection mechanism").
type AreaState interface {
	// OnAccess checks acc against the state, then folds acc into the state.
	// It returns a non-nil report iff a race is detected, and the clock the
	// initiator should absorb (IsNil when the detector is not clock-based).
	//
	// absorb is a caller-owned scratch buffer: when the detector returns a
	// clock it copies into absorb (growing it as needed, values and
	// occupancy mask together) and returns the result, so a caller that
	// threads the returned buffer back in performs no allocation in steady
	// state. Pass the zero Masked to get a freshly allocated clock.
	//
	// The returned report borrows its StoredClock and Prior fields from
	// per-state scratch storage; they are valid until the next OnAccess call
	// on this state. Retain with Report.Clone (Collector.Signal clones).
	// The state may also retain acc.Clock only until it returns: it copies
	// what it needs into its own buffers.
	OnAccess(acc Access, home int, absorb vclock.Masked) (*Report, vclock.Masked)
	// StorageBytes reports the bytes of detection metadata held for the
	// area — the storage-overhead measurement of E-T1 (§V-A).
	StorageBytes() int
}

// AbsorbElider is implemented by area states that can prove an absorb
// clock is already covered by the access's own clock and skip materialising
// it (returning a Covered Masked instead). The transport opts in per run:
// elision is only sound when the reply's clock bytes can be accounted
// without the value (fixed wire format, no CompressClocks) and nothing else
// consumes the reply clock (no caching coherence protocol).
type AbsorbElider interface {
	EnableAbsorbElision()
}

// Detector manufactures per-area state.
type Detector interface {
	// Name identifies the detector in reports and tables.
	Name() string
	// NewAreaState returns fresh state for one area of a system with n
	// processes.
	NewAreaState(n int) AreaState
}

// reportChunk is the collector's storage unit. Racy workloads can signal
// hundreds of thousands of reports; a chunked list appends in O(1) without
// ever re-copying (and re-zeroing) a doubling backing array, which showed up
// as the single largest cost in throughput benchmarks.
const reportChunk = 512

// Collector gathers reports with an optional cap and callback. It
// implements the paper's signalling policy: record and continue.
//
// Stored reports' clock fields are interned: reports whose StoredClock,
// Current.Clock or Prior.Clock are equal by value share one immutable
// snapshot (see intern.go), so a racy run that signals thousands of reports
// against the same handful of area clocks holds each distinct clock once.
// Reports returned by Reports() (or passed to OnReport) are therefore
// read-only: mutating a clock in one would silently corrupt every report
// sharing it. Set NoIntern to fall back to fully independent per-report
// copies.
type Collector struct {
	// Limit caps stored reports (0 = unlimited). Detection continues past
	// the limit; only storage stops.
	Limit int
	// OnReport, when non-nil, is invoked for every report (even past Limit).
	OnReport func(Report)
	// NoIntern disables report-clock interning: every stored report owns
	// private copies of its clocks (the pre-interning behaviour; used by
	// callers that mutate reports, and by the interning equivalence tests).
	NoIntern bool
	// Sample, when non-zero, stores only a deterministic subset of the
	// signalled reports — for runs where even interned reports are too
	// many. Default (the zero SampleSpec) stores everything.
	Sample SampleSpec

	chunks    [][]Report
	stored    int
	total     int
	flat      []Report // cached Reports() result; nil after a new Signal
	intern    clockIntern
	areaCount map[memory.AreaID]int
	sstats    SampleStats
}

// SampleSpec selects the collector's deterministic sampling mode. Sampling
// decides purely from the signal sequence — the Nth signal and the per-area
// stored count — never from wall time or randomness, so the sampled set is
// a deterministic subset of the full run's reports: re-running the same
// schedule without sampling yields a superset in the same relative order.
// Total() still counts every signalled race, and OnReport still sees every
// report; only storage is thinned.
type SampleSpec struct {
	// EveryN stores the 1st, (N+1)th, (2N+1)th... signalled report
	// (0 or 1 = store every signal).
	EveryN int
	// AreaCap caps stored reports per area (0 = uncapped). Applied after
	// EveryN: a report that passes the stride but lands on a full area is
	// dropped and counted in SampleStats.
	AreaCap int
}

func (s SampleSpec) enabled() bool { return s.EveryN > 1 || s.AreaCap > 0 }

// SampleStats describes what sampling kept and dropped.
type SampleStats struct {
	// Seen counts reports that reached the sampler (signalled while
	// storage was still below Limit).
	Seen int
	// Stored counts reports kept.
	Stored int
	// DroppedStride counts reports dropped by the EveryN stride.
	DroppedStride int
	// DroppedAreaCap counts reports dropped by a full per-area budget.
	DroppedAreaCap int
}

// SampleStats returns the sampling counters (all zero when sampling is off
// or never engaged).
func (c *Collector) SampleStats() SampleStats { return c.sstats }

// sampleAdmit applies the deterministic sampling decision for a report
// about to be stored.
func (c *Collector) sampleAdmit(r *Report) bool {
	c.sstats.Seen++
	if c.Sample.EveryN > 1 && (c.sstats.Seen-1)%c.Sample.EveryN != 0 {
		c.sstats.DroppedStride++
		return false
	}
	if c.Sample.AreaCap > 0 {
		if c.areaCount == nil {
			c.areaCount = make(map[memory.AreaID]int)
		}
		if c.areaCount[r.Area] >= c.Sample.AreaCap {
			c.sstats.DroppedAreaCap++
			return false
		}
		c.areaCount[r.Area]++
	}
	c.sstats.Stored++
	return true
}

// Signal records a report. The report is deep-copied on the way in:
// detectors hand out reports whose clock fields borrow per-state scratch
// buffers, and the collector outlives them. Reports dropped by Limit with
// no callback to observe them are counted without paying for the copy.
func (c *Collector) Signal(r Report) {
	c.total++
	retain := c.Limit == 0 || c.stored < c.Limit
	if retain && c.Sample.enabled() && !c.sampleAdmit(&r) {
		retain = false // sampled out: counted, streamed, not stored
	}
	if !retain && c.OnReport == nil {
		return
	}
	// Intern only reports that will actually be stored: a report merely
	// streamed to OnReport past Limit gets a plain GC-able clone, so the
	// intern table stays bounded by the retained reports (and InternStats
	// keeps describing exactly them).
	if c.NoIntern || !retain {
		r = r.Clone()
	} else {
		r = r.cloneInterned(&c.intern)
	}
	if c.OnReport != nil {
		c.OnReport(r)
	}
	if !retain {
		return
	}
	if n := len(c.chunks); n == 0 || len(c.chunks[n-1]) == cap(c.chunks[n-1]) {
		c.chunks = append(c.chunks, make([]Report, 0, reportChunk))
	}
	last := len(c.chunks) - 1
	c.chunks[last] = append(c.chunks[last], r)
	c.stored++
	c.flat = nil
}

// Reports returns the stored reports in signal order. The flattened slice
// is built lazily and cached.
func (c *Collector) Reports() []Report {
	if c.flat == nil && c.stored > 0 {
		c.flat = make([]Report, 0, c.stored)
		for _, ch := range c.chunks {
			c.flat = append(c.flat, ch...)
		}
	}
	return c.flat
}

// Total returns the number of signalled races including any dropped past
// Limit.
func (c *Collector) Total() int { return c.total }

// InternStats reports the clock-storage footprint of the stored reports:
// bytes actually held by the interned snapshots against what per-report
// cloning would have held. All zeros when NoIntern is set (nothing is
// tracked on that path).
func (c *Collector) InternStats() InternStats {
	return InternStats{
		Refs:       c.intern.refs,
		Unique:     c.intern.unique,
		Bytes:      c.intern.bytes,
		NaiveBytes: c.intern.naive,
	}
}
