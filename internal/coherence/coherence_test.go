package coherence

import (
	"testing"

	"dsmrace/internal/memory"
	"dsmrace/internal/vclock"
)

var area = memory.Area{ID: 7, Name: "x", Home: 0, Off: 0, Len: 4}

func TestFromName(t *testing.T) {
	for name, want := range map[string]Kind{
		"": WriteUpdate, "wu": WriteUpdate, "write-update": WriteUpdate,
		"wi": WriteInvalidate, "write-invalidate": WriteInvalidate,
	} {
		p, err := FromName(name)
		if err != nil {
			t.Fatalf("FromName(%q): %v", name, err)
		}
		if p.Kind() != want {
			t.Errorf("FromName(%q).Kind() = %v, want %v", name, p.Kind(), want)
		}
	}
	if _, err := FromName("msi"); err == nil {
		t.Error("FromName(msi) accepted")
	}
}

func TestWriteUpdateIsInert(t *testing.T) {
	p := NewWriteUpdate()
	if p.CachesRemoteReads() || p.ServesHomeReadsLocally() {
		t.Error("write-update must not cache or shortcut reads")
	}
	st := p.NewState(4, 8)
	st.InstallCopy(1, area, []memory.Word{1, 2, 3, 4}, vclock.Masked{})
	st.AddSharer(1, area)
	if _, _, ok := st.CachedRead(1, area, 0, 4); ok {
		t.Error("write-update served a cached read")
	}
	if inv := st.Invalidees(2, area); len(inv) != 0 {
		t.Errorf("write-update invalidees = %v", inv)
	}
	if st.Stats() != (Stats{}) {
		t.Errorf("write-update stats = %+v", st.Stats())
	}
}

func TestWriteInvalidateLifecycle(t *testing.T) {
	st := NewWriteInvalidate().NewState(4, 8)
	w := vclock.New(4)
	w.Tick(0)

	// Install on node 1, hit, and verify isolation of the returned slice.
	st.InstallCopy(1, area, []memory.Word{10, 11, 12, 13}, vclock.Dense(w))
	st.AddSharer(1, area)
	data, gotW, ok := st.CachedRead(1, area, 1, 2)
	if !ok || data[0] != 11 || data[1] != 12 {
		t.Fatalf("hit = %v %v", data, ok)
	}
	if vclock.Compare(gotW.V, w) != vclock.Equal {
		t.Errorf("copy clock = %s, want %s", gotW.V, w)
	}
	data[0] = 99
	if d2, _, _ := st.CachedRead(1, area, 1, 1); d2[0] != 11 {
		t.Error("CachedRead result aliases the cache line")
	}
	if _, _, ok := st.CachedRead(2, area, 0, 1); ok {
		t.Error("node 2 hit without a copy")
	}

	// A second sharer; a write by node 3 must invalidate both, ascending.
	st.InstallCopy(2, area, []memory.Word{10, 11, 12, 13}, vclock.Dense(w))
	st.AddSharer(2, area)
	inv := st.Invalidees(3, area)
	if len(inv) != 2 || inv[0] != 1 || inv[1] != 2 {
		t.Fatalf("invalidees = %v, want [1 2]", inv)
	}
	st.DropCopy(1, area)
	st.DropCopy(2, area)
	if _, _, ok := st.CachedRead(1, area, 0, 1); ok {
		t.Error("node 1 hit after invalidation")
	}
	if again := st.Invalidees(3, area); len(again) != 0 {
		t.Errorf("second invalidation round = %v, want empty", again)
	}

	// The writer's own copy survives its write and is patched in place.
	st.InstallCopy(3, area, []memory.Word{0, 0, 0, 0}, vclock.Dense(w))
	st.AddSharer(3, area)
	if inv := st.Invalidees(3, area); len(inv) != 0 {
		t.Fatalf("writer invalidated itself: %v", inv)
	}
	w2 := w.Copy()
	w2.Tick(3)
	st.PatchCopy(3, area, 2, []memory.Word{42}, vclock.Dense(w2))
	d, gotW, ok := st.CachedRead(3, area, 2, 1)
	if !ok || d[0] != 42 {
		t.Fatalf("patched read = %v %v", d, ok)
	}
	if vclock.Compare(gotW.V, w2) != vclock.Equal {
		t.Errorf("patched clock = %s, want %s", gotW.V, w2)
	}

	s := st.Stats()
	if s.Installs != 3 || s.Invalidations != 2 || s.Patches != 1 || s.Hits != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWriteInvalidatePatchNeedsValidCopy(t *testing.T) {
	st := NewWriteInvalidate().NewState(2, 8)
	st.PatchCopy(1, area, 0, []memory.Word{5}, vclock.Masked{}) // no copy: must not create one
	if _, _, ok := st.CachedRead(1, area, 0, 1); ok {
		t.Error("patch created a copy out of thin air")
	}
	if st.Stats().Patches != 0 {
		t.Errorf("patches = %d, want 0", st.Stats().Patches)
	}
}
