package coherence

import (
	"math/bits"

	"dsmrace/internal/memory"
	"dsmrace/internal/vclock"
)

// causal is eager-update causal memory. Writes complete at the home without
// waiting on replicas: the home bumps the area's version, folds the writer's
// observation clock into the area's dependency clock, and fans the written
// words to every sharer as unacknowledged updates. A node's observation
// clock obs (one version per area) records the newest version of each area
// it causally depends on; a cached copy serves a read only while its version
// is at least obs[area] — stale-but-causally-safe reads are allowed, reads
// that would violate a dependency force a refetch. Updates are loss-tolerant
// by the version gap rule: a copy that misses an update invalidates itself
// when the next one arrives out of sequence.
type causal struct{}

// NewCausal returns the causal memory protocol.
func NewCausal() Protocol { return causal{} }

func (causal) Name() string                 { return "causal" }
func (causal) Kind() Kind                   { return Causal }
func (causal) CachesRemoteReads() bool      { return true }
func (causal) ServesHomeReadsLocally() bool { return true }

func (causal) NewState(nodes, areas int) State { return newCausalState(nodes, areas) }

func newCausalState(nodes, areas int) *causalState {
	s := &causalState{
		caches:  make([]map[memory.AreaID]*causalLine, nodes),
		dir:     make([][]uint64, areas),
		ver:     make([]uint64, areas),
		dep:     make([]vclock.VC, areas),
		obs:     make([]vclock.VC, nodes),
		nodes:   nodes,
		areas:   areas,
		scratch: make([][]int, nodes),
		stats:   make([]paddedStats, nodes),
	}
	for i := range s.obs {
		s.obs[i] = vclock.New(areas)
	}
	return s
}

// causalLine is one node's copy of one area: data, the write clock it was
// fetched under (detection only), and the area version it is current to.
type causalLine struct {
	data  []memory.Word
	w     vclock.Masked
	v     uint64
	valid bool
}

// causalState holds the protocol state, split by execution context exactly
// like wiState: per-area fields (dir, ver, dep) belong to the area home's
// context; per-node fields (caches, obs) to that node's own.
type causalState struct {
	caches []map[memory.AreaID]*causalLine
	dir    [][]uint64
	ver    []uint64
	dep    []vclock.VC
	obs    []vclock.VC
	nodes  int
	areas  int
	// scratch is the per-home PublishWrite sharer buffer (home context).
	scratch [][]int
	stats   []paddedStats
}

func (s *causalState) line(node int, id memory.AreaID, create bool) *causalLine {
	m := s.caches[node]
	if m == nil {
		if !create {
			return nil
		}
		m = make(map[memory.AreaID]*causalLine)
		s.caches[node] = m
	}
	l := m[id]
	if l == nil && create {
		l = &causalLine{}
		m[id] = l
	}
	return l
}

func (s *causalState) sharerSet(id memory.AreaID, create bool) []uint64 {
	v := s.dir[id]
	if v == nil && create {
		v = make([]uint64, (s.nodes+63)/64)
		s.dir[id] = v
	}
	return v
}

// CachedRead implements State: a hit additionally requires the copy to be at
// least as new as the newest version of the area the node has observed —
// the causal staleness bound.
func (s *causalState) CachedRead(node int, a memory.Area, off, count int) ([]memory.Word, vclock.Masked, bool) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid || l.v < s.obs[node][a.ID] {
		return nil, vclock.Masked{}, false
	}
	if off < 0 || count < 0 || off+count > len(l.data) {
		return nil, vclock.Masked{}, false
	}
	s.stats[node].s.Hits++
	out := make([]memory.Word, count)
	copy(out, l.data[off:off+count])
	return out, l.w, true
}

// InstallCopy implements State; the versionless entry point installs at the
// version floor (the transport uses InstallVersioned).
func (s *causalState) InstallCopy(node int, a memory.Area, data []memory.Word, w vclock.Masked) {
	s.InstallVersioned(node, a, data, w, 0, nil)
}

// InstallVersioned implements CausalState.
func (s *causalState) InstallVersioned(node int, a memory.Area, data []memory.Word, w vclock.Masked, ver uint64, dep vclock.VC) {
	l := s.line(node, a.ID, true)
	if cap(l.data) < len(data) {
		l.data = make([]memory.Word, len(data))
	}
	l.data = l.data[:len(data)]
	copy(l.data, data)
	if !w.IsNil() {
		l.w = w.CopyInto(l.w)
	} else {
		l.w = vclock.Masked{}
	}
	l.v = ver
	l.valid = true
	s.stats[node].s.Installs++
	if dep != nil {
		s.obs[node].Merge(dep)
	}
	if ver > s.obs[node][a.ID] {
		s.obs[node][a.ID] = ver
	}
}

// PatchCopy implements State; versionless patches do not advance the copy's
// version (the transport uses PatchVersioned for committed writes).
func (s *causalState) PatchCopy(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return
	}
	if off < 0 || off+len(data) > len(l.data) {
		return
	}
	copy(l.data[off:], data)
	if !neww.IsNil() {
		l.w = neww.CopyInto(l.w)
	}
	s.stats[node].s.Patches++
}

// PatchVersioned implements CausalState: the writer's copy advances only to
// its direct successor version; a gap means another node's write (whose
// update is still in flight) committed between, so the copy is dropped
// rather than stamped with data it does not fully hold.
func (s *causalState) PatchVersioned(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked, ver uint64) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return
	}
	if ver != l.v+1 || off < 0 || off+len(data) > len(l.data) {
		l.valid = false
		return
	}
	copy(l.data[off:], data)
	if !neww.IsNil() {
		l.w = neww.CopyInto(l.w)
	}
	l.v = ver
	s.stats[node].s.Patches++
}

// DropCopy implements State.
func (s *causalState) DropCopy(node int, a memory.Area) {
	if l := s.line(node, a.ID, false); l != nil {
		l.valid = false
	}
}

// AddSharer implements State.
func (s *causalState) AddSharer(reader int, a memory.Area) {
	s.sharerSet(a.ID, true)[reader>>6] |= 1 << (uint(reader) & 63)
}

// Invalidees implements State: causal memory never invalidates — writes
// propagate as updates instead (PublishWrite).
func (s *causalState) Invalidees(writer int, a memory.Area) []int { return nil }

// PublishWrite implements CausalState. Home context.
func (s *causalState) PublishWrite(writer int, a memory.Area, obs vclock.VC) (uint64, vclock.VC, []int) {
	id := a.ID
	s.ver[id]++
	ver := s.ver[id]
	d := s.dep[id]
	if d == nil {
		d = vclock.New(s.areas)
		s.dep[id] = d
	}
	if obs != nil {
		d.Merge(obs)
	}
	if ver > d[id] {
		d[id] = ver
	}
	home := a.Home
	out := s.scratch[home][:0]
	if v := s.sharerSet(id, false); v != nil {
		for w, word := range v {
			if w == writer>>6 {
				word &^= 1 << (uint(writer) & 63)
			}
			for b := word; b != 0; b &= b - 1 {
				out = append(out, w*64+bits.TrailingZeros64(b))
				s.stats[home].s.Updates++
			}
		}
	}
	s.scratch[home] = out
	return ver, d.Copy(), out
}

// ApplyUpdate implements CausalState. Receiver context. The causal metadata
// always merges — even into a node whose copy is gone — because the update
// still carries the information that the write (and everything it depended
// on) exists.
func (s *causalState) ApplyUpdate(node int, a memory.Area, off int, data []memory.Word, ver uint64, dep vclock.VC) {
	if dep != nil {
		s.obs[node].Merge(dep)
	}
	if ver > s.obs[node][a.ID] {
		s.obs[node][a.ID] = ver
	}
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return
	}
	switch {
	case ver <= l.v:
		// Already current (the copy was fetched at or past this version).
	case ver == l.v+1 && off >= 0 && off+len(data) <= len(l.data):
		copy(l.data[off:], data)
		l.v = ver
		s.stats[node].s.Patches++
	default:
		// Gap: an earlier update was lost (or reordered away). The copy can
		// no longer be completed incrementally; drop it and refetch on the
		// next read that needs it.
		l.valid = false
	}
}

// NoteWriteAck implements CausalState. Writer context.
func (s *causalState) NoteWriteAck(node int, a memory.Area, ver uint64) {
	if ver > s.obs[node][a.ID] {
		s.obs[node][a.ID] = ver
	}
}

// ReadVersion implements CausalState. Home context.
func (s *causalState) ReadVersion(a memory.Area) (uint64, vclock.VC) {
	var dep vclock.VC
	if d := s.dep[a.ID]; d != nil {
		dep = d.Copy()
	}
	return s.ver[a.ID], dep
}

// NoteHomeRead implements CausalState. The reader is the home, so both the
// area view and the node view live in the same context.
func (s *causalState) NoteHomeRead(node int, a memory.Area) {
	if d := s.dep[a.ID]; d != nil {
		s.obs[node].Merge(d)
	}
	if v := s.ver[a.ID]; v > s.obs[node][a.ID] {
		s.obs[node][a.ID] = v
	}
}

// ObsSnapshot implements CausalState. Node context.
func (s *causalState) ObsSnapshot(node int) vclock.VC { return s.obs[node].Copy() }

// MergeObs implements CausalState. Node context.
func (s *causalState) MergeObs(node int, obs vclock.VC) {
	if obs != nil {
		s.obs[node].Merge(obs)
	}
}

// Stats implements State.
func (s *causalState) Stats() Stats {
	var t Stats
	for i := range s.stats {
		n := &s.stats[i].s
		t.HomeReads += n.HomeReads
		t.Hits += n.Hits
		t.Fetches += n.Fetches
		t.Installs += n.Installs
		t.Patches += n.Patches
		t.Invalidations += n.Invalidations
		t.Updates += n.Updates
	}
	return t
}

// CountHomeRead and CountFetch implement Counter.
func (s *causalState) CountHomeRead(node int) { s.stats[node].s.HomeReads++ }
func (s *causalState) CountFetch(node int)    { s.stats[node].s.Fetches++ }

// PurgeSharer implements FaultSupport: a dead sharer just stops receiving
// updates.
func (s *causalState) PurgeSharer(node int, a memory.Area) {
	if v := s.sharerSet(a.ID, false); v != nil {
		v[node>>6] &^= 1 << (uint(node) & 63)
	}
}

// DropNodeCopies implements FaultSupport. The node's observation clock is
// deliberately kept: a too-high obs only forces refetches, never staleness.
func (s *causalState) DropNodeCopies(node int) {
	//dsmlint:ordered every line just flips valid=false; the fold commutes
	for _, l := range s.caches[node] {
		l.valid = false
	}
}

// Fingerprint implements State: per-area home state (sharer directory,
// version counter, dependency clock), per-node observation clocks, and every
// valid cached copy with its version, in dense (area, node) index order.
func (s *causalState) Fingerprint(h uint64) uint64 {
	for id := range s.dir {
		for _, bits := range s.dir[id] {
			h = fpMix(h, bits)
		}
		h = fpMix(h, s.ver[id])
		h = fpVC(h, s.dep[id])
		h = fpMix(h, 0x63617573) // area separator
	}
	for node := 0; node < s.nodes; node++ {
		h = fpVC(h, s.obs[node])
		for id := range s.dir {
			l := s.line(node, memory.AreaID(id), false)
			if l == nil || !l.valid {
				h = fpMix(h, 0)
				continue
			}
			h = fpMix(h, 1)
			h = fpMix(h, l.v)
			h = fpWords(h, l.data)
			h = fpClock(h, l.w)
		}
	}
	return h
}
