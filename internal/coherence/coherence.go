package coherence

import (
	"fmt"
	"math/bits"
	"unsafe"

	"dsmrace/internal/memory"
	"dsmrace/internal/vclock"
)

// Kind enumerates the provided coherence protocols.
type Kind int

// Kinds.
const (
	// WriteUpdate is the model's original behaviour: the home copy is the
	// only copy. Writes push data to the home, reads pull from it; no node
	// ever retains a replica, so there is nothing to keep coherent and no
	// coherence traffic exists.
	WriteUpdate Kind = iota
	// WriteInvalidate is the home-based invalidation protocol: readers
	// retain whole-area copies fetched on demand (with the area's write
	// clock piggybacked), the home directory tracks who holds one, and a
	// write invalidates every other copy — and is acknowledged only after
	// every invalidation is — before it completes.
	WriteInvalidate
	// Causal is eager-update causal memory (after Cohen's coherent causal
	// memory): readers retain copies, writes complete at the home without
	// waiting for any replica, and the home fans the written data to every
	// sharer as an unacknowledged update. Each area carries a version
	// counter and a dependency clock over areas; each node tracks the
	// versions it has observed, and a cached copy only serves a read when
	// it is at least as new as everything the node causally depends on.
	// Reads may therefore return stale values — but never values that
	// violate causal order, which is exactly the axiom internal/mcheck
	// checks it against.
	Causal
	// MESI is the multi-state caching protocol: each cached copy is
	// Modified, Exclusive, Shared or Invalid; a sole reader is granted
	// exclusivity, an exclusive holder upgrades E→M silently (writes with
	// zero messages), and every home operation first recalls the exclusive
	// owner (downgrade to S with a writeback when dirty) before touching
	// the area.
	MESI
)

// String names the kind for tables and flags.
func (k Kind) String() string {
	switch k {
	case WriteInvalidate:
		return "write-invalidate"
	case Causal:
		return "causal"
	case MESI:
		return "mesi"
	}
	return "write-update"
}

// Protocol is a pluggable coherence policy. The transport (internal/rdma)
// owns the messages; the protocol owns the decisions: whether a read can be
// served from a local copy, which copies a write must invalidate, and the
// replica bookkeeping itself (directory + caches) via State.
//
// Implementations must be deterministic: any iteration over replica holders
// happens in ascending node order, so a fixed seed reproduces a fixed
// message sequence.
type Protocol interface {
	// Name identifies the protocol in tables and reports.
	Name() string
	// Kind returns the protocol's kind.
	Kind() Kind
	// CachesRemoteReads reports whether readers retain fetched copies (and
	// therefore whether the directory/invalidation machinery is live).
	CachesRemoteReads() bool
	// ServesHomeReadsLocally reports whether a node reads areas homed on
	// itself without any messages (the home copy is by definition valid).
	ServesHomeReadsLocally() bool
	// NewState returns fresh per-run protocol state for a cluster of nodes
	// sharing areas shared variables (the area id space is dense and sealed
	// before the run starts).
	NewState(nodes, areas int) State
}

// Stats counts protocol-level events for one run. Cache hits generate no
// messages, so they are invisible to network statistics; these counters are
// the only place the silent part of a protocol's behaviour shows up.
type Stats struct {
	// HomeReads are reads served from the reader's own public memory.
	HomeReads uint64
	// Hits are remote reads served from a valid local copy (no messages).
	Hits uint64
	// Fetches are whole-area fetches (read misses).
	Fetches uint64
	// Installs counts copies installed by fetches.
	Installs uint64
	// Patches counts writer-local copy updates after a completed write.
	Patches uint64
	// Invalidations counts invalidation messages requested by writes.
	Invalidations uint64
	// Updates counts causal-memory data updates fanned to sharers.
	Updates uint64
	// Recalls counts MESI exclusive-owner recalls issued by home operations.
	Recalls uint64
	// Upgrades counts MESI silent writes (E→M upgrades, zero messages).
	Upgrades uint64
}

// State is the mutable replica bookkeeping of one run: the home-side
// directory (which nodes hold a valid copy of which area) and the node-side
// caches (the copies themselves, each stamped with the write clock it was
// fetched under). The simulation kernel serialises all calls; no locking.
//
// The directory and the caches are kept in lockstep by the transport: a
// node is listed as a sharer if and only if it holds a valid copy. (The one
// transient exception — a copy whose invalidation message is in flight — is
// closed before the invalidating write completes, because the write waits
// for every acknowledgement while holding the area lock.)
type State interface {
	// CachedRead serves a read of [off, off+count) of a by node from its
	// valid local copy. The returned data is a fresh slice owned by the
	// caller; w is the copy's write clock (borrowed — copy to retain; the
	// zero Masked when the run carries no clocks). ok reports whether a
	// valid copy existed; on false the read must fetch from the home.
	CachedRead(node int, a memory.Area, off, count int) (data []memory.Word, w vclock.Masked, ok bool)
	// InstallCopy records that node now holds the whole-area data with
	// write clock w (both copied in; w may be the zero Masked with
	// detection off).
	InstallCopy(node int, a memory.Area, data []memory.Word, w vclock.Masked)
	// PatchCopy folds node's own committed write of data at word offset off
	// into its cached copy, advancing the copy's write clock to neww — the
	// writer's copy stays valid because every other copy was invalidated.
	// No-op when node holds no valid copy.
	PatchCopy(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked)
	// DropCopy invalidates node's copy of a (invalidation receipt).
	DropCopy(node int, a memory.Area)
	// AddSharer registers reader in a's directory (a fetch was served).
	AddSharer(reader int, a memory.Area)
	// Invalidees returns the nodes other than writer whose copies a write
	// to a must invalidate, in ascending node order, and removes them from
	// the directory (their DropCopy happens when the invalidation message
	// arrives). The returned slice is reused by the next call.
	Invalidees(writer int, a memory.Area) []int
	// Stats returns the run's protocol event counters.
	Stats() Stats
	// Fingerprint folds the protocol's full replica state — directories,
	// cached copies with their clocks, versions, ownership — into h with
	// FNV-style mixing, iterating nodes and areas in dense index order so
	// the result is deterministic across runs and kernel counts. Two states
	// with equal fingerprints behave identically under any future delivery
	// sequence (modulo hash collision); exploration drivers use this to
	// recognise re-entered states. Event counters are excluded: they never
	// influence protocol behaviour.
	Fingerprint(h uint64) uint64
}

// FromName resolves a protocol by flag value: "" and "write-update" (or
// "wu") select WriteUpdate, "write-invalidate" (or "wi") selects
// WriteInvalidate, "causal" selects Causal, "mesi" selects MESI.
func FromName(name string) (Protocol, error) {
	switch name {
	case "", "write-update", "wu":
		return NewWriteUpdate(), nil
	case "write-invalidate", "wi":
		return NewWriteInvalidate(), nil
	case "causal":
		return NewCausal(), nil
	case "mesi":
		return NewMESI(), nil
	default:
		return nil, fmt.Errorf("coherence: unknown protocol %q (want write-update, write-invalidate, causal or mesi)", name)
	}
}

// Names lists the accepted protocol selector values.
func Names() []string { return []string{"write-update", "write-invalidate", "causal", "mesi"} }

// ---- Write-update ----

// writeUpdate is the null policy: no replicas, no directory, every access
// goes to the home. Extracting it as a Protocol keeps the original
// transport path byte-identical while making the protocol axis explicit.
type writeUpdate struct{}

// NewWriteUpdate returns the write-update protocol.
func NewWriteUpdate() Protocol { return writeUpdate{} }

func (writeUpdate) Name() string                    { return "write-update" }
func (writeUpdate) Kind() Kind                      { return WriteUpdate }
func (writeUpdate) CachesRemoteReads() bool         { return false }
func (writeUpdate) ServesHomeReadsLocally() bool    { return false }
func (writeUpdate) NewState(nodes, areas int) State { return nopState{} }

// nopState is write-update's replica bookkeeping: there are no replicas.
type nopState struct{}

func (nopState) CachedRead(int, memory.Area, int, int) ([]memory.Word, vclock.Masked, bool) {
	return nil, vclock.Masked{}, false
}
func (nopState) InstallCopy(int, memory.Area, []memory.Word, vclock.Masked)    {}
func (nopState) PatchCopy(int, memory.Area, int, []memory.Word, vclock.Masked) {}
func (nopState) DropCopy(int, memory.Area)                                     {}
func (nopState) AddSharer(int, memory.Area)                                    {}
func (nopState) Invalidees(int, memory.Area) []int                             { return nil }
func (nopState) Stats() Stats                                                  { return Stats{} }
func (nopState) Fingerprint(h uint64) uint64                                   { return fpMix(h, 0x6e6f70) }

// FNV-1a prime, shared by every State.Fingerprint implementation.
const fpPrime = 1099511628211

// fpMix is one full-word FNV-1a style mixing step.
func fpMix(h, v uint64) uint64 { return (h ^ v) * fpPrime }

// fpClock folds a masked clock's components into h (the mask is derivable
// from V, so hashing V alone suffices).
func fpClock(h uint64, m vclock.Masked) uint64 {
	h = fpMix(h, uint64(len(m.V)))
	for _, x := range m.V {
		h = fpMix(h, x)
	}
	return h
}

// fpVC folds a dense clock into h.
func fpVC(h uint64, v vclock.VC) uint64 {
	h = fpMix(h, uint64(len(v)))
	for _, x := range v {
		h = fpMix(h, x)
	}
	return h
}

// fpWords folds a word slice into h.
func fpWords(h uint64, ws []memory.Word) uint64 {
	h = fpMix(h, uint64(len(ws)))
	for _, w := range ws {
		h = fpMix(h, uint64(w))
	}
	return h
}

// ---- Write-invalidate ----

// writeInvalidate is the home-based invalidation protocol.
type writeInvalidate struct{}

// NewWriteInvalidate returns the write-invalidate protocol.
func NewWriteInvalidate() Protocol { return writeInvalidate{} }

func (writeInvalidate) Name() string                 { return "write-invalidate" }
func (writeInvalidate) Kind() Kind                   { return WriteInvalidate }
func (writeInvalidate) CachesRemoteReads() bool      { return true }
func (writeInvalidate) ServesHomeReadsLocally() bool { return true }

func (writeInvalidate) NewState(nodes, areas int) State { return newWIState(nodes, areas) }

func newWIState(nodes, areas int) *wiState {
	return &wiState{
		caches:  make([]map[memory.AreaID]*copyLine, nodes),
		dir:     make([][]uint64, areas),
		nodes:   nodes,
		scratch: make([][]int, nodes),
		stats:   make([]paddedStats, nodes),
	}
}

// copyLine is one node's cached copy of one area.
type copyLine struct {
	data  []memory.Word
	w     vclock.Masked // write clock of the copy; zero when detection is off
	valid bool
}

// paddedStats is one node's protocol counters, padded to a cache line so
// nodes on different kernel shards never false-share a counter word (the
// pad is derived from the struct size, so growing Stats keeps it correct).
type paddedStats struct {
	s Stats
	_ [(64 - unsafe.Sizeof(Stats{})%64) % 64]byte
}

// wiState implements State for write-invalidate: per-node caches plus the
// per-area sharer directory (conceptually resident at each area's home —
// held here because the simulator is one process). The directory is a dense
// slice indexed by area id — the id space is sealed before the run — so an
// area's sharer set is touched only from its home's execution context, which
// is what lets a multi-kernel run fan homes across shards without locks.
// Each sharer set is a bitset: registering a sharer is one OR, and
// collecting a write's invalidees walks set bits — O(nodes/64 + sharers),
// not O(nodes). Event counters are per node (every event is attributable to
// the node whose context observes it) and summed on read, so the totals are
// bit-identical however the nodes are sharded.
type wiState struct {
	caches []map[memory.AreaID]*copyLine
	dir    [][]uint64
	nodes  int
	// scratch is the per-node Invalidees result buffer (Invalidees runs in
	// the home's context, so per-node buffers never race).
	scratch [][]int
	stats   []paddedStats
}

// sharerSet returns (lazily creating, when create is set) the sharer bitset
// of area id. Only ever called from the area's home context.
func (s *wiState) sharerSet(id memory.AreaID, create bool) []uint64 {
	v := s.dir[id]
	if v == nil && create {
		v = make([]uint64, (s.nodes+63)/64)
		s.dir[id] = v
	}
	return v
}

func (s *wiState) line(node int, id memory.AreaID, create bool) *copyLine {
	m := s.caches[node]
	if m == nil {
		if !create {
			return nil
		}
		m = make(map[memory.AreaID]*copyLine)
		s.caches[node] = m
	}
	l := m[id]
	if l == nil && create {
		l = &copyLine{}
		m[id] = l
	}
	return l
}

// CachedRead implements State.
func (s *wiState) CachedRead(node int, a memory.Area, off, count int) ([]memory.Word, vclock.Masked, bool) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return nil, vclock.Masked{}, false
	}
	if off < 0 || count < 0 || off+count > len(l.data) {
		return nil, vclock.Masked{}, false
	}
	s.stats[node].s.Hits++
	out := make([]memory.Word, count)
	copy(out, l.data[off:off+count])
	return out, l.w, true
}

// InstallCopy implements State.
func (s *wiState) InstallCopy(node int, a memory.Area, data []memory.Word, w vclock.Masked) {
	l := s.line(node, a.ID, true)
	if cap(l.data) < len(data) {
		l.data = make([]memory.Word, len(data))
	}
	l.data = l.data[:len(data)]
	copy(l.data, data)
	if !w.IsNil() {
		l.w = w.CopyInto(l.w)
	} else {
		l.w = vclock.Masked{}
	}
	l.valid = true
	s.stats[node].s.Installs++
}

// PatchCopy implements State.
func (s *wiState) PatchCopy(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return
	}
	if off < 0 || off+len(data) > len(l.data) {
		return
	}
	copy(l.data[off:], data)
	if !neww.IsNil() {
		l.w = neww.CopyInto(l.w)
	}
	s.stats[node].s.Patches++
}

// DropCopy implements State.
func (s *wiState) DropCopy(node int, a memory.Area) {
	if l := s.line(node, a.ID, false); l != nil {
		l.valid = false
	}
}

// AddSharer implements State.
func (s *wiState) AddSharer(reader int, a memory.Area) {
	s.sharerSet(a.ID, true)[reader>>6] |= 1 << (uint(reader) & 63)
}

// Invalidees implements State. Ascending node order (trailing-zeros scans
// of ascending bitset words) keeps runs deterministic.
func (s *wiState) Invalidees(writer int, a memory.Area) []int {
	v := s.sharerSet(a.ID, false)
	if v == nil {
		return nil
	}
	home := a.Home
	out := s.scratch[home][:0]
	for w, word := range v {
		if w == writer>>6 {
			word &^= 1 << (uint(writer) & 63) // the writer keeps its copy
		}
		if word == 0 {
			continue
		}
		base := w * 64
		for b := word; b != 0; b &= b - 1 {
			out = append(out, base+bits.TrailingZeros64(b))
			s.stats[home].s.Invalidations++
		}
		v[w] &^= word
	}
	s.scratch[home] = out
	return out
}

// Stats implements State: the per-node counters summed — a commutative
// total, bit-identical however the nodes were sharded.
func (s *wiState) Stats() Stats {
	var t Stats
	for i := range s.stats {
		n := &s.stats[i].s
		t.HomeReads += n.HomeReads
		t.Hits += n.Hits
		t.Fetches += n.Fetches
		t.Installs += n.Installs
		t.Patches += n.Patches
		t.Invalidations += n.Invalidations
	}
	return t
}

// Fingerprint implements State: sharer directories plus every valid cached
// copy (data and write clock), in dense (area, node) index order.
func (s *wiState) Fingerprint(h uint64) uint64 {
	for id := range s.dir {
		for _, bits := range s.dir[id] {
			h = fpMix(h, bits)
		}
		h = fpMix(h, 0x77692d64) // area separator
	}
	for node := 0; node < s.nodes; node++ {
		for id := range s.dir {
			l := s.line(node, memory.AreaID(id), false)
			if l == nil || !l.valid {
				h = fpMix(h, 0)
				continue
			}
			h = fpMix(h, 1)
			h = fpWords(h, l.data)
			h = fpClock(h, l.w)
		}
	}
	return h
}

// CountHomeRead and CountFetch let the transport attribute events the state
// cannot see from its own calls; node is the node in whose execution
// context the event happened (the home).
func (s *wiState) CountHomeRead(node int) { s.stats[node].s.HomeReads++ }
func (s *wiState) CountFetch(node int)    { s.stats[node].s.Fetches++ }

// Counter is implemented by states that track transport-visible events
// (home-local reads, fetches). The transport calls it when present, passing
// the node whose context observed the event.
type Counter interface {
	CountHomeRead(node int)
	CountFetch(node int)
}

// FaultSupport is implemented by states that survive node crashes: the fault
// layer calls these at the crash instant, in the execution contexts that
// already own the touched state (PurgeSharer from the area's home shard,
// DropNodeCopies from the crashed node's own shard), so the existing no-lock
// sharding discipline holds.
type FaultSupport interface {
	// PurgeSharer removes node from a's sharer directory without sending an
	// invalidation — the node is dead, there is no copy left to drop and no
	// one to acknowledge. Without the purge a later write to a would wait
	// forever on a dead sharer's acknowledgement.
	PurgeSharer(node int, a memory.Area)
	// DropNodeCopies invalidates every cached copy node holds, so a restarted
	// node cannot serve stale pre-crash data from its cache.
	DropNodeCopies(node int)
}

// CausalState is the transport contract of the causal protocol, implemented
// on top of State. Context discipline mirrors the directory split: methods
// taking a writer/home view (PublishWrite, ReadVersion) run in the area
// home's execution context; methods taking a node view (ApplyUpdate,
// NoteWriteAck, PatchVersioned, InstallVersioned, NoteHomeRead, ObsSnapshot,
// MergeObs) run in that node's context — the invariant that lets a
// multi-kernel run shard the state without locks.
type CausalState interface {
	State
	// PublishWrite commits a write at the home: the area's version advances,
	// the writer's observation clock obs (shipped in the request) merges
	// into the area's dependency clock, and the sharers to update — every
	// copy holder except the writer, ascending, directory left intact — are
	// returned together with the new version and a fresh copy of the
	// dependency clock, safe to embed in an immutable update message.
	PublishWrite(writer int, a memory.Area, obs VC) (ver uint64, dep VC, sharers []int)
	// ApplyUpdate folds one home-fanned update into node's copy: a stale
	// version merges only the causal metadata, the successor version patches
	// the data in place, and a gap (a lost earlier update) invalidates the
	// copy — the node refetches when it next needs the area.
	ApplyUpdate(node int, a memory.Area, off int, data []memory.Word, ver uint64, dep VC)
	// NoteWriteAck records at the writer that its own write reached version
	// ver — the writer now causally depends on it.
	NoteWriteAck(node int, a memory.Area, ver uint64)
	// PatchVersioned is PatchCopy plus the version stamp: the writer's copy
	// advances only if ver is the copy's direct successor; any gap (another
	// node's update still in flight) invalidates the copy instead.
	PatchVersioned(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked, ver uint64)
	// ReadVersion returns the area's current version and a fresh copy of its
	// dependency clock, for embedding in a fetch reply.
	ReadVersion(a memory.Area) (ver uint64, dep VC)
	// InstallVersioned is InstallCopy plus the version/dependency metadata
	// from the fetch reply.
	InstallVersioned(node int, a memory.Area, data []memory.Word, w vclock.Masked, ver uint64, dep VC)
	// NoteHomeRead folds the area's dependencies into the home node's own
	// observation clock when it reads its own public memory (home reads see
	// the latest version by construction).
	NoteHomeRead(node int, a memory.Area)
	// ObsSnapshot returns a fresh copy of node's observation clock, for
	// shipping with writes, unlocks and barrier arrivals.
	ObsSnapshot(node int) VC
	// MergeObs folds a received observation clock (lock grant, barrier
	// release) into node's own — the causal analogue of the detection
	// clock's absorb-on-synchronisation edges.
	MergeObs(node int, obs VC)
}

// VC aliases the vector-clock type the causal protocol indexes by area id.
type VC = vclock.VC

// MESIState is the transport contract of the MESI protocol: directory-side
// exclusivity (home context) plus node-side line states. The transport
// recalls the exclusive owner before any home operation on an area, so the
// protocol body itself always runs under a no-remote-exclusive invariant.
type MESIState interface {
	State
	// ExclusiveOwner returns the node holding a in E or M that a home
	// operation on behalf of origin must recall first, or -1 (none, or the
	// origin itself).
	ExclusiveOwner(origin int, a memory.Area) int
	// Downgrade demotes node's E/M line to S, keeping the data, and returns
	// a fresh writeback copy when the line was dirty (M).
	Downgrade(node int, a memory.Area) (data []memory.Word, dirty bool)
	// ClearExclusive drops the area's exclusivity record (recall ack
	// received, or the owner crashed).
	ClearExclusive(a memory.Area)
	// GrantExclusive reports whether reader — just registered as a sharer —
	// is the area's only copy holder, recording it as the exclusive owner
	// when so. The fetch reply carries the verdict so the reader installs
	// the line as E rather than S.
	GrantExclusive(reader int, a memory.Area) bool
	// InstallExclusive upgrades node's just-installed copy to E.
	InstallExclusive(node int, a memory.Area)
	// HoldsExclusive reports whether node holds a in E or M — the silent
	// write permission.
	HoldsExclusive(node int, a memory.Area) bool
	// SilentWrite applies a write entirely inside node's E/M line (E→M
	// upgrade): no messages, home memory is refreshed by the next recall or
	// the end-of-run flush.
	SilentWrite(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked)
	// PromoteSoleSharer records writer as exclusive owner if — after the
	// write's invalidation round — it is the area's only copy holder.
	PromoteSoleSharer(writer int, a memory.Area)
	// CountRecall attributes one issued recall to the home that sent it.
	CountRecall(node int)
}

// DirtyFlusher is implemented by states whose caches can hold data newer
// than home memory (MESI's M lines). FlushDirty visits every dirty line in
// deterministic order (nodes ascending, area ids ascending) so the run's
// final memory snapshot reflects every committed write; it is called once,
// serially, after the simulation ends.
type DirtyFlusher interface {
	FlushDirty(visit func(node int, id memory.AreaID, data []memory.Word))
}

// PurgeSharer implements FaultSupport.
func (s *wiState) PurgeSharer(node int, a memory.Area) {
	if v := s.sharerSet(a.ID, false); v != nil {
		v[node>>6] &^= 1 << (uint(node) & 63)
	}
}

// DropNodeCopies implements FaultSupport. Only validity flags flip — the
// iteration order of the cache map is irrelevant to the resulting state.
func (s *wiState) DropNodeCopies(node int) {
	//dsmlint:ordered every line just flips valid=false; the fold commutes
	for _, l := range s.caches[node] {
		l.valid = false
	}
}
