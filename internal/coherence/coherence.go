package coherence

import (
	"fmt"
	"math/bits"
	"unsafe"

	"dsmrace/internal/memory"
	"dsmrace/internal/vclock"
)

// Kind enumerates the provided coherence protocols.
type Kind int

// Kinds.
const (
	// WriteUpdate is the model's original behaviour: the home copy is the
	// only copy. Writes push data to the home, reads pull from it; no node
	// ever retains a replica, so there is nothing to keep coherent and no
	// coherence traffic exists.
	WriteUpdate Kind = iota
	// WriteInvalidate is the home-based invalidation protocol: readers
	// retain whole-area copies fetched on demand (with the area's write
	// clock piggybacked), the home directory tracks who holds one, and a
	// write invalidates every other copy — and is acknowledged only after
	// every invalidation is — before it completes.
	WriteInvalidate
)

// String names the kind for tables and flags.
func (k Kind) String() string {
	if k == WriteInvalidate {
		return "write-invalidate"
	}
	return "write-update"
}

// Protocol is a pluggable coherence policy. The transport (internal/rdma)
// owns the messages; the protocol owns the decisions: whether a read can be
// served from a local copy, which copies a write must invalidate, and the
// replica bookkeeping itself (directory + caches) via State.
//
// Implementations must be deterministic: any iteration over replica holders
// happens in ascending node order, so a fixed seed reproduces a fixed
// message sequence.
type Protocol interface {
	// Name identifies the protocol in tables and reports.
	Name() string
	// Kind returns the protocol's kind.
	Kind() Kind
	// CachesRemoteReads reports whether readers retain fetched copies (and
	// therefore whether the directory/invalidation machinery is live).
	CachesRemoteReads() bool
	// ServesHomeReadsLocally reports whether a node reads areas homed on
	// itself without any messages (the home copy is by definition valid).
	ServesHomeReadsLocally() bool
	// NewState returns fresh per-run protocol state for a cluster of nodes
	// sharing areas shared variables (the area id space is dense and sealed
	// before the run starts).
	NewState(nodes, areas int) State
}

// Stats counts protocol-level events for one run. Cache hits generate no
// messages, so they are invisible to network statistics; these counters are
// the only place the silent part of a protocol's behaviour shows up.
type Stats struct {
	// HomeReads are reads served from the reader's own public memory.
	HomeReads uint64
	// Hits are remote reads served from a valid local copy (no messages).
	Hits uint64
	// Fetches are whole-area fetches (read misses).
	Fetches uint64
	// Installs counts copies installed by fetches.
	Installs uint64
	// Patches counts writer-local copy updates after a completed write.
	Patches uint64
	// Invalidations counts invalidation messages requested by writes.
	Invalidations uint64
}

// State is the mutable replica bookkeeping of one run: the home-side
// directory (which nodes hold a valid copy of which area) and the node-side
// caches (the copies themselves, each stamped with the write clock it was
// fetched under). The simulation kernel serialises all calls; no locking.
//
// The directory and the caches are kept in lockstep by the transport: a
// node is listed as a sharer if and only if it holds a valid copy. (The one
// transient exception — a copy whose invalidation message is in flight — is
// closed before the invalidating write completes, because the write waits
// for every acknowledgement while holding the area lock.)
type State interface {
	// CachedRead serves a read of [off, off+count) of a by node from its
	// valid local copy. The returned data is a fresh slice owned by the
	// caller; w is the copy's write clock (borrowed — copy to retain; the
	// zero Masked when the run carries no clocks). ok reports whether a
	// valid copy existed; on false the read must fetch from the home.
	CachedRead(node int, a memory.Area, off, count int) (data []memory.Word, w vclock.Masked, ok bool)
	// InstallCopy records that node now holds the whole-area data with
	// write clock w (both copied in; w may be the zero Masked with
	// detection off).
	InstallCopy(node int, a memory.Area, data []memory.Word, w vclock.Masked)
	// PatchCopy folds node's own committed write of data at word offset off
	// into its cached copy, advancing the copy's write clock to neww — the
	// writer's copy stays valid because every other copy was invalidated.
	// No-op when node holds no valid copy.
	PatchCopy(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked)
	// DropCopy invalidates node's copy of a (invalidation receipt).
	DropCopy(node int, a memory.Area)
	// AddSharer registers reader in a's directory (a fetch was served).
	AddSharer(reader int, a memory.Area)
	// Invalidees returns the nodes other than writer whose copies a write
	// to a must invalidate, in ascending node order, and removes them from
	// the directory (their DropCopy happens when the invalidation message
	// arrives). The returned slice is reused by the next call.
	Invalidees(writer int, a memory.Area) []int
	// Stats returns the run's protocol event counters.
	Stats() Stats
}

// FromName resolves a protocol by flag value: "" and "write-update" (or
// "wu") select WriteUpdate, "write-invalidate" (or "wi") selects
// WriteInvalidate.
func FromName(name string) (Protocol, error) {
	switch name {
	case "", "write-update", "wu":
		return NewWriteUpdate(), nil
	case "write-invalidate", "wi":
		return NewWriteInvalidate(), nil
	default:
		return nil, fmt.Errorf("coherence: unknown protocol %q (want write-update or write-invalidate)", name)
	}
}

// Names lists the accepted protocol selector values.
func Names() []string { return []string{"write-update", "write-invalidate"} }

// ---- Write-update ----

// writeUpdate is the null policy: no replicas, no directory, every access
// goes to the home. Extracting it as a Protocol keeps the original
// transport path byte-identical while making the protocol axis explicit.
type writeUpdate struct{}

// NewWriteUpdate returns the write-update protocol.
func NewWriteUpdate() Protocol { return writeUpdate{} }

func (writeUpdate) Name() string                    { return "write-update" }
func (writeUpdate) Kind() Kind                      { return WriteUpdate }
func (writeUpdate) CachesRemoteReads() bool         { return false }
func (writeUpdate) ServesHomeReadsLocally() bool    { return false }
func (writeUpdate) NewState(nodes, areas int) State { return nopState{} }

// nopState is write-update's replica bookkeeping: there are no replicas.
type nopState struct{}

func (nopState) CachedRead(int, memory.Area, int, int) ([]memory.Word, vclock.Masked, bool) {
	return nil, vclock.Masked{}, false
}
func (nopState) InstallCopy(int, memory.Area, []memory.Word, vclock.Masked)    {}
func (nopState) PatchCopy(int, memory.Area, int, []memory.Word, vclock.Masked) {}
func (nopState) DropCopy(int, memory.Area)                                     {}
func (nopState) AddSharer(int, memory.Area)                                    {}
func (nopState) Invalidees(int, memory.Area) []int                             { return nil }
func (nopState) Stats() Stats                                                  { return Stats{} }

// ---- Write-invalidate ----

// writeInvalidate is the home-based invalidation protocol.
type writeInvalidate struct{}

// NewWriteInvalidate returns the write-invalidate protocol.
func NewWriteInvalidate() Protocol { return writeInvalidate{} }

func (writeInvalidate) Name() string                 { return "write-invalidate" }
func (writeInvalidate) Kind() Kind                   { return WriteInvalidate }
func (writeInvalidate) CachesRemoteReads() bool      { return true }
func (writeInvalidate) ServesHomeReadsLocally() bool { return true }

func (writeInvalidate) NewState(nodes, areas int) State {
	return &wiState{
		caches:  make([]map[memory.AreaID]*copyLine, nodes),
		dir:     make([][]uint64, areas),
		nodes:   nodes,
		scratch: make([][]int, nodes),
		stats:   make([]paddedStats, nodes),
	}
}

// copyLine is one node's cached copy of one area.
type copyLine struct {
	data  []memory.Word
	w     vclock.Masked // write clock of the copy; zero when detection is off
	valid bool
}

// paddedStats is one node's protocol counters, padded to a cache line so
// nodes on different kernel shards never false-share a counter word (the
// pad is derived from the struct size, so growing Stats keeps it correct).
type paddedStats struct {
	s Stats
	_ [(64 - unsafe.Sizeof(Stats{})%64) % 64]byte
}

// wiState implements State for write-invalidate: per-node caches plus the
// per-area sharer directory (conceptually resident at each area's home —
// held here because the simulator is one process). The directory is a dense
// slice indexed by area id — the id space is sealed before the run — so an
// area's sharer set is touched only from its home's execution context, which
// is what lets a multi-kernel run fan homes across shards without locks.
// Each sharer set is a bitset: registering a sharer is one OR, and
// collecting a write's invalidees walks set bits — O(nodes/64 + sharers),
// not O(nodes). Event counters are per node (every event is attributable to
// the node whose context observes it) and summed on read, so the totals are
// bit-identical however the nodes are sharded.
type wiState struct {
	caches []map[memory.AreaID]*copyLine
	dir    [][]uint64
	nodes  int
	// scratch is the per-node Invalidees result buffer (Invalidees runs in
	// the home's context, so per-node buffers never race).
	scratch [][]int
	stats   []paddedStats
}

// sharerSet returns (lazily creating, when create is set) the sharer bitset
// of area id. Only ever called from the area's home context.
func (s *wiState) sharerSet(id memory.AreaID, create bool) []uint64 {
	v := s.dir[id]
	if v == nil && create {
		v = make([]uint64, (s.nodes+63)/64)
		s.dir[id] = v
	}
	return v
}

func (s *wiState) line(node int, id memory.AreaID, create bool) *copyLine {
	m := s.caches[node]
	if m == nil {
		if !create {
			return nil
		}
		m = make(map[memory.AreaID]*copyLine)
		s.caches[node] = m
	}
	l := m[id]
	if l == nil && create {
		l = &copyLine{}
		m[id] = l
	}
	return l
}

// CachedRead implements State.
func (s *wiState) CachedRead(node int, a memory.Area, off, count int) ([]memory.Word, vclock.Masked, bool) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return nil, vclock.Masked{}, false
	}
	if off < 0 || count < 0 || off+count > len(l.data) {
		return nil, vclock.Masked{}, false
	}
	s.stats[node].s.Hits++
	out := make([]memory.Word, count)
	copy(out, l.data[off:off+count])
	return out, l.w, true
}

// InstallCopy implements State.
func (s *wiState) InstallCopy(node int, a memory.Area, data []memory.Word, w vclock.Masked) {
	l := s.line(node, a.ID, true)
	if cap(l.data) < len(data) {
		l.data = make([]memory.Word, len(data))
	}
	l.data = l.data[:len(data)]
	copy(l.data, data)
	if !w.IsNil() {
		l.w = w.CopyInto(l.w)
	} else {
		l.w = vclock.Masked{}
	}
	l.valid = true
	s.stats[node].s.Installs++
}

// PatchCopy implements State.
func (s *wiState) PatchCopy(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return
	}
	if off < 0 || off+len(data) > len(l.data) {
		return
	}
	copy(l.data[off:], data)
	if !neww.IsNil() {
		l.w = neww.CopyInto(l.w)
	}
	s.stats[node].s.Patches++
}

// DropCopy implements State.
func (s *wiState) DropCopy(node int, a memory.Area) {
	if l := s.line(node, a.ID, false); l != nil {
		l.valid = false
	}
}

// AddSharer implements State.
func (s *wiState) AddSharer(reader int, a memory.Area) {
	s.sharerSet(a.ID, true)[reader>>6] |= 1 << (uint(reader) & 63)
}

// Invalidees implements State. Ascending node order (trailing-zeros scans
// of ascending bitset words) keeps runs deterministic.
func (s *wiState) Invalidees(writer int, a memory.Area) []int {
	v := s.sharerSet(a.ID, false)
	if v == nil {
		return nil
	}
	home := a.Home
	out := s.scratch[home][:0]
	for w, word := range v {
		if w == writer>>6 {
			word &^= 1 << (uint(writer) & 63) // the writer keeps its copy
		}
		if word == 0 {
			continue
		}
		base := w * 64
		for b := word; b != 0; b &= b - 1 {
			out = append(out, base+bits.TrailingZeros64(b))
			s.stats[home].s.Invalidations++
		}
		v[w] &^= word
	}
	s.scratch[home] = out
	return out
}

// Stats implements State: the per-node counters summed — a commutative
// total, bit-identical however the nodes were sharded.
func (s *wiState) Stats() Stats {
	var t Stats
	for i := range s.stats {
		n := &s.stats[i].s
		t.HomeReads += n.HomeReads
		t.Hits += n.Hits
		t.Fetches += n.Fetches
		t.Installs += n.Installs
		t.Patches += n.Patches
		t.Invalidations += n.Invalidations
	}
	return t
}

// CountHomeRead and CountFetch let the transport attribute events the state
// cannot see from its own calls; node is the node in whose execution
// context the event happened (the home).
func (s *wiState) CountHomeRead(node int) { s.stats[node].s.HomeReads++ }
func (s *wiState) CountFetch(node int)    { s.stats[node].s.Fetches++ }

// Counter is implemented by states that track transport-visible events
// (home-local reads, fetches). The transport calls it when present, passing
// the node whose context observed the event.
type Counter interface {
	CountHomeRead(node int)
	CountFetch(node int)
}

// FaultSupport is implemented by states that survive node crashes: the fault
// layer calls these at the crash instant, in the execution contexts that
// already own the touched state (PurgeSharer from the area's home shard,
// DropNodeCopies from the crashed node's own shard), so the existing no-lock
// sharding discipline holds.
type FaultSupport interface {
	// PurgeSharer removes node from a's sharer directory without sending an
	// invalidation — the node is dead, there is no copy left to drop and no
	// one to acknowledge. Without the purge a later write to a would wait
	// forever on a dead sharer's acknowledgement.
	PurgeSharer(node int, a memory.Area)
	// DropNodeCopies invalidates every cached copy node holds, so a restarted
	// node cannot serve stale pre-crash data from its cache.
	DropNodeCopies(node int)
}

// PurgeSharer implements FaultSupport.
func (s *wiState) PurgeSharer(node int, a memory.Area) {
	if v := s.sharerSet(a.ID, false); v != nil {
		v[node>>6] &^= 1 << (uint(node) & 63)
	}
}

// DropNodeCopies implements FaultSupport. Only validity flags flip — the
// iteration order of the cache map is irrelevant to the resulting state.
func (s *wiState) DropNodeCopies(node int) {
	for _, l := range s.caches[node] {
		l.valid = false
	}
}
