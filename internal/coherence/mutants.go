package coherence

import (
	"fmt"

	"dsmrace/internal/memory"
	"dsmrace/internal/vclock"
)

// Protocol mutants: deliberately broken variants used by internal/mcheck's
// mutation-killing harness to prove the consistency oracle is not vacuous.
// Each mutant drops exactly one protocol obligation; the checker must flag
// an axiom violation on at least one enumerated schedule of a litmus config
// where the unmutated protocol passes every schedule.
//
// Mutants are reachable only through NewMutant — never through FromName —
// so no production selector can pick one up.

// Mutant names accepted by NewMutant.
const (
	// MutantSkipLastInval makes write-invalidate (and by extension the MESI
	// invalidation round) skip the last invalidee of every write: one stale
	// copy survives each write and keeps serving reads.
	MutantSkipLastInval = "wi-skip-last-inval"
	// MutantSkipDowngrade makes MESI's recall write dirty data back without
	// actually downgrading the owner's line: the owner keeps silently
	// writing to a line the directory believes was demoted.
	MutantSkipDowngrade = "mesi-skip-downgrade"
	// MutantSkipDepMerge makes causal updates patch data without merging
	// the dependency clock: readers observe values without inheriting what
	// those values causally depend on.
	MutantSkipDepMerge = "causal-skip-dep-merge"
)

// MutantNames lists the accepted mutant selectors.
func MutantNames() []string {
	return []string{MutantSkipLastInval, MutantSkipDowngrade, MutantSkipDepMerge}
}

// NewMutant returns the named deliberately-broken protocol variant.
func NewMutant(name string) (Protocol, error) {
	switch name {
	case MutantSkipLastInval:
		return mutantProtocol{base: NewWriteInvalidate(), name: name, mk: func(nodes, areas int) State {
			return &skipLastInvalState{wiState: newWIState(nodes, areas)}
		}}, nil
	case MutantSkipDowngrade:
		return mutantProtocol{base: NewMESI(), name: name, mk: func(nodes, areas int) State {
			return &skipDowngradeState{mesiState: newMESIState(nodes, areas)}
		}}, nil
	case MutantSkipDepMerge:
		return mutantProtocol{base: NewCausal(), name: name, mk: func(nodes, areas int) State {
			return &skipDepMergeState{causalState: newCausalState(nodes, areas)}
		}}, nil
	default:
		return nil, fmt.Errorf("coherence: unknown mutant %q", name)
	}
}

// mutantProtocol wraps a base protocol, swapping only the state factory.
type mutantProtocol struct {
	base Protocol
	name string
	mk   func(nodes, areas int) State
}

func (m mutantProtocol) Name() string                    { return m.base.Name() + "!" + m.name }
func (m mutantProtocol) Kind() Kind                      { return m.base.Kind() }
func (m mutantProtocol) CachesRemoteReads() bool         { return m.base.CachesRemoteReads() }
func (m mutantProtocol) ServesHomeReadsLocally() bool    { return m.base.ServesHomeReadsLocally() }
func (m mutantProtocol) NewState(nodes, areas int) State { return m.mk(nodes, areas) }

// skipLastInvalState drops the last invalidee of every invalidation round
// (and re-registers it in the directory so its stale copy keeps being
// skipped on later writes too).
type skipLastInvalState struct{ *wiState }

func (s *skipLastInvalState) Invalidees(writer int, a memory.Area) []int {
	inv := s.wiState.Invalidees(writer, a)
	if len(inv) == 0 {
		return inv
	}
	skipped := inv[len(inv)-1]
	s.wiState.AddSharer(skipped, a)
	return inv[:len(inv)-1]
}

// skipDowngradeState writes dirty data back on a recall but leaves the
// owner's line in M/E, so it keeps serving and silently absorbing writes
// the rest of the system never learns about.
type skipDowngradeState struct{ *mesiState }

func (s *skipDowngradeState) Downgrade(node int, a memory.Area) ([]memory.Word, bool) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid || l.state == mesiS {
		return nil, false
	}
	// Mutation: report the writeback without demoting the line.
	if l.state != mesiM {
		return nil, false
	}
	out := make([]memory.Word, len(l.data))
	copy(out, l.data)
	return out, true
}

// skipDepMergeState applies update data without merging the dependency
// clock — the classic causal-memory bug where a value arrives without its
// causal history.
type skipDepMergeState struct{ *causalState }

func (s *skipDepMergeState) ApplyUpdate(node int, a memory.Area, off int, data []memory.Word, ver uint64, dep vclock.VC) {
	s.causalState.ApplyUpdate(node, a, off, data, ver, nil)
}
