// Package coherence makes the DSM's coherence protocol a pluggable axis.
//
// The paper's model (and this repository's original implementation) keeps
// exactly one copy of every shared area — the home copy — and routes every
// access to it: effectively an eager write-update discipline in which the
// question "which replicas must be kept coherent?" never arises. That
// hard-wired choice is exposed here as the WriteUpdate Protocol, extracted
// but behaviourally untouched.
//
// The second implementation, WriteInvalidate, is a home-based invalidation
// protocol in the TreadMarks/Ivy lineage: a read miss fetches the whole
// area from its home (the area is the coherence unit, like a DSM page) and
// installs a local copy stamped with the area's write clock, which the home
// piggybacks on the fetch reply; subsequent reads hit locally and absorb
// that clock (the same reads-from happens-before edge a remote read would
// get — valid because a copy can only be valid while no later write has
// committed). The home directory tracks sharers, and a write completes only
// after every other copy has been invalidated and acknowledged, so the
// protocol never serves stale data through a synchronisation chain.
//
// The split between this package and internal/rdma is policy vs mechanism:
// Protocol/State own the decisions and the replica bookkeeping (directory,
// caches, invalidee selection); the NICs own the messages (fetch.req,
// fetch.reply, inval, inval.ack — see internal/network's kinds) and the
// locking. A future protocol (MSI-style exclusive ownership, lazy release
// consistency) plugs in as a third implementation without touching the
// detection core.
//
// Detection consequences. The race detector lives at the home (§V-B:
// "implemented in the communication library") and sees exactly the traffic
// that reaches it. Under write-update that is every access; under
// write-invalidate, cache hits generate no traffic and are therefore
// invisible to the online detector — the coverage consequence the protocol
// comparison experiments (raceexp -exp T12) quantify. Ground truth is
// unaffected: the trace records every access, hit or miss.
package coherence
