package coherence

import (
	"math/bits"
	"sort"

	"dsmrace/internal/memory"
	"dsmrace/internal/vclock"
)

// mesi is the multi-state caching protocol. On top of write-invalidate's
// sharer directory it tracks at most one *exclusive* owner per area: a
// reader that fetches an area nobody else holds installs it Exclusive, an
// exclusive holder writes silently (E→M, zero messages), and every home
// operation on the area — put, atomic, fetch — first recalls the owner,
// which downgrades to Shared and writes its dirty data back. The home
// therefore always operates on current data, and reads can only ever hit
// copies no committed write has invalidated — which is why internal/mcheck
// finds MESI sequentially consistent on every enumerated schedule.
type mesi struct{}

// NewMESI returns the MESI protocol.
func NewMESI() Protocol { return mesi{} }

func (mesi) Name() string                 { return "mesi" }
func (mesi) Kind() Kind                   { return MESI }
func (mesi) CachesRemoteReads() bool      { return true }
func (mesi) ServesHomeReadsLocally() bool { return true }

func (mesi) NewState(nodes, areas int) State { return newMESIState(nodes, areas) }

func newMESIState(nodes, areas int) *mesiState {
	s := &mesiState{
		caches:  make([]map[memory.AreaID]*mesiLine, nodes),
		dir:     make([][]uint64, areas),
		excl:    make([]int32, areas),
		nodes:   nodes,
		scratch: make([][]int, nodes),
		stats:   make([]paddedStats, nodes),
	}
	for i := range s.excl {
		s.excl[i] = -1
	}
	return s
}

// MESI line states.
const (
	mesiS uint8 = iota // Shared: clean, others may hold copies
	mesiE              // Exclusive: clean, sole holder, may upgrade silently
	mesiM              // Modified: dirty, sole holder, home memory is stale
)

// mesiLine is one node's cached copy of one area.
type mesiLine struct {
	data  []memory.Word
	w     vclock.Masked
	state uint8
	valid bool
}

// mesiState holds the protocol state: per-node caches (node context), the
// sharer directory plus the exclusive-owner record per area (home context).
type mesiState struct {
	caches []map[memory.AreaID]*mesiLine
	dir    [][]uint64
	excl   []int32
	nodes  int
	// scratch is the per-home Invalidees result buffer (home context).
	scratch [][]int
	stats   []paddedStats
}

func (s *mesiState) line(node int, id memory.AreaID, create bool) *mesiLine {
	m := s.caches[node]
	if m == nil {
		if !create {
			return nil
		}
		m = make(map[memory.AreaID]*mesiLine)
		s.caches[node] = m
	}
	l := m[id]
	if l == nil && create {
		l = &mesiLine{}
		m[id] = l
	}
	return l
}

func (s *mesiState) sharerSet(id memory.AreaID, create bool) []uint64 {
	v := s.dir[id]
	if v == nil && create {
		v = make([]uint64, (s.nodes+63)/64)
		s.dir[id] = v
	}
	return v
}

// CachedRead implements State. Any valid line (S, E or M) serves reads —
// E/M lines are by definition the newest data in the system.
func (s *mesiState) CachedRead(node int, a memory.Area, off, count int) ([]memory.Word, vclock.Masked, bool) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return nil, vclock.Masked{}, false
	}
	if off < 0 || count < 0 || off+count > len(l.data) {
		return nil, vclock.Masked{}, false
	}
	s.stats[node].s.Hits++
	out := make([]memory.Word, count)
	copy(out, l.data[off:off+count])
	return out, l.w, true
}

// InstallCopy implements State: fetched copies install Shared; the fetch
// reply's exclusivity verdict upgrades via InstallExclusive.
func (s *mesiState) InstallCopy(node int, a memory.Area, data []memory.Word, w vclock.Masked) {
	l := s.line(node, a.ID, true)
	if cap(l.data) < len(data) {
		l.data = make([]memory.Word, len(data))
	}
	l.data = l.data[:len(data)]
	copy(l.data, data)
	if !w.IsNil() {
		l.w = w.CopyInto(l.w)
	} else {
		l.w = vclock.Masked{}
	}
	l.state = mesiS
	l.valid = true
	s.stats[node].s.Installs++
}

// PatchCopy implements State: the writer's surviving copy after a completed
// home write becomes Modified — the home promoted the writer to exclusive
// owner at the same commit (PromoteSoleSharer), and the home→writer FIFO
// guarantees the ack lands before any later recall.
func (s *mesiState) PatchCopy(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid {
		return
	}
	if off < 0 || off+len(data) > len(l.data) {
		return
	}
	copy(l.data[off:], data)
	if !neww.IsNil() {
		l.w = neww.CopyInto(l.w)
	}
	l.state = mesiM
	s.stats[node].s.Patches++
}

// DropCopy implements State.
func (s *mesiState) DropCopy(node int, a memory.Area) {
	if l := s.line(node, a.ID, false); l != nil {
		l.valid = false
		l.state = mesiS
	}
}

// AddSharer implements State.
func (s *mesiState) AddSharer(reader int, a memory.Area) {
	s.sharerSet(a.ID, true)[reader>>6] |= 1 << (uint(reader) & 63)
}

// Invalidees implements State — identical to write-invalidate: the recall
// phase ran first, so every surviving copy is a clean S line with nothing to
// write back.
func (s *mesiState) Invalidees(writer int, a memory.Area) []int {
	v := s.sharerSet(a.ID, false)
	if v == nil {
		return nil
	}
	home := a.Home
	out := s.scratch[home][:0]
	for w, word := range v {
		if w == writer>>6 {
			word &^= 1 << (uint(writer) & 63)
		}
		if word == 0 {
			continue
		}
		base := w * 64
		for b := word; b != 0; b &= b - 1 {
			out = append(out, base+bits.TrailingZeros64(b))
			s.stats[home].s.Invalidations++
		}
		v[w] &^= word
	}
	s.scratch[home] = out
	return out
}

// ExclusiveOwner implements MESIState. Home context.
func (s *mesiState) ExclusiveOwner(origin int, a memory.Area) int {
	if o := s.excl[a.ID]; o >= 0 && int(o) != origin {
		return int(o)
	}
	return -1
}

// Downgrade implements MESIState. Owner context.
func (s *mesiState) Downgrade(node int, a memory.Area) ([]memory.Word, bool) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid || l.state == mesiS {
		return nil, false
	}
	dirty := l.state == mesiM
	l.state = mesiS
	if !dirty {
		return nil, false
	}
	out := make([]memory.Word, len(l.data))
	copy(out, l.data)
	return out, true
}

// ClearExclusive implements MESIState. Home context.
func (s *mesiState) ClearExclusive(a memory.Area) { s.excl[a.ID] = -1 }

// GrantExclusive implements MESIState. Home context; called right after
// AddSharer registered the reader.
func (s *mesiState) GrantExclusive(reader int, a memory.Area) bool {
	v := s.sharerSet(a.ID, false)
	for w, word := range v {
		if w == reader>>6 {
			word &^= 1 << (uint(reader) & 63)
		}
		if word != 0 {
			return false
		}
	}
	s.excl[a.ID] = int32(reader)
	return true
}

// InstallExclusive implements MESIState. Reader context.
func (s *mesiState) InstallExclusive(node int, a memory.Area) {
	if l := s.line(node, a.ID, false); l != nil && l.valid {
		l.state = mesiE
	}
}

// HoldsExclusive implements MESIState. Node context.
func (s *mesiState) HoldsExclusive(node int, a memory.Area) bool {
	l := s.line(node, a.ID, false)
	return l != nil && l.valid && l.state != mesiS
}

// SilentWrite implements MESIState. Node context.
func (s *mesiState) SilentWrite(node int, a memory.Area, off int, data []memory.Word, neww vclock.Masked) {
	l := s.line(node, a.ID, false)
	if l == nil || !l.valid || off < 0 || off+len(data) > len(l.data) {
		return
	}
	copy(l.data[off:], data)
	if !neww.IsNil() {
		l.w = neww.CopyInto(l.w)
	}
	l.state = mesiM
	s.stats[node].s.Upgrades++
}

// PromoteSoleSharer implements MESIState. Home context, at write commit:
// the invalidation round cleared every other sharer, so the writer is
// exclusive iff it holds a copy at all.
func (s *mesiState) PromoteSoleSharer(writer int, a memory.Area) {
	v := s.sharerSet(a.ID, false)
	if v == nil {
		return
	}
	if v[writer>>6]&(1<<(uint(writer)&63)) != 0 {
		s.excl[a.ID] = int32(writer)
	}
}

// Stats implements State.
func (s *mesiState) Stats() Stats {
	var t Stats
	for i := range s.stats {
		n := &s.stats[i].s
		t.HomeReads += n.HomeReads
		t.Hits += n.Hits
		t.Fetches += n.Fetches
		t.Installs += n.Installs
		t.Patches += n.Patches
		t.Invalidations += n.Invalidations
		t.Recalls += n.Recalls
		t.Upgrades += n.Upgrades
	}
	return t
}

// CountHomeRead and CountFetch implement Counter.
func (s *mesiState) CountHomeRead(node int) { s.stats[node].s.HomeReads++ }
func (s *mesiState) CountFetch(node int)    { s.stats[node].s.Fetches++ }

// CountRecall attributes a recall to the home that issued it.
func (s *mesiState) CountRecall(node int) { s.stats[node].s.Recalls++ }

// PurgeSharer implements FaultSupport: a crashed exclusive owner also loses
// its exclusivity — its dirty data died with it, home memory stands.
func (s *mesiState) PurgeSharer(node int, a memory.Area) {
	if v := s.sharerSet(a.ID, false); v != nil {
		v[node>>6] &^= 1 << (uint(node) & 63)
	}
	if s.excl[a.ID] == int32(node) {
		s.excl[a.ID] = -1
	}
}

// DropNodeCopies implements FaultSupport.
func (s *mesiState) DropNodeCopies(node int) {
	//dsmlint:ordered every line gets the same valid/state flip; the fold commutes
	for _, l := range s.caches[node] {
		l.valid = false
		l.state = mesiS
	}
}

// FlushDirty implements DirtyFlusher: every valid M line, nodes ascending,
// area ids ascending (cache maps are unordered; the sort pins the order).
func (s *mesiState) FlushDirty(visit func(node int, id memory.AreaID, data []memory.Word)) {
	for node := 0; node < s.nodes; node++ {
		m := s.caches[node]
		if len(m) == 0 {
			continue
		}
		ids := make([]memory.AreaID, 0, len(m))
		//dsmlint:ordered ids are sorted below before any visit
		for id, l := range m {
			if l.valid && l.state == mesiM {
				ids = append(ids, id)
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			visit(node, id, m[id].data)
		}
	}
}

// Fingerprint implements State: sharer directories and exclusive-owner
// records per area, plus every valid cached line with its MESI state, in
// dense (area, node) index order.
func (s *mesiState) Fingerprint(h uint64) uint64 {
	for id := range s.dir {
		for _, bits := range s.dir[id] {
			h = fpMix(h, bits)
		}
		h = fpMix(h, uint64(int64(s.excl[id]))&0xffffffff)
		h = fpMix(h, 0x6d657369) // area separator
	}
	for node := 0; node < s.nodes; node++ {
		for id := range s.dir {
			l := s.line(node, memory.AreaID(id), false)
			if l == nil || !l.valid {
				h = fpMix(h, 0)
				continue
			}
			h = fpMix(h, 1)
			h = fpMix(h, uint64(l.state))
			h = fpWords(h, l.data)
			h = fpClock(h, l.w)
		}
	}
	return h
}
