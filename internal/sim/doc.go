// Package sim is a deterministic discrete-event simulation kernel.
//
// Simulated processes are ordinary Go functions running on goroutines, but
// the kernel enforces that exactly one of them runs at a time. Scheduling is
// baton-passing: whichever goroutine holds the baton executes the event loop
// in place. A process that parks does not hand control to a central
// scheduler goroutine — it becomes the driver itself, executes events
// inline, and resumes directly (zero goroutine switches) when the next
// resumption it pops is its own; only a resumption of a *different* process
// moves the baton, with a single direct channel hand-off. All cross-process
// signalling is still routed through the event queue, so a run is a pure
// function of (programs, configuration, seed): the same seed always yields
// the same interleaving — which goroutine happens to execute an event is
// invisible to the simulation. Race *manifestation* is explored by sweeping
// seeds, which is how the harness realises the paper's operational
// definition of a race ("the result of a computation differs between
// executions", §III-C).
//
// For operations that advance as event-driven state machines instead of
// parked goroutines (the RDMA initiator path), the kernel provides
// first-class continuation scheduling: Kernel.Defer files a continuation in
// exactly the (time, seq) slot a Proc.Ready wakeup pushed at the same
// moment would occupy, Proc.Await is the single join point such a chain
// releases, and Proc.Relabel keeps deadlock reports naming the phase
// actually stuck while the process stays parked across phases.
//
// The future-event queue is a hierarchical timing wheel (wheel.go): O(1)
// amortised schedule and pop, byte-identical (time, seq) execution order to
// the container/heap queue it replaced, with same-instant wakeups served
// from a FIFO now-queue that skips the wheel entirely.
//
// A simulation can also be partitioned across K cooperating shard kernels
// (MultiKernel, multi.go): each shard owns a disjoint set of nodes and runs
// conservative time windows — bounded by the network's minimum cross-node
// latency — on its own goroutine, while a serial window barrier replays the
// shards' execution logs in exact global (time, key) order to assign push
// sequence numbers, draw deferred latency randomness, and file cross-shard
// deliveries into their exact (time, seq) slots. The partitioned run is
// bit-identical to the single-kernel run for any shard count; runs whose
// processes draw the shared RNG mid-window are inherently serial and must
// say so (the draw panics otherwise). PartitionNodes (partition.go)
// supplies the round-robin and locality-aware node→shard policies.
//
// Three optimisations cut the window/barrier overhead without touching the
// equivalence: adaptive window extension runs a window as up to a budget of
// lookahead-sized sub-rounds while no cross-shard envelope or ordered
// action appears (the budget doubles after quiet windows and resets on
// traffic — a pure function of replayed state, so placement is
// deterministic); pipelined replay overlaps a quiet window's key-assigning
// replay with the next window's execution through double-buffered logs and
// barrier-applied resolutions; and the replay merge itself is a loser tree
// with per-shard run detection, O(log K) per record worst case and O(1) on
// runs. On a single-core host an inline barrier mode drives the shards from
// the coordinator with no goroutine hand-offs at all. MultiKernelStats
// counts what fired; SetAdaptiveWindow/SetPipelinedReplay (and the
// DSMRACE_MK_EXT/DSMRACE_MK_PIPELINE/DSMRACE_MK_BARRIER environment
// overrides) select the machinery, with every combination bit-identical.
package sim
