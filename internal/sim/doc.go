// Package sim is a deterministic discrete-event simulation kernel.
//
// Simulated processes are ordinary Go functions running on goroutines, but
// the kernel enforces that exactly one of them runs at a time, handing
// control back and forth with unbuffered channels. All cross-process
// signalling is routed through the event queue, so a run is a pure function
// of (programs, configuration, seed): the same seed always yields the same
// interleaving. Race *manifestation* is explored by sweeping seeds, which is
// how the harness realises the paper's operational definition of a race
// ("the result of a computation differs between executions", §III-C).
//
// The future-event queue is a hierarchical timing wheel (wheel.go): O(1)
// amortised schedule and pop, byte-identical (time, seq) execution order to
// the container/heap queue it replaced, with same-instant wakeups served
// from a FIFO now-queue that skips the wheel entirely.
package sim
