package sim

import "testing"

// TestQueueDoubleWakeWithTryPopSteal exercises the wake/steal race: a parked
// popper is woken by Push, but an event handler steals the item with TryPop
// before the popper resumes. The popper must re-park (not spin or grab a
// phantom item), a second Push must wake it again, and the waiter ring must
// end empty — no stale waiter entry survives.
func TestQueueDoubleWakeWithTryPopSteal(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	q := NewQueue[int](k, "q")
	var got []int

	k.Spawn("popper", func(p *Proc) {
		got = append(got, q.Pop(p))
	})

	// Both t=5 events are scheduled before Run, so they execute in this
	// order: the push wakes the popper (its resume joins the queue *behind*
	// the already-scheduled steal event), then the steal drains the item.
	// The popper resumes third, finds the queue empty, and must re-park.
	k.Schedule(5, func() { q.Push(1) })
	k.Schedule(5, func() {
		if v, ok := q.TryPop(); !ok || v != 1 {
			t.Errorf("steal TryPop = %v, %v; want 1, true", v, ok)
		}
	})
	// Second round: the re-parked popper must be woken again and win this one.
	k.Schedule(20, func() { q.Push(2) })

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("popper got %v, want [2]", got)
	}
	if q.Waiters() != 0 {
		t.Fatalf("waiter ring holds %d stale entries, want 0", q.Waiters())
	}
	if q.Len() != 0 {
		t.Fatalf("queue holds %d leftover items, want 0", q.Len())
	}
}

// TestQueueWokenPopperBeatenByDirectPop covers the other steal path: the
// woken waiter loses the item to a second process that called Pop on a
// non-empty queue (never parking). The loser must re-park and be woken by
// the next Push, and no process may be counted as a waiter twice.
func TestQueueWokenPopperBeatenByDirectPop(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	q := NewQueue[int](k, "q")
	var first, second int

	k.Spawn("waiter", func(p *Proc) {
		first = q.Pop(p) // parks at t=0, queue empty
	})
	k.Spawn("thief", func(p *Proc) {
		p.Sleep(5)
		// Runs in the same instant as the push below but after the waiter's
		// wake was queued; Pop sees the item and takes it without parking.
		second = q.Pop(p)
	})
	k.Schedule(5, func() { q.Push(10) })
	k.Schedule(6, func() { q.Push(20) })

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Exactly one process got each value, whichever won the t=5 instant.
	vals := map[int]bool{first: true, second: true}
	if !vals[10] || !vals[20] {
		t.Fatalf("values delivered: first=%d second=%d, want {10, 20} exactly once each", first, second)
	}
	if q.Waiters() != 0 {
		t.Fatalf("waiter ring holds %d stale entries, want 0", q.Waiters())
	}
}

// TestSemaphoreWakeSteal: a Release wakes a parked Acquirer, but TryAcquire
// steals the permit first; the woken process must re-park and the next
// Release must serve it.
func TestSemaphoreWakeSteal(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	s := NewSemaphore(k, "s", 0)
	done := false

	k.Spawn("acquirer", func(p *Proc) {
		s.Acquire(p)
		done = true
	})
	k.Schedule(5, func() {
		s.Release()
		if !s.TryAcquire() {
			t.Error("TryAcquire failed with a free permit")
		}
	})
	k.Schedule(10, func() { s.Release() })

	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("acquirer never got a permit")
	}
	if s.waiters.Len() != 0 {
		t.Fatalf("semaphore waiter ring holds %d stale entries, want 0", s.waiters.Len())
	}
}
