package sim

import "math/bits"

// The future-event queue is a hierarchical timing wheel: wheelLevels levels
// of 64 slots each, where a level-L slot spans 64^L nanoseconds of virtual
// time. Scheduling and popping are O(1) amortised (each event cascades at
// most wheelLevels-1 times on its way down), against the O(log n) of the
// container/heap queue it replaces — and events are threaded through typed
// slices, so nothing is boxed through interface{}.
//
// Determinism contract: events pop in exactly (at, seq) order, byte-identical
// to the heap implementation. Time order comes from the slot geometry (an
// event is only ever popped out of a level-0 slot, which spans a single
// nanosecond); seq order among same-instant events comes from the min-seq
// scan of that slot, which holds them in arbitrary arrival order (direct
// pushes interleave with cascades).
//
// Two invariants carry all the correctness weight:
//
//  1. Cursor safety: the cursor never passes the kernel's current time while
//     events can still be pushed behind it — a slot index is only meaningful
//     within one 64-bucket window of the cursor, so a push at a time before
//     the cursor would be misfiled. peekWithin therefore refuses to advance
//     the cursor past its limit; the kernel passes now when it merely
//     compares the wheel against the now-queue, and an unbounded limit only
//     when it is about to pop the wheel (which immediately advances kernel
//     time to the popped event, restoring cursor <= now).
//
//  2. Entry cascade: whenever the cursor enters a new bucket at level L >= 1,
//     that bucket's slot is cascaded down (setCur). Afterwards an occupied
//     slot at the cursor's own index always means "one full window ahead",
//     which is what makes the next-slot scan's window disambiguation sound.
const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64
	wheelLevels = 8              // horizon 64^8 ns ≈ 3.3 virtual days
)

// wheelHorizon is the furthest cursor-relative delta the wheel proper can
// hold; events beyond it wait in the overflow list (unreachable for the
// latencies this simulator models, but a MaxTime-free workload must not be
// able to corrupt the queue).
const wheelHorizon = Time(1) << (wheelBits * wheelLevels)

// timeMax bounds an unbounded peek.
const timeMax = Time(1<<63 - 1)

type wheel struct {
	// cur is the wheel cursor: every resident event has at >= cur, and
	// cur never exceeds the kernel's current time between events.
	cur    Time
	count  int
	occ    [wheelLevels]uint64               // nonempty-slot bitmap per level
	slots  [wheelLevels][wheelSlots][]*event // per-slot event lists
	over   []*event                          // beyond-horizon overflow
	overAt Time                              // min at over `over` (valid when non-empty)
	// peeked caches the event located by the last peekWithin, with its slot
	// coordinates, so the immediately following take needs no re-search.
	peeked *event
	pSlot  int
	pIdx   int
}

func (w *wheel) len() int { return w.count + len(w.over) }

// invalidatePeek drops the cached peek. Required after resident events'
// keys are rewritten in place (the window barrier's replay): a cached peek
// memoises a min-seq scan that the rewrite may have invalidated.
func (w *wheel) invalidatePeek() { w.peeked = nil }

// push inserts an event; e.at must be >= w.cur (the kernel only schedules
// at or after its current time, and the cursor never passes that — for a
// MultiKernel shard the cursor additionally never passes the window
// horizon, so barrier filings can never land behind it). A push behind the
// cursor would be silently misfiled, so it panics instead.
func (w *wheel) push(e *event) {
	if e.at < w.cur {
		panic("sim: event pushed behind the wheel cursor")
	}
	w.peeked = nil
	d := e.at - w.cur
	if d >= wheelHorizon {
		if len(w.over) == 0 || e.at < w.overAt {
			w.overAt = e.at
		}
		w.over = append(w.over, e)
		return
	}
	level := 0
	if d > 0 {
		level = (bits.Len64(uint64(d)) - 1) / wheelBits
	}
	idx := int(uint64(e.at)>>(uint(level)*wheelBits)) & (wheelSlots - 1)
	w.slots[level][idx] = append(w.slots[level][idx], e)
	w.occ[level] |= 1 << uint(idx)
	w.count++
}

// setCur advances the cursor to t and re-establishes the entry-cascade
// invariant: at every level whose bucket the move entered, the new current
// bucket's slot is cascaded down. The pass runs top-down so events a high
// level drops into a lower level's current bucket are cascaded in turn by
// the lower level's own pass.
func (w *wheel) setCur(t Time) {
	old := w.cur
	w.cur = t
	for lvl := wheelLevels - 1; lvl >= 1; lvl-- {
		shift := uint(lvl) * wheelBits
		if uint64(old)>>shift == uint64(t)>>shift {
			// The move stayed inside this bucket, so it stayed inside every
			// coarser bucket too; lower levels may still have changed.
			continue
		}
		idx := int(uint64(t)>>shift) & (wheelSlots - 1)
		if w.occ[lvl]&(1<<uint(idx)) == 0 {
			continue
		}
		// The slot can mix events of the entered bucket (filed long ago)
		// with events one window ahead (filed recently); re-pushing sorts
		// both out — ahead events may land back in this same slot, which is
		// safe: each re-push writes an index the loop has already read.
		list := w.slots[lvl][idx]
		w.slots[lvl][idx] = list[:0]
		w.occ[lvl] &^= 1 << uint(idx)
		w.count -= len(list)
		for _, e := range list {
			w.push(e)
		}
	}
	w.peeked = nil
}

// peekWithin locates the (at, seq)-least event without removing it,
// cascading pending higher-level slots on the way, and returns it — or nil
// when the wheel is empty or its earliest event is after limit. The cursor
// never advances past limit, so a nil return leaves the wheel able to
// accept pushes at any later kernel instant up to limit.
func (w *wheel) peekWithin(limit Time) *event {
	if w.peeked != nil && w.peeked.at <= limit {
		return w.peeked
	}
	for w.count > 0 || len(w.over) > 0 {
		// Fast path: the earliest occupied level-0 slot at or after the
		// cursor within the cursor's current 64ns window. The entry-cascade
		// invariant guarantees no higher-level slot can start inside this
		// window (level >= 1 starts are 64-aligned, and the aligned start is
		// the current bucket, emptied on entry), so the candidate is the
		// global minimum.
		c0 := int(uint64(w.cur)) & (wheelSlots - 1)
		if m := w.occ[0] &^ (uint64(1)<<uint(c0) - 1); m != 0 {
			idx := bits.TrailingZeros64(m)
			at := (w.cur &^ Time(wheelSlots-1)) | Time(idx)
			if at > limit {
				return nil
			}
			// An overflow event due at or before the candidate must come
			// first: it was pushed a full horizon earlier, so it carries
			// the smaller seq. Re-home the overflow and rescan. (overAt <=
			// at <= limit, so the cursor move respects the bound.)
			if len(w.over) > 0 && w.overAt <= at {
				w.setCur(w.overAt)
				w.rehomeOverflow()
				continue
			}
			w.pSlot = idx
			w.pIdx = minSeqIndex(w.slots[0][idx])
			w.peeked = w.slots[0][idx][w.pIdx]
			return w.peeked
		}
		// Slow path: move the cursor to the earliest pending slot across all
		// levels (wrapped level-0 slots of the next window included) or to
		// the overflow front; setCur cascades whatever the move enters.
		lvl, start := w.next()
		if lvl < 0 || start > limit {
			return nil
		}
		w.setCur(start)
		if lvl >= wheelLevels {
			w.rehomeOverflow()
		}
	}
	return nil
}

// rehomeOverflow re-files every overflow event against the current cursor;
// still-beyond-horizon stragglers land straight back in over.
func (w *wheel) rehomeOverflow() {
	pend := w.over
	w.over = nil
	w.overAt = 0
	for _, e := range pend {
		w.push(e)
	}
}

// next finds the earliest pending slot start across all levels, plus the
// overflow list. It returns the level (wheelLevels for the overflow, -1
// when nothing is pending) and the slot's absolute start time. Thanks to
// the entry-cascade invariant, an occupied bit at the cursor's own index of
// any level means exactly one window ahead.
func (w *wheel) next() (int, Time) {
	best := -1
	var bestStart Time
	for lvl := 0; lvl < wheelLevels; lvl++ {
		occ := w.occ[lvl]
		if occ == 0 {
			continue
		}
		shift := uint(lvl) * wheelBits
		cb := uint64(w.cur) >> shift
		c := int(cb) & (wheelSlots - 1)
		var bkt uint64
		if hi := occ &^ (uint64(1)<<uint(c+1) - 1); hi != 0 {
			bkt = cb + uint64(bits.TrailingZeros64(hi)-c)
		} else {
			lo := occ & (uint64(1)<<uint(c+1) - 1)
			bkt = cb + uint64(wheelSlots-c+bits.TrailingZeros64(lo))
		}
		if start := Time(bkt << shift); best < 0 || start < bestStart {
			best, bestStart = lvl, start
		}
	}
	// Ties go to the overflow: an overflow event at the same instant as a
	// wheel slot was necessarily pushed a full horizon earlier, so it can
	// carry the smaller seq and must be re-homed before the slot drains.
	if len(w.over) > 0 && (best < 0 || w.overAt <= bestStart) {
		best, bestStart = wheelLevels, w.overAt
	}
	return best, bestStart
}

// take removes and returns the event the last peekWithin located; the
// caller must have obtained a non-nil peek for the current queue state.
func (w *wheel) take() *event {
	e := w.peeked
	list := w.slots[0][w.pSlot]
	last := len(list) - 1
	list[w.pIdx] = list[last]
	list[last] = nil
	w.slots[0][w.pSlot] = list[:last]
	if last == 0 {
		w.occ[0] &^= 1 << uint(w.pSlot)
	}
	w.count--
	// e sits in the cursor's current 64ns window, so this never crosses a
	// coarser bucket boundary — a plain cursor move, no cascades to check.
	w.cur = e.at
	w.peeked = nil
	return e
}

// minSeqIndex returns the index of the smallest-seq event in a slot; slots
// are small and each is scanned only while its instant drains.
func minSeqIndex(list []*event) int {
	best := 0
	for i := 1; i < len(list); i++ {
		if list[i].seq < list[best].seq {
			best = i
		}
	}
	return best
}

// each calls fn for every resident event, including overflow, in no
// particular order (fingerprint folds over it must commute).
func (w *wheel) each(fn func(*event)) {
	for l := 0; l < wheelLevels; l++ {
		occ := w.occ[l]
		for occ != 0 {
			i := bits.TrailingZeros64(occ)
			occ &^= 1 << uint(i)
			for _, e := range w.slots[l][i] {
				fn(e)
			}
		}
	}
	for _, e := range w.over {
		fn(e)
	}
}
