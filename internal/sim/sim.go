package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds since the start of the run.
type Time int64

// Common virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time in microseconds, the natural unit for the
// InfiniBand-class latencies the paper targets.
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

// event is a scheduled callback. Ties on time are broken by insertion
// sequence so execution order is fully deterministic. When proc is non-nil
// the event resumes that process instead of calling fn — the dominant event
// shape (every wakeup), kept closure-free so Ready/Sleep never allocate.
// Events are pooled: the kernel recycles them once executed.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

// Config parameterises a kernel.
type Config struct {
	// Seed drives every random choice in the simulation (latency jitter,
	// workload randomness). Two runs with equal seeds are identical.
	Seed int64
	// MaxEvents aborts the run after this many events as a runaway guard.
	// Zero means the default of 50 million.
	MaxEvents uint64
	// MaxTime aborts the run once virtual time passes this bound.
	// Zero means unbounded.
	MaxTime Time
}

// Kernel is the simulation core. Create one with NewKernel, spawn processes,
// then call Run. A Kernel is not safe for concurrent use by real threads;
// concurrency lives inside the simulation.
type Kernel struct {
	cfg Config
	now Time
	seq uint64
	// queue holds all future events, ordered (time, seq), in a hierarchical
	// timing wheel (see wheel.go): O(1) amortised schedule and pop.
	queue wheel
	// nowQ holds events scheduled for the current instant. They would sit at
	// the wheel's front anyway (time now, larger seq than anything queued),
	// so a FIFO ring serves them in O(1) — the fast path every same-time
	// Ready()/Yield() wakeup takes, skipping the wheel entirely.
	nowQ    Ring[*event]
	free    []*event // recycled event structs
	rng     *rand.Rand
	procs   []*Proc
	parked  chan struct{}
	events  uint64
	stopped bool
}

// NewKernel returns a kernel with the given configuration.
func NewKernel(cfg Config) *Kernel {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 50_000_000
	}
	return &Kernel{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		parked: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from simulation context (process bodies and event handlers).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// Schedule runs fn after delay d of virtual time (d may be zero; negative
// delays are clamped to zero). It may be called from process bodies, event
// handlers, or before Run.
func (k *Kernel) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// At runs fn at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	k.push(t, fn, nil)
}

// atResume schedules p's resumption at absolute time t without allocating a
// closure.
func (k *Kernel) atResume(t Time, p *Proc) {
	k.push(t, nil, p)
}

// push enqueues an event: same-instant events go to the FIFO now-queue,
// future events to the timing wheel. Execution order is identical to a
// single (time, seq) priority queue — now-queue entries carry larger
// sequence numbers than any same-time event already queued, and Run picks
// the smaller of the two fronts.
func (k *Kernel) push(t Time, fn func(), p *Proc) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	e := k.newEvent(t, fn, p)
	if t == k.now {
		k.nowQ.PushBack(e)
		return
	}
	k.queue.push(e)
}

// newEvent takes an event from the pool (or allocates one) and fills it.
func (k *Kernel) newEvent(t Time, fn func(), p *Proc) *event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	e.at, e.seq, e.fn, e.proc = t, k.seq, fn, p
	return e
}

// recycle returns an executed event to the pool, dropping its references.
func (k *Kernel) recycle(e *event) {
	e.fn, e.proc = nil, nil
	k.free = append(k.free, e)
}

// Stop aborts the run after the current event completes. Parked processes
// are left suspended; Run reports them.
func (k *Kernel) Stop() { k.stopped = true }

// ProcState describes where a process is in its lifecycle.
type ProcState int

// Process lifecycle states.
const (
	ProcReady ProcState = iota
	ProcRunning
	ProcParked
	ProcDone
)

// Proc is a simulated process. The function passed to Spawn receives its
// Proc and uses it for all blocking interactions with the simulation.
type Proc struct {
	ID    int
	Name  string
	k     *Kernel
	wake  chan struct{}
	state ProcState
	// blockReason is a human-readable description of what the process is
	// waiting for; surfaced by deadlock reports.
	blockReason string
	err         error
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Err returns the process's terminal error (panic converted to error), if any.
func (p *Proc) Err() error { return p.err }

// Spawn creates a process that starts executing fn at the current virtual
// time. It may be called before Run or from inside the simulation.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{ID: len(k.procs), Name: name, k: k, wake: make(chan struct{})}
	k.procs = append(k.procs, p)
	go func() {
		<-p.wake // wait to be scheduled for the first time
		defer func() {
			if r := recover(); r != nil {
				p.err = fmt.Errorf("sim: process %s panicked: %v", p.Name, r)
			}
			p.state = ProcDone
			k.parked <- struct{}{}
		}()
		fn(p)
	}()
	k.atResume(k.now, p)
	return p
}

// resume hands control to p and blocks until p parks or finishes. It must
// only be called from kernel (event) context.
func (k *Kernel) resume(p *Proc) {
	if p.state == ProcDone {
		return
	}
	p.state = ProcRunning
	p.wake <- struct{}{}
	<-k.parked
}

// Park suspends the calling process until something calls Ready on it.
// reason is shown in deadlock reports. It must only be called from the
// process's own goroutine.
func (p *Proc) Park(reason string) {
	p.state = ProcParked
	p.blockReason = reason
	p.k.parked <- struct{}{}
	<-p.wake
	p.state = ProcRunning
	p.blockReason = ""
}

// Ready schedules p to resume at the current virtual time. Safe to call
// from any simulation context (another process or an event handler);
// resumption always happens through the event queue, preserving determinism.
// Same-time wakeups take the kernel's now-queue fast path: no heap
// operations and no allocation.
func (p *Proc) Ready() {
	p.k.atResume(p.k.now, p)
}

// Sleep suspends the calling process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		// Still yield through the event queue so equal-time events interleave
		// deterministically.
		d = 0
	}
	p.k.atResume(p.k.now+d, p)
	// A sleeping process always has its wakeup queued, so the reason can
	// never surface in a deadlock report; a static label avoids formatting
	// a fresh string per sleep.
	p.Park("sleep")
}

// Yield gives other ready processes and events at the current time a chance
// to run.
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError is returned by Run when the event queue drains while
// processes are still parked.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: reason" for each parked process
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v; blocked: %s", e.Time, strings.Join(e.Blocked, "; "))
}

// LimitError is returned when MaxEvents or MaxTime is exceeded.
type LimitError struct {
	What   string
	Events uint64
	Time   Time
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: %s limit exceeded at %v after %d events", e.What, e.Time, e.Events)
}

// Run executes the simulation until the event queue is empty, a limit trips,
// or Stop is called. It returns the first process error (panic) encountered,
// a DeadlockError if processes remain parked, or nil.
func (k *Kernel) Run() error {
	for (k.nowQ.Len() > 0 || k.queue.len() > 0) && !k.stopped {
		// The next event is the (time, seq)-least of the wheel front and
		// the now-queue front. Every now-queue entry is at the current
		// instant; wheel entries at the same instant were scheduled earlier
		// (smaller seq) unless they were filed for this time *before* it
		// arrived. The peek is bounded by now when the now-queue can win,
		// so the wheel cursor never passes the kernel clock while events
		// can still be pushed behind it.
		var e *event
		if k.nowQ.Len() == 0 {
			k.queue.peekWithin(timeMax)
			e = k.queue.take()
		} else if we := k.queue.peekWithin(k.now); we != nil && we.seq < k.nowQ.Front().seq {
			e = k.queue.take()
		} else {
			e = k.nowQ.PopFront()
		}
		k.now = e.at
		if k.cfg.MaxTime > 0 && k.now > k.cfg.MaxTime {
			return &LimitError{What: "time", Events: k.events, Time: k.now}
		}
		k.events++
		if k.events > k.cfg.MaxEvents {
			return &LimitError{What: "event", Events: k.events, Time: k.now}
		}
		fn, p := e.fn, e.proc
		k.recycle(e)
		if p != nil {
			k.resume(p)
		} else {
			fn()
		}
	}
	for _, p := range k.procs {
		if p.err != nil {
			return p.err
		}
	}
	if k.stopped {
		return nil
	}
	var blocked []string
	for _, p := range k.procs {
		if p.state == ProcParked {
			blocked = append(blocked, fmt.Sprintf("%s: %s", p.Name, p.blockReason))
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}
