package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Time is virtual time in nanoseconds since the start of the run.
type Time int64

// Common virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String formats the time in microseconds, the natural unit for the
// InfiniBand-class latencies the paper targets.
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
}

// event is a scheduled callback. Ties on time are broken by insertion
// sequence so execution order is fully deterministic. When proc is non-nil
// the event resumes that process instead of calling fn — the dominant event
// shape (every wakeup), kept closure-free so Ready/Sleep never allocate.
// Events are pooled: the kernel recycles them once executed.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

// Config parameterises a kernel.
type Config struct {
	// Seed drives every random choice in the simulation (latency jitter,
	// workload randomness). Two runs with equal seeds are identical.
	Seed int64
	// MaxEvents aborts the run after this many events as a runaway guard.
	// Zero means the default of 50 million.
	MaxEvents uint64
	// MaxTime aborts the run once virtual time passes this bound.
	// Zero means unbounded.
	MaxTime Time
	// Chooser, when non-nil, resolves explicit nondeterministic choice
	// points (Kernel.Choose): an exhaustive-exploration driver supplies a
	// function that enumerates choice vectors systematically instead of
	// sampling them from the seed. Nil means every choice resolves to 0 —
	// the default schedule — and Choose never draws the RNG, so runs
	// without a chooser are bit-identical to runs built before the hook
	// existed.
	Chooser func(n int) int
	// MetaChooser, when non-nil, resolves metadata-carrying choice points
	// (Kernel.ChooseMeta) and takes precedence over Chooser there. The
	// metadata describes the delivery the choice schedules — link endpoints,
	// packet kind, area, timing — so an exploration driver can compute
	// independence between choice points without replaying the run. Choice
	// points raised through the plain Choose hook still resolve via Chooser.
	MetaChooser func(n int, m ChoiceMeta) int
}

// ChoiceMeta describes the delivery behind one latency choice point: which
// directed link it rides, what packet kind and modelled size, which memory
// area it concerns (1-based; 0 when the packet is not area-addressed), and
// the timing inputs the network will combine with the chosen step. Base is
// the unclamped arrival under choice 0 (send time plus modelled latency);
// Floor is the link's FIFO horizon at send time (the arrival is clamped up
// to it); Quantum is the extra latency added per chosen step. Together they
// let a driver compute the exact arrival of every alternative:
// max(Base + c×Quantum, Floor).
type ChoiceMeta struct {
	Src, Dst int
	Kind     int
	Size     int
	Area     int
	Now      Time
	Base     Time
	Floor    Time
	Quantum  Time
}

// Kernel is the simulation core. Create one with NewKernel, spawn processes,
// then call Run. A Kernel is not safe for concurrent use by real threads;
// concurrency lives inside the simulation.
//
// Scheduling is baton-passing: exactly one goroutine — the driver — executes
// the event loop at any moment. A process that parks becomes the driver
// itself and keeps executing events in place; it performs a goroutine
// hand-off only when an event resumes a *different* process (and none at all
// when the next resumption is its own — the common case for a process
// waiting on its own continuation events). Run's goroutine drives until the
// first process resumption and is handed the baton back when the run ends.
//
// A Kernel can also be one shard of a MultiKernel (multi.go): the same event
// loop then runs one conservative time window at a time, events pushed
// during a window carry provisional keys that the window barrier's serial
// replay rewrites into exact global sequence numbers, and the baton returns
// to the shard runner at every window horizon through the same mainWake
// hand-off that ends a standalone run.
type Kernel struct {
	cfg Config
	now Time
	seq uint64
	// horizon is the exclusive upper bound of the current drive: events at
	// or beyond it stay queued and drive returns the baton. timeMax for a
	// standalone kernel (the horizon never triggers); a window end when the
	// kernel is a MultiKernel shard.
	horizon Time
	// mk, shard link a shard kernel to its MultiKernel (nil/0 standalone).
	mk    *MultiKernel
	shard int
	// winLog is set while a parallel window executes on this shard: pushes
	// take provisional keys and are logged for the barrier replay.
	winLog bool
	// winTag identifies the current window's provisional keys (see provBit).
	// A key whose tag differs from winTag belongs to the previous, still
	// unreplayed window (pipelined replay) and is routed through lateExec.
	winTag uint32
	// windowLogs is the active log buffer of the current window. spare is
	// its double buffer: when a window's replay is pipelined against the
	// next window's execution, the coordinator takes the filled buffer
	// (takeWindow) and the shard logs the next window into the spare.
	windowLogs
	spare   windowLogs
	curRec  execRec
	recOpen bool
	// queue holds all future events, ordered (time, seq), in a hierarchical
	// timing wheel (see wheel.go): O(1) amortised schedule and pop.
	queue wheel
	// nowQ holds events scheduled for the current instant. They would sit at
	// the wheel's front anyway (time now, larger seq than anything queued),
	// so a FIFO ring serves them in O(1) — the fast path every same-time
	// Ready()/Yield()/Defer() continuation takes, skipping the wheel entirely.
	nowQ  Ring[*event]
	free  []*event // recycled event structs
	rng   *rand.Rand
	procs []*Proc
	// mainWake returns the baton to Run's goroutine when a driving process
	// ends the run (queue drained, limit tripped, or Stop). The send is the
	// happens-before edge that lets Run read runErr, runPanic and every
	// process's state without further synchronisation: only the goroutine
	// that ended the run sends, and only Run receives.
	mainWake chan struct{}
	runErr   error
	// runPanic holds a panic value recovered from an event callback; Run
	// re-raises it on its own goroutine, preserving the pre-baton semantics
	// (an event-handler panic always escaped Run) and never blaming the
	// process goroutine that happened to be driving.
	runPanic any
	events   uint64
	stopped  bool
}

// NewKernel returns a kernel with the given configuration.
func NewKernel(cfg Config) *Kernel {
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 50_000_000
	}
	return &Kernel{
		cfg:      cfg,
		horizon:  timeMax,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		mainWake: make(chan struct{}),
	}
}

// provBit marks a provisional event key: provBit | tag<<32 | idx, assigned
// during a parallel window in shard-local push order (idx) and rewritten to
// the true global sequence number by the window barrier's serial replay.
// Provisional keys compare greater than every true key — correct, because
// anything pushed during a window was pushed after everything that already
// carried a true key. Within one shard, keys of the same window compare by
// local push order (idx), and keys of consecutive windows by the window tag
// — both exactly the serial kernel's relative push order. Tags exist for
// pipelined replay, where a window's keys are still provisional while the
// next window pushes; they reset to zero whenever a synchronous barrier has
// resolved every outstanding key, so the 31-bit field cannot wrap while two
// tags coexist.
const (
	provBit    = uint64(1) << 63
	provTagMax = uint32(1)<<31 - 1
)

// provTag and provIdx decompose a provisional key.
func provTag(key uint64) uint32 { return uint32(key>>32) & provTagMax }
func provIdx(key uint64) uint32 { return uint32(key) }

// provKey composes a provisional key.
func provKey(tag uint32, idx int) uint64 {
	return provBit | uint64(tag)<<32 | uint64(uint32(idx))
}

// provState sentinels (non-negative values are execLog indices).
const (
	provPending  = int32(-1)
	provExecuted = int32(-2)
)

// pushEntry is one logged push of a parallel window.
type pushEntry struct {
	e   *event // local push (intra-shard event), nil for deferred sends
	env any    // deferred send envelope (opaque to sim; see EnvelopeFiler)
}

// lateRec records an event that was pushed in the previous window but
// executed in the current one (possible only under pipelined replay, where
// the previous window's logs are still being merged while this window
// runs). idx is the push index in the previous window's pushLog; rec is the
// execLog index of the event's record in *this* window (-1 if the record
// was dropped). The barrier apply resolves rec's key through the previous
// window's buffered resolutions — the event struct itself is recycled by
// then and must not be touched.
type lateRec struct {
	idx uint32
	rec int32
}

// windowLogs is one window's worth of per-shard replay state. A kernel owns
// two: the active buffer (embedded in Kernel) and a spare, swapped by
// takeWindow when the coordinator pipelines a window's replay against the
// next window's execution.
type windowLogs struct {
	// pushLog records every push of the window, in push order; entry i
	// belongs to provisional key provBit|tag<<32|i. An entry is either a
	// local event (e) or a deferred cross-shard/latency-drawing send (env).
	pushLog []pushEntry
	// provState[i] records what became of push i: provPending (its event is
	// still queued; the replay rewrites e.seq in place — or buffers the key
	// when the replay is pipelined), provExecuted (it ran without pushing
	// anything; the replay only advances the key counter), or the execLog
	// index of its record (it ran and pushed/logged, so the replay resolves
	// that record's key).
	provState []int32
	// execLog records, in execution order, every window event that pushed
	// events or logged ordered actions; the barrier replay merges these
	// across shards into the exact serial order.
	execLog []execRec
	// actions are ordered side effects (LogOrdered) of the window, flushed
	// by the barrier replay in serial order.
	actions []func()
	// lateExec records executions of the *previous* window's pushes (see
	// lateRec); only ever non-empty under pipelined replay.
	lateExec []lateRec
	// envs counts deferred envelopes logged this window. The coordinator
	// reads it at every sub-window barrier: a window with envelopes cannot
	// be extended (the arrivals bound the next window's start) nor have its
	// replay pipelined (filing must precede the next window's execution).
	envs int
}

// reset empties the logs for a new window, keeping capacity.
func (w *windowLogs) reset() {
	w.pushLog = w.pushLog[:0]
	w.provState = w.provState[:0]
	w.execLog = w.execLog[:0]
	w.actions = w.actions[:0]
	w.lateExec = w.lateExec[:0]
	w.envs = 0
}

// execRec is one executed window event that produced pushes or ordered
// actions. key is the event's (possibly provisional) sequence key; the
// barrier replay resolves provisional keys before the record reaches its
// shard's merge head.
type execRec struct {
	at             Time
	key            uint64
	pushLo, pushHi int32
	actLo, actHi   int32
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from simulation context (process bodies and event handlers). A shard
// kernel shares its MultiKernel's source, which is only drawable in serial
// phases — drawing it from a parallel window panics, because the draw order
// would depend on the cross-shard interleaving (see MultiKernel.Rand).
func (k *Kernel) Rand() *rand.Rand {
	if k.mk != nil {
		return k.mk.Rand()
	}
	return k.rng
}

// Choose resolves one explicit choice point with n alternatives (n ≥ 1)
// and returns the chosen index in [0, n). Without a configured Chooser it
// returns 0 — deterministically, without touching the RNG — so the hook is
// free for every run that does not explore. Exploration drivers (see
// internal/mcheck) install a Chooser that replays a recorded prefix and
// extends it depth-first, turning the simulation into one branch of a
// systematically enumerated schedule tree.
func (k *Kernel) Choose(n int) int {
	if n <= 1 || k.cfg.Chooser == nil {
		return 0
	}
	c := k.cfg.Chooser(n)
	if c < 0 || c >= n {
		panic(fmt.Sprintf("sim: Chooser returned %d for %d alternatives", c, n))
	}
	return c
}

// ChooseMeta resolves one metadata-carrying choice point with n
// alternatives. With a MetaChooser configured it receives the delivery
// metadata alongside the arity; otherwise the call degrades to Choose(n),
// so drivers that only install the plain Chooser keep working unchanged.
func (k *Kernel) ChooseMeta(n int, m ChoiceMeta) int {
	if k.cfg.MetaChooser == nil {
		return k.Choose(n)
	}
	if n <= 1 {
		return 0
	}
	c := k.cfg.MetaChooser(n, m)
	if c < 0 || c >= n {
		panic(fmt.Sprintf("sim: MetaChooser returned %d for %d alternatives", c, n))
	}
	return c
}

// InWindow reports whether the kernel is currently executing a parallel
// window (pushes take provisional keys; cross-shard effects must be logged,
// and the shared RNG is undrawable).
func (k *Kernel) InWindow() bool { return k.winLog }

// Shard returns the kernel's shard index within its MultiKernel (0 for a
// standalone kernel).
func (k *Kernel) Shard() int { return k.shard }

// Multi returns the owning MultiKernel, nil for a standalone kernel.
func (k *Kernel) Multi() *MultiKernel { return k.mk }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// Schedule runs fn after delay d of virtual time (d may be zero; negative
// delays are clamped to zero). It may be called from process bodies, event
// handlers, or before Run; fn itself runs in event context.
//
//dsmlint:eventspawn
func (k *Kernel) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// At runs fn at absolute virtual time t (clamped to now); fn runs in event
// context.
//
//dsmlint:eventspawn
func (k *Kernel) At(t Time, fn func()) {
	k.push(t, fn, nil)
}

// Defer schedules fn at the current instant, behind everything already
// queued for it — the continuation-scheduling primitive. A deferred
// continuation occupies exactly the (time, seq) slot a Proc.Ready() wakeup
// pushed at the same point would, so an event-driven state machine (e.g. the
// RDMA initiator's continuation chain) interleaves with the rest of the
// simulation identically to the goroutine-parked code it replaces — without
// scheduling, waking, or parking any goroutine.
//
// Defer may only be called from event context (a delivery or event
// callback): the slot it files into is the *current event's* position in
// the global order, which only exists while an event is executing.
// dsmlint enforces this statically.
//
//dsmlint:eventctx
func (k *Kernel) Defer(fn func()) {
	k.push(k.now, fn, nil)
}

// atResume schedules p's resumption at absolute time t without allocating a
// closure.
func (k *Kernel) atResume(t Time, p *Proc) {
	k.push(t, nil, p)
}

// push enqueues an event: same-instant events go to the FIFO now-queue,
// future events to the timing wheel. Execution order is identical to a
// single (time, seq) priority queue — now-queue entries carry larger
// sequence numbers than any same-time event already queued, and the driver
// picks the smaller of the two fronts.
//
// Key assignment: a standalone kernel increments its own counter. A shard
// kernel takes true global keys from the MultiKernel's sequencer while in a
// serial phase (setup, barrier filing), and provisional shard-local keys —
// logged for the barrier replay — while a parallel window executes.
func (k *Kernel) push(t Time, fn func(), p *Proc) {
	if t < k.now {
		t = k.now
	}
	var key uint64
	if k.winLog {
		key = provKey(k.winTag, len(k.pushLog))
	} else if k.mk != nil {
		key = k.mk.nextKey()
	} else {
		k.seq++
		key = k.seq
	}
	e := k.newEvent(t, key, fn, p)
	if k.winLog {
		k.pushLog = append(k.pushLog, pushEntry{e: e})
		k.provState = append(k.provState, provPending)
	}
	if t == k.now {
		k.nowQ.PushBack(e)
		return
	}
	k.queue.push(e)
}

// PushKeyed schedules fn at absolute time t with an explicit, already
// assigned global key. It is the barrier replay's filing primitive for
// cross-shard and latency-deferred deliveries; serial phases only. fn runs
// in event context.
//
//dsmlint:eventspawn
func (k *Kernel) PushKeyed(t Time, key uint64, fn func()) {
	if k.winLog {
		panic("sim: PushKeyed during a parallel window")
	}
	if t < k.now {
		t = k.now
	}
	e := k.newEvent(t, key, fn, nil)
	if t == k.now {
		k.nowQ.PushBack(e)
		return
	}
	k.queue.push(e)
}

// LogEnvelope records a deferred send in the current window's push log: the
// envelope occupies exactly the key slot the serial kernel's delivery push
// occupied, and the barrier replay hands it (with its resolved key) to the
// registered EnvelopeFiler. env is opaque to the kernel.
func (k *Kernel) LogEnvelope(env any) {
	if !k.winLog {
		panic("sim: LogEnvelope outside a parallel window")
	}
	k.pushLog = append(k.pushLog, pushEntry{env: env})
	k.provState = append(k.provState, provPending)
	k.envs++
}

// LogOrdered runs fn as an ordered side effect of the current event. On a
// standalone kernel (or a shard in a serial phase) fn runs immediately;
// during a parallel window it is deferred to the window barrier, where the
// serial replay runs it at the executing event's exact position in the
// global order. Use it for effects on state shared across shards (e.g.
// appending to a global report collector) that must observe the serial
// kernel's order.
//
// LogOrdered may only be called from event context: the position it logs
// under is the currently executing event's, and outside one there is no
// such position. dsmlint enforces this statically.
//
//dsmlint:eventctx
func (k *Kernel) LogOrdered(fn func()) {
	if !k.winLog {
		fn()
		return
	}
	k.actions = append(k.actions, fn)
}

// newEvent takes an event from the pool (or allocates one) and fills it.
func (k *Kernel) newEvent(t Time, key uint64, fn func(), p *Proc) *event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	e.at, e.seq, e.fn, e.proc = t, key, fn, p
	return e
}

// recycle returns an executed event to the pool, dropping its references.
func (k *Kernel) recycle(e *event) {
	e.fn, e.proc = nil, nil
	k.free = append(k.free, e)
}

// Stop aborts the run after the current event completes. Parked processes
// are left suspended; Run reports them.
func (k *Kernel) Stop() { k.stopped = true }

// ProcState describes where a process is in its lifecycle.
type ProcState int

// Process lifecycle states.
const (
	ProcReady ProcState = iota
	ProcRunning
	ProcParked
	ProcDone
)

// Proc is a simulated process. The function passed to Spawn receives its
// Proc and uses it for all blocking interactions with the simulation.
type Proc struct {
	ID    int
	Name  string
	k     *Kernel
	wake  chan struct{}
	state ProcState
	// blockReason is a human-readable description of what the process is
	// waiting for; surfaced by deadlock reports.
	blockReason string
	err         error
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Err returns the process's terminal error (panic converted to error), if any.
func (p *Proc) Err() error { return p.err }

// BlockReason returns what a parked process is waiting on (the label
// deadlock reports print; see Park and Relabel), or "" when it is not
// parked. Only meaningful when read from inside the simulation — a kernel
// event or another process.
func (p *Proc) BlockReason() string {
	if p.state != ProcParked {
		return ""
	}
	return p.blockReason
}

// Spawn creates a process that starts executing fn at the current virtual
// time. It may be called before Run or from inside the simulation.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{ID: len(k.procs), Name: name, k: k, wake: make(chan struct{})}
	k.procs = append(k.procs, p)
	if k.mk != nil && !k.winLog {
		// Serial-phase spawns record global order for error precedence.
		// (In-window spawns stay shard-local; their errors surface in shard
		// order — acceptable, and dsm-level runs never spawn mid-window.)
		k.mk.procs = append(k.mk.procs, p)
	}
	go func() {
		<-p.wake // wait to be scheduled for the first time
		func() {
			defer func() {
				if r := recover(); r != nil {
					p.err = fmt.Errorf("sim: process %s panicked: %v", p.Name, r)
				}
			}()
			fn(p)
		}()
		p.state = ProcDone
		// A finished process holds the baton; keep executing events until it
		// moves to another goroutine, then let this one exit.
		if k.drive(p) == driveEnd {
			k.mainWake <- struct{}{}
		}
	}()
	k.atResume(k.now, p)
	return p
}

// driveResult says how a drive call ended.
type driveResult int

const (
	// driveSelf: an event resumed the driving process itself — it keeps
	// running with zero goroutine hand-offs.
	driveSelf driveResult = iota
	// driveHandoff: the baton (and the loop) moved to another process's
	// goroutine; the caller just waits for its own wakeup.
	driveHandoff
	// driveEnd: the run is over (queue drained, limit, Stop, or an event
	// callback panicked). Only the goroutine that observed the end gets
	// this result, and it must return the baton to Run over mainWake.
	driveEnd
)

// drive executes the event loop on the calling goroutine until an event
// resumes self (driveSelf — zero goroutine hand-offs: the park/continue
// round-trip through channels that the old kernel paid on every wakeup
// disappears), an event resumes another process (driveHandoff — the baton
// moved), or the run is over (driveEnd). It must only be called by the
// goroutine that currently holds the baton, and no kernel field it touches
// is accessed concurrently: after a hand-off the caller only waits on its
// own wake channel.
func (k *Kernel) drive(self *Proc) driveResult {
	for {
		if k.stopped || (k.nowQ.Len() == 0 && k.queue.len() == 0) {
			k.endRun(nil)
			return driveEnd
		}
		// The next event is the (time, seq)-least of the wheel front and
		// the now-queue front. Every now-queue entry is at the current
		// instant; wheel entries at the same instant were scheduled earlier
		// (smaller seq) unless they were filed for this time *before* it
		// arrived. The peek is bounded by now when the now-queue can win,
		// so the wheel cursor never passes the kernel clock while events
		// can still be pushed behind it.
		var e *event
		if k.nowQ.Len() == 0 {
			// The horizon is exclusive: an event at or beyond it stays
			// queued and the baton returns (window boundary). Standalone
			// kernels have horizon timeMax, which no event can reach. The
			// bounded peek also keeps the wheel cursor below the horizon, so
			// the barrier can still file deliveries at any later instant.
			if we := k.queue.peekWithin(k.horizon - 1); we == nil {
				k.endRun(nil)
				return driveEnd
			}
			e = k.queue.take()
		} else if we := k.queue.peekWithin(k.now); we != nil && we.seq < k.nowQ.Front().seq {
			e = k.queue.take()
		} else {
			e = k.nowQ.PopFront()
		}
		k.now = e.at
		if k.winLog {
			k.beginRec(e)
		}
		if k.cfg.MaxTime > 0 && k.now > k.cfg.MaxTime {
			k.endRun(&LimitError{What: "time", Events: k.events, Time: k.now})
			return driveEnd
		}
		k.events++
		if k.events > k.cfg.MaxEvents {
			k.endRun(&LimitError{What: "event", Events: k.events, Time: k.now})
			return driveEnd
		}
		fn, p := e.fn, e.proc
		k.recycle(e)
		if p == nil {
			if !k.callEvent(fn) {
				k.endRun(nil)
				return driveEnd
			}
			continue
		}
		if p.state == ProcDone {
			continue // stale wakeup for a finished process
		}
		if p == self {
			return driveSelf
		}
		p.state = ProcRunning
		p.wake <- struct{}{}
		return driveHandoff
	}
}

// callEvent runs one event callback, catching a panic at the event
// boundary so it cannot unwind into (and be blamed on) whichever process
// goroutine happens to be driving. It reports whether the callback
// completed; on false the recovered value is in runPanic and Run re-raises
// it on its own goroutine — the behaviour event-handler panics always had.
func (k *Kernel) callEvent(fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			k.runPanic = r
		}
	}()
	fn()
	return true
}

// endRun records the run-ending error, if any; the first error wins. Only
// the goroutine holding the baton calls it, exactly once per run (once per
// window boundary for a shard kernel).
func (k *Kernel) endRun(err error) {
	if err != nil && k.runErr == nil {
		k.runErr = err
	}
}

// beginRec closes the previous event's execution record and opens one for e.
// Only called while winLog is set; the records drive the barrier replay.
func (k *Kernel) beginRec(e *event) {
	k.closeRec()
	k.curRec = execRec{at: e.at, key: e.seq, pushLo: int32(len(k.pushLog)), actLo: int32(len(k.actions))}
	k.recOpen = true
}

// closeRec finalises the open execution record. Records with no pushes and
// no ordered actions are dropped — they contribute nothing to the replay —
// but their provisional key is marked executed so the replay knows not to
// rewrite a recycled event struct through a stale pointer.
func (k *Kernel) closeRec() {
	if !k.recOpen {
		return
	}
	k.recOpen = false
	k.curRec.pushHi = int32(len(k.pushLog))
	k.curRec.actHi = int32(len(k.actions))
	kept := k.curRec.pushHi > k.curRec.pushLo || k.curRec.actHi > k.curRec.actLo
	if k.curRec.key&provBit != 0 {
		idx := provIdx(k.curRec.key)
		if provTag(k.curRec.key) != k.winTag {
			// The event was pushed in the previous window, whose replay is
			// pipelined against this one: its provState lives in the taken
			// buffer the coordinator is merging right now. Route through
			// lateExec so the barrier apply resolves this record's key from
			// the buffered resolutions (and skips the recycled struct).
			rec := int32(-1)
			if kept {
				rec = int32(len(k.execLog))
			}
			k.lateExec = append(k.lateExec, lateRec{idx: idx, rec: rec})
		} else if kept {
			k.provState[idx] = int32(len(k.execLog))
		} else {
			k.provState[idx] = provExecuted
		}
	}
	if kept {
		k.execLog = append(k.execLog, k.curRec)
	}
}

// beginWindow prepares the shard for one parallel window ending (exclusive)
// at horizon: provisional keys under the given window tag, push/action
// logging, and a cleared wheel peek cache (the barrier may have rewritten
// queued events' keys in place).
func (k *Kernel) beginWindow(horizon Time, tag uint32) {
	k.horizon = horizon
	k.winTag = tag
	k.winLog = true
	k.windowLogs.reset()
	k.queue.invalidatePeek()
}

// extendWindow moves an already-open window's horizon forward for the next
// sub-round of an adaptively extended window. The logs keep accumulating
// and the peek cache stays valid: no barrier ran in between, so no queued
// key changed and nothing was filed.
func (k *Kernel) extendWindow(horizon Time) {
	k.horizon = horizon
}

// endWindow closes window logging at the end of a (possibly extended)
// window. Coordinator context, shard quiescent; the replay's envelope
// filing (PushKeyed) requires winLog off.
func (k *Kernel) endWindow() {
	k.winLog = false
}

// takeWindow hands the just-finished window's log buffer to the coordinator
// for a pipelined replay and installs the spare for the next window. The
// caller returns the buffer via returnWindow once applied.
func (k *Kernel) takeWindow() windowLogs {
	out := k.windowLogs
	k.windowLogs = k.spare
	k.windowLogs.reset()
	k.spare = windowLogs{}
	return out
}

// returnWindow gives an applied log buffer back as the spare.
func (k *Kernel) returnWindow(w windowLogs) {
	k.spare = w
}

// runWindow executes the shard's events below the horizon set by
// beginWindow/extendWindow and returns with the sub-round's records
// closed. Called by the shard runner goroutine (or the coordinator inline);
// the baton travels through process goroutines as usual and comes back
// over mainWake at the horizon. Logging stays open across sub-rounds —
// the coordinator's endWindow closes it.
func (k *Kernel) runWindow() {
	if k.drive(nil) != driveEnd {
		<-k.mainWake
	}
	k.closeRec()
}

// nextEventBound returns a lower bound on the virtual time of the shard's
// earliest pending event, without moving the wheel cursor — the cursor must
// never pass a window horizon, or a later barrier filing behind it would be
// misfiled (cursor-safety invariant). The bound is exact for now-queue and
// level-0 events; for events still parked in coarse buckets it is the
// bucket's start time, which the next window's bounded peek refines by
// cascading (so repeated empty windows always make progress).
func (k *Kernel) nextEventBound() (Time, bool) {
	if k.nowQ.Len() > 0 {
		return k.now, true
	}
	if k.queue.len() == 0 {
		return 0, false
	}
	lvl, start := k.queue.next()
	if lvl < 0 {
		return 0, false
	}
	if start < k.queue.cur {
		// A coarse bucket's nominal start can predate the cursor; no event
		// in it does.
		start = k.queue.cur
	}
	return start, true
}

// Park suspends the calling process until something calls Ready on it.
// reason is shown in deadlock reports. It must only be called from the
// process's own goroutine.
//
// The parking process does not hand control to a scheduler goroutine: it
// becomes the driver and executes events in place until its own resumption
// surfaces (no goroutine switch at all) or the baton moves to another
// process (one direct switch).
func (p *Proc) Park(reason string) {
	p.state = ProcParked
	p.blockReason = reason
	k := p.k
	switch k.drive(p) {
	case driveSelf:
		// Resumed in place; fall through.
	case driveEnd:
		// The run is over with this process still parked (deadlock, limit,
		// or Stop); return the baton to Run and stay suspended — Run
		// reports the process via its recorded block reason.
		k.mainWake <- struct{}{}
		<-p.wake
	case driveHandoff:
		<-p.wake
	}
	p.state = ProcRunning
	p.blockReason = ""
}

// Relabel replaces the parked calling-context process's block reason — used
// by event-driven operations that advance through several phases while their
// process stays parked, so a deadlock report names the phase actually stuck
// rather than the one the process first parked on. No-op unless p is parked.
func (p *Proc) Relabel(reason string) {
	if p.state == ProcParked {
		p.blockReason = reason
	}
}

// Await parks p until *done is true, re-parking on stray wakeups. It is the
// join point of a continuation chain: an event-driven operation sets *done
// and calls Ready exactly once, and the process sleeps through anything
// else. reason labels the park in deadlock reports (see Relabel for
// updating it as a multi-phase operation advances).
func (p *Proc) Await(done *bool, reason string) {
	for !*done {
		p.Park(reason)
	}
}

// Ready schedules p to resume at the current virtual time. Safe to call
// from any simulation context (another process or an event handler);
// resumption always happens through the event queue, preserving determinism.
// Same-time wakeups take the kernel's now-queue fast path: no heap
// operations and no allocation.
func (p *Proc) Ready() {
	p.k.atResume(p.k.now, p)
}

// Sleep suspends the calling process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		// Still yield through the event queue so equal-time events interleave
		// deterministically.
		d = 0
	}
	p.k.atResume(p.k.now+d, p)
	// A sleeping process always has its wakeup queued, so the reason can
	// never surface in a deadlock report; a static label avoids formatting
	// a fresh string per sleep.
	p.Park("sleep")
}

// Yield gives other ready processes and events at the current time a chance
// to run.
func (p *Proc) Yield() { p.Sleep(0) }

// DeadlockError is returned by Run when the event queue drains while
// processes are still parked.
type DeadlockError struct {
	Time    Time
	Blocked []string // "name: reason" for each parked process
}

// Error implements the error interface.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v; blocked: %s", e.Time, strings.Join(e.Blocked, "; "))
}

// LimitError is returned when MaxEvents or MaxTime is exceeded.
type LimitError struct {
	What   string
	Events uint64
	Time   Time
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: %s limit exceeded at %v after %d events", e.What, e.Time, e.Events)
}

// Run executes the simulation until the event queue is empty, a limit trips,
// or Stop is called. It returns the first process error (panic) encountered,
// a DeadlockError if processes remain parked, or nil.
func (k *Kernel) Run() error {
	// Run's goroutine drives until the first process resumption; from then
	// on the baton travels between process goroutines and comes back over
	// mainWake when the run is over (the receive is the synchronisation
	// point for everything read below).
	if k.drive(nil) != driveEnd {
		<-k.mainWake
	}
	if k.runPanic != nil {
		panic(k.runPanic)
	}
	if k.runErr != nil {
		return k.runErr
	}
	for _, p := range k.procs {
		if p.err != nil {
			return p.err
		}
	}
	if k.stopped {
		return nil
	}
	var blocked []string
	for _, p := range k.procs {
		if p.state == ProcParked {
			blocked = append(blocked, fmt.Sprintf("%s: %s", p.Name, p.blockReason))
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}

// QueueFingerprint folds the kernel's future-event profile into h: for every
// queued event, a commutative mix of its time distance from now and the
// process it resumes (0 for bare callbacks). Exploration drivers include it
// in state fingerprints so in-progress timed work — occupancy windows,
// sleeps, watchdogs — distinguishes otherwise-identical memory states. The
// per-event terms are folded by sum and xor, so neither the wheel's bucket
// layout nor insertion order shows through. Same-instant sequence order is
// not captured (event callbacks have no hashable identity); drivers that
// memoise on this fingerprint must validate against unreduced exploration,
// as internal/mcheck's equivalence gates do.
func (k *Kernel) QueueFingerprint(h uint64) uint64 {
	const prime = 1099511628211
	var sum, xor, cnt uint64
	add := func(e *event) {
		p := uint64(0)
		if e.proc != nil {
			p = uint64(e.proc.ID) + 1
		}
		m := (uint64(e.at-k.now)*0x9e3779b97f4a7c15 ^ p) * prime
		sum += m
		xor ^= m
		cnt++
	}
	k.queue.each(add)
	for i := 0; i < k.nowQ.Len(); i++ {
		add(k.nowQ.At(i))
	}
	h = (h ^ sum) * prime
	h = (h ^ xor) * prime
	h = (h ^ cnt) * prime
	return h
}
