package sim

import (
	"fmt"
	"testing"
)

// toyNet is a minimal cross-node transport for exercising the multi-kernel:
// fixed latency, per-link FIFO, deliveries executed as fn events at the
// destination node's kernel — the same shape internal/network implements.
type toyNet struct {
	single  *Kernel
	mk      *MultiKernel
	shardOf []int
	lat     Time
	handler func(dst int, hop int)
	// defLat, when set, simulates a latency model that must defer every
	// cross-node send to the barrier (as jitter does): the delay is drawn
	// from the shared RNG at filing time.
	defLat bool
}

type toyEnv struct {
	sendAt   Time
	src, dst int
	hop      int
}

func (t *toyNet) kernelFor(node int) *Kernel {
	if t.mk != nil {
		return t.mk.Shard(t.shardOf[node])
	}
	return t.single
}

func (t *toyNet) delay() Time {
	if !t.defLat {
		return t.lat
	}
	// Draw order must match the serial kernel's send order bit-for-bit.
	return t.lat + Time(t.kernelRand().Intn(64))
}

func (t *toyNet) kernelRand() interface{ Intn(int) int } {
	if t.mk != nil {
		return t.mk.Rand()
	}
	return t.single.Rand()
}

// send transmits a hop from src to dst at the current time of src's kernel.
func (t *toyNet) send(src, dst, hop int) {
	k := t.kernelFor(src)
	sameShard := t.mk == nil || t.shardOf[src] == t.shardOf[dst]
	if t.mk != nil && k.winLog && (!sameShard || t.defLat) {
		k.LogEnvelope(&toyEnv{sendAt: k.Now(), src: src, dst: dst, hop: hop})
		return
	}
	d := t.delay()
	dstc, hopc := dst, hop
	t.kernelFor(src).At(k.Now()+d, func() { t.handler(dstc, hopc) })
}

func (t *toyNet) file(env any, key uint64) {
	e := env.(*toyEnv)
	d := t.delay()
	t.kernelFor(e.dst).PushKeyed(e.sendAt+d, key, func() { t.handler(e.dst, e.hop) })
}

// ringTrace runs a multi-token ring simulation — every node starts a token,
// tokens hop rounds times with occasional same-instant collisions at shared
// destinations — and returns the serially ordered trace plus run totals.
func ringTrace(t *testing.T, nodes, shards, rounds int, deferred bool) (trace []string, events uint64, end Time) {
	t.Helper()
	cfg := Config{Seed: 42}
	net := &toyNet{lat: 100, defLat: deferred}
	var k *Kernel
	var mk *MultiKernel
	if shards <= 1 {
		k = NewKernel(cfg)
		net.single = k
	} else {
		mk = NewMultiKernel(cfg, shards, net.lat)
		net.mk = mk
		net.shardOf = PartitionNodes(nodes, shards, PartitionBlocks, 1)
		mk.SetEnvelopeFiler(net.file)
	}
	log := func(node, hop int, at Time) func() {
		return func() { trace = append(trace, fmt.Sprintf("t=%d node=%d hop=%d", at, node, hop)) }
	}
	net.handler = func(dst, hop int) {
		kd := net.kernelFor(dst)
		kd.LogOrdered(log(dst, hop, kd.Now()))
		if hop < rounds*nodes {
			// Odd hops also fan a burst to node 0, forcing same-instant
			// cross-shard arrival collisions whose order must match the
			// serial kernel's push order exactly.
			if hop%3 == 1 && dst != 0 {
				net.send(dst, 0, hop)
			} else {
				net.send(dst, (dst+1)%nodes, hop+1)
			}
		}
	}
	for i := 0; i < nodes; i++ {
		i := i
		net.kernelFor(i).At(0, func() { net.send(i, (i+1)%nodes, 1) })
	}
	if mk != nil {
		if err := mk.Run(); err != nil {
			t.Fatalf("multi run: %v", err)
		}
		return trace, mk.Events(), mk.Now()
	}
	if err := k.Run(); err != nil {
		t.Fatalf("single run: %v", err)
	}
	return trace, k.Events(), k.Now()
}

// TestMultiKernelTraceEquivalence is the sim-level differential: the fully
// ordered event trace, the event count and the end time of a cross-shard
// message ring must be bit-identical between a standalone kernel and a
// multi-kernel at every shard count — with fixed latencies (immediate
// intra-shard filing) and with barrier-deferred randomised latencies (RNG
// replayed in serial order).
func TestMultiKernelTraceEquivalence(t *testing.T) {
	const nodes, rounds = 12, 6
	for _, deferred := range []bool{false, true} {
		name := "fixed"
		if deferred {
			name = "deferred-rng"
		}
		t.Run(name, func(t *testing.T) {
			want, wantEv, wantEnd := ringTrace(t, nodes, 1, rounds, deferred)
			if len(want) == 0 {
				t.Fatal("empty reference trace")
			}
			for _, shards := range []int{2, 3, 4, 8} {
				got, gotEv, gotEnd := ringTrace(t, nodes, shards, rounds, deferred)
				if gotEv != wantEv || gotEnd != wantEnd {
					t.Fatalf("shards=%d: events/end diverged: got %d/%d want %d/%d",
						shards, gotEv, gotEnd, wantEv, wantEnd)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d: trace length %d, want %d", shards, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d: trace[%d] = %q, want %q", shards, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// blockRun drives a communication-local workload — rings of `group` nodes
// that never talk across ring boundaries, with the blocks partition keeping
// each ring on one shard — so every window is envelope-free and the
// adaptive extension / pipelined replay machinery has maximal room to fire.
// It returns per-node hop counts, run totals, and the window stats.
func blockRun(t *testing.T, nodes, shards, group, rounds int, tune func(mk *MultiKernel)) (counts []int, events uint64, end Time, stats MultiKernelStats) {
	t.Helper()
	net := &toyNet{lat: 100}
	counts = make([]int, nodes)
	var k *Kernel
	var mk *MultiKernel
	if shards <= 1 {
		k = NewKernel(Config{Seed: 9})
		net.single = k
	} else {
		mk = NewMultiKernel(Config{Seed: 9}, shards, net.lat)
		net.mk = mk
		net.shardOf = PartitionNodes(nodes, shards, PartitionBlocks, group)
		mk.SetEnvelopeFiler(net.file)
		if tune != nil {
			tune(mk)
		}
	}
	next := func(id int) int { return (id/group)*group + (id%group+1)%group }
	net.handler = func(dst, hop int) {
		counts[dst]++
		if hop < rounds {
			net.send(dst, next(dst), hop+1)
		}
	}
	for i := 0; i < nodes; i++ {
		i := i
		net.kernelFor(i).At(0, func() { net.send(i, next(i), 1) })
	}
	if mk != nil {
		if err := mk.Run(); err != nil {
			t.Fatalf("multi run: %v", err)
		}
		return counts, mk.Events(), mk.Now(), mk.Stats()
	}
	if err := k.Run(); err != nil {
		t.Fatalf("single run: %v", err)
	}
	return counts, k.Events(), k.Now(), MultiKernelStats{}
}

// TestMultiKernelAdaptiveWindows proves the window optimisations fire on a
// communication-local workload and change nothing observable: counts, event
// totals and end times stay bit-identical to the serial kernel across every
// barrier mode × extension × pipelining combination, windows grow to many
// sub-rounds (Extensions > 0), and quiet-window replays pipeline when
// enabled — while SetAdaptiveWindow(1) provably restores one-lookahead
// windows and SetPipelinedReplay(-1) keeps every replay synchronous.
func TestMultiKernelAdaptiveWindows(t *testing.T) {
	const nodes, group, rounds = 16, 4, 200
	wantCounts, wantEv, wantEnd, _ := blockRun(t, nodes, 1, group, rounds, nil)
	modes := []struct {
		name     string
		barrier  string // DSMRACE_MK_BARRIER for the construction
		tune     func(mk *MultiKernel)
		extend   bool // expect Extensions > 0
		pipeline bool // expect PipelinedReplays > 0
	}{
		{"inline-default", "inline", nil, true, false},
		{"inline-forced-pipe", "inline", func(mk *MultiKernel) { mk.SetPipelinedReplay(1) }, true, true},
		{"spin-auto", "spin", nil, true, true},
		{"chan-auto", "chan", nil, true, true},
		{"spin-pipe-off", "spin", func(mk *MultiKernel) { mk.SetPipelinedReplay(-1) }, true, false},
		{"spin-no-extension", "spin", func(mk *MultiKernel) { mk.SetAdaptiveWindow(1) }, false, true},
	}
	for _, mode := range modes {
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", mode.name, shards), func(t *testing.T) {
				t.Setenv("DSMRACE_MK_BARRIER", mode.barrier)
				counts, ev, end, stats := blockRun(t, nodes, shards, group, rounds, mode.tune)
				if ev != wantEv || end != wantEnd {
					t.Fatalf("events/end diverged: got %d/%d want %d/%d", ev, end, wantEv, wantEnd)
				}
				for i := range wantCounts {
					if counts[i] != wantCounts[i] {
						t.Fatalf("node %d count %d, want %d", i, counts[i], wantCounts[i])
					}
				}
				if stats.Windows == 0 || stats.SubWindows < stats.Windows {
					t.Fatalf("implausible stats: %+v", stats)
				}
				if got := stats.Extensions > 0; got != mode.extend {
					t.Fatalf("Extensions = %d, want >0 == %v (stats %+v)", stats.Extensions, mode.extend, stats)
				}
				if got := stats.PipelinedReplays > 0; got != mode.pipeline {
					t.Fatalf("PipelinedReplays = %d, want >0 == %v (stats %+v)", stats.PipelinedReplays, mode.pipeline, stats)
				}
				if mode.extend && stats.Windows >= stats.SubWindows {
					t.Fatalf("extension fired but windows (%d) not fewer than sub-rounds (%d)", stats.Windows, stats.SubWindows)
				}
			})
		}
	}
}

// TestMultiKernelProcsAcrossShards runs parked processes on every shard,
// exchanging through the toy net, and checks deadlock-free completion and
// bit-identical end state with the single kernel.
func TestMultiKernelProcsAcrossShards(t *testing.T) {
	const nodes, shards = 8, 4
	run := func(shards int) (Time, uint64, []int) {
		net := &toyNet{lat: 50}
		counts := make([]int, nodes)
		var mk *MultiKernel
		var k *Kernel
		if shards > 1 {
			mk = NewMultiKernel(Config{Seed: 7}, shards, net.lat)
			net.mk = mk
			net.shardOf = PartitionNodes(nodes, shards, PartitionRoundRobin, 0)
			mk.SetEnvelopeFiler(net.file)
		} else {
			k = NewKernel(Config{Seed: 7})
			net.single = k
		}
		inbox := make([]int, nodes)
		waiting := make([]*Proc, nodes)
		net.handler = func(dst, hop int) {
			inbox[dst]++
			if waiting[dst] != nil {
				waiting[dst].Ready()
			}
		}
		for i := 0; i < nodes; i++ {
			i := i
			net.kernelFor(i).Spawn(fmt.Sprintf("P%d", i), func(p *Proc) {
				for r := 0; r < 10; r++ {
					net.send(i, (i+1)%nodes, r)
					waiting[i] = p
					for inbox[i] <= r {
						p.Park("await token")
					}
					waiting[i] = nil
					counts[i]++
				}
			})
		}
		if mk != nil {
			if err := mk.Run(); err != nil {
				t.Fatalf("multi: %v", err)
			}
			return mk.Now(), mk.Events(), counts
		}
		if err := k.Run(); err != nil {
			t.Fatalf("single: %v", err)
		}
		return k.Now(), k.Events(), counts
	}
	wantEnd, wantEv, wantCounts := run(1)
	gotEnd, gotEv, gotCounts := run(shards)
	if gotEnd != wantEnd || gotEv != wantEv {
		t.Fatalf("end/events diverged: got %d/%d want %d/%d", gotEnd, gotEv, wantEnd, wantEv)
	}
	for i := range wantCounts {
		if gotCounts[i] != wantCounts[i] {
			t.Fatalf("node %d completed %d rounds, want %d", i, gotCounts[i], wantCounts[i])
		}
	}
}

// TestMultiKernelRandGuard pins the capability boundary: drawing the shared
// RNG from inside a parallel window must panic with a serial-only hint
// rather than silently produce an interleaving-dependent stream.
func TestMultiKernelRandGuard(t *testing.T) {
	mk := NewMultiKernel(Config{Seed: 1}, 2, 100)
	tripped := false
	mk.Shard(0).At(10, func() {
		defer func() {
			if r := recover(); r != nil {
				tripped = true
				panic(r) // re-raise: the run must still fail loudly
			}
		}()
		mk.Shard(0).Rand().Intn(4)
	})
	func() {
		defer func() { recover() }()
		mk.Run()
	}()
	if !tripped {
		t.Fatal("shared RNG draw inside a parallel window did not panic")
	}
}

// TestPartitionNodesTotal is the partition property test: every policy, for
// a grid of (k, n, group), must produce a total partition — each node in
// exactly one shard in range — with every shard non-empty when k <= n, and
// the blocks policy must keep whole affinity groups inside one shard
// whenever a shard's block is at least one group wide.
func TestPartitionNodesTotal(t *testing.T) {
	for _, policy := range []PartitionPolicy{PartitionRoundRobin, PartitionBlocks} {
		for _, n := range []int{1, 2, 7, 8, 64, 65, 512} {
			for _, k := range []int{1, 2, 3, 4, 8, 16} {
				for _, group := range []int{0, 1, 4, 8, 13} {
					shardOf := PartitionNodes(n, k, policy, group)
					if len(shardOf) != n {
						t.Fatalf("%v n=%d k=%d: %d assignments", policy, n, k, len(shardOf))
					}
					eff := k
					if eff > n {
						eff = n
					}
					seen := make([]int, eff)
					for node, s := range shardOf {
						if s < 0 || s >= eff {
							t.Fatalf("%v n=%d k=%d: node %d -> shard %d out of range", policy, n, k, node, s)
						}
						seen[s]++
					}
					for s, c := range seen {
						if c == 0 {
							t.Fatalf("%v n=%d k=%d group=%d: shard %d empty", policy, n, k, group, s)
						}
					}
					// Affinity: whenever every shard can hold at least one
					// whole group, no group may straddle a shard boundary.
					if policy == PartitionBlocks && group > 1 && eff*group <= n {
						for g := 0; g*group+group <= n; g++ {
							first := shardOf[g*group]
							for i := g * group; i < (g+1)*group; i++ {
								if shardOf[i] != first {
									t.Fatalf("blocks n=%d k=%d group=%d: group %d split across shards %d and %d",
										n, k, group, g, first, shardOf[i])
								}
							}
						}
					}
				}
			}
		}
	}
}
