package sim

import "testing"

func TestRingFIFOAcrossWraps(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	// Interleave pushes and pops so head wraps the backing array repeatedly.
	for round := 0; round < 50; round++ {
		for i := 0; i < 3; i++ {
			r.PushBack(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := r.PopFront(); got != want {
				t.Fatalf("PopFront = %d, want %d", got, want)
			}
			want++
		}
	}
	for r.Len() > 0 {
		if got := r.PopFront(); got != want {
			t.Fatalf("drain PopFront = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, pushed %d", want, next)
	}
}

func TestRingRemoveFunc(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 6; i++ {
		r.PushBack(i)
	}
	r.PopFront()
	r.PopFront() // head = 2, contents 2..5
	r.PushBack(6)
	r.PushBack(7) // wrapped; contents 2..7

	if !r.RemoveFunc(func(v int) bool { return v == 4 }) {
		t.Fatal("RemoveFunc did not find 4")
	}
	if r.RemoveFunc(func(v int) bool { return v == 99 }) {
		t.Fatal("RemoveFunc removed a missing element")
	}
	want := []int{2, 3, 5, 6, 7}
	if r.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(want))
	}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d (order not preserved)", i, got, w)
		}
	}
}

func TestRingGrowPreservesOrder(t *testing.T) {
	var r Ring[int]
	r.PushBack(0)
	r.PushBack(1)
	r.PopFront() // head off zero before growth
	for i := 2; i < 40; i++ {
		r.PushBack(i)
	}
	for want := 1; want < 40; want++ {
		if got := r.PopFront(); got != want {
			t.Fatalf("PopFront = %d, want %d", got, want)
		}
	}
}
