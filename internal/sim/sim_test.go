package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	if err := k.Run(); err != nil {
		t.Fatalf("empty run: %v", err)
	}
	if k.Now() != 0 {
		t.Fatalf("time advanced with no events: %v", k.Now())
	}
}

func TestEventOrderingByTime(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("order = %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v, want 30", k.Now())
	}
}

func TestEqualTimeTieBreakBySequence(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestNegativeAndPastSchedulesClamp(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	ran := false
	k.Schedule(-5, func() { ran = true })
	k.At(-100, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || k.Now() != 0 {
		t.Fatalf("clamping failed: ran=%v now=%v", ran, k.Now())
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var wake Time
	k.Spawn("p", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		wake = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 2*Microsecond {
		t.Fatalf("woke at %v, want 2us", wake)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func(seed int64) string {
		k := NewKernel(Config{Seed: seed})
		var log []string
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("p%d", i)
			k.Spawn(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Time(k.Rand().Intn(100)))
					log = append(log, fmt.Sprintf("%s@%d", p.Name, j))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ",")
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := run(43)
	if a == c {
		t.Log("different seeds happened to agree (allowed but unlikely)")
	}
}

func TestProcPanicBecomesError(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	k.Spawn("boom", func(p *Proc) { panic("kapow") })
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "kapow") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	q := NewQueue[int](k, "never")
	k.Spawn("waiter", func(p *Proc) { q.Pop(p) })
	err := k.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(d.Blocked) != 1 || !strings.Contains(d.Blocked[0], "waiter") {
		t.Fatalf("blocked = %v", d.Blocked)
	}
}

func TestMaxEventsLimit(t *testing.T) {
	k := NewKernel(Config{Seed: 1, MaxEvents: 10})
	var tick func()
	tick = func() { k.Schedule(1, tick) }
	k.Schedule(0, tick)
	err := k.Run()
	var l *LimitError
	if !errors.As(err, &l) || l.What != "event" {
		t.Fatalf("err = %v, want event LimitError", err)
	}
}

func TestMaxTimeLimit(t *testing.T) {
	k := NewKernel(Config{Seed: 1, MaxTime: 5})
	k.Schedule(10, func() {})
	err := k.Run()
	var l *LimitError
	if !errors.As(err, &l) || l.What != "time" {
		t.Fatalf("err = %v, want time LimitError", err)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	n := 0
	k.Schedule(1, func() { n++; k.Stop() })
	k.Schedule(2, func() { n++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("events after Stop ran: n=%d", n)
	}
}

func TestQueuePushPop(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	q := NewQueue[int](k, "q")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			q.Push(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3]" {
		t.Fatalf("got %v", got)
	}
}

func TestQueueTryPop(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	q := NewQueue[string](k, "q")
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty succeeded")
	}
	q.Push("a")
	q.Push("b")
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.TryPop(); !ok || v != "a" {
		t.Fatalf("TryPop = %q, %v", v, ok)
	}
}

func TestQueueMultipleWaitersFIFO(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	q := NewQueue[int](k, "q")
	var order []string
	mk := func(name string) {
		k.Spawn(name, func(p *Proc) {
			v := q.Pop(p)
			order = append(order, fmt.Sprintf("%s=%d", name, v))
		})
	}
	mk("w0")
	mk("w1")
	k.Spawn("feeder", func(p *Proc) {
		p.Sleep(5)
		q.Push(100)
		p.Sleep(5)
		q.Push(200)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "w0=100,w1=200" {
		t.Fatalf("order = %v", order)
	}
}

func TestSemaphore(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	s := NewSemaphore(k, "s", 1)
	var maxIn, in int
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			s.Acquire(p)
			in++
			if in > maxIn {
				maxIn = in
			}
			p.Sleep(10)
			in--
			s.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxIn != 1 {
		t.Fatalf("mutual exclusion violated: max concurrent = %d", maxIn)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	s := NewSemaphore(k, "s", 1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire must succeed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire must fail")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("TryAcquire after Release must succeed")
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var wg WaitGroup
	wg.Add(3)
	done := false
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = true
	})
	for i := 0; i < 3; i++ {
		d := Time(10 * (i + 1))
		k.Schedule(d, wg.Done)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("waiter never released")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var wg WaitGroup
	wg.Done()
}

func TestSpawnFromInsideSimulation(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var child Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(50)
		k.Spawn("child", func(c *Proc) {
			child = c.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if child != 50 {
		t.Fatalf("child started at %v, want 50", child)
	}
}

func TestDeterminismProperty(t *testing.T) {
	// Property: for any seed, two runs of a randomized multi-process program
	// produce identical event counts and final times.
	f := func(seed int64) bool {
		run := func() (uint64, Time) {
			k := NewKernel(Config{Seed: seed})
			q := NewQueue[int](k, "q")
			k.Spawn("prod", func(p *Proc) {
				for i := 0; i < 20; i++ {
					p.Sleep(Time(k.Rand().Intn(50)))
					q.Push(i)
				}
			})
			k.Spawn("cons", func(p *Proc) {
				for i := 0; i < 20; i++ {
					q.Pop(p)
					p.Sleep(Time(k.Rand().Intn(50)))
				}
			})
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			return k.Events(), k.Now()
		}
		e1, t1 := run()
		e2, t2 := run()
		return e1 == e2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := (2500 * Nanosecond).String(); got != "2.500us" {
		t.Fatalf("Time.String = %q", got)
	}
}

func TestYield(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var log []string
	k.Spawn("a", func(p *Proc) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		log = append(log, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(log, ",") != "a1,b1,a2" {
		t.Fatalf("log = %v", log)
	}
}

// TestDeferMatchesReadySlot pins the contract the RDMA continuation chain
// depends on: a Defer'd continuation runs in exactly the (time, seq) slot a
// Ready() wakeup pushed at the same moment would, interleaving identically
// with other same-instant events.
func TestDeferMatchesReadySlot(t *testing.T) {
	order := func(useDefer bool) string {
		k := NewKernel(Config{Seed: 1})
		var log []string
		done := false
		p := k.Spawn("p", func(p *Proc) {
			p.Await(&done, "wait")
			log = append(log, "resume")
		})
		k.Schedule(10, func() {
			log = append(log, "a")
			if useDefer {
				k.Defer(func() { log = append(log, "resume") })
			} else {
				done = true
				p.Ready()
			}
			k.Defer(func() { log = append(log, "b") })
		})
		if useDefer {
			// Nothing resumes p in this variant; release it so the run ends.
			k.Schedule(20, func() { done = true; p.Ready() })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if useDefer {
			return strings.Join(log[:3], ",")
		}
		return strings.Join(log, ",")
	}
	ready, deferred := order(false), order(true)
	if ready != deferred {
		t.Fatalf("Defer slot differs from Ready slot: %q vs %q", ready, deferred)
	}
	if ready != "a,resume,b" {
		t.Fatalf("order = %q, want a,resume,b", ready)
	}
}

// TestAwaitIgnoresStrayWakeups: a process joined on a condition re-parks on
// wakeups that did not set it.
func TestAwaitIgnoresStrayWakeups(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	done := false
	woke := false
	p := k.Spawn("p", func(p *Proc) {
		p.Await(&done, "join")
		woke = true
	})
	k.Schedule(5, p.Ready) // stray: condition still false
	k.Schedule(9, func() {
		if woke {
			t.Error("stray wakeup released the join")
		}
	})
	k.Schedule(10, func() { done = true; p.Ready() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !woke {
		t.Fatal("join never released")
	}
}

// TestRelabelNamesStuckPhase: an event-driven operation that advances while
// its process stays parked updates the deadlock report's reason.
func TestRelabelNamesStuckPhase(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	done := false
	p := k.Spawn("p", func(p *Proc) {
		p.Await(&done, "phase 1")
	})
	k.Schedule(10, func() { p.Relabel("phase 2") })
	err := k.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if len(d.Blocked) != 1 || d.Blocked[0] != "p: phase 2" {
		t.Fatalf("blocked = %v, want [p: phase 2]", d.Blocked)
	}
}

// TestParkSelfResumeNoHandoff: a process whose wakeup is the next event
// resumes by driving the loop itself — the goroutine count cannot grow
// while it round-trips through Park.
func TestParkSelfResumeNoHandoff(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var times []int64
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Time(i + 1))
			times = append(times, int64(p.Now()))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(times) != "[1 3 6 10 15]" {
		t.Fatalf("times = %v", times)
	}
}

// TestEventCallbackPanicEscapesRun: a panic in an event callback must
// escape Run on Run's own goroutine — never be recorded as the error of
// whichever process goroutine happened to be driving the loop when the
// event fired.
func TestEventCallbackPanicEscapesRun(t *testing.T) {
	k := NewKernel(Config{Seed: 1})
	var innocent *Proc
	innocent = k.Spawn("innocent", func(p *Proc) {
		// Parked across t=50, so this process's goroutine is the driver
		// when the panicking event fires.
		p.Sleep(100)
	})
	k.Schedule(50, func() { panic("event boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("event panic did not escape Run")
		}
		if fmt.Sprint(r) != "event boom" {
			t.Fatalf("recovered %v, want the event's own panic value", r)
		}
		if innocent.Err() != nil {
			t.Fatalf("innocent driving process blamed for the event panic: %v", innocent.Err())
		}
	}()
	k.Run()
	t.Fatal("Run returned normally")
}
