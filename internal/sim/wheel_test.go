package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the container/heap implementation the wheel replaced, kept as
// the ordering oracle for the differential tests.
type refHeap []*event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// wheelDeltas mixes every placement class: level-0 neighbours, higher
// levels, level/window boundaries, and (rarely) beyond-horizon overflow.
func wheelDelta(r *rand.Rand) Time {
	switch r.Intn(10) {
	case 0, 1, 2, 3:
		return Time(1 + r.Intn(63)) // level 0
	case 4, 5:
		return Time(64 + r.Intn(4032)) // level 1
	case 6:
		return Time(4096 + r.Intn(1<<18)) // levels 2-3
	case 7:
		return Time(1) << uint(6+6*r.Intn(4)) // exact level boundaries
	case 8:
		return Time(1<<18 + r.Intn(1<<24)) // deep levels
	default:
		return wheelHorizon + Time(r.Intn(1000)) // overflow list
	}
}

// TestWheelMatchesHeapOrder drives identical push/pop schedules through the
// timing wheel and the reference heap and requires the exact same (at, seq)
// pop order — the byte-identity contract every golden fingerprint rests on.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		var w wheel
		var h refHeap
		var now Time
		var seq uint64
		pending := 0
		for step := 0; step < 4000; step++ {
			if pending == 0 || r.Intn(3) > 0 {
				// Push a burst at or after the current instant — exactly
				// the kernel's contract (t > now goes to the wheel).
				for burst := 1 + r.Intn(3); burst > 0; burst-- {
					at := now + wheelDelta(r)
					seq++
					w.push(&event{at: at, seq: seq})
					heap.Push(&h, &event{at: at, seq: seq})
					pending++
				}
				continue
			}
			// Occasionally exercise the bounded peek the kernel uses when
			// comparing against its now-queue: it must find the event iff
			// the true minimum is within the bound, and must stay safe to
			// push behind afterwards.
			if r.Intn(4) == 0 {
				bound := now + Time(r.Intn(100))
				got := w.peekWithin(bound)
				want := h[0]
				if want.at <= bound {
					if got == nil || got.at != want.at || got.seq != want.seq {
						t.Fatalf("seed %d step %d: peekWithin(%d) = %+v, want (%d,%d)",
							seed, step, bound, got, want.at, want.seq)
					}
				} else if got != nil {
					t.Fatalf("seed %d step %d: peekWithin(%d) = (%d,%d), want nil (min at %d)",
						seed, step, bound, got.at, got.seq, want.at)
				}
			}
			if w.peekWithin(timeMax) == nil {
				t.Fatalf("seed %d step %d: wheel empty with %d pending", seed, step, pending)
			}
			got := w.take()
			want := heap.Pop(&h).(*event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d step %d: wheel popped (%d,%d), heap says (%d,%d)",
					seed, step, got.at, got.seq, want.at, want.seq)
			}
			now = got.at
			pending--
		}
		// Drain completely.
		for pending > 0 {
			if w.peekWithin(timeMax) == nil {
				t.Fatalf("seed %d: wheel empty with %d pending at drain", seed, pending)
			}
			got := w.take()
			want := heap.Pop(&h).(*event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d drain: wheel popped (%d,%d), heap says (%d,%d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
			pending--
		}
		if w.len() != 0 {
			t.Fatalf("seed %d: wheel reports %d events after drain", seed, w.len())
		}
	}
}

// TestWheelOverflowBeatsWindowEvents pins the fast-path/overflow interplay:
// an overflow event that becomes due inside the cursor's current level-0
// window must pop before any later in-window event — it was pushed a full
// horizon earlier and carries the smaller seq. (Found in review: the fast
// path used to serve the window without consulting the overflow list, so
// the overflow event was skipped and virtual time ran backward.)
func TestWheelOverflowBeatsWindowEvents(t *testing.T) {
	var w wheel
	T := wheelHorizon + 10              // same 64ns window as T-2 and T+5
	w.push(&event{at: T, seq: 1})       // beyond horizon: overflow list
	w.push(&event{at: T - 100, seq: 2}) // in-wheel, pops first
	if got := w.peekWithin(timeMax); got == nil || got.seq != 2 {
		t.Fatalf("first peek = %+v, want seq 2", got)
	}
	w.take()
	w.push(&event{at: T - 2, seq: 3})
	w.push(&event{at: T + 5, seq: 4})
	want := []struct {
		at  Time
		seq uint64
	}{{T - 2, 3}, {T, 1}, {T + 5, 4}}
	for _, wv := range want {
		e := w.peekWithin(timeMax)
		if e == nil {
			t.Fatalf("wheel empty, want (%d,%d)", wv.at, wv.seq)
		}
		got := w.take()
		if got.at != wv.at || got.seq != wv.seq {
			t.Fatalf("popped (%d,%d), want (%d,%d)", got.at, got.seq, wv.at, wv.seq)
		}
	}
	if w.len() != 0 {
		t.Fatalf("wheel reports %d events after drain", w.len())
	}
}

// TestWheelSameInstantSeqOrder floods one instant from several placements
// (direct pushes and cascades landing in the same level-0 slot) and checks
// pops come out in strict seq order.
func TestWheelSameInstantSeqOrder(t *testing.T) {
	var w wheel
	var seq uint64
	const at = Time(1 << 13) // lands via cascades from level 2
	// Far-filed events first (small seq, reach level 0 late via cascade).
	for i := 0; i < 5; i++ {
		seq++
		w.push(&event{at: at, seq: seq})
	}
	// Advance the cursor near the instant, then push directly into level 0.
	w.cur = at - 3
	for i := 0; i < 5; i++ {
		seq++
		w.push(&event{at: at, seq: seq})
	}
	for wantSeq := uint64(1); wantSeq <= seq; wantSeq++ {
		e := w.peekWithin(timeMax)
		if e == nil {
			t.Fatalf("wheel empty before seq %d", wantSeq)
		}
		got := w.take()
		if got.at != at || got.seq != wantSeq {
			t.Fatalf("popped (%d,%d), want (%d,%d)", got.at, got.seq, at, wantSeq)
		}
	}
}
