package sim

// Ring is a growable circular FIFO. The kernel's same-time event queue and
// the Queue/Semaphore waiter lists use it instead of `items = items[1:]`
// reslicing, which strands popped elements in the backing array and forces a
// reallocation per wrap: a ring's storage is reused indefinitely once it
// reaches the workload's high-water mark.
type Ring[T any] struct {
	buf  []T
	head int // index of the front element
	n    int // number of elements
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// PushBack appends v at the tail, growing the buffer when full.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Front returns the head element; it panics on an empty ring.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("sim: Front on empty ring")
	}
	return r.buf[r.head]
}

// PopFront removes and returns the head element; it panics on an empty ring.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("sim: PopFront on empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// At returns the i-th element from the front (0 = front).
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("sim: ring index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// RemoveFunc deletes the first element matching eq, preserving FIFO order of
// the rest. It reports whether an element was removed. Used for explicit
// waiter removal: a process that leaves a wait loop through another path
// must not linger in the waiter ring.
func (r *Ring[T]) RemoveFunc(eq func(T) bool) bool {
	idx := -1
	for i := 0; i < r.n; i++ {
		if eq(r.At(i)) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	// Shift everything after idx forward one slot.
	for i := idx; i < r.n-1; i++ {
		r.buf[(r.head+i)%len(r.buf)] = r.buf[(r.head+i+1)%len(r.buf)]
	}
	var zero T
	r.buf[(r.head+r.n-1)%len(r.buf)] = zero
	r.n--
	return true
}

func (r *Ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	buf := make([]T, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = buf
	r.head = 0
}
