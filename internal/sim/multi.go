package sim

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
)

// gosched is runtime.Gosched, indirected for clarity at the spin sites.
var gosched = runtime.Gosched

// MultiKernel partitions one simulation across K cooperating shard kernels,
// each owning a disjoint set of the simulated nodes, and executes it as a
// sequence of conservative time windows: every shard runs its own events —
// on its own goroutine — for a window no longer than the network's minimum
// cross-node latency (the lookahead), so nothing a shard does inside a
// window can affect any other shard before the window ends. Between windows
// a serial barrier replay merges the shards' execution logs in exact
// (time, key) order and, walking that order, assigns every push its true
// global sequence number, draws any deferred latency randomness, files
// cross-shard deliveries into their destination shards, and flushes ordered
// side effects. The result is bit-identical to running the whole simulation
// on one Kernel — fingerprints, event counts, RNG streams and all — for any
// shard count.
//
// The equivalence argument, in three parts:
//
//  1. Within a window, shard state is disjoint (nodes are partitioned and
//     cross-shard interaction travels only through deliveries at least one
//     lookahead away), so the serial kernel's execution restricted to one
//     shard's events is exactly what the shard computes alone.
//
//  2. The only cross-shard coupling is the order of (a) global sequence
//     numbers, which break same-instant ties, and (b) shared-RNG draws.
//     Both are reconstructed by the barrier replay: the serial execution
//     order of a window is a deterministic K-way merge of the shard logs by
//     (time, key), and walking it replays push-key assignment and RNG draws
//     in exactly the serial kernel's order.
//
//  3. Draws that must happen mid-window (a process consuming the shared RNG
//     between operations) cannot be reconstructed — their order *is* the
//     serial interleaving — so MultiKernel.Rand panics during a parallel
//     window. Runs that need such draws must declare themselves serial-only
//     and run on a single kernel (see dsm.Config.SerialOnly).
type MultiKernel struct {
	cfg    Config
	window Time
	shards []*Kernel
	rng    *rand.Rand
	// inWindow guards the shared RNG: set while shard goroutines execute.
	inWindow atomic.Bool
	// gseq is the global sequence counter; serial phases only.
	gseq uint64
	// filer receives deferred-send envelopes with their resolved keys during
	// the barrier replay (registered by the network layer).
	filer func(env any, key uint64)
	// hooks run serially at every barrier after the replay (pool settling).
	hooks []func()
	// procs is every process in global spawn order (error precedence).
	procs []*Proc
	// epoch/doneCount are the window barrier: the coordinator bumps epoch
	// to release the runners into a window and spins until doneCount
	// reaches the shard count. Sequentially consistent atomics, so the
	// bump/observe pairs are the happens-before edges that order one
	// shard's window against every other shard's next window (and the
	// serial barrier in between). Spinning (with Gosched backoff) instead
	// of channel hand-offs matters: windows are one network lookahead long
	// — microseconds of virtual time, often under a microsecond of real
	// work — and a futex sleep/wake pair per shard per window costs more
	// than the window itself.
	epoch     atomic.Uint64
	doneCount atomic.Int64
	quit      bool // read by runners after an epoch bump (hb via epoch)
	// spin selects the spinning barrier; with GOMAXPROCS=1 there is nothing
	// to spin for (no two goroutines run at once), so the runners block on
	// channels instead — on one core a direct channel hand-off is cheaper
	// than a yield storm, and the choice affects speed only, never results.
	spin    bool
	startCh []chan struct{}
	doneCh  chan struct{}
	started bool
	// heads is the replay merge cursor per shard, reused across windows.
	heads []int
	// active flags the shards released into the current window (a shard
	// with no event below the horizon skips the whole round trip — on a
	// serialized workload most windows touch one shard); bounds caches the
	// per-shard next-event lower bounds of the placement scan.
	active []bool
	bounds []Time
	// runErr is the run-aborting error chosen at a barrier (earliest trip).
	runErr error
}

// NewMultiKernel creates a multi-kernel of k shards sharing cfg's seed and
// limits, advancing in conservative windows of the given lookahead (must be
// positive). Each shard is a full Kernel; spawn processes on the shard that
// owns their node, then call Run.
func NewMultiKernel(cfg Config, k int, lookahead Time) *MultiKernel {
	if k < 1 {
		panic("sim: MultiKernel needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: MultiKernel needs a positive lookahead")
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 50_000_000
	}
	m := &MultiKernel{
		cfg:    cfg,
		window: lookahead,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		heads:  make([]int, k),
		active: make([]bool, k),
		bounds: make([]Time, k),
		spin:   spinBarrier(),
		doneCh: make(chan struct{}),
	}
	for i := 0; i < k; i++ {
		s := NewKernel(cfg)
		s.mk, s.shard = m, i
		m.shards = append(m.shards, s)
		m.startCh = append(m.startCh, make(chan struct{}))
	}
	return m
}

// spinBarrier selects the window-barrier flavour (override for A/B tests
// via DSMRACE_MK_BARRIER=spin|chan).
func spinBarrier() bool {
	switch os.Getenv("DSMRACE_MK_BARRIER") {
	case "spin":
		return true
	case "chan":
		return false
	}
	return runtime.GOMAXPROCS(0) > 1
}

// spinWait spins until cond holds, yielding the processor between probes so
// co-scheduled trials and the coordinator stay runnable.
func spinWait(cond func() bool) {
	for i := 0; !cond(); i++ {
		if i&63 == 63 {
			gosched()
		}
	}
}

// Shards returns the shard count.
func (m *MultiKernel) Shards() int { return len(m.shards) }

// Shard returns shard i's kernel. Spawn node-owned processes here.
func (m *MultiKernel) Shard(i int) *Kernel { return m.shards[i] }

// Lookahead returns the conservative window length.
func (m *MultiKernel) Lookahead() Time { return m.window }

// nextKey hands out the next true global sequence number. Serial phases
// only; shard kernels route their pushes here outside parallel windows.
func (m *MultiKernel) nextKey() uint64 {
	m.gseq++
	return m.gseq
}

// Rand returns the shared deterministic random source. It may only be drawn
// in serial phases (setup and the barrier replay, where draw order equals
// the serial kernel's); drawing it while a parallel window executes would
// make the stream depend on the cross-shard interleaving, so that panics.
func (m *MultiKernel) Rand() *rand.Rand {
	if m.inWindow.Load() {
		panic("sim: shared RNG drawn during a parallel window; this run must be serial-only (one kernel)")
	}
	return m.rng
}

// SetEnvelopeFiler registers the callback the barrier replay hands deferred
// send envelopes to, together with their resolved global keys. The filer
// runs serially, may draw Rand(), and files the delivery with PushKeyed.
func (m *MultiKernel) SetEnvelopeFiler(fn func(env any, key uint64)) { m.filer = fn }

// OnBarrier registers fn to run serially at every window barrier, after the
// replay (e.g. cross-shard pool settling). Hooks also run once before Run
// returns.
func (m *MultiKernel) OnBarrier(fn func()) { m.hooks = append(m.hooks, fn) }

// Now returns the latest shard time — after Run, the virtual time of the
// last executed event, exactly as a standalone kernel reports it.
func (m *MultiKernel) Now() Time {
	var t Time
	for _, s := range m.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Events returns the total executed event count across shards.
func (m *MultiKernel) Events() uint64 {
	var n uint64
	for _, s := range m.shards {
		n += s.events
	}
	return n
}

// Stop aborts the run at the next window barrier.
func (m *MultiKernel) Stop() {
	for _, s := range m.shards {
		s.stopped = true
	}
}

// runners lazily starts one goroutine per shard; each executes windows on
// demand. Observing the epoch bump publishes everything the barrier wrote
// (other shards' window effects included) to the shard; the done increment
// publishes the shard's window back to the barrier.
func (m *MultiKernel) runners() {
	if m.started {
		return
	}
	m.started = true
	for i := range m.shards {
		go func(i int) {
			s := m.shards[i]
			last := uint64(0)
			for {
				if m.spin {
					spinWait(func() bool { return m.epoch.Load() != last })
					last = m.epoch.Load()
				} else if _, ok := <-m.startCh[i]; !ok {
					return
				}
				if m.quit {
					return
				}
				if !m.active[i] {
					m.doneCount.Add(1) // spin mode only: idle ack
					continue
				}
				s.runWindow()
				if m.spin {
					m.doneCount.Add(1)
				} else {
					m.doneCh <- struct{}{}
				}
			}
		}(i)
	}
}

// releaseWindow runs one window on every active shard and waits for them.
func (m *MultiKernel) releaseWindow() {
	if m.spin {
		// Spin mode wakes every runner; inactive ones ack immediately.
		m.doneCount.Store(0)
		m.epoch.Add(1)
		want := int64(len(m.shards))
		spinWait(func() bool { return m.doneCount.Load() == want })
		return
	}
	n := 0
	for i := range m.startCh {
		if m.active[i] {
			m.startCh[i] <- struct{}{}
			n++
		}
	}
	for ; n > 0; n-- {
		<-m.doneCh
	}
}

// Run executes the simulation to completion: windows in parallel, barriers
// in series. Semantics match Kernel.Run, with two documented deviations on
// *aborted* runs only: MaxEvents is enforced against the cross-shard total
// at each barrier (a shard-local window can overshoot before the check),
// and a MaxTime/Stop/panic in one shard lets other shards finish the
// current window before the run stops. Clean runs are bit-identical.
func (m *MultiKernel) Run() error {
	m.runners()
	defer func() {
		for _, fn := range m.hooks {
			fn()
		}
	}()
	for {
		// Window placement: the next window starts at the earliest pending
		// event bound across shards and spans one lookahead. The bound may
		// be coarse (a far-future event still parked in a high wheel
		// bucket), in which case the window comes up empty and the next
		// round's refined bound moves it forward — never backward, and
		// never past a time the barrier could still file into.
		var begin Time
		any := false
		for i, s := range m.shards {
			at, ok := s.nextEventBound()
			m.active[i] = ok
			if ok {
				m.bounds[i] = at
				if !any || at < begin {
					begin, any = at, true
				}
			}
		}
		if !any {
			break // every shard drained: the run is over
		}
		stopped := false
		for _, s := range m.shards {
			if s.stopped {
				stopped = true
			}
		}
		if stopped {
			break
		}
		horizon := begin + m.window
		for i, s := range m.shards {
			// Only shards with a pending event below the horizon take part
			// in this window; the rest skip the release round trip (their
			// queues cannot produce anything before the horizon).
			m.active[i] = m.active[i] && m.bounds[i] < horizon
			if m.active[i] {
				s.beginWindow(horizon)
			}
		}
		m.inWindow.Store(true)
		m.releaseWindow()
		m.inWindow.Store(false)
		m.replay()
		// The replay may have rewritten queued events' keys in place or
		// filed deliveries into any shard; drop every cached wheel peek.
		for _, s := range m.shards {
			s.queue.invalidatePeek()
		}
		for _, fn := range m.hooks {
			fn()
		}
		if err := m.abortError(); err != nil {
			m.runErr = err
			break
		}
		if p := m.panicked(); p != nil {
			break // re-raised by finish, after the runners are released
		}
	}
	// Release the shard runner goroutines for good.
	m.quit = true
	if m.spin {
		m.epoch.Add(1)
	} else {
		for i := range m.startCh {
			close(m.startCh[i])
		}
	}
	return m.finish()
}

// replay is the serial window barrier: merge the shards' execution records
// in exact (time, key) order and, walking that order, assign every logged
// push its true global key — rewriting still-queued events in place,
// resolving in-window-executed records, and filing deferred-send envelopes
// (which draw any latency randomness here, in serial order) — then run the
// ordered actions.
func (m *MultiKernel) replay() {
	heads := m.heads
	total := 0
	for i, s := range m.shards {
		if !m.active[i] {
			// An idle shard skipped beginWindow: its log is the previous
			// window's, already replayed — park its head at the end.
			heads[i] = len(s.execLog)
			continue
		}
		heads[i] = 0
		total += len(s.execLog)
	}
	for n := 0; n < total; n++ {
		best := -1
		var bestAt Time
		var bestKey uint64
		for i, s := range m.shards {
			h := heads[i]
			if h >= len(s.execLog) {
				continue
			}
			rec := &s.execLog[h]
			// A provisional key at a merge head is impossible: the pusher
			// of an in-window event sits earlier in the same shard's log and
			// resolved it when its own record was processed.
			if rec.key&provBit != 0 {
				panic("sim: unresolved provisional key at merge head")
			}
			if best < 0 || rec.at < bestAt || (rec.at == bestAt && rec.key < bestKey) {
				best, bestAt, bestKey = i, rec.at, rec.key
			}
		}
		s := m.shards[best]
		rec := &s.execLog[heads[best]]
		heads[best]++
		for i := rec.pushLo; i < rec.pushHi; i++ {
			key := m.nextKey()
			pe := &s.pushLog[i]
			if pe.env != nil {
				m.filer(pe.env, key)
				continue
			}
			switch st := s.provState[i]; st {
			case provPending:
				pe.e.seq = key // still queued in the shard's wheel
			case provExecuted:
				// Ran inside the window without pushing anything: the key
				// is consumed (the serial kernel assigned one) but nothing
				// survives to carry it.
			default:
				s.execLog[st].key = key // resolve the in-window record
			}
		}
		for i := rec.actLo; i < rec.actHi; i++ {
			s.actions[i]()
		}
	}
}

// abortError collects a limit abort: MaxEvents against the cross-shard
// total, plus any shard-local error (MaxTime) — earliest trip time wins.
func (m *MultiKernel) abortError() error {
	var first *LimitError
	for _, s := range m.shards {
		if le, ok := s.runErr.(*LimitError); ok && (first == nil || le.Time < first.Time) {
			first = le
		}
	}
	if first != nil {
		return first
	}
	if total := m.Events(); total > m.cfg.MaxEvents {
		return &LimitError{What: "event", Events: total, Time: m.Now()}
	}
	return nil
}

// panicked returns the first (by shard order) captured event panic.
func (m *MultiKernel) panicked() any {
	for _, s := range m.shards {
		if s.runPanic != nil {
			return s.runPanic
		}
	}
	return nil
}

// finish assembles the run result exactly as Kernel.Run does: panic first,
// then the run error, then process errors in spawn order, then a deadlock
// report over every still-parked process.
func (m *MultiKernel) finish() error {
	if p := m.panicked(); p != nil {
		panic(p)
	}
	if m.runErr != nil {
		return m.runErr
	}
	for _, s := range m.shards {
		if s.runErr != nil {
			return s.runErr
		}
	}
	for _, p := range m.procs {
		if p.err != nil {
			return p.err
		}
	}
	for _, s := range m.shards {
		if s.stopped {
			return nil
		}
	}
	var blocked []string
	for _, s := range m.shards {
		for _, p := range s.procs {
			if p.state == ProcParked {
				blocked = append(blocked, fmt.Sprintf("%s: %s", p.Name, p.blockReason))
			}
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: m.Now(), Blocked: blocked}
	}
	return nil
}
