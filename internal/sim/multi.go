package sim

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// gosched is runtime.Gosched, indirected for clarity at the spin sites.
var gosched = runtime.Gosched

// defaultExtensionCap bounds adaptive window extension: a window grows to at
// most this many lookahead-sized sub-rounds. The cap bounds log memory and
// the MaxEvents overshoot a window can accumulate before its barrier check.
const defaultExtensionCap = 64

// MultiKernelStats counts what the window/barrier machinery did during a
// run. Counters are exact and deterministic for a fixed configuration (they
// are pure functions of replayed state); the wall-clock fields are
// observability only.
type MultiKernelStats struct {
	// Windows is the number of windows executed — one barrier replay each.
	Windows uint64
	// SubWindows is the number of lookahead-sized sub-rounds released;
	// SubWindows/Windows is the mean adaptive extension factor.
	SubWindows uint64
	// Extensions counts sub-rounds beyond each window's first — the barrier
	// round trips adaptive extension eliminated.
	Extensions uint64
	// PipelinedReplays counts window replays that ran overlapped with the
	// next window's execution instead of stopping the world.
	PipelinedReplays uint64
	// ReplayRecords is the total execution records the barrier replays
	// merged across shards.
	ReplayRecords uint64
	// EnvelopesFiled is the number of deferred cross-shard/latency-drawing
	// sends filed by barrier replays.
	EnvelopesFiled uint64
	// WindowNs is wall time spent with shards released into a sub-round
	// (including any replay overlapped with it); BarrierNs is wall time in
	// the serial coordinator phases between releases.
	WindowNs  int64
	BarrierNs int64
}

// MultiKernel partitions one simulation across K cooperating shard kernels,
// each owning a disjoint set of the simulated nodes, and executes it as a
// sequence of conservative time windows: every shard runs its own events
// for a window bounded by the network's minimum cross-node latency (the
// lookahead), so nothing a shard does inside a window can affect any other
// shard before the window ends. Between windows a serial barrier replay
// merges the shards' execution logs in exact (time, key) order and, walking
// that order, assigns every push its true global sequence number, draws any
// deferred latency randomness, files cross-shard deliveries into their
// destination shards, and flushes ordered side effects. The result is
// bit-identical to running the whole simulation on one Kernel —
// fingerprints, event counts, RNG streams and all — for any shard count.
//
// The equivalence argument, in three parts:
//
//  1. Within a window, shard state is disjoint (nodes are partitioned and
//     cross-shard interaction travels only through deliveries at least one
//     lookahead away), so the serial kernel's execution restricted to one
//     shard's events is exactly what the shard computes alone.
//
//  2. The only cross-shard coupling is the order of (a) global sequence
//     numbers, which break same-instant ties, and (b) shared-RNG draws.
//     Both are reconstructed by the barrier replay: the serial execution
//     order of a window is a deterministic K-way merge of the shard logs by
//     (time, key), and walking it replays push-key assignment and RNG draws
//     in exactly the serial kernel's order.
//
//  3. Draws that must happen mid-window (a process consuming the shared RNG
//     between operations) cannot be reconstructed — their order *is* the
//     serial interleaving — so MultiKernel.Rand panics during a parallel
//     window. Runs that need such draws must declare themselves serial-only
//     and run on a single kernel (see dsm.Config.SerialOnly).
//
// Two optimisations preserve that equivalence while cutting barrier cost
// (see ARCHITECTURE.md, "Adaptive windows & pipelined replay"):
//
// Adaptive window extension runs a window as up to budget lookahead-sized
// sub-rounds in lockstep, with only a cheap placement scan between them and
// one barrier replay at the end. A sub-round that logs any envelope ends
// the window immediately — the envelope's arrival lies at or beyond the
// next sub-round's start, so it must be filed first — which makes the
// extension sound: a window is extended only through traffic-free regions,
// where the per-sub-round replays it elides would have been empty anyway.
// The budget doubles after each envelope-free window (up to a cap) and
// resets to one on any envelope: a pure function of replayed state, so the
// window placement — and with it every fingerprint — is reproducible.
//
// Pipelined replay overlaps the serial replay of a window that filed no
// envelopes and logged no ordered actions with the next window's execution:
// the coordinator takes the window's log buffers (the shards log the next
// window into spares), merges them concurrently, and buffers the key
// resolutions of still-queued events instead of writing them — the events'
// structs are concurrently live. The resolutions are applied at the next
// barrier, before anything can reference them: queued events get their true
// keys before the next replay files envelopes against them, and events that
// executed meanwhile are patched through the lateExec ledger their shard
// kept. Such a replay only assigns keys — no RNG, no filing, no actions —
// so overlapping it changes no observable order.
type MultiKernel struct {
	cfg    Config
	window Time
	shards []*Kernel
	rng    *rand.Rand
	// inWindow guards the shared RNG: set while shard goroutines execute.
	inWindow atomic.Bool
	// gseq is the global sequence counter; serial phases only (the
	// pipelined replay runs on the coordinator goroutine and is the only
	// writer while shards execute).
	gseq uint64
	// filer receives deferred-send envelopes with their resolved keys during
	// the barrier replay (registered by the network layer).
	filer func(env any, key uint64)
	// hooks run serially at every barrier after the replay (pool settling).
	hooks []func()
	// procs is every process in global spawn order (error precedence).
	procs []*Proc
	// epoch/doneCount are the window barrier: the coordinator bumps epoch
	// to release the runners into a sub-round and spins until doneCount
	// reaches the shard count. Sequentially consistent atomics, so the
	// bump/observe pairs are the happens-before edges that order one
	// shard's window against every other shard's next window (and the
	// serial barrier in between). Spinning (with Gosched backoff) instead
	// of channel hand-offs matters: sub-rounds are one network lookahead
	// long — microseconds of virtual time, often under a microsecond of
	// real work — and a futex sleep/wake pair per shard per round costs
	// more than the round itself.
	epoch     atomic.Uint64
	doneCount atomic.Int64
	quit      bool // read by runners after an epoch bump (hb via epoch)
	// spin selects the spinning barrier (GOMAXPROCS > 1). inline goes
	// further for the single-core case: the coordinator drives every active
	// shard's sub-round itself, in shard order, with no runner goroutines
	// and no hand-offs at all — on one core nothing runs concurrently
	// anyway, and the choice affects speed only, never results.
	spin    bool
	inline  bool
	startCh []chan struct{}
	doneCh  chan struct{}
	nrel    int // chan mode: releases outstanding in the current sub-round
	started bool
	// extCap caps adaptive window extension (sub-rounds per window); budget
	// is the current window's allowance under the doubling rule.
	extCap int
	budget int
	// pipeMode selects pipelined replay: 0 auto (on unless inline), 1
	// forced on, -1 forced off.
	pipeMode int
	// winTag tags the current window's provisional keys; bumped when a
	// window's replay is pipelined (two windows' keys then coexist), reset
	// to zero by every synchronous replay.
	winTag uint32
	// active flags the shards released into the current sub-round (a shard
	// with no event below the horizon skips the whole round trip — on a
	// serialized workload most rounds touch one shard); bounds caches the
	// per-shard next-event lower bounds of the placement pass. joined flags
	// the shards that opened logs for the current window (they may sit out
	// individual sub-rounds).
	active []bool
	bounds []Time
	joined []bool
	// pending is the stashed previous window awaiting its pipelined replay
	// and the barrier apply of its buffered key resolutions.
	pending pendingWindow
	// lanes/ltree/lwin are the replay merge's loser-tree scratch.
	lanes []mergeLane
	ltree []int32
	lwin  []int32
	stats MultiKernelStats
	// runErr is the run-aborting error chosen at a barrier (earliest trip).
	runErr error
}

// pendingWindow is a window whose logs were taken for a pipelined replay.
type pendingWindow struct {
	live     bool
	replayed bool
	logs     []windowLogs
	joined   []bool
	// res buffers, per shard and push index, the true key of every push
	// whose event was still queued when the replay ran; applied at the next
	// barrier.
	res [][]uint64
}

// mergeLane is one shard's record stream in a barrier replay, with its head
// record's (at, key) snapshot. The snapshot is stable: a record's key is
// always resolved by the time it becomes the lane head (its pusher sits
// earlier in the same shard's log).
type mergeLane struct {
	logs  *windowLogs
	shard int
	pos   int
	at    Time
	key   uint64
	done  bool
}

// NewMultiKernel creates a multi-kernel of k shards sharing cfg's seed and
// limits, advancing in conservative windows of the given lookahead (must be
// positive). Each shard is a full Kernel; spawn processes on the shard that
// owns their node, then call Run. Adaptive extension and pipelined replay
// default on (see SetAdaptiveWindow, SetPipelinedReplay; A/B-testable via
// DSMRACE_MK_EXT and DSMRACE_MK_PIPELINE=on|off).
func NewMultiKernel(cfg Config, k int, lookahead Time) *MultiKernel {
	if k < 1 {
		panic("sim: MultiKernel needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: MultiKernel needs a positive lookahead")
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 50_000_000
	}
	spin, inline := barrierMode()
	m := &MultiKernel{
		cfg:    cfg,
		window: lookahead,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		active: make([]bool, k),
		bounds: make([]Time, k),
		joined: make([]bool, k),
		lanes:  make([]mergeLane, 0, k),
		ltree:  make([]int32, k),
		lwin:   make([]int32, k),
		spin:   spin,
		inline: inline,
		extCap: defaultExtensionCap,
		budget: 1,
		doneCh: make(chan struct{}, k),
	}
	if v := os.Getenv("DSMRACE_MK_EXT"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 1 {
			m.extCap = n
		}
	}
	switch os.Getenv("DSMRACE_MK_PIPELINE") {
	case "on":
		m.pipeMode = 1
	case "off":
		m.pipeMode = -1
	}
	for i := 0; i < k; i++ {
		s := NewKernel(cfg)
		s.mk, s.shard = m, i
		m.shards = append(m.shards, s)
		m.startCh = append(m.startCh, make(chan struct{}))
	}
	return m
}

// barrierMode selects the sub-round barrier flavour (override for A/B tests
// via DSMRACE_MK_BARRIER=spin|chan|inline).
func barrierMode() (spin, inline bool) {
	switch os.Getenv("DSMRACE_MK_BARRIER") {
	case "spin":
		return true, false
	case "chan":
		return false, false
	case "inline":
		return false, true
	}
	if runtime.GOMAXPROCS(0) > 1 {
		return true, false
	}
	return false, true
}

// spinWait spins until cond holds, yielding the processor between probes so
// co-scheduled trials and the coordinator stay runnable.
func spinWait(cond func() bool) {
	for i := 0; !cond(); i++ {
		if i&63 == 63 {
			gosched()
		}
	}
}

// SetAdaptiveWindow caps adaptive window extension at cap lookahead-sized
// sub-rounds per window: 0 restores the default cap, 1 disables extension
// (every window is one lookahead — the pre-adaptive behaviour), larger
// values trade barrier round trips against log memory and MaxEvents
// overshoot. Call before Run; overrides DSMRACE_MK_EXT.
func (m *MultiKernel) SetAdaptiveWindow(cap int) {
	switch {
	case cap <= 0:
		m.extCap = defaultExtensionCap
	default:
		m.extCap = cap
	}
}

// SetPipelinedReplay selects whether an envelope-free, action-free window's
// replay may overlap the next window's execution: 0 auto (on unless the
// inline single-core barrier is active, where there is nothing to overlap
// with), 1 forces it on (the replay then simply runs before the next
// sub-round — same machinery, no concurrency), -1 forces it off. Call
// before Run; overrides DSMRACE_MK_PIPELINE.
func (m *MultiKernel) SetPipelinedReplay(mode int) {
	if mode < -1 || mode > 1 {
		panic("sim: SetPipelinedReplay mode must be -1, 0 or 1")
	}
	m.pipeMode = mode
}

// Stats returns the run's window/barrier counters.
func (m *MultiKernel) Stats() MultiKernelStats { return m.stats }

// Shards returns the shard count.
func (m *MultiKernel) Shards() int { return len(m.shards) }

// Shard returns shard i's kernel. Spawn node-owned processes here.
func (m *MultiKernel) Shard(i int) *Kernel { return m.shards[i] }

// Lookahead returns the conservative window length.
func (m *MultiKernel) Lookahead() Time { return m.window }

// nextKey hands out the next true global sequence number. Serial phases
// only; shard kernels route their pushes here outside parallel windows.
func (m *MultiKernel) nextKey() uint64 {
	m.gseq++
	return m.gseq
}

// Rand returns the shared deterministic random source. It may only be drawn
// in serial phases (setup and the barrier replay, where draw order equals
// the serial kernel's); drawing it while a parallel window executes would
// make the stream depend on the cross-shard interleaving, so that panics.
func (m *MultiKernel) Rand() *rand.Rand {
	if m.inWindow.Load() {
		panic("sim: shared RNG drawn during a parallel window; this run must be serial-only (one kernel)")
	}
	return m.rng
}

// SetEnvelopeFiler registers the callback the barrier replay hands deferred
// send envelopes to, together with their resolved global keys. The filer
// runs serially, may draw Rand(), and files the delivery with PushKeyed.
func (m *MultiKernel) SetEnvelopeFiler(fn func(env any, key uint64)) { m.filer = fn }

// OnBarrier registers fn to run serially at every window barrier, after the
// replay (e.g. cross-shard pool settling). Hooks also run once before Run
// returns.
func (m *MultiKernel) OnBarrier(fn func()) { m.hooks = append(m.hooks, fn) }

// Now returns the latest shard time — after Run, the virtual time of the
// last executed event, exactly as a standalone kernel reports it.
func (m *MultiKernel) Now() Time {
	var t Time
	for _, s := range m.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Events returns the total executed event count across shards.
func (m *MultiKernel) Events() uint64 {
	var n uint64
	for _, s := range m.shards {
		n += s.events
	}
	return n
}

// Stop aborts the run at the next window barrier.
func (m *MultiKernel) Stop() {
	for _, s := range m.shards {
		s.stopped = true
	}
}

// runners lazily starts one goroutine per shard; each executes sub-rounds
// on demand. Observing the epoch bump publishes everything the barrier
// wrote (other shards' window effects included) to the shard; the done
// increment publishes the shard's sub-round back to the barrier. The inline
// barrier mode never starts them.
func (m *MultiKernel) runners() {
	if m.started {
		return
	}
	m.started = true
	for i := range m.shards {
		go func(i int) {
			s := m.shards[i]
			last := uint64(0)
			for {
				if m.spin {
					spinWait(func() bool { return m.epoch.Load() != last })
					last = m.epoch.Load()
				} else if _, ok := <-m.startCh[i]; !ok {
					return
				}
				if m.quit {
					return
				}
				if !m.active[i] {
					m.doneCount.Add(1) // spin mode only: idle ack
					continue
				}
				s.runWindow()
				if m.spin {
					m.doneCount.Add(1)
				} else {
					m.doneCh <- struct{}{}
				}
			}
		}(i)
	}
}

// place scans every shard's next-event bound and selects the shards taking
// part in the next sub-round: those with a pending event below one
// lookahead past the earliest bound. The bound may be coarse (a far-future
// event still parked in a high wheel bucket), in which case the sub-round
// comes up empty and the next round's refined bound moves it forward —
// never backward, and never past a time the barrier could still file into.
// One placement pass serves both the window decision and the release.
func (m *MultiKernel) place() (Time, bool) {
	var begin Time
	any := false
	for i, s := range m.shards {
		at, ok := s.nextEventBound()
		m.active[i] = ok
		if ok {
			m.bounds[i] = at
			if !any || at < begin {
				begin, any = at, true
			}
		}
	}
	if !any {
		return 0, false
	}
	horizon := begin + m.window
	for i := range m.shards {
		m.active[i] = m.active[i] && m.bounds[i] < horizon
	}
	return begin, true
}

// release starts one sub-round on every active shard; await waits for it to
// finish (and, in the inline mode, is the sub-round: the coordinator drives
// each active shard in shard order itself). The split exists so a pipelined
// replay can run between the two.
func (m *MultiKernel) release() {
	if m.inline {
		return
	}
	if m.spin {
		// Spin mode wakes every runner; inactive ones ack immediately.
		m.doneCount.Store(0)
		m.epoch.Add(1)
		return
	}
	m.nrel = 0
	for i := range m.startCh {
		if m.active[i] {
			m.startCh[i] <- struct{}{}
			m.nrel++
		}
	}
}

func (m *MultiKernel) await() {
	if m.inline {
		for i, s := range m.shards {
			if m.active[i] {
				s.runWindow()
			}
		}
		return
	}
	if m.spin {
		want := int64(len(m.shards))
		spinWait(func() bool { return m.doneCount.Load() == want })
		return
	}
	for ; m.nrel > 0; m.nrel-- {
		<-m.doneCh
	}
}

// Run executes the simulation to completion: windows in parallel, barriers
// in series. Semantics match Kernel.Run, with two documented deviations on
// *aborted* runs only: MaxEvents is enforced against the cross-shard total
// at each sub-round barrier (a shard-local round can overshoot before the
// check), and a MaxTime/Stop/panic in one shard lets other shards finish
// the current sub-round before the run stops. Clean runs are bit-identical.
func (m *MultiKernel) Run() error {
	pipe := m.pipeMode == 1 || (m.pipeMode == 0 && !m.inline)
	if !m.inline {
		m.runners()
	}
	// Wall-clock reads feed the WindowNs/BarrierNs overhead counters only —
	// host-side metrics, never virtual state or a fingerprint.
	mark := time.Now() //dsmlint:wallclock metrics only
	tick := func(acc *int64) {
		now := time.Now() //dsmlint:wallclock metrics only
		*acc += now.Sub(mark).Nanoseconds()
		mark = now
	}
	defer func() {
		// A window stashed right before the run ended still owes its replay
		// (for deterministic counters) and its key resolutions.
		m.applyPending()
		for _, fn := range m.hooks {
			fn()
		}
		tick(&m.stats.BarrierNs)
	}()
	for {
		stopped := false
		for _, s := range m.shards {
			if s.stopped {
				stopped = true
			}
		}
		if stopped {
			break
		}
		// One window: up to budget lookahead-sized sub-rounds in lockstep,
		// with only a placement pass between rounds and one barrier replay
		// at the end. Any envelope ends the window at that sub-round — its
		// arrival lies at or beyond the next round's start and must be
		// filed first — and so does any ordered action, which must run
		// before later events can observe its effects. Errors, stops and
		// the event cap end the window likewise.
		opened := false
		envs, acts := 0, 0
		errd := false
		for sub := 0; sub < m.budget; sub++ {
			begin, any := m.place()
			if !any {
				break
			}
			horizon := begin + m.window
			for i, s := range m.shards {
				if !m.active[i] {
					continue
				}
				if !m.joined[i] {
					s.beginWindow(horizon, m.winTag)
					m.joined[i] = true
				} else {
					s.extendWindow(horizon)
				}
			}
			opened = true
			m.stats.SubWindows++
			if sub > 0 {
				m.stats.Extensions++
			}
			tick(&m.stats.BarrierNs)
			m.inWindow.Store(true)
			m.release()
			if m.pending.live && !m.pending.replayed {
				m.replayPending() // overlapped with the sub-round's execution
			}
			m.await()
			m.inWindow.Store(false)
			tick(&m.stats.WindowNs)
			envs, acts = 0, 0
			for i, s := range m.shards {
				if !m.joined[i] {
					continue
				}
				envs += s.envs
				acts += len(s.actions)
				if s.runErr != nil || s.runPanic != nil || s.stopped {
					errd = true
				}
			}
			if envs > 0 || acts > 0 || errd || m.Events() > m.cfg.MaxEvents {
				break
			}
		}
		if !opened {
			break // every shard drained: the run is over
		}
		m.stats.Windows++
		for i, s := range m.shards {
			if m.joined[i] {
				s.endWindow()
			}
		}
		// The previous pipelined window's key resolutions land before this
		// window's replay can file anything against the affected events.
		m.applyPending()
		if pipe && envs == 0 && acts == 0 && !errd && m.winTag < provTagMax {
			// Nothing in this window's replay is observable — no envelopes,
			// no actions, no RNG — so it only assigns keys: overlap it with
			// the next window and apply the resolutions at the next barrier.
			m.stash()
		} else {
			m.replay()
			m.winTag = 0 // every provisional key is resolved again
			// The replay may have rewritten queued events' keys in place or
			// filed deliveries into any shard; drop every cached wheel peek.
			for _, s := range m.shards {
				s.queue.invalidatePeek()
			}
		}
		for i := range m.joined {
			m.joined[i] = false
		}
		for _, fn := range m.hooks {
			fn()
		}
		// Extension rule: a quiet window (no envelopes, no ordered actions)
		// doubles the next window's sub-round budget, up to the cap; any
		// cross-shard traffic resets it. A pure function of replayed state,
		// so window placement — and with it every fingerprint — is
		// reproducible.
		if envs == 0 && acts == 0 && !errd {
			m.budget *= 2
			if m.budget > m.extCap {
				m.budget = m.extCap
			}
		} else {
			m.budget = 1
		}
		if err := m.abortError(); err != nil {
			m.runErr = err
			break
		}
		if p := m.panicked(); p != nil {
			break // re-raised by finish, after the runners are released
		}
	}
	// Release the shard runner goroutines for good.
	if !m.inline {
		m.quit = true
		if m.spin {
			m.epoch.Add(1)
		} else {
			for i := range m.startCh {
				close(m.startCh[i])
			}
		}
	}
	return m.finish()
}

// stash takes the just-finished window's log buffers for a pipelined
// replay: the shards log the next window into their spares while the
// coordinator merges these.
func (m *MultiKernel) stash() {
	p := &m.pending
	p.live, p.replayed = true, false
	if p.logs == nil {
		p.logs = make([]windowLogs, len(m.shards))
		p.joined = make([]bool, len(m.shards))
		p.res = make([][]uint64, len(m.shards))
	}
	copy(p.joined, m.joined)
	for i, s := range m.shards {
		if !m.joined[i] {
			p.logs[i] = windowLogs{}
			continue
		}
		p.logs[i] = s.takeWindow()
		n := len(p.logs[i].pushLog)
		if cap(p.res[i]) < n {
			p.res[i] = make([]uint64, n)
		}
		p.res[i] = p.res[i][:n]
	}
	m.winTag++ // the stashed window's keys coexist with the next window's
}

// replayPending merges the stashed window's logs, buffering the key
// resolutions of still-queued events into pending.res (their structs are
// concurrently live when the merge overlaps the next window). By the stash
// preconditions there are no envelopes to file and no actions to run.
func (m *MultiKernel) replayPending() {
	m.beginLanes()
	for i := range m.shards {
		if m.pending.joined[i] {
			m.addLane(i, &m.pending.logs[i])
		}
	}
	m.mergeLanes(m.pending.res)
	m.pending.replayed = true
	m.stats.PipelinedReplays++
}

// applyPending lands a pipelined window's buffered key resolutions at a
// barrier (shards quiescent): still-queued events get their true keys
// rewritten in place, and events that executed during the overlapped window
// are patched through their shard's lateExec ledger — the record key in the
// *current* window's log is resolved and the recycled struct left alone.
func (m *MultiKernel) applyPending() {
	p := &m.pending
	if !p.live {
		return
	}
	if !p.replayed {
		m.replayPending()
	}
	for i, s := range m.shards {
		if !p.joined[i] {
			continue
		}
		logs := &p.logs[i]
		res := p.res[i]
		for _, le := range s.lateExec {
			if le.rec >= 0 {
				s.execLog[le.rec].key = res[le.idx]
			}
			logs.provState[le.idx] = provExecuted // consumed; struct recycled
		}
		s.lateExec = s.lateExec[:0]
		for idx, st := range logs.provState {
			if st == provPending {
				logs.pushLog[idx].e.seq = res[idx]
			}
		}
		s.returnWindow(p.logs[i])
		p.logs[i] = windowLogs{}
		// The e.seq rewrites touched queued events in place.
		s.queue.invalidatePeek()
	}
	p.live = false
}

// replay is the synchronous serial window barrier: merge the joined shards'
// execution records in exact (time, key) order and, walking that order,
// assign every logged push its true global key — rewriting still-queued
// events in place, resolving in-window-executed records, and filing
// deferred-send envelopes (which draw any latency randomness here, in
// serial order) — then run the ordered actions.
func (m *MultiKernel) replay() {
	m.beginLanes()
	for i, s := range m.shards {
		if m.joined[i] {
			m.addLane(i, &s.windowLogs)
		}
	}
	m.mergeLanes(nil)
}

// beginLanes/addLane assemble the merge lanes for one replay.
func (m *MultiKernel) beginLanes() { m.lanes = m.lanes[:0] }

func (m *MultiKernel) addLane(shard int, logs *windowLogs) {
	if len(logs.execLog) == 0 {
		return
	}
	rec := &logs.execLog[0]
	// A provisional key at a lane head is impossible: the pusher of an
	// in-window event sits earlier in the same shard's log and resolved it
	// when its own record was processed. That is also why lane-head
	// snapshots are stable while a record waits in the loser tree.
	if rec.key&provBit != 0 {
		panic("sim: unresolved provisional key at merge head")
	}
	m.lanes = append(m.lanes, mergeLane{logs: logs, shard: shard, at: rec.at, key: rec.key})
}

// processRec replays one record: assign true keys to its pushes (filing
// envelopes, resolving records, rewriting or buffering queued events) and,
// in synchronous mode, run its ordered actions.
func (m *MultiKernel) processRec(l *mergeLane, res [][]uint64) {
	logs := l.logs
	rec := &logs.execLog[l.pos]
	for i := rec.pushLo; i < rec.pushHi; i++ {
		key := m.nextKey()
		pe := &logs.pushLog[i]
		if pe.env != nil {
			m.filer(pe.env, key)
			m.stats.EnvelopesFiled++
			continue
		}
		switch st := logs.provState[i]; st {
		case provPending:
			if res != nil {
				res[l.shard][i] = key // event struct is concurrently live
			} else {
				pe.e.seq = key // still queued in the shard's wheel
			}
		case provExecuted:
			// Ran inside the window without pushing anything: the key is
			// consumed (the serial kernel assigned one) but nothing survives
			// to carry it.
		default:
			logs.execLog[st].key = key // resolve the in-window record
		}
	}
	if res == nil {
		for i := rec.actLo; i < rec.actHi; i++ {
			logs.actions[i]()
		}
	}
	m.stats.ReplayRecords++
}

// laneAdvance moves a lane to its next record, snapshotting its (at, key).
func (m *MultiKernel) laneAdvance(l *mergeLane) {
	l.pos++
	if l.pos >= len(l.logs.execLog) {
		l.done = true
		return
	}
	rec := &l.logs.execLog[l.pos]
	if rec.key&provBit != 0 {
		panic("sim: unresolved provisional key at merge head")
	}
	l.at, l.key = rec.at, rec.key
}

// laneBeats orders lanes by head (at, key); exhausted lanes lose to live
// ones. Keys are globally unique, so live lanes never tie.
func (m *MultiKernel) laneBeats(a, b int32) bool {
	la, lb := &m.lanes[a], &m.lanes[b]
	if la.done || lb.done {
		return !la.done && lb.done
	}
	if la.at != lb.at {
		return la.at < lb.at
	}
	return la.key < lb.key
}

// ltBuild builds the loser tree bottom-up over M lanes (conceptual leaves
// at positions M..2M-1, lane j at M+j; internal node x stores the loser of
// its match) and returns the overall winner.
func (m *MultiKernel) ltBuild(M int) int {
	tree, win := m.ltree, m.lwin
	for x := M - 1; x >= 1; x-- {
		var a, b int32
		if 2*x >= M {
			a = int32(2*x - M)
		} else {
			a = win[2*x]
		}
		if 2*x+1 >= M {
			b = int32(2*x + 1 - M)
		} else {
			b = win[2*x+1]
		}
		if m.laneBeats(b, a) {
			a, b = b, a
		}
		win[x], tree[x] = a, b
	}
	return int(win[1])
}

// ltUpdate replays lane w's matches from its leaf to the root after its
// head advanced, and returns the new overall winner.
func (m *MultiKernel) ltUpdate(M, w int) int {
	cur := int32(w)
	for x := (M + w) / 2; x >= 1; x /= 2 {
		if m.laneBeats(m.ltree[x], cur) {
			m.ltree[x], cur = cur, m.ltree[x]
		}
	}
	return int(cur)
}

// ltSecond returns the best lane among the losers on w's root path — the
// true runner-up (any lane not on the path lost to some lane that is), and
// therefore the threshold for consuming a run of records from w without
// touching the tree.
func (m *MultiKernel) ltSecond(M, w int) int {
	best := int32(-1)
	for x := (M + w) / 2; x >= 1; x /= 2 {
		if best < 0 || m.laneBeats(m.ltree[x], best) {
			best = m.ltree[x]
		}
	}
	return int(best)
}

// mergeLanes walks the K-way merge of the assembled lanes in exact
// (time, key) order, processing every record. A loser tree picks the
// winning lane in O(log K), and per-shard run detection consumes
// consecutive records of the winning lane while they stay below the
// runner-up's head — O(1) per record on runny inputs (a shard's records
// within one instant, or one shard dominating a quiet stretch) — replacing
// the old O(K)-per-record best-scan.
func (m *MultiKernel) mergeLanes(res [][]uint64) {
	M := len(m.lanes)
	switch M {
	case 0:
		return
	case 1:
		l := &m.lanes[0]
		for !l.done {
			m.processRec(l, res)
			m.laneAdvance(l)
		}
		return
	}
	total := 0
	for i := range m.lanes {
		total += len(m.lanes[i].logs.execLog)
	}
	w := m.ltBuild(M)
	for consumed := 0; consumed < total; {
		l := &m.lanes[w]
		sec := m.ltSecond(M, w)
		ls := &m.lanes[sec]
		for {
			m.processRec(l, res)
			consumed++
			m.laneAdvance(l)
			if l.done {
				break
			}
			if !ls.done && (l.at > ls.at || (l.at == ls.at && l.key > ls.key)) {
				break
			}
		}
		w = m.ltUpdate(M, w)
	}
}

// abortError collects a limit abort: MaxEvents against the cross-shard
// total, plus any shard-local error (MaxTime) — earliest trip time wins.
func (m *MultiKernel) abortError() error {
	var first *LimitError
	for _, s := range m.shards {
		if le, ok := s.runErr.(*LimitError); ok && (first == nil || le.Time < first.Time) {
			first = le
		}
	}
	if first != nil {
		return first
	}
	if total := m.Events(); total > m.cfg.MaxEvents {
		return &LimitError{What: "event", Events: total, Time: m.Now()}
	}
	return nil
}

// panicked returns the first (by shard order) captured event panic.
func (m *MultiKernel) panicked() any {
	for _, s := range m.shards {
		if s.runPanic != nil {
			return s.runPanic
		}
	}
	return nil
}

// finish assembles the run result exactly as Kernel.Run does: panic first,
// then the run error, then process errors in spawn order, then a deadlock
// report over every still-parked process.
func (m *MultiKernel) finish() error {
	if p := m.panicked(); p != nil {
		panic(p)
	}
	if m.runErr != nil {
		return m.runErr
	}
	for _, s := range m.shards {
		if s.runErr != nil {
			return s.runErr
		}
	}
	for _, p := range m.procs {
		if p.err != nil {
			return p.err
		}
	}
	for _, s := range m.shards {
		if s.stopped {
			return nil
		}
	}
	var blocked []string
	for _, s := range m.shards {
		for _, p := range s.procs {
			if p.state == ProcParked {
				blocked = append(blocked, fmt.Sprintf("%s: %s", p.Name, p.blockReason))
			}
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		return &DeadlockError{Time: m.Now(), Blocked: blocked}
	}
	return nil
}
