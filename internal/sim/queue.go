package sim

// Queue is an unbounded FIFO connecting simulation contexts: event handlers
// and processes push, processes block on Pop. It is the building block for
// NIC receive queues and mailboxes. Items and waiters live in ring buffers,
// so a steady-state put/get cycle performs no allocation and no slice
// reslicing.
type Queue[T any] struct {
	k         *Kernel
	name      string
	popReason string // precomputed Park label ("pop <name>")
	items     Ring[T]
	waiters   Ring[*Proc]
}

// NewQueue returns an empty queue labelled name (used in deadlock reports).
func NewQueue[T any](k *Kernel, name string) *Queue[T] {
	return &Queue[T]{k: k, name: name, popReason: "pop " + name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return q.items.Len() }

// Push appends v and wakes the longest-waiting process, if any. Safe from
// any simulation context.
func (q *Queue[T]) Push(v T) {
	q.items.PushBack(v)
	if q.waiters.Len() > 0 {
		q.waiters.PopFront().Ready()
	}
}

// TryPop removes and returns the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if q.items.Len() == 0 {
		return zero, false
	}
	return q.items.PopFront(), true
}

// Pop blocks the calling process until an item is available, then removes
// and returns the head item.
//
// A woken process re-checks emptiness (its item may have been taken by
// TryPop between wake and resume) and re-parks. On the way out it removes
// itself from the waiter ring explicitly. Push itself always dequeues the
// waiter it wakes, so within the queue's own API the scan finds nothing
// (and costs nothing: the ring is almost always empty here) — it guards
// the one path Push cannot see: a process woken from *outside* the queue
// (a stray Ready) that re-parked and now appears twice, where a stale
// entry would absorb a future wakeup meant for a live waiter.
func (q *Queue[T]) Pop(p *Proc) T {
	for q.items.Len() == 0 {
		q.waiters.PushBack(p)
		p.Park(q.popReason)
	}
	q.waiters.RemoveFunc(func(w *Proc) bool { return w == p })
	return q.items.PopFront()
}

// Waiters returns the number of processes parked in Pop (diagnostics).
func (q *Queue[T]) Waiters() int { return q.waiters.Len() }

// Semaphore is a counting semaphore for simulated processes.
type Semaphore struct {
	k         *Kernel
	name      string
	acqReason string
	permits   int
	waiters   Ring[*Proc]
}

// NewSemaphore returns a semaphore with the given initial permit count.
func NewSemaphore(k *Kernel, name string, permits int) *Semaphore {
	return &Semaphore{k: k, name: name, acqReason: "acquire " + name, permits: permits}
}

// Acquire blocks the calling process until a permit is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.permits <= 0 {
		s.waiters.PushBack(p)
		p.Park(s.acqReason)
	}
	s.waiters.RemoveFunc(func(w *Proc) bool { return w == p })
	s.permits--
}

// TryAcquire takes a permit without blocking; it reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.permits <= 0 {
		return false
	}
	s.permits--
	return true
}

// Release returns a permit and wakes one waiter.
func (s *Semaphore) Release() {
	s.permits++
	if s.waiters.Len() > 0 {
		s.waiters.PopFront().Ready()
	}
}

// WaitGroup lets a process wait for a set of simulated completions.
type WaitGroup struct {
	count   int
	waiters Ring[*Proc]
}

// Add increments the completion counter by n.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the counter and wakes waiters when it reaches zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if w.count == 0 {
		for w.waiters.Len() > 0 {
			w.waiters.PopFront().Ready()
		}
	}
}

// Wait blocks the calling process until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.waiters.PushBack(p)
		p.Park("waitgroup")
	}
	w.waiters.RemoveFunc(func(q *Proc) bool { return q == p })
}
