package sim

// Queue is an unbounded FIFO connecting simulation contexts: event handlers
// and processes push, processes block on Pop. It is the building block for
// NIC receive queues and mailboxes.
type Queue[T any] struct {
	k       *Kernel
	name    string
	items   []T
	waiters []*Proc
}

// NewQueue returns an empty queue labelled name (used in deadlock reports).
func NewQueue[T any](k *Kernel, name string) *Queue[T] {
	return &Queue[T]{k: k, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Push appends v and wakes the longest-waiting process, if any. Safe from
// any simulation context.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		w.Ready()
	}
}

// TryPop removes and returns the head item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Pop blocks the calling process until an item is available, then removes
// and returns the head item.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.Park("pop " + q.name)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// Semaphore is a counting semaphore for simulated processes.
type Semaphore struct {
	k       *Kernel
	name    string
	permits int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with the given initial permit count.
func NewSemaphore(k *Kernel, name string, permits int) *Semaphore {
	return &Semaphore{k: k, name: name, permits: permits}
}

// Acquire blocks the calling process until a permit is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.permits <= 0 {
		s.waiters = append(s.waiters, p)
		p.Park("acquire " + s.name)
	}
	s.permits--
}

// TryAcquire takes a permit without blocking; it reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.permits <= 0 {
		return false
	}
	s.permits--
	return true
}

// Release returns a permit and wakes one waiter.
func (s *Semaphore) Release() {
	s.permits++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		w.Ready()
	}
}

// WaitGroup lets a process wait for a set of simulated completions.
type WaitGroup struct {
	count   int
	waiters []*Proc
}

// Add increments the completion counter by n.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the counter and wakes waiters when it reaches zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			p.Ready()
		}
		w.waiters = nil
	}
}

// Wait blocks the calling process until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.count > 0 {
		w.waiters = append(w.waiters, p)
		p.Park("waitgroup")
	}
}
