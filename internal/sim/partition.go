package sim

import "fmt"

// PartitionPolicy selects how a MultiKernel's nodes are assigned to shards.
type PartitionPolicy int

// Partition policies.
const (
	// PartitionRoundRobin deals node i to shard i % K — even load for
	// workloads whose traffic is uniform across nodes.
	PartitionRoundRobin PartitionPolicy = iota
	// PartitionBlocks is the locality-aware policy: contiguous node ranges,
	// sized as a multiple of the workload's declared affinity-group size, so
	// communication-local structures (e.g. MigratoryGroups' lock-passing
	// rings, which occupy contiguous node ranges) stay inside one shard and
	// their traffic never crosses a window barrier.
	PartitionBlocks
)

// String names the policy for flags and tables.
func (p PartitionPolicy) String() string {
	if p == PartitionRoundRobin {
		return "round-robin"
	}
	return "blocks"
}

// PartitionPolicyFromName resolves a policy by flag value; "" selects the
// locality-aware default.
func PartitionPolicyFromName(name string) (PartitionPolicy, error) {
	switch name {
	case "", "blocks", "locality":
		return PartitionBlocks, nil
	case "round-robin", "rr":
		return PartitionRoundRobin, nil
	default:
		return 0, fmt.Errorf("sim: unknown partition policy %q (want blocks or round-robin)", name)
	}
}

// PartitionNodes assigns n nodes to k shards under the policy and returns
// shardOf[node]. group is the workload's affinity-group size hint for the
// blocks policy (nodes [g*group, (g+1)*group) communicate mostly among
// themselves); values < 1 mean no affinity. The result is always a total
// partition: every node gets exactly one shard in [0, k), and every shard
// is non-empty whenever k <= n.
func PartitionNodes(n, k int, policy PartitionPolicy, group int) []int {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	shardOf := make([]int, n)
	if policy == PartitionRoundRobin {
		for i := range shardOf {
			shardOf[i] = i % k
		}
		return shardOf
	}
	if group < 1 {
		group = 1
	}
	// Blocks: contiguous, balanced ranges. With a usable affinity hint
	// (every shard can hold at least one whole group) the unit of
	// distribution is the group, so no group ever straddles a shard
	// boundary — any partial tail group rides with the last shard. When the
	// hint is too coarse (k*group > n) it is dropped: every shard staying
	// non-empty outranks affinity — a split group's traffic crosses window
	// barriers, which is slower, never wrong.
	if group > 1 && k*group <= n {
		g := n / group
		for i := range shardOf {
			grp := i / group
			if grp >= g {
				grp = g - 1 // tail partial group joins the last whole group
			}
			shardOf[i] = grp * k / g
		}
		return shardOf
	}
	for i := range shardOf {
		shardOf[i] = i * k / n
	}
	return shardOf
}
