// Package shmem is a Cray-SHMEM-style API veneer over the DSM runtime. The
// paper notes that "the SHMEM library, developed by Cray, also implements
// one-sided operations ... the model and algorithms presented in this paper
// can easily be extended to shared memory systems" (§III-B); this package
// is that extension: symmetric objects (the same variable instantiated on
// every PE), shmem_put/shmem_get/shmem_add style operations addressed by
// (symmetric name, target PE), wait-until point-to-point synchronisation
// and all-PE collectives — all flowing through the detector-instrumented
// NIC layer.
package shmem
