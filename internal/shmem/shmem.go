package shmem

import (
	"fmt"

	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
)

// World owns the symmetric-heap naming for one cluster.
type World struct {
	c    *dsm.Cluster
	npes int
}

// NewWorld wraps a cluster (before Run).
func NewWorld(c *dsm.Cluster) *World {
	return &World{c: c, npes: c.Space().N()}
}

// instance is the per-PE shared variable backing a symmetric object.
func instance(name string, pe int) string { return fmt.Sprintf("sym:%s@%d", name, pe) }

// AllocSymmetric creates a symmetric object: `words` words in *every* PE's
// public memory under the same logical name (shmalloc).
func (w *World) AllocSymmetric(name string, words int) error {
	for pe := 0; pe < w.npes; pe++ {
		if err := w.c.Alloc(instance(name, pe), pe, words); err != nil {
			return err
		}
	}
	return nil
}

// PE is the per-process SHMEM context.
type PE struct {
	w *World
	p *dsm.Proc
}

// Attach binds a running process to the world. Call it at the top of the
// program function.
func (w *World) Attach(p *dsm.Proc) *PE { return &PE{w: w, p: p} }

// MyPE returns the calling PE's rank (shmem_my_pe).
func (pe *PE) MyPE() int { return pe.p.ID() }

// NPEs returns the number of PEs (shmem_n_pes).
func (pe *PE) NPEs() int { return pe.w.npes }

// Put writes vals into target's instance of the symmetric object
// (shmem_put: one-sided, target not involved).
func (pe *PE) Put(name string, off int, target int, vals ...memory.Word) error {
	return pe.p.Put(instance(name, target), off, vals...)
}

// Get reads count words from source's instance (shmem_get).
func (pe *PE) Get(name string, off, count, source int) ([]memory.Word, error) {
	return pe.p.Get(instance(name, source), off, count)
}

// GetWord reads one word from source's instance.
func (pe *PE) GetWord(name string, off, source int) (memory.Word, error) {
	return pe.p.GetWord(instance(name, source), off)
}

// Add atomically adds delta to target's instance (shmem_long_add).
func (pe *PE) Add(name string, off, target int, delta memory.Word) (memory.Word, error) {
	return pe.p.FetchAdd(instance(name, target), off, delta)
}

// Cswap atomically compare-and-swaps on target's instance
// (shmem_long_cswap); it returns the previous value.
func (pe *PE) Cswap(name string, off, target int, expect, repl memory.Word) (memory.Word, error) {
	old, _, err := pe.p.CompareAndSwap(instance(name, target), off, expect, repl)
	return old, err
}

// BarrierAll synchronises every PE (shmem_barrier_all).
func (pe *PE) BarrierAll() { pe.p.Barrier() }

// Fence and Quiet order one-sided operations. The runtime's put/get are
// blocking (remotely complete before returning), so both are satisfied
// trivially; they exist for API fidelity and forward portability.
func (pe *PE) Fence() {}

// Quiet — see Fence.
func (pe *PE) Quiet() {}

// Compare conditions for WaitUntil (shmem_wait_until).
type Cmp int

// Comparison operators.
const (
	CmpEQ Cmp = iota
	CmpNE
	CmpGT
	CmpGE
	CmpLT
	CmpLE
)

func (c Cmp) holds(a, b memory.Word) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	case CmpLT:
		return a < b
	default:
		return a <= b
	}
}

// WaitUntil polls the *local* instance of the symmetric object until the
// condition holds (shmem_wait_until). Peers signal by putting into this
// PE's instance.
func (pe *PE) WaitUntil(name string, off int, cmp Cmp, value memory.Word) error {
	for {
		v, err := pe.p.GetWord(instance(name, pe.MyPE()), off)
		if err != nil {
			return err
		}
		if cmp.holds(v, value) {
			return nil
		}
		pe.p.Sleep(2 * sim.Microsecond)
	}
}

// SumToAll reduces each PE's value and leaves the total visible to all
// (shmem_longlong_sum_to_all over a 1-word symmetric work array). The
// symmetric object must have at least 2 words: word 0 is the contribution,
// word 1 receives the result.
func (pe *PE) SumToAll(name string, value memory.Word) (memory.Word, error) {
	if err := pe.Put(name, 0, pe.MyPE(), value); err != nil {
		return 0, err
	}
	pe.BarrierAll()
	if pe.MyPE() == 0 {
		var total memory.Word
		for src := 0; src < pe.NPEs(); src++ {
			v, err := pe.GetWord(name, 0, src)
			if err != nil {
				return 0, err
			}
			total += v
		}
		for dst := 0; dst < pe.NPEs(); dst++ {
			if err := pe.Put(name, 1, dst, total); err != nil {
				return 0, err
			}
		}
	}
	pe.BarrierAll()
	return pe.GetWord(name, 1, pe.MyPE())
}
