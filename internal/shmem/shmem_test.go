package shmem

import (
	"fmt"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
)

func world(t *testing.T, procs int, det core.Detector) (*dsm.Cluster, *World) {
	t.Helper()
	c, err := dsm.New(dsm.Config{Procs: procs, Seed: 1, RDMA: rdma.DefaultConfig(det, nil)})
	if err != nil {
		t.Fatal(err)
	}
	return c, NewWorld(c)
}

func TestSymmetricAllocOnEveryPE(t *testing.T) {
	c, w := world(t, 3, nil)
	if err := w.AllocSymmetric("buf", 4); err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < 3; pe++ {
		a, err := c.Space().Lookup(instance("buf", pe))
		if err != nil {
			t.Fatalf("PE %d missing instance: %v", pe, err)
		}
		if a.Home != pe || a.Len != 4 {
			t.Fatalf("PE %d instance misplaced: %+v", pe, a)
		}
	}
}

func TestPutGetAcrossPEs(t *testing.T) {
	c, w := world(t, 3, core.NewExactVWDetector())
	if err := w.AllocSymmetric("x", 2); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		pe := w.Attach(p)
		// Each PE writes its rank into its right neighbour's instance.
		right := (pe.MyPE() + 1) % pe.NPEs()
		if err := pe.Put("x", 0, right, memory.Word(pe.MyPE()+100)); err != nil {
			return err
		}
		pe.BarrierAll()
		// Everyone reads its own instance: must hold the left neighbour.
		v, err := pe.GetWord("x", 0, pe.MyPE())
		if err != nil {
			return err
		}
		left := (pe.MyPE() + pe.NPEs() - 1) % pe.NPEs()
		if v != memory.Word(left+100) {
			return fmt.Errorf("PE %d read %d, want %d", pe.MyPE(), v, left+100)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("disjoint neighbour writes raced: %v", res.Races)
	}
}

func TestWaitUntilPingPong(t *testing.T) {
	c, w := world(t, 2, nil)
	if err := w.AllocSymmetric("flag", 1); err != nil {
		t.Fatal(err)
	}
	if err := w.AllocSymmetric("data", 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		pe := w.Attach(p)
		if pe.MyPE() == 0 {
			// Producer: write data into PE1, then raise PE1's flag.
			if err := pe.Put("data", 0, 1, 777); err != nil {
				return err
			}
			return pe.Put("flag", 0, 1, 1)
		}
		// Consumer: wait for its local flag, then read its local data.
		if err := pe.WaitUntil("flag", 0, CmpEQ, 1); err != nil {
			return err
		}
		v, err := pe.GetWord("data", 0, 1)
		if err != nil {
			return err
		}
		if v != 777 {
			return fmt.Errorf("consumer read %d", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitUntilComparators(t *testing.T) {
	cases := []struct {
		cmp  Cmp
		a, b memory.Word
		want bool
	}{
		{CmpEQ, 3, 3, true}, {CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true}, {CmpNE, 3, 3, false},
		{CmpGT, 4, 3, true}, {CmpGT, 3, 3, false},
		{CmpGE, 3, 3, true}, {CmpGE, 2, 3, false},
		{CmpLT, 2, 3, true}, {CmpLT, 3, 3, false},
		{CmpLE, 3, 3, true}, {CmpLE, 4, 3, false},
	}
	for _, tc := range cases {
		if got := tc.cmp.holds(tc.a, tc.b); got != tc.want {
			t.Errorf("cmp %d holds(%d,%d) = %v, want %v", tc.cmp, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestAtomicsOnSymmetric(t *testing.T) {
	c, w := world(t, 3, nil)
	if err := w.AllocSymmetric("ctr", 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		pe := w.Attach(p)
		for i := 0; i < 5; i++ {
			if _, err := pe.Add("ctr", 0, 0, 1); err != nil {
				return err
			}
		}
		pe.BarrierAll()
		if pe.MyPE() == 0 {
			v, err := pe.GetWord("ctr", 0, 0)
			if err != nil {
				return err
			}
			if v != 15 {
				return fmt.Errorf("counter = %d, want 15", v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestCswap(t *testing.T) {
	c, w := world(t, 2, nil)
	if err := w.AllocSymmetric("lockish", 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		pe := w.Attach(p)
		if pe.MyPE() != 0 {
			return nil
		}
		old, err := pe.Cswap("lockish", 0, 1, 0, 9)
		if err != nil || old != 0 {
			return fmt.Errorf("first cswap: %d %v", old, err)
		}
		old, err = pe.Cswap("lockish", 0, 1, 0, 5)
		if err != nil || old != 9 {
			return fmt.Errorf("second cswap must fail with 9: %d %v", old, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestSumToAll(t *testing.T) {
	const n = 4
	c, w := world(t, n, core.NewExactVWDetector())
	if err := w.AllocSymmetric("red", 2); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		pe := w.Attach(p)
		total, err := pe.SumToAll("red", memory.Word(pe.MyPE()+1))
		if err != nil {
			return err
		}
		if total != 1+2+3+4 {
			return fmt.Errorf("PE %d total = %d, want 10", pe.MyPE(), total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("sum_to_all raced: %v", res.Races)
	}
}

func TestConcurrentPutsToSamePERace(t *testing.T) {
	c, w := world(t, 3, core.NewExactVWDetector())
	if err := w.AllocSymmetric("tgt", 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		pe := w.Attach(p)
		if pe.MyPE() == 0 {
			return nil
		}
		return pe.Put("tgt", 0, 0, memory.Word(pe.MyPE()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("two PEs putting to PE0's instance must race")
	}
}

func TestFenceAndQuietAreCallable(t *testing.T) {
	c, w := world(t, 1, nil)
	if err := w.AllocSymmetric("z", 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		pe := w.Attach(p)
		if err := pe.Put("z", 0, 0, 1); err != nil {
			return err
		}
		pe.Fence()
		pe.Quiet()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}
