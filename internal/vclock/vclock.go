package vclock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Order is the result of comparing two vector clocks under the Mattern
// partial order.
type Order int

// The four possible outcomes of Compare.
const (
	// Equal means both clocks are identical component-wise.
	Equal Order = iota
	// Before means the first clock happens-before the second (≤ everywhere,
	// < somewhere).
	Before
	// After means the second clock happens-before the first.
	After
	// Concurrent means neither ordering holds: the events are causally
	// unrelated. Corollary 1 of the paper: a concurrent pair that involves a
	// write is a race condition.
	Concurrent
)

// String returns a human-readable name for the order.
func (o Order) String() string {
	switch o {
	case Equal:
		return "equal"
	case Before:
		return "before"
	case After:
		return "after"
	case Concurrent:
		return "concurrent"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// VC is a vector clock over a fixed number of processes. The zero-length
// clock is valid and compares Equal to itself.
//
// Component i counts the events observed from process i. The paper stores
// one general-purpose clock V and one write clock W per shared memory area.
type VC []uint64

// New returns a zeroed vector clock for n processes.
func New(n int) VC {
	if n < 0 {
		panic("vclock: negative size")
	}
	return make(VC, n)
}

// Len returns the number of components.
func (v VC) Len() int { return len(v) }

// Copy returns an independent copy of v.
func (v VC) Copy() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// CopyInto copies v into dst, reusing dst's storage when its capacity
// suffices, and returns the (possibly re-grown) destination. A nil dst
// behaves like Copy. This is the allocation-free variant the detection hot
// path uses to recycle scratch buffers across accesses.
func (v VC) CopyInto(dst VC) VC {
	if cap(dst) < len(v) {
		dst = make(VC, len(v))
	}
	dst = dst[:len(v)]
	copy(dst, v)
	return dst
}

// MergeInto stores max(a, b) into dst (Algorithm 4 without mutating either
// input), reusing dst's storage when possible, and returns the destination.
// dst may alias a or b.
func MergeInto(dst, a, b VC) VC {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vclock: merge size mismatch %d != %d", len(a), len(b)))
	}
	if cap(dst) < len(a) {
		dst = make(VC, len(a))
	}
	dst = dst[:len(a)]
	for i := range a {
		if a[i] >= b[i] {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
	return dst
}

// MergeAndCompare folds o into v (v = max(v, o), Algorithm 4) and returns
// the order o held against v's *previous* value (Algorithm 3). Fusing the
// two walks halves the passes the detector makes per access: the race check
// and the clock update read the same components.
func (v VC) MergeAndCompare(o VC) Order {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: compare size mismatch %d != %d", len(v), len(o)))
	}
	less, greater := false, false
	for i, x := range o {
		switch {
		case x < v[i]:
			less = true
		case x > v[i]:
			greater = true
			v[i] = x
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Tick increments component i — the paper's update_local_clock performed by
// process P_i before every event.
func (v VC) Tick(i int) {
	v[i]++
}

// Merge sets v to the component-wise maximum of v and o (Algorithm 4,
// max_clock). Clocks of different lengths cannot be merged.
func (v VC) Merge(o VC) {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: merge size mismatch %d != %d", len(v), len(o)))
	}
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Merged returns a fresh clock equal to max(v, o) without mutating either.
func Merged(v, o VC) VC {
	c := v.Copy()
	c.Merge(o)
	return c
}

// Compare classifies the pair (v, o) under the Mattern partial order.
//
// The paper's Algorithm 3 writes the test with strict "<" on every
// component; Lemma 1 (Mattern's Theorem 10) actually requires the standard
// order: v < o iff v ≤ o component-wise and v ≠ o. That is what we implement;
// DESIGN.md records the deviation.
func Compare(v, o VC) Order {
	if len(v) != len(o) {
		panic(fmt.Sprintf("vclock: compare size mismatch %d != %d", len(v), len(o)))
	}
	less, greater := false, false
	for i := range v {
		switch {
		case v[i] < o[i]:
			less = true
		case v[i] > o[i]:
			greater = true
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// HappensBefore reports whether v happened-before o (strictly).
func HappensBefore(v, o VC) bool { return Compare(v, o) == Before }

// ConcurrentWith reports whether v and o are causally unrelated. Per
// Corollary 1 this is the race predicate once a write is involved.
func ConcurrentWith(v, o VC) bool { return Compare(v, o) == Concurrent }

// Dominates reports v ≥ o component-wise (o happened-before-or-equal v).
// The detector's check "incoming clock dominates the stored clock" uses this.
func (v VC) Dominates(o VC) bool {
	ord := Compare(v, o)
	return ord == After || ord == Equal
}

// IsZero reports whether every component is zero.
func (v VC) IsZero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Sum returns the sum of all components — a cheap progress metric used by
// the statistics harness.
func (v VC) Sum() uint64 {
	var s uint64
	for _, x := range v {
		s += x
	}
	return s
}

// String renders the clock the way the paper's figures do for small values:
// "110" for (1,1,0) when every component is a single digit, otherwise a
// bracketed list "[12 3 0]".
func (v VC) String() string {
	compact := true
	for _, x := range v {
		if x > 9 {
			compact = false
			break
		}
	}
	var b strings.Builder
	if compact {
		for _, x := range v {
			fmt.Fprintf(&b, "%d", x)
		}
		return b.String()
	}
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", x)
	}
	b.WriteByte(']')
	return b.String()
}

// WireSize returns the number of bytes the clock occupies in the fixed
// binary encoding. Experiment E-T1 uses this to measure the storage overhead
// discussed in §IV-C/§V-A.
func (v VC) WireSize() int { return WireSizeFor(len(v)) }

// WireSizeFor returns the fixed-encoding wire size of an n-component clock
// without building one — the single definition transport accounting that
// cannot see a clock value (e.g. covered-absorb elision) must share.
func WireSizeFor(n int) int { return 2 + 8*n }

// MarshalBinary encodes the clock as a uint16 length followed by big-endian
// uint64 components.
func (v VC) MarshalBinary() ([]byte, error) {
	if len(v) > 0xFFFF {
		return nil, errors.New("vclock: too many components")
	}
	return v.AppendBinary(make([]byte, 0, v.WireSize())), nil
}

// AppendBinary appends the fixed binary encoding of v (the MarshalBinary
// format) to dst and returns the extended slice. Callers that recycle dst
// marshal without allocating; oversized clocks (> 65535 components) panic,
// matching New's contract that sizes are validated at construction.
func (v VC) AppendBinary(dst []byte) []byte {
	if len(v) > 0xFFFF {
		panic("vclock: too many components")
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(v)))
	for _, x := range v {
		dst = binary.BigEndian.AppendUint64(dst, x)
	}
	return dst
}

// UnmarshalBinary decodes a clock written by MarshalBinary.
func (v *VC) UnmarshalBinary(data []byte) error {
	if len(data) < 2 {
		return errors.New("vclock: short buffer")
	}
	n := int(binary.BigEndian.Uint16(data))
	if len(data) < 2+8*n {
		return errors.New("vclock: truncated clock")
	}
	c := make(VC, n)
	for i := range c {
		c[i] = binary.BigEndian.Uint64(data[2+8*i:])
	}
	*v = c
	return nil
}

// AppendDelta appends a delta encoding of v relative to base to dst and
// returns the extended slice. Components equal to the base are skipped;
// each changed component is written as (uvarint index, uvarint value).
// This is the optimised wire format measured in the E-T2 ablation.
func (v VC) AppendDelta(dst []byte, base VC) []byte {
	if len(base) != len(v) {
		panic("vclock: delta base size mismatch")
	}
	var changed uint64
	for i := range v {
		if v[i] != base[i] {
			changed++
		}
	}
	dst = binary.AppendUvarint(dst, changed)
	for i := range v {
		if v[i] != base[i] {
			dst = binary.AppendUvarint(dst, uint64(i))
			dst = binary.AppendUvarint(dst, v[i])
		}
	}
	return dst
}

// DeltaSize returns len(v.AppendDelta(nil, base)) without building the
// encoding — the wire-byte accounting path charges delta bytes per message
// and must not allocate per message to do so.
func (v VC) DeltaSize(base VC) int {
	if len(base) != len(v) {
		panic("vclock: delta base size mismatch")
	}
	var changed uint64
	size := 0
	for i := range v {
		if v[i] != base[i] {
			changed++
			size += uvarintLen(uint64(i)) + uvarintLen(v[i])
		}
	}
	return uvarintLen(changed) + size
}

// uvarintLen is the number of bytes binary.AppendUvarint emits for x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeDelta decodes a delta produced by AppendDelta on top of base,
// returning the reconstructed clock and the number of bytes consumed.
func DecodeDelta(data []byte, base VC) (VC, int, error) {
	out := base.Copy()
	pos := 0
	changed, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, 0, errors.New("vclock: bad delta header")
	}
	pos += n
	for k := uint64(0); k < changed; k++ {
		idx, n1 := binary.Uvarint(data[pos:])
		if n1 <= 0 {
			return nil, 0, errors.New("vclock: bad delta index")
		}
		pos += n1
		val, n2 := binary.Uvarint(data[pos:])
		if n2 <= 0 {
			return nil, 0, errors.New("vclock: bad delta value")
		}
		pos += n2
		if idx >= uint64(len(out)) {
			return nil, 0, fmt.Errorf("vclock: delta index %d out of range", idx)
		}
		out[idx] = val
	}
	return out, pos, nil
}

// Truncate returns a copy of v keeping only the first k components. It is
// deliberately *unsound* — Charron-Bost proved clocks must have at least n
// components — and exists only for the E-T9 ablation that demonstrates what
// breaks when the bound is violated.
func (v VC) Truncate(k int) VC {
	if k > len(v) {
		k = len(v)
	}
	c := make(VC, k)
	copy(c, v[:k])
	return c
}
