package vclock

import (
	"testing"
	"testing/quick"
)

func TestMatrixTickAndRow(t *testing.T) {
	m := NewMatrix(3)
	m.TickLocal(1)
	m.TickLocal(1)
	if got := m.Row(1).String(); got != "020" {
		t.Fatalf("row 1 = %s, want 020", got)
	}
	if !m.Row(0).IsZero() || !m.Row(2).IsZero() {
		t.Fatal("other rows must stay zero")
	}
}

func TestMatrixRowAliasesStorage(t *testing.T) {
	m := NewMatrix(2)
	r := m.Row(0)
	r.Tick(1)
	if m.Row(0)[1] != 1 {
		t.Fatal("Row must be a view into the matrix")
	}
	c := m.RowCopy(0)
	c.Tick(0)
	if m.Row(0)[0] != 0 {
		t.Fatal("RowCopy must not alias")
	}
}

func TestMatrixMergeMatrix(t *testing.T) {
	a, b := NewMatrix(2), NewMatrix(2)
	a.TickLocal(0) // a = [10 / 00]
	b.TickLocal(1) // b = [00 / 01]
	b.TickLocal(1) // b = [00 / 02]
	a.MergeMatrix(b)
	if a.Row(0).String() != "10" || a.Row(1).String() != "02" {
		t.Fatalf("merged matrix wrong:\n%s", a)
	}
}

func TestMatrixMergePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2).MergeMatrix(NewMatrix(3))
}

func TestMatrixMinKnown(t *testing.T) {
	// Simulate: P0 ticks 3 times and everyone eventually hears about 2 of
	// them; MinKnown(0) must be 2.
	m := NewMatrix(3)
	m.Row(0)[0] = 3
	m.Row(1)[0] = 2
	m.Row(2)[0] = 2
	if got := m.MinKnown(0); got != 2 {
		t.Fatalf("MinKnown(0) = %d, want 2", got)
	}
	if got := m.MinKnown(1); got != 0 {
		t.Fatalf("MinKnown(1) = %d, want 0", got)
	}
}

func TestMatrixMinKnownNeverExceedsOwnRow(t *testing.T) {
	f := func(vals [9]uint8) bool {
		m := NewMatrix(3)
		for i := range vals {
			m.m[i] = uint64(vals[i])
		}
		for c := 0; c < 3; c++ {
			mk := m.MinKnown(c)
			for r := 0; r < 3; r++ {
				if mk > m.Row(r)[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixCopyIndependent(t *testing.T) {
	m := NewMatrix(2)
	m.TickLocal(0)
	c := m.Copy()
	c.TickLocal(0)
	if m.Row(0)[0] != 1 || c.Row(0)[0] != 2 {
		t.Fatal("Copy must not alias")
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(2)
	m.TickLocal(0)
	if got := m.String(); got != "10\n00" {
		t.Fatalf("String = %q", got)
	}
}

func TestLamportClock(t *testing.T) {
	var l Lamport
	if l.Tick() != 1 {
		t.Fatal("first tick must be 1")
	}
	if l.Witness(10) != 11 {
		t.Fatalf("witness(10) = %d, want 11", l)
	}
	if l.Witness(3) != 12 {
		t.Fatalf("witness of older timestamp must still tick: %d", l)
	}
}

func TestLamportCannotDetectConcurrency(t *testing.T) {
	// Two causally unrelated events can get ordered scalar timestamps — the
	// reason the paper (§IV-A) needs vector clocks for detection.
	var p0, p1 Lamport
	e0 := p0.Tick() // event on P0
	e1 := p1.Tick() // concurrent event on P1
	_ = e1
	e1b := p1.Tick()
	if !(e0 < e1b) {
		t.Fatal("scalar clocks impose an order even on concurrent events")
	}
	// Whereas vector clocks keep them incomparable:
	v0, v1 := New(2), New(2)
	v0.Tick(0)
	v1.Tick(1)
	v1.Tick(1)
	if Compare(v0, v1) != Concurrent {
		t.Fatal("vector clocks must report concurrency")
	}
}
