package vclock

import "testing"

// The detection hot path leans on these primitives staying allocation-free
// in steady state (scratch buffers already at size); regressions here show
// up as per-access garbage in every detector.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(100, fn); avg != 0 {
		t.Errorf("%s allocates %.1f times per run, want 0", name, avg)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	const n = 64
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		a[i] = uint64(i)
		b[i] = uint64(n - i)
	}
	dst := New(n)
	scratch := New(n)
	buf := make([]byte, 0, a.WireSize())

	assertZeroAllocs(t, "Compare", func() { _ = Compare(a, b) })
	assertZeroAllocs(t, "MergeInto", func() { dst = MergeInto(dst, a, b) })
	assertZeroAllocs(t, "CopyInto", func() { scratch = a.CopyInto(scratch) })
	assertZeroAllocs(t, "MergeAndCompare", func() {
		scratch = a.CopyInto(scratch)
		_ = scratch.MergeAndCompare(b)
	})
	assertZeroAllocs(t, "AppendBinary", func() { buf = a.AppendBinary(buf[:0]) })
	assertZeroAllocs(t, "DeltaSize", func() { _ = a.DeltaSize(b) })
}

func TestCopyIntoGrowsAndAliases(t *testing.T) {
	src := VC{3, 1, 4, 1, 5}
	got := src.CopyInto(nil)
	if Compare(got, src) != Equal {
		t.Fatalf("CopyInto(nil) = %v, want %v", got, src)
	}
	got[0] = 99
	if src[0] == 99 {
		t.Fatal("CopyInto result aliases the source")
	}
	small := VC{7}
	grown := src.CopyInto(small)
	if Compare(grown, src) != Equal {
		t.Fatalf("CopyInto(small) = %v, want %v", grown, src)
	}
}

func TestMergeInto(t *testing.T) {
	a, b := VC{1, 5, 0}, VC{2, 3, 0}
	got := MergeInto(nil, a, b)
	want := VC{2, 5, 0}
	if Compare(got, want) != Equal {
		t.Fatalf("MergeInto = %v, want %v", got, want)
	}
	if Compare(a, VC{1, 5, 0}) != Equal || Compare(b, VC{2, 3, 0}) != Equal {
		t.Fatal("MergeInto mutated an input")
	}
	// dst aliasing an input must still be correct.
	aliased := MergeInto(a, a, b)
	if Compare(aliased, want) != Equal {
		t.Fatalf("MergeInto(a, a, b) = %v, want %v", aliased, want)
	}
}

func TestMergeAndCompareMatchesSeparateOps(t *testing.T) {
	cases := [][2]VC{
		{{1, 2, 3}, {1, 2, 3}},
		{{1, 2, 3}, {2, 3, 4}},
		{{2, 3, 4}, {1, 2, 3}},
		{{5, 0, 0}, {0, 0, 5}},
		{{0, 0, 0}, {0, 0, 0}},
		{{7, 1, 2}, {7, 2, 1}},
	}
	for _, tc := range cases {
		v, o := tc[0].Copy(), tc[1]
		wantOrder := Compare(o, v)
		wantMerged := Merged(v, o)
		gotOrder := v.MergeAndCompare(o)
		if gotOrder != wantOrder {
			t.Errorf("MergeAndCompare(%v, %v) order = %v, want %v", tc[0], o, gotOrder, wantOrder)
		}
		if Compare(v, wantMerged) != Equal {
			t.Errorf("MergeAndCompare(%v, %v) merged = %v, want %v", tc[0], o, v, wantMerged)
		}
	}
}

func TestAppendBinaryMatchesMarshal(t *testing.T) {
	for _, v := range []VC{{}, {1}, {0, 1 << 40, 7}} {
		want, err := v.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got := v.AppendBinary(nil)
		if string(got) != string(want) {
			t.Errorf("AppendBinary(%v) = %x, want %x", v, got, want)
		}
		if len(got) != v.WireSize() {
			t.Errorf("AppendBinary(%v) wrote %d bytes, WireSize says %d", v, len(got), v.WireSize())
		}
	}
}

func TestDeltaSizeMatchesAppendDelta(t *testing.T) {
	base := VC{0, 1000, 1 << 30, 3, 0}
	for _, v := range []VC{
		{0, 1000, 1 << 30, 3, 0},
		{1, 1000, 1 << 30, 3, 0},
		{128, 1001, 1 << 35, 4, 1 << 60},
	} {
		want := len(v.AppendDelta(nil, base))
		if got := v.DeltaSize(base); got != want {
			t.Errorf("DeltaSize(%v, %v) = %d, want %d", v, base, got, want)
		}
	}
}
