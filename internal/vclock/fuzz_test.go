package vclock

import (
	"encoding/binary"
	"testing"
)

// FuzzDeltaRoundTrip checks that any clock delta-encoded against any base
// decodes back to the original clock, consuming exactly the bytes written,
// and that DeltaSize agrees with the encoder.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1}, uint8(4))
	f.Add([]byte{}, []byte{}, uint8(1))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}, []byte{0, 0, 0, 0}, uint8(8))
	f.Fuzz(func(t *testing.T, rawV, rawBase []byte, n8 uint8) {
		n := int(n8%16) + 1
		mk := func(raw []byte) VC {
			c := New(n)
			for i := range c {
				var chunk [8]byte
				copy(chunk[:], raw[min(8*i, len(raw)):])
				c[i] = binary.LittleEndian.Uint64(chunk[:])
			}
			return c
		}
		v, base := mk(rawV), mk(rawBase)

		enc := v.AppendDelta(nil, base)
		if got := v.DeltaSize(base); got != len(enc) {
			t.Fatalf("DeltaSize = %d, encoder wrote %d bytes", got, len(enc))
		}
		// Trailing garbage must not be consumed.
		dec, used, err := DecodeDelta(append(enc, 0xAA, 0xBB), base)
		if err != nil {
			t.Fatalf("DecodeDelta failed on valid input: %v", err)
		}
		if used != len(enc) {
			t.Fatalf("DecodeDelta consumed %d bytes, encoder wrote %d", used, len(enc))
		}
		if Compare(dec, v) != Equal {
			t.Fatalf("round trip: got %v, want %v (base %v)", dec, v, base)
		}
	})
}

// FuzzDecodeDeltaRobust feeds arbitrary bytes to the decoder: it must either
// return an error or a well-formed clock, never panic or read out of range.
func FuzzDecodeDeltaRobust(f *testing.F) {
	f.Add([]byte{2, 0, 5, 1, 9}, uint8(3))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, n8 uint8) {
		base := New(int(n8 % 16))
		dec, used, err := DecodeDelta(data, base)
		if err != nil {
			return
		}
		if used < 0 || used > len(data) {
			t.Fatalf("DecodeDelta consumed %d of %d bytes", used, len(data))
		}
		if dec.Len() != base.Len() {
			t.Fatalf("decoded clock has %d components, base has %d", dec.Len(), base.Len())
		}
	})
}
