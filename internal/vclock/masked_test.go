package vclock

import (
	"bytes"
	"math/rand"
	"testing"
)

// randMasked builds a random masked clock of n components: sparse (few
// nonzero components), dense-valued, or dense-wrapped (nil mask), so the
// suite exercises every mask shape including saturation.
func randMasked(r *rand.Rand, n int) Masked {
	m := NewMasked(n)
	switch r.Intn(3) {
	case 0: // sparse
		for k := r.Intn(4); k > 0; k-- {
			i := r.Intn(n)
			m.V[i] = uint64(r.Intn(100))
			m.M.Set(i)
		}
	case 1: // dense values, exact mask
		for i := range m.V {
			if r.Intn(3) > 0 {
				m.V[i] = uint64(r.Intn(100))
				m.M.Set(i)
			}
		}
	default: // dense wrapper (nil mask)
		v := New(n)
		for i := range v {
			v[i] = uint64(r.Intn(100))
		}
		return Dense(v)
	}
	// Over-approximate sometimes: a set bit over a zero component is legal.
	if r.Intn(2) == 0 {
		m.M.Set(r.Intn(n))
	}
	return m
}

var maskedSizes = []int{1, 3, 63, 64, 65, 130, 256}

// TestMaskedObservationalEquivalence drives random operation sequences
// against a masked clock and a plain dense shadow and requires identical
// values and identical orders at every step — the contract that lets the
// detectors swap representations without moving a single verdict.
func TestMaskedObservationalEquivalence(t *testing.T) {
	for _, n := range maskedSizes {
		r := rand.New(rand.NewSource(int64(n)))
		m := NewMasked(n)
		shadow := New(n)
		var cp Masked // CopyInto target, reused to exercise buffer recycling
		for step := 0; step < 400; step++ {
			o := randMasked(r, n)
			oShadow := o.V.Copy()
			switch r.Intn(5) {
			case 0:
				i := r.Intn(n)
				m.Tick(i)
				shadow.Tick(i)
			case 1:
				m.Merge(o)
				shadow.Merge(oShadow)
			case 2:
				got := m.MergeAndCompare(o)
				want := shadow.MergeAndCompare(oShadow)
				if got != want {
					t.Fatalf("n=%d step %d: MergeAndCompare = %v, dense says %v", n, step, got, want)
				}
			case 3:
				got := m.Compare(o)
				want := Compare(shadow, oShadow)
				if got != want {
					t.Fatalf("n=%d step %d: Compare = %v, dense says %v", n, step, got, want)
				}
			case 4:
				cp = m.CopyInto(cp)
				if !bytes.Equal(vcBytes(cp.V), vcBytes(shadow)) {
					t.Fatalf("n=%d step %d: CopyInto diverged\n got %v\nwant %v", n, step, cp.V, shadow)
				}
				if !cp.CheckInvariant() {
					t.Fatalf("n=%d step %d: copy mask missed a nonzero component", n, step)
				}
			}
			if !bytes.Equal(vcBytes(m.V), vcBytes(shadow)) {
				t.Fatalf("n=%d step %d: values diverged\n got %v\nwant %v", n, step, m.V, shadow)
			}
			if !m.CheckInvariant() {
				t.Fatalf("n=%d step %d: mask invariant violated: %v / %b", n, step, m.V, m.M)
			}
			if got, want := m.DeltaSize(o), m.V.DeltaSize(oShadow); got != want {
				t.Fatalf("n=%d step %d: DeltaSize = %d, dense says %d", n, step, got, want)
			}
			if got, want := m.ConcurrentWith(o), ConcurrentWith(m.V, oShadow); got != want {
				t.Fatalf("n=%d step %d: ConcurrentWith = %v, dense says %v", n, step, got, want)
			}
			if got, want := m.Dominates(o), m.V.Dominates(oShadow); got != want {
				t.Fatalf("n=%d step %d: Dominates = %v, dense says %v", n, step, got, want)
			}
		}
	}
}

func vcBytes(v VC) []byte { return v.AppendBinary(nil) }

// TestMaskedSaturation pins the dense-fallback path: merging a dense
// (nil-mask) source saturates the target's mask, and operations keep
// matching the dense implementation afterwards.
func TestMaskedSaturation(t *testing.T) {
	const n = 130
	m := NewMasked(n)
	m.Tick(7)
	dense := New(n)
	for i := range dense {
		dense[i] = uint64(i % 5)
	}
	shadow := m.V.Copy()
	m.Merge(Dense(dense))
	shadow.Merge(dense)
	if !bytes.Equal(vcBytes(m.V), vcBytes(shadow)) {
		t.Fatalf("dense merge diverged: %v vs %v", m.V, shadow)
	}
	for w := range m.M {
		if m.M[w] != denseMaskWord(w, n) {
			t.Fatalf("mask word %d = %b after dense merge, want saturated", w, m.M[w])
		}
	}
	// Saturated masked clock must still agree with dense ops.
	o := NewMasked(n)
	o.Tick(2)
	if got, want := m.Compare(o), Compare(shadow, o.V); got != want {
		t.Fatalf("saturated Compare = %v, want %v", got, want)
	}
}

// TestMaskedCopyIntoReZeroes pins the subtle case: copying a sparse clock
// over a previously-denser destination must zero the blocks the source does
// not own.
func TestMaskedCopyIntoReZeroes(t *testing.T) {
	const n = 200
	big := NewMasked(n)
	for i := 0; i < n; i += 3 {
		big.V[i] = uint64(i + 1)
		big.M.Set(i)
	}
	small := NewMasked(n)
	small.Tick(5)
	dst := big.Copy()
	dst = small.CopyInto(dst)
	if !bytes.Equal(vcBytes(dst.V), vcBytes(small.V)) {
		t.Fatalf("CopyInto left stale components:\n got %v\nwant %v", dst.V, small.V)
	}
	if !dst.CheckInvariant() {
		t.Fatal("mask invariant violated after overwrite")
	}
}

// TestMaskedTickAllocFree verifies the hot mutators never allocate.
func TestMaskedTickAllocFree(t *testing.T) {
	m := NewMasked(256)
	o := NewMasked(256)
	o.Tick(3)
	if avg := testing.AllocsPerRun(100, func() {
		m.Tick(9)
		m.Merge(o)
		m.MergeAndCompare(o)
		_ = m.Compare(o)
	}); avg > 0 {
		t.Errorf("masked hot ops allocate %.2f/op, want 0", avg)
	}
}

// FuzzMaskedEquivalence feeds arbitrary operation scripts to the masked and
// dense implementations in lockstep — the representation-equivalence
// counterpart of the delta-codec round-trip fuzzers.
func FuzzMaskedEquivalence(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint8(130), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	f.Add(uint8(65), []byte{255, 0, 255, 0, 17})
	f.Fuzz(func(t *testing.T, size uint8, script []byte) {
		n := int(size)
		if n == 0 {
			n = 1
		}
		r := rand.New(rand.NewSource(int64(len(script))))
		m := NewMasked(n)
		shadow := New(n)
		for _, op := range script {
			o := randMasked(r, n)
			oShadow := o.V.Copy()
			switch op % 4 {
			case 0:
				m.Tick(int(op) % n)
				shadow.Tick(int(op) % n)
			case 1:
				m.Merge(o)
				shadow.Merge(oShadow)
			case 2:
				if got, want := m.MergeAndCompare(o), shadow.MergeAndCompare(oShadow); got != want {
					t.Fatalf("MergeAndCompare = %v, dense says %v", got, want)
				}
			case 3:
				if got, want := m.Compare(o), Compare(shadow, oShadow); got != want {
					t.Fatalf("Compare = %v, dense says %v", got, want)
				}
			}
			if !bytes.Equal(vcBytes(m.V), vcBytes(shadow)) {
				t.Fatalf("values diverged: %v vs %v", m.V, shadow)
			}
			if !m.CheckInvariant() {
				t.Fatal("mask invariant violated")
			}
		}
	})
}
