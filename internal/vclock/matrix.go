package vclock

import (
	"fmt"
	"strings"
)

// Matrix is the clock matrix V_Pi of §IV-B: each process maintains an n×n
// matrix that is its local view of global time. Row i is process P_i's own
// vector clock; row j (j ≠ i) is P_i's latest knowledge of P_j's vector
// clock. update_local_clock increments the diagonal element V[i][i].
//
// Matrix clocks subsume vector clocks; the extra rows give each process a
// bound on what every other process is known to know, which the runtime uses
// to garbage-collect race-report context and which §V-B's "new
// interpretations of distributed algorithms" alludes to.
type Matrix struct {
	n int
	m []uint64 // row-major n×n
}

// NewMatrix returns a zeroed n×n clock matrix.
func NewMatrix(n int) *Matrix {
	if n < 0 {
		panic("vclock: negative matrix size")
	}
	return &Matrix{n: n, m: make([]uint64, n*n)}
}

// N returns the number of processes the matrix covers.
func (m *Matrix) N() int { return m.n }

// Row returns row i as a VC backed by the matrix storage; mutating the
// returned clock mutates the matrix.
func (m *Matrix) Row(i int) VC {
	return VC(m.m[i*m.n : (i+1)*m.n])
}

// RowCopy returns an independent copy of row i.
func (m *Matrix) RowCopy(i int) VC { return m.Row(i).Copy() }

// Copy returns a deep copy of the matrix.
func (m *Matrix) Copy() *Matrix {
	c := NewMatrix(m.n)
	copy(c.m, m.m)
	return c
}

// TickLocal increments the diagonal element of owner — the paper's
// update_local_clock for process P_owner.
func (m *Matrix) TickLocal(owner int) {
	m.m[owner*m.n+owner]++
}

// MergeRow merges clock v into row j using component-wise max.
func (m *Matrix) MergeRow(j int, v VC) {
	m.Row(j).Merge(v)
}

// MergeMatrix merges every row of o into the corresponding row of m.
// This is the matrix-clock exchange rule: on receiving a message from P_j,
// P_i merges P_j's whole matrix, then merges row j into its own row i.
func (m *Matrix) MergeMatrix(o *Matrix) {
	if m.n != o.n {
		panic(fmt.Sprintf("vclock: matrix size mismatch %d != %d", m.n, o.n))
	}
	for i, x := range o.m {
		if x > m.m[i] {
			m.m[i] = x
		}
	}
}

// MinKnown returns, for process component c, the minimum over all rows of
// component c: a lower bound on what *every* process is known to have
// observed from process c. Events below this bound are globally known and
// their bookkeeping can be discarded.
func (m *Matrix) MinKnown(c int) uint64 {
	if m.n == 0 {
		return 0
	}
	min := m.m[c]
	for r := 1; r < m.n; r++ {
		if v := m.m[r*m.n+c]; v < min {
			min = v
		}
	}
	return min
}

// String renders the matrix row per line, using VC formatting.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.n; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(m.Row(i).String())
	}
	return b.String()
}

// Lamport is a scalar Lamport clock (§III-C cites [12]); it orders events
// totally but cannot *detect* concurrency, which is why the paper needs
// vector clocks. It exists here to power tests demonstrating that gap.
type Lamport uint64

// Tick advances the clock for a local event and returns the new value.
func (l *Lamport) Tick() Lamport {
	*l++
	return *l
}

// Witness merges a received timestamp then ticks, per Lamport's receive rule.
func (l *Lamport) Witness(o Lamport) Lamport {
	if o > *l {
		*l = o
	}
	return l.Tick()
}
