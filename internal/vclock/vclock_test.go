package vclock

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(5)
	if !v.IsZero() {
		t.Fatalf("New(5) = %v, want all zeros", v)
	}
	if v.Len() != 5 {
		t.Fatalf("Len = %d, want 5", v.Len())
	}
}

func TestTickAndSum(t *testing.T) {
	v := New(3)
	v.Tick(0)
	v.Tick(2)
	v.Tick(2)
	if got := v.Sum(); got != 3 {
		t.Fatalf("Sum = %d, want 3", got)
	}
	if v[0] != 1 || v[1] != 0 || v[2] != 2 {
		t.Fatalf("after ticks v = %v", v)
	}
}

func TestCopyIsIndependent(t *testing.T) {
	v := VC{1, 2, 3}
	c := v.Copy()
	c.Tick(0)
	if v[0] != 1 {
		t.Fatalf("Copy aliases original: %v", v)
	}
}

func TestCompareTable(t *testing.T) {
	cases := []struct {
		a, b VC
		want Order
	}{
		{VC{}, VC{}, Equal},
		{VC{0, 0}, VC{0, 0}, Equal},
		{VC{1, 0}, VC{1, 0}, Equal},
		{VC{0, 0}, VC{1, 0}, Before},
		{VC{1, 0}, VC{1, 1}, Before},
		{VC{1, 1}, VC{1, 0}, After},
		{VC{2, 0}, VC{0, 0}, After},
		{VC{1, 0}, VC{0, 1}, Concurrent},
		// The pair from Fig. 5(a): 110 × 001.
		{VC{1, 1, 0}, VC{0, 0, 1}, Concurrent},
		// The pair from Fig. 5(b): 132 arrives at a node holding 130.
		{VC{1, 3, 2}, VC{1, 3, 0}, After},
		// The pair from Fig. 5(c): 2022 × 1100.
		{VC{2, 0, 2, 2}, VC{1, 1, 0, 0}, Concurrent},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareSymmetry(t *testing.T) {
	inv := map[Order]Order{Equal: Equal, Concurrent: Concurrent, Before: After, After: Before}
	f := func(a8, b8 [6]uint8) bool {
		a, b := New(6), New(6)
		for i := range a8 {
			a[i], b[i] = uint64(a8[i]%4), uint64(b8[i]%4)
		}
		return Compare(b, a) == inv[Compare(a, b)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComparePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare on mismatched sizes did not panic")
		}
	}()
	Compare(VC{1}, VC{1, 2})
}

func TestMergeIsLUB(t *testing.T) {
	// Property: merged clock dominates both inputs and is the least such
	// clock (component-wise max).
	f := func(a8, b8 [5]uint8) bool {
		a, b := New(5), New(5)
		for i := range a8 {
			a[i], b[i] = uint64(a8[i]), uint64(b8[i])
		}
		m := Merged(a, b)
		if !m.Dominates(a) || !m.Dominates(b) {
			return false
		}
		for i := range m {
			if m[i] != max(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIdempotentCommutativeAssociative(t *testing.T) {
	f := func(a8, b8, c8 [4]uint8) bool {
		a, b, c := New(4), New(4), New(4)
		for i := range a8 {
			a[i], b[i], c[i] = uint64(a8[i]), uint64(b8[i]), uint64(c8[i])
		}
		if !reflect.DeepEqual(Merged(a, a), a) {
			return false
		}
		if !reflect.DeepEqual(Merged(a, b), Merged(b, a)) {
			return false
		}
		return reflect.DeepEqual(Merged(Merged(a, b), c), Merged(a, Merged(b, c)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHappensBeforeTransitivity(t *testing.T) {
	// Build chains by ticking/merging and verify transitivity of the order.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 4
		a := New(n)
		for i := 0; i < rng.Intn(5); i++ {
			a.Tick(rng.Intn(n))
		}
		b := a.Copy()
		b.Tick(rng.Intn(n))
		c := b.Copy()
		c.Tick(rng.Intn(n))
		if !HappensBefore(a, b) || !HappensBefore(b, c) {
			t.Fatalf("chain construction broken: %v %v %v", a, b, c)
		}
		if !HappensBefore(a, c) {
			t.Fatalf("transitivity violated: %v < %v < %v but not %v < %v", a, b, c, a, c)
		}
	}
}

func TestConcurrentWithAndDominates(t *testing.T) {
	a, b := VC{1, 0}, VC{0, 1}
	if !ConcurrentWith(a, b) {
		t.Fatal("expected concurrency")
	}
	if a.Dominates(b) || b.Dominates(a) {
		t.Fatal("concurrent clocks must not dominate each other")
	}
	m := Merged(a, b)
	if !m.Dominates(a) || !m.Dominates(b) {
		t.Fatal("merge must dominate both")
	}
	if !a.Dominates(a.Copy()) {
		t.Fatal("Dominates must be reflexive")
	}
}

func TestStringFormats(t *testing.T) {
	if got := (VC{1, 1, 0}).String(); got != "110" {
		t.Errorf("compact String = %q, want 110", got)
	}
	if got := (VC{12, 3, 0}).String(); got != "[12 3 0]" {
		t.Errorf("wide String = %q, want [12 3 0]", got)
	}
	if got := (VC{}).String(); got != "" {
		t.Errorf("empty String = %q, want empty", got)
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{
		Equal: "equal", Before: "before", After: "after", Concurrent: "concurrent", Order(42): "Order(42)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Order(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(a8 [9]uint8) bool {
		v := New(9)
		for i := range a8 {
			v[i] = uint64(a8[i]) << (uint(i) % 5 * 8)
		}
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		if len(data) != v.WireSize() {
			return false
		}
		var got VC
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		return reflect.DeepEqual(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	var v VC
	if err := v.UnmarshalBinary(nil); err == nil {
		t.Error("nil buffer should fail")
	}
	if err := v.UnmarshalBinary([]byte{0, 3, 1, 2}); err == nil {
		t.Error("truncated buffer should fail")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	f := func(base8, next8 [8]uint8) bool {
		base, next := New(8), New(8)
		for i := range base8 {
			base[i] = uint64(base8[i])
			// Keep most components identical to exercise the sparse path.
			if next8[i] < 64 {
				next[i] = base[i]
			} else {
				next[i] = uint64(next8[i])
			}
		}
		enc := next.AppendDelta(nil, base)
		got, n, err := DecodeDelta(enc, base)
		if err != nil || n != len(enc) {
			return false
		}
		return reflect.DeepEqual(got, next)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaSmallerThanFullForSparseChange(t *testing.T) {
	base := New(64)
	next := base.Copy()
	next.Tick(3)
	enc := next.AppendDelta(nil, base)
	if len(enc) >= next.WireSize() {
		t.Fatalf("delta %d bytes, full %d bytes — delta should win for one change", len(enc), next.WireSize())
	}
}

func TestDecodeDeltaErrors(t *testing.T) {
	base := New(4)
	if _, _, err := DecodeDelta(nil, base); err == nil {
		t.Error("empty delta should fail")
	}
	// Header says one change, then truncated index.
	if _, _, err := DecodeDelta([]byte{1}, base); err == nil {
		t.Error("truncated index should fail")
	}
	// Header, index 0, then truncated value.
	if _, _, err := DecodeDelta([]byte{1, 0}, base); err == nil {
		t.Error("truncated value should fail")
	}
	// Out-of-range index.
	if _, _, err := DecodeDelta([]byte{1, 9, 1}, base); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestTruncateLosesConcurrencyInformation(t *testing.T) {
	// The E-T9 ablation in miniature: clocks that differ only beyond the
	// truncation point become falsely ordered/equal — exactly why
	// Charron-Bost's bound says size must be ≥ n.
	a := VC{1, 0, 0, 1}
	b := VC{1, 0, 1, 0}
	if Compare(a, b) != Concurrent {
		t.Fatal("full clocks must be concurrent")
	}
	ta, tb := a.Truncate(2), b.Truncate(2)
	if Compare(ta, tb) != Equal {
		t.Fatalf("truncated clocks compare %v, want (falsely) equal", Compare(ta, tb))
	}
	if got := a.Truncate(10); got.Len() != 4 {
		t.Fatalf("Truncate beyond length: len=%d, want 4", got.Len())
	}
}
