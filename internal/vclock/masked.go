package vclock

import "math/bits"

// Mask is a word-granular occupancy bitmap over a clock's components: bit
// i&63 of word i>>6 covers component i. A set bit means the component *may*
// be nonzero; a clear bit guarantees it is zero. The mask is a sound
// over-approximation — operations use it only to skip provably-zero spans,
// never to decide values — so masked operations are observationally
// identical to their dense counterparts (the property the fuzz suite in
// masked_test.go pins).
type Mask []uint64

// MaskWords returns the number of mask words covering n components.
func MaskWords(n int) int { return (n + 63) / 64 }

// Set marks component i as possibly nonzero.
func (m Mask) Set(i int) { m[i>>6] |= 1 << (uint(i) & 63) }

// Has reports whether component i is marked.
func (m Mask) Has(i int) bool { return m[i>>6]&(1<<(uint(i)&63)) != 0 }

// OrInto folds o into m (m |= o).
func (m Mask) OrInto(o Mask) {
	for w, x := range o {
		m[w] |= x
	}
}

// Fill saturates the mask for an n-component clock: every valid bit set.
// After Fill, masked operations degrade gracefully to the dense loops.
func (m Mask) Fill(n int) {
	for w := range m {
		m[w] = denseMaskWord(w, n)
	}
}

// CopyInto copies m into dst, reusing dst's storage when possible. A nil
// (dense) source yields a nil destination: "dense" must survive the copy.
func (m Mask) CopyInto(dst Mask) Mask {
	if m == nil {
		return nil
	}
	if cap(dst) < len(m) {
		dst = make(Mask, len(m))
	}
	dst = dst[:len(m)]
	copy(dst, m)
	return dst
}

// denseMaskWord is the mask word with every bit covering a valid component
// of an n-component clock set — what a nil (dense) mask stands for.
func denseMaskWord(w, n int) uint64 {
	if rem := n - w*64; rem < 64 {
		return 1<<uint(rem) - 1
	}
	return ^uint64(0)
}

// word returns mask word w, with a nil mask standing for fully dense.
func (m Mask) word(w, n int) uint64 {
	if m == nil {
		return denseMaskWord(w, n)
	}
	return m[w]
}

// bitScanCutoff is the population count above which iterating a live mask
// word bit-by-bit stops paying for itself and the block is walked densely —
// the per-word "fall back to dense when the mask saturates" point. A word
// whose every *valid* bit is set always walks densely, whatever its count:
// small clocks (n < 64) must not be condemned to the bit scan forever.
const bitScanCutoff = 24

// denseBlock reports whether a live union word u covering block w of an
// n-component clock should take the dense inner loop.
func denseBlock(u uint64, w, n int) bool {
	return u == denseMaskWord(w, n) || bits.OnesCount64(u) >= bitScanCutoff
}

// Masked couples a dense vector clock with its occupancy Mask. The dense
// storage V is always authoritative: any consumer that does not care about
// sparsity (reports, rendering, the wire codec's output) reads V directly.
// A nil M means dense — every component may be nonzero — which is also the
// saturation fallback, so Masked{V: v} wraps any plain clock at zero cost.
//
// The paper's detector does O(n) clock work per access (§IV-C); the mask
// cuts that to O(changed components) for the communication-local workloads
// large clusters actually run, while staying bit-for-bit identical on the
// dense ones.
type Masked struct {
	V VC
	M Mask
	// Covered marks an elided absorb clock: the producer proved the
	// consumer's clock dominates the clock that would have been returned,
	// so merging it would be a no-op and no bytes were materialised (V is
	// nil). Transport accounting still charges the full clock — it is
	// logically on the wire; only the local copy was skipped.
	Covered bool
}

// NewMasked returns a zeroed masked clock for n processes (empty mask: every
// component is provably zero).
func NewMasked(n int) Masked {
	return Masked{V: New(n), M: make(Mask, MaskWords(n))}
}

// Dense wraps a plain clock as a Masked value with a saturated (nil) mask.
func Dense(v VC) Masked { return Masked{V: v} }

// Len returns the number of components.
func (m Masked) Len() int { return len(m.V) }

// IsNil reports whether the value carries no clock at all (the "no absorb
// clock" sentinel, mirroring a nil VC).
func (m Masked) IsNil() bool { return m.V == nil }

// Tick increments component i and marks it.
func (m Masked) Tick(i int) {
	m.V[i]++
	if m.M != nil {
		m.M.Set(i)
	}
}

// saturate marks every component — the target of an operation whose source
// carried no mask can no longer prove any zero.
func (m Masked) saturate() {
	if m.M != nil {
		m.M.Fill(len(m.V))
	}
}

// Merge sets m.V to max(m.V, o.V) (Algorithm 4), walking only blocks o's
// mask marks live: a clear source bit means o is zero there and cannot win
// the max. m's mask absorbs o's.
func (m Masked) Merge(o Masked) {
	n := len(m.V)
	if len(o.V) != n {
		panic("vclock: masked merge size mismatch")
	}
	if o.M == nil {
		m.V.Merge(o.V)
		m.saturate()
		return
	}
	for w, mw := range o.M {
		if mw == 0 {
			continue
		}
		if m.M != nil {
			m.M[w] |= mw
		}
		base := w * 64
		if denseBlock(mw, w, n) {
			end := base + 64
			if end > n {
				end = n
			}
			// Equal-length subslices let the compiler drop the per-element
			// bounds checks in the block walk.
			mv := m.V[base:end]
			ov := o.V[base:end][:len(mv)]
			for i, x := range ov {
				if x > mv[i] {
					mv[i] = x
				}
			}
			continue
		}
		for b := mw; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			if x := o.V[i]; x > m.V[i] {
				m.V[i] = x
			}
		}
	}
}

// MergeAndCompare folds o into m (m.V = max(m.V, o.V)) and returns the order
// o held against m's previous value — the fused Algorithm 3 + 4 walk of
// VC.MergeAndCompare, restricted to blocks either mask marks live (a block
// clear in both masks is zero on both sides: equal, nothing to merge).
func (m Masked) MergeAndCompare(o Masked) Order {
	n := len(m.V)
	if len(o.V) != n {
		panic("vclock: masked compare size mismatch")
	}
	less, greater := false, false
	nw := MaskWords(n)
	for w := 0; w < nw; w++ {
		u := m.M.word(w, n) | o.M.word(w, n)
		if u == 0 {
			continue
		}
		if m.M != nil {
			if o.M != nil {
				m.M[w] |= o.M[w]
			} else {
				m.M[w] = denseMaskWord(w, n)
			}
		}
		base := w * 64
		if denseBlock(u, w, n) {
			end := base + 64
			if end > n {
				end = n
			}
			mv := m.V[base:end]
			ov := o.V[base:end][:len(mv)]
			for i, x := range ov {
				switch {
				case x < mv[i]:
					less = true
				case x > mv[i]:
					greater = true
					mv[i] = x
				}
			}
			continue
		}
		for b := u; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			switch x := o.V[i]; {
			case x < m.V[i]:
				less = true
			case x > m.V[i]:
				greater = true
				m.V[i] = x
			}
		}
	}
	switch {
	case less && greater:
		return Concurrent
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Compare classifies (m, o) under the Mattern partial order without
// mutating either, walking only live blocks.
func (m Masked) Compare(o Masked) Order {
	n := len(m.V)
	if len(o.V) != n {
		panic("vclock: masked compare size mismatch")
	}
	less, greater := false, false
	nw := MaskWords(n)
	for w := 0; w < nw; w++ {
		u := m.M.word(w, n) | o.M.word(w, n)
		if u == 0 {
			continue
		}
		base := w * 64
		if denseBlock(u, w, n) {
			end := base + 64
			if end > n {
				end = n
			}
			mv := m.V[base:end]
			ov := o.V[base:end][:len(mv)]
			for i, x := range ov {
				switch {
				case mv[i] < x:
					less = true
				case mv[i] > x:
					greater = true
				}
			}
		} else {
			for b := u; b != 0; b &= b - 1 {
				i := base + bits.TrailingZeros64(b)
				switch {
				case m.V[i] < o.V[i]:
					less = true
				case m.V[i] > o.V[i]:
					greater = true
				}
			}
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// ConcurrentWith reports whether m and o are causally unrelated — the race
// predicate of Corollary 1, on the masked representation.
func (m Masked) ConcurrentWith(o Masked) bool { return m.Compare(o) == Concurrent }

// Dominates reports m ≥ o component-wise.
func (m Masked) Dominates(o Masked) bool {
	ord := m.Compare(o)
	return ord == After || ord == Equal
}

// CopyInto copies m into dst (values and mask), reusing dst's storage when
// possible, and returns the destination. Only blocks live in either mask are
// touched: blocks dead in both are zero on both sides already, and blocks
// live only in dst are re-zeroed. A dense source saturates the destination.
func (m Masked) CopyInto(dst Masked) Masked {
	n := len(m.V)
	if cap(dst.V) < n {
		dst.V = make(VC, n)
		dst.M = nil // force the mask to be rebuilt below
	}
	dst.V = dst.V[:n]
	if m.M == nil || cap(dst.M) < MaskWords(n) {
		copy(dst.V, m.V)
		dst.M = m.M.CopyInto(dst.M)
		return dst
	}
	dst.M = dst.M[:MaskWords(n)]
	for w, mw := range m.M {
		u := mw | dst.M[w]
		if u == 0 {
			continue
		}
		base := w * 64
		end := base + 64
		if end > n {
			end = n
		}
		copy(dst.V[base:end], m.V[base:end])
		dst.M[w] = mw
	}
	return dst
}

// Copy returns an independent copy of m.
func (m Masked) Copy() Masked { return m.CopyInto(Masked{}) }

// DeltaSize returns the wire size of the delta encoding of m.V against
// base.V (the VC.DeltaSize format), skipping blocks dead in both masks —
// such components are zero on both sides and never encoded.
func (m Masked) DeltaSize(base Masked) int {
	n := len(m.V)
	if len(base.V) != n {
		panic("vclock: delta base size mismatch")
	}
	var changed uint64
	size := 0
	nw := MaskWords(n)
	for w := 0; w < nw; w++ {
		u := m.M.word(w, n) | base.M.word(w, n)
		if u == 0 {
			continue
		}
		b := w * 64
		end := b + 64
		if end > n {
			end = n
		}
		for i := b; i < end; i++ {
			if m.V[i] != base.V[i] {
				changed++
				size += uvarintLen(uint64(i)) + uvarintLen(m.V[i])
			}
		}
	}
	return uvarintLen(changed) + size
}

// StorageBytes is the modelled footprint of the masked representation: the
// clock's fixed wire size plus the occupancy bitmap (8 bytes per 64
// components). This is the E-T1 accounting for detectors that keep masked
// clocks; the mask is pure node-local metadata and never crosses the wire
// (WireSize is unchanged).
func (m Masked) StorageBytes() int { return m.V.WireSize() + 8*MaskWords(len(m.V)) }

// CheckInvariant verifies the mask covers every nonzero component (test
// support; a violation would silently corrupt every masked operation).
func (m Masked) CheckInvariant() bool {
	if m.M == nil {
		return true
	}
	for i, x := range m.V {
		if x != 0 && !m.M.Has(i) {
			return false
		}
	}
	return true
}
