// Package vclock implements the logical-clock machinery the paper's race
// detector is built on: vector clocks with the Mattern comparison lattice
// (Algorithm 3 / Lemma 1), the max-merge of Algorithm 4, matrix clocks
// (the per-process clock matrix V_Pi of §IV-B), Lamport scalar clocks, and
// compact binary encodings used to account for clock bytes on the wire.
package vclock
