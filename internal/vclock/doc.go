// Package vclock implements the logical-clock machinery the paper's race
// detector is built on: vector clocks with the Mattern comparison lattice
// (Algorithm 3 / Lemma 1), the max-merge of Algorithm 4, matrix clocks
// (the per-process clock matrix V_Pi of §IV-B), Lamport scalar clocks, and
// compact binary encodings used to account for clock bytes on the wire.
//
// The Masked representation (masked.go) couples a clock with a word-granular
// occupancy bitmap so every hot-path walk skips provably-zero spans —
// O(communicating processes) per access instead of O(cluster size) — while
// staying observationally identical to the dense operations (pinned by a
// lockstep shadow suite and fuzzer). Masks are node-local metadata: they
// never travel on the wire, and only StorageBytes accounts for them.
package vclock
