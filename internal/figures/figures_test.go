package figures

import (
	"strings"
	"testing"
)

// The clock values asserted below are the exact strings printed in the
// paper's figures — the heart of the reproduction.

func TestFig5aClockValues(t *testing.T) {
	m := newNodeModel(3)
	k1, after1, race1 := m.put(0, 1)
	if k1.String() != "100" {
		t.Fatalf("m1 clock = %s, want 100", k1)
	}
	if after1.String() != "110" {
		t.Fatalf("P1 after m1 = %s, want 110", after1)
	}
	if race1 {
		t.Fatal("m1 must not race")
	}
	k2, _, race2 := m.put(2, 1)
	if k2.String() != "001" {
		t.Fatalf("m2 clock = %s, want 001", k2)
	}
	if !race2 {
		t.Fatal("Fig. 5(a): race on reception of m2 not detected")
	}
}

func TestFig5bClockValues(t *testing.T) {
	m := newNodeModel(3)
	g, afterG, raceG := m.get(1, 0)
	if g.String() != "010" || afterG.String() != "010" {
		t.Fatalf("get1: clock %s, P0 after %s; want 010, 010", g, afterG)
	}
	if raceG {
		t.Fatal("get1 must not race")
	}
	k1, after1, race1 := m.put(0, 1)
	if k1.String() != "110" {
		t.Fatalf("m1 clock = %s, want 110", k1)
	}
	if after1.String() != "120" {
		t.Fatalf("P1 after m1 = %s, want 120", after1)
	}
	if race1 {
		t.Fatal("m1 must not race")
	}
	k2, after2, race2 := m.put(1, 2)
	if k2.String() != "130" {
		t.Fatalf("m2 clock = %s, want 130", k2)
	}
	if after2.String() != "131" {
		t.Fatalf("P2 after m2 = %s, want 131", after2)
	}
	if race2 {
		t.Fatal("m2 must not race")
	}
	k3, _, race3 := m.put(2, 1)
	if k3.String() != "132" {
		t.Fatalf("m3 clock = %s, want 132", k3)
	}
	if race3 {
		t.Fatal("Fig. 5(b): m3 dominates 130, must not race")
	}
}

func TestFig5cClockValues(t *testing.T) {
	m := newNodeModel(4)
	k1, after1, _ := m.put(0, 1)
	if k1.String() != "1000" || after1.String() != "1100" {
		t.Fatalf("m1: %s / %s, want 1000 / 1100", k1, after1)
	}
	k2, after2, _ := m.put(0, 2)
	if k2.String() != "2000" || after2.String() != "2010" {
		t.Fatalf("m2: %s / %s, want 2000 / 2010", k2, after2)
	}
	k3, after3, _ := m.put(2, 3)
	if k3.String() != "2020" || after3.String() != "2021" {
		t.Fatalf("m3: %s / %s, want 2020 / 2021", k3, after3)
	}
	k4, _, race4 := m.put(3, 1)
	if k4.String() != "2022" {
		t.Fatalf("m4 clock = %s, want 2022", k4)
	}
	if !race4 {
		t.Fatal("Fig. 5(c): race on reception of m4 not detected")
	}
}

func TestFigureRaceCounts(t *testing.T) {
	for _, tc := range []struct {
		num   string
		races int
	}{
		{"4", 0}, {"5a", 1}, {"5b", 0}, {"5c", 1},
	} {
		f, ok := ByNum(tc.num)
		if !ok {
			t.Fatalf("figure %s missing", tc.num)
		}
		if f.Races != tc.races {
			t.Errorf("figure %s: races = %d, want %d", tc.num, f.Races, tc.races)
		}
	}
}

func TestFig1RulesHold(t *testing.T) {
	f := Fig1()
	joined := strings.Join(f.Notes, "\n")
	if !strings.Contains(joined, "remote access to private memory") {
		t.Fatalf("private rule not demonstrated: %s", joined)
	}
	if !strings.Contains(joined, "value=7 err=<nil>") {
		t.Fatalf("public rule not demonstrated: %s", joined)
	}
}

func TestFig2MessageProfile(t *testing.T) {
	f := Fig2()
	joined := strings.Join(f.Notes, "\n")
	if !strings.Contains(joined, "put used 2 messages") {
		t.Fatalf("put profile: %s", joined)
	}
	if !strings.Contains(joined, "get used 2 messages") {
		t.Fatalf("get profile: %s", joined)
	}
}

func TestFig3DelayedPut(t *testing.T) {
	f := Fig3()
	joined := strings.Join(f.Notes, "\n")
	if !strings.Contains(joined, "get snapshot consistent: true") {
		t.Fatalf("snapshot: %s", joined)
	}
	if !strings.Contains(joined, "put finished after get: true") {
		t.Fatalf("ordering: %s", joined)
	}
}

func TestFig4FalsePositiveContrast(t *testing.T) {
	f := Fig4()
	joined := strings.Join(f.Notes, "\n")
	if !strings.Contains(joined, "vw races=0") {
		t.Fatalf("vw: %s", joined)
	}
	if !strings.Contains(joined, "single-clock races=1") {
		t.Fatalf("single: %s", joined)
	}
}

func TestAllFiguresRenderDiagrams(t *testing.T) {
	figs := All()
	if len(figs) != 7 {
		t.Fatalf("figures = %d, want 7", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.Num == "" || f.Title == "" || f.Diagram == "" {
			t.Errorf("figure %q incomplete", f.Num)
		}
		if seen[f.Num] {
			t.Errorf("duplicate figure %s", f.Num)
		}
		seen[f.Num] = true
	}
	if _, ok := ByNum("9"); ok {
		t.Error("ByNum should reject unknown figures")
	}
}

func TestFig5aDiagramMentionsComparison(t *testing.T) {
	f := Fig5a()
	if !strings.Contains(f.Diagram, "110 x 001 RACE") {
		t.Fatalf("diagram missing the paper's comparison:\n%s", f.Diagram)
	}
}
