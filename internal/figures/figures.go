package figures

import (
	"fmt"
	"strings"

	"dsmrace/internal/baseline"
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// Figure is one reproduced paper figure.
type Figure struct {
	// Num is the paper's figure number ("1".."5c").
	Num string
	// Title is the paper's caption.
	Title string
	// Diagram is the ASCII rendering.
	Diagram string
	// Races is the number of race conditions detected in the scenario.
	Races int
	// Notes records measured facts (message counts, clock values).
	Notes []string
}

// All returns every figure in paper order.
func All() []Figure {
	return []Figure{Fig1(), Fig2(), Fig3(), Fig4(), Fig5a(), Fig5b(), Fig5c()}
}

// ByNum returns the figure with the given number.
func ByNum(num string) (Figure, bool) {
	for _, f := range All() {
		if f.Num == num {
			return f, true
		}
	}
	return Figure{}, false
}

// ---- The conflated node-clock model of the figures: each node is one
// clock domain (process clock = area clock), writes tick the receiving
// node, reads merge without ticking. The checks are the paper's
// Algorithms 1–2 via core.CheckWrite/CheckRead. ----

type nodeModel struct {
	c []vclock.VC // per-node general clock (the figures' printed values)
	w []vclock.VC // per-node write clock
}

func newNodeModel(n int) *nodeModel {
	m := &nodeModel{}
	for i := 0; i < n; i++ {
		m.c = append(m.c, vclock.New(n))
		m.w = append(m.w, vclock.New(n))
	}
	return m
}

// put sends a remote write src→dst and returns the message clock, the
// destination clock after reception, and the race verdict.
func (m *nodeModel) put(src, dst int) (k, after vclock.VC, race bool) {
	m.c[src].Tick(src)
	k = m.c[src].Copy()
	race = core.CheckWrite(k, m.c[dst])
	m.c[dst].Merge(k)
	m.c[dst].Tick(dst)
	m.w[dst] = m.c[dst].Copy()
	return k, m.c[dst].Copy(), race
}

// get performs a remote read reader←holder.
func (m *nodeModel) get(reader, holder int) (k, after vclock.VC, race bool) {
	m.c[reader].Tick(reader)
	k = m.c[reader].Copy()
	race = core.CheckRead(k, m.w[holder])
	m.c[holder].Merge(k)
	m.c[reader].Merge(m.w[holder]) // reads-from edge
	return k, m.c[holder].Copy(), race
}

// clock returns node i's current clock string.
func (m *nodeModel) clock(i int) string { return m.c[i].String() }

// ---- diagram rendering ----

type diagram struct {
	n     int
	width int
	lines []string
}

func newDiagram(n int) *diagram {
	d := &diagram{n: n, width: 16}
	var hdr, clk strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&hdr, "%-*s", d.width, fmt.Sprintf("P%d", i))
	}
	d.lines = append(d.lines, hdr.String())
	_ = clk
	return d
}

// row places text snippets under each node column.
func (d *diagram) row(cells map[int]string) {
	var sb strings.Builder
	for i := 0; i < d.n; i++ {
		fmt.Fprintf(&sb, "%-*s", d.width, cells[i])
	}
	d.lines = append(d.lines, strings.TrimRight(sb.String(), " "))
}

// arrow draws a labelled message from column a to column b.
func (d *diagram) arrow(a, b int, label string) {
	lo, hi := a, b
	rightward := a < b
	if !rightward {
		lo, hi = b, a
	}
	span := (hi-lo)*d.width - 2
	if span < len(label)+2 {
		span = len(label) + 2
	}
	var line string
	dashes := span - len(label)
	pre := strings.Repeat("-", dashes/2)
	post := strings.Repeat("-", dashes-dashes/2)
	if rightward {
		line = pre + label + post + ">"
	} else {
		line = "<" + pre + label + post
	}
	pad := strings.Repeat(" ", lo*d.width+1)
	d.lines = append(d.lines, pad+line)
}

func (d *diagram) note(s string) {
	d.lines = append(d.lines, s)
}

func (d *diagram) String() string { return strings.Join(d.lines, "\n") + "\n" }

// ---- Figure 1: memory organisation ----

// Fig1 reproduces the memory organisation of a three-processor system and
// verifies its two defining rules against the real memory substrate:
// private memory rejects remote access, public memory serves anyone.
func Fig1() Figure {
	space := memory.NewSpace(3, 8, 8)
	space.Alloc("x", 1, 2)
	// Rule 1: remote private access is refused.
	errRemote := space.Node(1).WritePrivate(0, 0, []memory.Word{1})
	// Rule 2: any node reads/writes public memory.
	space.Node(1).WritePublic(0, []memory.Word{7})
	buf := make([]memory.Word, 1)
	errPublic := space.Node(1).ReadPublic(0, buf)

	diagram := `P0              P1              P2
+-----------+  +-----------+  +-----------+
| private   |  | private   |  | private   |   <- own processor only
+-----------+  +-----------+  +-----------+
+-----------+  +-----------+  +-----------+
| public    |  | public    |  | public    |   <- Global Address Space
+-----------+  +-----------+  +-----------+
      \\            |             //
       remote get / remote put from any node
`
	notes := []string{
		fmt.Sprintf("remote write to P1's private memory: %v", errRemote),
		fmt.Sprintf("public read after public write: value=%d err=%v", buf[0], errPublic),
		"shared variable x placed at (P1, offset 0) by the allocator (compiler role)",
	}
	return Figure{Num: "1", Title: "Memory organization of a three-processor distributed shared memory system", Diagram: diagram, Notes: notes}
}

// ---- Figures 2 and 3 run on the real NIC layer ----

// Fig2 measures the message profile of the two primitives: a put moves the
// data in its one request message; a get needs a request plus a data reply.
func Fig2() Figure {
	k := sim.NewKernel(sim.Config{Seed: 1})
	nw := network.New(k, 3, network.Constant{L: sim.Microsecond})
	space := memory.NewSpace(3, 8, 64)
	space.Alloc("a", 1, 4)
	sys := rdma.NewSystem(nw, space, rdma.DefaultConfig(nil, nil))
	area, _ := space.Lookup("a")

	var putMsgs, getMsgs uint64
	k.Spawn("P2", func(p *sim.Proc) {
		before := nw.Stats().Snapshot()
		sys.NIC(2).Put(p, area, 0, []memory.Word{42}, core.Access{Proc: 2, Kind: core.Write})
		mid := nw.Stats().Snapshot()
		putMsgs = mid.TotalMsgs - before.TotalMsgs
		sys.NIC(2).Get(p, area, 0, 1, core.Access{Proc: 2, Kind: core.Read})
		getMsgs = nw.Stats().TotalMsgs - mid.TotalMsgs
	})
	if err := k.Run(); err != nil {
		panic(err)
	}

	d := newDiagram(3)
	d.row(map[int]string{0: "|", 1: "|", 2: "|"})
	d.arrow(2, 1, "put(data)")
	d.row(map[int]string{1: "a=42", 2: "|"})
	d.arrow(2, 1, "get req")
	d.arrow(1, 2, "data reply")
	d.note("")
	d.note(fmt.Sprintf("put: %d data message (+%d completion ack)", 1, putMsgs-1))
	d.note(fmt.Sprintf("get: %d messages (request + data reply)", getMsgs))
	return Figure{
		Num: "2", Title: "Remote R/W memory accesses",
		Diagram: d.String(),
		Notes: []string{
			fmt.Sprintf("put used %d messages on the wire", putMsgs),
			fmt.Sprintf("get used %d messages on the wire", getMsgs),
		},
	}
}

// Fig3 demonstrates that a put on an area is delayed until an in-flight get
// finishes: the get returns the pre-put snapshot and the put applies after.
func Fig3() Figure {
	k := sim.NewKernel(sim.Config{Seed: 1})
	nw := network.New(k, 3, network.Constant{L: sim.Microsecond})
	space := memory.NewSpace(3, 8, 2048)
	space.Alloc("buf", 1, 1024)
	cfg := rdma.DefaultConfig(nil, nil)
	cfg.MemPerWord = 10 * sim.Nanosecond
	sys := rdma.NewSystem(nw, space, cfg)
	area, _ := space.Lookup("buf")
	ones := make([]memory.Word, 1024)
	for i := range ones {
		ones[i] = 1
	}
	space.Node(1).WritePublic(area.Off, ones)

	var getSawOld bool
	var getDone, putDone sim.Time
	k.Spawn("P0", func(p *sim.Proc) {
		data, _, _ := sys.NIC(0).Get(p, area, 0, 1024, core.Access{Proc: 0, Kind: core.Read})
		getDone = p.Now()
		getSawOld = true
		for _, w := range data {
			if w != 1 {
				getSawOld = false
			}
		}
	})
	k.Spawn("P2", func(p *sim.Proc) {
		p.Sleep(1200 * sim.Nanosecond) // arrives mid-get
		sys.NIC(2).Put(p, area, 0, []memory.Word{2}, core.Access{Proc: 2, Kind: core.Write})
		putDone = p.Now()
	})
	if err := k.Run(); err != nil {
		panic(err)
	}

	d := newDiagram(3)
	d.arrow(0, 1, "get req")
	d.arrow(2, 1, "put (queued)")
	d.row(map[int]string{1: "[get occupies]"})
	d.arrow(1, 0, "get data")
	d.row(map[int]string{1: "put applies"})
	d.note("")
	d.note(fmt.Sprintf("get completed at %v holding a consistent pre-put snapshot: %v", getDone, getSawOld))
	d.note(fmt.Sprintf("put completed at %v, after the get released the area lock", putDone))
	return Figure{
		Num: "3", Title: "A put operation is delayed until the end of the get operation on the same data",
		Diagram: d.String(),
		Notes: []string{
			fmt.Sprintf("get snapshot consistent: %v", getSawOld),
			fmt.Sprintf("put finished after get: %v", putDone > getDone),
		},
	}
}

// Fig4 runs two concurrent gets of an initialised variable: the paper's
// detector (write clock) stays silent; the single-clock strawman reports a
// false positive — §IV-D's argument, executed.
func Fig4() Figure {
	runReads := func(det core.Detector) int {
		col := &core.Collector{}
		st := det.NewAreaState(3)
		// a = A pre-exists (no tracked write). P0 and P2 read concurrently.
		r0 := core.Access{Proc: 0, Seq: 1, Kind: core.Read, Clock: vclock.VC{1, 0, 0}}
		r2 := core.Access{Proc: 2, Seq: 1, Kind: core.Read, Clock: vclock.VC{0, 0, 1}}
		for _, a := range []core.Access{r0, r2} {
			if rep, _ := st.OnAccess(a, 1, vclock.Masked{}); rep != nil {
				col.Signal(*rep)
			}
		}
		return col.Total()
	}
	vw := runReads(core.NewVWDetector())
	single := runReads(baseline.NewSingleClock())

	d := newDiagram(3)
	d.row(map[int]string{0: "a = ?", 1: "a = A", 2: "a = ?"})
	d.arrow(0, 1, "get")
	d.row(map[int]string{0: "a = A"})
	d.arrow(2, 1, "get")
	d.row(map[int]string{2: "a = A"})
	d.note("")
	d.note(fmt.Sprintf("paper detector (V+W clocks): %d races — concurrent reads are benign", vw))
	d.note(fmt.Sprintf("single-clock baseline:       %d race  — the false positive W eliminates", single))
	return Figure{
		Num: "4", Title: "Two concurrent get operations",
		Diagram: d.String(),
		Races:   vw,
		Notes: []string{
			fmt.Sprintf("vw races=%d", vw),
			fmt.Sprintf("single-clock races=%d", single),
		},
	}
}

// Fig5a: P0 and P2 put into P1's memory with no causal relation; the race
// is detected on reception of m2 with the comparison 110 × 001.
func Fig5a() Figure {
	m := newNodeModel(3)
	d := newDiagram(3)
	d.row(map[int]string{0: "000", 1: "000", 2: "000"})
	k1, after1, race1 := m.put(0, 1)
	d.arrow(0, 1, fmt.Sprintf("m1(%s)", k1))
	d.row(map[int]string{1: after1.String()})
	k2, _, race2 := m.put(2, 1)
	d.arrow(2, 1, fmt.Sprintf("m2(%s)", k2))
	d.row(map[int]string{1: fmt.Sprintf("%s x %s RACE", after1, k2)})
	races := 0
	if race1 {
		races++
	}
	if race2 {
		races++
	}
	return Figure{
		Num: "5a", Title: "Race condition detected on reception of m1 (put) and m2 (put)",
		Diagram: d.String(),
		Races:   races,
		Notes: []string{
			fmt.Sprintf("m1 clock %s, P1 after m1 %s", k1, after1),
			fmt.Sprintf("m2 clock %s compared against %s: concurrent", k2, after1),
		},
	}
}

// Fig5b: a causally ordered chain get→put→put→put across three processes;
// no race. Every intermediate clock the paper prints is produced.
func Fig5b() Figure {
	m := newNodeModel(3)
	d := newDiagram(3)
	d.row(map[int]string{0: "000", 1: "000", 2: "000"})

	g, afterG, raceG := m.get(1, 0) // get1(010)
	d.arrow(1, 0, fmt.Sprintf("get1(%s)", g))
	d.row(map[int]string{0: afterG.String(), 1: m.clock(1)})

	k1, after1, race1 := m.put(0, 1) // m1(110)
	d.arrow(0, 1, fmt.Sprintf("m1(%s)", k1))
	d.row(map[int]string{1: after1.String()})

	k2, after2, race2 := m.put(1, 2) // m2(130)
	d.arrow(1, 2, fmt.Sprintf("m2(%s)", k2))
	d.row(map[int]string{1: k2.String(), 2: after2.String()})

	k3, _, race3 := m.put(2, 1) // m3(132)
	d.arrow(2, 1, fmt.Sprintf("m3(%s)", k3))
	d.row(map[int]string{1: fmt.Sprintf("%s >= %s ok", k3, k2), 2: k3.String()})

	races := 0
	for _, r := range []bool{raceG, race1, race2, race3} {
		if r {
			races++
		}
	}
	return Figure{
		Num: "5b", Title: "No race condition between m1 (get) and m3 (put)",
		Diagram: d.String(),
		Races:   races,
		Notes: []string{
			fmt.Sprintf("get1 clock %s; P0 after get %s", g, afterG),
			fmt.Sprintf("m1 clock %s; P1 after m1 %s", k1, after1),
			fmt.Sprintf("m2 clock %s; P2 after m2 %s", k2, after2),
			fmt.Sprintf("m3 clock %s dominates %s: ordered, no race", k3, k2),
		},
	}
}

// Fig5c: a four-process chain m2→m3→m4 racing with m1.
func Fig5c() Figure {
	m := newNodeModel(4)
	d := newDiagram(4)
	d.row(map[int]string{0: "0000", 1: "0000", 2: "0000", 3: "0000"})

	k1, after1, race1 := m.put(0, 1) // m1(1000)
	d.arrow(0, 1, fmt.Sprintf("m1(%s)", k1))
	d.row(map[int]string{1: after1.String()})

	k2, after2, race2 := m.put(0, 2) // m2(2000)
	d.arrow(0, 2, fmt.Sprintf("m2(%s)", k2))
	d.row(map[int]string{2: after2.String()})

	k3, after3, race3 := m.put(2, 3) // m3(2020)
	d.arrow(2, 3, fmt.Sprintf("m3(%s)", k3))
	d.row(map[int]string{3: after3.String()})

	k4, _, race4 := m.put(3, 1) // m4(2022)
	d.arrow(3, 1, fmt.Sprintf("m4(%s)", k4))
	d.row(map[int]string{1: fmt.Sprintf("%s x %s RACE", after1, k4)})

	races := 0
	for _, r := range []bool{race1, race2, race3, race4} {
		if r {
			races++
		}
	}
	return Figure{
		Num: "5c", Title: "Race condition detected between m1 (put) and m3/m4 chain (put)",
		Diagram: d.String(),
		Races:   races,
		Notes: []string{
			fmt.Sprintf("m1=%s m2=%s m3=%s m4=%s", k1, k2, k3, k4),
			fmt.Sprintf("P1 held %s; m4 carries %s: concurrent", after1, k4),
		},
	}
}
