// Package figures reproduces every figure of the paper as an executable
// scenario: the memory organisation of Fig. 1, the put/get primitives of
// Fig. 2, the delayed-put atomicity of Fig. 3, the benign concurrent reads
// of Fig. 4 and the three vector-clock use cases of Fig. 5. Each scenario
// computes the clock values the paper prints (asserted by tests) and
// renders an ASCII sequence diagram for cmd/figures.
package figures
