// Package verify computes exact race ground truth from a recorded trace.
//
// It replays the event stream (in apply order) through reference clock
// semantics identical to the runtime's — per-process clocks ticked per
// operation, home ticks on writes, absorption on completion edges, barrier
// merges, lock release→acquire edges — but keeps the *full access history*
// of every area instead of the detector's merged summary clocks. Two
// conflicting accesses (same area, at least one write) race iff their
// clocks are concurrent (Corollary 1); the full history makes the answer
// exact and pairwise, which is what the precision/recall tables (E-T3,
// E-T6) score online detectors against.
//
// Options select which happens-before edges the replay honours.
// DefaultOptions mirrors the runtime's full absorption semantics.
// SyncOnlyOptions keeps only program order, locks and barriers — the
// protocol-invariant relation the coherence-equivalence suite compares
// write-update and write-invalidate under, because absorption edges depend
// on home-arrival order (i.e. on protocol timing) while synchronisation
// edges do not. Note the replay models every read as reaching the home;
// under write-invalidate the runtime's cache hits do not, so DefaultOptions
// ground truth is the fully-observed reference a write-invalidate detector
// is scored against (its blind spots then show up as recall loss, E-T12).
package verify
