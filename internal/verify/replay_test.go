package verify_test

import (
	"testing"

	"dsmrace/internal/baseline"
	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/trace"
	"dsmrace/internal/verify"
)

func TestReplayDetectorMatchesLiveRun(t *testing.T) {
	// Replaying the recorded trace through the same detector must produce
	// the same flags the live run produced (the live run used vw-exact with
	// default absorption — the replay mirrors it).
	res := tracedRun(t, 4, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("x", 0, 2); c.MustAlloc("y", 1, 2) },
		randomWorkload)
	replayed := verify.ReplayDetector(res.Trace, core.NewExactVWDetector(), verify.DefaultOptions())
	if len(replayed) != len(res.Races) {
		t.Fatalf("replay flags = %d, live flags = %d", len(replayed), len(res.Races))
	}
	liveSet := map[verify.AccessID]bool{}
	for _, r := range res.Races {
		liveSet[verify.AccessID{Proc: r.Current.Proc, Seq: r.Current.Seq}] = true
	}
	for _, r := range replayed {
		if !liveSet[verify.AccessID{Proc: r.Current.Proc, Seq: r.Current.Seq}] {
			t.Fatalf("replay flagged %v which the live run did not", r.Current)
		}
	}
}

func TestReplayDifferentDetectorOnSameSchedule(t *testing.T) {
	// One trace, several detectors: apples-to-apples comparison on an
	// identical schedule. The single-clock replay must flag at least as
	// many accesses as vw-exact on a read-heavy trace.
	res := tracedRun(t, 4, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("x", 0, 1) },
		func(p *dsm.Proc) error {
			if p.ID() == 0 {
				if err := p.Put("x", 0, 1); err != nil {
					return err
				}
			}
			p.Barrier()
			for i := 0; i < 4; i++ {
				if _, err := p.GetWord("x", 0); err != nil {
					return err
				}
			}
			return nil
		})
	if res.RaceCount != 0 {
		t.Fatalf("live vw-exact flagged a clean program: %v", res.Races)
	}
	vw := verify.ReplayDetector(res.Trace, core.NewExactVWDetector(), verify.DefaultOptions())
	sc := verify.ReplayDetector(res.Trace, baseline.NewSingleClock(), verify.DefaultOptions())
	if len(vw) != 0 {
		t.Fatalf("vw replay flagged clean trace: %v", vw)
	}
	if len(sc) == 0 {
		t.Fatal("single-clock replay should flag the concurrent reads")
	}
}

func TestReplayFeedsLocksToLockset(t *testing.T) {
	res := tracedRun(t, 2, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("x", 0, 1) },
		func(p *dsm.Proc) error {
			if err := p.Lock("x"); err != nil {
				return err
			}
			if err := p.Put("x", 0, memory.Word(p.ID())); err != nil {
				return err
			}
			return p.Unlock("x")
		})
	reports := verify.ReplayDetector(res.Trace, baseline.NewLockset(), verify.DefaultOptions())
	if len(reports) != 0 {
		t.Fatalf("lock-disciplined trace flagged by lockset replay: %v", reports)
	}
	// Without the lock discipline the same detector must complain.
	res2 := tracedRun(t, 2, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("x", 0, 1) },
		func(p *dsm.Proc) error { return p.Put("x", 0, memory.Word(p.ID())) })
	reports2 := verify.ReplayDetector(res2.Trace, baseline.NewLockset(), verify.DefaultOptions())
	if len(reports2) == 0 {
		t.Fatal("unlocked trace not flagged by lockset replay")
	}
}

func TestLockOrderDetectsInversion(t *testing.T) {
	tr := &trace.Trace{
		Procs: 2,
		Events: []trace.Event{
			// P0: lock 1 then 2.
			{Kind: trace.EvLockAcq, Proc: 0, Area: 1},
			{Kind: trace.EvLockAcq, Proc: 0, Area: 2},
			{Kind: trace.EvLockRel, Proc: 0, Area: 2},
			{Kind: trace.EvLockRel, Proc: 0, Area: 1},
			// P1: lock 2 then 1 — inversion.
			{Kind: trace.EvLockAcq, Proc: 1, Area: 2},
			{Kind: trace.EvLockAcq, Proc: 1, Area: 1},
			{Kind: trace.EvLockRel, Proc: 1, Area: 1},
			{Kind: trace.EvLockRel, Proc: 1, Area: 2},
		},
	}
	reports := verify.LockOrder(tr)
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	if len(reports[0].Cycle) != 2 || reports[0].Cycle[0] != 1 || reports[0].Cycle[1] != 2 {
		t.Fatalf("cycle = %v", reports[0].Cycle)
	}
	if reports[0].String() == "" {
		t.Fatal("string")
	}
}

func TestLockOrderCleanOnConsistentOrder(t *testing.T) {
	tr := &trace.Trace{
		Procs: 2,
		Events: []trace.Event{
			{Kind: trace.EvLockAcq, Proc: 0, Area: 1},
			{Kind: trace.EvLockAcq, Proc: 0, Area: 2},
			{Kind: trace.EvLockRel, Proc: 0, Area: 2},
			{Kind: trace.EvLockRel, Proc: 0, Area: 1},
			{Kind: trace.EvLockAcq, Proc: 1, Area: 1},
			{Kind: trace.EvLockAcq, Proc: 1, Area: 2},
			{Kind: trace.EvLockRel, Proc: 1, Area: 2},
			{Kind: trace.EvLockRel, Proc: 1, Area: 1},
		},
	}
	if reports := verify.LockOrder(tr); len(reports) != 0 {
		t.Fatalf("consistent order flagged: %v", reports)
	}
}

func TestLockOrderThreeWayCycle(t *testing.T) {
	// 1→2 (P0), 2→3 (P1), 3→1 (P2): a cycle of length 3.
	tr := &trace.Trace{
		Procs: 3,
		Events: []trace.Event{
			{Kind: trace.EvLockAcq, Proc: 0, Area: 1},
			{Kind: trace.EvLockAcq, Proc: 0, Area: 2},
			{Kind: trace.EvLockRel, Proc: 0, Area: 2},
			{Kind: trace.EvLockRel, Proc: 0, Area: 1},
			{Kind: trace.EvLockAcq, Proc: 1, Area: 2},
			{Kind: trace.EvLockAcq, Proc: 1, Area: 3},
			{Kind: trace.EvLockRel, Proc: 1, Area: 3},
			{Kind: trace.EvLockRel, Proc: 1, Area: 2},
			{Kind: trace.EvLockAcq, Proc: 2, Area: 3},
			{Kind: trace.EvLockAcq, Proc: 2, Area: 1},
			{Kind: trace.EvLockRel, Proc: 2, Area: 1},
			{Kind: trace.EvLockRel, Proc: 2, Area: 3},
		},
	}
	reports := verify.LockOrder(tr)
	if len(reports) != 1 || len(reports[0].Cycle) != 3 {
		t.Fatalf("three-way cycle: %v", reports)
	}
}

func TestLockOrderOnRealRun(t *testing.T) {
	// Two processes locking two areas in opposite orders, serialized by a
	// barrier so the run completes — but the order inversion is latent.
	res := tracedRun(t, 2, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("a", 0, 1); c.MustAlloc("b", 1, 1) },
		func(p *dsm.Proc) error {
			first, second := "a", "b"
			if p.ID() == 1 {
				first, second = "b", "a"
			}
			if p.ID() == 1 {
				p.Barrier()
			}
			if err := p.Lock(first); err != nil {
				return err
			}
			if err := p.Lock(second); err != nil {
				return err
			}
			if err := p.Unlock(second); err != nil {
				return err
			}
			if err := p.Unlock(first); err != nil {
				return err
			}
			if p.ID() == 0 {
				p.Barrier()
			}
			return nil
		})
	reports := verify.LockOrder(res.Trace)
	if len(reports) != 1 {
		t.Fatalf("latent inversion not found: %v", reports)
	}
}
