package verify

import (
	"fmt"
	"sort"

	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/trace"
	"dsmrace/internal/vclock"
)

// Options mirrors the runtime's absorption configuration. The reference
// replay deliberately has no home-tick option: the home tick conflates a
// per-area write counter with the home process's event counter, which makes
// *pairwise* comparisons unreliable; exact ground truth therefore always
// compares pure access clocks. (The paper-mode detector that does tick is
// sound but conservative relative to this truth — quantified in E-T10.)
type Options struct {
	AbsorbOnGetReply bool
	AbsorbOnPutAck   bool
	// WordLevel narrows "conflicting" to accesses whose word ranges
	// actually overlap. The paper's model keeps one clock per *area*, so
	// the detector's conflict unit is the area; word-level truth exposes
	// the false sharing that per-area clocks cannot avoid (§V-A's
	// granularity trade-off, measured in E-T11).
	WordLevel bool
	// PruneHistory discards history entries that every process's current
	// clock already dominates: no future access can be concurrent with
	// them, so they can never race again. This is the matrix-clock
	// garbage-collection idea (§IV-B's matrix gives each process a bound
	// on global knowledge; here the verifier holds all rows) applied to
	// the ground-truth replay — results are identical, memory is bounded
	// by the concurrency window instead of the trace length.
	PruneHistory bool
}

// DefaultOptions matches the runtime defaults (area-level conflicts, the
// model's own granularity).
func DefaultOptions() Options {
	return Options{AbsorbOnGetReply: true, AbsorbOnPutAck: true}
}

// WordLevelOptions is DefaultOptions with word-granularity conflicts.
func WordLevelOptions() Options {
	o := DefaultOptions()
	o.WordLevel = true
	return o
}

// SyncOnlyOptions computes the *protocol-invariant* ground truth: only
// program order, lock release→acquire edges and barriers order accesses —
// no completion-absorption edges. Absorption edges depend on the order in
// which accesses reach an area's home, which in turn depends on message
// timing, i.e. on the coherence protocol and the interconnect; the
// sync-only relation depends on neither. For a workload whose per-process
// access sequence is schedule-independent, the sync-only race set is
// therefore a function of the program alone — the set the protocol
// equivalence suite asserts write-update and write-invalidate agree on.
func SyncOnlyOptions() Options { return Options{} }

// AccessID identifies one access as (process, per-process sequence).
type AccessID struct {
	Proc int
	Seq  uint64
}

// String renders the id as P<proc>#<seq>.
func (a AccessID) String() string { return fmt.Sprintf("P%d#%d", a.Proc, a.Seq) }

// Pair is an unordered racing pair, normalised so A < B.
type Pair struct {
	A, B AccessID
	Area memory.AreaID
}

func makePair(a, b AccessID, area memory.AreaID) Pair {
	if b.Proc < a.Proc || (b.Proc == a.Proc && b.Seq < a.Seq) {
		a, b = b, a
	}
	return Pair{A: a, B: b, Area: area}
}

// Result is the exact ground truth of a trace.
type Result struct {
	// Pairs are all true racing pairs, deduplicated and sorted.
	Pairs []Pair
	// Racy is the set of accesses an online detector *should* flag: those
	// with at least one concurrent conflicting predecessor in apply order.
	Racy map[AccessID]bool
	// Accesses is the number of shared-memory accesses replayed.
	Accesses int
	// Pruned counts history entries garbage-collected (PruneHistory).
	Pruned int
	// PeakHistory is the largest per-area history length observed.
	PeakHistory int
	// Clocks holds the reference clock of every access, for offline
	// what-if analyses (e.g. the truncated-clock ablation E-T9).
	Clocks map[AccessID]vclock.VC
	// ConflictPairs counts all conflicting pairs (ordered or not).
	ConflictPairs int
}

// HasPair reports whether the unordered pair (a, b) races.
func (r *Result) HasPair(a, b AccessID, area memory.AreaID) bool {
	p := makePair(a, b, area)
	for _, q := range r.Pairs {
		if q == p {
			return true
		}
	}
	return false
}

type histEntry struct {
	id         AccessID
	write      bool
	clock      vclock.VC
	off, count int
}

// gtArea is the verifier's per-area state: reference clocks plus the full
// access history.
type gtArea struct {
	v, w vclock.VC
	hist []histEntry
}

// pruneHistory drops entries dominated by every process's current clock:
// any future access clock K_q dominates C_q, so an entry ≤ C_q for all q
// can never again compare concurrent — the matrix-clock GC argument
// (§IV-B) applied to the verifier. It returns the number pruned.
func pruneHistory(st *gtArea, clocks []vclock.VC) int {
	kept := st.hist[:0]
	pruned := 0
	for _, h := range st.hist {
		dominated := true
		for _, c := range clocks {
			if !c.Dominates(h.clock) {
				dominated = false
				break
			}
		}
		if dominated {
			pruned++
		} else {
			kept = append(kept, h)
		}
	}
	st.hist = kept
	return pruned
}

// GroundTruth replays tr and returns the exact race set.
func GroundTruth(tr *trace.Trace, opt Options) *Result {
	n := tr.Procs
	clocks := make([]vclock.VC, n)
	for i := range clocks {
		clocks[i] = vclock.New(n)
	}
	areas := make(map[memory.AreaID]*gtArea)
	stateOf := func(id memory.AreaID) *gtArea {
		st, ok := areas[id]
		if !ok {
			st = &gtArea{v: vclock.New(n), w: vclock.New(n)}
			areas[id] = st
		}
		return st
	}
	lockSlots := make(map[memory.AreaID]vclock.VC)
	barrierBuf := make(map[int][]int) // epoch -> participants seen

	res := &Result{Racy: make(map[AccessID]bool), Clocks: make(map[AccessID]vclock.VC)}
	pairSet := make(map[Pair]bool)

	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvPut, trace.EvGet, trace.EvAtomic:
			res.Accesses++
			p := e.Proc
			clocks[p].Tick(p)
			k := clocks[p].Copy()
			id := AccessID{Proc: p, Seq: e.Seq}
			st := stateOf(e.Area)
			isWrite := e.Kind.IsWrite()
			res.Clocks[id] = k
			for _, h := range st.hist {
				if !isWrite && !h.write {
					continue // read-read never conflicts
				}
				if opt.WordLevel && (e.Off+e.Count <= h.off || h.off+h.count <= e.Off) {
					continue // disjoint word ranges: area-level false sharing
				}
				res.ConflictPairs++
				if vclock.ConcurrentWith(k, h.clock) {
					pr := makePair(h.id, id, e.Area)
					if !pairSet[pr] {
						pairSet[pr] = true
						res.Pairs = append(res.Pairs, pr)
					}
					res.Racy[id] = true
				}
			}
			st.hist = append(st.hist, histEntry{id: id, write: isWrite, clock: k, off: e.Off, count: e.Count})
			if len(st.hist) > res.PeakHistory {
				res.PeakHistory = len(st.hist)
			}
			// Reference state update mirrors core.NewExactVWDetector.
			st.v.Merge(k)
			if isWrite {
				st.w = st.v.Copy()
				if opt.AbsorbOnPutAck {
					clocks[p].Merge(st.v)
				}
			} else if opt.AbsorbOnGetReply {
				clocks[p].Merge(st.w)
			}
			if opt.PruneHistory {
				res.Pruned += pruneHistory(st, clocks)
			}
		case trace.EvLockAcq:
			clocks[e.Proc].Tick(e.Proc)
			if slot, ok := lockSlots[e.Area]; ok {
				clocks[e.Proc].Merge(slot)
			}
		case trace.EvLockRel:
			clocks[e.Proc].Tick(e.Proc)
			lockSlots[e.Area] = clocks[e.Proc].Copy()
		case trace.EvBarrier:
			clocks[e.Proc].Tick(e.Proc)
			barrierBuf[e.Epoch] = append(barrierBuf[e.Epoch], e.Proc)
			if len(barrierBuf[e.Epoch]) == n {
				merged := vclock.New(n)
				for _, q := range barrierBuf[e.Epoch] {
					merged.Merge(clocks[q])
				}
				for _, q := range barrierBuf[e.Epoch] {
					clocks[q] = merged.Copy()
				}
				delete(barrierBuf, e.Epoch)
			}
		}
	}
	sort.Slice(res.Pairs, func(i, j int) bool {
		a, b := res.Pairs[i], res.Pairs[j]
		if a.A != b.A {
			if a.A.Proc != b.A.Proc {
				return a.A.Proc < b.A.Proc
			}
			return a.A.Seq < b.A.Seq
		}
		if a.B != b.B {
			if a.B.Proc != b.B.Proc {
				return a.B.Proc < b.B.Proc
			}
			return a.B.Seq < b.B.Seq
		}
		return a.Area < b.Area
	})
	return res
}

// Score is the confusion summary of a detector against ground truth,
// measured on the "flagged access" level: ground truth marks the accesses
// that have a concurrent conflicting predecessor; a detector flags the
// accesses whose check failed.
type Score struct {
	TP, FP, FN           int
	Precision, Recall    float64
	TruePairs, Flagged   int
	DetectorName         string
	FalsePositiveSamples []AccessID
}

// ScoreReports compares a detector's reports against ground truth.
func ScoreReports(truth *Result, name string, reports []core.Report) Score {
	flagged := make(map[AccessID]bool)
	for _, r := range reports {
		flagged[AccessID{Proc: r.Current.Proc, Seq: r.Current.Seq}] = true
	}
	s := Score{DetectorName: name, TruePairs: len(truth.Pairs), Flagged: len(flagged)}
	for id := range flagged {
		if truth.Racy[id] {
			s.TP++
		} else {
			s.FP++
			if len(s.FalsePositiveSamples) < 5 {
				s.FalsePositiveSamples = append(s.FalsePositiveSamples, id)
			}
		}
	}
	for id := range truth.Racy {
		if !flagged[id] {
			s.FN++
		}
	}
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	} else {
		s.Precision = 1
	}
	if s.TP+s.FN > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.FN)
	} else {
		s.Recall = 1
	}
	return s
}

// String renders the score as one table row.
func (s Score) String() string {
	return fmt.Sprintf("%-12s TP=%-4d FP=%-4d FN=%-4d precision=%.3f recall=%.3f",
		s.DetectorName, s.TP, s.FP, s.FN, s.Precision, s.Recall)
}
