package verify

import (
	"fmt"
	"sort"

	"dsmrace/internal/trace"
)

// LockOrderReport is a potential-deadlock finding: a cycle in the
// lock-acquisition order graph (lockdep-style). Two processes that acquire
// the same locks in opposite orders can deadlock on some schedule even if
// this run happened to complete — a *predictive* analysis complementary to
// race detection, in the spirit of the paper's "new interpretations of
// distributed algorithms" (§V-B).
type LockOrderReport struct {
	// Cycle is the lock-id cycle, smallest id first; Cycle[len-1] is
	// acquired while Cycle[0] is held by some process and vice versa along
	// the ring.
	Cycle []int
	// Witness names one process per edge that established it.
	Witness []int
}

// String renders the finding.
func (r LockOrderReport) String() string {
	return fmt.Sprintf("potential deadlock: lock order cycle %v (witnesses %v)", r.Cycle, r.Witness)
}

// LockOrder analyses a trace's user-lock events and reports every simple
// cycle of length 2 in the acquired-while-holding graph, plus longer cycles
// detected via strongly-connected exploration. Most real deadlocks are
// order inversions between two locks; longer cycles are reported as the
// set of locks involved.
func LockOrder(tr *trace.Trace) []LockOrderReport {
	held := make(map[int][]int) // proc -> held lock ids, acquisition order
	// edges[a][b] = witness proc: b was acquired while a was held.
	edges := make(map[int]map[int]int)

	addEdge := func(a, b, proc int) {
		m, ok := edges[a]
		if !ok {
			m = make(map[int]int)
			edges[a] = m
		}
		if _, dup := m[b]; !dup {
			m[b] = proc
		}
	}
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvLockAcq:
			for _, h := range held[e.Proc] {
				if h != int(e.Area) {
					addEdge(h, int(e.Area), e.Proc)
				}
			}
			held[e.Proc] = append(held[e.Proc], int(e.Area))
		case trace.EvLockRel:
			held[e.Proc] = removeLock(held[e.Proc], int(e.Area))
		}
	}

	var out []LockOrderReport
	seen := make(map[string]bool)
	// Length-2 inversions: a→b and b→a.
	for a, m := range edges {
		for b, wab := range m {
			if a >= b {
				continue
			}
			if wba, ok := edges[b][a]; ok {
				key := fmt.Sprintf("%d-%d", a, b)
				if !seen[key] {
					seen[key] = true
					out = append(out, LockOrderReport{Cycle: []int{a, b}, Witness: []int{wab, wba}})
				}
			}
		}
	}
	// Longer cycles: nodes on a directed cycle not already covered.
	if longer := findCycle(edges); longer != nil {
		key := fmt.Sprint(longer)
		already := false
		for _, r := range out {
			for _, l := range r.Cycle {
				for _, c := range longer {
					if l == c {
						already = true
					}
				}
			}
		}
		if !already && !seen[key] {
			out = append(out, LockOrderReport{Cycle: longer})
		}
	}
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i].Cycle) < fmt.Sprint(out[j].Cycle) })
	return out
}

// findCycle returns the node set of one directed cycle (length ≥ 2) in the
// edge map, or nil.
func findCycle(edges map[int]map[int]int) []int {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[int]int)
	var stack []int
	var cycle []int

	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = grey
		stack = append(stack, u)
		for v := range edges[u] {
			if color[v] == grey {
				// Extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == v {
						break
					}
				}
				sort.Ints(cycle)
				return true
			}
			if color[v] == white && dfs(v) {
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	nodes := make([]int, 0, len(edges))
	for u := range edges {
		nodes = append(nodes, u)
	}
	sort.Ints(nodes)
	for _, u := range nodes {
		if color[u] == white && dfs(u) {
			if len(cycle) >= 2 {
				return cycle
			}
			return nil
		}
	}
	return nil
}
