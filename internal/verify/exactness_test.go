package verify_test

import (
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
	"dsmrace/internal/verify"
)

// randomWorkload issues a mix of puts and gets over two areas.
func randomWorkload(p *dsm.Proc) error {
	for i := 0; i < 6; i++ {
		name := "x"
		if (i+p.ID())%2 == 0 {
			name = "y"
		}
		if p.Rand().Intn(3) == 0 {
			if _, err := p.GetWord(name, 0); err != nil {
				return err
			}
		} else if err := p.Put(name, 0, memory.Word(i)); err != nil {
			return err
		}
	}
	return nil
}

func runScored(t *testing.T, det core.Detector, seed int64) verify.Score {
	t.Helper()
	c, err := dsm.New(dsm.Config{Procs: 4, Seed: seed, Trace: true, RDMA: rdma.DefaultConfig(det, nil)})
	if err != nil {
		t.Fatal(err)
	}
	c.MustAlloc("x", 0, 4)
	c.MustAlloc("y", 1, 4)
	res, err := c.Run(randomWorkload)
	if err != nil {
		t.Fatal(err)
	}
	truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	return verify.ScoreReports(truth, det.Name(), res.Races)
}

// TestExactModeMatchesGroundTruthAcrossSeeds: the exact detector (no home
// tick) is both sound and complete relative to pairwise ground truth.
func TestExactModeMatchesGroundTruthAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := runScored(t, core.NewExactVWDetector(), seed)
		if s.FP != 0 || s.FN != 0 {
			t.Fatalf("seed %d: exact mode diverged: %v (fp samples %v)", seed, s, s.FalsePositiveSamples)
		}
	}
}

// TestPaperModeHomeTickLosesExactness characterises a reproduction finding
// recorded in DESIGN.md and measured by E-T10: the paper's home-tick rule
// stores a per-area write counter in the home process's clock component.
// Once completion-edge absorption spreads those inflated components through
// the system, pairwise comparisons are corrupted — a process can appear to
// "know" another's access it never causally observed — and the detector
// misses some true races that the exact (tick-free) variant reports. The
// seeds below deterministically exhibit the gap while staying close to
// truth (high recall, perfect precision on these workloads).
func TestPaperModeHomeTickLosesExactness(t *testing.T) {
	totalTP, totalFN, totalFP := 0, 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		s := runScored(t, core.NewVWDetector(), seed)
		totalTP += s.TP
		totalFN += s.FN
		totalFP += s.FP
	}
	if totalFN == 0 {
		t.Fatal("expected the home-tick collision to cost some recall on these seeds")
	}
	recall := float64(totalTP) / float64(totalTP+totalFN)
	if recall < 0.9 {
		t.Fatalf("paper mode recall collapsed: %.3f (TP=%d FN=%d)", recall, totalTP, totalFN)
	}
	if totalFP != 0 {
		t.Logf("paper mode also over-reported %d accesses on these seeds", totalFP)
	}
}
