package verify_test

import (
	"fmt"
	"testing"

	"dsmrace/internal/baseline"
	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
	"dsmrace/internal/trace"
	"dsmrace/internal/verify"
)

// tracedRun executes prog on n processes with tracing and the given
// detector, returning the result.
func tracedRun(t *testing.T, n int, det core.Detector, setup func(*dsm.Cluster), prog dsm.Program) *dsm.Result {
	t.Helper()
	c, err := dsm.New(dsm.Config{
		Procs: n,
		Seed:  7,
		Trace: true,
		RDMA:  rdma.DefaultConfig(det, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	setup(c)
	res, err := c.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGroundTruthEmptyTrace(t *testing.T) {
	res := verify.GroundTruth(&trace.Trace{Procs: 2}, verify.DefaultOptions())
	if len(res.Pairs) != 0 || res.Accesses != 0 {
		t.Fatalf("empty trace: %+v", res)
	}
}

func TestGroundTruthSyntheticRace(t *testing.T) {
	// Two writes by different procs, no synchronisation: one racing pair.
	tr := &trace.Trace{
		Procs: 2,
		Events: []trace.Event{
			{Kind: trace.EvPut, Proc: 0, Seq: 1, Area: 0, Home: 0, Count: 1},
			{Kind: trace.EvPut, Proc: 1, Seq: 1, Area: 0, Home: 0, Count: 1},
		},
	}
	res := verify.GroundTruth(tr, verify.DefaultOptions())
	if len(res.Pairs) != 1 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	want := verify.Pair{A: verify.AccessID{Proc: 0, Seq: 1}, B: verify.AccessID{Proc: 1, Seq: 1}, Area: 0}
	if res.Pairs[0] != want {
		t.Fatalf("pair = %+v", res.Pairs[0])
	}
	if !res.HasPair(verify.AccessID{Proc: 1, Seq: 1}, verify.AccessID{Proc: 0, Seq: 1}, 0) {
		t.Fatal("HasPair must be order-insensitive")
	}
	if !res.Racy[verify.AccessID{Proc: 1, Seq: 1}] {
		t.Fatal("the later access must be marked racy")
	}
	if res.Racy[verify.AccessID{Proc: 0, Seq: 1}] {
		t.Fatal("the first access has no predecessor and must not be marked")
	}
}

func TestGroundTruthReadsDoNotConflict(t *testing.T) {
	tr := &trace.Trace{
		Procs: 2,
		Events: []trace.Event{
			{Kind: trace.EvGet, Proc: 0, Seq: 1, Area: 0},
			{Kind: trace.EvGet, Proc: 1, Seq: 1, Area: 0},
		},
	}
	res := verify.GroundTruth(tr, verify.DefaultOptions())
	if len(res.Pairs) != 0 {
		t.Fatalf("read-read flagged: %v", res.Pairs)
	}
}

func TestGroundTruthLockOrdering(t *testing.T) {
	// P0 writes under lock, unlocks; P1 locks (absorbing), writes: ordered.
	tr := &trace.Trace{
		Procs: 2,
		Events: []trace.Event{
			{Kind: trace.EvLockAcq, Proc: 0, Area: 0},
			{Kind: trace.EvPut, Proc: 0, Seq: 1, Area: 0},
			{Kind: trace.EvLockRel, Proc: 0, Area: 0},
			{Kind: trace.EvLockAcq, Proc: 1, Area: 0},
			{Kind: trace.EvPut, Proc: 1, Seq: 1, Area: 0},
			{Kind: trace.EvLockRel, Proc: 1, Area: 0},
		},
	}
	res := verify.GroundTruth(tr, verify.DefaultOptions())
	if len(res.Pairs) != 0 {
		t.Fatalf("lock-ordered writes flagged: %v", res.Pairs)
	}
	// Without the lock events the same accesses race.
	tr2 := &trace.Trace{
		Procs: 2,
		Events: []trace.Event{
			{Kind: trace.EvPut, Proc: 0, Seq: 1, Area: 0},
			{Kind: trace.EvPut, Proc: 1, Seq: 1, Area: 0},
		},
	}
	if res2 := verify.GroundTruth(tr2, verify.DefaultOptions()); len(res2.Pairs) != 1 {
		t.Fatalf("unlocked variant: %v", res2.Pairs)
	}
}

func TestGroundTruthBarrierOrdering(t *testing.T) {
	tr := &trace.Trace{
		Procs: 2,
		Events: []trace.Event{
			{Kind: trace.EvPut, Proc: 0, Seq: 1, Area: 0},
			{Kind: trace.EvBarrier, Proc: 0, Epoch: 1},
			{Kind: trace.EvBarrier, Proc: 1, Epoch: 1},
			{Kind: trace.EvPut, Proc: 1, Seq: 1, Area: 0},
		},
	}
	res := verify.GroundTruth(tr, verify.DefaultOptions())
	if len(res.Pairs) != 0 {
		t.Fatalf("barrier-ordered writes flagged: %v", res.Pairs)
	}
}

func TestGroundTruthTransitiveHistory(t *testing.T) {
	// Three writers, all mutually unsynchronised: 3 pairs.
	tr := &trace.Trace{Procs: 3}
	for i := 0; i < 3; i++ {
		tr.Events = append(tr.Events, trace.Event{Kind: trace.EvPut, Proc: i, Seq: 1, Area: 0})
	}
	res := verify.GroundTruth(tr, verify.DefaultOptions())
	if len(res.Pairs) != 3 {
		t.Fatalf("pairs = %d, want 3 (full clique)", len(res.Pairs))
	}
}

func TestDetectorAgreesWithGroundTruthOnRealRuns(t *testing.T) {
	// A racy mixed workload: the exact VW detector's flags must coincide
	// with ground truth (precision = recall = 1).
	res := tracedRun(t, 4, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("x", 0, 4); c.MustAlloc("y", 1, 4) },
		func(p *dsm.Proc) error {
			for i := 0; i < 6; i++ {
				name := "x"
				if (i+p.ID())%2 == 0 {
					name = "y"
				}
				if p.Rand().Intn(3) == 0 {
					if _, err := p.GetWord(name, 0); err != nil {
						return err
					}
				} else if err := p.Put(name, 0, memory.Word(i)); err != nil {
					return err
				}
			}
			return nil
		})
	truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	if len(truth.Pairs) == 0 {
		t.Fatal("workload should race")
	}
	score := verify.ScoreReports(truth, "vw", res.Races)
	if score.Precision != 1 || score.Recall != 1 {
		t.Fatalf("vw score %v; FP samples %v", score, score.FalsePositiveSamples)
	}
}

func TestCleanProgramHasEmptyGroundTruth(t *testing.T) {
	res := tracedRun(t, 4, core.NewVWDetector(),
		func(c *dsm.Cluster) {
			for i := 0; i < 4; i++ {
				c.MustAlloc(fmt.Sprintf("s%d", i), i, 1)
			}
		},
		func(p *dsm.Proc) error {
			if err := p.Put(fmt.Sprintf("s%d", p.ID()), 0, 1); err != nil {
				return err
			}
			p.Barrier()
			_, err := p.GetWord(fmt.Sprintf("s%d", (p.ID()+1)%p.N()), 0)
			return err
		})
	truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	if len(truth.Pairs) != 0 {
		t.Fatalf("clean program ground truth: %v", truth.Pairs)
	}
	if res.RaceCount != 0 {
		t.Fatalf("clean program detector reports: %v", res.Races)
	}
}

func TestSingleClockScoresWorseThanVW(t *testing.T) {
	// Read-heavy workload after initialisation: single-clock produces false
	// positives, VW does not (E-T6's mechanism).
	prog := func(p *dsm.Proc) error {
		if p.ID() == 0 {
			if err := p.Put("x", 0, 42); err != nil {
				return err
			}
		}
		p.Barrier()
		for i := 0; i < 5; i++ {
			if _, err := p.GetWord("x", 0); err != nil {
				return err
			}
		}
		return nil
	}
	setup := func(c *dsm.Cluster) { c.MustAlloc("x", 0, 1) }

	resVW := tracedRun(t, 4, core.NewVWDetector(), setup, prog)
	truth := verify.GroundTruth(resVW.Trace, verify.DefaultOptions())
	if len(truth.Pairs) != 0 {
		t.Fatalf("workload should be race-free: %v", truth.Pairs)
	}
	if resVW.RaceCount != 0 {
		t.Fatalf("vw false positives: %v", resVW.Races)
	}

	resSC := tracedRun(t, 4, baseline.NewSingleClock(), setup, prog)
	if resSC.RaceCount == 0 {
		t.Fatal("single-clock should flag concurrent reads")
	}
	scoreSC := verify.ScoreReports(verify.GroundTruth(resSC.Trace, verify.DefaultOptions()), "single", resSC.Races)
	if scoreSC.FP == 0 {
		t.Fatalf("single-clock FP expected: %v", scoreSC)
	}
	if scoreSC.Precision >= 1 {
		t.Fatalf("single-clock precision should drop: %v", scoreSC)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	empty := &verify.Result{Racy: map[verify.AccessID]bool{}}
	s := verify.ScoreReports(empty, "none", nil)
	if s.Precision != 1 || s.Recall != 1 || s.TP+s.FP+s.FN != 0 {
		t.Fatalf("empty score: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("score string")
	}
	// A detector that misses everything.
	truth := &verify.Result{Racy: map[verify.AccessID]bool{{Proc: 1, Seq: 2}: true}}
	s2 := verify.ScoreReports(truth, "lazy", nil)
	if s2.FN != 1 || s2.Recall != 0 {
		t.Fatalf("lazy score: %+v", s2)
	}
}

func TestAccessIDString(t *testing.T) {
	if (verify.AccessID{Proc: 2, Seq: 9}).String() != "P2#9" {
		t.Fatal("AccessID format")
	}
}

func TestWordLevelGroundTruthIgnoresDisjointSlots(t *testing.T) {
	// Two processes write disjoint words of one area concurrently: a race
	// at the model's area granularity, benign at word granularity — the
	// §V-A false-sharing measurement.
	res := tracedRun(t, 2, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("slots", 0, 2) },
		func(p *dsm.Proc) error { return p.Put("slots", p.ID(), memory.Word(p.ID()+1)) })
	area := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	word := verify.GroundTruth(res.Trace, verify.WordLevelOptions())
	if len(area.Pairs) != 1 {
		t.Fatalf("area-level pairs = %v", area.Pairs)
	}
	if len(word.Pairs) != 0 {
		t.Fatalf("word-level pairs = %v", word.Pairs)
	}
	if res.RaceCount != 1 {
		t.Fatalf("detector flags = %d (the per-area clock cannot see word disjointness)", res.RaceCount)
	}
}

func TestWordLevelStillSeesOverlaps(t *testing.T) {
	res := tracedRun(t, 2, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("slots", 0, 4) },
		func(p *dsm.Proc) error {
			// Ranges [0,3) and [2,4) overlap at word 2.
			if p.ID() == 0 {
				return p.Put("slots", 0, 1, 2, 3)
			}
			return p.Put("slots", 2, 9, 9)
		})
	word := verify.GroundTruth(res.Trace, verify.WordLevelOptions())
	if len(word.Pairs) != 1 {
		t.Fatalf("overlapping ranges must race at word level: %v", word.Pairs)
	}
}

func TestPruneHistoryPreservesResults(t *testing.T) {
	// Barrier-heavy workload: barriers make old history globally known, so
	// pruning should collect aggressively without changing any verdict.
	res := tracedRun(t, 4, core.NewExactVWDetector(),
		func(c *dsm.Cluster) { c.MustAlloc("x", 0, 2) },
		func(p *dsm.Proc) error {
			for i := 0; i < 6; i++ {
				if err := p.Put("x", 0, memory.Word(i)); err != nil {
					return err
				}
				if i%2 == 1 {
					p.Barrier()
				}
			}
			return nil
		})
	plain := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	opt := verify.DefaultOptions()
	opt.PruneHistory = true
	pruned := verify.GroundTruth(res.Trace, opt)

	if len(plain.Pairs) != len(pruned.Pairs) {
		t.Fatalf("pruning changed pairs: %d vs %d", len(plain.Pairs), len(pruned.Pairs))
	}
	for i := range plain.Pairs {
		if plain.Pairs[i] != pruned.Pairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, plain.Pairs[i], pruned.Pairs[i])
		}
	}
	if len(plain.Racy) != len(pruned.Racy) {
		t.Fatalf("racy sets differ: %d vs %d", len(plain.Racy), len(pruned.Racy))
	}
	if pruned.Pruned == 0 {
		t.Fatal("barriers should let the GC collect history")
	}
	if pruned.PeakHistory >= plain.PeakHistory {
		t.Fatalf("peak history did not shrink: %d vs %d", pruned.PeakHistory, plain.PeakHistory)
	}
}

func TestPruneHistoryPropertyAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		c, err := dsm.New(dsm.Config{Procs: 3, Seed: seed, Trace: true,
			RDMA: rdma.DefaultConfig(core.NewExactVWDetector(), nil)})
		if err != nil {
			t.Fatal(err)
		}
		c.MustAlloc("x", 0, 2)
		c.MustAlloc("y", 1, 2)
		res, err := c.Run(func(p *dsm.Proc) error {
			for i := 0; i < 8; i++ {
				name := "x"
				if (i+p.ID())%2 == 0 {
					name = "y"
				}
				if p.Rand().Intn(2) == 0 {
					if _, err := p.GetWord(name, 0); err != nil {
						return err
					}
				} else if err := p.Put(name, 0, 1); err != nil {
					return err
				}
				if p.Rand().Intn(4) == 0 {
					p.Barrier()
				}
			}
			return nil
		})
		if err != nil {
			// Barrier counts can mismatch across procs with random barriers;
			// skip those seeds (deadlock is expected there).
			continue
		}
		plain := verify.GroundTruth(res.Trace, verify.DefaultOptions())
		opt := verify.DefaultOptions()
		opt.PruneHistory = true
		pruned := verify.GroundTruth(res.Trace, opt)
		if len(plain.Pairs) != len(pruned.Pairs) || len(plain.Racy) != len(pruned.Racy) {
			t.Fatalf("seed %d: pruning changed results", seed)
		}
	}
}
