package verify

import (
	"dsmrace/internal/core"
	"dsmrace/internal/trace"
	"dsmrace/internal/vclock"
)

// ReplayDetector runs any online detector over a recorded trace, feeding it
// the same apply-order access stream the live run produced, with reference
// clocks recomputed under opt. This evaluates detectors on *identical*
// schedules — live runs of two detectors never see exactly the same
// interleaving, because clock bytes perturb message timing.
//
// Lock events feed the replayed accesses' held-lock sets (for lockset-style
// detectors) exactly as the runtime would.
func ReplayDetector(tr *trace.Trace, det core.Detector, opt Options) []core.Report {
	n := tr.Procs
	states := make(map[int]core.AreaState)
	stateOf := func(area int) core.AreaState {
		st, ok := states[area]
		if !ok {
			st = det.NewAreaState(n)
			states[area] = st
		}
		return st
	}

	type refArea struct{ v, w vclock.VC }
	clocks := make([]vclock.VC, n)
	held := make([][]int, n)
	for i := range clocks {
		clocks[i] = vclock.New(n)
	}
	areas := make(map[int]*refArea)
	refOf := func(area int) *refArea {
		st, ok := areas[area]
		if !ok {
			st = &refArea{v: vclock.New(n), w: vclock.New(n)}
			areas[area] = st
		}
		return st
	}
	lockSlots := make(map[int]vclock.VC)
	barrierBuf := make(map[int][]int)

	var reports []core.Report
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvPut, trace.EvGet, trace.EvAtomic:
			p := e.Proc
			clocks[p].Tick(p)
			k := clocks[p].Copy()
			kind := core.Read
			if e.Kind.IsWrite() {
				kind = core.Write
			}
			acc := core.Access{
				Proc: p, Seq: e.Seq, Area: e.Area, Kind: kind,
				Clock: k, Locks: append([]int(nil), held[p]...), Time: e.Time,
			}
			rep, _ := stateOf(int(e.Area)).OnAccess(acc, e.Home, vclock.Masked{})
			if rep != nil {
				// Reports borrow detector-state scratch; Clone before keeping.
				reports = append(reports, rep.Clone())
			}
			ref := refOf(int(e.Area))
			ref.v.Merge(k)
			if kind == core.Write {
				ref.w = ref.v.Copy()
				if opt.AbsorbOnPutAck {
					clocks[p].Merge(ref.v)
				}
			} else if opt.AbsorbOnGetReply {
				clocks[p].Merge(ref.w)
			}
		case trace.EvLockAcq:
			clocks[e.Proc].Tick(e.Proc)
			if slot, ok := lockSlots[int(e.Area)]; ok {
				clocks[e.Proc].Merge(slot)
			}
			held[e.Proc] = append(held[e.Proc], int(e.Area))
		case trace.EvLockRel:
			clocks[e.Proc].Tick(e.Proc)
			lockSlots[int(e.Area)] = clocks[e.Proc].Copy()
			held[e.Proc] = removeLock(held[e.Proc], int(e.Area))
		case trace.EvBarrier:
			clocks[e.Proc].Tick(e.Proc)
			barrierBuf[e.Epoch] = append(barrierBuf[e.Epoch], e.Proc)
			if len(barrierBuf[e.Epoch]) == n {
				merged := vclock.New(n)
				for _, q := range barrierBuf[e.Epoch] {
					merged.Merge(clocks[q])
				}
				for _, q := range barrierBuf[e.Epoch] {
					clocks[q] = merged.Copy()
				}
				delete(barrierBuf, e.Epoch)
			}
		}
	}
	return reports
}

func removeLock(held []int, area int) []int {
	for i, a := range held {
		if a == area {
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}
