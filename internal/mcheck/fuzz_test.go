package mcheck

import (
	"sync"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/sim"
)

// FuzzMcheckCanonical fuzzes choice vectors and checks the canonicalization
// invariant Explore relies on: the delivery-timeline signature never merges
// two schedules with distinct observable read-value vectors. Every fuzzed
// run's (signature, observation-hash) pair is recorded in a process-global
// table keyed by litmus and protocol; a signature reappearing with a
// different observation hash — within one input or across the whole fuzzing
// session — is exactly the bug the invariant forbids.
func FuzzMcheckCanonical(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{1})
	f.Add(uint8(2), []byte{0, 1, 1})
	f.Add(uint8(7), []byte{1, 1, 1, 1, 0, 0, 1})
	f.Add(uint8(5), []byte{1, 0, 1, 0, 1, 0, 1, 0, 1, 0})

	litmuses := []Litmus{StoreBuffering(), MessagePassing()}
	type key struct {
		litmus, protocol string
		sig              uint64
	}
	var (
		mu   sync.Mutex
		seen = map[key]uint64{}
	)
	f.Fuzz(func(t *testing.T, sel uint8, raw []byte) {
		lit := litmuses[int(sel)&1]
		proto := coherence.Names()[int(sel>>1)%len(coherence.Names())]
		p, err := coherence.FromName(proto)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Litmus: lit, Protocol: p, Steps: 2, Quantum: 10 * sim.Microsecond}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		vec := make([]int, len(raw))
		for i, b := range raw {
			vec[i] = int(b) & 1
		}
		// The truncated vector zero-extends to a (usually) different
		// schedule; running both probes near-collisions on shared prefixes.
		vecs := [][]int{vec}
		if len(vec) > 0 {
			vecs = append(vecs, vec[:len(vec)/2])
		}
		for _, v := range vecs {
			obs, _, sig, err := runOne(&cfg, v)
			if err != nil {
				t.Fatal(err)
			}
			oh := obsHash(obs)
			k := key{lit.Name, proto, sig}
			mu.Lock()
			prev, ok := seen[k]
			if !ok {
				seen[k] = oh
			}
			mu.Unlock()
			if ok && prev != oh {
				t.Fatalf("%s/%s: canonical signature %#x merges schedules with distinct observations: %s",
					lit.Name, proto, sig, renderObs(&cfg.Litmus, obs))
			}
		}
	})
}
