package mcheck

import (
	"sync"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
)

// FuzzMcheckCanonical fuzzes choice vectors and checks the canonicalization
// invariant Explore relies on: the delivery-timeline signature never merges
// two schedules with distinct observable read-value vectors. Every fuzzed
// run's (signature, observation-hash) pair is recorded in a process-global
// table keyed by litmus and protocol; a signature reappearing with a
// different observation hash — within one input or across the whole fuzzing
// session — is exactly the bug the invariant forbids.
// FuzzMcheckPOREquivalence fuzzes tiny litmus configurations — 2–3 nodes,
// 1–2 one-word areas, short random put/get programs — and checks the
// reduction's soundness contract on each: exploring with POR and the memo on
// must reach exactly the unique-terminal-state set (count and commutative
// fold) and verdicts of full enumeration. This probes litmus shapes the
// pinned matrix never tries, which is where an unsound independence rule or
// a fingerprint collision would hide.
func FuzzMcheckPOREquivalence(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(3), []byte{0x12})
	f.Add(uint8(5), []byte{0xa7, 0x01})
	f.Add(uint8(14), []byte{0xff, 0x3c, 0x80})
	f.Fuzz(func(t *testing.T, sel uint8, raw []byte) {
		procs := 2 + int(sel)&1
		nvars := 1 + int(sel>>1)&1
		proto := coherence.Names()[int(sel>>2)%len(coherence.Names())]
		vars := make([]Var, nvars)
		names := []string{"x", "y"}
		for i := range vars {
			vars[i] = Var{Name: names[i], Home: i % procs}
		}
		lit := Litmus{Name: "fuzz", Procs: procs, Vars: vars}
		lit.Warm = make([][]string, procs)
		lit.Prog = make([][]Op, procs)
		val := memory.Word(1)
		for p := 0; p < procs; p++ {
			for _, name := range names[:nvars] {
				lit.Warm[p] = append(lit.Warm[p], name)
			}
			nops := 1
			if p < len(raw) {
				nops = 1 + int(raw[p])&1
			}
			for j := 0; j < nops; j++ {
				b := byte(0)
				if k := p*2 + j; k < len(raw) {
					b = raw[k]
				}
				v := names[int(b>>1)%nvars]
				if b&1 == 0 {
					lit.Prog[p] = append(lit.Prog[p], Op{Kind: OpGet, Var: v})
				} else {
					lit.Prog[p] = append(lit.Prog[p], Op{Kind: OpPut, Var: v, Val: val})
					val++
				}
			}
		}
		if err := lit.validate(); err != nil {
			t.Fatalf("generated litmus invalid: %v", err)
		}
		p1, err := coherence.FromName(proto)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Explore(Config{Litmus: lit, Protocol: p1, MaxRuns: 1 << 14})
		if err != nil {
			return // tree too big for the fuzz budget — not a property failure
		}
		p2, err := coherence.FromName(proto)
		if err != nil {
			t.Fatal(err)
		}
		por, err := Explore(Config{Litmus: lit, Protocol: p2, MaxRuns: 1 << 14, POR: true})
		if err != nil {
			t.Fatalf("POR exploration failed where full enumeration succeeded: %v", err)
		}
		if full.UniqueStates != por.UniqueStates || full.StateFold != por.StateFold ||
			full.Weakest != por.Weakest ||
			full.FirstNonSC != por.FirstNonSC || full.FirstNonCausal != por.FirstNonCausal ||
			full.StateSCViolations != por.StateSCViolations ||
			full.StateCausalViolations != por.StateCausalViolations ||
			full.StateCoherenceViolations != por.StateCoherenceViolations {
			t.Fatalf("%s: POR diverges from full enumeration:\n  full: states=%d fold=%#x weakest=%s firstNonSC=%q\n  por:  states=%d fold=%#x weakest=%s firstNonSC=%q",
				proto, full.UniqueStates, full.StateFold, full.Weakest, full.FirstNonSC,
				por.UniqueStates, por.StateFold, por.Weakest, por.FirstNonSC)
		}
		if por.Runs > full.Runs {
			t.Fatalf("%s: POR explored more schedules (%d) than full enumeration (%d)", proto, por.Runs, full.Runs)
		}
	})
}

func FuzzMcheckCanonical(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{1})
	f.Add(uint8(2), []byte{0, 1, 1})
	f.Add(uint8(7), []byte{1, 1, 1, 1, 0, 0, 1})
	f.Add(uint8(5), []byte{1, 0, 1, 0, 1, 0, 1, 0, 1, 0})

	litmuses := []Litmus{StoreBuffering(), MessagePassing()}
	type key struct {
		litmus, protocol string
		sig              uint64
	}
	var (
		mu   sync.Mutex
		seen = map[key]uint64{}
	)
	f.Fuzz(func(t *testing.T, sel uint8, raw []byte) {
		lit := litmuses[int(sel)&1]
		proto := coherence.Names()[int(sel>>1)%len(coherence.Names())]
		p, err := coherence.FromName(proto)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Litmus: lit, Protocol: p, Steps: 2, Quantum: 10 * sim.Microsecond}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		vec := make([]byte, len(raw))
		for i, b := range raw {
			vec[i] = b & 1
		}
		// The truncated vector zero-extends to a (usually) different
		// schedule; running both probes near-collisions on shared prefixes.
		vecs := [][]byte{vec}
		if len(vec) > 0 {
			vecs = append(vecs, vec[:len(vec)/2])
		}
		for _, v := range vecs {
			rec, err := runInstr(&cfg, v)
			if err != nil {
				t.Fatal(err)
			}
			obs, sig := rec.obs, rec.sig
			oh := obsHash(obs)
			k := key{lit.Name, proto, sig}
			mu.Lock()
			prev, ok := seen[k]
			if !ok {
				seen[k] = oh
			}
			mu.Unlock()
			if ok && prev != oh {
				t.Fatalf("%s/%s: canonical signature %#x merges schedules with distinct observations: %s",
					lit.Name, proto, sig, renderObs(&cfg.Litmus, obs))
			}
		}
	})
}
