package mcheck

import (
	"os"
	"testing"

	"dsmrace/internal/coherence"
)

// explore runs one litmus/protocol pair with the default knobs and the given
// budget, failing the test on any exploration error.
func explore(t *testing.T, lit Litmus, proto coherence.Protocol, maxRuns int) *Outcome {
	t.Helper()
	out, err := Explore(Config{Litmus: lit, Protocol: proto, MaxRuns: maxRuns})
	if err != nil {
		t.Fatalf("%s/%s: %v", lit.Name, proto.Name(), err)
	}
	return out
}

func mustProtocol(t *testing.T, name string) coherence.Protocol {
	t.Helper()
	p, err := coherence.FromName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// exhaustiveMatrix pins the full enumeration of every litmus under every
// stock protocol: the exact schedule count, the count surviving
// canonicalization, the deepest choice vector, and the axiom verdict. Any
// protocol or transport change that alters the schedule tree or any verdict
// moves these numbers. The two heaviest MESI enumerations (~3 minutes
// combined) only run with MCHECK_EXHAUSTIVE=1; their results are pinned from
// a full offline run like every other row.
var exhaustiveMatrix = []struct {
	litmus   string
	protocol string
	runs     int
	unique   int
	choices  int
	weakest  Level
	scViol   int
	caViol   int
	heavy    bool // needs MCHECK_EXHAUSTIVE=1 (minutes of runtime)
}{
	{"sb", "write-update", 256, 256, 8, LevelSC, 0, 0, false},
	{"sb", "write-invalidate", 3712, 3584, 12, LevelSC, 0, 0, false},
	{"sb", "causal", 64, 64, 6, LevelCausal, 26, 0, false},
	{"sb", "mesi", 53344, 48560, 16, LevelSC, 0, 0, false},
	{"iriw", "write-update", 4096, 4096, 12, LevelSC, 0, 0, false},
	{"iriw", "write-invalidate", 121792, 121792, 20, LevelSC, 0, 0, false},
	{"iriw", "causal", 256, 256, 8, LevelCausal, 4, 0, false},
	{"iriw", "mesi", 1211968, 1162048, 24, LevelSC, 0, 0, true},
	{"mp", "write-update", 256, 256, 8, LevelSC, 0, 0, false},
	{"mp", "write-invalidate", 448, 448, 10, LevelSC, 0, 0, false},
	{"mp", "causal", 70, 70, 8, LevelSC, 0, 0, false},
	{"mp", "mesi", 4864, 4864, 14, LevelSC, 0, 0, false},
	{"recall", "write-update", 4096, 4096, 12, LevelSC, 0, 0, false},
	{"recall", "write-invalidate", 72400, 63848, 18, LevelSC, 0, 0, false},
	{"recall", "causal", 5048, 5048, 13, LevelSC, 0, 0, false},
	{"recall", "mesi", 695296, 583896, 20, LevelSC, 0, 0, true},
}

// TestExhaustiveMatrix checks every pinned enumeration row. Short mode keeps
// only the sub-second rows; the two MCHECK_EXHAUSTIVE rows are also skipped
// unless explicitly requested.
func TestExhaustiveMatrix(t *testing.T) {
	exhaustive := os.Getenv("MCHECK_EXHAUSTIVE") != ""
	for _, row := range exhaustiveMatrix {
		row := row
		t.Run(row.litmus+"/"+row.protocol, func(t *testing.T) {
			if row.heavy && !exhaustive {
				t.Skip("set MCHECK_EXHAUSTIVE=1 to run the >500k-schedule enumerations")
			}
			if testing.Short() && row.runs > 10000 {
				t.Skip("short mode")
			}
			lit, err := LitmusByName(row.litmus)
			if err != nil {
				t.Fatal(err)
			}
			out := explore(t, lit, mustProtocol(t, row.protocol), 1<<21)
			if out.Runs != row.runs || out.Unique != row.unique || out.MaxChoices != row.choices {
				t.Errorf("enumeration moved: got runs=%d unique=%d choices<=%d, want runs=%d unique=%d choices<=%d",
					out.Runs, out.Unique, out.MaxChoices, row.runs, row.unique, row.choices)
			}
			if out.Weakest != row.weakest || out.SCViolations != row.scViol || out.CausalViolations != row.caViol {
				t.Errorf("verdict moved: got weakest=%s sc-viol=%d causal-viol=%d, want weakest=%s sc-viol=%d causal-viol=%d",
					out.Weakest, out.SCViolations, out.CausalViolations, row.weakest, row.scViol, row.caViol)
			}
			if out.CoherenceViolations != 0 {
				t.Errorf("coherence violations under a stock protocol: %d (first non-causal %q)",
					out.CoherenceViolations, out.FirstNonCausal)
			}
		})
	}
}

// TestCausalWeakerThanSC pins the discriminating power of the checker on the
// causal backend: store buffering and IRIW must each reach a schedule that is
// causally consistent but not sequentially consistent, and the first such
// observation must be the canonical relaxed outcome of the litmus.
func TestCausalWeakerThanSC(t *testing.T) {
	for _, tc := range []struct {
		litmus     string
		firstNonSC string
	}{
		{"sb", "P0[x=100 y:0] P1[y=200 x:0]"},
		{"iriw", "P0[x=100] P1[y=200] P2[x:100 y:0] P3[y:200 x:0]"},
	} {
		lit, err := LitmusByName(tc.litmus)
		if err != nil {
			t.Fatal(err)
		}
		out := explore(t, lit, mustProtocol(t, "causal"), 1<<16)
		if out.Weakest != LevelCausal {
			t.Errorf("%s/causal: weakest=%s, want causal (sc-viol=%d causal-viol=%d)",
				tc.litmus, out.Weakest, out.SCViolations, out.CausalViolations)
		}
		if out.SCViolations == 0 {
			t.Errorf("%s/causal: no SC violation found — the relaxed outcome is unreachable", tc.litmus)
		}
		if out.CausalViolations != 0 {
			t.Errorf("%s/causal: %d causal violations (first %q) — causal memory must stay causal",
				tc.litmus, out.CausalViolations, out.FirstNonCausal)
		}
		if out.FirstNonSC != tc.firstNonSC {
			t.Errorf("%s/causal: first non-SC observation %q, want %q", tc.litmus, out.FirstNonSC, tc.firstNonSC)
		}
	}
}

// mutationKills pins the mutation-killing harness: each deliberately broken
// protocol must produce a violation on its killing litmus — at the level the
// bug breaks — while the stock protocol on the same litmus stays clean (the
// matrix rows above). This is what proves the oracle is not vacuous.
var mutationKills = []struct {
	litmus     string
	protocol   string
	mutation   string
	weakest    Level
	scViol     int
	firstNonSC string
}{
	// Dropping one invalidation leaves a stale copy both readers can hit:
	// the relaxed SB outcome appears (still causal — the two writes are
	// unrelated — so the verdict degrades exactly one level).
	{"sb", "write-invalidate", "wi-skip-last-inval", LevelCausal, 16,
		"P0[x=100 y:0] P1[y=200 x:0]"},
	// The same mutation on the recall litmus breaks the causal chain
	// x=102 → y=103: P2 observes the raise of y with pre-recall x.
	{"recall", "write-invalidate", "wi-skip-last-inval", LevelCoherent, 36,
		"P0[x=100 x=102 y=103] P1[] P2[x:100 y:103 x:100]"},
	// Skipping the M→S downgrade on a recall lets the owner keep writing
	// silently into a line the directory believes shared — same stale-x
	// anomaly, caught at the same level.
	{"recall", "mesi", "mesi-skip-downgrade", LevelCoherent, 164,
		"P0[x=100 x=102 y=103] P1[] P2[x:100 y:103 x:100]"},
	// Dropping the dependency merge at update-apply time breaks message
	// passing: the reader observes the flag but refetches stale data.
	{"mp", "causal", "causal-skip-dep-merge", LevelCoherent, 2,
		"P0[x=100 f=101] P1[] P2[f:101 x:0]"},
}

// TestMutationKills checks every seeded protocol mutation is caught.
func TestMutationKills(t *testing.T) {
	for _, tc := range mutationKills {
		tc := tc
		t.Run(tc.litmus+"/"+tc.mutation, func(t *testing.T) {
			lit, err := LitmusByName(tc.litmus)
			if err != nil {
				t.Fatal(err)
			}
			mut, err := coherence.NewMutant(tc.mutation)
			if err != nil {
				t.Fatal(err)
			}
			out := explore(t, lit, mut, 1<<16)
			if out.Weakest != tc.weakest {
				t.Errorf("weakest=%s, want %s", out.Weakest, tc.weakest)
			}
			if out.SCViolations != tc.scViol {
				t.Errorf("sc-viol=%d, want %d", out.SCViolations, tc.scViol)
			}
			if out.FirstNonSC != tc.firstNonSC {
				t.Errorf("first non-SC observation %q, want %q", out.FirstNonSC, tc.firstNonSC)
			}
		})
	}
}

// TestSmokeGate is the CI smoke: the full enumeration of the 2-node/2-area
// store-buffering config under every stock protocol (verdicts per the pinned
// matrix) plus one mutation-kill assertion. It is the cheapest end-to-end
// proof that enumeration, canonicalization, axiom checking and the mutation
// harness all still work.
func TestSmokeGate(t *testing.T) {
	for _, name := range coherence.Names() {
		out := explore(t, StoreBuffering(), mustProtocol(t, name), 1<<16)
		wantWeakest := LevelSC
		if name == "causal" {
			wantWeakest = LevelCausal
		}
		if out.Weakest != wantWeakest {
			t.Errorf("sb/%s: weakest=%s, want %s", name, out.Weakest, wantWeakest)
		}
		if out.Unique == 0 || out.Runs < out.Unique {
			t.Errorf("sb/%s: implausible dedup stats runs=%d unique=%d", name, out.Runs, out.Unique)
		}
	}
	mut, err := coherence.NewMutant("wi-skip-last-inval")
	if err != nil {
		t.Fatal(err)
	}
	if out := explore(t, StoreBuffering(), mut, 1<<16); out.SCViolations == 0 {
		t.Errorf("sb/%s: seeded mutation not caught", mut.Name())
	}
}

// TestDeterministicRepeat runs the same explorations twice and demands
// identical outcomes — the enumeration must be a pure function of
// (litmus, protocol, knobs). Kept cheap so the -race CI job can afford it.
func TestDeterministicRepeat(t *testing.T) {
	for _, tc := range []struct {
		litmus   string
		protocol string
	}{
		{"sb", "write-update"},
		{"sb", "causal"},
		{"mp", "write-invalidate"},
		{"mp", "mesi"},
	} {
		lit, err := LitmusByName(tc.litmus)
		if err != nil {
			t.Fatal(err)
		}
		a := explore(t, lit, mustProtocol(t, tc.protocol), 1<<16)
		b := explore(t, lit, mustProtocol(t, tc.protocol), 1<<16)
		if *a != *b {
			t.Errorf("%s/%s: outcomes differ across repeats:\n  %v\n  %v", tc.litmus, tc.protocol, a, b)
		}
	}
}

// TestBudgetExceeded checks a too-small MaxRuns is a loud error, never a
// silent truncation.
func TestBudgetExceeded(t *testing.T) {
	_, err := Explore(Config{Litmus: StoreBuffering(), MaxRuns: 4})
	if err == nil {
		t.Fatal("enumeration beyond MaxRuns did not error")
	}
}

// TestValidate exercises the litmus structural checks.
func TestValidate(t *testing.T) {
	base := StoreBuffering()
	for _, tc := range []struct {
		name string
		mut  func(*Litmus)
	}{
		{"dup-value", func(l *Litmus) { l.Prog[1][0].Val = l.Prog[0][0].Val }},
		{"zero-value", func(l *Litmus) { l.Prog[0][0].Val = 0 }},
		{"unknown-var", func(l *Litmus) { l.Prog[0][1].Var = "zz" }},
		{"bad-home", func(l *Litmus) { l.Vars[0].Home = 9 }},
		{"bad-warm", func(l *Litmus) { l.Warm[0] = []string{"zz"} }},
		{"bad-sleep", func(l *Litmus) { l.Prog[0] = append(l.Prog[0], Op{Kind: OpSleep}) }},
		{"prog-count", func(l *Litmus) { l.Prog = l.Prog[:1] }},
	} {
		lit := StoreBuffering()
		tc.mut(&lit)
		if _, err := Explore(Config{Litmus: lit}); err == nil {
			t.Errorf("%s: invalid litmus accepted", tc.name)
		}
	}
	if err := base.validate(); err != nil {
		t.Errorf("valid litmus rejected: %v", err)
	}
	if _, err := LitmusByName("nope"); err == nil {
		t.Error("unknown litmus name accepted")
	}
	if _, err := Explore(Config{Litmus: StoreBuffering(), Steps: 1}); err == nil {
		t.Error("Steps=1 accepted (a one-way choice point enumerates nothing)")
	}
}
