package mcheck

import (
	"fmt"

	"dsmrace/internal/sim"
)

// Canned litmus configurations. Written values encode (proc+1)*100 + op
// index, so every value is globally unique and a violation report reads
// directly as "who wrote what".

// StoreBuffering is the classic SB litmus on two nodes: each process writes
// its own home variable, then reads the other's. The relaxed outcome — both
// reads observe the initial value — is causally consistent (the two writes
// are causally unrelated) but not sequentially consistent. Write-update,
// write-invalidate and MESI must never produce it; causal memory must.
func StoreBuffering() Litmus {
	return Litmus{
		Name:  "sb",
		Procs: 2,
		Vars:  []Var{{Name: "x", Home: 0}, {Name: "y", Home: 1}},
		Warm:  [][]string{{"y"}, {"x"}},
		Prog: [][]Op{
			{{Kind: OpPut, Var: "x", Val: 100}, {Kind: OpGet, Var: "y"}},
			{{Kind: OpPut, Var: "y", Val: 200}, {Kind: OpGet, Var: "x"}},
		},
	}
}

// IRIW (independent reads of independent writes) on four nodes: two writers
// touch unrelated variables; two readers read both in opposite orders. The
// readers sleep past the writes first, so each reader's warm copy may or may
// not have absorbed each write's asynchronous update by read time — under
// causal memory the updates travel on four independent links, and a schedule
// where the readers disagree on which write happened first (causal-but-not-
// SC: the writes are unrelated) is reachable. Invalidation-based protocols
// serialize each write against every copy before it completes, so they stay
// SC on every schedule.
func IRIW() Litmus {
	return Litmus{
		Name:  "iriw",
		Procs: 4,
		Vars:  []Var{{Name: "x", Home: 0}, {Name: "y", Home: 1}},
		Warm:  [][]string{nil, nil, {"x", "y"}, {"y", "x"}},
		Prog: [][]Op{
			{{Kind: OpPut, Var: "x", Val: 100}},
			{{Kind: OpPut, Var: "y", Val: 200}},
			{{Kind: OpSleep, D: 5 * sim.Microsecond}, {Kind: OpGet, Var: "x"}, {Kind: OpGet, Var: "y"}},
			{{Kind: OpSleep, D: 5 * sim.Microsecond}, {Kind: OpGet, Var: "y"}, {Kind: OpGet, Var: "x"}},
		},
	}
}

// MessagePassing on three nodes: the writer publishes data (x, homed away
// from both writer and reader) and then raises a flag (f, homed on the
// writer itself) — two different links to the reader, so the home-fanned
// updates can arrive in either order. The reader sleeps long enough for the
// flag's update to land while the data's can still be in flight. Every
// protocol here must keep the causal chain: a reader that observes the flag
// must observe the data — under causal memory the flag's dependency clock
// (which covers the data write) forces the stale data copy to refetch. The
// causal-skip-dep-merge mutant drops exactly that clock, and the reader
// observes f=101 with x still 0.
func MessagePassing() Litmus {
	return Litmus{
		Name:  "mp",
		Procs: 3,
		Vars:  []Var{{Name: "x", Home: 1}, {Name: "f", Home: 0}},
		Warm:  [][]string{nil, nil, {"x", "f"}},
		Prog: [][]Op{
			{{Kind: OpPut, Var: "x", Val: 100}, {Kind: OpPut, Var: "f", Val: 101}},
			nil,
			{{Kind: OpSleep, D: 10 * sim.Microsecond}, {Kind: OpGet, Var: "f"}, {Kind: OpGet, Var: "x"}},
		},
	}
}

// RecallWindow is a MESI-focused config: P0 warms x into an exclusive line
// and writes it silently; P2's read recalls the line mid-window (the sleep
// holds P0 between its two writes so the recall can land there); P0 then
// writes x again and raises y. Under correct MESI the recall demoted P0's
// line, so the second x write invalidates P2's copy before completing and
// P2's final read refetches. Under the mesi-skip-downgrade mutant P0 keeps
// writing silently into a line the directory believes demoted, and P2 can
// observe y's raise together with stale x — a sequential-consistency
// violation the checker must catch.
func RecallWindow() Litmus {
	return Litmus{
		Name:  "recall",
		Procs: 3,
		Vars:  []Var{{Name: "x", Home: 1}, {Name: "y", Home: 1}},
		Warm:  [][]string{{"x"}, nil, nil},
		Prog: [][]Op{
			{
				{Kind: OpPut, Var: "x", Val: 100},
				{Kind: OpSleep, D: 15 * sim.Microsecond},
				{Kind: OpPut, Var: "x", Val: 102},
				{Kind: OpPut, Var: "y", Val: 103},
			},
			nil,
			{{Kind: OpGet, Var: "x"}, {Kind: OpGet, Var: "y"}, {Kind: OpGet, Var: "x"}},
		},
	}
}

// StoreBuffering3 is a three-writer store-buffering ring: each of three
// processes writes its own home variable and then reads its neighbour's
// (P0: x=·, read y; P1: y=·, read z; P2: z=·, read x). The cyclic relaxed
// outcome — every read observes the initial value — is causal-but-not-SC,
// like two-process SB, but the schedule tree is an order of magnitude
// deeper: three home fan-outs and three cross reads all race inside the
// window. Full enumeration of this config was beyond the per-PR budget
// before partial-order reduction; under POR it is enumerable in seconds and
// its verdict row is pinned like every other.
func StoreBuffering3() Litmus {
	return Litmus{
		Name:  "sb3",
		Procs: 3,
		Vars:  []Var{{Name: "x", Home: 0}, {Name: "y", Home: 1}, {Name: "z", Home: 2}},
		Warm:  [][]string{{"y"}, {"z"}, {"x"}},
		Prog: [][]Op{
			{{Kind: OpPut, Var: "x", Val: 100}, {Kind: OpGet, Var: "y"}},
			{{Kind: OpPut, Var: "y", Val: 200}, {Kind: OpGet, Var: "z"}},
			{{Kind: OpPut, Var: "z", Val: 300}, {Kind: OpGet, Var: "x"}},
		},
	}
}

// Litmuses returns every canned configuration.
func Litmuses() []Litmus {
	return []Litmus{StoreBuffering(), IRIW(), MessagePassing(), RecallWindow(), StoreBuffering3()}
}

// LitmusByName resolves a canned configuration by its Name.
func LitmusByName(name string) (Litmus, error) {
	for _, l := range Litmuses() {
		if l.Name == name {
			return l, nil
		}
	}
	return Litmus{}, fmt.Errorf("mcheck: unknown litmus %q (want sb, iriw, mp, recall or sb3)", name)
}
