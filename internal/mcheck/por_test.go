package mcheck

import (
	"os"
	"reflect"
	"testing"

	"dsmrace/internal/coherence"
)

// explorePOR runs one litmus/protocol pair with partial-order reduction on,
// failing the test on any exploration error.
func explorePOR(t *testing.T, lit Litmus, proto coherence.Protocol, maxRuns int) *Outcome {
	t.Helper()
	out, err := Explore(Config{Litmus: lit, Protocol: proto, MaxRuns: maxRuns, POR: true})
	if err != nil {
		t.Fatalf("%s/%s (por): %v", lit.Name, proto.Name(), err)
	}
	return out
}

// porMatrix pins the reduced enumeration of every litmus under every stock
// protocol: the explored-schedule count under POR, the unique-terminal-state
// count, the commutative state fold, and the state-level verdict. fullRuns
// echoes the full-enumeration schedule count (the exhaustiveMatrix rows; the
// sb3 write-invalidate figure is from an offline full run, and the sb3 MESI
// tree — 24 choice points, ~16.7M leaves — was never fully enumerable within
// the per-PR budget, which is exactly why its row exists: POR finishes it in
// under two thousand runs). fullRuns is 0 where full enumeration is
// unbounded-infeasible rather than merely slow. Every row here runs per PR —
// including the two MESI rows that are MCHECK_EXHAUSTIVE-gated in their
// full-enumeration form.
var porMatrix = []struct {
	litmus   string
	protocol string
	fullRuns int
	porRuns  int
	choices  int
	states   int
	fold     uint64
	weakest  Level
	stateScV int
	mustBe5x bool // the issue's floor: POR must cut iriw rows >= 5x
}{
	{"sb", "write-update", 256, 48, 8, 3, 0x7d94ff313e60110f, LevelSC, 0, false},
	{"sb", "write-invalidate", 3712, 124, 12, 3, 0x7d94ff313e60110f, LevelSC, 0, false},
	{"sb", "causal", 64, 45, 6, 4, 0xb5deb6f412e0a08c, LevelCausal, 1, false},
	{"sb", "mesi", 53344, 306, 16, 3, 0x7d94ff313e60110f, LevelSC, 0, false},
	{"iriw", "write-update", 4096, 315, 12, 4, 0xef6131216f66880c, LevelSC, 0, true},
	{"iriw", "write-invalidate", 121792, 5130, 20, 15, 0xf13ee1df1a953367, LevelSC, 0, true},
	{"iriw", "causal", 256, 196, 8, 16, 0xdb2f7a443f79c430, LevelCausal, 1, false},
	{"iriw", "mesi", 1211968, 7751, 24, 15, 0xf13ee1df1a953367, LevelSC, 0, true},
	{"mp", "write-update", 256, 32, 8, 2, 0xb69d9a4c79bfc449, LevelSC, 0, false},
	{"mp", "write-invalidate", 448, 46, 10, 2, 0x59bddcce57511c1e, LevelSC, 0, false},
	{"mp", "causal", 70, 25, 8, 3, 0xc84c3e7ff5fb51d2, LevelSC, 0, false},
	{"mp", "mesi", 4864, 60, 14, 2, 0x59bddcce57511c1e, LevelSC, 0, false},
	{"recall", "write-update", 4096, 93, 12, 6, 0x3b842fbef609106d, LevelSC, 0, false},
	{"recall", "write-invalidate", 72400, 212, 18, 6, 0x3b842fbef609106d, LevelSC, 0, false},
	{"recall", "causal", 5048, 147, 13, 6, 0x3b842fbef609106d, LevelSC, 0, false},
	{"recall", "mesi", 695296, 334, 20, 4, 0xe97b3fa0c43e4d66, LevelSC, 0, false},
	{"sb3", "write-update", 4096, 450, 12, 4, 0x3a2658ded3e26cd9, LevelSC, 0, false},
	{"sb3", "write-invalidate", 198496, 1079, 18, 7, 0xcf4d3b1527d7f50, LevelSC, 0, false},
	{"sb3", "causal", 512, 401, 9, 8, 0x5a9acd60fc4fb6cc, LevelCausal, 1, false},
	{"sb3", "mesi", 0, 1901, 24, 7, 0xcf4d3b1527d7f50, LevelSC, 0, false},
}

// TestPORMatrix checks every pinned reduced-enumeration row. All twenty rows
// — including iriw/mesi and recall/mesi, whose full enumerations need
// MCHECK_EXHAUSTIVE=1 — complete in a few seconds combined, so none is
// gated or skipped in short mode.
func TestPORMatrix(t *testing.T) {
	for _, row := range porMatrix {
		row := row
		t.Run(row.litmus+"/"+row.protocol, func(t *testing.T) {
			lit, err := LitmusByName(row.litmus)
			if err != nil {
				t.Fatal(err)
			}
			out := explorePOR(t, lit, mustProtocol(t, row.protocol), 1<<21)
			if out.Runs != row.porRuns || out.MaxChoices != row.choices {
				t.Errorf("reduced enumeration moved: got runs=%d choices<=%d, want runs=%d choices<=%d",
					out.Runs, out.MaxChoices, row.porRuns, row.choices)
			}
			if out.UniqueStates != row.states || out.StateFold != row.fold {
				t.Errorf("state set moved: got states=%d fold=%#x, want states=%d fold=%#x",
					out.UniqueStates, out.StateFold, row.states, row.fold)
			}
			if out.Weakest != row.weakest || out.StateSCViolations != row.stateScV {
				t.Errorf("verdict moved: got weakest=%s state-sc-viol=%d, want weakest=%s state-sc-viol=%d",
					out.Weakest, out.StateSCViolations, row.weakest, row.stateScV)
			}
			if row.fullRuns > 0 {
				ratio := float64(row.fullRuns) / float64(out.Runs)
				if ratio < 1 {
					t.Errorf("POR explored more schedules (%d) than full enumeration (%d)", out.Runs, row.fullRuns)
				}
				if row.mustBe5x && ratio < 5 {
					t.Errorf("POR reduction on %s/%s is %.1fx, want >= 5x (%d -> %d)",
						row.litmus, row.protocol, ratio, row.fullRuns, out.Runs)
				}
			}
		})
	}
}

// TestPOREquivalenceGate is the satellite the reduction's soundness rests
// on: for every litmus/protocol row whose full enumeration is sub-second,
// run both full enumeration and POR (with a multi-worker pool) in the same
// process and demand the identical unique-terminal-state set (count and
// commutative fold), identical verdicts at every level, and identical
// first-violation observations. The schedule-weighted counters (Runs,
// Unique, SCViolations...) legitimately differ — that is the whole point of
// the reduction — but nothing state-level may move.
func TestPOREquivalenceGate(t *testing.T) {
	for _, row := range porMatrix {
		row := row
		if row.fullRuns == 0 || row.fullRuns > 10000 {
			continue // covered by the offline-pinned fold in porMatrix
		}
		t.Run(row.litmus+"/"+row.protocol, func(t *testing.T) {
			lit, err := LitmusByName(row.litmus)
			if err != nil {
				t.Fatal(err)
			}
			full := explore(t, lit, mustProtocol(t, row.protocol), 1<<21)
			por, err := Explore(Config{
				Litmus: lit, Protocol: mustProtocol(t, row.protocol),
				MaxRuns: 1 << 21, POR: true, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if full.UniqueStates != por.UniqueStates || full.StateFold != por.StateFold {
				t.Errorf("terminal-state set differs: full states=%d fold=%#x, por states=%d fold=%#x",
					full.UniqueStates, full.StateFold, por.UniqueStates, por.StateFold)
			}
			if full.Weakest != por.Weakest {
				t.Errorf("verdict differs: full weakest=%s, por weakest=%s", full.Weakest, por.Weakest)
			}
			if full.FirstNonSC != por.FirstNonSC || full.FirstNonCausal != por.FirstNonCausal {
				t.Errorf("first-violation observations differ: full (%q, %q), por (%q, %q)",
					full.FirstNonSC, full.FirstNonCausal, por.FirstNonSC, por.FirstNonCausal)
			}
			if full.StateSCViolations != por.StateSCViolations ||
				full.StateCausalViolations != por.StateCausalViolations ||
				full.StateCoherenceViolations != por.StateCoherenceViolations {
				t.Errorf("state-level violation counts differ: full (%d,%d,%d), por (%d,%d,%d)",
					full.StateSCViolations, full.StateCausalViolations, full.StateCoherenceViolations,
					por.StateSCViolations, por.StateCausalViolations, por.StateCoherenceViolations)
			}
		})
	}
}

// TestPORMutantSweep sweeps the whole coherence.NewMutant matrix under POR:
// every seeded protocol bug must still be caught, at the pinned level, with
// the pinned first-violation observation. A reduction that pruned away the
// one interleaving exposing a mutant would pass the stock-protocol gates and
// silently blind the oracle — this is the test that forbids it.
func TestPORMutantSweep(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range mutationKills {
		tc := tc
		covered[tc.mutation] = true
		t.Run(tc.litmus+"/"+tc.mutation, func(t *testing.T) {
			lit, err := LitmusByName(tc.litmus)
			if err != nil {
				t.Fatal(err)
			}
			mut, err := coherence.NewMutant(tc.mutation)
			if err != nil {
				t.Fatal(err)
			}
			out := explorePOR(t, lit, mut, 1<<21)
			if out.Weakest != tc.weakest {
				t.Errorf("weakest=%s, want %s", out.Weakest, tc.weakest)
			}
			if out.StateSCViolations == 0 {
				t.Error("mutant produced no SC-violating terminal state under POR")
			}
			if out.FirstNonSC != tc.firstNonSC {
				t.Errorf("first non-SC observation %q, want %q", out.FirstNonSC, tc.firstNonSC)
			}
		})
	}
	for _, name := range coherence.MutantNames() {
		if !covered[name] {
			t.Errorf("mutant %q has no kill row — the POR sweep does not cover it", name)
		}
	}
}

// TestParallelDeterminism pins the parallel engine's central promise: the
// Outcome struct is bit-identical whether one worker or four explore the
// tree, with and without POR. The CI -race job runs exactly this test, so a
// data race anywhere in the pool turns it red.
func TestParallelDeterminism(t *testing.T) {
	for _, tc := range []struct {
		litmus   string
		protocol string
		por      bool
	}{
		{"sb", "write-invalidate", false},
		{"sb", "write-invalidate", true},
		{"iriw", "write-update", false},
		{"iriw", "write-update", true},
		{"recall", "causal", true},
		{"sb3", "mesi", true},
	} {
		lit, err := LitmusByName(tc.litmus)
		if err != nil {
			t.Fatal(err)
		}
		var outs []*Outcome
		for _, workers := range []int{1, 4} {
			out, err := Explore(Config{
				Litmus: lit, Protocol: mustProtocol(t, tc.protocol),
				MaxRuns: 1 << 21, POR: tc.por, Workers: workers,
			})
			if err != nil {
				t.Fatalf("%s/%s workers=%d: %v", tc.litmus, tc.protocol, workers, err)
			}
			outs = append(outs, out)
		}
		if !reflect.DeepEqual(outs[0], outs[1]) {
			t.Errorf("%s/%s (por=%v): outcome differs across worker counts:\n  workers=1: %+v\n  workers=4: %+v",
				tc.litmus, tc.protocol, tc.por, outs[0], outs[1])
		}
	}
}

// TestPORHeavyEquivalence runs the full-vs-POR state-set comparison on the
// two enumerations too heavy for the per-PR gate (iriw and recall under
// MESI, >500k schedules each). Gated like the heavy exhaustiveMatrix rows;
// the per-PR evidence for these rows is the offline-pinned fold in
// porMatrix.
func TestPORHeavyEquivalence(t *testing.T) {
	if os.Getenv("MCHECK_EXHAUSTIVE") == "" {
		t.Skip("set MCHECK_EXHAUSTIVE=1 to cross-check the >500k-schedule enumerations")
	}
	for _, tc := range []struct{ litmus, protocol string }{
		{"iriw", "mesi"},
		{"recall", "mesi"},
	} {
		lit, err := LitmusByName(tc.litmus)
		if err != nil {
			t.Fatal(err)
		}
		full := explore(t, lit, mustProtocol(t, tc.protocol), 1<<21)
		por := explorePOR(t, lit, mustProtocol(t, tc.protocol), 1<<21)
		if full.UniqueStates != por.UniqueStates || full.StateFold != por.StateFold ||
			full.Weakest != por.Weakest || full.FirstNonSC != por.FirstNonSC ||
			full.FirstNonCausal != por.FirstNonCausal {
			t.Errorf("%s/%s: POR diverges from full enumeration: full states=%d fold=%#x weakest=%s, por states=%d fold=%#x weakest=%s",
				tc.litmus, tc.protocol, full.UniqueStates, full.StateFold, full.Weakest,
				por.UniqueStates, por.StateFold, por.Weakest)
		}
	}
}
