// Package mcheck is a protocol-independent exhaustive-exploration checker
// for the simulator's coherence protocols: a tiny model checker that, for
// litmus-sized configurations (2–4 nodes, one-word variables, straight-line
// programs), enumerates EVERY distinguishable delivery schedule and checks
// each terminal state's observed read values against memory-model axioms.
//
// # Enumeration
//
// Schedules are enumerated through the simulation kernel's choice hook
// (sim.Config.MetaChooser): the network's choice-delay layer
// (network.EnableChoiceDelay) turns every message sent inside the measured
// window into a choice point that stretches its latency by 0..Steps-1
// quanta, so delivery order itself becomes a decision variable. The
// explorer walks the resulting tree by stateless replay — each run replays
// a recorded choice prefix against a fresh cluster and extends it with
// zeros — which systematically replaces seed sampling with full
// enumeration. Warm-up reads and the barrier run before the window on the
// default schedule, so the tree covers exactly the measured operations.
//
// Exploration is work-shared (workers.go): runs are grouped into
// generations, a worker pool (Config.Workers, default GOMAXPROCS) executes
// each generation's independent replays concurrently, and everything
// order-sensitive — candidate ordering, memo lookups, the final merge —
// happens serially in choice-vector lexicographic order, which is exactly
// the legacy depth-first enumeration order. The Outcome is therefore
// bit-identical for every worker count, and with reduction off it
// reproduces the serial exhaustive enumeration bit-for-bit.
//
// # Partial-order reduction
//
// Config.POR turns on three pruning rules (por.go) plus a state-fingerprint
// memo, cutting explored schedules by one to three orders of magnitude
// while provably (rules R1/R2) or gate-checkably (rule R3, the conservative
// independence cone) preserving the unique-terminal-state set, the verdict,
// and the first-violation observations. R1 drops alternatives the per-link
// FIFO clamp makes indistinguishable before running them; R2 stops delaying
// messages once every measured program has finished; R3 prunes a delay
// unless some dependent event — a delivery touching the delayed message's
// destination or a conflicting area, a send it could reorder against, a
// measured operation or wakeup on its path — falls inside the shifted
// window. The memo fingerprints machine state at each choice point (logical
// memory, protocol replica state, lock tables, pending operations, kernel
// queue profile, the in-flight message multiset with relative arrival
// times) and cuts off re-entered subtrees, keeping only the
// lexicographically first occurrence so first-violation reporting is
// stable. The equivalence gates (TestPOREquivalenceGate,
// FuzzMcheckPOREquivalence) compare full and reduced exploration end to
// end; TestPORMutantSweep proves no seeded protocol bug hides behind a
// pruned interleaving.
//
// # Canonicalization
//
// Distinct choice vectors can collapse to the same behaviour (the per-link
// FIFO clamp absorbs a delay difference). Each run is fingerprinted by its
// delivery timeline — an FNV-1a hash over (src, dst, kind, size, time) of
// every delivered message — and schedules with equal signatures are
// deduplicated. The explorer cross-checks that merged schedules observed
// identical read values; FuzzMcheckCanonical fuzzes that invariant.
//
// # Axioms
//
// Each unique schedule's observations are classified at the strongest level
// they satisfy: sequential consistency (one interleaving explains all
// reads), causal consistency (per-process serializations extending the
// program-order ∪ reads-from causality relation), or per-variable
// coherence. Written values are globally unique, so reads-from is derived
// from values alone. Write-update, write-invalidate and MESI must be SC on
// every schedule of every litmus; causal memory must be causal everywhere
// and non-SC somewhere on store-buffering and IRIW. The seeded protocol
// mutations (coherence.NewMutant) must each be caught: a surviving stale
// copy, a skipped downgrade or a dropped dependency merge all surface as
// axiom violations on the canned litmus configs.
package mcheck
