// Package mcheck is a protocol-independent exhaustive-exploration checker
// for the simulator's coherence protocols: a tiny model checker that, for
// litmus-sized configurations (2–4 nodes, one-word variables, straight-line
// programs), enumerates EVERY distinguishable delivery schedule and checks
// each terminal state's observed read values against memory-model axioms.
//
// # Enumeration
//
// Schedules are enumerated through the simulation kernel's choice hook
// (sim.Config.Chooser): the network's choice-delay layer
// (network.EnableChoiceDelay) turns every message sent inside the measured
// window into a choice point that stretches its latency by 0..Steps-1
// quanta, so delivery order itself becomes a decision variable. The
// explorer walks the resulting tree depth-first by stateless replay — each
// run replays a recorded choice prefix against a fresh cluster, extends it
// with zeros, and the deepest incrementable position advances next — which
// systematically replaces seed sampling with full enumeration. Warm-up
// reads and the barrier run before the window on the default schedule, so
// the tree covers exactly the measured operations.
//
// # Canonicalization
//
// Distinct choice vectors can collapse to the same behaviour (the per-link
// FIFO clamp absorbs a delay difference). Each run is fingerprinted by its
// delivery timeline — an FNV-1a hash over (src, dst, kind, size, time) of
// every delivered message — and schedules with equal signatures are
// deduplicated. The explorer cross-checks that merged schedules observed
// identical read values; FuzzMcheckCanonical fuzzes that invariant.
//
// # Axioms
//
// Each unique schedule's observations are classified at the strongest level
// they satisfy: sequential consistency (one interleaving explains all
// reads), causal consistency (per-process serializations extending the
// program-order ∪ reads-from causality relation), or per-variable
// coherence. Written values are globally unique, so reads-from is derived
// from values alone. Write-update, write-invalidate and MESI must be SC on
// every schedule of every litmus; causal memory must be causal everywhere
// and non-SC somewhere on store-buffering and IRIW. The seeded protocol
// mutations (coherence.NewMutant) must each be caught: a surviving stale
// copy, a skipped downgrade or a dropped dependency merge all surface as
// axiom violations on the canned litmus configs.
package mcheck
