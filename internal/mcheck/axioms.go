package mcheck

import (
	"encoding/binary"
	"fmt"

	"dsmrace/internal/memory"
)

// Level orders the memory-model axiom sets from weakest to strongest. A
// schedule's observations are classified at the strongest level they
// satisfy; SC ⊃ causal ⊃ coherent, so the levels are totally ordered.
type Level int

// Consistency levels.
const (
	// LevelNone: the observations violate even per-variable coherence.
	LevelNone Level = iota
	// LevelCoherent: every variable's accesses serialize in isolation, but
	// some causal dependency is violated across variables.
	LevelCoherent
	// LevelCausal: causally ordered writes are observed in order everywhere,
	// but no single total order explains all observations.
	LevelCausal
	// LevelSC: one interleaving of the program orders explains every read.
	LevelSC
)

// String names the level for reports.
func (l Level) String() string {
	switch l {
	case LevelSC:
		return "sc"
	case LevelCausal:
		return "causal"
	case LevelCoherent:
		return "coherent"
	default:
		return "none"
	}
}

// event is one measured memory operation with its observed value. Written
// values are globally unique and nonzero (Litmus.validate), so a read's
// value alone identifies the write it read from (0 = the initial value).
type event struct {
	proc  int
	write bool
	v     int // variable index
	val   memory.Word
}

// classify returns the strongest level the observations satisfy. The
// checkers are exact (exhaustive witness search with memoization), which the
// tiny litmus histories — a dozen events — keep cheap.
func classify(h [][]event, vars int) (Level, error) {
	if checkSC(h, vars) {
		return LevelSC, nil
	}
	causal, err := checkCausal(h, vars)
	if err != nil {
		return LevelNone, err
	}
	if causal {
		return LevelCausal, nil
	}
	if checkCoherence(h, vars) {
		return LevelCoherent, nil
	}
	return LevelNone, nil
}

// checkSC searches for a sequentially consistent witness: an interleaving
// of the per-process programs in which every read returns the most recent
// write to its variable (or the initial 0). Backtracking over process
// frontiers with a (frontier, memory) failure memo.
func checkSC(h [][]event, vars int) bool {
	idx := make([]int, len(h))
	mem := make([]memory.Word, vars)
	seen := map[string]bool{}
	key := func() string {
		b := make([]byte, 0, len(idx)+8*len(mem))
		for _, i := range idx {
			b = append(b, byte(i))
		}
		for _, m := range mem {
			b = binary.LittleEndian.AppendUint64(b, uint64(m))
		}
		return string(b)
	}
	var dfs func() bool
	dfs = func() bool {
		done := true
		for p := range h {
			if idx[p] < len(h[p]) {
				done = false
				break
			}
		}
		if done {
			return true
		}
		k := key()
		if seen[k] {
			return false
		}
		seen[k] = true
		for p := range h {
			if idx[p] >= len(h[p]) {
				continue
			}
			e := h[p][idx[p]]
			if e.write {
				old := mem[e.v]
				mem[e.v] = e.val
				idx[p]++
				if dfs() {
					return true
				}
				idx[p]--
				mem[e.v] = old
			} else if mem[e.v] == e.val {
				idx[p]++
				if dfs() {
					return true
				}
				idx[p]--
			}
		}
		return false
	}
	return dfs()
}

// checkCoherence checks per-variable sequential consistency: each
// variable's accesses, taken alone, must serialize. (Cache coherence is
// exactly SC restricted to a single location.)
func checkCoherence(h [][]event, vars int) bool {
	for v := 0; v < vars; v++ {
		r := make([][]event, len(h))
		for p, seq := range h {
			for _, e := range seq {
				if e.v == v {
					r[p] = append(r[p], e)
				}
			}
		}
		if !checkSC(r, vars) {
			return false
		}
	}
	return true
}

// checkCausal checks causal memory's axiom (Ahamad et al.): writes related
// by the causality order — the transitive closure of program order and
// reads-from — must be observed in that order by everyone. Operationally:
// for every process p there must exist a serialization of all writes plus
// p's own reads that extends the causality order and gives every read the
// latest preceding write. The causality order itself must be acyclic.
func checkCausal(h [][]event, vars int) (bool, error) {
	var all []event
	for _, seq := range h {
		all = append(all, seq...)
	}
	n := len(all)
	if n > 64 {
		return false, fmt.Errorf("causal checker supports at most 64 events, got %d", n)
	}
	// Reads-from: a nonzero read value names its writer; an unknown value
	// is data corruption, below any consistency level.
	writerOf := map[memory.Word]int{}
	for i, e := range all {
		if e.write {
			writerOf[e.val] = i
		}
	}
	// pred[i] is the bitset of events that must causally precede event i:
	// program-order edges plus reads-from edges, transitively closed.
	pred := make([]uint64, n)
	base := 0
	for _, seq := range h {
		for j := 1; j < len(seq); j++ {
			pred[base+j] |= 1 << uint(base+j-1)
		}
		base += len(seq)
	}
	for i, e := range all {
		if e.write || e.val == 0 {
			continue
		}
		w, ok := writerOf[e.val]
		if !ok || all[w].v != e.v {
			return false, fmt.Errorf("read of %s observed %d, written by no write to it", varName(e.v), e.val)
		}
		pred[i] |= 1 << uint(w)
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			m := pred[i]
			for j := 0; j < n; j++ {
				if m&(1<<uint(j)) != 0 {
					m |= pred[j]
				}
			}
			if m != pred[i] {
				pred[i] = m
				changed = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if pred[i]&(1<<uint(i)) != 0 {
			return false, nil // causality cycle
		}
	}
	for p := range h {
		var inS uint64
		for i, e := range all {
			if e.write || e.proc == p {
				inS |= 1 << uint(i)
			}
		}
		if !serialize(all, pred, inS, vars) {
			return false, nil
		}
	}
	return true, nil
}

// serialize searches for a total order of the events in inS that extends
// the causal precedence pred and satisfies read semantics (each read sees
// the latest placed write to its variable, or 0 when none precedes it).
func serialize(all []event, pred []uint64, inS uint64, vars int) bool {
	mem := make([]memory.Word, vars)
	seen := map[string]bool{}
	var placed uint64
	key := func() string {
		b := make([]byte, 0, 8+8*len(mem))
		b = binary.LittleEndian.AppendUint64(b, placed)
		for _, m := range mem {
			b = binary.LittleEndian.AppendUint64(b, uint64(m))
		}
		return string(b)
	}
	var dfs func() bool
	dfs = func() bool {
		if placed == inS {
			return true
		}
		k := key()
		if seen[k] {
			return false
		}
		seen[k] = true
		for i := range all {
			bit := uint64(1) << uint(i)
			if inS&bit == 0 || placed&bit != 0 {
				continue
			}
			if pred[i]&inS&^placed != 0 {
				continue // an in-set predecessor is still unplaced
			}
			e := all[i]
			if e.write {
				old := mem[e.v]
				mem[e.v] = e.val
				placed |= bit
				if dfs() {
					return true
				}
				placed &^= bit
				mem[e.v] = old
			} else if mem[e.v] == e.val {
				placed |= bit
				if dfs() {
					return true
				}
				placed &^= bit
			}
		}
		return false
	}
	return dfs()
}

// varName renders a variable index for error messages (the checkers don't
// carry the litmus's names; an index is unambiguous on tiny configs).
func varName(v int) string { return fmt.Sprintf("var[%d]", v) }
