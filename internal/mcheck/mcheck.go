package mcheck

import (
	"fmt"
	"strings"

	"dsmrace/internal/coherence"
	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
)

// OpKind enumerates measured litmus operations.
type OpKind int

// Operation kinds.
const (
	// OpPut writes Val (globally unique, nonzero) into word 0 of Var.
	OpPut OpKind = iota
	// OpGet reads word 0 of Var; the observed value is recorded.
	OpGet
	// OpSleep advances local time by D without touching memory — used to
	// hold a window open for a remote message (e.g. a MESI recall) to land
	// between two operations.
	OpSleep
)

// Op is one straight-line measured operation of a litmus program.
type Op struct {
	Kind OpKind
	Var  string
	Val  memory.Word // OpPut: the value written
	D    sim.Time    // OpSleep: the duration
}

// Var declares one one-word shared variable of a litmus configuration.
type Var struct {
	Name string
	Home int
}

// Litmus is one tiny configuration to exhaustively explore: a handful of
// nodes, one-word variables, and a short straight-line program per process.
// Warm-up reads run before a barrier on the default schedule (installing
// cached copies and registering sharers without adding choice points); the
// measured program runs after the barrier inside the enumerated window.
type Litmus struct {
	Name  string
	Procs int
	Vars  []Var
	// Warm lists, per process, variable names to read once pre-barrier.
	Warm [][]string
	// Prog is the measured program, one op sequence per process.
	Prog [][]Op
}

// validate checks the structural invariants the axiom checkers rely on —
// notably that every written value is nonzero and globally unique, which is
// what makes reads-from derivable from observed values alone.
func (l *Litmus) validate() error {
	if l.Procs < 1 {
		return fmt.Errorf("mcheck: litmus %q has no processes", l.Name)
	}
	if len(l.Prog) != l.Procs {
		return fmt.Errorf("mcheck: litmus %q: %d programs for %d processes", l.Name, len(l.Prog), l.Procs)
	}
	if len(l.Warm) > l.Procs {
		return fmt.Errorf("mcheck: litmus %q: %d warm-up lists for %d processes", l.Name, len(l.Warm), l.Procs)
	}
	vars := map[string]bool{}
	for _, v := range l.Vars {
		if vars[v.Name] {
			return fmt.Errorf("mcheck: litmus %q: duplicate variable %q", l.Name, v.Name)
		}
		if v.Home < 0 || v.Home >= l.Procs {
			return fmt.Errorf("mcheck: litmus %q: variable %q homed on node %d of %d", l.Name, v.Name, v.Home, l.Procs)
		}
		vars[v.Name] = true
	}
	vals := map[memory.Word]bool{}
	for p, ops := range l.Prog {
		for j, op := range ops {
			switch op.Kind {
			case OpPut:
				if op.Val == 0 || vals[op.Val] {
					return fmt.Errorf("mcheck: litmus %q: P%d op %d writes %d (values must be nonzero and unique)", l.Name, p, j, op.Val)
				}
				vals[op.Val] = true
				fallthrough
			case OpGet:
				if !vars[op.Var] {
					return fmt.Errorf("mcheck: litmus %q: P%d op %d names unknown variable %q", l.Name, p, j, op.Var)
				}
			case OpSleep:
				if op.D <= 0 {
					return fmt.Errorf("mcheck: litmus %q: P%d op %d sleeps %v", l.Name, p, j, op.D)
				}
			default:
				return fmt.Errorf("mcheck: litmus %q: P%d op %d has unknown kind %d", l.Name, p, j, int(op.Kind))
			}
		}
	}
	for _, names := range l.Warm {
		for _, name := range names {
			if !vars[name] {
				return fmt.Errorf("mcheck: litmus %q: warm-up names unknown variable %q", l.Name, name)
			}
		}
	}
	return nil
}

// Config parameterises one exhaustive exploration.
type Config struct {
	// Litmus is the configuration to explore (required).
	Litmus Litmus
	// Protocol is the coherence protocol instance under test — a stock
	// protocol or a coherence.NewMutant variant. Nil means write-update.
	Protocol coherence.Protocol
	// Steps is the number of alternatives per latency choice point
	// (default 2). The schedule tree has up to Steps^choices leaves.
	Steps int
	// Quantum is the latency stretch per choice step (default 10µs — an
	// order of magnitude above the constant 2µs link latency, so one step
	// reorders deliveries across operations).
	Quantum sim.Time
	// MaxRuns bounds the enumeration (default 65536); exceeding it is an
	// error, not a silent truncation. The cap counts runs attempted — every
	// canonical run executed, including the roots of subtrees later found
	// redundant — not unique schedules: Outcome.Unique (and, under POR,
	// Pruned and MemoHits) can each be far smaller than the run count that
	// trips the cap.
	MaxRuns int
	// POR enables dynamic partial-order reduction and state-fingerprint
	// memoization (see por.go): explored-schedule counts drop by the
	// redundant interleavings, while the unique terminal-state set, the
	// verdict, and the first-violation observations provably — and, for
	// the conservative independence cone, gate-checkably — stay identical
	// to full enumeration. Off by default: the zero Config reproduces the
	// legacy exhaustive enumeration bit-for-bit.
	POR bool
	// Workers sets the exploration worker-pool size: 0 means GOMAXPROCS,
	// 1 is serial. The Outcome is bit-identical for every value — workers
	// only execute independent replays; all order-sensitive folding
	// happens at serial generation barriers in vector order.
	Workers int
}

// Outcome summarises one exploration: every distinguishable schedule of the
// litmus under the protocol, classified against the memory-model axioms.
type Outcome struct {
	Litmus   string
	Protocol string
	// Runs is the number of schedules executed; Unique is the count left
	// after canonicalization (distinct delivery-timeline signatures) —
	// Runs-Unique choice vectors were absorbed by the per-link FIFO clamp.
	Runs, Unique int
	// MaxChoices is the deepest choice vector encountered.
	MaxChoices int
	// Weakest is the weakest consistency level observed across all unique
	// schedules (LevelSC when every schedule is sequentially consistent).
	Weakest Level
	// Per-axiom violation counts over unique schedules. A schedule counts
	// against every level it fails, so SCViolations ≥ CausalViolations ≥
	// CoherenceViolations.
	SCViolations, CausalViolations, CoherenceViolations int
	// FirstNonSC / FirstNonCausal render the first observation vector that
	// failed the level ("" when none did).
	FirstNonSC     string
	FirstNonCausal string
	// POR echoes Config.POR so a printed outcome names its mode.
	POR bool
	// Pruned counts choice-point alternatives the POR rules cut off (whole
	// subtrees each); MemoHits counts candidates absorbed by the
	// state-fingerprint memo. Both are zero under full enumeration, so a
	// run that tripped MaxRuns with nonzero Pruned/MemoHits was reducing
	// but still too big, while zeros mean reduction never applied.
	Pruned, MemoHits int
	// UniqueStates counts distinct terminal observation vectors — the
	// state-level measure the POR equivalence gates compare, invariant
	// under reduction (many unique delivery timelines fold into one
	// terminal state). StateFold is a commutative fold of their hashes, so
	// two explorations cover the same state set iff the folds match.
	UniqueStates int
	StateFold    uint64
	// State-level violation counters (per distinct terminal state, not per
	// unique schedule): identical with and without POR, unlike the
	// schedule-weighted counters above.
	StateSCViolations, StateCausalViolations, StateCoherenceViolations int
}

// String renders the outcome as a one-line verdict for logs and tables.
func (o *Outcome) String() string {
	return fmt.Sprintf("%s/%s: runs=%d unique=%d choices<=%d weakest=%s sc-viol=%d causal-viol=%d coh-viol=%d",
		o.Litmus, o.Protocol, o.Runs, o.Unique, o.MaxChoices, o.Weakest,
		o.SCViolations, o.CausalViolations, o.CoherenceViolations)
}

// Exploration constants: a draw-free constant-latency interconnect, a
// measured window armed at 1ms (warm-up and barrier traffic complete within
// microseconds, so everything before the window runs on the default
// schedule), and a runaway guard per schedule.
const (
	linkLatency = 2 * sim.Microsecond
	armAt       = sim.Millisecond
	maxEvents   = 1 << 22
)

// FNV-1a, the canonical-signature hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// obsHash fingerprints an observation vector (the per-process sequences of
// observed values).
func obsHash(obs [][]memory.Word) uint64 {
	h := uint64(fnvOffset)
	for _, seq := range obs {
		h = fnvMix(h, uint64(len(seq)))
		for _, w := range seq {
			h = fnvMix(h, uint64(w))
		}
	}
	return h
}

// renderObs formats an observation vector for violation reports.
func renderObs(lit *Litmus, obs [][]memory.Word) string {
	var b strings.Builder
	for p, ops := range lit.Prog {
		if p > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "P%d[", p)
		first := true
		for j, op := range ops {
			if op.Kind == OpSleep {
				continue
			}
			if !first {
				b.WriteByte(' ')
			}
			first = false
			sep := "="
			if op.Kind == OpGet {
				sep = ":"
			}
			fmt.Fprintf(&b, "%s%s%d", op.Var, sep, obs[p][j])
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Explore enumerates every distinguishable schedule of the litmus under the
// protocol and classifies each terminal observation against the SC, causal
// and coherence axioms. The exploration is a work-shared walk of the choice
// tree by stateless replay (see workers.go): each run replays a recorded
// prefix and extends it with zeros, and the alternatives it spawns — all of
// them, or the survivors of the partial-order-reduction rules when
// Config.POR is set (see por.go) — become further runs. Results fold in
// vector order, so the Outcome is bit-identical for any Workers value, and
// with POR off it reproduces the legacy serial depth-first enumeration
// exactly. MaxRuns caps runs attempted (not unique schedules); exceeding it
// is an error, not a silent truncation.
func Explore(cfg Config) (*Outcome, error) {
	if err := cfg.Litmus.validate(); err != nil {
		return nil, err
	}
	if cfg.Protocol == nil {
		cfg.Protocol = coherence.NewWriteUpdate()
	}
	if cfg.Steps == 0 {
		cfg.Steps = 2
	}
	if cfg.Steps < 2 {
		return nil, fmt.Errorf("mcheck: Steps must be at least 2")
	}
	if cfg.Steps > 255 {
		return nil, fmt.Errorf("mcheck: Steps must fit a choice byte (at most 255)")
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 10 * sim.Microsecond
	}
	if cfg.MaxRuns == 0 {
		cfg.MaxRuns = 1 << 16
	}
	return exploreAll(&cfg)
}

// history converts a litmus and its observation vector into per-process
// event sequences for the axiom checkers (sleeps carry no event).
func history(lit *Litmus, obs [][]memory.Word) ([][]event, int) {
	vi := make(map[string]int, len(lit.Vars))
	for i, v := range lit.Vars {
		vi[v.Name] = i
	}
	h := make([][]event, lit.Procs)
	for p, ops := range lit.Prog {
		for j, op := range ops {
			if op.Kind == OpSleep {
				continue
			}
			h[p] = append(h[p], event{
				proc:  p,
				write: op.Kind == OpPut,
				v:     vi[op.Var],
				val:   obs[p][j],
			})
		}
	}
	return h, len(lit.Vars)
}
