package mcheck

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dsmrace/internal/coherence"
	"dsmrace/internal/memory"
)

// The parallel exploration engine. Work is structured as generations: a
// generation is a batch of canonical runs (one per frontier prefix), the
// next generation is every candidate those runs spawn. Workers only execute
// runs — each run is an independent simulation, so the pool shares nothing
// but an atomic job cursor and the observation intern table. Everything
// order-sensitive happens at the serial generation barrier: spawned
// candidates are sorted by vector key (byte-wise lexicographic order, which
// is exactly the legacy depth-first enumeration order), the memo dedups
// them in that order, and the final merge folds leaf records in the same
// order. The Outcome is therefore bit-identical for any worker count and
// any scheduling of the pool — the CI determinism gate runs workers 1 and 4
// under -race and compares the structs.

// leafRec is one executed run's contribution to the merge.
type leafRec struct {
	key      string
	sig      uint64
	obsHash  uint64
	nchoices int
}

// runOut is everything one job hands back to the barrier.
type runOut struct {
	leaf   leafRec
	cands  []candidate
	pruned int
	err    error
}

// obsTable interns observation vectors by hash. Insertion order races
// between workers, but the value stored for a hash is the same whichever
// worker wins (equal hash ⇒ equal observations — the canonicalizer
// invariant the checker enforces), so the table never makes the outcome
// timing-dependent.
type obsTable struct {
	mu sync.Mutex
	m  map[uint64][][]memory.Word
}

func (t *obsTable) put(h uint64, obs [][]memory.Word) {
	t.mu.Lock()
	if _, ok := t.m[h]; !ok {
		t.m[h] = obs
	}
	t.mu.Unlock()
}

func (t *obsTable) get(h uint64) [][]memory.Word {
	t.mu.Lock()
	obs := t.m[h]
	t.mu.Unlock()
	return obs
}

// runJob executes one canonical run and computes its spawn set.
func runJob(cfg *Config, key string, pk coherence.Kind, obsTab *obsTable) runOut {
	prefix := []byte(key)
	rec, err := runInstr(cfg, prefix)
	if err != nil {
		return runOut{err: err}
	}
	oh := obsHash(rec.obs)
	obsTab.put(oh, rec.obs)
	cands, pruned := spawn(cfg, rec, prefix, pk)
	return runOut{
		leaf:   leafRec{key: key, sig: rec.sig, obsHash: oh, nchoices: len(rec.choices)},
		cands:  cands,
		pruned: pruned,
	}
}

// exploreAll drives the generational engine and folds the deterministic
// Outcome. See Explore for the public contract.
func exploreAll(cfg *Config) (*Outcome, error) {
	lit := &cfg.Litmus
	pk := cfg.Protocol.Kind()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := &Outcome{Litmus: lit.Name, Protocol: cfg.Protocol.Name(), Weakest: LevelSC, POR: cfg.POR}
	obsTab := &obsTable{m: map[uint64][][]memory.Word{}}
	// memo maps a candidate's state fingerprint to the lexicographically
	// smallest vector key explored for that state. A candidate whose state
	// was already explored under a smaller key is dropped: the earlier
	// subtree is isomorphic, so every terminal state (and its first
	// occurrence in enumeration order) is already covered. A candidate that
	// arrives with a smaller key than the recorded winner (generations are
	// breadth-ordered, not lex-ordered) is explored anyway — dropping it
	// could shift first-occurrence order.
	memo := map[uint64]string{}
	frontier := []string{""}
	var leaves []leafRec
	runs := 0
	for len(frontier) > 0 {
		if runs+len(frontier) > cfg.MaxRuns {
			return nil, fmt.Errorf("mcheck: enumeration of %s/%s exceeded MaxRuns=%d (MaxRuns caps runs attempted, not unique schedules; see Outcome.Pruned/MemoHits for how a capped run differs from a converged one)",
				lit.Name, out.Protocol, cfg.MaxRuns)
		}
		outs := make([]runOut, len(frontier))
		nw := workers
		if nw > len(frontier) {
			nw = len(frontier)
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(cursor.Add(1)) - 1
					if j >= len(outs) {
						return
					}
					outs[j] = runJob(cfg, frontier[j], pk, obsTab)
				}
			}()
		}
		wg.Wait()
		runs += len(frontier)
		var cands []candidate
		for j := range outs {
			if outs[j].err != nil {
				return nil, outs[j].err
			}
			leaves = append(leaves, outs[j].leaf)
			out.Pruned += outs[j].pruned
			cands = append(cands, outs[j].cands...)
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].key < cands[b].key })
		frontier = make([]string, 0, len(cands))
		for _, cd := range cands {
			if cfg.POR {
				if w, ok := memo[cd.memo]; ok && w < cd.key {
					out.MemoHits++
					continue
				}
				memo[cd.memo] = cd.key
			}
			frontier = append(frontier, cd.key)
		}
	}
	out.Runs = runs

	// Deterministic merge: leaf records in vector-key order are exactly the
	// legacy depth-first enumeration order, so Unique, the violation
	// counters and the first-violation renderings reproduce the serial
	// walk bit-for-bit.
	sort.Slice(leaves, func(a, b int) bool { return leaves[a].key < leaves[b].key })
	// sigObs maps each canonical signature to its observation hash: two
	// runs with identical delivery timelines must observe identical values,
	// or the canonicalizer would be merging distinguishable schedules.
	sigObs := make(map[uint64]uint64, len(leaves))
	lvlByObs := map[uint64]Level{}
	for i := range leaves {
		lf := &leaves[i]
		if lf.nchoices > out.MaxChoices {
			out.MaxChoices = lf.nchoices
		}
		if prev, ok := sigObs[lf.sig]; ok {
			if prev != lf.obsHash {
				return nil, fmt.Errorf("mcheck: canonical signature %#x merges schedules with distinct observations (%s)",
					lf.sig, renderObs(lit, obsTab.get(lf.obsHash)))
			}
			continue
		}
		sigObs[lf.sig] = lf.obsHash
		out.Unique++
		lvl, ok := lvlByObs[lf.obsHash]
		newState := !ok
		if newState {
			obs := obsTab.get(lf.obsHash)
			h, nv := history(lit, obs)
			var err error
			lvl, err = classify(h, nv)
			if err != nil {
				return nil, fmt.Errorf("mcheck: %s under %s: %w", renderObs(lit, obs), out.Protocol, err)
			}
			lvlByObs[lf.obsHash] = lvl
			out.UniqueStates++
			out.StateFold += lf.obsHash * 0x9e3779b97f4a7c15
			if lvl < LevelSC {
				out.StateSCViolations++
			}
			if lvl < LevelCausal {
				out.StateCausalViolations++
			}
			if lvl < LevelCoherent {
				out.StateCoherenceViolations++
			}
		}
		if lvl < out.Weakest {
			out.Weakest = lvl
		}
		if lvl < LevelSC {
			out.SCViolations++
			if out.FirstNonSC == "" {
				out.FirstNonSC = renderObs(lit, obsTab.get(lf.obsHash))
			}
		}
		if lvl < LevelCausal {
			out.CausalViolations++
			if out.FirstNonCausal == "" {
				out.FirstNonCausal = renderObs(lit, obsTab.get(lf.obsHash))
			}
		}
		if lvl < LevelCoherent {
			out.CoherenceViolations++
		}
	}
	return out, nil
}
