package mcheck

import (
	"fmt"
	"sort"

	"dsmrace/internal/coherence"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
)

// This file is the dynamic partial-order-reduction core: an instrumented
// replay that records, for every latency choice point, the delivery's
// metadata, the exact arrival of every alternative, and a fingerprint of
// the whole machine state — plus the rules that decide which alternatives
// cannot lead anywhere new.
//
// The exploration is formulated recursively instead of by the classic
// bump-the-deepest-position loop: every trimmed choice vector is uniquely a
// prefix ending in a nonzero value. Running a prefix p zero-extended is the
// canonical run of p's whole subtree spine, and the subtree's remaining
// work is exactly the candidates (i, a) — position i at or past len(p),
// alternative a ≥ 1 — each of which roots the subtree of vector
// p·0…0·a. With no pruning this reproduces the legacy enumerator's leaf
// set bit-for-bit; the POR rules and the fingerprint memo drop candidates
// whose subtrees provably (or, for the conservative cone rule, checkably —
// see the equivalence gates) revisit already-covered terminal states.
//
// Three rules run against the canonical run's record, so a candidate's
// fate never depends on which worker or generation evaluated it:
//
//   - R1 (FIFO clamp): alternative a arrives at max(Base + a·Quantum,
//     Floor); if that equals alternative a-1's arrival the two runs are
//     identical event-for-event, so only the smallest alternative per
//     distinct arrival survives. Exact.
//   - R2 (observation completion): once every measured program has
//     finished, no later delivery can change any observation; candidates
//     at choice points past that instant are dropped. Exact for the
//     terminal-observation sets the checker classifies.
//   - R3 (independence cone): delaying message m from its canonical
//     arrival t0 to ta only matters if something in the canonical run
//     interacts with m's destination node or area inside the shift window.
//     The rule scans deliveries, sends, measured ops and sleep wakeups
//     against a per-kind independence relation, widening the window for
//     events whose own timing is still choice-dependent (monotonically:
//     jitter only ever delays). Events at exactly t0 on m's destination
//     are m's own synchronous cascade and shift rigidly with it.
//     Conservative, and validated empirically: the equivalence gate and
//     FuzzMcheckPOREquivalence compare POR-on and POR-off terminal-state
//     sets on every tractable configuration.

// msgMeta is the delivery identity the independence relation reasons about.
type msgMeta struct {
	src, dst int
	kind     network.Kind
	area     int // AreaID+1; 0 = not area-addressed
}

// choiceRec records one latency choice point of an instrumented run.
type choiceRec struct {
	meta    sim.ChoiceMeta
	arity   int
	chosen  int
	arrival sim.Time // post-clamp arrival under the chosen alternative
	fp      uint64   // machine-state fingerprint at the choice instant
	obsDone bool     // every measured program had completed by the choice
}

// delivRec is one post-warm-up delivery with its matched choice index.
type delivRec struct {
	at       sim.Time
	src, dst int
	kind     network.Kind
	area     int
	idx      int // matching choice index; -1 for setup-phase traffic
}

// opRec is one completed measured (or warm-up) operation.
type opRec struct {
	at   sim.Time
	node int
	area int // AreaID+1 of the variable's area
	read bool
}

// sleepRec is one OpSleep wakeup.
type sleepRec struct {
	end  sim.Time
	node int
}

// runRec is the full instrumented record of one canonical run.
type runRec struct {
	obs     [][]memory.Word
	sig     uint64
	choices []choiceRec
	deliv   []delivRec
	ops     []opRec
	sleeps  []sleepRec
	// opaque marks a run whose delivery bookkeeping could not match every
	// post-arm delivery to a choice point; pruning is suppressed for it.
	opaque bool
}

// inflightRec tracks one chosen-but-undelivered message for the state
// fingerprint's in-flight multiset.
type inflightRec struct {
	arrival sim.Time
	src     int
	dst     int
	kind    network.Kind
	size    int
	area    int
}

// candidate is one surviving spawn of a canonical run: the subtree rooted
// at vector key, with the state-fingerprint memo key that identifies its
// root state.
type candidate struct {
	key  string
	memo uint64
}

// runInstr executes the litmus under one choice vector (zero-extended past
// its end) with full POR instrumentation. It is runOne plus recording; the
// delivery-signature hash is computed over exactly the legacy fields so
// canonical signatures stay pinned.
func runInstr(cfg *Config, vec []byte) (*runRec, error) {
	lit := &cfg.Litmus
	rec := &runRec{}
	mismatch := false
	var k *sim.Kernel
	var c *dsm.Cluster
	var inflight []inflightRec
	doneProcs := 0
	opCount := make([]int, lit.Procs)
	areaOf := make(map[string]int, len(lit.Vars))

	chooser := func(n int, meta sim.ChoiceMeta) int {
		i := len(rec.choices)
		v := 0
		if i < len(vec) {
			v = int(vec[i])
		}
		if v >= n {
			mismatch = true
			v = n - 1
		}
		arrival := meta.Base + sim.Time(v)*meta.Quantum
		if arrival < meta.Floor {
			arrival = meta.Floor
		}
		fp := stateFingerprint(cfg, c, k, rec.obs, opCount, doneProcs, inflight)
		rec.choices = append(rec.choices, choiceRec{
			meta:    meta,
			arity:   n,
			chosen:  v,
			arrival: arrival,
			fp:      fp,
			obsDone: doneProcs == lit.Procs,
		})
		inflight = append(inflight, inflightRec{
			arrival: arrival,
			src:     meta.Src, dst: meta.Dst,
			kind: network.Kind(meta.Kind), size: meta.Size, area: meta.Area,
		})
		return v
	}

	rcfg := rdma.DefaultConfig(nil, nil)
	rcfg.Coherence = cfg.Protocol
	c, err := dsm.New(dsm.Config{
		Procs:       lit.Procs,
		Seed:        1,
		Latency:     network.Constant{L: linkLatency},
		RDMA:        rcfg,
		MetaChooser: chooser,
		MaxEvents:   maxEvents,
	})
	if err != nil {
		return nil, err
	}
	for _, v := range lit.Vars {
		if err := c.Alloc(v.Name, v.Home, 1); err != nil {
			return nil, err
		}
	}
	for _, v := range lit.Vars {
		a, err := c.Space().Lookup(v.Name)
		if err != nil {
			return nil, err
		}
		areaOf[v.Name] = int(a.ID) + 1
	}
	c.Network().EnableChoiceDelay(armAt, cfg.Quantum, cfg.Steps)
	k = c.Kernel()
	rec.sig = fnvOffset
	c.Network().OnDeliver = func(src, dst network.NodeID, kind network.Kind, size, area int) {
		now := k.Now()
		rec.sig = fnvMix(rec.sig, uint64(src))
		rec.sig = fnvMix(rec.sig, uint64(dst))
		rec.sig = fnvMix(rec.sig, uint64(kind))
		rec.sig = fnvMix(rec.sig, uint64(size))
		rec.sig = fnvMix(rec.sig, uint64(now))
		idx := -1
		for j := range inflight {
			f := &inflight[j]
			if f.arrival == now && f.src == int(src) && f.dst == int(dst) && f.kind == kind && f.size == size {
				idx = j
				break
			}
		}
		if idx >= 0 {
			// The choice index is recoverable from the insertion position:
			// entries are appended in choice order and removed on delivery,
			// so track it explicitly instead.
			inflight = append(inflight[:idx], inflight[idx+1:]...)
		} else if len(rec.choices) > 0 {
			// A post-arm delivery with no matching tracked send: the run's
			// interaction record is incomplete, so no rule may prune on it.
			rec.opaque = true
		}
		rec.deliv = append(rec.deliv, delivRec{
			at: now, src: int(src), dst: int(dst), kind: kind, area: area,
			idx: matchChoice(rec.choices, now, int(src), int(dst), kind),
		})
	}
	rec.obs = make([][]memory.Word, lit.Procs)
	progs := make([]dsm.Program, lit.Procs)
	for i := range progs {
		i := i
		rec.obs[i] = make([]memory.Word, len(lit.Prog[i]))
		progs[i] = func(p *dsm.Proc) error {
			if i < len(lit.Warm) {
				for _, name := range lit.Warm[i] {
					if _, err := p.Get(name, 0, 1); err != nil {
						return err
					}
				}
			}
			p.Barrier()
			if now := p.Now(); now < armAt {
				p.Sleep(armAt - now)
			}
			for j, op := range lit.Prog[i] {
				switch op.Kind {
				case OpPut:
					if err := p.Put(op.Var, 0, op.Val); err != nil {
						return err
					}
					rec.obs[i][j] = op.Val
					rec.ops = append(rec.ops, opRec{at: p.Now(), node: i, area: areaOf[op.Var]})
				case OpGet:
					w, err := p.GetWord(op.Var, 0)
					if err != nil {
						return err
					}
					rec.obs[i][j] = w
					rec.ops = append(rec.ops, opRec{at: p.Now(), node: i, area: areaOf[op.Var], read: true})
				case OpSleep:
					p.Sleep(op.D)
					rec.sleeps = append(rec.sleeps, sleepRec{end: p.Now(), node: i})
				}
				opCount[i]++
			}
			doneProcs++
			return nil
		}
	}
	res, err := c.RunEach(progs)
	if err != nil {
		return nil, err
	}
	if e := res.FirstError(); e != nil {
		return nil, e
	}
	if mismatch {
		return nil, fmt.Errorf("mcheck: choice arity changed under prefix replay (nondeterministic schedule tree)")
	}
	return rec, nil
}

// matchChoice finds the choice point whose delivery this is: the earliest
// unconsumed choice with matching link, kind and computed arrival. Choices
// are few per run, so a backward scan with a consumed marker is overkill —
// the (arrival, link, kind) triple is unique enough for the analysis (a
// true ambiguity means two identical messages delivered at one instant on
// one link, which interact with exactly the same state either way).
func matchChoice(choices []choiceRec, at sim.Time, src, dst int, kind network.Kind) int {
	for j := range choices {
		cc := &choices[j]
		if cc.arrival == at && cc.meta.Src == src && cc.meta.Dst == dst && network.Kind(cc.meta.Kind) == kind {
			return j
		}
	}
	return -1
}

// stateFingerprint hashes the whole machine at a choice instant: memory
// content, coherence replicas, protocol-engine state (locks, pending ops,
// invalidation rounds), the kernel's future-event profile, per-process
// measured progress with observations so far, and the in-flight message
// multiset with relative arrivals. All time components are deltas from
// now, so the same state reached at different absolute times (or along
// different prefixes) fingerprints identically.
func stateFingerprint(cfg *Config, c *dsm.Cluster, k *sim.Kernel, obs [][]memory.Word, opCount []int, doneProcs int, inflight []inflightRec) uint64 {
	h := uint64(fnvOffset)
	h = c.Space().Fingerprint(h)
	h = c.System().ExploreFingerprint(h)
	h = k.QueueFingerprint(h)
	h = fnvMix(h, uint64(doneProcs))
	for i := range obs {
		h = fnvMix(h, uint64(opCount[i]))
		for _, w := range obs[i] {
			h = fnvMix(h, uint64(w))
		}
	}
	now := k.Now()
	// The in-flight multiset is tiny (bounded by outstanding requests);
	// sort a stack copy so the fold is order-independent.
	var buf [16]inflightRec
	fl := buf[:0]
	fl = append(fl, inflight...)
	sort.Slice(fl, func(a, b int) bool {
		x, y := &fl[a], &fl[b]
		if x.arrival != y.arrival {
			return x.arrival < y.arrival
		}
		if x.src != y.src {
			return x.src < y.src
		}
		if x.dst != y.dst {
			return x.dst < y.dst
		}
		if x.kind != y.kind {
			return x.kind < y.kind
		}
		return x.size < y.size
	})
	h = fnvMix(h, uint64(len(fl)))
	for i := range fl {
		f := &fl[i]
		h = fnvMix(h, uint64(f.arrival-now))
		h = fnvMix(h, uint64(f.src)<<32|uint64(f.dst))
		h = fnvMix(h, uint64(f.kind)<<32|uint64(f.size))
		h = fnvMix(h, uint64(f.area))
	}
	return h
}

// areaKind reports whether a packet kind touches shared per-area state at
// its destination (requests, invalidations, updates). Replies and acks
// land on the initiator's own operation state, so two of them — or one of
// them and any same-area request elsewhere — commute unless they share a
// node.
func areaKind(k network.Kind) bool {
	switch k {
	case network.KindPutReq, network.KindGetReq, network.KindFetchReq,
		network.KindAtomicReq, network.KindInval, network.KindUpdate,
		network.KindLockReq, network.KindUnlock,
		network.KindClockRead, network.KindClockWrite:
		return true
	}
	return false
}

// readLike reports whether a kind only reads area state at its destination
// under the given protocol — two read-like deliveries on one area commute.
// A fetch is read-like under write-invalidate and causal memory (it adds a
// sharer), but not under MESI, where serving a fetch can grant exclusivity
// or trigger a recall.
func readLike(k network.Kind, pk coherence.Kind) bool {
	switch k {
	case network.KindGetReq, network.KindClockRead:
		return true
	case network.KindFetchReq:
		return pk != coherence.MESI
	}
	return false
}

// depend reports whether a delivery d may interact with message m: any
// shared node, or — for two area-touching kinds that are not both
// read-like — a shared area.
func depend(dSrc, dDst int, dKind network.Kind, dArea int, m msgMeta, pk coherence.Kind) bool {
	if dDst == m.dst || dSrc == m.dst {
		return true
	}
	if dArea != 0 && dArea == m.area && areaKind(dKind) && areaKind(m.kind) {
		if readLike(dKind, pk) && readLike(m.kind, pk) {
			return false
		}
		return true
	}
	return false
}

// r3Independent decides the cone rule for candidate (i, a): delaying choice
// i's message from its canonical arrival t0 to ta. It scans the canonical
// record for any interacting event inside the shift window, widening the
// window start down to the choice's send instant for events whose own
// timing is still suffix-dependent (indices past i — jitter is monotone,
// so canonical times are lower bounds). Events at exactly t0 on m's
// destination are m's synchronous cascade and shift rigidly with it.
func r3Independent(rec *runRec, i int, t0, ta sim.Time, pk coherence.Kind) bool {
	ci := &rec.choices[i]
	m := msgMeta{src: ci.meta.Src, dst: ci.meta.Dst, kind: network.Kind(ci.meta.Kind), area: ci.meta.Area}
	nowI := ci.meta.Now
	for di := range rec.deliv {
		d := &rec.deliv[di]
		if d.idx == i {
			continue // m itself
		}
		lo := t0
		if d.idx > i || d.idx < 0 && d.at > nowI {
			// Suffix-shiftable (or unmatched): its canonical time is only a
			// lower bound, so anything not already before the choice could
			// move into the window.
			lo = nowI
		}
		if d.at >= lo && d.at <= ta && depend(d.src, d.dst, d.kind, d.area, m, pk) {
			return false
		}
	}
	for j := range rec.choices {
		if j == i {
			continue
		}
		cj := &rec.choices[j]
		if cj.meta.Src != m.dst {
			continue
		}
		sj := cj.meta.Now
		if j > i && sj > nowI && sj <= ta && sj != t0 {
			// m's destination originates traffic inside the window that is
			// not m's own instant-t0 cascade: delaying m may change it.
			return false
		}
	}
	for oi := range rec.ops {
		o := &rec.ops[oi]
		if o.at <= nowI || o.at > ta {
			continue
		}
		if o.node == m.dst {
			if o.at == t0 {
				continue // m's synchronous completion; shifts rigidly
			}
			return false
		}
		if o.area != 0 && o.area == m.area && areaKind(m.kind) && !(o.read && readLike(m.kind, pk)) {
			return false
		}
	}
	for si := range rec.sleeps {
		s := &rec.sleeps[si]
		if s.node == m.dst && s.end > nowI && s.end <= ta {
			// An independent timer fires on m's destination inside the
			// window; its continuation would interleave differently.
			return false
		}
	}
	return true
}

// spawn computes the surviving candidates of a canonical run of prefix
// (vec's first prefixLen values): for every choice position at or past the
// prefix, every alternative the POR rules keep. It also returns how many
// alternatives the rules pruned. With cfg.POR off every alternative
// survives, reproducing the legacy enumerator's leaf set exactly.
func spawn(cfg *Config, rec *runRec, prefix []byte, pk coherence.Kind) (cands []candidate, pruned int) {
	for i := len(prefix); i < len(rec.choices); i++ {
		ci := &rec.choices[i]
		if cfg.POR && ci.obsDone {
			// R2: every measured program has finished; nothing after this
			// instant can change any observation. obsDone is monotone in i,
			// so everything from here on prunes.
			for j := i; j < len(rec.choices); j++ {
				pruned += rec.choices[j].arity - 1
			}
			return cands, pruned
		}
		t0 := ci.arrival
		for a := 1; a < ci.arity; a++ {
			ta := ci.meta.Base + sim.Time(a)*ci.meta.Quantum
			if cfg.POR && ta <= ci.meta.Floor {
				// R1: the FIFO clamp makes this alternative's arrival equal
				// to the previous one's; the runs are identical.
				pruned++
				continue
			}
			if ta < ci.meta.Floor {
				ta = ci.meta.Floor
			}
			if cfg.POR && !rec.opaque && r3Independent(rec, i, t0, ta, pk) {
				pruned++
				continue
			}
			key := make([]byte, i+1)
			copy(key, prefix)
			// positions len(prefix)..i-1 are the canonical zeros
			key[i] = byte(a)
			mk := ci.fp
			mk = fnvMix(mk, uint64(ci.meta.Src)<<32|uint64(ci.meta.Dst))
			mk = fnvMix(mk, uint64(ci.meta.Kind)<<32|uint64(ci.meta.Area))
			mk = fnvMix(mk, uint64(ci.meta.Size))
			mk = fnvMix(mk, uint64(ta-ci.meta.Now))
			cands = append(cands, candidate{key: string(key), memo: mk})
		}
	}
	return cands, pruned
}
