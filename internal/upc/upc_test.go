package upc

import (
	"fmt"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
)

func cluster(t *testing.T, procs int, det core.Detector) *dsm.Cluster {
	t.Helper()
	c, err := dsm.New(dsm.Config{Procs: procs, Seed: 1, RDMA: rdma.DefaultConfig(det, nil)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeclareValidation(t *testing.T) {
	c := cluster(t, 2, nil)
	if _, err := Declare(c, "bad", 0, Block); err == nil {
		t.Fatal("zero length must fail")
	}
	if _, err := Declare(c, "a", 5, Block); err != nil {
		t.Fatal(err)
	}
	if _, err := Declare(c, "a", 5, Block); err == nil {
		t.Fatal("duplicate name must fail")
	}
}

func TestBlockAffinity(t *testing.T) {
	c := cluster(t, 3, nil)
	a, err := Declare(c, "blk", 10, Block)
	if err != nil {
		t.Fatal(err)
	}
	// chunk = ceil(10/3) = 4: [0..3]→0, [4..7]→1, [8..9]→2.
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	for i, w := range want {
		if got := a.Owner(i); got != w {
			t.Errorf("Owner(%d) = %d, want %d", i, got, w)
		}
	}
	if a.chunkSize(0) != 4 || a.chunkSize(1) != 4 || a.chunkSize(2) != 2 {
		t.Fatalf("chunk sizes: %d %d %d", a.chunkSize(0), a.chunkSize(1), a.chunkSize(2))
	}
}

func TestCyclicAffinity(t *testing.T) {
	c := cluster(t, 3, nil)
	a, err := Declare(c, "cyc", 8, Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := a.Owner(i); got != i%3 {
			t.Errorf("Owner(%d) = %d, want %d", i, got, i%3)
		}
	}
	if a.chunkSize(0) != 3 || a.chunkSize(1) != 3 || a.chunkSize(2) != 2 {
		t.Fatalf("cyclic chunk sizes: %d %d %d", a.chunkSize(0), a.chunkSize(1), a.chunkSize(2))
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	c := cluster(t, 2, nil)
	a, _ := Declare(c, "x", 4, Block)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Owner(4)
}

func TestReadWriteRoundTrip(t *testing.T) {
	for _, layout := range []Layout{Block, Cyclic} {
		layout := layout
		t.Run(layout.String(), func(t *testing.T) {
			const n, length = 3, 11
			c := cluster(t, n, core.NewExactVWDetector())
			a, err := Declare(c, "arr", length, layout)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(func(p *dsm.Proc) error {
				// Phase 1: every process writes its owned elements.
				if err := a.ForAll(p, func(i int) error {
					return a.Write(p, i, memory.Word(i*i))
				}); err != nil {
					return err
				}
				p.Barrier()
				// Phase 2: every process reads the whole array.
				for i := 0; i < length; i++ {
					v, err := a.Read(p, i)
					if err != nil {
						return err
					}
					if v != memory.Word(i*i) {
						return fmt.Errorf("a[%d] = %d, want %d", i, v, i*i)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.FirstError(); err != nil {
				t.Fatal(err)
			}
			if res.RaceCount != 0 {
				t.Fatalf("owner-computes + barrier raced: %v", res.Races[:1])
			}
		})
	}
}

func TestForAllCoversExactlyOwnedIndices(t *testing.T) {
	c := cluster(t, 4, nil)
	a, _ := Declare(c, "cover", 13, Cyclic)
	counts := make([]int, 13)
	res, err := c.Run(func(p *dsm.Proc) error {
		return a.ForAll(p, func(i int) error {
			if a.Owner(i) != p.ID() {
				return fmt.Errorf("P%d visited foreign index %d", p.ID(), i)
			}
			counts[i]++
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	for i, n := range counts {
		if n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
}

func TestConcurrentWritesToSameElementRace(t *testing.T) {
	c := cluster(t, 2, core.NewExactVWDetector())
	a, _ := Declare(c, "hot", 2, Block)
	res, err := c.Run(func(p *dsm.Proc) error {
		return a.Write(p, 0, memory.Word(p.ID()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("unsynchronised writes to one element must race")
	}
}

func TestAtomicAddAccumulates(t *testing.T) {
	c := cluster(t, 3, nil)
	a, _ := Declare(c, "acc", 1, Block)
	res, err := c.Run(func(p *dsm.Proc) error {
		for i := 0; i < 4; i++ {
			if _, err := a.Add(p, 0, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Memory[0][0] != 12 {
		t.Fatalf("total = %d, want 12", res.Memory[0][0])
	}
}

func TestSumOneSided(t *testing.T) {
	const n, length = 3, 9
	c := cluster(t, n, nil)
	a, _ := Declare(c, "sum", length, Block)
	progs := make([]dsm.Program, n)
	progs[2] = func(p *dsm.Proc) error {
		// Initialise remotely, then reduce one-sided: total of 0..8 = 36.
		for i := 0; i < length; i++ {
			if err := a.Write(p, i, memory.Word(i)); err != nil {
				return err
			}
		}
		got, err := a.SumOneSided(p)
		if err != nil {
			return err
		}
		if got != 36 {
			return fmt.Errorf("sum = %d, want 36", got)
		}
		return nil
	}
	res, err := c.RunEach(progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestReadChunk(t *testing.T) {
	c := cluster(t, 2, nil)
	a, _ := Declare(c, "chunks", 6, Block)
	res, err := c.Run(func(p *dsm.Proc) error {
		if p.ID() == 0 {
			for i := 0; i < 6; i++ {
				if err := a.Write(p, i, memory.Word(10+i)); err != nil {
					return err
				}
			}
		}
		p.Barrier()
		chunk, err := a.ReadChunk(p, 1)
		if err != nil {
			return err
		}
		if len(chunk) != 3 || chunk[0] != 13 {
			return fmt.Errorf("chunk = %v", chunk)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutStrings(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Fatal("layout names")
	}
}
