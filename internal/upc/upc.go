package upc

import (
	"fmt"

	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
)

// Layout selects how elements map to processors.
type Layout int

// Layouts.
const (
	// Block gives each processor one contiguous chunk (UPC's [*] layout).
	Block Layout = iota
	// Cyclic deals elements round-robin (UPC's default [1] layout).
	Cyclic
)

// String names the layout.
func (l Layout) String() string {
	if l == Cyclic {
		return "cyclic"
	}
	return "block"
}

// SharedArray is a distributed array of words.
type SharedArray struct {
	name   string
	length int
	procs  int
	layout Layout
	chunk  int // block: elements per processor
}

// chunkName is the shared variable holding node's part of the array.
func (a *SharedArray) chunkName(node int) string {
	return fmt.Sprintf("%s@%d", a.name, node)
}

// Declare allocates a shared array across the cluster — the compile-time
// placement step. It must run before the cluster starts.
func Declare(c *dsm.Cluster, name string, length int, layout Layout) (*SharedArray, error) {
	procs := c.Space().N()
	if length <= 0 {
		return nil, fmt.Errorf("upc: array %q length %d", name, length)
	}
	a := &SharedArray{name: name, length: length, procs: procs, layout: layout}
	a.chunk = (length + procs - 1) / procs
	for node := 0; node < procs; node++ {
		words := a.chunkSize(node)
		if words == 0 {
			words = 1 // keep a placeholder so every node has the variable
		}
		if err := c.Alloc(a.chunkName(node), node, words); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// chunkSize returns how many elements node actually stores.
func (a *SharedArray) chunkSize(node int) int {
	switch a.layout {
	case Cyclic:
		n := a.length / a.procs
		if node < a.length%a.procs {
			n++
		}
		return n
	default:
		lo := node * a.chunk
		if lo >= a.length {
			return 0
		}
		hi := lo + a.chunk
		if hi > a.length {
			hi = a.length
		}
		return hi - lo
	}
}

// Len returns the logical length.
func (a *SharedArray) Len() int { return a.length }

// Name returns the array's name.
func (a *SharedArray) Name() string { return a.name }

// Layout returns the distribution.
func (a *SharedArray) Layout() Layout { return a.layout }

// Owner returns the processor with affinity to element i — UPC's
// upc_threadof.
func (a *SharedArray) Owner(i int) int {
	a.check(i)
	if a.layout == Cyclic {
		return i % a.procs
	}
	return i / a.chunk
}

// locate translates a logical index to (chunk variable, offset) — the
// compiler's address resolution into (processor_name, local_address).
func (a *SharedArray) locate(i int) (string, int) {
	a.check(i)
	if a.layout == Cyclic {
		return a.chunkName(i % a.procs), i / a.procs
	}
	return a.chunkName(i / a.chunk), i % a.chunk
}

func (a *SharedArray) check(i int) {
	if i < 0 || i >= a.length {
		panic(fmt.Sprintf("upc: index %d out of range [0,%d)", i, a.length))
	}
}

// Read fetches element i through a one-sided get.
func (a *SharedArray) Read(p *dsm.Proc, i int) (memory.Word, error) {
	name, off := a.locate(i)
	return p.GetWord(name, off)
}

// Write stores element i through a one-sided put.
func (a *SharedArray) Write(p *dsm.Proc, i int, v memory.Word) error {
	name, off := a.locate(i)
	return p.Put(name, off, v)
}

// Add atomically adds delta to element i.
func (a *SharedArray) Add(p *dsm.Proc, i int, delta memory.Word) (memory.Word, error) {
	name, off := a.locate(i)
	return p.FetchAdd(name, off, delta)
}

// ReadChunk fetches processor node's whole chunk in one get.
func (a *SharedArray) ReadChunk(p *dsm.Proc, node int) ([]memory.Word, error) {
	words := a.chunkSize(node)
	if words == 0 {
		return nil, nil
	}
	return p.Get(a.chunkName(node), 0, words)
}

// ForAll runs body(i) on the calling process for every index i whose
// affinity is the caller — upc_forall's affinity clause. Iterating only
// owned indices keeps the touched chunks disjoint across processes.
func (a *SharedArray) ForAll(p *dsm.Proc, body func(i int) error) error {
	for i := 0; i < a.length; i++ {
		if a.Owner(i) == p.ID() {
			if err := body(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// SumOneSided reduces the whole array from the calling process alone using
// chunk gets — the paper's §V-B one-sided reduction over a PGAS array.
func (a *SharedArray) SumOneSided(p *dsm.Proc) (memory.Word, error) {
	var total memory.Word
	for node := 0; node < a.procs; node++ {
		chunk, err := a.ReadChunk(p, node)
		if err != nil {
			return 0, err
		}
		for _, w := range chunk {
			total += w
		}
	}
	return total, nil
}
