// Package upc is a miniature PGAS (partitioned global address space) layer
// in the style of UPC / Titanium / Co-Array Fortran, the languages whose
// memory model motivates the paper (§I, §III-A). A SharedArray is a logical
// array distributed over the cluster's public memories with a block or
// cyclic layout chosen at declaration time; the package performs the
// compiler's job — data placement and the translation of logical indices
// into (processor, local address) pairs — while every element access flows
// through the DSM runtime's one-sided operations, where the race detector
// lives.
package upc
