// Package memory models the address-space organisation of Fig. 1: every
// node maps a private memory (accessible only from its own process) and a
// public memory that is part of the global address space and reachable from
// any node through the NIC. Shared data lives in named areas; the area
// registry plays the role the paper assigns to the compiler — deciding, for
// each shared variable, which processor's public memory holds it and
// resolving (processor_name, local_address) pairs (§III-A).
//
// The registry is built for large clusters: the name directory is sharded
// by hash, address-to-area resolution binary-searches a per-node interval
// index, and node segments are lazily backed — logical sizes are enforced
// on every access, but storage materialises only where writes land, so a
// 512-node cluster no longer pays half a gigabyte of zeroing per run.
package memory
