// Package memory models the address-space organisation of Fig. 1: every
// node maps a private memory (accessible only from its own process) and a
// public memory that is part of the global address space and reachable from
// any node through the NIC. Shared data lives in named areas; the area
// registry plays the role the paper assigns to the compiler — deciding, for
// each shared variable, which processor's public memory holds it and
// resolving (processor_name, local_address) pairs (§III-A).
package memory
