package memory

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
)

// Word is the unit of shared storage. The model works in 64-bit words, the
// natural RDMA granularity.
type Word = uint64

// WordBytes is the wire size of one word.
const WordBytes = 8

// AreaID names a shared memory area (a shared variable) globally.
type AreaID int

// Area describes one shared variable: a contiguous run of words in the
// public memory of its home node.
type Area struct {
	ID   AreaID
	Name string
	Home int // node whose public memory maps the area
	Off  int // word offset within the home's public memory
	Len  int // length in words
}

// GlobalAddr is the paper's (processor_name, local_address) pair.
type GlobalAddr struct {
	Node int
	Off  int
}

// String renders the address as P<node>:<offset>.
func (g GlobalAddr) String() string { return fmt.Sprintf("P%d:%d", g.Node, g.Off) }

// Errors returned by the address-space operations.
var (
	ErrOutOfRange   = errors.New("memory: access out of range")
	ErrPrivate      = errors.New("memory: remote access to private memory")
	ErrUnknownArea  = errors.New("memory: unknown area")
	ErrExhausted    = errors.New("memory: public memory exhausted")
	ErrBadLength    = errors.New("memory: non-positive area length")
	ErrDuplicate    = errors.New("memory: duplicate area name")
	ErrMisplacement = errors.New("memory: placement node out of range")
)

// segment is one lazily-backed run of words: size is the logical extent
// (what bounds checks enforce), data the materialised prefix. Unwritten
// words read as zero without ever being allocated — at 512 nodes the old
// eagerly-zeroed 64Ki-word segments cost half a gigabyte of allocation per
// run before the first operation executed.
type segment struct {
	size int
	data []Word
}

// read copies words [off, off+len(dst)) into dst, zero-filling past the
// materialised prefix. Bounds are the caller's business.
func (s *segment) read(off int, dst []Word) {
	n := copy(dst, s.data[min(off, len(s.data)):])
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// write copies src into the segment at off, materialising backing words up
// to off+len(src) (amortised doubling; make zero-fills the gap).
func (s *segment) write(off int, src []Word) {
	if need := off + len(src); need > len(s.data) {
		if need <= cap(s.data) {
			s.data = s.data[:need]
		} else {
			grown := make([]Word, need, max(need*2, 64))
			copy(grown, s.data)
			s.data = grown
		}
	}
	copy(s.data[off:], src)
}

// Node is one processor's memory: a private segment and a public segment.
type Node struct {
	ID      int
	private segment
	public  segment
}

// NewNode allocates a node with the given segment sizes (in words). The
// segments are logical: backing storage materialises on first write.
func NewNode(id, privateWords, publicWords int) *Node {
	return &Node{
		ID:      id,
		private: segment{size: privateWords},
		public:  segment{size: publicWords},
	}
}

// PublicSize returns the public segment size in words.
func (n *Node) PublicSize() int { return n.public.size }

// PrivateSize returns the private segment size in words.
func (n *Node) PrivateSize() int { return n.private.size }

// ReadPublic copies words [off, off+len(dst)) of the public segment into dst.
// Any node may call it (through the NIC); that is the point of public memory.
func (n *Node) ReadPublic(off int, dst []Word) error {
	if off < 0 || off+len(dst) > n.public.size {
		return fmt.Errorf("%w: public read [%d,%d) of %d words on node %d",
			ErrOutOfRange, off, off+len(dst), n.public.size, n.ID)
	}
	n.public.read(off, dst)
	return nil
}

// WritePublic copies src into the public segment at off.
func (n *Node) WritePublic(off int, src []Word) error {
	if off < 0 || off+len(src) > n.public.size {
		return fmt.Errorf("%w: public write [%d,%d) of %d words on node %d",
			ErrOutOfRange, off, off+len(src), n.public.size, n.ID)
	}
	n.public.write(off, src)
	return nil
}

// ReadPrivate reads the private segment; caller must be the owning process.
// The caller parameter exists so the runtime can enforce Fig. 1's privacy
// rule mechanically.
func (n *Node) ReadPrivate(caller, off int, dst []Word) error {
	if caller != n.ID {
		return fmt.Errorf("%w: node %d reading node %d", ErrPrivate, caller, n.ID)
	}
	if off < 0 || off+len(dst) > n.private.size {
		return fmt.Errorf("%w: private read [%d,%d) of %d words",
			ErrOutOfRange, off, off+len(dst), n.private.size)
	}
	n.private.read(off, dst)
	return nil
}

// WritePrivate writes the private segment; caller must be the owning process.
func (n *Node) WritePrivate(caller, off int, src []Word) error {
	if caller != n.ID {
		return fmt.Errorf("%w: node %d writing node %d", ErrPrivate, caller, n.ID)
	}
	if off < 0 || off+len(src) > n.private.size {
		return fmt.Errorf("%w: private write [%d,%d) of %d words",
			ErrOutOfRange, off, off+len(src), n.private.size)
	}
	n.private.write(off, src)
	return nil
}

// SnapshotPublic returns a copy of the node's *materialised* public prefix
// (unwritten words past it are zero by definition), used for final-state
// comparison in the divergence experiments. Space.Snapshot pads it to the
// node's allocated extent so lengths are schedule-independent.
func (n *Node) SnapshotPublic() []Word {
	s := make([]Word, len(n.public.data))
	copy(s, n.public.data)
	return s
}

// Placement selects the home node for a new shared variable — the
// compile-time data-locality decision of §III-A.
type Placement interface {
	// Place returns the home node for the idx-th allocated area among n nodes.
	Place(idx, n int) int
}

// PlaceRoundRobin spreads areas cyclically over nodes.
type PlaceRoundRobin struct{}

// Place implements Placement.
func (PlaceRoundRobin) Place(idx, n int) int { return idx % n }

// PlaceOnNode pins every area to one node.
type PlaceOnNode struct{ Node int }

// Place implements Placement.
func (p PlaceOnNode) Place(idx, n int) int { return p.Node }

// PlaceBlocked fills node 0's quota first, then node 1, and so on.
type PlaceBlocked struct{ PerNode int }

// Place implements Placement.
func (p PlaceBlocked) Place(idx, n int) int {
	per := p.PerNode
	if per <= 0 {
		per = 1
	}
	h := idx / per
	if h >= n {
		h = n - 1
	}
	return h
}

// nameShardCount is the shard fan-out of the name directory. A power of two
// so the shard pick is a mask of the hash.
const nameShardCount = 16

// Space is the global address space directory: every node's memory plus the
// area registry. It is built before the run starts (compile time) and is
// immutable during execution, matching "data locality is resolved at
// compile-time" (§II).
//
// The registry is sharded and indexed for large clusters: name lookups hash
// into one of nameShardCount small maps (read-only once sealed, so parallel
// trial drivers can resolve names without contending on one big table), and
// address-to-area resolution binary-searches a per-node interval index
// instead of scanning every registered area.
type Space struct {
	nodes   []*Node
	areas   []Area
	byName  [nameShardCount]map[string]AreaID
	seed    maphash.Seed
	byNode  [][]AreaID // per node, area ids in ascending Off order
	nextOff []int      // allocation cursor per node
	sealed  bool
}

// NewSpace creates a global address space over n nodes with the given
// public/private sizes in words.
func NewSpace(n, privateWords, publicWords int) *Space {
	s := &Space{
		seed:    maphash.MakeSeed(),
		byNode:  make([][]AreaID, n),
		nextOff: make([]int, n),
	}
	for i := range s.byName {
		s.byName[i] = make(map[string]AreaID)
	}
	for i := 0; i < n; i++ {
		s.nodes = append(s.nodes, NewNode(i, privateWords, publicWords))
	}
	return s
}

// shard picks the name directory shard for a variable name.
func (s *Space) shard(name string) map[string]AreaID {
	return s.byName[maphash.String(s.seed, name)&(nameShardCount-1)]
}

// N returns the number of nodes.
func (s *Space) N() int { return len(s.nodes) }

// Node returns node id's memory.
func (s *Space) Node(id int) *Node { return s.nodes[id] }

// Seal freezes the registry; later Alloc calls fail. The runtime seals the
// space when the simulation starts.
func (s *Space) Seal() { s.sealed = true }

// Alloc registers a shared variable of words length on the given home node
// and returns its area. It fails once the space is sealed — shared-data
// placement is a compile-time decision in this model.
func (s *Space) Alloc(name string, home, words int) (Area, error) {
	if s.sealed {
		return Area{}, errors.New("memory: space sealed; allocation is compile-time only")
	}
	if words <= 0 {
		return Area{}, fmt.Errorf("%w: %q len %d", ErrBadLength, name, words)
	}
	if home < 0 || home >= len(s.nodes) {
		return Area{}, fmt.Errorf("%w: node %d of %d", ErrMisplacement, home, len(s.nodes))
	}
	sh := s.shard(name)
	if _, dup := sh[name]; dup {
		return Area{}, fmt.Errorf("%w: %q", ErrDuplicate, name)
	}
	off := s.nextOff[home]
	if off+words > s.nodes[home].PublicSize() {
		return Area{}, fmt.Errorf("%w: node %d needs %d words, %d free",
			ErrExhausted, home, words, s.nodes[home].PublicSize()-off)
	}
	id := AreaID(len(s.areas))
	a := Area{ID: id, Name: name, Home: home, Off: off, Len: words}
	s.areas = append(s.areas, a)
	sh[name] = id
	s.byNode[home] = append(s.byNode[home], id) // cursor allocation: Off ascending
	s.nextOff[home] += words
	return a, nil
}

// AllocAuto registers a shared variable, choosing the home with p.
func (s *Space) AllocAuto(name string, words int, p Placement) (Area, error) {
	if p == nil {
		p = PlaceRoundRobin{}
	}
	return s.Alloc(name, p.Place(len(s.areas), len(s.nodes)), words)
}

// Lookup resolves a variable name to its area — the compiler's address
// resolution step.
func (s *Space) Lookup(name string) (Area, error) {
	id, ok := s.shard(name)[name]
	if !ok {
		return Area{}, fmt.Errorf("%w: %q", ErrUnknownArea, name)
	}
	return s.areas[id], nil
}

// AreaByID returns the area with the given id.
func (s *Space) AreaByID(id AreaID) (Area, error) {
	if id < 0 || int(id) >= len(s.areas) {
		return Area{}, fmt.Errorf("%w: id %d", ErrUnknownArea, id)
	}
	return s.areas[id], nil
}

// Areas returns all registered areas sorted by ID.
func (s *Space) Areas() []Area {
	out := make([]Area, len(s.areas))
	copy(out, s.areas)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AreaCount returns the number of registered areas.
func (s *Space) AreaCount() int { return len(s.areas) }

// AreaAt maps a global address on a node to the area containing it, binary
// searching the node's interval index (areas on a node are registered at
// ascending offsets by the allocation cursor).
func (s *Space) AreaAt(node, off int) (Area, bool) {
	if node < 0 || node >= len(s.byNode) {
		return Area{}, false
	}
	ids := s.byNode[node]
	// First area starting after off; the candidate is its predecessor.
	i := sort.Search(len(ids), func(i int) bool { return s.areas[ids[i]].Off > off })
	if i == 0 {
		return Area{}, false
	}
	a := s.areas[ids[i-1]]
	if off < a.Off+a.Len {
		return a, true
	}
	return Area{}, false
}

// Addr returns the global address of word idx within area a.
func Addr(a Area, idx int) GlobalAddr {
	return GlobalAddr{Node: a.Home, Off: a.Off + idx}
}

// Snapshot returns each node's public memory, indexed by node id, for
// whole-system final-state comparison. Each snapshot covers exactly the
// node's allocated extent — schedule-independent, since placement is fixed
// at compile time — rather than the full logical segment, so snapshotting a
// 512-node cluster copies the areas, not half a gigabyte of zeros.
func (s *Space) Snapshot() [][]Word {
	out := make([][]Word, len(s.nodes))
	for i, n := range s.nodes {
		used := s.nextOff[i]
		if backed := len(n.public.data); backed > used {
			used = backed // direct writes past the allocated extent (tests)
		}
		seg := make([]Word, used)
		n.public.read(0, seg)
		out[i] = seg
	}
	return out
}

// Fingerprint folds the logical content of every node's public memory into
// h with FNV-1a steps, allocation-free. The extent hashed per node is the
// allocated extent (or the materialised prefix when tests wrote past it),
// with unmaterialised words hashed as the zeros they read as — so the
// result is a pure function of logical memory content, independent of
// which writes happened to materialise backing storage.
func (s *Space) Fingerprint(h uint64) uint64 {
	const prime = 1099511628211
	for i, n := range s.nodes {
		used := s.nextOff[i]
		if backed := len(n.public.data); backed > used {
			used = backed
		}
		for off := 0; off < used; off++ {
			var w Word
			if off < len(n.public.data) {
				w = n.public.data[off]
			}
			h = (h ^ uint64(w)) * prime
		}
		h = (h ^ 0x9e3779b97f4a7c15) * prime // node separator
	}
	return h
}
