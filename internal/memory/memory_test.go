package memory

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNodePublicReadWrite(t *testing.T) {
	n := NewNode(0, 8, 8)
	if err := n.WritePublic(2, []Word{7, 8}); err != nil {
		t.Fatal(err)
	}
	dst := make([]Word, 3)
	if err := n.ReadPublic(1, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 || dst[1] != 7 || dst[2] != 8 {
		t.Fatalf("dst = %v", dst)
	}
}

func TestNodePublicBounds(t *testing.T) {
	n := NewNode(0, 0, 4)
	if err := n.WritePublic(3, []Word{1, 2}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := n.ReadPublic(-1, make([]Word, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestPrivateMemoryEnforcement(t *testing.T) {
	// Fig. 1: the private memory can be accessed from its own processor only.
	n := NewNode(2, 4, 0)
	if err := n.WritePrivate(2, 0, []Word{42}); err != nil {
		t.Fatal(err)
	}
	if err := n.WritePrivate(1, 0, []Word{13}); !errors.Is(err, ErrPrivate) {
		t.Fatalf("remote private write: err = %v, want ErrPrivate", err)
	}
	if err := n.ReadPrivate(3, 0, make([]Word, 1)); !errors.Is(err, ErrPrivate) {
		t.Fatalf("remote private read: err = %v, want ErrPrivate", err)
	}
	dst := make([]Word, 1)
	if err := n.ReadPrivate(2, 0, dst); err != nil || dst[0] != 42 {
		t.Fatalf("local private read: %v %v", dst, err)
	}
	if err := n.ReadPrivate(2, 4, dst); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := n.WritePrivate(2, 4, dst); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestSpaceAllocAndLookup(t *testing.T) {
	s := NewSpace(3, 16, 16)
	a, err := s.Alloc("x", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Home != 1 || a.Off != 0 || a.Len != 4 {
		t.Fatalf("area = %+v", a)
	}
	b, err := s.Alloc("y", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Off != 4 {
		t.Fatalf("second area on same node must follow the first: %+v", b)
	}
	got, err := s.Lookup("x")
	if err != nil || got.ID != a.ID {
		t.Fatalf("Lookup = %+v, %v", got, err)
	}
	if _, err := s.Lookup("zz"); !errors.Is(err, ErrUnknownArea) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.AreaByID(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AreaByID(99); !errors.Is(err, ErrUnknownArea) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpaceAllocErrors(t *testing.T) {
	s := NewSpace(2, 0, 4)
	if _, err := s.Alloc("x", 0, 0); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Alloc("x", 5, 1); !errors.Is(err, ErrMisplacement) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Alloc("x", 0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("x", 0, 1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Alloc("y", 0, 2); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	s.Seal()
	if _, err := s.Alloc("z", 1, 1); err == nil {
		t.Fatal("alloc after seal must fail")
	}
}

func TestPlacements(t *testing.T) {
	if (PlaceRoundRobin{}).Place(5, 3) != 2 {
		t.Fatal("round robin")
	}
	if (PlaceOnNode{Node: 1}).Place(9, 4) != 1 {
		t.Fatal("on node")
	}
	p := PlaceBlocked{PerNode: 2}
	for i, want := range []int{0, 0, 1, 1, 2} {
		if got := p.Place(i, 3); got != want {
			t.Fatalf("blocked Place(%d) = %d, want %d", i, got, want)
		}
	}
	if got := p.Place(100, 3); got != 2 {
		t.Fatalf("blocked overflow clamps to last node, got %d", got)
	}
	if got := (PlaceBlocked{}).Place(1, 3); got != 1 {
		t.Fatalf("zero PerNode defaults to 1, got %d", got)
	}
}

func TestAllocAutoDefaultsToRoundRobin(t *testing.T) {
	s := NewSpace(2, 0, 8)
	a, _ := s.AllocAuto("a", 1, nil)
	b, _ := s.AllocAuto("b", 1, nil)
	if a.Home != 0 || b.Home != 1 {
		t.Fatalf("homes = %d,%d", a.Home, b.Home)
	}
}

func TestAreaAt(t *testing.T) {
	s := NewSpace(2, 0, 8)
	a, _ := s.Alloc("x", 0, 3)
	s.Alloc("y", 0, 2)
	got, ok := s.AreaAt(0, 2)
	if !ok || got.ID != a.ID {
		t.Fatalf("AreaAt(0,2) = %+v, %v", got, ok)
	}
	got, ok = s.AreaAt(0, 3)
	if !ok || got.Name != "y" {
		t.Fatalf("AreaAt(0,3) = %+v, %v", got, ok)
	}
	if _, ok := s.AreaAt(0, 7); ok {
		t.Fatal("unallocated offset must not resolve")
	}
	if _, ok := s.AreaAt(1, 0); ok {
		t.Fatal("wrong node must not resolve")
	}
}

func TestAddrAndString(t *testing.T) {
	a := Area{Home: 2, Off: 10, Len: 4}
	g := Addr(a, 3)
	if g.Node != 2 || g.Off != 13 {
		t.Fatalf("Addr = %+v", g)
	}
	if g.String() != "P2:13" {
		t.Fatalf("String = %q", g.String())
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := NewSpace(2, 0, 4)
	s.Node(0).WritePublic(0, []Word{9})
	snap := s.Snapshot()
	s.Node(0).WritePublic(0, []Word{1})
	if snap[0][0] != 9 {
		t.Fatal("snapshot aliases live memory")
	}
	// Snapshots cover the used extent, not the logical segment: node 1 has
	// neither allocations nor writes, so its snapshot is empty.
	if len(snap) != 2 || len(snap[1]) != 0 {
		t.Fatalf("snapshot shape: %v", snap)
	}
}

func TestSnapshotCoversAllocatedExtent(t *testing.T) {
	s := NewSpace(2, 0, 1<<16)
	if _, err := s.Alloc("x", 0, 3); err != nil {
		t.Fatal(err)
	}
	// Only word 0 is ever written; the snapshot must still span the whole
	// allocated area (words 1-2 zero), and nothing beyond it.
	s.Node(0).WritePublic(0, []Word{5})
	snap := s.Snapshot()
	if len(snap[0]) != 3 || snap[0][0] != 5 || snap[0][1] != 0 || snap[0][2] != 0 {
		t.Fatalf("snapshot = %v, want [5 0 0]", snap[0])
	}
}

func TestLazySegmentReadBeyondBacking(t *testing.T) {
	n := NewNode(0, 0, 1<<16)
	dst := make([]Word, 4)
	for i := range dst {
		dst[i] = 99 // stale caller buffer must be zero-filled
	}
	if err := n.ReadPublic(1<<15, dst); err != nil {
		t.Fatal(err)
	}
	for i, w := range dst {
		if w != 0 {
			t.Fatalf("unwritten word %d reads %d, want 0", i, w)
		}
	}
	// A write far into the segment materialises backing up to that point
	// and reads spanning the boundary see both halves correctly.
	if err := n.WritePublic(6, []Word{7}); err != nil {
		t.Fatal(err)
	}
	span := make([]Word, 4)
	if err := n.ReadPublic(5, span); err != nil {
		t.Fatal(err)
	}
	if span[0] != 0 || span[1] != 7 || span[2] != 0 || span[3] != 0 {
		t.Fatalf("span = %v, want [0 7 0 0]", span)
	}
}

func TestAreasSortedAndNonOverlapping(t *testing.T) {
	// Property: arbitrary allocations never overlap within a node and IDs
	// are dense and ordered.
	f := func(sizes [6]uint8) bool {
		s := NewSpace(3, 0, 1024)
		var areas []Area
		for i, sz := range sizes {
			w := int(sz%7) + 1
			a, err := s.AllocAuto(string(rune('a'+i)), w, PlaceRoundRobin{})
			if err != nil {
				return false
			}
			areas = append(areas, a)
		}
		listed := s.Areas()
		if len(listed) != len(areas) {
			return false
		}
		for i := range listed {
			if listed[i].ID != AreaID(i) {
				return false
			}
		}
		for i := 0; i < len(areas); i++ {
			for j := i + 1; j < len(areas); j++ {
				a, b := areas[i], areas[j]
				if a.Home != b.Home {
					continue
				}
				if a.Off < b.Off+b.Len && b.Off < a.Off+a.Len {
					return false // overlap
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
