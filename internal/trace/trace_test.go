package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dsmrace/internal/vclock"
)

func sampleTrace() *Trace {
	r := NewRecorder(3, 42, "sample")
	r.Append(Event{Kind: EvPut, Proc: 0, Seq: 1, Area: 2, Home: 1, Off: 0, Count: 3, Clock: vclock.VC{1, 0, 0}})
	r.Append(Event{Kind: EvGet, Proc: 1, Seq: 1, Area: 2, Home: 1, Off: 1, Count: 1})
	r.Append(Event{Kind: EvLockAcq, Proc: 1, Area: 2})
	r.Append(Event{Kind: EvLockRel, Proc: 1, Area: 2})
	r.Append(Event{Kind: EvBarrier, Proc: 0, Epoch: 1})
	return r.Trace()
}

func TestRecorderBasics(t *testing.T) {
	tr := sampleTrace()
	if tr.Procs != 3 || tr.Seed != 42 || tr.Label != "sample" {
		t.Fatalf("metadata: %+v", tr)
	}
	if len(tr.Events) != 5 {
		t.Fatalf("events = %d", len(tr.Events))
	}
	if got := len(tr.Accesses()); got != 2 {
		t.Fatalf("accesses = %d, want 2", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Append(Event{Kind: EvPut})
	if tr := r.Trace(); len(tr.Events) != 0 {
		t.Fatal("nil recorder must produce an empty trace")
	}
}

func TestEventKindHelpers(t *testing.T) {
	if !EvPut.IsWrite() || !EvAtomic.IsWrite() || EvGet.IsWrite() {
		t.Fatal("IsWrite")
	}
	if !EvPut.IsAccess() || !EvGet.IsAccess() || EvBarrier.IsAccess() {
		t.Fatal("IsAccess")
	}
	if EvPut.String() != "put" || EventKind(99).String() != "ev(99)" {
		t.Fatal("String")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: EvPut, Proc: 2, Seq: 7, Area: 1, Off: 3, Count: 2}
	s := e.String()
	for _, frag := range []string{"put", "P2#7", "area=1"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("event string %q missing %q", s, frag)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got, tr)
	}
}

func TestGobRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) || got.Procs != tr.Procs {
		t.Fatalf("gob mismatch: %+v", got)
	}
	if !reflect.DeepEqual(got.Events[0].Clock, tr.Events[0].Clock) {
		t.Fatal("clock lost in gob")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("bad json must fail")
	}
	if _, err := ReadGob(strings.NewReader("garbage")); err == nil {
		t.Fatal("bad gob must fail")
	}
}

func TestGobSmallerThanJSON(t *testing.T) {
	r := NewRecorder(4, 1, "size")
	for i := 0; i < 200; i++ {
		r.Append(Event{Kind: EvPut, Proc: i % 4, Seq: uint64(i), Area: 1, Count: 1, Clock: vclock.VC{1, 2, 3, 4}})
	}
	var j, g bytes.Buffer
	if err := r.Trace().WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := r.Trace().WriteGob(&g); err != nil {
		t.Fatal(err)
	}
	if g.Len() >= j.Len() {
		t.Fatalf("gob %d >= json %d", g.Len(), j.Len())
	}
}
