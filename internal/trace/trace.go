package trace

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// EventKind classifies trace events.
type EventKind int

// Event kinds.
const (
	EvPut EventKind = iota
	EvGet
	EvAtomic
	EvLockAcq
	EvLockRel
	EvBarrier
	EvRace
)

var evNames = [...]string{"put", "get", "atomic", "lock", "unlock", "barrier", "race"}

// String returns the event kind's label.
func (k EventKind) String() string {
	if k >= 0 && int(k) < len(evNames) {
		return evNames[k]
	}
	return fmt.Sprintf("ev(%d)", int(k))
}

// IsWrite reports whether the event kind mutates shared memory (atomics are
// read-modify-writes and count as writes, consistently with the detector).
func (k EventKind) IsWrite() bool { return k == EvPut || k == EvAtomic }

// IsAccess reports whether the event is a shared-memory access (as opposed
// to synchronisation or race bookkeeping).
func (k EventKind) IsAccess() bool { return k == EvPut || k == EvGet || k == EvAtomic }

// Event is one trace record. Clock is the initiator's clock when the run
// had detection enabled; the verifier never relies on it and recomputes
// clocks from the event structure.
type Event struct {
	Kind  EventKind
	Proc  int
	Seq   uint64
	Area  memory.AreaID
	Home  int
	Off   int
	Count int
	Time  sim.Time
	Clock vclock.VC `json:",omitempty"`
	// Epoch is the barrier epoch for EvBarrier events.
	Epoch int `json:",omitempty"`
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("%v P%d#%d area=%d [%d+%d) t=%v", e.Kind, e.Proc, e.Seq, e.Area, e.Off, e.Count, e.Time)
}

// Trace is a complete recorded execution.
type Trace struct {
	// Procs is the number of processes in the run.
	Procs int
	// Seed is the simulation seed the run used.
	Seed int64
	// Label carries free-form run metadata (workload name, detector, ...).
	Label string
	// Events in apply order.
	Events []Event
}

// Recorder accumulates events during a run. The zero value records into an
// empty trace; a nil *Recorder safely discards everything.
type Recorder struct {
	tr Trace
}

// NewRecorder returns a recorder for a run with the given process count,
// seed and label.
func NewRecorder(procs int, seed int64, label string) *Recorder {
	return &Recorder{tr: Trace{Procs: procs, Seed: seed, Label: label}}
}

// Append adds an event; nil recorders drop it.
func (r *Recorder) Append(e Event) {
	if r == nil {
		return
	}
	r.tr.Events = append(r.tr.Events, e)
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace {
	if r == nil {
		return &Trace{}
	}
	return &r.tr
}

// Accesses returns only the shared-memory access events.
func (t *Trace) Accesses() []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Kind.IsAccess() {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON serialises the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	return &t, nil
}

// WriteGob serialises the trace in the compact binary format.
func (t *Trace) WriteGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// ReadGob parses a trace written by WriteGob.
func ReadGob(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode gob: %w", err)
	}
	return &t, nil
}
