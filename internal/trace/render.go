package trace

import (
	"fmt"
	"strings"
)

// RenderOptions controls timeline rendering.
type RenderOptions struct {
	// MaxEvents truncates the diagram (0 = 100).
	MaxEvents int
	// ColWidth is the per-process column width (0 = 18).
	ColWidth int
	// Marker, when non-nil, flags an access (e.g. the detector's race
	// verdicts); flagged rows get a "RACE" annotation.
	Marker func(proc int, seq uint64) bool
	// ShowClocks prints recorded initiator clocks when present.
	ShowClocks bool
}

// RenderTimeline draws the trace as a Fig.-5-style space-time diagram: one
// column per process, one row per event in apply order, arrows from the
// initiator's column toward the home node's column for remote accesses.
func RenderTimeline(tr *Trace, opt RenderOptions) string {
	if opt.MaxEvents == 0 {
		opt.MaxEvents = 100
	}
	if opt.ColWidth == 0 {
		opt.ColWidth = 18
	}
	w := opt.ColWidth
	var sb strings.Builder

	var hdr strings.Builder
	for i := 0; i < tr.Procs; i++ {
		fmt.Fprintf(&hdr, "%-*s", w, fmt.Sprintf("P%d", i))
	}
	sb.WriteString(strings.TrimRight(hdr.String(), " "))
	sb.WriteByte('\n')

	cell := func(col int, text string) string {
		var b strings.Builder
		b.WriteString(strings.Repeat(" ", col*w))
		b.WriteString(text)
		return b.String()
	}
	arrow := func(from, to int, label string) string {
		lo, hi := from, to
		rightward := from < to
		if !rightward {
			lo, hi = to, from
		}
		span := (hi-lo)*w - 2
		if span < len(label)+2 {
			span = len(label) + 2
		}
		dashes := span - len(label)
		pre := strings.Repeat("-", dashes/2)
		post := strings.Repeat("-", dashes-dashes/2)
		body := pre + label + post
		if rightward {
			body += ">"
		} else {
			body = "<" + body
		}
		return strings.Repeat(" ", lo*w+1) + body
	}

	count := 0
	for _, e := range tr.Events {
		if count >= opt.MaxEvents {
			fmt.Fprintf(&sb, "... %d more events\n", len(tr.Events)-count)
			break
		}
		count++
		label := ""
		switch e.Kind {
		case EvPut, EvGet, EvAtomic:
			label = fmt.Sprintf("%s a%d[%d+%d)", e.Kind, e.Area, e.Off, e.Count)
			if opt.ShowClocks && e.Clock != nil {
				label += "(" + e.Clock.String() + ")"
			}
			if opt.Marker != nil && opt.Marker(e.Proc, e.Seq) {
				label += " RACE"
			}
			if e.Proc != e.Home {
				sb.WriteString(arrow(e.Proc, e.Home, label))
			} else {
				sb.WriteString(cell(e.Proc, label+" (local)"))
			}
		case EvLockAcq:
			sb.WriteString(cell(e.Proc, fmt.Sprintf("lock a%d", e.Area)))
		case EvLockRel:
			sb.WriteString(cell(e.Proc, fmt.Sprintf("unlock a%d", e.Area)))
		case EvBarrier:
			sb.WriteString(cell(e.Proc, fmt.Sprintf("barrier %d", e.Epoch)))
		default:
			sb.WriteString(cell(e.Proc, e.Kind.String()))
		}
		fmt.Fprintf(&sb, "  @%v\n", e.Time)
	}
	return sb.String()
}
