package trace

import (
	"strings"
	"testing"

	"dsmrace/internal/vclock"
)

func timelineTrace() *Trace {
	r := NewRecorder(3, 1, "render")
	r.Append(Event{Kind: EvPut, Proc: 0, Seq: 1, Area: 0, Home: 1, Count: 1, Clock: vclock.VC{1, 0, 0}})
	r.Append(Event{Kind: EvPut, Proc: 2, Seq: 1, Area: 0, Home: 1, Count: 1, Clock: vclock.VC{0, 0, 1}})
	r.Append(Event{Kind: EvGet, Proc: 1, Seq: 1, Area: 0, Home: 1, Count: 1})
	r.Append(Event{Kind: EvLockAcq, Proc: 0, Area: 2})
	r.Append(Event{Kind: EvLockRel, Proc: 0, Area: 2})
	r.Append(Event{Kind: EvBarrier, Proc: 1, Epoch: 3})
	return r.Trace()
}

func TestRenderTimelineBasics(t *testing.T) {
	out := RenderTimeline(timelineTrace(), RenderOptions{ShowClocks: true})
	for _, want := range []string{"P0", "P1", "P2", "put a0[0+1)(100)", "(local)", "lock a2", "unlock a2", "barrier 3", "->", "<-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTimelineMarker(t *testing.T) {
	out := RenderTimeline(timelineTrace(), RenderOptions{
		Marker: func(proc int, seq uint64) bool { return proc == 2 && seq == 1 },
	})
	if !strings.Contains(out, "RACE") {
		t.Fatalf("marker not rendered:\n%s", out)
	}
	if strings.Count(out, "RACE") != 1 {
		t.Fatalf("marker over-applied:\n%s", out)
	}
}

func TestRenderTimelineTruncation(t *testing.T) {
	tr := timelineTrace()
	out := RenderTimeline(tr, RenderOptions{MaxEvents: 2})
	if !strings.Contains(out, "more events") {
		t.Fatalf("truncation note missing:\n%s", out)
	}
}

func TestRenderTimelineArrowDirections(t *testing.T) {
	r := NewRecorder(2, 1, "dir")
	r.Append(Event{Kind: EvPut, Proc: 0, Seq: 1, Area: 0, Home: 1, Count: 1})
	r.Append(Event{Kind: EvPut, Proc: 1, Seq: 1, Area: 1, Home: 0, Count: 1})
	out := RenderTimeline(r.Trace(), RenderOptions{})
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], ">") || strings.Contains(lines[1], "<") {
		t.Fatalf("rightward arrow wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "<") || strings.Contains(lines[2], ">") {
		t.Fatalf("leftward arrow wrong: %q", lines[2])
	}
}
