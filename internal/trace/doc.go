// Package trace records executions of the DSM runtime as a deterministic,
// serialisable event stream. Events are appended in apply order (the order
// the home NICs processed them — well-defined because the simulation kernel
// serialises everything), which is exactly the order the offline verifier
// needs to replay reference semantics and compute exact ground truth.
package trace
