// Package workload generates the parallel programs the evaluation runs on:
// randomized access mixes with tunable read ratio and contention, the
// paper's master-worker benign-race pattern (§IV-D), barrier-phased stencil
// halo exchange (with a deliberately buggy variant), histogram updates and
// a lock-disciplined producer/consumer. Every workload reports its expected
// race profile so experiments can assert shape, not just run.
package workload
