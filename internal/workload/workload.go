package workload

import (
	"fmt"

	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
)

// RaceProfile declares what a workload's synchronisation structure implies.
type RaceProfile int

// Race profiles.
const (
	// RaceFree means exact ground truth must be empty.
	RaceFree RaceProfile = iota
	// RacyBenign means races exist by design and the result is still correct.
	RacyBenign
	// RacyBug means races exist and corrupt the result on some schedules.
	RacyBug
)

// String names the profile.
func (r RaceProfile) String() string {
	switch r {
	case RaceFree:
		return "race-free"
	case RacyBenign:
		return "racy-benign"
	default:
		return "racy-bug"
	}
}

// Workload couples shared-variable setup with per-process programs.
type Workload struct {
	// Name identifies the workload in tables.
	Name string
	// Procs is the process count the workload was built for.
	Procs int
	// Profile is the expected race profile.
	Profile RaceProfile
	// Setup allocates the shared variables.
	Setup func(c *dsm.Cluster) error
	// Programs returns one program per process.
	Programs func() []dsm.Program
	// Check validates the final memory state (nil = no check).
	Check func(res *dsm.Result) error
	// SharedRand declares that the programs draw from the shared simulation
	// RNG (Proc.Rand) mid-run. Such runs are serial-only: the draw order is
	// the serial interleaving itself, so a multi-kernel request degrades to
	// one kernel (Run forwards this as dsm.Config.SerialOnly).
	SharedRand bool
	// LocalityGroup is the affinity-group size hint for locality-aware
	// node partitioning: nodes [g*group, (g+1)*group) communicate mostly
	// among themselves (0 = no affinity structure).
	LocalityGroup int
}

// Run builds a cluster from cfg (Procs is overridden), applies Setup and
// executes the workload.
func (w Workload) Run(cfg dsm.Config) (*dsm.Result, error) {
	cfg.Procs = w.Procs
	if cfg.Label == "" {
		cfg.Label = w.Name
	}
	if w.SharedRand {
		cfg.SerialOnly = true
	}
	if cfg.LocalityGroup == 0 {
		cfg.LocalityGroup = w.LocalityGroup
	}
	c, err := dsm.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := w.Setup(c); err != nil {
		return nil, err
	}
	res, err := c.RunEach(w.Programs())
	if err != nil {
		return res, err
	}
	if err := res.FirstError(); err != nil {
		return res, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	if w.Check != nil {
		if err := w.Check(res); err != nil {
			return res, fmt.Errorf("workload %s: %w", w.Name, err)
		}
	}
	return res, nil
}

// spmd replicates one program across n processes.
func spmd(n int, prog dsm.Program) func() []dsm.Program {
	return func() []dsm.Program {
		ps := make([]dsm.Program, n)
		for i := range ps {
			ps[i] = prog
		}
		return ps
	}
}

// RandomSpec parameterises the randomized workload.
type RandomSpec struct {
	Procs int
	// Areas is the number of shared variables (round-robin homed).
	Areas int
	// AreaWords is each variable's size.
	AreaWords int
	// OpsPerProc is the number of operations each process issues.
	OpsPerProc int
	// ReadPercent in [0,100] selects gets vs puts.
	ReadPercent int
	// LockDiscipline wraps every access in the area's lock (making the
	// workload race-free).
	LockDiscipline bool
	// BarrierEvery inserts a barrier after this many operations (0 = never).
	BarrierEvery int
}

// Random builds the randomized mixed access workload.
func Random(spec RandomSpec) Workload {
	if spec.Areas <= 0 {
		spec.Areas = 4
	}
	if spec.AreaWords <= 0 {
		spec.AreaWords = 4
	}
	profile := RacyBenign
	if spec.LockDiscipline {
		profile = RaceFree
	}
	// Precomputed names: the op loop resolves an area per operation, and a
	// Sprintf there is a measurable share of benchmark allocations.
	names := make([]string, spec.Areas)
	for i := range names {
		names[i] = fmt.Sprintf("rand%d", i)
	}
	areaName := func(i int) string { return names[i] }
	return Workload{
		Name:       fmt.Sprintf("random-r%d", spec.ReadPercent),
		Procs:      spec.Procs,
		Profile:    profile,
		SharedRand: true,
		Setup: func(c *dsm.Cluster) error {
			for i := 0; i < spec.Areas; i++ {
				if err := c.Alloc(areaName(i), i%spec.Procs, spec.AreaWords); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(spec.Procs, func(p *dsm.Proc) error {
			for i := 0; i < spec.OpsPerProc; i++ {
				name := areaName(p.Rand().Intn(spec.Areas))
				off := p.Rand().Intn(spec.AreaWords)
				if spec.LockDiscipline {
					if err := p.Lock(name); err != nil {
						return err
					}
				}
				var err error
				if p.Rand().Intn(100) < spec.ReadPercent {
					_, err = p.GetWord(name, off)
				} else {
					err = p.Put(name, off, memory.Word(i))
				}
				if spec.LockDiscipline {
					if uerr := p.Unlock(name); uerr != nil && err == nil {
						err = uerr
					}
				}
				if err != nil {
					return err
				}
				if spec.BarrierEvery > 0 && (i+1)%spec.BarrierEvery == 0 {
					p.Barrier()
				}
			}
			return nil
		}),
	}
}

// MasterWorker is the paper's §IV-D example: workers race on purpose while
// delivering results to the master; the race must be signalled but the run
// must complete with a correct total (signal-don't-abort, E-T5).
func MasterWorker(procs, tasksPerWorker int) Workload {
	expected := memory.Word((procs - 1) * tasksPerWorker)
	return Workload{
		Name:    "master-worker",
		Procs:   procs,
		Profile: RacyBenign,
		Setup: func(c *dsm.Cluster) error {
			return c.Alloc("mw.results", 0, 1)
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			if p.ID() == 0 {
				p.Barrier()
				got, err := p.GetWord("mw.results", 0)
				if err != nil {
					return err
				}
				if got != expected {
					return fmt.Errorf("master collected %d, want %d", got, expected)
				}
				return nil
			}
			for t := 0; t < tasksPerWorker; t++ {
				// Simulate work, then deliver the result: all workers add
				// into the same cell with no mutual synchronisation.
				p.Sleep(100)
				if _, err := p.FetchAdd("mw.results", 0, 1); err != nil {
					return err
				}
			}
			p.Barrier()
			return nil
		}),
		Check: func(res *dsm.Result) error {
			if got := res.Memory[0][0]; got != expected {
				return fmt.Errorf("results cell = %d, want %d", got, expected)
			}
			return nil
		},
	}
}

// Stencil1D is a barrier-phased halo exchange over per-process segment
// areas: each iteration every process updates its segment from its
// neighbours' boundary cells. Race-free by construction.
func Stencil1D(procs, widthPerProc, iters int) Workload {
	seg := func(i int) string { return fmt.Sprintf("seg%d", i) }
	return Workload{
		Name:    "stencil1d",
		Procs:   procs,
		Profile: RaceFree,
		Setup: func(c *dsm.Cluster) error {
			for i := 0; i < procs; i++ {
				if err := c.Alloc(seg(i), i, widthPerProc); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			mine := seg(p.ID())
			left := seg((p.ID() + p.N() - 1) % p.N())
			right := seg((p.ID() + 1) % p.N())
			// Initialise the segment to the process id.
			vals := make([]memory.Word, widthPerProc)
			for i := range vals {
				vals[i] = memory.Word(p.ID())
			}
			if err := p.Put(mine, 0, vals...); err != nil {
				return err
			}
			p.Barrier()
			for it := 0; it < iters; it++ {
				lv, err := p.GetWord(left, widthPerProc-1)
				if err != nil {
					return err
				}
				rv, err := p.GetWord(right, 0)
				if err != nil {
					return err
				}
				cur, err := p.Get(mine, 0, widthPerProc)
				if err != nil {
					return err
				}
				next := make([]memory.Word, widthPerProc)
				for i := range next {
					l, r := lv, rv
					if i > 0 {
						l = cur[i-1]
					}
					if i < widthPerProc-1 {
						r = cur[i+1]
					}
					next[i] = (l + cur[i] + r) / 3
				}
				// Everyone finishes reading before anyone writes the next
				// generation, and vice versa.
				p.Barrier()
				if err := p.Put(mine, 0, next...); err != nil {
					return err
				}
				p.Barrier()
			}
			return nil
		}),
	}
}

// StencilBuggy is Stencil1D with the read/write barrier removed — the
// classic forgotten-barrier bug: neighbours may read a segment while its
// owner overwrites it. Races must be reported.
func StencilBuggy(procs, widthPerProc, iters int) Workload {
	w := Stencil1D(procs, widthPerProc, iters)
	seg := func(i int) string { return fmt.Sprintf("seg%d", i) }
	w.Name = "stencil1d-buggy"
	w.Profile = RacyBug
	w.Programs = spmd(procs, func(p *dsm.Proc) error {
		mine := seg(p.ID())
		left := seg((p.ID() + p.N() - 1) % p.N())
		right := seg((p.ID() + 1) % p.N())
		vals := make([]memory.Word, widthPerProc)
		for i := range vals {
			vals[i] = memory.Word(p.ID())
		}
		if err := p.Put(mine, 0, vals...); err != nil {
			return err
		}
		p.Barrier()
		for it := 0; it < iters; it++ {
			lv, err := p.GetWord(left, widthPerProc-1)
			if err != nil {
				return err
			}
			rv, err := p.GetWord(right, 0)
			if err != nil {
				return err
			}
			cur, err := p.Get(mine, 0, widthPerProc)
			if err != nil {
				return err
			}
			next := make([]memory.Word, widthPerProc)
			for i := range next {
				l, r := lv, rv
				if i > 0 {
					l = cur[i-1]
				}
				if i < widthPerProc-1 {
					r = cur[i+1]
				}
				next[i] = (l + cur[i] + r) / 3
			}
			// BUG: no barrier — writes race with neighbours' reads.
			if err := p.Put(mine, 0, next...); err != nil {
				return err
			}
		}
		return nil
	})
	w.Check = nil
	return w
}

// Histogram has every process scatter increments over shared bins.
// Atomic FetchAdds keep the totals exact; the races are benign by design.
func Histogram(procs, bins, updatesPerProc int) Workload {
	return Workload{
		Name:       "histogram",
		Procs:      procs,
		Profile:    RacyBenign,
		SharedRand: true,
		Setup: func(c *dsm.Cluster) error {
			for b := 0; b < bins; b++ {
				if err := c.Alloc(fmt.Sprintf("bin%d", b), b%procs, 1); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			for i := 0; i < updatesPerProc; i++ {
				b := p.Rand().Intn(bins)
				if _, err := p.FetchAdd(fmt.Sprintf("bin%d", b), 0, 1); err != nil {
					return err
				}
			}
			return nil
		}),
		Check: func(res *dsm.Result) error {
			var total memory.Word
			for b := 0; b < bins; b++ {
				total += res.Memory[b%procs][b/procs]
			}
			if total != memory.Word(procs*updatesPerProc) {
				return fmt.Errorf("histogram total = %d, want %d", total, procs*updatesPerProc)
			}
			return nil
		},
	}
}

// HistogramRacy uses read-modify-write without atomics or locks: updates
// can be lost (a real bug the detector must flag).
func HistogramRacy(procs, bins, updatesPerProc int) Workload {
	w := Histogram(procs, bins, updatesPerProc)
	w.Name = "histogram-racy"
	w.Profile = RacyBug
	w.Programs = spmd(procs, func(p *dsm.Proc) error {
		for i := 0; i < updatesPerProc; i++ {
			b := p.Rand().Intn(bins)
			name := fmt.Sprintf("bin%d", b)
			v, err := p.GetWord(name, 0)
			if err != nil {
				return err
			}
			if err := p.Put(name, 0, v+1); err != nil {
				return err
			}
		}
		return nil
	})
	w.Check = nil // totals may legitimately be lost
	return w
}

// ProducerConsumer moves items through a lock-protected shared queue of
// head/tail/slots. Race-free under the lock discipline.
func ProducerConsumer(pairs, itemsPerPair int) Workload {
	procs := 2 * pairs
	cap := itemsPerPair * pairs
	return Workload{
		Name:    "prodcons",
		Procs:   procs,
		Profile: RaceFree,
		Setup: func(c *dsm.Cluster) error {
			// One queue: [head, tail, slots...]
			return c.Alloc("queue", 0, 2+cap)
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			producer := p.ID() < pairs
			if producer {
				for i := 0; i < itemsPerPair; i++ {
					item := memory.Word(p.ID()*itemsPerPair + i + 1)
					for {
						if err := p.Lock("queue"); err != nil {
							return err
						}
						hd, err1 := p.GetWord("queue", 0)
						tl, err2 := p.GetWord("queue", 1)
						if err1 != nil || err2 != nil {
							p.Unlock("queue")
							return fmt.Errorf("queue read: %v %v", err1, err2)
						}
						if int(tl-hd) < cap {
							if err := p.Put("queue", 2+int(tl)%cap, item); err != nil {
								p.Unlock("queue")
								return err
							}
							if err := p.Put("queue", 1, tl+1); err != nil {
								p.Unlock("queue")
								return err
							}
							if err := p.Unlock("queue"); err != nil {
								return err
							}
							break
						}
						if err := p.Unlock("queue"); err != nil {
							return err
						}
						p.Sleep(500)
					}
				}
				return nil
			}
			// Consumer: drain itemsPerPair items.
			got := 0
			for got < itemsPerPair {
				if err := p.Lock("queue"); err != nil {
					return err
				}
				hd, err1 := p.GetWord("queue", 0)
				tl, err2 := p.GetWord("queue", 1)
				if err1 != nil || err2 != nil {
					p.Unlock("queue")
					return fmt.Errorf("queue read: %v %v", err1, err2)
				}
				if hd < tl {
					v, err := p.GetWord("queue", 2+int(hd)%cap)
					if err != nil {
						p.Unlock("queue")
						return err
					}
					if v == 0 {
						p.Unlock("queue")
						return fmt.Errorf("consumed empty slot")
					}
					if err := p.Put("queue", 0, hd+1); err != nil {
						p.Unlock("queue")
						return err
					}
					got++
				}
				if err := p.Unlock("queue"); err != nil {
					return err
				}
				if hd == tl {
					p.Sleep(500)
				}
			}
			return nil
		}),
	}
}

// Migratory is the classic ownership-migration pattern the coherence
// protocols genuinely diverge on: one lock-protected shared object homed on
// node 0 migrates between processes. Every process repeatedly locks the
// object, reads all of it, increments every word and writes it back — so
// the object's freshest copy hops from critical section to critical
// section. Race-free (every conflicting access is under the object's lock)
// with a schedule-independent per-process access stream, which makes it
// valid for the protocol equivalence suite and the determinism
// fingerprints.
//
// Write-update moves exactly the requested words twice per critical section
// (get + put). Write-invalidate adds a whole-area fetch for the incoming
// owner plus an invalidation round trip evicting the previous owner's copy,
// and its cached copy is always stale by the time the lock is re-acquired —
// migration is write-update's best case and write-invalidate's worst
// (measured in E-T12 and the E_Coherence benchmarks).
func Migratory(procs, rounds, words int) Workload {
	expected := memory.Word(procs * rounds)
	return Workload{
		Name:    "migratory",
		Procs:   procs,
		Profile: RaceFree,
		Setup: func(c *dsm.Cluster) error {
			return c.Alloc("mig.obj", 0, words)
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			for r := 0; r < rounds; r++ {
				if err := p.Lock("mig.obj"); err != nil {
					return err
				}
				cur, err := p.Get("mig.obj", 0, words)
				if err != nil {
					p.Unlock("mig.obj")
					return err
				}
				for i := range cur {
					cur[i]++
				}
				if err := p.Put("mig.obj", 0, cur...); err != nil {
					p.Unlock("mig.obj")
					return err
				}
				if err := p.Unlock("mig.obj"); err != nil {
					return err
				}
			}
			return nil
		}),
		Check: func(res *dsm.Result) error {
			for w := 0; w < words; w++ {
				if got := res.Memory[0][w]; got != expected {
					return fmt.Errorf("object word %d = %d, want %d", w, got, expected)
				}
			}
			return nil
		},
	}
}

// MigratoryGroups partitions the cluster into independent migratory rings:
// procs are split into ⌈procs/groupSize⌉ groups, and each group lock-passes
// its own shared object (homed on the group's first node) exactly as
// Migratory does. There is no cross-group synchronisation and no global
// barrier, so a process's vector clock only ever gains components from its
// own group — the workload stays clock-sparse at any cluster size, which is
// the communication structure large clusters actually exhibit (and what the
// dirty-masked clock representation exploits). Race-free.
func MigratoryGroups(procs, groupSize, rounds, words int) Workload {
	if groupSize <= 0 || groupSize > procs {
		groupSize = procs
	}
	groups := (procs + groupSize - 1) / groupSize
	obj := func(g int) string { return fmt.Sprintf("mig.grp%d", g) }
	groupOf := func(id int) int { return id / groupSize }
	membersOf := func(g int) int {
		m := procs - g*groupSize
		if m > groupSize {
			m = groupSize
		}
		return m
	}
	return Workload{
		Name:          "migratory-groups",
		Procs:         procs,
		Profile:       RaceFree,
		LocalityGroup: groupSize,
		Setup: func(c *dsm.Cluster) error {
			for g := 0; g < groups; g++ {
				if err := c.Alloc(obj(g), g*groupSize, words); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			name := obj(groupOf(p.ID()))
			for r := 0; r < rounds; r++ {
				if err := p.Lock(name); err != nil {
					return err
				}
				cur, err := p.Get(name, 0, words)
				if err != nil {
					p.Unlock(name)
					return err
				}
				for i := range cur {
					cur[i]++
				}
				if err := p.Put(name, 0, cur...); err != nil {
					p.Unlock(name)
					return err
				}
				if err := p.Unlock(name); err != nil {
					return err
				}
			}
			return nil
		}),
		Check: func(res *dsm.Result) error {
			for g := 0; g < groups; g++ {
				want := memory.Word(membersOf(g) * rounds)
				for w := 0; w < words; w++ {
					if got := res.Memory[g*groupSize][w]; got != want {
						return fmt.Errorf("group %d word %d = %d, want %d", g, w, got, want)
					}
				}
			}
			return nil
		},
	}
}

// ProducerConsumerChain is a ring of single-producer/single-consumer
// buffers: stage i produces into chain (i+1)%n — homed on node i, so every
// write is producer-local — and consumes chain i from its upstream
// neighbour's memory, re-reading it rereads times per round (validate,
// transform, checksum passes). Barrier-phased and race-free with a
// schedule-independent access stream.
//
// The divergence mirror image of Migratory: write-invalidate serves every
// re-read after the first from the consumer's cached copy, while
// write-update pays a full round trip per re-read — repeated reads are
// write-invalidate's best case.
func ProducerConsumerChain(stages, rounds, words, rereads int) Workload {
	if rereads < 1 {
		rereads = 1
	}
	chain := func(i int) string { return fmt.Sprintf("chain%d", i) }
	return Workload{
		Name:    "prodchain",
		Procs:   stages,
		Profile: RaceFree,
		Setup: func(c *dsm.Cluster) error {
			for j := 0; j < stages; j++ {
				// chain j is written by stage (j-1+stages)%stages: home it there.
				if err := c.Alloc(chain(j), (j-1+stages)%stages, words); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(stages, func(p *dsm.Proc) error {
			in := chain(p.ID())
			out := chain((p.ID() + 1) % p.N())
			// Seed the ring: every stage publishes its id downstream.
			vals := make([]memory.Word, words)
			for i := range vals {
				vals[i] = memory.Word(p.ID())
			}
			if err := p.Put(out, 0, vals...); err != nil {
				return err
			}
			p.Barrier()
			for r := 0; r < rounds; r++ {
				var cur []memory.Word
				for k := 0; k < rereads; k++ {
					var err error
					if cur, err = p.Get(in, 0, words); err != nil {
						return err
					}
				}
				// Everyone finishes consuming round r's input before anyone
				// overwrites it with round r+1's output.
				p.Barrier()
				for i := range cur {
					cur[i]++
				}
				if err := p.Put(out, 0, cur...); err != nil {
					return err
				}
				p.Barrier()
			}
			return nil
		}),
		Check: func(res *dsm.Result) error {
			// chain j's final value telescopes: it was seeded on ring position
			// (j-1-rounds) mod stages and incremented once per round.
			for j := 0; j < stages; j++ {
				home := (j - 1 + stages) % stages
				seed := ((j-1-rounds)%stages + stages) % stages
				want := memory.Word(seed + rounds)
				for w := 0; w < words; w++ {
					if got := res.Memory[home][w]; got != want {
						return fmt.Errorf("chain%d word %d = %d, want %d", j, w, got, want)
					}
				}
			}
			return nil
		},
	}
}

// LockstepAdders has every worker sleep the same interval and then hit the
// same shared cell homed on the (otherwise idle) node 0 — so each round's
// requests land at the home in one delivery slot. Racy by design
// (unsynchronised writers racing on one word) with a schedule-independent
// verdict sequence; built as the colliding shape for the home slot-batching
// ablation (rdma.Config.HomeSlotBatch), where same-slot same-area requests
// share one lock tenure.
func LockstepAdders(procs, rounds int) Workload {
	expected := memory.Word((procs - 1) * rounds)
	return Workload{
		Name:    "lockstep-adders",
		Procs:   procs,
		Profile: RacyBenign,
		Setup:   func(c *dsm.Cluster) error { return c.Alloc("cell", 0, 1) },
		Programs: func() []dsm.Program {
			ps := make([]dsm.Program, procs)
			for i := 1; i < procs; i++ {
				ps[i] = func(p *dsm.Proc) error {
					for r := 0; r < rounds; r++ {
						p.Sleep(100_000)
						if _, err := p.FetchAdd("cell", 0, 1); err != nil {
							return err
						}
					}
					return nil
				}
			}
			return ps
		},
		Check: func(res *dsm.Result) error {
			if got := res.Memory[0][0]; got != expected {
				return fmt.Errorf("cell = %d, want %d", got, expected)
			}
			return nil
		},
	}
}

// Pipeline passes a token around the ring using data cells and polled
// flags. Flag polling is synchronisation-via-race (like a relaxed atomic
// spin): the detector must flag the flag cells. The data cells, however,
// are ordered through the flag's reads-from edge — data put happens-before
// flag put (program order), and the poller absorbs the flag's write clock
// before touching the data — so the data traffic must stay clean. The test
// suite asserts exactly that split.
func Pipeline(procs, rounds int) Workload {
	data := func(i int) string { return fmt.Sprintf("pipe.data%d", i) }
	flag := func(i int) string { return fmt.Sprintf("pipe.flag%d", i) }
	return Workload{
		Name:    "pipeline",
		Procs:   procs,
		Profile: RacyBenign,
		Setup: func(c *dsm.Cluster) error {
			for i := 0; i < procs; i++ {
				if err := c.Alloc(data(i), i, 1); err != nil {
					return err
				}
				if err := c.Alloc(flag(i), i, 1); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			next := (p.ID() + 1) % p.N()
			for r := 0; r < rounds; r++ {
				round := memory.Word(r + 1)
				if p.ID() == 0 {
					// Inject the token, then wait for it to come back.
					if err := p.Put(data(next), 0, round*100); err != nil {
						return err
					}
					if err := p.Put(flag(next), 0, round); err != nil {
						return err
					}
					for {
						v, err := p.GetWord(flag(0), 0)
						if err != nil {
							return err
						}
						if v == round {
							break
						}
						p.Sleep(2000)
					}
					tok, err := p.GetWord(data(0), 0)
					if err != nil {
						return err
					}
					if tok != round*100+memory.Word(p.N()-1) {
						return fmt.Errorf("round %d: token %d, want %d", r, tok, round*100+memory.Word(p.N()-1))
					}
					continue
				}
				// Wait for the token, increment, forward.
				for {
					v, err := p.GetWord(flag(p.ID()), 0)
					if err != nil {
						return err
					}
					if v == round {
						break
					}
					p.Sleep(2000)
				}
				tok, err := p.GetWord(data(p.ID()), 0)
				if err != nil {
					return err
				}
				if err := p.Put(data(next), 0, tok+1); err != nil {
					return err
				}
				if err := p.Put(flag(next), 0, round); err != nil {
					return err
				}
			}
			return nil
		}),
	}
}
