package workload

// Hostile workloads are fault-tolerant variants of the uniform, migratory
// and group access patterns, built to keep a cluster busy while a fault
// schedule (dsm.Config.Faults) cuts links, drops messages and crashes
// nodes underneath them. They differ from their benign cousins in three
// ways:
//
//   - Barrier-free. A crashed node can never arrive at a barrier, so any
//     collective would wedge the survivors; progress here is strictly
//     per-process.
//   - Unreachable-tolerant. Every operation may fail with
//     rdma.ErrUnreachable once its retry budget expires; the programs
//     swallow that error and move to the next step rather than aborting
//     the run.
//   - Crash-aware. A process that observes its own node down
//     (Proc.Crashed) stops issuing — its volatile state is gone and the
//     fault layer fails its in-flight operations.
//
// Destinations are chosen by hashing (proc, step), never Proc.Rand, so the
// workloads stay kernel-count-independent and bit-reproducible.

import (
	"errors"
	"fmt"

	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
)

// hmix is the splitmix64 finalizer: a cheap, well-distributed hash used to
// derive per-(proc, step) decisions without any shared RNG state.
func hmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// tolerate maps ErrUnreachable to nil (the hostile contract: unreachable
// peers are survivable) and passes every other error through.
func tolerate(err error) error {
	if err == nil || errors.Is(err, rdma.ErrUnreachable) {
		return nil
	}
	return err
}

// HostileUniform spreads hashed reads and writes across round-robin-homed
// areas, lock-free, riding out whatever the fault schedule does.
func HostileUniform(procs, areas, areaWords, opsPerProc int) Workload {
	if areas <= 0 {
		areas = 2 * procs
	}
	if areaWords <= 0 {
		areaWords = 4
	}
	names := make([]string, areas)
	for i := range names {
		names[i] = fmt.Sprintf("hu%d", i)
	}
	return Workload{
		Name:    "hostile-uniform",
		Procs:   procs,
		Profile: RacyBenign,
		Setup: func(c *dsm.Cluster) error {
			for i := range names {
				if err := c.Alloc(names[i], i%procs, areaWords); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			for i := 0; i < opsPerProc; i++ {
				if p.Crashed() {
					return nil
				}
				h := hmix(uint64(p.ID())<<32 + uint64(i))
				name := names[h%uint64(areas)]
				off := int((h >> 16) % uint64(areaWords))
				var err error
				if h&(1<<8) != 0 {
					_, err = p.GetWord(name, off)
				} else {
					err = p.Put(name, off, memory.Word(i))
				}
				if err = tolerate(err); err != nil {
					return err
				}
			}
			return nil
		}),
	}
}

// HostileMigratory contends for a single lock-protected area whose
// ownership migrates from grant to grant: each process repeatedly locks,
// bumps every word, and unlocks. When the home of the lock crashes,
// survivors see ErrUnreachable until failover re-homes the area, then
// resume against the successor.
func HostileMigratory(procs, rounds, words int) Workload {
	if words <= 0 {
		words = 4
	}
	const name = "hmig"
	return Workload{
		Name:    "hostile-migratory",
		Procs:   procs,
		Profile: RaceFree,
		Setup: func(c *dsm.Cluster) error {
			return c.Alloc(name, 0, words)
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			for r := 0; r < rounds; r++ {
				if p.Crashed() {
					return nil
				}
				if err := p.Lock(name); err != nil {
					if err = tolerate(err); err != nil {
						return err
					}
					continue // lock never granted; nothing to release
				}
				for w := 0; w < words; w++ {
					old, err := p.GetWord(name, w)
					if err = tolerate(err); err != nil {
						return err
					}
					if err := tolerate(p.Put(name, w, old+1)); err != nil {
						return err
					}
				}
				if err := p.Unlock(name); err != nil {
					return err
				}
			}
			return nil
		}),
	}
}

// HostileGroups partitions the cluster into independent migratory rings of
// groupSize nodes, each contending for its own group-homed area — the
// locality-structured hostile pattern: a crash inside one group leaves the
// other groups' traffic untouched until failover shifts the victim group's
// home.
func HostileGroups(procs, groupSize, rounds, words int) Workload {
	if groupSize <= 0 || groupSize > procs {
		groupSize = procs
	}
	if words <= 0 {
		words = 4
	}
	groups := (procs + groupSize - 1) / groupSize
	names := make([]string, groups)
	for g := range names {
		names[g] = fmt.Sprintf("hg%d", g)
	}
	return Workload{
		Name:          "hostile-groups",
		Procs:         procs,
		Profile:       RaceFree,
		LocalityGroup: groupSize,
		Setup: func(c *dsm.Cluster) error {
			for g := range names {
				if err := c.Alloc(names[g], g*groupSize, words); err != nil {
					return err
				}
			}
			return nil
		},
		Programs: spmd(procs, func(p *dsm.Proc) error {
			name := names[p.ID()/groupSize]
			for r := 0; r < rounds; r++ {
				if p.Crashed() {
					return nil
				}
				if err := p.Lock(name); err != nil {
					if err = tolerate(err); err != nil {
						return err
					}
					continue
				}
				off := int(hmix(uint64(p.ID())<<20+uint64(r)) % uint64(words))
				old, err := p.GetWord(name, off)
				if err = tolerate(err); err != nil {
					return err
				}
				if err := tolerate(p.Put(name, off, old+1)); err != nil {
					return err
				}
				if err := p.Unlock(name); err != nil {
					return err
				}
			}
			return nil
		}),
	}
}
