package workload

import (
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/rdma"
	"dsmrace/internal/verify"
)

func cfg(seed int64, det core.Detector) dsm.Config {
	return dsm.Config{Seed: seed, Trace: true, RDMA: rdma.DefaultConfig(det, nil)}
}

// checkProfile runs w and asserts its race profile against both the
// detector and exact ground truth.
func checkProfile(t *testing.T, w Workload, seed int64) *dsm.Result {
	t.Helper()
	res, err := w.Run(cfg(seed, core.NewExactVWDetector()))
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	switch w.Profile {
	case RaceFree:
		if len(truth.Pairs) != 0 {
			t.Fatalf("%s: race-free workload has true races: %v", w.Name, truth.Pairs[:min(3, len(truth.Pairs))])
		}
		if res.RaceCount != 0 {
			t.Fatalf("%s: detector flagged a race-free workload: %v", w.Name, res.Races[:min(3, len(res.Races))])
		}
	default:
		if len(truth.Pairs) == 0 {
			t.Fatalf("%s: racy workload has empty ground truth", w.Name)
		}
		if res.RaceCount == 0 {
			t.Fatalf("%s: detector missed all races", w.Name)
		}
	}
	return res
}

func TestRandomLockDisciplined(t *testing.T) {
	w := Random(RandomSpec{Procs: 3, Areas: 3, AreaWords: 2, OpsPerProc: 10, ReadPercent: 50, LockDiscipline: true})
	if w.Profile != RaceFree {
		t.Fatal("lock discipline must be race-free")
	}
	checkProfile(t, w, 5)
}

func TestRandomUnsynchronisedRaces(t *testing.T) {
	w := Random(RandomSpec{Procs: 3, Areas: 2, AreaWords: 2, OpsPerProc: 10, ReadPercent: 30})
	checkProfile(t, w, 5)
}

func TestRandomWithBarriers(t *testing.T) {
	// Barriers order *phases* but ops within one phase still race with each
	// other; the detector must agree exactly with ground truth, and the
	// barriers must strictly reduce the race population versus the
	// unsynchronised run.
	barriered := Random(RandomSpec{Procs: 3, Areas: 2, AreaWords: 2, OpsPerProc: 6, ReadPercent: 50, BarrierEvery: 1})
	resB, err := barriered.Run(cfg(3, core.NewExactVWDetector()))
	if err != nil {
		t.Fatal(err)
	}
	truthB := verify.GroundTruth(resB.Trace, verify.DefaultOptions())
	score := verify.ScoreReports(truthB, "vw-exact", resB.Races)
	if score.FP != 0 || score.FN != 0 {
		t.Fatalf("detector diverged from truth under barriers: %v", score)
	}

	free := Random(RandomSpec{Procs: 3, Areas: 2, AreaWords: 2, OpsPerProc: 6, ReadPercent: 50})
	resF, err := free.Run(cfg(3, core.NewExactVWDetector()))
	if err != nil {
		t.Fatal(err)
	}
	truthF := verify.GroundTruth(resF.Trace, verify.DefaultOptions())
	if len(truthB.Pairs) >= len(truthF.Pairs) {
		t.Fatalf("barriers did not reduce true races: %d vs %d", len(truthB.Pairs), len(truthF.Pairs))
	}
}

func TestMasterWorkerBenign(t *testing.T) {
	w := MasterWorker(4, 3)
	res := checkProfile(t, w, 7)
	// The check inside Run already validated the total; double-check the
	// signal-don't-abort property: program errors empty, races present.
	if res.FirstError() != nil {
		t.Fatal(res.FirstError())
	}
}

func TestStencilCleanAndBuggy(t *testing.T) {
	checkProfile(t, Stencil1D(4, 4, 3), 11)
	checkProfile(t, StencilBuggy(4, 4, 3), 11)
}

func TestStencilConverges(t *testing.T) {
	w := Stencil1D(3, 3, 8)
	res, err := w.Run(cfg(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Averaging with wrap-around converges toward the mean of the ids
	// (0,1,2): all cells must be in [0,2] and not all equal to the initial
	// pattern.
	for node := 0; node < 3; node++ {
		for i := 0; i < 3; i++ {
			v := res.Memory[node][i]
			if v > 2 {
				t.Fatalf("cell out of range: node %d[%d] = %d", node, i, v)
			}
		}
	}
}

func TestHistogramExactTotals(t *testing.T) {
	w := Histogram(3, 5, 8)
	checkProfile(t, w, 13)
}

func TestHistogramRacyFlagged(t *testing.T) {
	w := HistogramRacy(3, 2, 6)
	checkProfile(t, w, 13)
}

func TestProducerConsumer(t *testing.T) {
	w := ProducerConsumer(2, 3)
	checkProfile(t, w, 17)
}

func TestProfileStrings(t *testing.T) {
	if RaceFree.String() != "race-free" || RacyBenign.String() != "racy-benign" || RacyBug.String() != "racy-bug" {
		t.Fatal("profile names")
	}
}

func TestWorkloadRunLabel(t *testing.T) {
	w := MasterWorker(3, 1)
	res, err := w.Run(cfg(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Label != "master-worker" {
		t.Fatalf("label = %q", res.Trace.Label)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPipelineTokenPassing(t *testing.T) {
	w := Pipeline(4, 3)
	res, err := w.Run(cfg(9, core.NewExactVWDetector()))
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("flag polling is synchronisation-via-race and must be flagged")
	}
	// The decisive property: every report concerns a flag area, never a
	// data area. Flags are allocated second per node, so their area ids are
	// odd (data0=0, flag0=1, data1=2, ...).
	for _, r := range res.Races {
		if int(r.Area)%2 == 0 {
			t.Fatalf("data area %d flagged — the reads-from edge should order data: %v", r.Area, r)
		}
	}
	// Ground truth agrees: all true races live on flag areas.
	truth := verify.GroundTruth(res.Trace, verify.DefaultOptions())
	for _, pr := range truth.Pairs {
		if int(pr.Area)%2 == 0 {
			t.Fatalf("ground truth found a data race on data area %d", pr.Area)
		}
	}
	if len(truth.Pairs) == 0 {
		t.Fatal("flag races must exist in ground truth")
	}
}
