// Package eventctx is a dsmlint fixture: a miniature baton-passing
// kernel seeded with the event-context mutant the eventctx pass exists
// to catch — an event-slot primitive called from setup context — next to
// the annotated handler, the spawned closure, and the reviewed
// line-level escape, all of which must stay silent.
package eventctx

type Kernel struct{ q []func() }

// Defer files fn into the current event's slot.
//
//dsmlint:eventctx
func (k *Kernel) Defer(fn func()) { k.q = append(k.q, fn) }

// Schedule runs fn in a fresh event; callable from anywhere.
//
//dsmlint:eventspawn
func (k *Kernel) Schedule(d int, fn func()) { k.q = append(k.q, fn) }

type node struct {
	k       *Kernel
	multi   bool
	pending int
}

// deliver is a delivery callback: its body runs in event context.
//
//dsmlint:eventhandler
func (n *node) deliver() {
	n.k.Defer(func() { n.pending++ })
	n.relay()
}

// relay is handler-internal machinery, annotated so deliver may call it.
//
//dsmlint:eventhandler
func (n *node) relay() {
	n.k.Defer(func() { n.pending-- })
}

// setup runs before the simulation starts — the seeded mutant calls
// event-slot primitives from setup context.
func (n *node) setup() {
	n.k.Defer(func() { n.pending++ }) // want `event context: Defer may only be called from event context`
	n.deliver()                       // want `event context: deliver executes in event context`

	n.k.Schedule(1, func() {
		// The spawned closure runs in event context: both calls are fine.
		n.k.Defer(func() { n.pending++ })
		n.deliver()
	})

	if n.multi {
		//dsmlint:eventhandler reviewed: the multi guard proves this branch runs from a delivery continuation
		n.k.Defer(func() { n.pending++ })
	}
}
