// Package poolown is a dsmlint fixture: a miniature shard pool and
// detector seeded with the two ownership mutants the poolown pass exists
// to catch — a grab with no matching release or handoff, and a borrowed
// OnAccess report stored without Clone — next to correctly balanced
// twins that must stay silent.
//
//dsmlint:core
package poolown

// --- grab/release pairing ---

type buf struct{ b []byte }

type pools struct{ free []*buf }

func (p *pools) grabBuf() *buf {
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free = p.free[:n-1]
		return v
	}
	return &buf{}
}

func (p *pools) releaseBuf(v *buf) { p.free = append(p.free, v) }

// leakDiscard is the seeded mutant: the grabbed struct is dropped on the
// floor and can never be released.
func leakDiscard(p *pools) {
	p.grabBuf() // want `pool leak: result of grabBuf is discarded`
}

// leakLocal grabs, uses the struct locally, and falls off the end.
func leakLocal(p *pools) int {
	v := p.grabBuf() // want `pool leak: v is grabbed from a pool but never released`
	return len(v.b)
}

func balanced(p *pools) {
	v := p.grabBuf()
	v.b = v.b[:0]
	p.releaseBuf(v)
}

func handoffSend(p *pools, sink chan *buf) {
	v := p.grabBuf()
	sink <- v
}

func handoffReturn(p *pools) *buf {
	v := p.grabBuf()
	return v
}

func handoffClosure(p *pools, run func(func())) {
	v := p.grabBuf()
	run(func() { p.releaseBuf(v) })
}

// dataNIC has Get/Put methods that are DSM data operations, not a pool
// pair — the signatures don't pair up, so poolown must ignore them.
type dataNIC struct{ mem []byte }

func (n *dataNIC) Get() []byte           { return n.mem }
func (n *dataNIC) Put(off int, b []byte) { copy(n.mem[off:], b) }

func dataOps(n *dataNIC) {
	n.Get()
}

// --- borrowed reports ---

type Report struct{ Seq uint64 }

func (r *Report) Clone() *Report { c := *r; return &c }

type detector struct {
	scratch Report
	last    *Report
	log     []*Report
}

func (d *detector) OnAccess(addr int) *Report {
	d.scratch.Seq++
	return &d.scratch
}

// record is the seeded mutant: the borrowed report is published into a
// field and a slice while still aliasing the detector's scratch buffer.
func record(d *detector) {
	r := d.OnAccess(1)
	d.last = r               // want `borrowed report: r aliases detector scratch`
	d.log = append(d.log, r) // want `borrowed report: r aliases detector scratch`
}

func recordAlias(d *detector) {
	r := d.OnAccess(2)
	r2 := r
	d.last = r2 // want `borrowed report: r2 aliases detector scratch`
}

func recordCloned(d *detector) {
	r := d.OnAccess(3)
	d.last = r.Clone()
	d.log = append(d.log, r.Clone())
}

func inspect(d *detector) uint64 {
	r := d.OnAccess(4)
	return r.Seq
}
