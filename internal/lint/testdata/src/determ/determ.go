// Package determ is a dsmlint fixture: a miniature deterministic core
// seeded with the exact mutants the determinism pass exists to catch —
// an unsorted map-range fingerprint fold, wall-clock reads, and a draw
// from the process-global RNG — next to their annotated/rewritten twins
// that must stay silent.
//
//dsmlint:core
package determ

import (
	"math/rand"
	"time"
)

// fingerprint is the seeded mutant: the iteration order of the range
// leaks straight into the non-commutative fold.
func fingerprint(counters map[int]uint64) uint64 {
	var h uint64
	for k, v := range counters { // want `map range: iteration order is randomised`
		h = h*31 + uint64(k) + v
	}
	return h
}

// fingerprintCommutative folds with xor, which commutes; the annotation
// records the review.
func fingerprintCommutative(counters map[int]uint64) uint64 {
	var h uint64
	//dsmlint:ordered xor of key*value commutes
	for k, v := range counters {
		h ^= uint64(k) * v
	}
	return h
}

func stamp() int64 {
	return time.Now().UnixNano() // want `wall clock: time.Now reads host time`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall clock: time.Since reads host time`
}

// hostMetric is the reviewed exception shape: the value feeds a
// host-side metric, never virtual state.
func hostMetric() int64 {
	//dsmlint:wallclock barrier-overhead metric only
	return time.Now().UnixNano()
}

func jitter() int {
	return rand.Intn(8) // want `global RNG: math/rand.Intn draws the process-global source`
}

// seeded draws a private source, which is the sanctioned shape.
func seeded() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(8)
}

// sliceRange must not be confused with a map range.
func sliceRange(xs []uint64) uint64 {
	var h uint64
	for _, v := range xs {
		h = h*31 + v
	}
	return h
}
