// Package lint implements dsmlint, the static half of the repository's
// determinism story: compile-time enforcement of the source invariants
// the runtime differential suites can only catch after a violation
// executes. The framework mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) so the passes read like stock vet checks,
// but it is built entirely on the standard library: packages load through
// `go list -export` build-cache export data (load.go) in standalone mode,
// or through the `go vet -vettool` unitchecker protocol (cmd/dsmlint).
//
// # Passes
//
//   - determinism: flags wall-clock reads (time.Now, time.Since),
//     package-level math/rand draws, and un-annotated `range` over maps
//     inside the deterministic core — the packages whose every executed
//     instruction feeds a bit-reproducible fingerprint (CorePackages:
//     internal/sim, internal/rdma, internal/coherence, internal/network,
//     internal/core, internal/fault, internal/mcheck).
//   - poolown: flags pooled structs grabbed from Get/Put-shaped pool
//     helpers but never released, returned, stored or handed off, and
//     borrowed OnAccess reports published without Clone(). Pool pairs are
//     matched by shape — a grab-prefixed method whose receiver also has a
//     release-prefixed sibling with the same name suffix taking the
//     grabbed type back — which keeps NIC.Get/Put (DSM data operations)
//     out.
//   - eventctx: annotation-driven call-graph discipline for the
//     baton-passing kernel's event-slot primitives. Functions annotated
//     //dsmlint:eventctx (sim.Kernel.Defer, Kernel.LogOrdered) may only
//     be called from event context: a function annotated
//     //dsmlint:eventhandler, or a func literal handed to an eventctx or
//     //dsmlint:eventspawn call (Kernel.Schedule, At, PushKeyed).
//     Calling an eventhandler from anywhere else is flagged too, so the
//     annotated region is closed under the reachable call graph.
//
// # Annotation language
//
// Annotations are comment directives (no space after the //, like
// //go:noinline), attached to the line they trail, the line directly
// above, or — for functions — the declaration's doc comment. Anything
// after the directive name is a free-form reviewed-by reason.
//
//	//dsmlint:ordered       this map range is order-insensitive (commutative
//	                        fold, or results sorted before any fingerprint)
//	//dsmlint:wallclock     reviewed wall-clock read feeding host-side
//	                        metrics only, never virtual state
//	//dsmlint:eventctx      callable only from event context; func args of
//	                        a call run in event context
//	//dsmlint:eventhandler  on a func decl: the body executes in event
//	                        context. On a call line: reviewed assertion
//	                        that this one site runs in event context (the
//	                        escape for context-polymorphic helpers with a
//	                        guarded event-only branch)
//	//dsmlint:eventspawn    callable from anywhere; func args run in event
//	                        context
//	//dsmlint:core          marks a file's package as deterministic core
//	                        regardless of import path (test fixtures)
//
// Cross-package callee annotations are resolved by re-parsing the
// declaring package's source directory (annotations are comments, which
// export data does not carry).
//
// # Drivers
//
// `go run ./cmd/dsmlint ./...` runs standalone; CI drives the same
// binary one package at a time via `go vet -vettool`. Exit status 0 is
// clean, 2 means findings. The golden fixtures under testdata/src each
// seed the mutants their pass exists to catch (fixture_test.go proves
// both directions: every seeded mutant is flagged, every annotated twin
// is silent, and the harness itself fails when the suite is disabled).
package lint
