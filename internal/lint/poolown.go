package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolOwnAnalyzer enforces the two ownership contracts of the pooled hot
// path:
//
//   - grab/release pairing: a value obtained from a Get/Put-shaped pool
//     helper (a method whose name pairs with a release-shaped sibling on the
//     same receiver taking exactly that value back) must be released, stored,
//     returned, or handed to another function before the grabbing function
//     falls off the end. A pooled struct that is grabbed, used locally and
//     then dropped leaks from the pool — the bug class the runtime
//     PoolBalance audit catches only after the fact.
//   - borrowed reports: a *Report returned by an OnAccess-shaped detector
//     method borrows its clock fields from per-state scratch buffers, valid
//     only until the next OnAccess call. Storing one — into a field, slice,
//     map, channel or composite literal — without .Clone() publishes memory
//     the detector is about to overwrite.
var PoolOwnAnalyzer = &Analyzer{
	Name: "poolown",
	Doc: "flag pooled structs that are grabbed but never released or handed off, " +
		"and borrowed detector reports stored without Clone",
	Run: runPoolOwn,
}

var (
	grabPrefixes    = []string{"grab", "acquire", "get"}
	releasePrefixes = []string{"release", "put", "free", "recycle"}
)

func prefixSuffix(name string, prefixes []string) (string, bool) {
	lower := strings.ToLower(name)
	for _, pre := range prefixes {
		if strings.HasPrefix(lower, pre) {
			return name[len(pre):], true
		}
	}
	return "", false
}

func runPoolOwn(p *Pass) error {
	if !p.InCore() {
		return nil
	}
	for _, f := range p.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkPoolPairing(fd)
			p.checkBorrowedReports(fd)
		}
	}
	return nil
}

// --- grab/release pairing ---

// poolGrab reports whether the call is to a pool-grab helper: its name is
// grab-shaped, it returns a value, and the receiver's method set contains a
// release-shaped method with the same name suffix taking exactly one
// parameter of the grabbed type. The suffix match is what keeps ordinary
// protocol methods (Get/Put data operations with unrelated signatures) out.
func (p *Pass) poolGrab(call *ast.CallExpr) (*types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() == 0 {
		return nil, false
	}
	suffix, ok := prefixSuffix(fn.Name(), grabPrefixes)
	if !ok {
		return nil, false
	}
	grabbed := sig.Results().At(0).Type()
	recv := recvNamed(sig.Recv().Type())
	if recv == nil {
		return nil, false
	}
	for i := 0; i < recv.NumMethods(); i++ {
		m := recv.Method(i)
		msuf, ok := prefixSuffix(m.Name(), releasePrefixes)
		if !ok || !strings.EqualFold(msuf, suffix) {
			continue
		}
		msig := m.Type().(*types.Signature)
		if msig.Params().Len() == 1 && types.Identical(msig.Params().At(0).Type(), grabbed) {
			return fn, true
		}
	}
	return nil, false
}

func recvNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// checkPoolPairing flags pool grabs whose result is discarded or bound to a
// variable that is never consumed (released, passed whole to any call,
// stored, returned, sent, or captured by a closure) anywhere in the
// function.
func (p *Pass) checkPoolPairing(fd *ast.FuncDecl) {
	// grabVars maps the local object bound to a grab result to the grab call.
	grabVars := map[types.Object]*ast.CallExpr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn, ok := p.poolGrab(call); ok {
					p.Reportf(call.Pos(), "pool leak: result of %s is discarded; the pooled struct can never be released", fn.Name())
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, ok := p.poolGrab(call); !ok {
				return true
			}
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := p.objOf(id); obj != nil {
					grabVars[obj] = call
				}
			}
		}
		return true
	})
	if len(grabVars) == 0 {
		return
	}
	consumed := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if obj := p.wholeIdent(arg); obj != nil {
					consumed[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if obj := p.wholeIdent(r); obj != nil {
					consumed[obj] = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if obj := p.wholeIdent(r); obj != nil {
					// Any re-assignment (alias, store into a field, slice or
					// global) transfers ownership as far as this local check
					// is concerned.
					if _, isGrabDef := r.(*ast.CallExpr); !isGrabDef {
						consumed[obj] = true
					}
				}
			}
		case *ast.SendStmt:
			if obj := p.wholeIdent(n.Value); obj != nil {
				consumed[obj] = true
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if obj := p.wholeIdent(e); obj != nil {
					consumed[obj] = true
				}
			}
		case *ast.FuncLit:
			// Anything a closure captures has unbounded lifetime; the
			// closure takes over the release obligation.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := p.objOf(id); obj != nil {
						consumed[obj] = true
					}
				}
				return true
			})
			return false
		}
		return true
	})
	for obj, call := range grabVars { //dsmlint:ordered diagnostics are position-sorted by the runner
		if !consumed[obj] {
			p.Reportf(call.Pos(), "pool leak: %s is grabbed from a pool but never released, returned, stored or handed off on any path", obj.Name())
		}
	}
}

// wholeIdent returns the object of an expression that denotes a tracked
// variable as a whole: `v` or `*v` (not `v.field`).
func (p *Pass) wholeIdent(e ast.Expr) types.Object {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.objOf(id)
}

func (p *Pass) objOf(id *ast.Ident) types.Object {
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// --- borrowed reports ---

// onAccessCall reports whether the call is OnAccess-shaped: a method named
// OnAccess whose first result is a pointer to a struct type named Report.
// Matching by shape (rather than by the concrete core.AreaState type) keeps
// the check applicable to every detector implementation and to fixtures.
func (p *Pass) onAccessCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "OnAccess" {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || sig.Results().Len() == 0 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Report" {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// checkBorrowedReports flags stores of borrowed OnAccess reports that are
// not mediated by Clone.
func (p *Pass) checkBorrowedReports(fd *ast.FuncDecl) {
	// borrowed collects the objects bound to OnAccess's first result, plus
	// plain aliases of those (r2 := r).
	borrowed := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		if call, ok := asg.Rhs[0].(*ast.CallExpr); ok && p.onAccessCall(call) && len(asg.Lhs) >= 1 {
			if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := p.objOf(id); obj != nil {
					borrowed[obj] = true
				}
			}
		}
		return true
	})
	// One alias sweep (aliases of aliases are rare enough to ignore; the
	// fixpoint would cost a loop for no observed benefit in this tree).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != len(asg.Lhs) {
			return true
		}
		for i, r := range asg.Rhs {
			if obj := p.wholeIdent(r); obj != nil && borrowed[obj] {
				if id, ok := asg.Lhs[i].(*ast.Ident); ok {
					if lobj := p.objOf(id); lobj != nil && !isHeapObj(lobj) {
						borrowed[lobj] = true
					}
				}
			}
		}
		return true
	})
	if len(borrowed) == 0 {
		return
	}
	flag := func(e ast.Expr, how string) {
		if obj := p.wholeIdent(e); obj != nil && borrowed[obj] {
			p.Reportf(e.Pos(), "borrowed report: %s aliases detector scratch buffers valid only until the next OnAccess; "+
				"%s it only via Clone()", obj.Name(), how)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, l := range n.Lhs {
				switch l := l.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					flag(n.Rhs[i], "store")
				case *ast.Ident:
					if obj := p.objOf(l); obj != nil && isHeapObj(obj) {
						flag(n.Rhs[i], "store")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				for _, arg := range n.Args[min(1, len(n.Args)):] {
					flag(arg, "append")
				}
			}
		case *ast.SendStmt:
			flag(n.Value, "send")
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				flag(e, "store")
			}
		}
		return true
	})
}

// isHeapObj reports whether the object is a package-level variable (a store
// to it publishes the value).
func isHeapObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}
