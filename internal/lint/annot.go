package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// The annotation language. Annotations are comment directives (no space
// after the //, like //go:noinline) attached to the line they precede, the
// line they trail, or — for func declarations — the doc comment.
const (
	// DirOrdered marks a map range whose iteration order is proven not to
	// reach any fingerprint (each iteration's effect is commutative, or the
	// results are sorted before use).
	DirOrdered = "ordered"
	// DirEventCtx marks a function that may only be called from event
	// context; func-typed arguments of a call to it run in event context.
	DirEventCtx = "eventctx"
	// DirEventHandler declares that the annotated function executes in event
	// context (delivery callbacks, continuation stages, barrier hooks).
	DirEventHandler = "eventhandler"
	// DirEventSpawn marks a function callable from anywhere that runs its
	// func-typed arguments in event context (Schedule, At, PushKeyed).
	DirEventSpawn = "eventspawn"
	// DirWallClock marks a reviewed wall-clock read that feeds host-side
	// metrics only, never virtual state or a fingerprint.
	DirWallClock = "wallclock"
	// DirCore marks a file as part of the deterministic core regardless of
	// its import path (used by test fixtures).
	DirCore = "core"
)

const dirPrefix = "//dsmlint:"

// directives indexes every //dsmlint: comment of a package by file and line.
type directives struct {
	// byLine maps filename -> line -> directive names on that line.
	byLine     map[string]map[int][]string
	coreMarked bool
}

// parseDirective extracts the directive name from one comment, or "".
// Anything after the first space is a free-form reason and is ignored.
func parseDirective(text string) string {
	if !strings.HasPrefix(text, dirPrefix) {
		return ""
	}
	name := strings.TrimPrefix(text, dirPrefix)
	if i := strings.IndexAny(name, " \t"); i >= 0 {
		name = name[:i]
	}
	return name
}

// directives lazily builds the package's directive index.
func (p *Pass) directives() *directives {
	if p.dirs != nil {
		return p.dirs
	}
	d := &directives{byLine: map[string]map[int][]string{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := parseDirective(c.Text)
				if name == "" {
					continue
				}
				if name == DirCore {
					d.coreMarked = true
				}
				pos := p.Fset.Position(c.Pos())
				lines := d.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], name)
			}
		}
	}
	p.dirs = d
	return d
}

// Annotated reports whether directive name is attached to the statement at
// pos: on the same line (trailing comment) or on the line directly above.
func (p *Pass) Annotated(pos token.Pos, name string) bool {
	d := p.directives()
	pp := p.Fset.Position(pos)
	lines := d.byLine[pp.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pp.Line, pp.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// funcAnnotated reports whether a func declaration carries the directive in
// its doc comment or on the line above its func keyword.
func funcAnnotated(fd *ast.FuncDecl, name string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if parseDirective(c.Text) == name {
				return true
			}
		}
	}
	return false
}

// FuncAnnotated reports whether the declaration carries the directive,
// checking the doc comment and the immediately preceding line (the doc
// comment covers the common case; the line check covers annotations
// separated from the doc block by a blank comment line).
func (p *Pass) FuncAnnotated(fd *ast.FuncDecl, name string) bool {
	return funcAnnotated(fd, name) || p.Annotated(fd.Pos(), name)
}

// funcKey names a function for cross-package annotation lookup:
// "Recv.Name" for methods (pointer receivers stripped), "Name" otherwise.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// harvestAnnotations parses (syntax-only) every non-test .go file of dir and
// returns the set of "directive funcKey" entries found, e.g.
// "eventctx Kernel.Defer". Results are cached per import path by the caller.
func harvestAnnotations(fset *token.FileSet, dir string) map[string]bool {
	out := map[string]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range [3]string{DirEventCtx, DirEventHandler, DirEventSpawn} {
				if funcAnnotated(fd, d) {
					out[d+" "+funcKey(fd)] = true
				}
			}
		}
	}
	return out
}

// annotationsFor returns the harvested annotation set of pkgPath, resolving
// the directory through SrcDir. Same-package lookups use the loaded ASTs
// instead (see eventctx.go), so this is only consulted for imports.
func (p *Pass) annotationsFor(pkgPath string) map[string]bool {
	if got, ok := p.harvest[pkgPath]; ok {
		return got
	}
	var out map[string]bool
	if dir := p.srcDirFor(pkgPath); dir != "" {
		out = harvestAnnotations(token.NewFileSet(), dir)
	} else {
		out = map[string]bool{}
	}
	p.harvest[pkgPath] = out
	return out
}

func (p *Pass) srcDirFor(pkgPath string) string {
	if p.SrcDir == nil {
		return ""
	}
	return p.SrcDir(pkgPath)
}
