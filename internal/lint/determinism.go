package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer flags the three source shapes that smuggle host
// nondeterminism into the deterministic core, where every executed
// instruction feeds a bit-reproducible fingerprint:
//
//   - wall-clock reads (time.Now, time.Since): virtual time is sim.Time;
//     host time differs between runs. //dsmlint:wallclock marks the reviewed
//     exceptions that feed host-side metrics only (e.g. barrier-overhead
//     counters), never virtual state.
//   - package-level math/rand draws: the process-global source is shared
//     with everything else in the binary and seeded per-process, so a draw's
//     value depends on unrelated code. All randomness must come from the
//     kernel's seeded *rand.Rand (sim.Kernel.Rand). Constructing private
//     sources (rand.New, rand.NewSource, rand.NewPCG, rand.NewChaCha8) is
//     allowed; drawing the global one is not.
//   - range over a map: iteration order is randomised by the runtime.
//     //dsmlint:ordered marks ranges proven order-insensitive (commutative
//     fold, or results sorted before any fingerprint sees them).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, global math/rand draws, and unordered map ranges " +
		"inside the deterministic core",
	Run: runDeterminism,
}

// randConstructors are the package-level math/rand functions that build
// private sources rather than drawing the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) error {
	if !p.InCore() {
		return nil
	}
	for _, f := range p.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				p.checkDeterminismCall(n)
			case *ast.RangeStmt:
				p.checkMapRange(n)
			}
			return true
		})
	}
	return nil
}

// pkgFunc resolves a call to a package-level function and returns its
// package path and name ("" if the callee is a method, builtin, or local).
func (p *Pass) pkgFunc(call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "" // method, not a package-level function
	}
	return fn.Pkg().Path(), fn.Name()
}

func (p *Pass) checkDeterminismCall(call *ast.CallExpr) {
	pkgPath, name := p.pkgFunc(call)
	switch pkgPath {
	case "time":
		if name == "Now" || name == "Since" {
			if p.Annotated(call.Pos(), DirWallClock) {
				return
			}
			p.Reportf(call.Pos(), "wall clock: time.%s reads host time inside the deterministic core; "+
				"use virtual sim.Time, or annotate //dsmlint:wallclock if this feeds host-side metrics only", name)
		}
	case "math/rand", "math/rand/v2":
		if randConstructors[name] {
			return
		}
		p.Reportf(call.Pos(), "global RNG: %s.%s draws the process-global source inside the deterministic core; "+
			"draw the kernel's seeded RNG (sim.Kernel.Rand) instead", pkgPath, name)
	}
}

func (p *Pass) checkMapRange(r *ast.RangeStmt) {
	tv, ok := p.Info.Types[r.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if p.Annotated(r.Pos(), DirOrdered) {
		return
	}
	p.Reportf(r.Pos(), "map range: iteration order is randomised and must not reach a fingerprint; "+
		"sort the keys first, or annotate //dsmlint:ordered if the fold is order-insensitive")
}
