// See doc.go for the package documentation: the pass catalogue, the
// annotation language, and the two driver modes.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the pass in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by `dsmlint help`.
	Doc string
	// Run performs the check, calling pass.Reportf for every finding.
	Run func(*Pass) error
}

// All returns the full dsmlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DeterminismAnalyzer, PoolOwnAnalyzer, EventCtxAnalyzer}
}

// A Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the canonical vet shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// SrcDir maps a module-internal import path to its source directory, or
	// returns "" when unknown. The eventctx pass uses it to harvest
	// annotations from the packages that declare restricted callees.
	SrcDir func(pkgPath string) string

	report func(Diagnostic)
	dirs   *directives
	// harvest caches cross-package annotation sets, keyed by import path.
	// Shared across the analyzers run on one package (see RunAnalyzers).
	harvest map[string]map[string]bool
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// SourceFiles yields the files a pass should analyze: everything except
// _test.go files, which may freely use wall clocks, global RNG draws and
// unordered ranges (their effects never reach a fingerprint).
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// CorePackages lists the deterministic core: the packages whose every
// executed instruction feeds a fingerprint and therefore must be
// bit-reproducible. Matched by path suffix so the list survives module
// renames (and matches fixture trees).
var CorePackages = []string{
	"internal/sim",
	"internal/rdma",
	"internal/coherence",
	"internal/network",
	"internal/core",
	"internal/fault",
	"internal/mcheck",
}

// InCore reports whether the pass's package is part of the deterministic
// core, either by import path or by an explicit //dsmlint:core file marker
// (how test fixtures opt in).
func (p *Pass) InCore() bool {
	path := p.Pkg.Path()
	for _, c := range CorePackages {
		if path == c || strings.HasSuffix(path, "/"+c) {
			return true
		}
	}
	return p.directives().coreMarked
}

// RunAnalyzers runs the given analyzers over one loaded package and returns
// the findings sorted by position. The annotation caches are shared across
// the analyzers.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, srcDir func(string) string) ([]Diagnostic, error) {
	var diags []Diagnostic
	base := &Pass{
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		Info:    info,
		SrcDir:  srcDir,
		harvest: map[string]map[string]bool{},
	}
	base.report = func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		p := *base
		p.Analyzer = a
		if err := a.Run(&p); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		base.dirs = p.dirs // keep the lazily built directive index
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
