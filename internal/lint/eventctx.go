package lint

import (
	"go/ast"
	"go/types"
)

// EventCtxAnalyzer enforces the event-context calling discipline, driven
// entirely by annotations:
//
//   - //dsmlint:eventctx on a function means it may only be called from
//     event context (it files work into the kernel's current event slot —
//     sim.Kernel.Defer and Kernel.LogOrdered are the canonical cases).
//     Func-typed arguments of a call to it run in event context themselves.
//   - //dsmlint:eventhandler declares that a function's body executes in
//     event context: delivery callbacks, continuation stages, barrier
//     hooks. Calling one from anywhere else is flagged too, which is what
//     makes the annotation set closed under the reachable call graph — every
//     edge into the event-context region is either proven (a func literal
//     handed to the scheduling machinery) or explicitly annotated and
//     reviewable.
//   - //dsmlint:eventspawn marks functions callable from anywhere whose
//     func-typed arguments nevertheless run in event context
//     (Kernel.Schedule, Kernel.At, Kernel.PushKeyed).
//
// The pass resolves annotations across package boundaries by re-parsing the
// callee's declaring package (annotations are source directives, invisible
// in export data).
var EventCtxAnalyzer = &Analyzer{
	Name: "eventctx",
	Doc: "restrict calls to //dsmlint:eventctx and //dsmlint:eventhandler functions " +
		"to event context (annotated handlers and func literals handed to the scheduler)",
	Run: runEventCtx,
}

func runEventCtx(p *Pass) error {
	local := p.localAnnotations()
	for _, f := range p.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inEvent := p.FuncAnnotated(fd, DirEventCtx) || p.FuncAnnotated(fd, DirEventHandler)
			p.walkEventCtx(fd.Body, inEvent, local)
		}
	}
	return nil
}

// localAnnotations indexes this package's own event annotations by funcKey,
// with values "eventctx"/"eventhandler"/"eventspawn" prefixed keys, matching
// the harvestAnnotations format.
func (p *Pass) localAnnotations() map[string]bool {
	out := map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range [3]string{DirEventCtx, DirEventHandler, DirEventSpawn} {
				if p.FuncAnnotated(fd, d) {
					out[d+" "+funcKey(fd)] = true
				}
			}
		}
	}
	return out
}

// calleeAnnotation returns which event annotation (if any) the call's callee
// carries, resolving cross-package callees through the source harvest.
func (p *Pass) calleeAnnotation(call *ast.CallExpr, local map[string]bool) (dir string, fn *types.Func) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	default:
		return "", nil
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil {
		return "", nil
	}
	key := typeFuncKey(f)
	set := local
	if f.Pkg() != p.Pkg {
		set = p.annotationsFor(f.Pkg().Path())
	}
	for _, d := range [3]string{DirEventCtx, DirEventHandler, DirEventSpawn} {
		if set[d+" "+key] {
			return d, f
		}
	}
	return "", f
}

// typeFuncKey mirrors funcKey for a resolved *types.Func.
func typeFuncKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return f.Name()
	}
	if n := recvNamed(sig.Recv().Type()); n != nil {
		return n.Obj().Name() + "." + f.Name()
	}
	return f.Name()
}

// walkEventCtx traverses one function body carrying the event-context flag.
// Func literals handed to eventctx/eventspawn calls are walked as event
// context; all other literals inherit the lexical context.
func (p *Pass) walkEventCtx(body ast.Node, inEvent bool, local map[string]bool) {
	visited := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == body {
				return true
			}
			if !visited[n] {
				p.walkEventCtx(n, inEvent, local)
			}
			return false
		case *ast.CallExpr:
			dir, fn := p.calleeAnnotation(n, local)
			// A call site annotated //dsmlint:eventhandler is a reviewed
			// assertion that this statement executes in event context even
			// though its enclosing function is not annotated (the escape for
			// context-polymorphic helpers with a guarded event-only branch).
			siteOK := inEvent || ((dir == DirEventCtx || dir == DirEventHandler) &&
				p.Annotated(n.Pos(), DirEventHandler))
			switch dir {
			case DirEventCtx:
				if !siteOK {
					p.Reportf(n.Pos(), "event context: %s may only be called from event context "+
						"(a delivery/event callback); annotate the caller //dsmlint:eventhandler if it is one", fn.Name())
				}
			case DirEventHandler:
				if !siteOK {
					p.Reportf(n.Pos(), "event context: %s executes in event context; "+
						"calling it from outside moves event-slot work onto a foreign footing — "+
						"annotate the caller //dsmlint:eventhandler if it runs there too", fn.Name())
				}
			}
			if dir == DirEventCtx || dir == DirEventSpawn {
				for _, arg := range n.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						visited[lit] = true
						p.walkEventCtx(lit, true, local)
					}
				}
			}
		}
		return true
	})
}
