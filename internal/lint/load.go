package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Err records a load or type-check failure; analysis skips the package
	// and the driver surfaces the error.
	Err error
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Incomplete bool
	Error      *struct{ Err string }
}

// Load runs `go list -export -deps -json` on the patterns (relative to dir)
// and type-checks every non-standard package of the surrounding module from
// source, resolving imports through build-cache export data. It returns the
// packages in go list order plus a SrcDir resolver for module-internal
// import paths.
func Load(dir string, patterns ...string) ([]*Package, func(string) string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,ImportMap,Standard,Module,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	dirs := map[string]string{}
	var targets []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if e.Dir != "" {
			dirs[e.ImportPath] = e.Dir
		}
		if !e.Standard {
			targets = append(targets, e)
		}
	}

	srcDir := func(path string) string { return dirs[path] }
	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var pkgs []*Package
	for _, t := range targets {
		p := &Package{Path: t.ImportPath, Dir: t.Dir, Fset: fset}
		if t.Error != nil {
			p.Err = fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
			pkgs = append(pkgs, p)
			continue
		}
		if len(t.CgoFiles) > 0 {
			// cgo packages can't be type-checked from raw source; skip (none
			// exist in this module, and the deterministic core forbids them).
			continue
		}
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				p.Err = err
				break
			}
			p.Files = append(p.Files, f)
		}
		if p.Err == nil {
			p.Pkg, p.Info, p.Err = Check(t.ImportPath, fset, p.Files, &mapImporter{gc, t.ImportMap})
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, srcDir, nil
}

// Check type-checks one package's parsed files with the info tables the
// passes need. Shared by the standalone loader and the vet-mode driver.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	return pkg, info, err
}

// MapImporter wraps an importer with a source-import -> package-path map
// (vendoring, test variants), the resolution step cmd/go performs before
// consulting export data. A nil or empty map is a plain pass-through.
func MapImporter(imp types.Importer, m map[string]string) types.Importer {
	return &mapImporter{imp, m}
}

// mapImporter applies a source-import -> package-path map (vendoring, test
// variants) before delegating to the export-data importer.
type mapImporter struct {
	imp types.Importer
	m   map[string]string
}

// Import resolves one import path.
func (mi *mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.imp.Import(path)
}

// ModuleSrcDir returns a SrcDir resolver rooted at the module containing
// dir: it maps "modpath/rest" to "modroot/rest". Used by the vet-mode
// driver, whose per-package config carries no dependency source dirs.
func ModuleSrcDir(dir string) func(string) string {
	root := dir
	var modPath string
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					modPath = strings.TrimSpace(rest)
					break
				}
			}
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return func(string) string { return "" }
		}
		root = parent
	}
	return func(path string) string {
		if path == modPath {
			return root
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest))
		}
		return ""
	}
}
