package lint_test

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"dsmrace/internal/lint"
)

// wantRe matches the fixture expectation syntax: a trailing comment
// `// want `+"`regexp`"+“ on the line the diagnostic must land on.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	re      *regexp.Regexp
	matched bool
}

// checkFixture loads the fixture package rooted at dir through the same
// loader the dsmlint command uses, runs the analyzers, and reconciles the
// diagnostics against the fixture's `// want` comments: every diagnostic
// must be expected, every expectation must be met. It returns one mismatch
// string per violation of either direction.
func checkFixture(dir string, analyzers []*lint.Analyzer) ([]string, error) {
	wants := map[string][]*want{} // "file:line" -> expectations
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				re, err := regexp.Compile(m[1])
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("%s:%d: bad want pattern: %v", e.Name(), line, err)
				}
				key := fmt.Sprintf("%s:%d", e.Name(), line)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}

	pkgs, srcDir, err := lint.Load(dir, ".")
	if err != nil {
		return nil, err
	}
	var mismatches []string
	for _, p := range pkgs {
		if p.Err != nil {
			return nil, p.Err
		}
		diags, err := lint.RunAnalyzers(analyzers, p.Fset, p.Files, p.Pkg, p.Info, srcDir)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
			found := false
			for _, w := range wants[key] {
				if !w.matched && w.re.MatchString(d.Message) {
					w.matched, found = true, true
					break
				}
			}
			if !found {
				mismatches = append(mismatches, fmt.Sprintf("%s: unexpected diagnostic: %s (%s)", key, d.Message, d.Analyzer))
			}
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				mismatches = append(mismatches, fmt.Sprintf("%s: no diagnostic matching %q", k, w.re))
			}
		}
	}
	return mismatches, nil
}

// fixture runs the full suite over one golden fixture. Running every
// analyzer (not just the fixture's subject) also proves the passes don't
// fire on each other's material.
func fixture(t *testing.T, name string) {
	t.Helper()
	mismatches, err := checkFixture(filepath.Join("testdata", "src", name), lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

func TestDeterminismFixture(t *testing.T) { fixture(t, "determ") }
func TestPoolOwnFixture(t *testing.T)     { fixture(t, "poolown") }
func TestEventCtxFixture(t *testing.T)    { fixture(t, "eventctx") }

// TestHarnessNotVacuous proves the want machinery is load-bearing: with
// every analyzer disabled, each fixture's seeded mutants must surface as
// missing diagnostics. A harness that passes here would also wave through
// a pass that silently stopped firing.
func TestHarnessNotVacuous(t *testing.T) {
	for _, name := range []string{"determ", "poolown", "eventctx"} {
		mismatches, err := checkFixture(filepath.Join("testdata", "src", name), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(mismatches) == 0 {
			t.Errorf("%s: harness reported success with all analyzers disabled", name)
		}
	}
}
