package rdma

import "dsmrace/internal/vclock"

// lockState is the NIC-side lock for one memory area (§III-A: "since NICs
// are in charge with memory management in the public memory space, they can
// provide locks on memory areas"). Waiters are queued FIFO as continuations;
// the lock is re-entrant per owner so a process holding a user-level lock
// on an area can still operate on it.
type lockState struct {
	held    bool
	owner   int
	depth   int
	waiters []lockWaiter
	// relClock is the clock carried by the most recent user-level unlock;
	// the next user-level grant returns it, creating the release→acquire
	// happens-before edge. Masked, so a lock chain confined to a few
	// processes keeps its clocks sparse.
	relClock vclock.Masked
}

type lockWaiter struct {
	owner int
	fn    func()
}

// acquire runs fn once the lock is held by owner. When the lock is free or
// already held by the same owner, fn runs immediately (still in the current
// event); otherwise it is queued.
func (l *lockState) acquire(owner int, fn func()) {
	if l.held && l.owner == owner {
		l.depth++
		fn()
		return
	}
	if !l.held {
		l.held = true
		l.owner = owner
		l.depth = 1
		fn()
		return
	}
	l.waiters = append(l.waiters, lockWaiter{owner: owner, fn: fn})
}

// release drops one level of the lock; when fully released the next waiter
// (if any) acquires and its continuation runs.
func (l *lockState) release() {
	if !l.held {
		panic("rdma: release of unheld lock")
	}
	l.depth--
	if l.depth > 0 {
		return
	}
	if len(l.waiters) == 0 {
		l.held = false
		return
	}
	w := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.owner = w.owner
	l.depth = 1
	w.fn()
}
