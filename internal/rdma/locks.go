package rdma

import "dsmrace/internal/vclock"

// lockState is the NIC-side lock for one memory area (§III-A: "since NICs
// are in charge with memory management in the public memory space, they can
// provide locks on memory areas"). Waiters are queued FIFO as continuations;
// the lock is re-entrant per owner so a process holding a user-level lock
// on an area can still operate on it.
type lockState struct {
	held    bool
	owner   int
	depth   int
	waiters []lockWaiter
	// relClock is the clock carried by the most recent user-level unlock;
	// the next user-level grant returns it, creating the release→acquire
	// happens-before edge. Masked, so a lock chain confined to a few
	// processes keeps its clocks sparse.
	relClock vclock.Masked
	// relObs accumulates, under causal coherence, the observation clocks of
	// every user-level releaser; each grant ships a copy, so an acquirer
	// inherits the causal dependencies of everything written before the
	// release (lock-transported causality — what makes race-free locked
	// programs sequentially consistent on causal memory).
	relObs vclock.VC
	// lenient absorbs a release of an unheld lock instead of panicking —
	// set under faults, where a crash sweep may have force-expired the
	// tenure a late continuation still believes it holds.
	lenient bool
	// msgHeld marks the outermost level as a user-level message hold (a
	// granted lock.req, released only by a matching unlock message). The
	// crash sweep may force-release such a hold directly; an op-tenure hold
	// (a continuation mid-flight) must instead expire via ownerDead.
	msgHeld bool
	// ownerDead expires the user level of a crashed holder's nested tenure:
	// when the in-flight op level releases down to depth 1, release drops
	// the remaining level too, handing the lock to the next waiter.
	ownerDead bool
	// lastGrant is the request id of the most recent user-level grant,
	// letting a retransmitted lock.req (original grant lost) be re-replied
	// without a second acquisition.
	lastGrant uint64
}

// lockWaiter queues one deferred acquisition. payload carries the pooled
// structs (the home-side req, and for data ops the homeOp) the continuation
// would release, so a crash sweep purging the waiter can complete their pool
// lifecycle without running fn.
type lockWaiter struct {
	owner   int
	fn      func()
	payload any
}

// acquire runs fn once the lock is held by owner. When the lock is free or
// already held by the same owner, fn runs immediately (still in the current
// event); otherwise it is queued.
func (l *lockState) acquire(owner int, fn func(), payload any) {
	if l.held && l.owner == owner {
		l.depth++
		fn()
		return
	}
	if !l.held {
		l.held = true
		l.owner = owner
		l.depth = 1
		fn()
		return
	}
	l.waiters = append(l.waiters, lockWaiter{owner: owner, fn: fn, payload: payload})
}

// release drops one level of the lock; when fully released the next waiter
// (if any) acquires and its continuation runs.
func (l *lockState) release() {
	if !l.held {
		if l.lenient {
			return
		}
		panic("rdma: release of unheld lock")
	}
	l.depth--
	if l.depth > 0 {
		if l.ownerDead && l.depth == 1 {
			// The holder crashed mid-tenure; its user level can never be
			// released by a message. Expire it now that the op level ended.
			l.depth = 0
		} else {
			return
		}
	}
	l.msgHeld = false
	l.ownerDead = false
	if len(l.waiters) == 0 {
		l.held = false
		return
	}
	w := l.waiters[0]
	l.waiters = l.waiters[1:]
	l.owner = w.owner
	l.depth = 1
	w.fn()
}
