package rdma

import (
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// Put writes data into area at word offset off (one-sided remote write,
// Fig. 2 left... right arrow). acc carries the initiator's identity and
// ticked clock. It returns the clock the initiator should absorb (nil when
// none) and blocks p until completion.
func (n *NIC) Put(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.Protocol == ProtocolLiteral && n.sys.DetectionOn() {
		return n.putLiteral(p, area, off, data, acc)
	}
	size := network.HeaderBytes + len(data)*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindPutReq, size,
		&req{area: area, off: off, data: data, acc: acc, hasAcc: hasAcc})
	clock, err := rs.clock, asError(rs.err)
	n.sys.releaseResp(rs)
	if err != nil {
		n.sys.ReleaseClock(clock)
		return vclock.Masked{}, err
	}
	// Under write-invalidate the writer's own copy (every other copy is
	// gone by now) absorbs the write, stamped with the merged clock the
	// ack carried — the area's new write clock.
	n.sys.coh.PatchCopy(int(n.id), area, off, data, clock)
	if n.sys.cfg.AbsorbOnPutAck {
		return clock, nil
	}
	n.sys.ReleaseClock(clock)
	return vclock.Masked{}, nil
}

// Get reads count words from area at word offset off (one-sided remote
// read). It returns the data and the clock to absorb (the area's write
// clock when AbsorbOnGetReply is set). Under write-invalidate coherence the
// read is served from a valid local copy when one exists and otherwise
// fetches (and caches) the whole area.
func (n *NIC) Get(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.Coherence.CachesRemoteReads() {
		return n.getInvalidate(p, area, off, count, acc)
	}
	if n.sys.cfg.Protocol == ProtocolLiteral && n.sys.DetectionOn() {
		return n.getLiteral(p, area, off, count, acc)
	}
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindGetReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc})
	data, clock, err := rs.data, rs.clock, asError(rs.err)
	n.sys.releaseResp(rs)
	if err != nil {
		n.sys.ReleaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	if n.sys.cfg.AbsorbOnGetReply {
		return data, clock, nil
	}
	n.sys.ReleaseClock(clock)
	return data, vclock.Masked{}, nil
}

// FetchAdd atomically adds delta to the word at (area, off) and returns the
// previous value. The operation counts as a write for detection.
func (n *NIC) FetchAdd(p *sim.Proc, area memory.Area, off int, delta memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	return n.atomic(p, area, off, AtomicFetchAdd, delta, 0, acc)
}

// CompareAndSwap atomically replaces the word at (area, off) with repl when
// it equals expect; it returns the previous value (swap happened iff
// old == expect).
func (n *NIC) CompareAndSwap(p *sim.Proc, area memory.Area, off int, expect, repl memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	return n.atomic(p, area, off, AtomicCAS, expect, repl, acc)
}

func (n *NIC) atomic(p *sim.Proc, area memory.Area, off int, op AtomicOp, a1, a2 memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	acc.Area = area.ID
	size := network.HeaderBytes + 2*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindAtomicReq, size,
		&req{area: area, off: off, op: op, arg1: a1, arg2: a2, acc: acc, hasAcc: hasAcc})
	clock, err := rs.clock, asError(rs.err)
	var old memory.Word
	if len(rs.data) > 0 {
		old = rs.data[0]
	}
	n.sys.releaseResp(rs)
	if err != nil {
		n.sys.ReleaseClock(clock)
		return 0, vclock.Masked{}, err
	}
	if n.sys.cfg.Coherence.CachesRemoteReads() {
		// Fold the atomic's outcome into the initiator's own copy (a failed
		// CAS rewrites the old value — the write clock still advances,
		// because the home counted the atomic as a write either way).
		n.sys.coh.PatchCopy(int(n.id), area, off, []memory.Word{op.Apply(old, a1, a2)}, clock)
	}
	var absorb vclock.Masked
	if n.sys.cfg.AbsorbOnPutAck {
		absorb = clock
	} else {
		n.sys.ReleaseClock(clock)
	}
	return old, absorb, nil
}

// getInvalidate is the write-invalidate read path: home-local reads and
// cache hits are served without messages (modelling a plain load from
// local memory — which also means the online detector at the home never
// sees a cache hit, the coverage trade-off E-T12 measures); a miss fetches
// and caches the whole area with the write clock piggybacked on the reply.
func (n *NIC) getInvalidate(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	self := int(n.id)
	if area.Home == self && n.sys.cfg.Coherence.ServesHomeReadsLocally() {
		// The home copy is by definition valid, and the detection state is
		// resident: the access is checked without any message.
		if err := checkAreaRange(area, off, count); err != nil {
			return nil, vclock.Masked{}, err
		}
		data := make([]memory.Word, count)
		if err := n.sys.space.Node(self).ReadPublic(area.Off+off, data); err != nil {
			return nil, vclock.Masked{}, err
		}
		p.Sleep(n.sys.occupancy(count))
		now := p.Now()
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, count, now)
		}
		n.sys.countHomeRead()
		var absorb vclock.Masked
		if n.sys.DetectionOn() {
			acc.Time = now
			absorb = n.sys.checkAccess(acc, area, off, count, now)
		}
		if n.sys.cfg.AbsorbOnGetReply {
			return data, absorb, nil
		}
		n.sys.ReleaseClock(absorb)
		return data, vclock.Masked{}, nil
	}
	if data, w, ok := n.sys.coh.CachedRead(self, area, off, count); ok {
		p.Sleep(n.sys.occupancy(count))
		now := p.Now()
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, count, now)
		}
		var absorb vclock.Masked
		if !w.IsNil() && n.sys.cfg.AbsorbOnGetReply {
			// The copy's write clock is exactly the area's current write
			// clock — a valid copy means no write has committed since the
			// fetch — so the hit gets the same reads-from edge a remote
			// read would.
			absorb = w.CopyInto(n.sys.grabClock())
		}
		return data, absorb, nil
	}
	// Miss: fetch the whole area (the coherence unit) from the home.
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindFetchReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc})
	data, clock, err := rs.data, rs.clock, asError(rs.err)
	n.sys.releaseResp(rs)
	if err != nil {
		n.sys.ReleaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	n.sys.coh.InstallCopy(self, area, data, clock)
	out := make([]memory.Word, count)
	copy(out, data[off:off+count])
	if n.sys.cfg.AbsorbOnGetReply {
		return out, clock, nil
	}
	n.sys.ReleaseClock(clock)
	return out, vclock.Masked{}, nil
}

// LockArea acquires the NIC lock of the area for proc (a user-level lock;
// the same lock the NIC uses internally, so user critical sections exclude
// remote operations on the area). The returned clock, when non-nil, is the
// previous releaser's clock: absorbing it gives the acquirer the
// release→acquire happens-before edge.
func (n *NIC) LockArea(p *sim.Proc, area memory.Area, proc int) vclock.Masked {
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindLockReq, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}, user: true})
	clock := rs.clock
	n.sys.releaseResp(rs)
	return clock
}

// UnlockArea releases the area lock, carrying the releaser's clock rel for
// the next acquirer (one-way; FIFO links guarantee it cannot overtake the
// holder's earlier traffic to the home).
func (n *NIC) UnlockArea(area memory.Area, proc int, rel vclock.Masked) {
	size := network.HeaderBytes
	if !rel.IsNil() {
		size += rel.V.WireSize()
	}
	n.send(network.NodeID(area.Home), network.KindUnlock, size,
		&req{area: area, acc: core.Access{Proc: proc, Clock: rel.V, ClockNZ: rel.M}, user: true})
}

// lockInternal acquires the area lock for the literal protocol's own use:
// not observed, no clock transport (the mechanism lock must not create
// user-visible happens-before, or no race could ever be detected).
func (n *NIC) lockInternal(p *sim.Proc, area memory.Area, proc int) {
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindLockReq, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}})
	n.sys.releaseResp(rs)
}

// unlockInternal releases a lockInternal acquisition.
func (n *NIC) unlockInternal(area memory.Area, proc int) {
	n.send(network.NodeID(area.Home), network.KindUnlock, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}})
}

// ---- Literal protocol: Algorithms 1 and 2, message by message ----

// readClocks performs get_clock / get_clock_W: one request, one response
// carrying both stored clocks.
func (n *NIC) readClocks(p *sim.Proc, area memory.Area) (v, w vclock.VC) {
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindClockRead, network.HeaderBytes,
		&req{area: area})
	v, w = rs.v, rs.w
	n.sys.releaseResp(rs)
	return v, w
}

// writeClockApply performs put_clock in "apply" form: the home folds the
// access into the area state (merge per Algorithm 4, home tick, W update).
func (n *NIC) writeClockApply(area memory.Area, acc core.Access) {
	n.send(network.NodeID(area.Home), network.KindClockWrite,
		network.HeaderBytes+acc.Clock.WireSize(), &req{area: area, acc: acc, apply: true})
}

// writeClockRaw performs put_clock with explicit values (the second
// update_clock of Algorithm 1; idempotent by construction).
func (n *NIC) writeClockRaw(area memory.Area, v, w vclock.VC) {
	size := network.HeaderBytes
	if v != nil {
		size += v.WireSize()
	}
	if w != nil {
		size += w.WireSize()
	}
	n.send(network.NodeID(area.Home), network.KindClockWrite, size, &req{area: area, v: v, w: w})
}

// putLiteral is Algorithm 1 verbatim:
//
//	lock(P0,src)            — local, no-op for private memory (§IV-A)
//	lock(P1,dst)            — remote NIC lock
//	V = update_local_clock  — done by the caller (acc.Clock is ticked)
//	V' = get_clock(P1,dst)  — remote clock fetch
//	compare_clocks both ways (Algorithm 3) → signal_race_condition
//	put(P0,src,P1,dst)      — the data message
//	update_clock_W / update_clock (Algorithm 5: fetch, max, write back)
//	unlock(P1,dst); unlock(P0,src)
func (n *NIC) putLiteral(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	lockOn := n.sys.cfg.LocksEnabled
	if lockOn {
		n.lockInternal(p, area, acc.Proc)
	}
	v, _ := n.readClocks(p, area)
	if core.CheckWrite(acc.Clock, v) {
		n.sys.signal(&core.Report{
			Detector:    n.sys.cfg.Detector.Name(),
			Area:        area.ID,
			Current:     acc,
			StoredClock: v,
		}, p.Now())
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindPutReq,
		network.HeaderBytes+len(data)*memory.WordBytes,
		&req{area: area, off: off, data: data, acc: acc, hasAcc: false})
	err := asError(rs.err)
	n.sys.releaseResp(rs)
	if err == nil {
		// update_clock_W: re-fetch (Algorithm 5's get_clock), then fold the
		// write into the state.
		n.readClocks(p, area)
		n.writeClockApply(area, acc)
		// update_clock: fetch the (now updated) clocks and write them back —
		// idempotent, kept for message fidelity.
		v2, w2 := n.readClocks(p, area)
		n.writeClockRaw(area, v2, w2)
	}
	if lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	return vclock.Masked{}, err
}

// getLiteral is Algorithm 2 verbatim: lock, fetch clocks, compare the
// initiator clock against the *write* clock, transfer the data, run
// update_clock on the source area, unlock.
func (n *NIC) getLiteral(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	lockOn := n.sys.cfg.LocksEnabled
	if lockOn {
		n.lockInternal(p, area, acc.Proc)
	}
	_, w := n.readClocks(p, area)
	if core.CheckRead(acc.Clock, w) {
		n.sys.signal(&core.Report{
			Detector:    n.sys.cfg.Detector.Name(),
			Area:        area.ID,
			Current:     acc,
			StoredClock: w,
		}, p.Now())
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindGetReq, network.HeaderBytes,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: false})
	gotData, err := rs.data, asError(rs.err)
	n.sys.releaseResp(rs)
	var absorb vclock.Masked
	if err == nil {
		n.readClocks(p, area)
		n.writeClockApply(area, acc)
		if n.sys.cfg.AbsorbOnGetReply {
			// The write clock the read observed (reads-from edge); a raw
			// clock read carries no mask, so the absorb is dense.
			absorb = vclock.Dense(w)
		}
	}
	if lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	if err != nil {
		return nil, vclock.Masked{}, err
	}
	return gotData, absorb, nil
}
