package rdma

import (
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// The initiator-side operations run in continuation-passing style (see
// initOp in init_op.go): the process issues the first request, parks once,
// and every intermediate protocol hop — lock grants, literal-protocol clock
// fetches, data replies — completes through pooled continuations in event
// context. The tail of each operation (the code below each await) runs on
// the process after the single wakeup, exactly where the parked path ran it.
// The pre-CPS parked path is kept in ops_legacy.go behind
// Config.LegacyInitiator for the differential determinism suite.

// Put writes data into area at word offset off (one-sided remote write,
// Fig. 2 left... right arrow). acc carries the initiator's identity and
// ticked clock. It returns the clock the initiator should absorb (nil when
// none) and blocks p until completion.
func (n *NIC) Put(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.Protocol == ProtocolLiteral && n.sys.DetectionOn() {
		return n.putLiteral(p, area, off, data, acc)
	}
	if n.sys.cfg.LegacyInitiator {
		return n.legacyPut(p, area, off, data, acc)
	}
	size := network.HeaderBytes + len(data)*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindPutReq, size,
		&req{area: area, off: off, data: data, acc: acc, hasAcc: hasAcc}, o.captureFn)
	o.await()
	clock, err := o.clock, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return vclock.Masked{}, err
	}
	// Under write-invalidate the writer's own copy (every other copy is
	// gone by now) absorbs the write, stamped with the merged clock the
	// ack carried — the area's new write clock.
	n.sys.coh.PatchCopy(int(n.id), area, off, data, clock)
	if n.sys.cfg.AbsorbOnPutAck {
		return clock, nil
	}
	n.ps.releaseClock(clock)
	return vclock.Masked{}, nil
}

// Get reads count words from area at word offset off (one-sided remote
// read). It returns the data and the clock to absorb (the area's write
// clock when AbsorbOnGetReply is set). Under write-invalidate coherence the
// read is served from a valid local copy when one exists and otherwise
// fetches (and caches) the whole area.
func (n *NIC) Get(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.Coherence.CachesRemoteReads() {
		return n.getInvalidate(p, area, off, count, acc)
	}
	if n.sys.cfg.Protocol == ProtocolLiteral && n.sys.DetectionOn() {
		return n.getLiteral(p, area, off, count, acc)
	}
	if n.sys.cfg.LegacyInitiator {
		return n.legacyGet(p, area, off, count, acc)
	}
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindGetReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc}, o.captureFn)
	o.await()
	data, clock, err := o.outData, o.clock, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	if n.sys.cfg.AbsorbOnGetReply {
		return data, clock, nil
	}
	n.ps.releaseClock(clock)
	return data, vclock.Masked{}, nil
}

// FetchAdd atomically adds delta to the word at (area, off) and returns the
// previous value. The operation counts as a write for detection.
func (n *NIC) FetchAdd(p *sim.Proc, area memory.Area, off int, delta memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	return n.atomic(p, area, off, AtomicFetchAdd, delta, 0, acc)
}

// CompareAndSwap atomically replaces the word at (area, off) with repl when
// it equals expect; it returns the previous value (swap happened iff
// old == expect).
func (n *NIC) CompareAndSwap(p *sim.Proc, area memory.Area, off int, expect, repl memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	return n.atomic(p, area, off, AtomicCAS, expect, repl, acc)
}

func (n *NIC) atomic(p *sim.Proc, area memory.Area, off int, op AtomicOp, a1, a2 memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.LegacyInitiator {
		return n.legacyAtomic(p, area, off, op, a1, a2, acc)
	}
	size := network.HeaderBytes + 2*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindAtomicReq, size,
		&req{area: area, off: off, op: op, arg1: a1, arg2: a2, acc: acc, hasAcc: hasAcc}, o.captureFn)
	o.await()
	clock, err := o.clock, o.err()
	var old memory.Word
	if len(o.outData) > 0 {
		old = o.outData[0]
	}
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return 0, vclock.Masked{}, err
	}
	if n.sys.cfg.Coherence.CachesRemoteReads() {
		// Fold the atomic's outcome into the initiator's own copy (a failed
		// CAS rewrites the old value — the write clock still advances,
		// because the home counted the atomic as a write either way).
		n.sys.coh.PatchCopy(int(n.id), area, off, []memory.Word{op.Apply(old, a1, a2)}, clock)
	}
	var absorb vclock.Masked
	if n.sys.cfg.AbsorbOnPutAck {
		absorb = clock
	} else {
		n.ps.releaseClock(clock)
	}
	return old, absorb, nil
}

// getInvalidate is the write-invalidate read path: home-local reads and
// cache hits are served without messages (modelling a plain load from
// local memory — which also means the online detector at the home never
// sees a cache hit, the coverage trade-off E-T12 measures); a miss fetches
// and caches the whole area with the write clock piggybacked on the reply.
func (n *NIC) getInvalidate(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	self := int(n.id)
	if int(n.homeOf(area)) == self && n.sys.cfg.Coherence.ServesHomeReadsLocally() {
		// The home copy is by definition valid, and the detection state is
		// resident: the access is checked without any message. (After a
		// failover the successor serves its inherited areas the same way,
		// against the declared home's exported segment.)
		if err := checkAreaRange(area, off, count); err != nil {
			return nil, vclock.Masked{}, err
		}
		data := make([]memory.Word, count)
		if err := n.sys.space.Node(area.Home).ReadPublic(area.Off+off, data); err != nil {
			return nil, vclock.Masked{}, err
		}
		p.Sleep(n.sys.occupancy(count))
		now := p.Now()
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, count, now)
		}
		n.sys.countHomeRead(int(n.id))
		var absorb vclock.Masked
		if n.sys.DetectionOn() {
			acc.Time = now
			absorb = n.sys.checkAccess(n, acc, area, off, count, now)
		}
		if n.sys.cfg.AbsorbOnGetReply {
			return data, absorb, nil
		}
		n.ps.releaseClock(absorb)
		return data, vclock.Masked{}, nil
	}
	if data, w, ok := n.sys.coh.CachedRead(self, area, off, count); ok {
		p.Sleep(n.sys.occupancy(count))
		now := p.Now()
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, count, now)
		}
		var absorb vclock.Masked
		if !w.IsNil() && n.sys.cfg.AbsorbOnGetReply {
			// The copy's write clock is exactly the area's current write
			// clock — a valid copy means no write has committed since the
			// fetch — so the hit gets the same reads-from edge a remote
			// read would.
			absorb = w.CopyInto(n.ps.grabClock())
		}
		return data, absorb, nil
	}
	if n.sys.cfg.LegacyInitiator {
		return n.legacyFetchMiss(p, area, off, count, acc)
	}
	// Miss: fetch the whole area (the coherence unit) from the home.
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindFetchReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc}, o.captureFn)
	o.await()
	data, clock, err := o.outData, o.clock, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	n.sys.coh.InstallCopy(self, area, data, clock)
	out := make([]memory.Word, count)
	copy(out, data[off:off+count])
	if n.sys.cfg.AbsorbOnGetReply {
		return out, clock, nil
	}
	n.ps.releaseClock(clock)
	return out, vclock.Masked{}, nil
}

// LockArea acquires the NIC lock of the area for proc (a user-level lock;
// the same lock the NIC uses internally, so user critical sections exclude
// remote operations on the area). The returned clock, when non-nil, is the
// previous releaser's clock: absorbing it gives the acquirer the
// release→acquire happens-before edge. The error is non-nil only under a
// hostile fault schedule (ErrUnreachable after the retry budget).
func (n *NIC) LockArea(p *sim.Proc, area memory.Area, proc int) (vclock.Masked, error) {
	if n.sys.cfg.LegacyInitiator {
		return n.legacyLockArea(p, area, proc), nil
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindLockReq, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}, user: true}, o.captureFn)
	o.await()
	clock, err := o.clock, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return vclock.Masked{}, err
	}
	return clock, nil
}

// UnlockArea releases the area lock, carrying the releaser's clock rel for
// the next acquirer (one-way; FIFO links guarantee it cannot overtake the
// holder's earlier traffic to the home).
func (n *NIC) UnlockArea(area memory.Area, proc int, rel vclock.Masked) {
	size := network.HeaderBytes
	if !rel.IsNil() {
		size += rel.V.WireSize()
	}
	n.send(n.homeOf(area), network.KindUnlock, size,
		&req{area: area, acc: core.Access{Proc: proc, Clock: rel.V, ClockNZ: rel.M}, user: true})
}

// unlockInternal releases a literal-protocol internal lock acquisition.
func (n *NIC) unlockInternal(area memory.Area, proc int) {
	n.send(n.homeOf(area), network.KindUnlock, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}})
}

// ---- Literal protocol: Algorithms 1 and 2, message by message. The hop
// sequence lives in the initOp continuations (init_op.go); only the first
// hop and the post-completion tail run on the process. ----

// writeClockApply performs put_clock in "apply" form: the home folds the
// access into the area state (merge per Algorithm 4, home tick, W update).
func (n *NIC) writeClockApply(area memory.Area, acc core.Access) {
	n.send(n.homeOf(area), network.KindClockWrite,
		network.HeaderBytes+acc.Clock.WireSize(), &req{area: area, acc: acc, apply: true})
}

// writeClockRaw performs put_clock with explicit values (the second
// update_clock of Algorithm 1; idempotent by construction).
func (n *NIC) writeClockRaw(area memory.Area, v, w vclock.VC) {
	size := network.HeaderBytes
	if v != nil {
		size += v.WireSize()
	}
	if w != nil {
		size += w.WireSize()
	}
	n.send(n.homeOf(area), network.KindClockWrite, size, &req{area: area, v: v, w: w})
}

// startLiteral begins a literal-protocol operation: with locks enabled it
// issues the internal lock request (not observed, no clock transport — the
// mechanism lock must not create user-visible happens-before, or no race
// could ever be detected) and the grant continuation defers stage1;
// otherwise stage1 runs directly from process context, exactly where the
// parked path issued its first clock fetch.
func (o *initOp) startLiteral(stage1 func()) {
	o.stage1Fn = stage1
	if o.lockOn {
		o.issue(o.n.homeOf(o.area), network.KindLockReq, network.HeaderBytes,
			&req{area: o.area, acc: core.Access{Proc: o.acc.Proc}}, o.grantFn)
		return
	}
	stage1()
}

// putLiteral is Algorithm 1 verbatim:
//
//	lock(P0,src)            — local, no-op for private memory (§IV-A)
//	lock(P1,dst)            — remote NIC lock
//	V = update_local_clock  — done by the caller (acc.Clock is ticked)
//	V' = get_clock(P1,dst)  — remote clock fetch
//	compare_clocks both ways (Algorithm 3) → signal_race_condition
//	put(P0,src,P1,dst)      — the data message
//	update_clock_W / update_clock (Algorithm 5: fetch, max, write back)
//	unlock(P1,dst); unlock(P0,src)
func (n *NIC) putLiteral(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	if n.sys.cfg.LegacyInitiator {
		return n.legacyPutLiteral(p, area, off, data, acc)
	}
	o := n.sys.grabInit(n, p)
	o.area, o.off, o.data, o.acc = area, off, data, acc
	o.lockOn = n.sys.cfg.LocksEnabled
	o.startLiteral(o.putStage1Fn)
	o.await()
	err := o.err()
	if err == nil {
		// update_clock: write the (already updated) clocks back — idempotent,
		// kept for message fidelity.
		n.writeClockRaw(area, o.v, o.w)
	}
	if o.lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	releaseInit(n.ps, o)
	return vclock.Masked{}, err
}

// getLiteral is Algorithm 2 verbatim: lock, fetch clocks, compare the
// initiator clock against the *write* clock, transfer the data, run
// update_clock on the source area, unlock.
func (n *NIC) getLiteral(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	if n.sys.cfg.LegacyInitiator {
		return n.legacyGetLiteral(p, area, off, count, acc)
	}
	o := n.sys.grabInit(n, p)
	o.area, o.off, o.count, o.acc = area, off, count, acc
	o.lockOn = n.sys.cfg.LocksEnabled
	o.startLiteral(o.getStage1Fn)
	o.await()
	gotData, err := o.outData, o.err()
	var absorb vclock.Masked
	if err == nil {
		n.writeClockApply(area, acc)
		if n.sys.cfg.AbsorbOnGetReply {
			// The write clock the read observed (reads-from edge); a raw
			// clock read carries no mask, so the absorb is dense.
			absorb = vclock.Dense(o.w)
		}
	}
	if o.lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	releaseInit(n.ps, o)
	if err != nil {
		return nil, vclock.Masked{}, err
	}
	return gotData, absorb, nil
}
