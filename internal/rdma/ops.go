package rdma

import (
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// The initiator-side operations run in continuation-passing style (see
// initOp in init_op.go): the process issues the first request, parks once,
// and every intermediate protocol hop — lock grants, literal-protocol clock
// fetches, data replies — completes through pooled continuations in event
// context. The tail of each operation (the code below each await) runs on
// the process after the single wakeup, exactly where the parked path ran it.
// The pre-CPS parked path is kept in ops_legacy.go behind
// Config.LegacyInitiator for the differential determinism suite.

// Put writes data into area at word offset off (one-sided remote write,
// Fig. 2 left... right arrow). acc carries the initiator's identity and
// ticked clock. It returns the clock the initiator should absorb (nil when
// none) and blocks p until completion.
func (n *NIC) Put(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.Protocol == ProtocolLiteral && n.sys.DetectionOn() {
		return n.putLiteral(p, area, off, data, acc)
	}
	if n.sys.cfg.LegacyInitiator {
		return n.legacyPut(p, area, off, data, acc)
	}
	self := int(n.id)
	if mes := n.sys.mes; mes != nil && mes.HoldsExclusive(self, area) {
		// MESI silent write: the sole valid copy is local, so the write
		// upgrades it in place (E→M) with zero messages. The commit happens
		// before the occupancy sleep — a recall arriving mid-sleep downgrades
		// a line that already holds this write. Like cached reads, silent
		// writes never reach the home's online detector (the coverage
		// trade-off of serving accesses locally).
		if err := checkAreaRange(area, off, len(data)); err != nil {
			return vclock.Masked{}, err
		}
		mes.SilentWrite(self, area, off, data, vclock.Masked{})
		p.Sleep(n.sys.occupancy(len(data)))
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, len(data), p.Now())
		}
		return vclock.Masked{}, nil
	}
	size := network.HeaderBytes + len(data)*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	var obs vclock.VC
	if cau := n.sys.cau; cau != nil {
		// Causal coherence: the request ships the writer's observation
		// snapshot; the home folds it into the area's dependency clock.
		obs = cau.ObsSnapshot(self)
		size += obs.WireSize()
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindPutReq, size,
		&req{area: area, off: off, data: data, acc: acc, hasAcc: hasAcc, obs: obs}, o.captureFn)
	o.await()
	clock, ver, err := o.clock, o.ver, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return vclock.Masked{}, err
	}
	// The writer's own copy absorbs the write, stamped with the merged clock
	// the ack carried — the area's new write clock. Under write-invalidate
	// every other copy is gone by now; under causal the patch advances the
	// copy to the committed version (or invalidates it on a version gap);
	// under MESI it leaves the writer's surviving copy exclusive.
	if cau := n.sys.cau; cau != nil {
		cau.NoteWriteAck(self, area, ver)
		cau.PatchVersioned(self, area, off, data, clock, ver)
	} else {
		n.sys.coh.PatchCopy(self, area, off, data, clock)
	}
	if n.sys.cfg.AbsorbOnPutAck {
		return clock, nil
	}
	n.ps.releaseClock(clock)
	return vclock.Masked{}, nil
}

// Get reads count words from area at word offset off (one-sided remote
// read). It returns the data and the clock to absorb (the area's write
// clock when AbsorbOnGetReply is set). Under write-invalidate coherence the
// read is served from a valid local copy when one exists and otherwise
// fetches (and caches) the whole area.
func (n *NIC) Get(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.Coherence.CachesRemoteReads() {
		return n.getInvalidate(p, area, off, count, acc)
	}
	if n.sys.cfg.Protocol == ProtocolLiteral && n.sys.DetectionOn() {
		return n.getLiteral(p, area, off, count, acc)
	}
	if n.sys.cfg.LegacyInitiator {
		return n.legacyGet(p, area, off, count, acc)
	}
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindGetReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc}, o.captureFn)
	o.await()
	data, clock, err := o.outData, o.clock, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	if n.sys.cfg.AbsorbOnGetReply {
		return data, clock, nil
	}
	n.ps.releaseClock(clock)
	return data, vclock.Masked{}, nil
}

// FetchAdd atomically adds delta to the word at (area, off) and returns the
// previous value. The operation counts as a write for detection.
func (n *NIC) FetchAdd(p *sim.Proc, area memory.Area, off int, delta memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	return n.atomic(p, area, off, AtomicFetchAdd, delta, 0, acc)
}

// CompareAndSwap atomically replaces the word at (area, off) with repl when
// it equals expect; it returns the previous value (swap happened iff
// old == expect).
func (n *NIC) CompareAndSwap(p *sim.Proc, area memory.Area, off int, expect, repl memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	return n.atomic(p, area, off, AtomicCAS, expect, repl, acc)
}

func (n *NIC) atomic(p *sim.Proc, area memory.Area, off int, op AtomicOp, a1, a2 memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	acc.Area = area.ID
	if n.sys.cfg.LegacyInitiator {
		return n.legacyAtomic(p, area, off, op, a1, a2, acc)
	}
	self := int(n.id)
	if mes := n.sys.mes; mes != nil && mes.HoldsExclusive(self, area) {
		// MESI silent atomic: exclusivity guarantees no other valid copy
		// exists and every foreign home operation recalls this owner first,
		// so the read-modify-write is atomic at the silent-write instant
		// (check and commit happen without yielding).
		if err := checkAreaRange(area, off, 1); err != nil {
			return 0, vclock.Masked{}, err
		}
		cur, _, ok := n.sys.coh.CachedRead(self, area, off, 1)
		if !ok {
			panic("rdma: exclusive line refused a cached read")
		}
		old := cur[0]
		mes.SilentWrite(self, area, off, []memory.Word{op.Apply(old, a1, a2)}, vclock.Masked{})
		p.Sleep(n.sys.occupancy(1))
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, 1, p.Now())
		}
		return old, vclock.Masked{}, nil
	}
	size := network.HeaderBytes + 2*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	var obs vclock.VC
	if cau := n.sys.cau; cau != nil {
		obs = cau.ObsSnapshot(self)
		size += obs.WireSize()
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindAtomicReq, size,
		&req{area: area, off: off, op: op, arg1: a1, arg2: a2, acc: acc, hasAcc: hasAcc, obs: obs}, o.captureFn)
	o.await()
	clock, ver, err := o.clock, o.ver, o.err()
	var old memory.Word
	if len(o.outData) > 0 {
		old = o.outData[0]
	}
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return 0, vclock.Masked{}, err
	}
	if n.sys.cfg.Coherence.CachesRemoteReads() {
		// Fold the atomic's outcome into the initiator's own copy (a failed
		// CAS rewrites the old value — the write clock still advances,
		// because the home counted the atomic as a write either way).
		neww := []memory.Word{op.Apply(old, a1, a2)}
		if cau := n.sys.cau; cau != nil {
			cau.NoteWriteAck(self, area, ver)
			cau.PatchVersioned(self, area, off, neww, clock, ver)
		} else {
			n.sys.coh.PatchCopy(self, area, off, neww, clock)
		}
	}
	var absorb vclock.Masked
	if n.sys.cfg.AbsorbOnPutAck {
		absorb = clock
	} else {
		n.ps.releaseClock(clock)
	}
	return old, absorb, nil
}

// getInvalidate is the write-invalidate read path: home-local reads and
// cache hits are served without messages (modelling a plain load from
// local memory — which also means the online detector at the home never
// sees a cache hit, the coverage trade-off E-T12 measures); a miss fetches
// and caches the whole area with the write clock piggybacked on the reply.
func (n *NIC) getInvalidate(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	self := int(n.id)
	if int(n.homeOf(area)) == self && n.sys.cfg.Coherence.ServesHomeReadsLocally() {
		if mes := n.sys.mes; mes != nil && mes.ExclusiveOwner(self, area) >= 0 {
			// MESI: a remote owner may hold silently modified data, so home
			// memory cannot be trusted. A self-addressed get runs the normal
			// home path — which recalls the owner under the area lock —
			// instead of the message-free shortcut.
			return n.getViaHome(p, area, off, count, acc)
		}
		// The home copy is by definition valid, and the detection state is
		// resident: the access is checked without any message. (After a
		// failover the successor serves its inherited areas the same way,
		// against the declared home's exported segment.)
		if err := checkAreaRange(area, off, count); err != nil {
			return nil, vclock.Masked{}, err
		}
		data := make([]memory.Word, count)
		if err := n.sys.space.Node(area.Home).ReadPublic(area.Off+off, data); err != nil {
			return nil, vclock.Masked{}, err
		}
		p.Sleep(n.sys.occupancy(count))
		now := p.Now()
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, count, now)
		}
		n.sys.countHomeRead(int(n.id))
		if cau := n.sys.cau; cau != nil {
			// The home read observes the area at its current version; the
			// reader inherits its dependency clock.
			cau.NoteHomeRead(self, area)
		}
		var absorb vclock.Masked
		if n.sys.DetectionOn() {
			acc.Time = now
			absorb = n.sys.checkAccess(n, acc, area, off, count, now)
		}
		if n.sys.cfg.AbsorbOnGetReply {
			return data, absorb, nil
		}
		n.ps.releaseClock(absorb)
		return data, vclock.Masked{}, nil
	}
	if data, w, ok := n.sys.coh.CachedRead(self, area, off, count); ok {
		p.Sleep(n.sys.occupancy(count))
		now := p.Now()
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.Access(acc, area, off, count, now)
		}
		var absorb vclock.Masked
		if !w.IsNil() && n.sys.cfg.AbsorbOnGetReply {
			// The copy's write clock is exactly the area's current write
			// clock — a valid copy means no write has committed since the
			// fetch — so the hit gets the same reads-from edge a remote
			// read would.
			absorb = w.CopyInto(n.ps.grabClock())
		}
		return data, absorb, nil
	}
	if n.sys.cfg.LegacyInitiator {
		return n.legacyFetchMiss(p, area, off, count, acc)
	}
	// Miss: fetch the whole area (the coherence unit) from the home.
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	o := n.sys.grabInit(n, p)
	// The copy is installed by fetchCapture in the reply's delivery slot —
	// not here, after the wakeup — so a same-instant invalidation ordered
	// after the reply finds the copy present and drops it (see fetchCapture).
	o.area = area
	o.issue(n.homeOf(area), network.KindFetchReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc}, o.fetchCaptureFn)
	o.await()
	data, clock, err := o.outData, o.clock, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	out := make([]memory.Word, count)
	copy(out, data[off:off+count])
	if n.sys.cfg.AbsorbOnGetReply {
		return out, clock, nil
	}
	n.ps.releaseClock(clock)
	return out, vclock.Masked{}, nil
}

// getViaHome is the MESI home-local read with a remote exclusive owner: a
// plain get addressed to this node itself, served through the ordinary home
// path (lock, recall, occupancy, detection) so the owner's dirty data is
// written back before the read. No copy is installed and no sharer is
// registered — the home reads its own memory.
func (n *NIC) getViaHome(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.id, network.KindGetReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc}, o.captureFn)
	o.await()
	data, clock, err := o.outData, o.clock, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	if n.sys.cfg.AbsorbOnGetReply {
		return data, clock, nil
	}
	n.ps.releaseClock(clock)
	return data, vclock.Masked{}, nil
}

// LockArea acquires the NIC lock of the area for proc (a user-level lock;
// the same lock the NIC uses internally, so user critical sections exclude
// remote operations on the area). The returned clock, when non-nil, is the
// previous releaser's clock: absorbing it gives the acquirer the
// release→acquire happens-before edge. The error is non-nil only under a
// hostile fault schedule (ErrUnreachable after the retry budget).
func (n *NIC) LockArea(p *sim.Proc, area memory.Area, proc int) (vclock.Masked, error) {
	if n.sys.cfg.LegacyInitiator {
		return n.legacyLockArea(p, area, proc), nil
	}
	o := n.sys.grabInit(n, p)
	o.issue(n.homeOf(area), network.KindLockReq, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}, user: true}, o.captureFn)
	o.await()
	clock, dep, err := o.clock, o.dep, o.err()
	releaseInit(n.ps, o)
	if err != nil {
		n.ps.releaseClock(clock)
		return vclock.Masked{}, err
	}
	if cau := n.sys.cau; cau != nil && dep != nil {
		// Causal coherence: inherit the releasers' observation clock — the
		// acquire edge that makes writes published before the release
		// visible inside the critical section.
		cau.MergeObs(int(n.id), dep)
	}
	return clock, nil
}

// UnlockArea releases the area lock, carrying the releaser's clock rel for
// the next acquirer (one-way; FIFO links guarantee it cannot overtake the
// holder's earlier traffic to the home).
func (n *NIC) UnlockArea(area memory.Area, proc int, rel vclock.Masked) {
	size := network.HeaderBytes
	if !rel.IsNil() {
		size += rel.V.WireSize()
	}
	var obs vclock.VC
	if cau := n.sys.cau; cau != nil {
		// Causal coherence: ship the releaser's observation clock so the
		// next acquirer inherits it (release half of the acquire edge).
		obs = cau.ObsSnapshot(int(n.id))
		size += obs.WireSize()
	}
	n.send(n.homeOf(area), network.KindUnlock, size,
		&req{area: area, acc: core.Access{Proc: proc, Clock: rel.V, ClockNZ: rel.M}, user: true, obs: obs})
}

// CausalObs returns a fresh copy of this node's causal observation clock,
// or nil unless the run uses causal coherence. The DSM runtime ships it with
// barrier arrivals, extending the release→acquire causality transport of
// locks to collective synchronisation.
func (n *NIC) CausalObs() vclock.VC {
	if cau := n.sys.cau; cau != nil {
		return cau.ObsSnapshot(int(n.id))
	}
	return nil
}

// CausalMergeObs folds a received observation clock (barrier release) into
// this node's own. No-op unless causal coherence is active and obs non-nil.
func (n *NIC) CausalMergeObs(obs vclock.VC) {
	if cau := n.sys.cau; cau != nil && obs != nil {
		cau.MergeObs(int(n.id), obs)
	}
}

// unlockInternal releases a literal-protocol internal lock acquisition.
func (n *NIC) unlockInternal(area memory.Area, proc int) {
	n.send(n.homeOf(area), network.KindUnlock, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}})
}

// ---- Literal protocol: Algorithms 1 and 2, message by message. The hop
// sequence lives in the initOp continuations (init_op.go); only the first
// hop and the post-completion tail run on the process. ----

// writeClockApply performs put_clock in "apply" form: the home folds the
// access into the area state (merge per Algorithm 4, home tick, W update).
func (n *NIC) writeClockApply(area memory.Area, acc core.Access) {
	n.send(n.homeOf(area), network.KindClockWrite,
		network.HeaderBytes+acc.Clock.WireSize(), &req{area: area, acc: acc, apply: true})
}

// writeClockRaw performs put_clock with explicit values (the second
// update_clock of Algorithm 1; idempotent by construction).
func (n *NIC) writeClockRaw(area memory.Area, v, w vclock.VC) {
	size := network.HeaderBytes
	if v != nil {
		size += v.WireSize()
	}
	if w != nil {
		size += w.WireSize()
	}
	n.send(n.homeOf(area), network.KindClockWrite, size, &req{area: area, v: v, w: w})
}

// startLiteral begins a literal-protocol operation: with locks enabled it
// issues the internal lock request (not observed, no clock transport — the
// mechanism lock must not create user-visible happens-before, or no race
// could ever be detected) and the grant continuation defers stage1;
// otherwise stage1 runs directly from process context, exactly where the
// parked path issued its first clock fetch.
func (o *initOp) startLiteral(stage1 func()) {
	o.stage1Fn = stage1
	if o.lockOn {
		o.issue(o.n.homeOf(o.area), network.KindLockReq, network.HeaderBytes,
			&req{area: o.area, acc: core.Access{Proc: o.acc.Proc}}, o.grantFn)
		return
	}
	stage1()
}

// putLiteral is Algorithm 1 verbatim:
//
//	lock(P0,src)            — local, no-op for private memory (§IV-A)
//	lock(P1,dst)            — remote NIC lock
//	V = update_local_clock  — done by the caller (acc.Clock is ticked)
//	V' = get_clock(P1,dst)  — remote clock fetch
//	compare_clocks both ways (Algorithm 3) → signal_race_condition
//	put(P0,src,P1,dst)      — the data message
//	update_clock_W / update_clock (Algorithm 5: fetch, max, write back)
//	unlock(P1,dst); unlock(P0,src)
func (n *NIC) putLiteral(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	if n.sys.cfg.LegacyInitiator {
		return n.legacyPutLiteral(p, area, off, data, acc)
	}
	o := n.sys.grabInit(n, p)
	o.area, o.off, o.data, o.acc = area, off, data, acc
	o.lockOn = n.sys.cfg.LocksEnabled
	o.startLiteral(o.putStage1Fn)
	o.await()
	err := o.err()
	if err == nil {
		// update_clock: write the (already updated) clocks back — idempotent,
		// kept for message fidelity.
		n.writeClockRaw(area, o.v, o.w)
	}
	if o.lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	releaseInit(n.ps, o)
	return vclock.Masked{}, err
}

// getLiteral is Algorithm 2 verbatim: lock, fetch clocks, compare the
// initiator clock against the *write* clock, transfer the data, run
// update_clock on the source area, unlock.
func (n *NIC) getLiteral(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	if n.sys.cfg.LegacyInitiator {
		return n.legacyGetLiteral(p, area, off, count, acc)
	}
	o := n.sys.grabInit(n, p)
	o.area, o.off, o.count, o.acc = area, off, count, acc
	o.lockOn = n.sys.cfg.LocksEnabled
	o.startLiteral(o.getStage1Fn)
	o.await()
	gotData, err := o.outData, o.err()
	var absorb vclock.Masked
	if err == nil {
		n.writeClockApply(area, acc)
		if n.sys.cfg.AbsorbOnGetReply {
			// The write clock the read observed (reads-from edge); a raw
			// clock read carries no mask, so the absorb is dense.
			absorb = vclock.Dense(o.w)
		}
	}
	if o.lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	releaseInit(n.ps, o)
	if err != nil {
		return nil, vclock.Masked{}, err
	}
	return gotData, absorb, nil
}
