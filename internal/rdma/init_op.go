package rdma

import (
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// initOp is a pooled initiator-side operation in continuation-passing style —
// the symmetric counterpart of the home side's homeOp. The initiating
// process issues the first request and parks exactly once (Proc.Await); from
// then on the operation advances entirely in event context: each reply is
// absorbed by a pre-bound continuation, and each follow-up phase runs in a
// Kernel.Defer slot — the exact (time, seq) position the old parked path's
// per-hop process wakeup occupied, which is what keeps every fingerprint
// (durations, message order, RNG draws) bit-identical to that path. Only the
// final reply wakes the goroutine, and the operation's tail (coherence-copy
// patching, absorb-buffer hand-off, pool release) runs on the process as
// before.
//
// Ownership at each hop:
//   - o.rr (pooled req): owned by the operation from issue until the reply
//     proves the home is done with it; the reply continuation releases it.
//     (A request dropped on a down link is reclaimed by the network's drop
//     hook instead — see System.reclaimDropped.)
//   - the pooled resp: owned by the reply continuation for the duration of
//     the capture; released before the continuation returns.
//   - o.clock (pooled absorb clock): detached from the resp by the capture;
//     owned by the operation until the process-side tail either hands it to
//     the caller (who releases it after absorbing) or releases it on error.
//   - o itself: grabbed by the entry point, released by the entry point
//     after the tail has copied the results out.
//
// All continuation funcs are bound once when the struct is first created, so
// a steady-state operation allocates nothing.
type initOp struct {
	n     *NIC
	p     *sim.Proc
	rr    *req         // in-flight pooled request (nil between hops)
	next  func(*resp)  // reply continuation for the in-flight request
	kind  network.Kind // in-flight request kind (park label)
	done  bool
	owner int32 // pool shard that grabbed this struct

	// Operation inputs (only what the literal-protocol continuations read;
	// single-round-trip ops carry their inputs in the req alone).
	area       memory.Area
	off, count int
	data       []memory.Word
	acc        core.Access
	lockOn     bool // literal protocol: internal area lock taken

	// Results, filled by reply continuations.
	outData []memory.Word
	clock   vclock.Masked
	errs    string
	v, w    vclock.VC
	ver     uint64    // causal: area version carried by a write ack / fetch reply
	dep     vclock.VC // causal: dependency clock of that version (fresh copy, ours)
	excl    bool      // mesi: fetch reply granted exclusivity

	// Fault lifecycle (armed only under a hostile schedule — see fault.go):
	// the request template and coordinates to retransmit from, the deadline
	// the NIC watchdog scans, and the attempt counter against the budget.
	tmpl        req
	dst         network.NodeID
	size        int
	attempt     int
	deadline    sim.Time
	dropped     bool // the in-flight request was dropped at send
	unreachable bool // failed with ErrUnreachable (budget exhausted)

	// Pre-bound continuations (see the methods of the same names).
	captureFn       func(*resp) // single round-trip ops: absorb + finish
	fetchCaptureFn  func(*resp) // fetch miss: install the copy, then finish
	grantFn         func(*resp) // literal: internal lock granted
	stage1Fn        func()      // literal: first post-grant phase (per-op, set at start)
	putStage1Fn     func()
	putClocks1Fn    func(*resp)
	putStage2Fn     func()
	putAckFn        func(*resp)
	putStage3Fn     func()
	putClocksDiscFn func(*resp)
	putStage4Fn     func()
	putClocks3Fn    func(*resp)
	getStage1Fn     func()
	getClocks1Fn    func(*resp)
	getStage2Fn     func()
	getReplyFn      func(*resp)
	getStage3Fn     func()
	getClocks2Fn    func(*resp)
}

// grabInit takes an initiator operation from the pool, binding its
// continuations once on first creation. Initiator operations are grabbed
// and released on the initiating node's shard, so n.ps is always the right
// pool.
func (s *System) grabInit(n *NIC, p *sim.Proc) *initOp {
	ps := n.ps
	ps.balance.InitOps++
	var o *initOp
	if k := len(ps.initPool); k > 0 {
		o = ps.initPool[k-1]
		ps.initPool = ps.initPool[:k-1]
		o.owner = int32(ps.idx)
	} else {
		o = &initOp{owner: int32(ps.idx)}
		o.captureFn = o.capture
		o.fetchCaptureFn = o.fetchCapture
		o.grantFn = o.grant
		o.putStage1Fn = o.putStage1
		o.putClocks1Fn = o.putClocks1
		o.putStage2Fn = o.putStage2
		o.putAckFn = o.putAck
		o.putStage3Fn = o.putStage3
		o.putClocksDiscFn = o.putClocksDiscard
		o.putStage4Fn = o.putStage4
		o.putClocks3Fn = o.putClocks3
		o.getStage1Fn = o.getStage1
		o.getClocks1Fn = o.getClocks1
		o.getStage2Fn = o.getStage2
		o.getReplyFn = o.getReply
		o.getStage3Fn = o.getStage3
		o.getClocks2Fn = o.getClocks2
	}
	o.n, o.p = n, p
	return o
}

// releaseInit recycles a completed initiator operation. The caller must have
// taken ownership of (or released) every result buffer first. ps is the
// releasing context's pool shard (the initiator's own, in every current
// caller).
func releaseInit(ps *shardPools, o *initOp) {
	owner := o.owner
	if o.deadline != 0 || o.unreachable {
		// Fault state was armed for this op (deadline set at issue, or a
		// failure recorded); clear it. The gate keeps fault-free runs from
		// paying a template memclr per operation.
		o.tmpl = req{}
		o.dst, o.size, o.attempt, o.deadline = 0, 0, 0, 0
		o.dropped, o.unreachable = false, false
	}
	o.n, o.p, o.rr, o.next, o.stage1Fn = nil, nil, nil, nil, nil
	o.done, o.lockOn = false, false
	o.data, o.outData, o.v, o.w = nil, nil, nil, nil
	o.dep = nil
	o.ver, o.excl = 0, false
	o.acc = core.Access{}
	o.clock = vclock.Masked{}
	o.errs = ""
	if int(owner) == ps.idx {
		ps.balance.InitOps--
		ps.initPool = append(ps.initPool, o)
		return
	}
	ps.ret[owner].inits = append(ps.ret[owner].inits, o)
}

// issue sends one request hop of the operation and registers cont as its
// reply continuation. The park label follows the in-flight kind, so a
// deadlock report names the hop actually stuck (Relabel is a no-op on the
// first hop, where the process has not parked yet — Await supplies the
// label there).
func (o *initOp) issue(dst network.NodeID, kind network.Kind, size int, r *req, cont func(*resp)) {
	n := o.n
	rr := n.ps.grabReq()
	owner := rr.owner
	*rr = *r
	rr.owner = owner
	rr.id = n.ps.nextReq()
	rr.origin = n.id
	o.rr, o.next, o.kind = rr, cont, kind
	if n.sys.fArm {
		// Record the retransmission template and deadline BEFORE sending: a
		// send-time drop runs the drop hook synchronously inside Send, and
		// the hook recognises a fault-tracked op by its nonzero deadline.
		o.tmpl = *rr
		o.dst, o.size = dst, size
		o.attempt, o.dropped = 0, false
		o.deadline = n.k.Now() + n.sys.ftimeout
	}
	n.addPending(rr.id, o)
	n.sys.net.Send(&network.Message{Src: n.id, Dst: dst, Kind: kind, Size: size, Area: wireArea(rr.area), Payload: rr})
	if n.sys.fArm {
		n.armWatchdog(o.deadline)
	}
	o.p.Relabel(parkReason(kind))
}

// absorb releases the hop's request and detaches the pooled resp's payload
// fields into the operation; the resp itself goes back to its pool. Every
// reply continuation starts here, in the initiator's shard context — a
// foreign-owned req/resp (home on another shard) settles home at the next
// window barrier.
func (o *initOp) absorb(rs *resp) {
	ps := o.n.ps
	if o.rr != nil {
		if o.n.sys.faultOn {
			// Home-side request ownership under faults: the home released
			// the req after replying (it cannot know whether the initiator
			// will ever see this reply), so only drop the reference.
			o.rr = nil
		} else {
			ps.releaseReq(o.rr)
			o.rr = nil
		}
	}
	o.next = nil
	// Only overwrite fields the reply actually carries: a literal-protocol
	// clock fetch must not clobber the data an earlier hop captured, and
	// vice versa.
	if rs.data != nil {
		o.outData = rs.data
	}
	if rs.err != "" {
		o.errs = rs.err
	}
	if rs.v != nil || rs.w != nil {
		o.v, o.w = rs.v, rs.w
	}
	if !rs.clock.IsNil() {
		o.clock = rs.clock
	}
	if rs.ver != 0 {
		o.ver = rs.ver
	}
	if rs.dep != nil {
		o.dep = rs.dep
	}
	if rs.excl {
		o.excl = true
	}
	ps.releaseResp(rs)
}

// finish completes the operation: the single process wakeup of its lifetime.
func (o *initOp) finish() {
	o.done = true
	o.p.Ready()
}

// await parks the process until the continuation chain completes.
func (o *initOp) await() {
	o.p.Await(&o.done, parkReason(o.kind))
}

// capture is the reply continuation of every single-round-trip operation
// (piggyback put/get/atomic, lock grant): absorb the reply and wake the
// process for the tail.
func (o *initOp) capture(rs *resp) {
	o.absorb(rs)
	o.finish()
}

// fetchCapture is the fetch-miss reply continuation: the copy is installed
// into the coherence state here, in the reply's own delivery slot, before the
// process wakeup. The home sends the reply before any invalidation for a
// later write to the same area, and the link FIFO preserves that order — but
// both can land in the same instant, and the invalidation's handler would run
// between this delivery and a process-side install, finding no copy to drop
// and leaving a stale line the home believes invalidated. Installing here
// keeps the reply's protocol action atomic with its delivery.
func (o *initOp) fetchCapture(rs *resp) {
	o.absorb(rs)
	if o.errs == "" {
		n, self := o.n, int(o.n.id)
		if cau := n.sys.cau; cau != nil {
			cau.InstallVersioned(self, o.area, o.outData, o.clock, o.ver, o.dep)
		} else {
			n.sys.coh.InstallCopy(self, o.area, o.outData, o.clock)
			if o.excl {
				n.sys.mes.InstallExclusive(self, o.area)
			}
		}
	}
	o.finish()
}

// ---- Literal protocol continuations (Algorithms 1 and 2). Each Defer'd
// stage occupies the event slot where the parked path resumed the process,
// and each one-way clock message is sent from the same slot it was sent
// from there. ----

// grant absorbs the internal lock grant and defers the per-op first stage.
//
//dsmlint:eventhandler
func (o *initOp) grant(rs *resp) {
	o.absorb(rs)
	o.n.k.Defer(o.stage1Fn)
}

// readClocks issues a get_clock/get_clock_W hop with the given continuation.
func (o *initOp) readClocks(cont func(*resp)) {
	o.issue(o.n.homeOf(o.area), network.KindClockRead, network.HeaderBytes,
		&req{area: o.area}, cont)
}

// putStage1 — Algorithm 1 after the lock: fetch the area clocks.
func (o *initOp) putStage1() { o.readClocks(o.putClocks1Fn) }

// putClocks1 holds V; the comparison itself runs in the next deferred slot.
//
//dsmlint:eventhandler
func (o *initOp) putClocks1(rs *resp) {
	o.absorb(rs)
	o.n.k.Defer(o.putStage2Fn)
}

// putStage2 compares clocks both ways (Algorithm 3), signals, and sends the
// data message.
func (o *initOp) putStage2() {
	n := o.n
	if core.CheckWrite(o.acc.Clock, o.v) {
		n.sys.signal(n, &core.Report{
			Detector:    n.sys.cfg.Detector.Name(),
			Area:        o.area.ID,
			Current:     o.acc,
			StoredClock: o.v,
		}, n.k.Now())
	}
	o.issue(o.n.homeOf(o.area), network.KindPutReq,
		network.HeaderBytes+len(o.data)*memory.WordBytes,
		&req{area: o.area, off: o.off, data: o.data, acc: o.acc, hasAcc: false}, o.putAckFn)
}

// putAck absorbs the data ack; an error short-circuits to the tail (which
// unlocks), success continues into update_clock_W.
//
//dsmlint:eventhandler
func (o *initOp) putAck(rs *resp) {
	o.absorb(rs)
	if o.errs != "" {
		o.finish()
		return
	}
	o.n.k.Defer(o.putStage3Fn)
}

// putStage3 — update_clock_W's re-fetch (Algorithm 5's get_clock).
func (o *initOp) putStage3() { o.readClocks(o.putClocksDiscFn) }

// putClocksDiscard absorbs a clock fetch whose values the algorithm ignores.
//
//dsmlint:eventhandler
func (o *initOp) putClocksDiscard(rs *resp) {
	o.absorb(rs)
	o.n.k.Defer(o.putStage4Fn)
}

// putStage4 folds the write into the state (put_clock apply) and starts the
// final idempotent update_clock fetch.
func (o *initOp) putStage4() {
	o.n.writeClockApply(o.area, o.acc)
	o.readClocks(o.putClocks3Fn)
}

// putClocks3 holds the final clocks; the tail writes them back and unlocks.
func (o *initOp) putClocks3(rs *resp) {
	o.absorb(rs)
	o.finish()
}

// getStage1 — Algorithm 2 after the lock: fetch the area clocks.
func (o *initOp) getStage1() { o.readClocks(o.getClocks1Fn) }

// getClocks1 holds W (kept for the tail's reads-from absorb edge).
//
//dsmlint:eventhandler
func (o *initOp) getClocks1(rs *resp) {
	o.absorb(rs)
	o.n.k.Defer(o.getStage2Fn)
}

// getStage2 compares the initiator clock against the write clock, signals,
// and sends the data request.
func (o *initOp) getStage2() {
	n := o.n
	if core.CheckRead(o.acc.Clock, o.w) {
		n.sys.signal(n, &core.Report{
			Detector:    n.sys.cfg.Detector.Name(),
			Area:        o.area.ID,
			Current:     o.acc,
			StoredClock: o.w,
		}, n.k.Now())
	}
	o.issue(o.n.homeOf(o.area), network.KindGetReq, network.HeaderBytes,
		&req{area: o.area, off: o.off, count: o.count, acc: o.acc, hasAcc: false}, o.getReplyFn)
}

// getReply absorbs the data; errors short-circuit to the tail.
//
//dsmlint:eventhandler
func (o *initOp) getReply(rs *resp) {
	o.absorb(rs)
	if o.errs != "" {
		o.finish()
		return
	}
	o.n.k.Defer(o.getStage3Fn)
}

// getStage3 — update_clock's fetch on the source area.
func (o *initOp) getStage3() { o.readClocks(o.getClocks2Fn) }

// getClocks2 absorbs the (ignored) clock fetch; the tail applies the access
// clock and unlocks.
func (o *initOp) getClocks2(rs *resp) {
	w := o.w // the reads-from edge uses the *first* fetch's W (Algorithm 2)
	o.absorb(rs)
	o.w = w
	o.finish()
}
