package rdma

import (
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// The pre-CPS initiator path: every remote hop performs a full park/resume
// round trip of the issuing process's goroutine. Kept verbatim behind
// Config.LegacyInitiator as the reference implementation for the
// differential determinism suite (TestInitiatorPathDifferential), which
// runs identical schedules under both paths and requires bit-identical
// fingerprints. Do not extend this path; new behaviour goes into the
// continuation-passing implementations in ops.go / init_op.go.

// roundTrip sends a request and parks the calling process until the
// response arrives. The caller's req literal is copied into a pooled
// struct, so it can live on the caller's stack; the pooled req is recycled
// once the response proves the home side is done with it. The returned resp
// is pooled too: the caller extracts what it needs and hands it back via
// releaseResp.
func (n *NIC) roundTrip(p *sim.Proc, dst network.NodeID, kind network.Kind, size int, r *req) *resp {
	rr := n.ps.grabReq()
	*rr = *r
	rr.id = n.ps.nextReq()
	rr.origin = n.id
	pd := n.ps.grabPending(p)
	n.addLegacyPending(rr.id, pd)
	n.sys.net.Send(&network.Message{Src: n.id, Dst: dst, Kind: kind, Size: size, Area: wireArea(rr.area), Payload: rr})
	for !pd.done {
		p.Park(parkReason(kind))
	}
	n.dropPending(rr.id)
	rs := pd.resp
	n.ps.releasePending(pd)
	n.ps.releaseReq(rr)
	return rs
}

// legacyPut is the parked-path put (single round trip, resumes the
// goroutine to absorb the ack).
func (n *NIC) legacyPut(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	size := network.HeaderBytes + len(data)*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindPutReq, size,
		&req{area: area, off: off, data: data, acc: acc, hasAcc: hasAcc})
	clock, err := rs.clock, asError(rs.err)
	n.ps.releaseResp(rs)
	if err != nil {
		n.ps.releaseClock(clock)
		return vclock.Masked{}, err
	}
	n.sys.coh.PatchCopy(int(n.id), area, off, data, clock)
	if n.sys.cfg.AbsorbOnPutAck {
		return clock, nil
	}
	n.ps.releaseClock(clock)
	return vclock.Masked{}, nil
}

// legacyGet is the parked-path get.
func (n *NIC) legacyGet(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindGetReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc})
	data, clock, err := rs.data, rs.clock, asError(rs.err)
	n.ps.releaseResp(rs)
	if err != nil {
		n.ps.releaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	if n.sys.cfg.AbsorbOnGetReply {
		return data, clock, nil
	}
	n.ps.releaseClock(clock)
	return data, vclock.Masked{}, nil
}

// legacyAtomic is the parked-path remote atomic.
func (n *NIC) legacyAtomic(p *sim.Proc, area memory.Area, off int, op AtomicOp, a1, a2 memory.Word, acc core.Access) (memory.Word, vclock.Masked, error) {
	size := network.HeaderBytes + 2*memory.WordBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindAtomicReq, size,
		&req{area: area, off: off, op: op, arg1: a1, arg2: a2, acc: acc, hasAcc: hasAcc})
	clock, err := rs.clock, asError(rs.err)
	var old memory.Word
	if len(rs.data) > 0 {
		old = rs.data[0]
	}
	n.ps.releaseResp(rs)
	if err != nil {
		n.ps.releaseClock(clock)
		return 0, vclock.Masked{}, err
	}
	if n.sys.cfg.Coherence.CachesRemoteReads() {
		n.sys.coh.PatchCopy(int(n.id), area, off, []memory.Word{op.Apply(old, a1, a2)}, clock)
	}
	var absorb vclock.Masked
	if n.sys.cfg.AbsorbOnPutAck {
		absorb = clock
	} else {
		n.ps.releaseClock(clock)
	}
	return old, absorb, nil
}

// legacyFetchMiss is the parked-path write-invalidate read miss (the
// home-local and cache-hit branches are shared with the CPS path and never
// reach here).
func (n *NIC) legacyFetchMiss(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	size := network.HeaderBytes
	hasAcc := n.sys.DetectionOn()
	if hasAcc {
		size += n.sys.clockBytesFor(n, chanKey{node: n.id, area: area.ID}, acc.Clock)
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindFetchReq, size,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: hasAcc})
	data, clock, err := rs.data, rs.clock, asError(rs.err)
	n.ps.releaseResp(rs)
	if err != nil {
		n.ps.releaseClock(clock)
		return nil, vclock.Masked{}, err
	}
	n.sys.coh.InstallCopy(int(n.id), area, data, clock)
	out := make([]memory.Word, count)
	copy(out, data[off:off+count])
	if n.sys.cfg.AbsorbOnGetReply {
		return out, clock, nil
	}
	n.ps.releaseClock(clock)
	return out, vclock.Masked{}, nil
}

// legacyLockArea is the parked-path user-level lock acquisition.
func (n *NIC) legacyLockArea(p *sim.Proc, area memory.Area, proc int) vclock.Masked {
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindLockReq, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}, user: true})
	clock := rs.clock
	n.ps.releaseResp(rs)
	return clock
}

// lockInternal acquires the area lock for the literal protocol's own use
// on the parked path: not observed, no clock transport (the mechanism lock
// must not create user-visible happens-before, or no race could ever be
// detected).
func (n *NIC) lockInternal(p *sim.Proc, area memory.Area, proc int) {
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindLockReq, network.HeaderBytes,
		&req{area: area, acc: core.Access{Proc: proc}})
	n.ps.releaseResp(rs)
}

// readClocks performs get_clock / get_clock_W on the parked path: one
// request, one response carrying both stored clocks.
func (n *NIC) readClocks(p *sim.Proc, area memory.Area) (v, w vclock.VC) {
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindClockRead, network.HeaderBytes,
		&req{area: area})
	v, w = rs.v, rs.w
	n.ps.releaseResp(rs)
	return v, w
}

// legacyPutLiteral is the parked-path Algorithm 1 (see putLiteral for the
// message sequence).
func (n *NIC) legacyPutLiteral(p *sim.Proc, area memory.Area, off int, data []memory.Word, acc core.Access) (vclock.Masked, error) {
	lockOn := n.sys.cfg.LocksEnabled
	if lockOn {
		n.lockInternal(p, area, acc.Proc)
	}
	v, _ := n.readClocks(p, area)
	if core.CheckWrite(acc.Clock, v) {
		n.sys.signal(n, &core.Report{
			Detector:    n.sys.cfg.Detector.Name(),
			Area:        area.ID,
			Current:     acc,
			StoredClock: v,
		}, p.Now())
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindPutReq,
		network.HeaderBytes+len(data)*memory.WordBytes,
		&req{area: area, off: off, data: data, acc: acc, hasAcc: false})
	err := asError(rs.err)
	n.ps.releaseResp(rs)
	if err == nil {
		// update_clock_W: re-fetch (Algorithm 5's get_clock), then fold the
		// write into the state.
		n.readClocks(p, area)
		n.writeClockApply(area, acc)
		// update_clock: fetch the (now updated) clocks and write them back —
		// idempotent, kept for message fidelity.
		v2, w2 := n.readClocks(p, area)
		n.writeClockRaw(area, v2, w2)
	}
	if lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	return vclock.Masked{}, err
}

// legacyGetLiteral is the parked-path Algorithm 2.
func (n *NIC) legacyGetLiteral(p *sim.Proc, area memory.Area, off, count int, acc core.Access) ([]memory.Word, vclock.Masked, error) {
	lockOn := n.sys.cfg.LocksEnabled
	if lockOn {
		n.lockInternal(p, area, acc.Proc)
	}
	_, w := n.readClocks(p, area)
	if core.CheckRead(acc.Clock, w) {
		n.sys.signal(n, &core.Report{
			Detector:    n.sys.cfg.Detector.Name(),
			Area:        area.ID,
			Current:     acc,
			StoredClock: w,
		}, p.Now())
	}
	rs := n.roundTrip(p, network.NodeID(area.Home), network.KindGetReq, network.HeaderBytes,
		&req{area: area, off: off, count: count, acc: acc, hasAcc: false})
	gotData, err := rs.data, asError(rs.err)
	n.ps.releaseResp(rs)
	var absorb vclock.Masked
	if err == nil {
		n.readClocks(p, area)
		n.writeClockApply(area, acc)
		if n.sys.cfg.AbsorbOnGetReply {
			// The write clock the read observed (reads-from edge); a raw
			// clock read carries no mask, so the absorb is dense.
			absorb = vclock.Dense(w)
		}
	}
	if lockOn {
		n.unlockInternal(area, acc.Proc)
	}
	if err != nil {
		return nil, vclock.Masked{}, err
	}
	return gotData, absorb, nil
}
