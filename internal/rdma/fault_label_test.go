package rdma

import (
	"errors"
	"strings"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/fault"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// TestFaultRetryRelabel pins the deadlock-report contract of a retrying op:
// while the watchdog retransmits, the parked process's block reason names
// the operation kind, the remote node and the attempt count — so a run that
// wedges mid-retry reports "get.req->node1 (timeout, 2 retries)", not the
// label of the phase the process first parked on.
func TestFaultRetryRelabel(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(core.NewVWDetector(), nil), func(s *memory.Space) {
		s.Alloc("x", 1, 8)
	})
	sched := fault.Schedule{
		Seed: 2,
		Events: []fault.Event{
			// Both directions dead from the first instant: every attempt is
			// dropped at send, so the op walks its whole retry budget.
			{At: 0, Op: fault.CutLink, Src: 0, Dst: 1},
			{At: 0, Op: fault.CutLink, Src: 1, Dst: 0},
		},
	}
	inj := fault.NewInjector(sched.Resolved(0), r.net)
	r.sys.EnableFaults(inj)
	inj.Arm()
	area := mustArea(t, r.space, "x")

	var p0 *sim.Proc
	var gotErr error
	p0 = r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(2)
		clk.Tick(0)
		_, _, gotErr = r.sys.NIC(0).Get(p, area, 0, 4, racc(0, 1, clk))
	})
	var labels []string
	// Probe between retransmissions: attempt 1 fires at the 50us timeout,
	// attempt 2 no earlier than 120us (timeout + base backoff), no later
	// than 140us (max jitter) — so 60us and 150us each land inside a
	// distinct retry tenure.
	r.k.At(60*sim.Microsecond, func() { labels = append(labels, p0.BlockReason()) })
	r.k.At(150*sim.Microsecond, func() { labels = append(labels, p0.BlockReason()) })
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrUnreachable) {
		t.Fatalf("get err = %v, want ErrUnreachable", gotErr)
	}
	if !strings.Contains(gotErr.Error(), "timed out after 3 retries") {
		t.Fatalf("get err = %q, want the exhausted retry budget named", gotErr)
	}
	want := []string{
		"get.req->node1 (timeout, 1 retries)",
		"get.req->node1 (timeout, 2 retries)",
	}
	if len(labels) != 2 || labels[0] != want[0] || labels[1] != want[1] {
		t.Fatalf("block reasons = %q, want %q", labels, want)
	}
}

// TestFaultOrphanReplyAbsorbed pins the idempotence mechanism directly: a
// reply whose pending entry is gone — the duplicate produced when a
// retransmitted request and its original both got through — is absorbed
// silently under faults (it panics without them), and its pooled resp still
// completes the full lifecycle.
func TestFaultOrphanReplyAbsorbed(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(core.NewVWDetector(), nil), func(s *memory.Space) {
		s.Alloc("x", 1, 8)
	})
	sched := fault.Schedule{Seed: 1}
	inj := fault.NewInjector(sched.Resolved(0), r.net)
	r.sys.EnableFaults(inj)
	inj.Arm()
	r.k.At(0, func() {
		rs := r.sys.nics[1].ps.grabResp()
		rs.id = 999 // matches no pending op: a duplicate of a completed one
		r.net.Send(&network.Message{Src: 1, Dst: 0, Kind: network.KindGetReply,
			Size: network.HeaderBytes, Payload: rs})
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < r.sys.PoolShards(); s++ {
		if b := r.sys.PoolBalanceShard(s); b != (PoolBalance{}) {
			t.Fatalf("pool shard %d unbalanced after orphan absorb: %+v", s, b)
		}
	}
}
