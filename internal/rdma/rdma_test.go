package rdma

import (
	"fmt"
	"strings"
	"testing"

	"dsmrace/internal/baseline"
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// rig is a minimal cluster for NIC-level tests.
type rig struct {
	k     *sim.Kernel
	net   *network.Network
	space *memory.Space
	sys   *System
	col   *core.Collector
}

func newRig(t *testing.T, nodes int, cfg Config, alloc func(s *memory.Space)) *rig {
	t.Helper()
	k := sim.NewKernel(sim.Config{Seed: 1})
	nw := network.New(k, nodes, network.Constant{L: 100 * sim.Nanosecond})
	space := memory.NewSpace(nodes, 64, 4096)
	if alloc != nil {
		alloc(space)
	}
	col := cfg.Collector
	if col == nil && cfg.Detector != nil {
		col = &core.Collector{}
		cfg.Collector = col
	}
	sys := NewSystem(nw, space, cfg)
	return &rig{k: k, net: nw, space: space, sys: sys, col: col}
}

func mustArea(t *testing.T, s *memory.Space, name string) memory.Area {
	t.Helper()
	a, err := s.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func wacc(proc int, seq uint64, clk vclock.VC) core.Access {
	return core.Access{Proc: proc, Seq: seq, Kind: core.Write, Clock: clk}
}

func racc(proc int, seq uint64, clk vclock.VC) core.Access {
	return core.Access{Proc: proc, Seq: seq, Kind: core.Read, Clock: clk}
}

func TestPutGetRoundTrip(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(core.NewVWDetector(), nil), func(s *memory.Space) {
		s.Alloc("x", 1, 8)
	})
	area := mustArea(t, r.space, "x")
	var got []memory.Word
	r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(2)
		clk.Tick(0)
		absorb, err := r.sys.NIC(0).Put(p, area, 2, []memory.Word{7, 8, 9}, wacc(0, 1, clk.Copy()))
		if err != nil {
			t.Errorf("put: %v", err)
		}
		clk.Merge(absorb.V) // completion edge: the writer learns the home tick
		clk.Tick(0)
		data, _, err := r.sys.NIC(0).Get(p, area, 0, 6, racc(0, 2, clk.Copy()))
		if err != nil {
			t.Errorf("get: %v", err)
		}
		got = data
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []memory.Word{0, 0, 7, 8, 9, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if r.col.Total() != 0 {
		t.Fatalf("sequential ops raced: %v", r.col.Reports())
	}
}

func TestOneSidedNoTargetProcessNeeded(t *testing.T) {
	// Node 1 has no process at all: its memory is still fully accessible —
	// the OS-bypass property of §III-B.
	r := newRig(t, 2, DefaultConfig(nil, nil), func(s *memory.Space) {
		s.Alloc("x", 1, 4)
	})
	area := mustArea(t, r.space, "x")
	ok := false
	r.k.Spawn("P0", func(p *sim.Proc) {
		if _, err := r.sys.NIC(0).Put(p, area, 0, []memory.Word{42}, wacc(0, 1, nil)); err != nil {
			t.Errorf("put: %v", err)
		}
		data, _, err := r.sys.NIC(0).Get(p, area, 0, 1, racc(0, 2, nil))
		if err != nil || data[0] != 42 {
			t.Errorf("get = %v, %v", data, err)
		}
		ok = true
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("program did not complete")
	}
}

func TestFig2MessageCounts(t *testing.T) {
	// Fig. 2: put is one data-carrying message; get is a request plus a
	// data-carrying reply. (Completion acks carry no data.)
	r := newRig(t, 2, DefaultConfig(nil, nil), func(s *memory.Space) {
		s.Alloc("x", 1, 4)
	})
	area := mustArea(t, r.space, "x")
	r.k.Spawn("P0", func(p *sim.Proc) {
		r.sys.NIC(0).Put(p, area, 0, []memory.Word{1}, wacc(0, 1, nil))
		r.sys.NIC(0).Get(p, area, 0, 1, racc(0, 2, nil))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.net.Stats().Snapshot()
	if s.Msgs[network.KindPutReq] != 1 || s.Msgs[network.KindPutAck] != 1 {
		t.Fatalf("put messages: %v", s)
	}
	if s.Msgs[network.KindGetReq] != 1 || s.Msgs[network.KindGetReply] != 1 {
		t.Fatalf("get messages: %v", s)
	}
	if s.TotalMsgs != 4 {
		t.Fatalf("total = %d", s.TotalMsgs)
	}
	// The put request carries the 8-byte payload; the get reply does too.
	if s.Bytes[network.KindPutReq] != network.HeaderBytes+8 {
		t.Fatalf("put.req bytes = %d", s.Bytes[network.KindPutReq])
	}
	if s.Bytes[network.KindGetReply] != network.HeaderBytes+8 {
		t.Fatalf("get.reply bytes = %d", s.Bytes[network.KindGetReply])
	}
}

// runFig5a drives the Fig. 5(a) scenario under the given config: P0 and P2
// put concurrently into P1's memory.
func runFig5a(t *testing.T, cfg Config) (*rig, *core.Collector) {
	t.Helper()
	r := newRig(t, 3, cfg, func(s *memory.Space) {
		s.Alloc("a", 1, 1)
	})
	area := mustArea(t, r.space, "a")
	r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(3)
		clk.Tick(0) // 100
		r.sys.NIC(0).Put(p, area, 0, []memory.Word{1}, wacc(0, 1, clk))
	})
	r.k.Spawn("P2", func(p *sim.Proc) {
		p.Sleep(10 * sim.Microsecond) // arrive strictly after m1
		clk := vclock.New(3)
		clk.Tick(2) // 001
		r.sys.NIC(2).Put(p, area, 0, []memory.Word{2}, wacc(2, 1, clk))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	return r, r.sys.Collector()
}

func TestFig5aPiggyback(t *testing.T) {
	_, col := runFig5a(t, DefaultConfig(core.NewVWDetector(), nil))
	if col.Total() != 1 {
		t.Fatalf("races = %d, want 1", col.Total())
	}
	rep := col.Reports()[0]
	if rep.StoredClock.String() != "110" || rep.Current.Clock.String() != "001" {
		t.Fatalf("clocks %s × %s, want 110 × 001", rep.StoredClock, rep.Current.Clock)
	}
}

func TestFig5aLiteralSameVerdict(t *testing.T) {
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	cfg.Protocol = ProtocolLiteral
	_, col := runFig5a(t, cfg)
	if col.Total() != 1 {
		t.Fatalf("literal races = %d, want 1", col.Total())
	}
	rep := col.Reports()[0]
	if rep.StoredClock.String() != "110" || rep.Current.Clock.String() != "001" {
		t.Fatalf("clocks %s × %s, want 110 × 001", rep.StoredClock, rep.Current.Clock)
	}
}

func TestLiteralMessageBlowup(t *testing.T) {
	// Algorithm-1-verbatim put: lock(2) + get_clock(2) + put(2) +
	// update_clock_W(2+1) + update_clock(2+1) + unlock(1) = 13 messages,
	// versus 2 for the piggyback protocol. This is the E-T2 headline.
	count := func(proto Protocol) uint64 {
		cfg := DefaultConfig(core.NewVWDetector(), nil)
		cfg.Protocol = proto
		r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
		area := mustArea(t, r.space, "x")
		r.k.Spawn("P0", func(p *sim.Proc) {
			clk := vclock.New(2)
			clk.Tick(0)
			r.sys.NIC(0).Put(p, area, 0, []memory.Word{1}, wacc(0, 1, clk))
		})
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.net.Stats().TotalMsgs
	}
	lit, pig := count(ProtocolLiteral), count(ProtocolPiggyback)
	if lit != 13 {
		t.Fatalf("literal put = %d msgs, want 13", lit)
	}
	if pig != 2 {
		t.Fatalf("piggyback put = %d msgs, want 2", pig)
	}
}

func TestLiteralGetMessageCount(t *testing.T) {
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	cfg.Protocol = ProtocolLiteral
	r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
	area := mustArea(t, r.space, "x")
	r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(2)
		clk.Tick(0)
		r.sys.NIC(0).Get(p, area, 0, 1, racc(0, 1, clk))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	// lock(2) + get_clock(2) + get(2) + update_clock(2+1) + unlock(1) = 10.
	if got := r.net.Stats().TotalMsgs; got != 10 {
		t.Fatalf("literal get = %d msgs, want 10", got)
	}
}

func TestFig3PutDelayedUntilGetFinishes(t *testing.T) {
	// A put arriving while a get occupies the area must wait (Fig. 3): the
	// get returns the pre-put data.
	cfg := DefaultConfig(nil, nil)
	cfg.MemPerWord = 10 * sim.Nanosecond // long occupancy window
	r := newRig(t, 3, cfg, func(s *memory.Space) { s.Alloc("buf", 1, 512) })
	area := mustArea(t, r.space, "buf")
	// Pre-fill with ones.
	init := make([]memory.Word, 512)
	for i := range init {
		init[i] = 1
	}
	r.space.Node(1).WritePublic(area.Off, init)

	var got []memory.Word
	r.k.Spawn("reader", func(p *sim.Proc) {
		data, _, err := r.sys.NIC(0).Get(p, area, 0, 512, racc(0, 1, nil))
		if err != nil {
			t.Errorf("get: %v", err)
		}
		got = data
	})
	r.k.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(150 * sim.Nanosecond) // arrives mid-occupancy
		twos := make([]memory.Word, 512)
		for i := range twos {
			twos[i] = 2
		}
		if _, err := r.sys.NIC(2).Put(p, area, 0, twos, wacc(2, 1, nil)); err != nil {
			t.Errorf("put: %v", err)
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, w := range got {
		if w != 1 {
			t.Fatalf("get observed the delayed put at word %d: %v — Fig. 3 violated", i, w)
		}
	}
	// And the put did land afterwards.
	final := make([]memory.Word, 1)
	r.space.Node(1).ReadPublic(area.Off, final)
	if final[0] != 2 {
		t.Fatalf("put never applied: %v", final)
	}
}

func TestFig3AblationLocksOff(t *testing.T) {
	// Without NIC locks the same schedule lets the put overtake the get's
	// occupancy window: the read observes mixed state.
	cfg := DefaultConfig(nil, nil)
	cfg.MemPerWord = 10 * sim.Nanosecond
	cfg.LocksEnabled = false
	r := newRig(t, 3, cfg, func(s *memory.Space) { s.Alloc("buf", 1, 512) })
	area := mustArea(t, r.space, "buf")
	init := make([]memory.Word, 512)
	for i := range init {
		init[i] = 1
	}
	r.space.Node(1).WritePublic(area.Off, init)

	var got []memory.Word
	r.k.Spawn("reader", func(p *sim.Proc) {
		data, _, _ := r.sys.NIC(0).Get(p, area, 0, 512, racc(0, 1, nil))
		got = data
	})
	r.k.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(150 * sim.Nanosecond)
		// A small put whose occupancy ends inside the get's long occupancy
		// window: without the lock it lands mid-get.
		r.sys.NIC(2).Put(p, area, 0, []memory.Word{2}, wacc(2, 1, nil))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("expected the unlocked put to be visible mid-get (atomicity ablation); got[0]=%d", got[0])
	}
}

func TestUserLockExcludesRemoteOps(t *testing.T) {
	cfg := DefaultConfig(nil, nil)
	r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
	area := mustArea(t, r.space, "x")
	var putDone, unlockAt sim.Time
	r.k.Spawn("holder", func(p *sim.Proc) {
		r.sys.NIC(0).LockArea(p, area, 0) //nolint:errcheck
		p.Sleep(50 * sim.Microsecond)
		unlockAt = p.Now()
		r.sys.NIC(0).UnlockArea(area, 0, vclock.Masked{})
	})
	r.k.Spawn("writer", func(p *sim.Proc) {
		p.Sleep(1 * sim.Microsecond)
		r.sys.NIC(1).Put(p, area, 0, []memory.Word{9}, wacc(1, 1, nil))
		putDone = p.Now()
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if putDone <= unlockAt {
		t.Fatalf("put completed at %v before unlock at %v", putDone, unlockAt)
	}
}

func TestLockReentrantForHolder(t *testing.T) {
	// The lock holder's own puts proceed (re-entrant NIC lock).
	cfg := DefaultConfig(nil, nil)
	r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
	area := mustArea(t, r.space, "x")
	var when sim.Time
	r.k.Spawn("holder", func(p *sim.Proc) {
		r.sys.NIC(0).LockArea(p, area, 0) //nolint:errcheck
		r.sys.NIC(0).Put(p, area, 0, []memory.Word{5}, wacc(0, 1, nil))
		when = p.Now()
		r.sys.NIC(0).UnlockArea(area, 0, vclock.Masked{})
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if when == 0 {
		t.Fatal("put under own lock never completed")
	}
}

func TestAtomicsFetchAddAndCAS(t *testing.T) {
	cfg := DefaultConfig(nil, nil)
	r := newRig(t, 3, cfg, func(s *memory.Space) { s.Alloc("ctr", 0, 1) })
	area := mustArea(t, r.space, "ctr")
	sum := 0
	for i := 1; i <= 2; i++ {
		i := i
		r.k.Spawn("adder", func(p *sim.Proc) {
			for j := 0; j < 10; j++ {
				old, _, err := r.sys.NIC(i).FetchAdd(p, area, 0, 1, wacc(i, uint64(j), nil))
				if err != nil {
					t.Errorf("fetchadd: %v", err)
				}
				sum += int(old)
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	final := make([]memory.Word, 1)
	r.space.Node(0).ReadPublic(area.Off, final)
	if final[0] != 20 {
		t.Fatalf("counter = %d, want 20", final[0])
	}

	// CAS on top of the final value.
	r2 := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("ctr", 0, 1) })
	area2 := mustArea(t, r2.space, "ctr")
	r2.k.Spawn("caser", func(p *sim.Proc) {
		old, _, err := r2.sys.NIC(1).CompareAndSwap(p, area2, 0, 0, 7, wacc(1, 1, nil))
		if err != nil || old != 0 {
			t.Errorf("cas1 = %d, %v", old, err)
		}
		old, _, err = r2.sys.NIC(1).CompareAndSwap(p, area2, 0, 0, 9, wacc(1, 2, nil))
		if err != nil || old != 7 {
			t.Errorf("cas2 must fail with old=7: %d, %v", old, err)
		}
	})
	if err := r2.k.Run(); err != nil {
		t.Fatal(err)
	}
	final2 := make([]memory.Word, 1)
	r2.space.Node(0).ReadPublic(area2.Off, final2)
	if final2[0] != 7 {
		t.Fatalf("cas result = %d, want 7", final2[0])
	}
}

func TestOutOfAreaAccessRejected(t *testing.T) {
	cfg := DefaultConfig(nil, nil)
	r := newRig(t, 2, cfg, func(s *memory.Space) {
		s.Alloc("x", 1, 2)
		s.Alloc("y", 1, 2) // adjacent — must not be reachable through x
	})
	area := mustArea(t, r.space, "x")
	r.k.Spawn("P0", func(p *sim.Proc) {
		if _, err := r.sys.NIC(0).Put(p, area, 1, []memory.Word{1, 2}, wacc(0, 1, nil)); err == nil {
			t.Error("put spilling into neighbour area must fail")
		} else if !strings.Contains(err.Error(), "outside area") {
			t.Errorf("unexpected error: %v", err)
		}
		if _, _, err := r.sys.NIC(0).Get(p, area, 0, 3, racc(0, 2, nil)); err == nil {
			t.Error("get past area end must fail")
		}
		if _, _, err := r.sys.NIC(0).FetchAdd(p, area, 5, 1, wacc(0, 3, nil)); err == nil {
			t.Error("atomic past area end must fail")
		}
		if _, _, err := r.sys.NIC(0).Get(p, area, -1, 1, racc(0, 4, nil)); err == nil {
			t.Error("negative offset must fail")
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGranularityNodeVsArea(t *testing.T) {
	// Two different areas on the same home: concurrent writes to *different*
	// areas are a race at node granularity (the figures' model) but not at
	// area granularity.
	run := func(g Granularity) int {
		cfg := DefaultConfig(core.NewVWDetector(), nil)
		cfg.Granularity = g
		r := newRig(t, 3, cfg, func(s *memory.Space) {
			s.Alloc("a", 1, 1)
			s.Alloc("b", 1, 1)
		})
		areaA := mustArea(t, r.space, "a")
		areaB := mustArea(t, r.space, "b")
		r.k.Spawn("P0", func(p *sim.Proc) {
			clk := vclock.New(3)
			clk.Tick(0)
			r.sys.NIC(0).Put(p, areaA, 0, []memory.Word{1}, wacc(0, 1, clk))
		})
		r.k.Spawn("P2", func(p *sim.Proc) {
			p.Sleep(10 * sim.Microsecond)
			clk := vclock.New(3)
			clk.Tick(2)
			r.sys.NIC(2).Put(p, areaB, 0, []memory.Word{2}, wacc(2, 1, clk))
		})
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.sys.Collector().Total()
	}
	if got := run(GranularityArea); got != 0 {
		t.Fatalf("area granularity: %d races, want 0", got)
	}
	if got := run(GranularityNode); got != 1 {
		t.Fatalf("node granularity: %d races, want 1", got)
	}
}

func TestAbsorbOnGetReply(t *testing.T) {
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
	area := mustArea(t, r.space, "x")
	var absorbed vclock.VC
	r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(2)
		clk.Tick(0)
		r.sys.NIC(0).Put(p, area, 0, []memory.Word{1}, wacc(0, 1, clk.Copy()))
		clk.Tick(0)
		_, ab, err := r.sys.NIC(0).Get(p, area, 0, 1, racc(0, 2, clk.Copy()))
		if err != nil {
			t.Error(err)
		}
		absorbed = ab.V
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	// W after the put: merge(00,10)=10, home tick -> 11.
	if absorbed.String() != "11" {
		t.Fatalf("absorbed = %s, want 11", absorbed)
	}
}

func TestStorageBytesAccounting(t *testing.T) {
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	r := newRig(t, 4, cfg, func(s *memory.Space) {
		s.Alloc("a", 0, 1)
		s.Alloc("b", 1, 1)
	})
	a := mustArea(t, r.space, "a")
	b := mustArea(t, r.space, "b")
	r.k.Spawn("P2", func(p *sim.Proc) {
		clk := vclock.New(4)
		clk.Tick(2)
		r.sys.NIC(2).Put(p, a, 0, []memory.Word{1}, wacc(2, 1, clk.Copy()))
		clk.Tick(2)
		r.sys.NIC(2).Put(p, b, 0, []memory.Word{1}, wacc(2, 2, clk.Copy()))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	perArea := 2 * (2 + 8*4 + 8) // V + W for n=4, each with a one-word occupancy mask
	if got := r.sys.StorageBytes(); got != 2*perArea {
		t.Fatalf("storage = %d, want %d", got, 2*perArea)
	}
}

func TestDetectionOffCarriesNoClockBytes(t *testing.T) {
	run := func(det core.Detector) uint64 {
		cfg := DefaultConfig(det, nil)
		r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
		area := mustArea(t, r.space, "x")
		r.k.Spawn("P0", func(p *sim.Proc) {
			clk := vclock.New(2)
			clk.Tick(0)
			r.sys.NIC(0).Put(p, area, 0, []memory.Word{1}, wacc(0, 1, clk))
		})
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.net.Stats().TotalBytes
	}
	on := run(core.NewVWDetector())
	off := run(nil)
	wantDelta := uint64(2 * (2 + 8*2)) // clock on request + merged clock on ack
	if on-off != wantDelta {
		t.Fatalf("clock bytes on wire = %d, want %d", on-off, wantDelta)
	}
}

func TestEpochDetectorWorksThroughNIC(t *testing.T) {
	cfg := DefaultConfig(baseline.NewEpoch(), nil)
	_, col := runFig5a(t, cfg)
	if col.Total() != 1 {
		t.Fatalf("epoch races = %d, want 1", col.Total())
	}
	if col.Reports()[0].Detector != "epoch" {
		t.Fatalf("detector = %s", col.Reports()[0].Detector)
	}
}

func TestProtocolAndGranularityStrings(t *testing.T) {
	if ProtocolLiteral.String() != "literal" || ProtocolPiggyback.String() != "piggyback" {
		t.Fatal("protocol names")
	}
	if GranularityArea.String() != "area" || GranularityNode.String() != "node" {
		t.Fatal("granularity names")
	}
}

func TestCompressClocksShrinksWireBytesSameVerdicts(t *testing.T) {
	run := func(compress bool) (uint64, int) {
		cfg := DefaultConfig(core.NewExactVWDetector(), nil)
		cfg.CompressClocks = compress
		r := newRig(t, 4, cfg, func(s *memory.Space) { s.Alloc("x", 3, 1) })
		area := mustArea(t, r.space, "x")
		for i := 0; i < 3; i++ {
			i := i
			r.k.Spawn(fmt.Sprintf("P%d", i), func(p *sim.Proc) {
				clk := vclock.New(4)
				for j := 0; j < 10; j++ {
					clk.Tick(i)
					absorb, err := r.sys.NIC(i).Put(p, area, 0, []memory.Word{1}, wacc(i, uint64(j+1), clk.Copy()))
					if err != nil {
						t.Errorf("put: %v", err)
					}
					if !absorb.IsNil() { // Covered: the merge would be a no-op
						clk.Merge(absorb.V)
					}
				}
			})
		}
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.net.Stats().TotalBytes, r.sys.Collector().Total()
	}
	fullBytes, fullRaces := run(false)
	deltaBytes, deltaRaces := run(true)
	if deltaRaces != fullRaces {
		t.Fatalf("compression changed verdicts: %d vs %d", deltaRaces, fullRaces)
	}
	if deltaBytes >= fullBytes {
		t.Fatalf("delta encoding did not shrink traffic: %d >= %d", deltaBytes, fullBytes)
	}
}
