package rdma

import (
	"fmt"

	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// Protocol selects the wire protocol implementing Algorithms 1–2.
type Protocol int

// Protocols.
const (
	// ProtocolPiggyback is the optimised single round-trip protocol.
	ProtocolPiggyback Protocol = iota
	// ProtocolLiteral is the paper's message sequence, verbatim.
	ProtocolLiteral
)

// String names the protocol for tables.
func (p Protocol) String() string {
	if p == ProtocolLiteral {
		return "literal"
	}
	return "piggyback"
}

// Granularity selects what a detection-state instance covers.
type Granularity int

// Granularities.
const (
	// GranularityArea keeps one (V, W) pair per shared variable — §V-A's
	// "a clock must be used for each shared piece of data".
	GranularityArea Granularity = iota
	// GranularityNode keeps one pair per node, the coarser model used by
	// the paper's figures (node clock = area clock).
	GranularityNode
	// GranularityWord keeps one pair per word: no clock false sharing at
	// the maximum storage cost — the fine end of §V-A's trade-off (E-T11).
	// Not supported by the literal protocol (Algorithms 1–2 fetch one
	// clock pair per operation).
	GranularityWord
)

// String names the granularity for tables.
func (g Granularity) String() string {
	switch g {
	case GranularityNode:
		return "node"
	case GranularityWord:
		return "word"
	default:
		return "area"
	}
}

// Config parameterises the RDMA system.
type Config struct {
	// Protocol selects literal or piggyback wiring.
	Protocol Protocol
	// Coherence selects the coherence protocol layered over the NICs:
	// write-update (the model's original single-copy behaviour; the
	// default when nil) or write-invalidate (home-based directory with
	// whole-area read caching and acknowledged invalidations). The literal
	// wire protocol supports write-update only: Algorithms 1–2 prescribe
	// the exact per-access message sequence, which caching would elide.
	Coherence coherence.Protocol
	// Granularity selects per-area or per-node detection state.
	Granularity Granularity
	// Detector is the race detector; nil disables detection entirely
	// (no clock bytes on the wire, no checks).
	Detector core.Detector
	// Collector receives race reports; required when Detector is set.
	Collector *core.Collector
	// AbsorbOnGetReply merges the area's write clock into the reader's
	// clock (reads-from edge). The paper's figures require true.
	AbsorbOnGetReply bool
	// AbsorbOnPutAck merges the updated area clock into the writer's clock.
	// The completion ack is a real message from the home, so its reception
	// is a legitimate happens-before edge; absorbing it lets a process's
	// later operations dominate its own earlier writes (including the home
	// tick). The paper's algorithms do not absorb — that stricter mode is
	// kept for figure reproduction and the E-T10 ablation.
	AbsorbOnPutAck bool
	// LocksEnabled grants each operation exclusive access to its area (Fig. 3).
	// Disabling it is the torn-access ablation.
	LocksEnabled bool
	// NICDelay is the processing time the NIC charges per remote operation.
	NICDelay sim.Time
	// MemPerWord is the memory-occupancy time per word moved, the window
	// during which the area lock is held (what delays the put in Fig. 3).
	MemPerWord sim.Time
	// Observer, when non-nil, receives apply-order notifications of memory
	// and user-lock events (trace recording).
	Observer Observer
	// CompressClocks accounts clock wire bytes with the delta encoding
	// (each channel sends only the components that changed since its last
	// message) instead of the full 2+8n fixed format. An optimisation
	// ablation for E-T2; verdicts are unaffected.
	CompressClocks bool
	// LegacyInitiator routes initiator-side operations through the pre-CPS
	// parked path (one goroutine park/resume round trip per protocol hop)
	// instead of the continuation-passing path. A test shim: it exists only
	// so the differential determinism suite can prove the two paths
	// bit-identical on the same schedules. Not for production use.
	LegacyInitiator bool
}

// Observer receives apply-order event notifications from the NICs.
// Implementations must not block; calls happen in event context.
type Observer interface {
	// Access fires when a put/get/atomic is applied at its home.
	Access(acc core.Access, area memory.Area, off, count int, at sim.Time)
	// LockAcq fires when a user-level lock is granted.
	LockAcq(proc int, area memory.Area, at sim.Time)
	// LockRel fires when a user-level lock is released.
	LockRel(proc int, area memory.Area, at sim.Time)
}

// DefaultConfig returns the configuration matching the paper's model:
// piggyback protocol, per-area clocks, completion-edge absorption, locks on.
func DefaultConfig(det core.Detector, col *core.Collector) Config {
	return Config{
		Protocol:         ProtocolPiggyback,
		Granularity:      GranularityArea,
		Detector:         det,
		Collector:        col,
		AbsorbOnGetReply: true,
		AbsorbOnPutAck:   true,
		LocksEnabled:     true,
		NICDelay:         200 * sim.Nanosecond,
		MemPerWord:       2 * sim.Nanosecond,
	}
}

// chanKey identifies a logical clock channel (one direction of one
// initiator↔area conversation) for the CompressClocks decoder state. A
// struct key keeps the per-message accounting free of string formatting.
type chanKey struct {
	ack  bool // false: request (initiator→home); true: ack/reply (home→initiator)
	node network.NodeID
	area memory.AreaID
}

// System owns the NICs, the detection state and the lock tables for a
// cluster sharing one memory space.
type System struct {
	cfg   Config
	net   *network.Network
	space *memory.Space
	nics  []*NIC
	// coh is the coherence protocol's replica bookkeeping (directory +
	// caches); a write-update run carries the no-op state.
	coh coherence.State
	// areaStates is the detection-state table at area granularity, indexed
	// directly by AreaID — the registry is sealed before the run, so the id
	// space is dense and a slice beats a map at large area counts. The other
	// granularities (node, word) fall back to the keyed map.
	areaStates []core.AreaState
	states     map[int]core.AreaState
	// elideAbsorb enables covered-absorb elision on newly created states.
	elideAbsorb bool
	reqSeq      uint64
	// lastClock remembers, per logical channel, the last clock whose bytes
	// were accounted — the receiver's decoder state for CompressClocks.
	lastClock map[chanKey]vclock.VC
	// clockPool recycles the masked clock buffers piggybacked on replies
	// (the "absorb" clocks). The simulation is single-threaded, so a free
	// list suffices: a buffer is grabbed when a reply is built and released
	// once the initiator has merged it. Values and occupancy masks travel
	// together, so sparse clocks stay sparse across the reply hop.
	clockPool []vclock.Masked
	// wordScratch is the per-word OnAccess absorb buffer reused across the
	// word-granularity fan-out loop.
	wordScratch vclock.Masked
	// reqPool, respPool, pendPool, opPool and initPool recycle the
	// per-operation request, response, legacy wait-state, home-side and
	// initiator-side continuation structs (single-threaded simulation: free
	// lists, no locking). See initOp.issue, NIC.reply and NIC.startHomeOp
	// for the ownership hand-offs. balance tracks live (grabbed minus
	// released) counts per pool — the ownership-audit invariant checked by
	// the pool-balance tests.
	reqPool  []*req
	respPool []*resp
	pendPool []*pending
	opPool   []*homeOp
	initPool []*initOp
	balance  PoolBalance
}

// PoolBalance is the live (grabbed minus released) count of every pooled
// per-operation struct. Every operation that ran to completion returns all
// of its buffers, so a finished run balances to zero everywhere; the only
// legitimate nonzero entries belong to operations a failure schedule left
// permanently stuck (e.g. a request dropped on a cut link parks its
// initiator forever, keeping its initOp — and, on the legacy path, its
// pending — alive). A nonzero balance after a clean run is a leak.
type PoolBalance struct {
	Reqs, Resps, Pendings, HomeOps, InitOps int
}

// PoolBalance returns the current live pool counts.
func (s *System) PoolBalance() PoolBalance { return s.balance }

// reclaimDropped is the network's drop hook: a message dropped on a cut
// link vanishes together with its pooled payload, which would otherwise
// leak (the initiator of a dropped round trip parks forever and can never
// release the request it no longer owns; a dropped reply's resp has no
// receiver at all). User-level payloads (barriers) are not pooled here and
// pass through untouched.
func (s *System) reclaimDropped(kind network.Kind, payload any) {
	switch pl := payload.(type) {
	case *req:
		// A user-level unlock ships the releaser's clock in a pooled buffer
		// (adopted by the home's unlock handler on arrival); reclaim it with
		// the req. Data requests must not release theirs: a piggyback access
		// clock aliases the initiating process's live clock.
		if kind == network.KindUnlock && pl.user && pl.acc.Clock != nil {
			s.ReleaseClock(vclock.Masked{V: pl.acc.Clock, M: pl.acc.ClockNZ})
		}
		s.releaseReq(pl)
	case *resp:
		// Acks, replies and lock grants piggyback pooled absorb clocks.
		s.ReleaseClock(pl.clock)
		s.releaseResp(pl)
	}
}

// grabOp takes a home-side operation struct from the pool, binding its
// continuation funcs once on first creation.
func (s *System) grabOp() *homeOp {
	s.balance.HomeOps++
	if n := len(s.opPool); n > 0 {
		o := s.opPool[n-1]
		s.opPool = s.opPool[:n-1]
		return o
	}
	o := &homeOp{}
	o.grantFn = o.grant
	o.runFn = o.run
	o.finishFn = o.finish
	return o
}

// releaseOp recycles a completed home-side operation.
func (s *System) releaseOp(o *homeOp) {
	s.balance.HomeOps--
	o.n, o.r, o.l = nil, nil, nil
	o.err = nil
	o.absorb = vclock.Masked{}
	o.old = 0
	s.opPool = append(s.opPool, o)
}

func (s *System) grabReq() *req {
	s.balance.Reqs++
	if n := len(s.reqPool); n > 0 {
		r := s.reqPool[n-1]
		s.reqPool = s.reqPool[:n-1]
		return r
	}
	return &req{}
}

func (s *System) releaseReq(r *req) {
	s.balance.Reqs--
	*r = req{}
	s.reqPool = append(s.reqPool, r)
}

func (s *System) grabResp() *resp {
	s.balance.Resps++
	if n := len(s.respPool); n > 0 {
		r := s.respPool[n-1]
		s.respPool = s.respPool[:n-1]
		return r
	}
	return &resp{}
}

func (s *System) releaseResp(r *resp) {
	s.balance.Resps--
	*r = resp{}
	s.respPool = append(s.respPool, r)
}

func (s *System) grabPending(p *sim.Proc) *pending {
	s.balance.Pendings++
	if n := len(s.pendPool); n > 0 {
		pd := s.pendPool[n-1]
		s.pendPool = s.pendPool[:n-1]
		pd.proc = p
		return pd
	}
	return &pending{proc: p}
}

func (s *System) releasePending(pd *pending) {
	s.balance.Pendings--
	*pd = pending{}
	s.pendPool = append(s.pendPool, pd)
}

// NewSystem wires one NIC per node onto the network. The space should be
// fully allocated (it is sealed here).
func NewSystem(net *network.Network, space *memory.Space, cfg Config) *System {
	if cfg.Detector != nil && cfg.Collector == nil {
		cfg.Collector = &core.Collector{}
	}
	if cfg.Granularity == GranularityWord && cfg.Protocol == ProtocolLiteral {
		panic("rdma: the literal protocol does not support word granularity")
	}
	if cfg.Coherence == nil {
		cfg.Coherence = coherence.NewWriteUpdate()
	}
	if cfg.Coherence.CachesRemoteReads() && cfg.Protocol == ProtocolLiteral {
		panic("rdma: the literal protocol supports write-update coherence only")
	}
	if cfg.Protocol == ProtocolLiteral && cfg.Detector != nil {
		// Algorithms 1–2 fetch and write back the stored clocks; a detector
		// without clock access cannot serve get_clock/put_clock. Reject the
		// combination up front — the two initiator paths would otherwise
		// fail in different ways mid-run (the parked path ignored clock-read
		// errors and tripped over nil clocks later; the CPS path would fail
		// the operation at the first hop).
		if _, ok := cfg.Detector.NewAreaState(space.N()).(core.ClockAccessor); !ok {
			panic("rdma: the literal protocol requires a clock-based detector")
		}
	}
	s := &System{cfg: cfg, net: net, space: space, states: make(map[int]core.AreaState), lastClock: make(map[chanKey]vclock.VC)}
	s.coh = cfg.Coherence.NewState(space.N())
	net.OnDrop = s.reclaimDropped
	// Covered-absorb elision (see core.AbsorbElider) is sound when the
	// reply clock's wire bytes are value-independent (fixed format, so not
	// under CompressClocks), no replica machinery consumes the reply clock
	// (write-update only), and states are not fanned out per word.
	s.elideAbsorb = cfg.Protocol == ProtocolPiggyback && !cfg.CompressClocks &&
		cfg.Granularity != GranularityWord && !cfg.Coherence.CachesRemoteReads()
	space.Seal()
	if cfg.Granularity == GranularityArea {
		s.areaStates = make([]core.AreaState, space.AreaCount())
	}
	for i := 0; i < space.N(); i++ {
		nic := &NIC{sys: s, id: network.NodeID(i), invalWait: make(map[uint64]*invalJoin), locks: make([]*lockState, space.AreaCount())}
		s.nics = append(s.nics, nic)
		net.SetHandler(nic.id, nic.handle)
	}
	return s
}

// Coherence returns the configured coherence protocol.
func (s *System) Coherence() coherence.Protocol { return s.cfg.Coherence }

// CoherenceStats returns the run's coherence event counters (hits, fetches,
// invalidations) — the traffic the network statistics cannot see.
func (s *System) CoherenceStats() coherence.Stats { return s.coh.Stats() }

// countHomeRead and countFetch attribute transport-level coherence events
// to the protocol state, when it tracks them.
func (s *System) countHomeRead() {
	if c, ok := s.coh.(coherence.Counter); ok {
		c.CountHomeRead()
	}
}

func (s *System) countFetch() {
	if c, ok := s.coh.(coherence.Counter); ok {
		c.CountFetch()
	}
}

// grabClock takes a recycled masked clock buffer from the pool (the zero
// Masked when empty — the detector then allocates one of the right size).
func (s *System) grabClock() vclock.Masked {
	if n := len(s.clockPool); n > 0 {
		c := s.clockPool[n-1]
		s.clockPool = s.clockPool[:n-1]
		return c
	}
	return vclock.Masked{}
}

// ReleaseClock returns a piggybacked clock buffer to the pool once its
// contents have been absorbed. Callers must not retain the buffer
// afterwards; releasing one still referenced elsewhere corrupts a future
// reply.
func (s *System) ReleaseClock(c vclock.Masked) {
	if !c.IsNil() {
		s.clockPool = append(s.clockPool, c)
	}
}

// GrabClock hands out a pooled clock buffer for callers (the DSM runtime)
// that ship a clock snapshot through the system and get it released on the
// receiving side — the exported counterpart of ReleaseClock.
func (s *System) GrabClock() vclock.Masked { return s.grabClock() }

// NIC returns node id's network interface.
func (s *System) NIC(id int) *NIC { return s.nics[id] }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Space returns the shared memory space.
func (s *System) Space() *memory.Space { return s.space }

// Collector returns the race report collector (nil when detection is off).
func (s *System) Collector() *core.Collector { return s.cfg.Collector }

// DetectionOn reports whether a detector is configured.
func (s *System) DetectionOn() bool { return s.cfg.Detector != nil }

// stateKey maps an area (and, at word granularity, a word) to its
// detection-state key under the configured granularity.
func (s *System) stateKey(a memory.Area, word int) int {
	switch s.cfg.Granularity {
	case GranularityNode:
		return -(a.Home + 1)
	case GranularityWord:
		// Words are globally identified by the home's public offset.
		return (a.Home+1)<<24 | (a.Off + word)
	default:
		return int(a.ID)
	}
}

// stateFor returns (lazily creating) the detection state covering area a
// (word-granularity callers pass the word index; others pass 0). Area
// granularity — the default and the hot path — indexes the dense slice.
func (s *System) stateFor(a memory.Area, word int) core.AreaState {
	if s.areaStates != nil {
		st := s.areaStates[a.ID]
		if st == nil {
			st = s.newAreaState()
			s.areaStates[a.ID] = st
		}
		return st
	}
	k := s.stateKey(a, word)
	st, ok := s.states[k]
	if !ok {
		st = s.newAreaState()
		s.states[k] = st
	}
	return st
}

// newAreaState builds a detection state with the run's options applied.
func (s *System) newAreaState() core.AreaState {
	st := s.cfg.Detector.NewAreaState(s.space.N())
	if s.elideAbsorb {
		if e, ok := st.(core.AbsorbElider); ok {
			e.EnableAbsorbElision()
		}
	}
	return st
}

// checkAccess runs the detector for an access spanning [off, off+count) of
// area a, handling the granularity fan-out: one state at node/area
// granularity, one per word at word granularity (the first report wins,
// absorbed clocks merge). It returns the clock for the initiator to absorb.
func (s *System) checkAccess(acc core.Access, a memory.Area, off, count int, at sim.Time) vclock.Masked {
	if s.cfg.Granularity != GranularityWord {
		buf := s.grabClock()
		rep, clk := s.stateFor(a, 0).OnAccess(acc, a.Home, buf)
		if clk.IsNil() {
			// Detectors without an absorb clock (epoch, lockset, nop)
			// ignore the scratch buffer; keep it in the pool.
			s.ReleaseClock(buf)
		}
		s.signal(rep, at)
		return clk
	}
	var absorb vclock.Masked
	var first *core.Report
	if count < 1 {
		count = 1
	}
	for w := off; w < off+count; w++ {
		// Each word has its own state (and so its own report scratch): the
		// first report's borrowed fields stay valid across the loop.
		rep, clk := s.stateFor(a, w).OnAccess(acc, a.Home, s.wordScratch)
		if rep != nil && first == nil {
			first = rep
		}
		if !clk.IsNil() {
			s.wordScratch = clk
			if absorb.IsNil() {
				absorb = clk.CopyInto(s.grabClock())
			} else {
				absorb.Merge(clk)
			}
		}
	}
	s.signal(first, at)
	return absorb
}

// StorageBytes sums detection-state bytes over all instantiated states —
// the measured quantity of E-T1.
func (s *System) StorageBytes() int {
	total := 0
	for _, st := range s.areaStates {
		if st != nil {
			total += st.StorageBytes()
		}
	}
	for _, st := range s.states {
		total += st.StorageBytes()
	}
	return total
}

func (s *System) nextReq() uint64 {
	s.reqSeq++
	return s.reqSeq
}

// signal forwards a detector report to the collector, stamping the time.
func (s *System) signal(rep *core.Report, at sim.Time) {
	if rep == nil || s.cfg.Collector == nil {
		return
	}
	r := *rep
	r.Time = at
	s.cfg.Collector.Signal(r)
}

// clockBytes returns the wire size of one clock under the current system
// size, or 0 when detection is off.
func (s *System) clockBytes() int {
	if !s.DetectionOn() {
		return 0
	}
	return vclock.WireSizeFor(s.space.N())
}

// replyClockBytes returns the wire bytes of the clock piggybacked on a
// reply. A Covered absorb still carries a full fixed-format clock on the
// wire — only its local materialisation was elided (which is why elision is
// disabled under CompressClocks, whose accounting needs the value).
func (s *System) replyClockBytes(ch chanKey, clk vclock.Masked) int {
	if clk.Covered {
		return s.clockBytes()
	}
	return s.clockBytesFor(ch, clk.V)
}

// clockBytesFor returns the wire bytes of transmitting clk on the given
// logical channel. With CompressClocks only the delta against the channel's
// previous clock is charged (the peer keeps the decoder state); the size is
// computed without building the encoding and the channel's decoder-state
// buffer is recycled in place.
func (s *System) clockBytesFor(ch chanKey, clk vclock.VC) int {
	if clk == nil {
		return 0
	}
	if !s.cfg.CompressClocks {
		return clk.WireSize()
	}
	prev, ok := s.lastClock[ch]
	if !ok {
		prev = vclock.New(clk.Len())
	}
	n := clk.DeltaSize(prev)
	s.lastClock[ch] = clk.CopyInto(prev)
	return n
}

// occupancy is how long the NIC holds the area lock while moving words.
func (s *System) occupancy(words int) sim.Time {
	return s.cfg.NICDelay + sim.Time(words)*s.cfg.MemPerWord
}

// AtomicOp selects a remote atomic operation.
type AtomicOp int

// Atomic operations (extensions beyond the paper's put/get).
const (
	AtomicFetchAdd AtomicOp = iota
	AtomicCAS
)

// Apply computes the stored word after the operation runs against old with
// operands a1, a2 (FetchAdd: old+a1; CAS: a2 iff old == a1). The home-side
// handler and the write-invalidate cache patch both use it, so the two
// sides cannot drift when an operation is added.
func (op AtomicOp) Apply(old, a1, a2 memory.Word) memory.Word {
	switch op {
	case AtomicFetchAdd:
		return old + a1
	case AtomicCAS:
		if old == a1 {
			return a2
		}
		return old
	default:
		panic(fmt.Sprintf("rdma: unknown atomic op %d", int(op)))
	}
}

// errString converts an error for transport in a response.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// asError converts a transported error string back to an error.
func asError(s string) error {
	if s == "" {
		return nil
	}
	return fmt.Errorf("rdma: %s", s)
}
