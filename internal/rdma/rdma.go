package rdma

import (
	"fmt"

	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/fault"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// Protocol selects the wire protocol implementing Algorithms 1–2.
type Protocol int

// Protocols.
const (
	// ProtocolPiggyback is the optimised single round-trip protocol.
	ProtocolPiggyback Protocol = iota
	// ProtocolLiteral is the paper's message sequence, verbatim.
	ProtocolLiteral
)

// String names the protocol for tables.
func (p Protocol) String() string {
	if p == ProtocolLiteral {
		return "literal"
	}
	return "piggyback"
}

// Granularity selects what a detection-state instance covers.
type Granularity int

// Granularities.
const (
	// GranularityArea keeps one (V, W) pair per shared variable — §V-A's
	// "a clock must be used for each shared piece of data".
	GranularityArea Granularity = iota
	// GranularityNode keeps one pair per node, the coarser model used by
	// the paper's figures (node clock = area clock).
	GranularityNode
	// GranularityWord keeps one pair per word: no clock false sharing at
	// the maximum storage cost — the fine end of §V-A's trade-off (E-T11).
	// Not supported by the literal protocol (Algorithms 1–2 fetch one
	// clock pair per operation).
	GranularityWord
)

// String names the granularity for tables.
func (g Granularity) String() string {
	switch g {
	case GranularityNode:
		return "node"
	case GranularityWord:
		return "word"
	default:
		return "area"
	}
}

// Config parameterises the RDMA system.
type Config struct {
	// Protocol selects literal or piggyback wiring.
	Protocol Protocol
	// Coherence selects the coherence protocol layered over the NICs:
	// write-update (the model's original single-copy behaviour; the
	// default when nil) or write-invalidate (home-based directory with
	// whole-area read caching and acknowledged invalidations). The literal
	// wire protocol supports write-update only: Algorithms 1–2 prescribe
	// the exact per-access message sequence, which caching would elide.
	Coherence coherence.Protocol
	// Granularity selects per-area or per-node detection state.
	Granularity Granularity
	// Detector is the race detector; nil disables detection entirely
	// (no clock bytes on the wire, no checks).
	Detector core.Detector
	// Collector receives race reports; required when Detector is set.
	Collector *core.Collector
	// AbsorbOnGetReply merges the area's write clock into the reader's
	// clock (reads-from edge). The paper's figures require true.
	AbsorbOnGetReply bool
	// AbsorbOnPutAck merges the updated area clock into the writer's clock.
	// The completion ack is a real message from the home, so its reception
	// is a legitimate happens-before edge; absorbing it lets a process's
	// later operations dominate its own earlier writes (including the home
	// tick). The paper's algorithms do not absorb — that stricter mode is
	// kept for figure reproduction and the E-T10 ablation.
	AbsorbOnPutAck bool
	// LocksEnabled grants each operation exclusive access to its area (Fig. 3).
	// Disabling it is the torn-access ablation.
	LocksEnabled bool
	// NICDelay is the processing time the NIC charges per remote operation.
	NICDelay sim.Time
	// MemPerWord is the memory-occupancy time per word moved, the window
	// during which the area lock is held (what delays the put in Fig. 3).
	MemPerWord sim.Time
	// Observer, when non-nil, receives apply-order notifications of memory
	// and user-lock events (trace recording).
	Observer Observer
	// CompressClocks accounts clock wire bytes with the delta encoding
	// (each channel sends only the components that changed since its last
	// message) instead of the full 2+8n fixed format. An optimisation
	// ablation for E-T2; verdicts are unaffected.
	CompressClocks bool
	// LegacyInitiator routes initiator-side operations through the pre-CPS
	// parked path (one goroutine park/resume round trip per protocol hop)
	// instead of the continuation-passing path. A test shim: it exists only
	// so the differential determinism suite can prove the two paths
	// bit-identical on the same schedules. Not for production use.
	LegacyInitiator bool
	// HomeSlotBatch coalesces data requests for the same area that land at
	// the home in the same delivery slot (the same virtual instant) into
	// one batched lock tenure: one acquisition, one NICDelay for the whole
	// batch (per-word occupancy still accrues per operation), bodies run in
	// arrival order, every reply carries its own clock. Detection verdicts
	// are untouched — the per-area check/fold sequence is the arrival order
	// either way — but batched operations complete earlier, so this is an
	// opt-in timing-model change, not fingerprint-neutral. Piggyback +
	// write-update + locks only (micro-batching groundwork; see
	// ARCHITECTURE.md).
	HomeSlotBatch bool
}

// Observer receives apply-order event notifications from the NICs.
// Implementations must not block; calls happen in event context.
type Observer interface {
	// Access fires when a put/get/atomic is applied at its home.
	Access(acc core.Access, area memory.Area, off, count int, at sim.Time)
	// LockAcq fires when a user-level lock is granted.
	LockAcq(proc int, area memory.Area, at sim.Time)
	// LockRel fires when a user-level lock is released.
	LockRel(proc int, area memory.Area, at sim.Time)
}

// DefaultConfig returns the configuration matching the paper's model:
// piggyback protocol, per-area clocks, completion-edge absorption, locks on.
func DefaultConfig(det core.Detector, col *core.Collector) Config {
	return Config{
		Protocol:         ProtocolPiggyback,
		Granularity:      GranularityArea,
		Detector:         det,
		Collector:        col,
		AbsorbOnGetReply: true,
		AbsorbOnPutAck:   true,
		LocksEnabled:     true,
		NICDelay:         200 * sim.Nanosecond,
		MemPerWord:       2 * sim.Nanosecond,
	}
}

// chanKey identifies a logical clock channel (one direction of one
// initiator↔area conversation) for the CompressClocks decoder state. A
// struct key keeps the per-message accounting free of string formatting.
type chanKey struct {
	ack  bool // false: request (initiator→home); true: ack/reply (home→initiator)
	node network.NodeID
	area memory.AreaID
}

// System owns the NICs, the detection state and the lock tables for a
// cluster sharing one memory space.
type System struct {
	cfg   Config
	net   *network.Network
	space *memory.Space
	nics  []*NIC
	// multi marks a sharded (multi-kernel) system: per-operation structs
	// carry shard-ownership tags, race reports flush through the window
	// barrier, and pool audits settle cross-shard returns there too.
	multi bool
	// coh is the coherence protocol's replica bookkeeping (directory +
	// caches); a write-update run carries the no-op state.
	coh coherence.State
	// cau and mes are coh's extended views when the protocol provides them
	// (causal memory, MESI). Asserted once at construction so the hot paths
	// gate on a nil check instead of a per-operation type assertion.
	cau coherence.CausalState
	mes coherence.MESIState
	// areaStates is the detection-state table at area granularity, indexed
	// directly by AreaID — the registry is sealed before the run, so the id
	// space is dense and a slice beats a map at large area counts. The other
	// granularities (node, word) fall back to the keyed map.
	areaStates []core.AreaState
	states     map[int]core.AreaState
	// elideAbsorb enables covered-absorb elision on newly created states.
	elideAbsorb bool
	// pools holds one pool shard per kernel shard (exactly one on a single
	// kernel). Every NIC points at the pool shard of the kernel that runs
	// its events, so pooled grabs and releases never race.
	pools []*shardPools
	// Fault layer (see fault.go). faultOn marks the layer threaded through
	// the system (request ownership flips to the home side); fArm marks a
	// hostile schedule — deadlines armed, drops and crashes possible. A
	// benign schedule keeps fArm false, so the armed-but-idle tax is a
	// handful of predictable branches.
	faultOn    bool
	fArm       bool
	inj        *fault.Injector
	ftimeout   sim.Time
	fretryBase sim.Time
	fbudget    int
	// failTab is the per-shard failover table: failTab[shard][node] is the
	// crashed node's successor home (-1 none). Flipped by injector events at
	// the same virtual instant on every shard.
	failTab [][]int32
}

// shardPools is one kernel shard's slice of the per-operation pools: the
// request/response/continuation free lists, the piggybacked clock buffers,
// the CompressClocks decoder state and the request-id counter. On a single
// kernel there is exactly one; in a sharded system each shard owns one and
// only ever touches its own — a pooled struct released on a shard that did
// not grab it goes into that shard's return bin and travels home at the
// next window barrier (settle), which is also what keeps the per-shard
// balance audit exact.
type shardPools struct {
	idx    int
	reqSeq uint64
	// idBase namespaces request ids per shard (shard index in the top bits)
	// so concurrently issued requests can never collide at a NIC's pending
	// table or a home's invalidation join. Zero on a single kernel, which
	// keeps its ids — and everything downstream — bit-identical.
	idBase uint64
	// lastClock remembers, per logical channel, the last clock whose bytes
	// were accounted — the receiver's decoder state for CompressClocks. A
	// channel's sender is a fixed node, so each channel lives in exactly one
	// shard's map and the per-channel delta stream is untouched by sharding.
	lastClock map[chanKey]vclock.VC
	// clockPool recycles the masked clock buffers piggybacked on replies
	// (the "absorb" clocks). Buffers are fungible (no audit, no owner): a
	// clock grabbed at the home and absorbed by a remote initiator is
	// recycled into the initiator shard's pool.
	clockPool []vclock.Masked
	// wordScratch is the per-word OnAccess absorb buffer reused across the
	// word-granularity fan-out loop.
	wordScratch vclock.Masked
	reqPool     []*req
	respPool    []*resp
	pendPool    []*pending
	opPool      []*homeOp
	initPool    []*initOp
	balance     PoolBalance
	// ret collects foreign-owned structs released on this shard, per owner
	// shard; the barrier settle moves them home. Nil on a single kernel.
	ret []retBin
	// batched counts data operations served through multi-op home slot
	// batches (Config.HomeSlotBatch).
	batched uint64
}

// retBin buffers pooled structs owed to one owner shard.
type retBin struct {
	reqs  []*req
	resps []*resp
	pends []*pending
	ops   []*homeOp
	inits []*initOp
}

// PoolBalance is the live (grabbed minus released) count of every pooled
// per-operation struct. Every operation that ran to completion returns all
// of its buffers, so a finished run balances to zero everywhere; the only
// legitimate nonzero entries belong to operations a failure schedule left
// permanently stuck (e.g. a request dropped on a cut link parks its
// initiator forever, keeping its initOp — and, on the legacy path, its
// pending — alive). A nonzero balance after a clean run is a leak — and in
// a sharded run the balance is kept *per shard* (a struct counts against
// the shard that grabbed it until it is released and settles home), so a
// cross-shard envelope leak shows up in exactly the shard that owns the
// leaked struct.
type PoolBalance struct {
	Reqs, Resps, Pendings, HomeOps, InitOps int
}

func (b *PoolBalance) add(o PoolBalance) {
	b.Reqs += o.Reqs
	b.Resps += o.Resps
	b.Pendings += o.Pendings
	b.HomeOps += o.HomeOps
	b.InitOps += o.InitOps
}

// PoolBalance returns the current live pool counts, summed across shards.
func (s *System) PoolBalance() PoolBalance {
	var total PoolBalance
	for _, ps := range s.pools {
		total.add(ps.balance)
	}
	return total
}

// PoolShards returns the number of pool shards (1 on a single kernel).
func (s *System) PoolShards() int { return len(s.pools) }

// PoolBalanceShard returns shard i's live pool counts. After a clean run
// (and its final barrier settle) every shard balances to zero.
func (s *System) PoolBalanceShard(i int) PoolBalance { return s.pools[i].balance }

// BatchedOps returns the number of data operations served through multi-op
// home slot batches (zero unless Config.HomeSlotBatch).
func (s *System) BatchedOps() uint64 {
	var total uint64
	for _, ps := range s.pools {
		total += ps.batched
	}
	return total
}

// settlePools is the window-barrier hook of a sharded system: move every
// foreign-owned struct released since the last barrier back to its owner's
// free list and debit the owner's balance. Serial context.
func (s *System) settlePools() {
	for _, ps := range s.pools {
		for owner := range ps.ret {
			bin := &ps.ret[owner]
			op := s.pools[owner]
			if len(bin.reqs) > 0 {
				op.balance.Reqs -= len(bin.reqs)
				op.reqPool = append(op.reqPool, bin.reqs...)
				bin.reqs = bin.reqs[:0]
			}
			if len(bin.resps) > 0 {
				op.balance.Resps -= len(bin.resps)
				op.respPool = append(op.respPool, bin.resps...)
				bin.resps = bin.resps[:0]
			}
			if len(bin.pends) > 0 {
				op.balance.Pendings -= len(bin.pends)
				op.pendPool = append(op.pendPool, bin.pends...)
				bin.pends = bin.pends[:0]
			}
			if len(bin.ops) > 0 {
				op.balance.HomeOps -= len(bin.ops)
				op.opPool = append(op.opPool, bin.ops...)
				bin.ops = bin.ops[:0]
			}
			if len(bin.inits) > 0 {
				op.balance.InitOps -= len(bin.inits)
				op.initPool = append(op.initPool, bin.inits...)
				bin.inits = bin.inits[:0]
			}
		}
	}
}

// reclaimDropped is the network's drop hook: a dropped message vanishes
// together with its pooled payload, which would otherwise leak (the
// initiator of a dropped round trip parks forever and can never release the
// request it no longer owns; a dropped reply's resp has no receiver at all).
// ctxShard is the shard in whose execution context the drop happened — the
// sender's for a send-time drop (cut link, down source, drop policy), the
// destination's for a delivery-time drop (crashed destination) — and its
// pools take the payload. With a hostile schedule armed, the fault layer is
// told first so the loss converts to recovery (retransmission marks, NACK
// bounces, vacuous invalidation acks) instead of a silent stall. User-level
// payloads (barriers) are not pooled here and pass through untouched.
func (s *System) reclaimDropped(ctxShard int, src, dst network.NodeID, kind network.Kind, payload any) {
	ps := s.pools[ctxShard]
	switch pl := payload.(type) {
	case *req:
		if s.fArm {
			switch kind {
			case network.KindInval:
				s.faultInvalLost(ps, ctxShard, src, dst, pl)
			case network.KindPutReq, network.KindGetReq, network.KindFetchReq,
				network.KindClockRead, network.KindAtomicReq, network.KindLockReq:
				s.faultReqLost(ps, ctxShard, src, dst, kind, pl)
			case network.KindUnlock, network.KindClockWrite:
				// One-way control messages have no end-to-end recovery (no
				// reply, no deadline), and losing an unlock wedges its lock
				// forever: the control plane is modelled reliable — a drop
				// converts to an immediate link-layer retransmission while
				// both endpoints are alive. A drop at a crashed endpoint
				// stays a loss (a dead destination's state died with it; a
				// dead source's late unlock must NOT release a lock the
				// crash sweep already handed to the next waiter) and
				// reclaims below.
				if ctxShard == s.net.ShardOf(src) &&
					!s.net.NodeFaulted(ctxShard, src) && !s.net.NodeFaulted(ctxShard, dst) {
					size := network.HeaderBytes
					if pl.acc.Clock != nil {
						size += pl.acc.Clock.WireSize()
					}
					if pl.v != nil {
						size += pl.v.WireSize()
					}
					if pl.w != nil {
						size += pl.w.WireSize()
					}
					if pl.obs != nil {
						size += pl.obs.WireSize()
					}
					s.net.SendExempt(&network.Message{Src: src, Dst: dst, Kind: kind,
						Size: size, Area: wireArea(pl.area), Payload: pl})
					return
				}
			}
		}
		// A user-level unlock ships the releaser's clock in a pooled buffer
		// (adopted by the home's unlock handler on arrival); reclaim it with
		// the req. Data requests must not release theirs: a piggyback access
		// clock aliases the initiating process's live clock.
		if kind == network.KindUnlock && pl.user && pl.acc.Clock != nil {
			ps.releaseClock(vclock.Masked{V: pl.acc.Clock, M: pl.acc.ClockNZ})
		}
		ps.releaseReq(pl)
	case *resp:
		if s.fArm && !s.net.NodeFaulted(ctxShard, src) && !s.net.NodeFaulted(ctxShard, dst) {
			if kind == network.KindInvalAck {
				// Control-plane reliable (like Unlock above): a lost ack
				// would wedge the home's invalidation round forever.
				s.net.SendExempt(&network.Message{Src: src, Dst: dst, Kind: kind,
					Size: network.HeaderBytes, Payload: pl})
				return
			}
			if pl.err != nackErr && pl.err != lostErr {
				// Reply drop — probabilistic or cut link. Reuse the pooled
				// resp as a loss notification in the reply's own kind. The
				// bounce must cover cut links too: relying on the watchdog's
				// link check alone races with heals — a reply dropped late
				// in an outage whose initiator's deadline expires after the
				// heal sees a healthy peer and waits forever. The bounce is
				// evidence the initiator would legitimately infer from its
				// own timeout, just delivered at a deterministic instant.
				ps.releaseClock(pl.clock)
				pl.clock = vclock.Masked{}
				pl.data, pl.v, pl.w = nil, nil, nil
				pl.err = lostErr
				s.net.SendExempt(&network.Message{Src: src, Dst: dst, Kind: kind,
					Size: network.HeaderBytes, Payload: pl})
				return
			}
		}
		// Acks, replies and lock grants piggyback pooled absorb clocks.
		ps.releaseClock(pl.clock)
		ps.releaseResp(pl)
	}
}

// grabOp takes a home-side operation struct from the pool, binding its
// continuation funcs once on first creation.
func (ps *shardPools) grabOp() *homeOp {
	ps.balance.HomeOps++
	if n := len(ps.opPool); n > 0 {
		o := ps.opPool[n-1]
		ps.opPool = ps.opPool[:n-1]
		o.owner = int32(ps.idx)
		return o
	}
	o := &homeOp{owner: int32(ps.idx)}
	o.grantFn = o.grant
	o.runFn = o.run
	o.finishFn = o.finish
	o.occupyFn = o.occupy
	return o
}

// releaseOp recycles a completed home-side operation.
func (ps *shardPools) releaseOp(o *homeOp) {
	owner := o.owner
	o.n, o.r, o.l = nil, nil, nil
	o.err = nil
	o.absorb = vclock.Masked{}
	o.old = 0
	o.ver = 0
	if int(owner) == ps.idx {
		ps.balance.HomeOps--
		ps.opPool = append(ps.opPool, o)
		return
	}
	ps.ret[owner].ops = append(ps.ret[owner].ops, o)
}

func (ps *shardPools) grabReq() *req {
	ps.balance.Reqs++
	if n := len(ps.reqPool); n > 0 {
		r := ps.reqPool[n-1]
		ps.reqPool = ps.reqPool[:n-1]
		r.owner = int32(ps.idx)
		return r
	}
	return &req{owner: int32(ps.idx)}
}

func (ps *shardPools) releaseReq(r *req) {
	owner := r.owner
	*r = req{}
	if int(owner) == ps.idx {
		ps.balance.Reqs--
		ps.reqPool = append(ps.reqPool, r)
		return
	}
	ps.ret[owner].reqs = append(ps.ret[owner].reqs, r)
}

func (ps *shardPools) grabResp() *resp {
	ps.balance.Resps++
	if n := len(ps.respPool); n > 0 {
		r := ps.respPool[n-1]
		ps.respPool = ps.respPool[:n-1]
		r.owner = int32(ps.idx)
		return r
	}
	return &resp{owner: int32(ps.idx)}
}

func (ps *shardPools) releaseResp(r *resp) {
	owner := r.owner
	*r = resp{}
	if int(owner) == ps.idx {
		ps.balance.Resps--
		ps.respPool = append(ps.respPool, r)
		return
	}
	ps.ret[owner].resps = append(ps.ret[owner].resps, r)
}

func (ps *shardPools) grabPending(p *sim.Proc) *pending {
	ps.balance.Pendings++
	if n := len(ps.pendPool); n > 0 {
		pd := ps.pendPool[n-1]
		ps.pendPool = ps.pendPool[:n-1]
		pd.proc = p
		pd.owner = int32(ps.idx)
		return pd
	}
	return &pending{proc: p, owner: int32(ps.idx)}
}

func (ps *shardPools) releasePending(pd *pending) {
	owner := pd.owner
	*pd = pending{}
	if int(owner) == ps.idx {
		ps.balance.Pendings--
		ps.pendPool = append(ps.pendPool, pd)
		return
	}
	ps.ret[owner].pends = append(ps.ret[owner].pends, pd)
}

// NewSystem wires one NIC per node onto the network. The space should be
// fully allocated (it is sealed here).
func NewSystem(net *network.Network, space *memory.Space, cfg Config) *System {
	if cfg.Detector != nil && cfg.Collector == nil {
		cfg.Collector = &core.Collector{}
	}
	if cfg.Granularity == GranularityWord && cfg.Protocol == ProtocolLiteral {
		panic("rdma: the literal protocol does not support word granularity")
	}
	if cfg.Coherence == nil {
		cfg.Coherence = coherence.NewWriteUpdate()
	}
	if cfg.Coherence.CachesRemoteReads() && cfg.Protocol == ProtocolLiteral {
		panic("rdma: the literal protocol supports write-update coherence only")
	}
	if k := cfg.Coherence.Kind(); cfg.LegacyInitiator && (k == coherence.Causal || k == coherence.MESI) {
		// The legacy parked path predates versioned installs, silent writes
		// and recall routing; it exists only to differentially test the CPS
		// path on the original protocols.
		panic("rdma: LegacyInitiator supports write-update and write-invalidate coherence only")
	}
	if cfg.Protocol == ProtocolLiteral && cfg.Detector != nil {
		// Algorithms 1–2 fetch and write back the stored clocks; a detector
		// without clock access cannot serve get_clock/put_clock. Reject the
		// combination up front — the two initiator paths would otherwise
		// fail in different ways mid-run (the parked path ignored clock-read
		// errors and tripped over nil clocks later; the CPS path would fail
		// the operation at the first hop).
		if _, ok := cfg.Detector.NewAreaState(space.N()).(core.ClockAccessor); !ok {
			panic("rdma: the literal protocol requires a clock-based detector")
		}
	}
	if cfg.HomeSlotBatch {
		if cfg.Protocol != ProtocolPiggyback || cfg.Coherence.CachesRemoteReads() || !cfg.LocksEnabled {
			panic("rdma: HomeSlotBatch requires the piggyback protocol, write-update coherence and locks enabled")
		}
	}
	s := &System{cfg: cfg, net: net, space: space, states: make(map[int]core.AreaState)}
	s.multi = net.Multi() != nil
	shards := net.ShardCount()
	for i := 0; i < shards; i++ {
		ps := &shardPools{idx: i, lastClock: make(map[chanKey]vclock.VC)}
		if shards > 1 {
			// Namespaced ids: shard in the top 16 bits, counter below. A
			// single kernel keeps idBase 0, i.e. the historical id stream.
			ps.idBase = uint64(i) << 48
			ps.ret = make([]retBin, shards)
		}
		s.pools = append(s.pools, ps)
	}
	if mk := net.Multi(); mk != nil {
		mk.OnBarrier(s.settlePools)
	}
	s.coh = cfg.Coherence.NewState(space.N(), space.AreaCount())
	s.cau, _ = s.coh.(coherence.CausalState)
	s.mes, _ = s.coh.(coherence.MESIState)
	net.OnDrop = s.reclaimDropped
	// Covered-absorb elision (see core.AbsorbElider) is sound when the
	// reply clock's wire bytes are value-independent (fixed format, so not
	// under CompressClocks), no replica machinery consumes the reply clock
	// (write-update only), and states are not fanned out per word.
	s.elideAbsorb = cfg.Protocol == ProtocolPiggyback && !cfg.CompressClocks &&
		cfg.Granularity != GranularityWord && !cfg.Coherence.CachesRemoteReads()
	space.Seal()
	if cfg.Granularity == GranularityArea {
		s.areaStates = make([]core.AreaState, space.AreaCount())
	}
	for i := 0; i < space.N(); i++ {
		nic := &NIC{
			sys:       s,
			id:        network.NodeID(i),
			k:         net.KernelFor(network.NodeID(i)),
			ps:        s.pools[net.ShardOf(network.NodeID(i))],
			invalWait: make(map[uint64]*invalJoin),
			locks:     make([]*lockState, space.AreaCount()),
		}
		s.nics = append(s.nics, nic)
		net.SetHandler(nic.id, nic.handle)
	}
	return s
}

// Coherence returns the configured coherence protocol.
func (s *System) Coherence() coherence.Protocol { return s.cfg.Coherence }

// CoherenceStats returns the run's coherence event counters (hits, fetches,
// invalidations) — the traffic the network statistics cannot see.
func (s *System) CoherenceStats() coherence.Stats { return s.coh.Stats() }

// FlushDirtyCopies writes every cache line newer than home memory (MESI's
// M lines, mutated by silent writes) back into the space, so an end-of-run
// memory snapshot reflects every committed write. No-op for protocols whose
// home copy is always current. Serial context, after the simulation ends.
func (s *System) FlushDirtyCopies() {
	f, ok := s.coh.(coherence.DirtyFlusher)
	if !ok {
		return
	}
	f.FlushDirty(func(node int, id memory.AreaID, data []memory.Word) {
		a, err := s.space.AreaByID(id)
		if err != nil {
			panic(err)
		}
		if err := s.space.Node(a.Home).WritePublic(a.Off, data); err != nil {
			panic(err)
		}
	})
}

// countHomeRead and countFetch attribute transport-level coherence events
// to the protocol state, when it tracks them; node is the node in whose
// execution context the event happened.
func (s *System) countHomeRead(node int) {
	if c, ok := s.coh.(coherence.Counter); ok {
		c.CountHomeRead(node)
	}
}

func (s *System) countFetch(node int) {
	if c, ok := s.coh.(coherence.Counter); ok {
		c.CountFetch(node)
	}
}

// grabClock takes a recycled masked clock buffer from the shard's pool (the
// zero Masked when empty — the detector then allocates one of the right
// size).
func (ps *shardPools) grabClock() vclock.Masked {
	if n := len(ps.clockPool); n > 0 {
		c := ps.clockPool[n-1]
		ps.clockPool = ps.clockPool[:n-1]
		return c
	}
	return vclock.Masked{}
}

// releaseClock returns a piggybacked clock buffer to the shard's pool once
// its contents have been absorbed. Callers must not retain the buffer
// afterwards; releasing one still referenced elsewhere corrupts a future
// reply. Clock buffers are fungible and unaudited, so a buffer grabbed on
// another shard simply changes pools here.
func (ps *shardPools) releaseClock(c vclock.Masked) {
	if !c.IsNil() {
		ps.clockPool = append(ps.clockPool, c)
	}
}

// ReleaseClock returns a clock buffer via node 0's pool shard — the
// single-kernel compatibility path (sharded callers go through the NIC).
func (s *System) ReleaseClock(c vclock.Masked) { s.pools[0].releaseClock(c) }

// GrabClock hands out a pooled clock buffer for callers (the DSM runtime)
// that ship a clock snapshot through the system and get it released on the
// receiving side — the exported counterpart of ReleaseClock. Single-kernel
// compatibility path; sharded callers go through the NIC.
func (s *System) GrabClock() vclock.Masked { return s.pools[0].grabClock() }

// NIC returns node id's network interface.
func (s *System) NIC(id int) *NIC { return s.nics[id] }

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Space returns the shared memory space.
func (s *System) Space() *memory.Space { return s.space }

// Collector returns the race report collector (nil when detection is off).
func (s *System) Collector() *core.Collector { return s.cfg.Collector }

// DetectionOn reports whether a detector is configured.
func (s *System) DetectionOn() bool { return s.cfg.Detector != nil }

// stateKey maps an area (and, at word granularity, a word) to its
// detection-state key under the configured granularity.
func (s *System) stateKey(a memory.Area, word int) int {
	switch s.cfg.Granularity {
	case GranularityNode:
		return -(a.Home + 1)
	case GranularityWord:
		// Words are globally identified by the home's public offset.
		return (a.Home+1)<<24 | (a.Off + word)
	default:
		return int(a.ID)
	}
}

// stateFor returns (lazily creating) the detection state covering area a
// (word-granularity callers pass the word index; others pass 0). Area
// granularity — the default and the hot path — indexes the dense slice.
func (s *System) stateFor(a memory.Area, word int) core.AreaState {
	if s.areaStates != nil {
		st := s.areaStates[a.ID]
		if st == nil {
			st = s.newAreaState()
			s.areaStates[a.ID] = st
		}
		return st
	}
	k := s.stateKey(a, word)
	st, ok := s.states[k]
	if !ok {
		st = s.newAreaState()
		s.states[k] = st
	}
	return st
}

// newAreaState builds a detection state with the run's options applied.
func (s *System) newAreaState() core.AreaState {
	st := s.cfg.Detector.NewAreaState(s.space.N())
	if s.elideAbsorb {
		if e, ok := st.(core.AbsorbElider); ok {
			e.EnableAbsorbElision()
		}
	}
	return st
}

// checkAccess runs the detector for an access spanning [off, off+count) of
// area a, handling the granularity fan-out: one state at node/area
// granularity, one per word at word granularity (the first report wins,
// absorbed clocks merge). It returns the clock for the initiator to absorb.
// n is the NIC in whose execution context the check runs (the home, or the
// reader itself for home-local reads) — its shard owns the scratch buffers
// and orders any report.
func (s *System) checkAccess(n *NIC, acc core.Access, a memory.Area, off, count int, at sim.Time) vclock.Masked {
	ps := n.ps
	if s.cfg.Granularity != GranularityWord {
		buf := ps.grabClock()
		rep, clk := s.stateFor(a, 0).OnAccess(acc, a.Home, buf)
		if clk.IsNil() {
			// Detectors without an absorb clock (epoch, lockset, nop)
			// ignore the scratch buffer; keep it in the pool.
			ps.releaseClock(buf)
		}
		s.signal(n, rep, at)
		return clk
	}
	var absorb vclock.Masked
	var first *core.Report
	if count < 1 {
		count = 1
	}
	for w := off; w < off+count; w++ {
		// Each word has its own state (and so its own report scratch): the
		// first report's borrowed fields stay valid across the loop.
		rep, clk := s.stateFor(a, w).OnAccess(acc, a.Home, ps.wordScratch)
		if rep != nil && first == nil {
			first = rep
		}
		if !clk.IsNil() {
			ps.wordScratch = clk
			if absorb.IsNil() {
				absorb = clk.CopyInto(ps.grabClock())
			} else {
				absorb.Merge(clk)
			}
		}
	}
	s.signal(n, first, at)
	return absorb
}

// StorageBytes sums detection-state bytes over all instantiated states —
// the measured quantity of E-T1.
func (s *System) StorageBytes() int {
	total := 0
	for _, st := range s.areaStates {
		if st != nil {
			total += st.StorageBytes()
		}
	}
	//dsmlint:ordered integer sum; the fold commutes
	for _, st := range s.states {
		total += st.StorageBytes()
	}
	return total
}

func (ps *shardPools) nextReq() uint64 {
	ps.reqSeq++
	return ps.idBase | ps.reqSeq
}

// signal forwards a detector report to the collector, stamping the time.
// n is the NIC in whose context the report was produced. On a sharded
// system the collector is shared across shards, so the (cloned) report is
// deferred through the window barrier's ordered replay — it reaches the
// collector at the signalling event's exact position in the serial order,
// keeping report order, collector limits and interning bit-identical.
func (s *System) signal(n *NIC, rep *core.Report, at sim.Time) {
	if rep == nil || s.cfg.Collector == nil {
		return
	}
	r := *rep
	r.Time = at
	if !s.multi {
		s.cfg.Collector.Signal(r)
		return
	}
	rc := r.Clone() // the borrowed scratch fields won't survive the window
	// signal is context-polymorphic: under !multi it runs the collector
	// inline (any context), and the s.multi guard above means this branch
	// executes only from CPS delivery continuations inside a window.
	//dsmlint:eventhandler reviewed: multi-mode signal calls come only from event context
	n.k.LogOrdered(func() { s.cfg.Collector.Signal(rc) })
}

// clockBytes returns the wire size of one clock under the current system
// size, or 0 when detection is off.
func (s *System) clockBytes() int {
	if !s.DetectionOn() {
		return 0
	}
	return vclock.WireSizeFor(s.space.N())
}

// replyClockBytes returns the wire bytes of the clock piggybacked on a
// reply. A Covered absorb still carries a full fixed-format clock on the
// wire — only its local materialisation was elided (which is why elision is
// disabled under CompressClocks, whose accounting needs the value). The
// decoder state lives with the sending NIC's shard (n), which is the only
// context that ever accounts this channel.
func (s *System) replyClockBytes(n *NIC, ch chanKey, clk vclock.Masked) int {
	if clk.Covered {
		return s.clockBytes()
	}
	return s.clockBytesFor(n, ch, clk.V)
}

// clockBytesFor returns the wire bytes of transmitting clk on the given
// logical channel. With CompressClocks only the delta against the channel's
// previous clock is charged (the peer keeps the decoder state); the size is
// computed without building the encoding and the channel's decoder-state
// buffer is recycled in place. A channel is written only from its sender's
// shard, and the delta stream depends only on that channel's own history,
// so per-shard decoder maps reproduce the single-kernel accounting exactly.
func (s *System) clockBytesFor(n *NIC, ch chanKey, clk vclock.VC) int {
	if clk == nil {
		return 0
	}
	if !s.cfg.CompressClocks {
		return clk.WireSize()
	}
	ps := n.ps
	prev, ok := ps.lastClock[ch]
	if !ok {
		prev = vclock.New(clk.Len())
	}
	size := clk.DeltaSize(prev)
	ps.lastClock[ch] = clk.CopyInto(prev)
	return size
}

// occupancy is how long the NIC holds the area lock while moving words.
func (s *System) occupancy(words int) sim.Time {
	return s.cfg.NICDelay + sim.Time(words)*s.cfg.MemPerWord
}

// AtomicOp selects a remote atomic operation.
type AtomicOp int

// Atomic operations (extensions beyond the paper's put/get).
const (
	AtomicFetchAdd AtomicOp = iota
	AtomicCAS
)

// Apply computes the stored word after the operation runs against old with
// operands a1, a2 (FetchAdd: old+a1; CAS: a2 iff old == a1). The home-side
// handler and the write-invalidate cache patch both use it, so the two
// sides cannot drift when an operation is added.
func (op AtomicOp) Apply(old, a1, a2 memory.Word) memory.Word {
	switch op {
	case AtomicFetchAdd:
		return old + a1
	case AtomicCAS:
		if old == a1 {
			return a2
		}
		return old
	default:
		panic(fmt.Sprintf("rdma: unknown atomic op %d", int(op)))
	}
}

// errString converts an error for transport in a response.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// asError converts a transported error string back to an error.
func asError(s string) error {
	if s == "" {
		return nil
	}
	return fmt.Errorf("rdma: %s", s)
}
