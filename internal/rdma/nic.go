package rdma

import (
	"fmt"

	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// req is the payload of every NIC request message.
type req struct {
	id     uint64
	owner  int32 // pool shard that grabbed this struct
	origin network.NodeID
	area   memory.Area
	off    int // word offset within the area
	count  int
	data   []memory.Word
	acc    core.Access
	hasAcc bool // acc carries a clock (detection on)
	user   bool // user-level lock operation (observed, clock-carrying)
	// Literal-protocol clock operations:
	apply bool      // ClockWrite: fold acc into the area state (Algorithm 5)
	v, w  vclock.VC // ClockWrite raw: overwrite stored clocks
	// Atomics:
	op         AtomicOp
	arg1, arg2 memory.Word
	// Causal coherence: the sender's observation-clock snapshot (a fresh
	// copy, never aliased to live protocol state) — the writer's on a put,
	// the releaser's on a user-level unlock.
	obs vclock.VC
	// MESI: this invalidation is an exclusivity recall — downgrade and write
	// dirty data back instead of dropping the copy.
	recall bool
}

// resp is the payload of every NIC response message.
type resp struct {
	id    uint64
	owner int32 // pool shard that grabbed this struct
	data  []memory.Word
	v, w  vclock.VC     // clock reads
	clock vclock.Masked // merged clock for the initiator to absorb
	err   string
	// Causal coherence: the committed write's area version (put/atomic acks)
	// or the area's current version (fetch replies), plus the area dependency
	// clock (a fresh copy owned by the receiver) on fetch replies and
	// user-level lock grants.
	ver uint64
	dep vclock.VC
	// MESI: the fetch reply grants the reader exclusivity (sole sharer).
	excl bool
}

// pending tracks a legacy-path initiator-side operation awaiting its
// response (the CPS path registers the initOp itself — see pendEntry).
type pending struct {
	proc  *sim.Proc
	done  bool
	resp  *resp
	owner int32 // pool shard that grabbed this struct
}

// invalJoin tracks a home-side write waiting for invalidation
// acknowledgements. Every invalidation message of the write points at the
// same join; the last acknowledgement runs finish (which releases the area
// lock and sends the write's completion).
type invalJoin struct {
	left   int
	finish func()
	// MESI recall rounds: the acknowledgement may carry the downgraded
	// owner's dirty data, written back into the area before finish runs, and
	// the ack always clears the directory's exclusivity record.
	recall bool
	area   memory.Area
}

// NIC is one node's network interface. Remote operations addressed to this
// node are served inside its message handler — the owning process is never
// involved (OS bypass, §III-B).
type NIC struct {
	sys *System
	id  network.NodeID
	// k is the kernel that executes this node's events — the owning shard
	// of a multi-kernel run, or the run's single kernel.
	k *sim.Kernel
	// ps is the pool shard of that kernel: every pooled grab/release in
	// this NIC's execution context goes through it.
	ps *shardPools
	// pending tracks initiator-side operations awaiting responses. A node
	// runs one process, so only a handful of operations are ever in flight
	// at once: a tiny linear-scanned table beats a map on every round trip.
	pending []pendEntry
	// invalWait joins in-flight invalidation rounds issued by this (home)
	// NIC, keyed by each invalidation's request id.
	invalWait map[uint64]*invalJoin
	// locks is the per-area lock table, indexed by AreaID (dense: the
	// space is sealed before the run); entries materialise on first use.
	locks []*lockState
	// batches tracks the open home slot batches of the current instant
	// (Config.HomeSlotBatch); batchPool recycles batch structs.
	batches   []*slotBatch
	batchPool []*slotBatch
	// Coalesced fault watchdog (see fault.go): one armed deadline-scan event
	// covers every in-flight op of this NIC. wdFn is bound once at
	// EnableFaults so arming never allocates a closure.
	wdArmed bool
	wdAt    sim.Time
	wdFn    func()
	// UserHandler receives KindUser and KindBarrier messages for the
	// runtime layered above (e.g. barrier coordination).
	UserHandler func(m *network.Message)
}

// pendEntry is one in-flight request in a NIC's pending table: a CPS
// initiator operation (op) whose reply continuation runs in delivery-event
// context, or a legacy parked-path wait state (pd).
type pendEntry struct {
	id uint64
	op *initOp
	pd *pending
}

// addPending registers an in-flight CPS request.
func (n *NIC) addPending(id uint64, op *initOp) {
	n.pending = append(n.pending, pendEntry{id: id, op: op})
}

// addLegacyPending registers an in-flight legacy-path request.
func (n *NIC) addLegacyPending(id uint64, pd *pending) {
	n.pending = append(n.pending, pendEntry{id: id, pd: pd})
}

// findPending resolves a response id to its table index, or -1.
func (n *NIC) findPending(id uint64) int {
	for i := range n.pending {
		if n.pending[i].id == id {
			return i
		}
	}
	return -1
}

// dropPendingAt removes the table entry at index i.
func (n *NIC) dropPendingAt(i int) {
	last := len(n.pending) - 1
	n.pending[i] = n.pending[last]
	n.pending[last] = pendEntry{}
	n.pending = n.pending[:last]
}

// dropPending removes a completed request from the table.
func (n *NIC) dropPending(id uint64) {
	if i := n.findPending(id); i >= 0 {
		n.dropPendingAt(i)
	}
}

// ID returns the node this NIC belongs to.
func (n *NIC) ID() network.NodeID { return n.id }

// Kernel returns the kernel that executes this node's events (the owning
// shard of a multi-kernel run, or the single kernel).
func (n *NIC) Kernel() *sim.Kernel { return n.k }

// GrabClock hands out a pooled clock buffer from this node's shard — for
// callers (the DSM runtime) that ship a clock snapshot through the system
// and have it released on the receiving side.
func (n *NIC) GrabClock() vclock.Masked { return n.ps.grabClock() }

// ReleaseClock returns an absorbed clock buffer to this node's shard pool.
// Callers must not retain the buffer afterwards.
func (n *NIC) ReleaseClock(c vclock.Masked) { n.ps.releaseClock(c) }

func (n *NIC) lockFor(a memory.AreaID) *lockState {
	l := n.locks[a]
	if l == nil {
		// Under faults a crash sweep may force-expire a tenure whose late
		// continuation still releases; lenient locks absorb that instead of
		// panicking.
		l = &lockState{lenient: n.sys.faultOn}
		n.locks[a] = l
	}
	return l
}

// handle is the NIC's delivery handler, invoked by the network layer inside
// the delivery event for each arriving message — the root of the
// event-context region on the home/receive side.
//
//dsmlint:eventhandler
func (n *NIC) handle(m *network.Message) {
	switch m.Kind {
	case network.KindPutAck, network.KindGetReply, network.KindFetchReply,
		network.KindClockReadResp, network.KindAtomicReply, network.KindLockGrant:
		r := m.Payload.(*resp)
		if r.err == nackErr {
			// A bounced request (dropped at a crashed destination): not a
			// reply — pull the op's deadline in so the watchdog acts now.
			n.nackPending(r)
			return
		}
		if r.err == lostErr {
			// A bounced reply (served, then dropped in transit): retry
			// idempotent ops now; fail atomics — the original applied.
			n.lostPending(r)
			return
		}
		i := n.findPending(r.id)
		if i < 0 {
			if n.sys.faultOn {
				// A duplicate reply: the retransmitted request and the
				// original both got through, and the first reply already
				// completed the op. Idempotence is exactly this absorption.
				n.ps.releaseClock(r.clock)
				n.ps.releaseResp(r)
				return
			}
			panic(fmt.Sprintf("rdma: node %d: orphan response %d", n.id, r.id))
		}
		if op := n.pending[i].op; op != nil {
			// CPS initiator: the reply continuation absorbs the resp right
			// here in delivery-event context; the process is woken only by
			// the operation's final hop.
			n.dropPendingAt(i)
			op.next(r)
			return
		}
		pd := n.pending[i].pd
		pd.resp = r
		pd.done = true
		pd.proc.Ready()
	case network.KindPutReq:
		n.handlePut(m)
	case network.KindGetReq:
		n.handleGet(m)
	case network.KindFetchReq:
		n.handleFetch(m)
	case network.KindInval:
		n.handleInval(m)
	case network.KindInvalAck:
		n.handleInvalAck(m)
	case network.KindUpdate:
		// Causal memory: a home-fanned update. The payload is shared by the
		// whole fan-out and immutable; nothing to release.
		u := m.Payload.(*updateMsg)
		n.sys.cau.ApplyUpdate(int(n.id), u.area, u.off, u.data, u.ver, u.dep)
	case network.KindLockReq:
		n.handleLock(m)
	case network.KindUnlock:
		n.handleUnlock(m)
	case network.KindClockRead:
		n.handleClockRead(m)
	case network.KindClockWrite:
		n.handleClockWrite(m)
	case network.KindAtomicReq:
		n.handleAtomic(m)
	case network.KindUser, network.KindBarrier:
		if n.UserHandler == nil {
			panic(fmt.Sprintf("rdma: node %d: no user handler", n.id))
		}
		n.UserHandler(m)
	default:
		panic(fmt.Sprintf("rdma: node %d: unexpected kind %v", n.id, m.Kind))
	}
}

// parkReasons caches the "rdma <kind>" park labels so the per-operation
// wait loop never builds a string. Indexed by message kind.
var parkReasons = func() []string {
	labels := make([]string, int(network.KindUser)+1)
	for k := range labels {
		labels[k] = "rdma " + network.Kind(k).String()
	}
	return labels
}()

func parkReason(k network.Kind) string {
	if int(k) < len(parkReasons) {
		return parkReasons[k]
	}
	return "rdma " + k.String()
}

// wireArea converts a protocol area to the packet-header area tag: AreaID+1,
// keeping 0 for packets that are not area-addressed. The tag feeds the
// exploration layer's independence analysis only — it never changes routing,
// sizes or delivery behaviour.
func wireArea(a memory.Area) int { return int(a.ID) + 1 }

// send transmits a one-way request (no response expected). The home-side
// handler recycles the pooled req when it is done.
func (n *NIC) send(dst network.NodeID, kind network.Kind, size int, r *req) {
	rr := n.ps.grabReq()
	owner := rr.owner
	*rr = *r
	rr.owner = owner
	rr.origin = n.id
	n.sys.net.Send(&network.Message{Src: n.id, Dst: dst, Kind: kind, Size: size, Area: wireArea(rr.area), Payload: rr})
}

// reply sends a response back to the request's origin. The caller's resp
// literal is copied into a pooled struct released by the initiator.
func (n *NIC) reply(r *req, kind network.Kind, size int, rs *resp) {
	rr := n.ps.grabResp()
	owner := rr.owner
	*rr = *rs
	rr.owner = owner
	rr.id = r.id
	n.sys.net.Send(&network.Message{Src: n.id, Dst: r.origin, Kind: kind, Size: size, Area: wireArea(r.area), Payload: rr})
}

// homeOp is a pooled home-side operation continuation: lock grant →
// occupancy delay → body → (invalidation round) → reply. Its continuation
// funcs are bound once when the struct is first created, so serving a
// request allocates no closures — at hundreds of thousands of operations
// per run the per-op closure chain was a measurable slice of both allocator
// and GC time.
type homeOp struct {
	n      *NIC
	r      *req
	kind   network.Kind // request kind (put/get/atomic/fetch)
	l      *lockState   // nil when locking is disabled
	owner  int32        // pool shard that grabbed this struct
	err    error
	absorb vclock.Masked
	old    memory.Word // atomic: previous stored value
	ver    uint64      // causal: the committed write's area version

	grantFn  func() // o.grant, bound once
	runFn    func() // o.run, bound once
	finishFn func() // o.finish, bound once
	occupyFn func() // o.occupy, bound once (MESI recall continuation)
}

// updateMsg is a causal-memory update fanned from the home to every sharer
// after a committed write. One instance is shared by the whole fan-out and is
// immutable after send — data and dep are fresh copies owned by the message.
// It is not pooled: a drop under faults simply loses it (the version gap rule
// makes updates loss-tolerant), and the drop hook passes unknown payloads
// through untouched.
type updateMsg struct {
	area memory.Area
	off  int
	data []memory.Word
	ver  uint64
	dep  vclock.VC
}

// startHomeOp begins serving a data request at its home: acquire the area
// lock (if enabled), then model the memory occupancy, then run the body.
// With HomeSlotBatch, same-slot same-area requests coalesce instead (see
// slotBatch).
//
//dsmlint:eventhandler
func (n *NIC) startHomeOp(m *network.Message, kind network.Kind) {
	r := m.Payload.(*req)
	o := n.ps.grabOp()
	o.n, o.r, o.kind = n, r, kind
	if !n.sys.cfg.LocksEnabled {
		o.l = nil
		o.grant()
		return
	}
	if n.sys.cfg.HomeSlotBatch && kind != network.KindFetchReq {
		n.joinBatch(o)
		return
	}
	o.l = n.lockFor(r.area.ID)
	o.l.acquire(r.acc.Proc, o.grantFn, o)
}

// slotBatch groups the data requests for one area delivered at one virtual
// instant (the micro-batching groundwork, Config.HomeSlotBatch): the batch
// opens on the first such request, closes at the end of the instant (its
// start continuation runs in a Defer slot — every same-instant delivery
// carries a smaller sequence number, so all of them join first), then
// serves the whole batch under one lock tenure with a single NICDelay
// charge (per-word occupancy still accrues per member). Bodies run in
// arrival order, so the per-area detector check/fold sequence — and with it
// every verdict — is exactly the unbatched order; what changes is timing
// (later members skip their own lock wait and NICDelay), which is why the
// mode is opt-in rather than fingerprint-neutral. If the area lock turns
// out to be held when the batch starts (a user critical section), batching
// would fold foreign operations into the holder's tenure, so the batch
// falls back to per-op queueing.
type slotBatch struct {
	n       *NIC
	area    memory.AreaID
	at      sim.Time
	ops     []*homeOp
	l       *lockState
	idx     int // next body to run during the batched tenure
	startFn func()
	grantFn func()
	runFn   func()
}

// joinBatch adds o to the open batch for its area at the current instant,
// opening one (and scheduling its start behind the instant's deliveries)
// when none is open.
//
//dsmlint:eventhandler
func (n *NIC) joinBatch(o *homeOp) {
	now := n.k.Now()
	// Expire batches from earlier instants lazily; a NIC rarely has more
	// than a couple of areas hit in one slot, so a linear scan is fine.
	live := n.batches[:0]
	var b *slotBatch
	for _, ob := range n.batches {
		if ob.at == now {
			live = append(live, ob)
			if ob.area == o.r.area.ID {
				b = ob
			}
		}
	}
	n.batches = live
	if b == nil {
		if k := len(n.batchPool); k > 0 {
			b = n.batchPool[k-1]
			n.batchPool = n.batchPool[:k-1]
		} else {
			b = &slotBatch{}
			b.startFn = b.start
			b.grantFn = b.grant
			b.runFn = b.run
		}
		b.n, b.area, b.at, b.idx = n, o.r.area.ID, now, 0
		n.batches = append(n.batches, b)
		n.k.Defer(b.startFn)
	}
	b.ops = append(b.ops, o)
}

// start runs at the end of the batch's delivery slot, with every member
// collected.
//
//dsmlint:eventhandler
func (b *slotBatch) start() {
	n := b.n
	l := n.lockFor(b.area)
	ops := b.ops
	if l.held || len(ops) == 1 {
		// Held lock (fall back: the batch must not ride a user critical
		// section) or a batch of one (nothing to coalesce): serve each op
		// on the ordinary path, preserving arrival order.
		b.ops = b.ops[:0]
		b.release()
		for _, o := range ops {
			o.l = l
			l.acquire(o.r.acc.Proc, o.grantFn, o)
		}
		return
	}
	n.ps.batched += uint64(len(ops))
	b.l = l
	l.acquire(ops[0].r.acc.Proc, b.grantFn, nil)
}

// grant holds the lock for the whole batch: one NICDelay, the members'
// words summed.
//
//dsmlint:eventhandler
func (b *slotBatch) grant() {
	words := 0
	for _, o := range b.ops {
		switch o.kind {
		case network.KindPutReq:
			words += len(o.r.data)
		case network.KindAtomicReq:
			words++
		default:
			words += o.r.count
		}
	}
	b.n.k.Schedule(b.n.sys.occupancy(words), b.runFn)
}

// run executes the members' bodies in arrival order. Each body runs in its
// own Defer slot (mirroring the per-op cadence of the serial path within
// the instant) with o.l nil, so per-op release is a no-op; the batch drops
// the lock once after the last body.
//
//dsmlint:eventhandler
func (b *slotBatch) run() {
	if b.idx >= len(b.ops) {
		b.ops = b.ops[:0]
		b.l.release()
		b.l = nil
		b.release()
		return
	}
	o := b.ops[b.idx]
	b.idx++
	o.l = nil
	o.run()
	b.n.k.Defer(b.runFn)
}

// release recycles the batch struct (already emptied).
func (b *slotBatch) release() {
	n := b.n
	for i, ob := range n.batches {
		if ob == b {
			n.batches = append(n.batches[:i], n.batches[i+1:]...)
			break
		}
	}
	b.n = nil
	n.batchPool = append(n.batchPool, b)
}

// grant runs once the area lock is held. Under MESI the home first recalls a
// remote exclusive owner — its silently modified line is the area's current
// data, so every home operation (read or write) must see it written back
// before touching home memory. The area lock stays held across the recall,
// so no fetch can hand out a new copy mid-recall.
func (o *homeOp) grant() {
	n := o.n
	if mes := n.sys.mes; mes != nil {
		if owner := mes.ExclusiveOwner(int(o.r.origin), o.r.area); owner >= 0 {
			mes.CountRecall(int(n.id))
			rr := n.ps.grabReq()
			rr.id = n.ps.nextReq()
			rr.origin = n.id
			rr.area = o.r.area
			rr.recall = true
			n.invalWait[rr.id] = &invalJoin{left: 1, finish: o.occupyFn, recall: true, area: o.r.area}
			n.sys.net.Send(&network.Message{Src: n.id, Dst: network.NodeID(owner),
				Kind: network.KindInval, Size: network.HeaderBytes, Area: wireArea(rr.area), Payload: rr})
			return
		}
	}
	o.occupy()
}

// occupy charges the occupancy window for the words this operation moves,
// then runs the body.
func (o *homeOp) occupy() {
	var words int
	switch o.kind {
	case network.KindPutReq:
		words = len(o.r.data)
	case network.KindGetReq:
		words = o.r.count
	case network.KindAtomicReq:
		words = 1
	default: // fetch moves the whole area (the coherence unit)
		words = o.r.area.Len
	}
	o.n.k.Schedule(o.n.sys.occupancy(words), o.runFn)
}

// release drops the area lock if one is held.
func (o *homeOp) release() {
	if o.l != nil {
		o.l.release()
	}
}

// run is the operation body, at the end of the occupancy window.
func (o *homeOp) run() {
	n, r := o.n, o.r
	k := n.k
	switch o.kind {
	case network.KindPutReq:
		o.err = checkAreaRange(r.area, r.off, len(r.data))
		if o.err == nil {
			// The declared home's exported segment, not the serving NIC's
			// memory: after a crash the successor serves remote operations
			// against the registered region, which outlives its owner.
			o.err = n.sys.space.Node(r.area.Home).WritePublic(r.area.Off+r.off, r.data)
		}
		o.observeAndCheck(r.off, len(r.data), k.Now())
		o.finishWrite()
	case network.KindAtomicReq:
		node := n.sys.space.Node(r.area.Home)
		var old [1]memory.Word
		o.err = checkAreaRange(r.area, r.off, 1)
		if o.err == nil {
			o.err = node.ReadPublic(r.area.Off+r.off, old[:])
		}
		if o.err == nil {
			o.old = old[0]
			o.err = node.WritePublic(r.area.Off+r.off, []memory.Word{r.op.Apply(old[0], r.arg1, r.arg2)})
		}
		o.observeAndCheck(r.off, 1, k.Now())
		o.finishWrite()
	case network.KindGetReq:
		// The reply transfers exactly the requested span.
		o.serveRead(r.off, r.count, network.KindGetReply, nil)
	default: // KindFetchReq: read miss under a caching protocol, whole-area transfer
		// The reply transfers the whole area (the coherence unit) and
		// registers the reader as a sharer. Causal replies carry the area's
		// version and dependency clock; a MESI reply may grant exclusivity
		// when the reader is the sole sharer.
		o.serveRead(0, r.area.Len, network.KindFetchReply, func(rs *resp) {
			n.sys.coh.AddSharer(int(r.origin), r.area)
			n.sys.countFetch(int(n.id))
			if cau := n.sys.cau; cau != nil {
				rs.ver, rs.dep = cau.ReadVersion(r.area)
			} else if mes := n.sys.mes; mes != nil {
				rs.excl = mes.GrantExclusive(int(r.origin), r.area)
			}
		})
	}
}

// serveRead is the shared read-serve tail of the get and fetch bodies: read
// [readOff, readOff+readLen) of the area, run the observer/detector on the
// *logical* access span [r.off, r.off+r.count), apply the protocol hook,
// release the lock and reply with replyKind. Errors reply with nil data but
// a size computed before the data is dropped, matching the wire model (the
// request was for that many words).
func (o *homeOp) serveRead(readOff, readLen int, replyKind network.Kind, onServed func(*resp)) {
	n, r := o.n, o.r
	var data []memory.Word
	o.err = checkAreaRange(r.area, r.off, r.count)
	if o.err == nil {
		data = make([]memory.Word, readLen)
		o.err = n.sys.space.Node(r.area.Home).ReadPublic(r.area.Off+readOff, data)
	}
	o.observeAndCheck(r.off, r.count, n.k.Now())
	rs := resp{data: data, clock: o.absorb}
	if o.err == nil && onServed != nil {
		onServed(&rs)
	}
	o.release()
	size := network.HeaderBytes + len(data)*memory.WordBytes +
		n.sys.replyClockBytes(n, chanKey{ack: true, node: r.origin, area: r.area.ID}, o.absorb)
	if rs.ver != 0 {
		size += 8
	}
	if rs.dep != nil {
		size += rs.dep.WireSize()
	}
	if o.err != nil {
		rs.data = nil
	}
	rs.err = errString(o.err)
	n.reply(r, replyKind, size, &rs)
	if n.sys.faultOn {
		// Request ownership is home-side under faults: the initiator cannot
		// prove this reply arrives, so it can no longer release the req.
		n.ps.releaseReq(r)
	}
	n.ps.releaseOp(o)
}

// observeAndCheck notifies the trace observer and runs the detector for the
// access span, filling o.absorb.
func (o *homeOp) observeAndCheck(off, count int, at sim.Time) {
	if o.err != nil {
		return
	}
	n, r := o.n, o.r
	if n.sys.cfg.Observer != nil {
		n.sys.cfg.Observer.Access(r.acc, r.area, off, count, at)
	}
	if n.sys.DetectionOn() && r.hasAcc {
		acc := r.acc
		acc.Time = at
		o.absorb = n.sys.checkAccess(n, acc, r.area, off, count, at)
	}
}

// finishWrite completes a home-side write or atomic: under write-invalidate
// it first orders every other copy of the area dropped and waits for the
// acknowledgements — the area lock stays held, so no fetch can revalidate a
// copy mid-round — then releases the lock and sends the completion. With no
// copies outstanding (always, under write-update) it completes immediately.
func (o *homeOp) finishWrite() {
	n, r := o.n, o.r
	if o.err == nil {
		if cau := n.sys.cau; cau != nil {
			// Causal memory: the write completes at the home without replica
			// acknowledgements. Commit the version, fold the writer's shipped
			// observation clock into the area's dependency clock, and fan the
			// written words to every other sharer as one shared immutable
			// update message.
			off, count := r.off, len(r.data)
			if o.kind == network.KindAtomicReq {
				count = 1
			}
			ver, dep, sharers := cau.PublishWrite(int(r.origin), r.area, r.obs)
			o.ver = ver
			if len(sharers) > 0 {
				data := make([]memory.Word, count)
				_ = n.sys.space.Node(r.area.Home).ReadPublic(r.area.Off+off, data)
				u := &updateMsg{area: r.area, off: off, data: data, ver: ver, dep: dep}
				size := network.HeaderBytes + count*memory.WordBytes + 8 + dep.WireSize()
				for _, node := range sharers {
					n.sys.net.Send(&network.Message{Src: n.id, Dst: network.NodeID(node),
						Kind: network.KindUpdate, Size: size, Area: wireArea(r.area), Payload: u})
				}
			}
		} else if inv := n.sys.coh.Invalidees(r.acc.Proc, r.area); len(inv) > 0 {
			join := &invalJoin{left: len(inv), finish: o.finishFn}
			for _, node := range inv {
				rr := n.ps.grabReq()
				rr.id = n.ps.nextReq()
				rr.origin = n.id
				rr.area = r.area
				n.invalWait[rr.id] = join
				n.sys.net.Send(&network.Message{Src: n.id, Dst: network.NodeID(node),
					Kind: network.KindInval, Size: network.HeaderBytes, Area: wireArea(r.area), Payload: rr})
			}
			return
		}
	}
	o.finish()
}

// finish releases the lock and sends the write's completion reply. Under
// MESI the completed write's invalidation round left the writer as the only
// possible sharer, so the commit also promotes it to exclusive owner (the
// home→writer FIFO guarantees the ack — which upgrades the writer's own
// copy — lands before any later recall).
func (o *homeOp) finish() {
	n, r := o.n, o.r
	if o.err == nil {
		if mes := n.sys.mes; mes != nil {
			mes.PromoteSoleSharer(int(r.origin), r.area)
		}
	}
	o.release()
	size := network.HeaderBytes + n.sys.replyClockBytes(n, chanKey{ack: true, node: r.origin, area: r.area.ID}, o.absorb)
	if o.ver != 0 {
		size += 8
	}
	if o.kind == network.KindAtomicReq {
		size += memory.WordBytes
		n.reply(r, network.KindAtomicReply, size, &resp{data: []memory.Word{o.old}, clock: o.absorb, ver: o.ver, err: errString(o.err)})
	} else {
		n.reply(r, network.KindPutAck, size, &resp{clock: o.absorb, ver: o.ver, err: errString(o.err)})
	}
	if n.sys.faultOn {
		n.ps.releaseReq(r) // home-side request ownership; see serveRead
	}
	n.ps.releaseOp(o)
}

// ---- Home-side handlers (the one-sided target path) ----

// checkAreaRange validates that [off, off+count) falls inside the area —
// remote operations must not spill into a neighbouring variable.
func checkAreaRange(a memory.Area, off, count int) error {
	if off < 0 || count < 0 || off+count > a.Len {
		return fmt.Errorf("access [%d,%d) outside area %q of %d words", off, off+count, a.Name, a.Len)
	}
	return nil
}

//dsmlint:eventhandler
func (n *NIC) handlePut(m *network.Message) {
	n.startHomeOp(m, network.KindPutReq)
}

// handleFetch serves a write-invalidate read miss: the whole area (the
// coherence unit) is transferred and the reader registered as a sharer,
// with the area's write clock piggybacked for the reader's copy. Detection
// and tracing see the logical access span [off, off+count), not the
// transfer span — the fetch is transport, the access is what the program
// did.
//
//dsmlint:eventhandler
func (n *NIC) handleFetch(m *network.Message) {
	n.startHomeOp(m, network.KindFetchReq)
}

// handleInval drops this node's copy of the area and acknowledges — or, for
// a MESI recall, downgrades the line to Shared and ships its dirty data back
// with the acknowledgement. It never blocks and takes no locks, so
// invalidation rounds cannot deadlock.
func (n *NIC) handleInval(m *network.Message) {
	r := m.Payload.(*req)
	if r.recall {
		data, dirty := n.sys.mes.Downgrade(int(n.id), r.area)
		size := network.HeaderBytes
		if dirty {
			size += len(data) * memory.WordBytes
		}
		n.reply(r, network.KindInvalAck, size, &resp{data: data})
		n.ps.releaseReq(r)
		return
	}
	n.sys.coh.DropCopy(int(n.id), r.area)
	n.reply(r, network.KindInvalAck, network.HeaderBytes, &resp{})
	n.ps.releaseReq(r) // invalidations are one-way reqs: the handler owns it
}

// handleInvalAck joins one acknowledgement of an invalidation round; the
// last one completes the write that started the round. A recall ack may
// carry the downgraded owner's dirty writeback, patched into the area before
// the waiting operation's body runs.
func (n *NIC) handleInvalAck(m *network.Message) {
	r := m.Payload.(*resp)
	if join, ok := n.invalWait[r.id]; ok && join.recall && r.data != nil {
		_ = n.sys.space.Node(join.area.Home).WritePublic(join.area.Off, r.data)
	}
	n.ackInval(r.id)
	n.ps.releaseResp(r)
}

//dsmlint:eventhandler
func (n *NIC) handleGet(m *network.Message) {
	n.startHomeOp(m, network.KindGetReq)
}

func (n *NIC) handleLock(m *network.Message) {
	r := m.Payload.(*req)
	l := n.lockFor(r.area.ID)
	if n.sys.fArm {
		if n.sys.net.NodeFaulted(n.ps.idx, r.origin) {
			// The requester crashed while this request was in flight;
			// granting would wedge the lock on a dead owner forever.
			n.ps.releaseReq(r)
			return
		}
		if l.lastGrant == r.id {
			// Duplicate of an already-granted request (ids start at 1, so no
			// false hit): the original grant was lost, or a retry was still
			// in flight when a grant arrived. Re-reply without a second
			// acquisition — a second tenure for a request that was already
			// served would strand the lock forever. While the tenure is
			// still this requester's, the release clock rides again (the
			// slot kept it — copy semantics under fArm below — so the
			// happens-before edge survives the retry); a stale duplicate
			// after release gets a bare grant the initiator absorbs as an
			// orphan.
			var rs resp
			size := network.HeaderBytes
			if r.user && l.held && l.owner == r.acc.Proc && !l.relClock.IsNil() {
				rs.clock = l.relClock.CopyInto(n.ps.grabClock())
				size += rs.clock.V.WireSize()
			}
			if r.user && l.held && l.owner == r.acc.Proc && l.relObs != nil {
				rs.dep = l.relObs.Copy()
				size += rs.dep.WireSize()
			}
			n.reply(r, network.KindLockGrant, size, &rs)
			n.ps.releaseReq(r)
			return
		}
	}
	l.acquire(r.acc.Proc, func() {
		// The lock stays held until an Unlock message arrives. User-level
		// grants carry the previous releaser's clock (release→acquire edge),
		// copied into a pooled buffer the acquirer releases after absorbing.
		var rs resp
		size := network.HeaderBytes
		if r.user && !l.relClock.IsNil() {
			if n.sys.fArm {
				// Copy semantics under hostile schedules: the slot must
				// survive a lost grant so the retransmission path above can
				// re-ship the release clock (the lost reply's buffer was
				// reclaimed with the message).
				rs.clock = l.relClock.CopyInto(n.ps.grabClock())
			} else {
				// Hand the release clock's buffer to the grant outright: each
				// user-level release is consumed by exactly the next
				// user-level grant (the lock is held in between), so the slot
				// would be overwritten before it is read again — and the
				// acquirer returns the buffer to the pool after absorbing,
				// completing the unlock → slot → grant → pool lifecycle
				// without a copy. (A re-entrant re-acquire no longer re-ships
				// the clock it already absorbed — a no-op merge either way.)
				rs.clock = l.relClock
				l.relClock = vclock.Masked{}
			}
			size += rs.clock.V.WireSize()
		}
		if r.user && l.relObs != nil {
			// Causal coherence: the grant carries the accumulated releaser
			// observation clock (a fresh copy the acquirer owns outright).
			rs.dep = l.relObs.Copy()
			size += rs.dep.WireSize()
		}
		if r.user && n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.LockAcq(r.acc.Proc, r.area, n.k.Now())
		}
		if n.sys.fArm {
			l.msgHeld = true
			l.lastGrant = r.id
		}
		n.reply(r, network.KindLockGrant, size, &rs)
		if n.sys.faultOn {
			n.ps.releaseReq(r) // home-side request ownership; see serveRead
		}
	}, r)
}

func (n *NIC) handleUnlock(m *network.Message) {
	r := m.Payload.(*req)
	l := n.lockFor(r.area.ID)
	if r.user {
		if r.acc.Clock != nil {
			// The release clock arrived in a pooled buffer owned by this
			// message; adopt it as the lock's release-clock slot outright
			// and recycle the previous slot — a swap instead of a copy.
			old := l.relClock
			l.relClock = vclock.Masked{V: r.acc.Clock, M: r.acc.ClockNZ}
			n.ps.releaseClock(old)
		}
		if r.obs != nil {
			// Causal coherence: fold the releaser's observation snapshot
			// into the lock's accumulated slot (the snapshot is a fresh
			// copy owned by this message; adopt it when the slot is empty).
			if l.relObs == nil {
				l.relObs = r.obs
			} else {
				l.relObs.Merge(r.obs)
			}
		}
		if n.sys.cfg.Observer != nil {
			n.sys.cfg.Observer.LockRel(r.acc.Proc, r.area, n.k.Now())
		}
	}
	l.release()
	n.ps.releaseReq(r) // unlock is one-way: the handler owns the req
}

func (n *NIC) handleClockRead(m *network.Message) {
	r := m.Payload.(*req)
	ca, ok := n.sys.stateFor(r.area, 0).(core.ClockAccessor)
	if !ok {
		n.reply(r, network.KindClockReadResp, network.HeaderBytes, &resp{err: "detector has no clocks"})
	} else {
		v, w := ca.Clocks()
		n.reply(r, network.KindClockReadResp, network.HeaderBytes+v.WireSize()+w.WireSize(), &resp{v: v, w: w})
	}
	if n.sys.faultOn {
		n.ps.releaseReq(r) // home-side request ownership; see serveRead
	}
}

func (n *NIC) handleClockWrite(m *network.Message) {
	r := m.Payload.(*req)
	defer n.ps.releaseReq(r) // clock writes are one-way: the handler owns the req
	st := n.sys.stateFor(r.area, 0)
	if r.apply {
		// Fold the access into the state exactly as the piggyback path
		// would; the initiator already performed (and signalled) the check
		// under the lock, so the verdict here is identical and dropped.
		acc := r.acc
		acc.Time = n.k.Now()
		_, clk := st.OnAccess(acc, int(n.id), n.ps.grabClock())
		n.ps.releaseClock(clk) // the literal protocol ignores the merged clock here
		return
	}
	if ca, ok := st.(core.ClockAccessor); ok {
		ca.SetClocks(r.v, r.w)
	}
}

//dsmlint:eventhandler
func (n *NIC) handleAtomic(m *network.Message) {
	n.startHomeOp(m, network.KindAtomicReq)
}

// SendUser transmits an application-level message (used by the runtime for
// barriers and user messaging); it is counted but carries no RDMA payload.
func (n *NIC) SendUser(dst network.NodeID, kind network.Kind, size int, payload any) {
	n.sys.net.Send(&network.Message{Src: n.id, Dst: dst, Kind: kind, Size: size, Payload: payload})
}
