package rdma

// Exploration support: a deterministic fingerprint of the protocol-engine
// state that is not visible in memory content or coherence replicas — lock
// tables, in-flight initiator operations, open invalidation rounds. The
// model checker (internal/mcheck) folds it into its state-fingerprint memo
// so two choice points merge only when the whole machine, not just memory,
// is in the same state. Request ids are deliberately excluded: they are
// allocation-order-dependent, and two states differing only by an id
// renaming behave identically (ids only match replies to requests; no
// timing or routing decision reads them — see the retry-jitter salting
// rule in fault.go).

const (
	fpPrime uint64 = 1099511628211
	fpSep   uint64 = 0x9e3779b97f4a7c15
)

func fpMix(h, v uint64) uint64 { return (h ^ v) * fpPrime }

// ExploreFingerprint folds the system's protocol-engine state into h:
// coherence replicas and directories, per-node lock tables (holder, depth,
// waiter queue in grant order), pending initiator operations, and open
// invalidation joins. Iteration is dense (node, area) index order except
// the two id-keyed tables, whose folds commute; the result is a pure
// function of machine state, independent of how the run reached it.
func (s *System) ExploreFingerprint(h uint64) uint64 {
	h = s.coh.Fingerprint(h)
	for _, n := range s.nics {
		for _, l := range n.locks {
			if l == nil {
				h = fpMix(h, 0)
				continue
			}
			held := uint64(0)
			if l.held {
				held = 1
			}
			h = fpMix(h, held|uint64(l.owner+1)<<1|uint64(l.depth)<<33)
			h = fpMix(h, uint64(len(l.waiters)))
			for _, w := range l.waiters {
				h = fpMix(h, uint64(w.owner+1))
			}
		}
		// pending ops, commutative over entries (the table is scanned, not
		// ordered; its slice order is compaction-dependent).
		var sum, xor uint64
		for i := range n.pending {
			e := &n.pending[i]
			var m uint64
			if e.op != nil {
				o := e.op
				m = uint64(o.kind)<<1 | 1
				m = fpMix(m, uint64(o.area.ID+1))
				m = fpMix(m, uint64(o.off)<<16|uint64(o.count))
				if o.rr != nil {
					m = fpMix(m, 1)
				}
			} else {
				m = fpMix(2, 0)
			}
			sum += m * fpSep
			xor ^= m * fpSep
		}
		for _, j := range n.invalWait { //dsmlint:ordered — commutative sum/xor fold; iteration order cannot reach h
			m := fpMix(uint64(j.left)<<2|3, uint64(j.area.ID+1))
			if j.recall {
				m = fpMix(m, 1)
			}
			sum += m * fpSep
			xor ^= m * fpSep
		}
		h = fpMix(h, sum)
		h = fpMix(h, xor)
		h = fpMix(h, fpSep) // node separator
	}
	return h
}
