package rdma

import (
	"errors"
	"fmt"
	"sort"

	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/fault"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// ErrUnreachable is the typed failure of an initiator operation whose remote
// peer stayed unreachable past the retry budget (crashed node, cut reply
// path, drop storm). It propagates through dsm and the facade; match it with
// errors.Is.
var ErrUnreachable = errors.New("rdma: peer unreachable")

// nackErr is the internal error sentinel of a bounced request: a round-trip
// request dropped at a crashed destination is answered — outside the fault
// checks — with a reply carrying this marker, so the initiator learns of the
// loss in its own shard context and pulls its deadline in instead of waiting
// out a full silence window. Intercepted before normal reply dispatch; never
// user-visible.
const nackErr = "\x00nack"

// lostErr marks a bounced *reply*: the home served the request but its reply
// was dropped in transit with both endpoints alive and the link up (a
// probabilistic drop). Without this marker the initiator has no evidence of
// the loss — its peer looks healthy, so the watchdog would wait forever.
// Retrying is safe for idempotent operations (the lock path dedupes via
// lastGrant); an atomic fails instead, because its original was applied.
const lostErr = "\x00lost"

// EnableFaults threads a fault injector through the system: the network
// grows per-shard fault views, every initiator op records enough state to
// retransmit, the home side releases round-trip requests itself (the
// initiator can no longer prove a reply will arrive to trigger the usual
// release), and the injector's recovery hooks are pointed at the crash sweep
// and the failover tables. Call before Injector.Arm and before any traffic.
func (s *System) EnableFaults(inj *fault.Injector) {
	if s.cfg.LegacyInitiator {
		panic("rdma: fault injection is not supported with LegacyInitiator")
	}
	if s.cfg.HomeSlotBatch {
		panic("rdma: fault injection is not supported with HomeSlotBatch")
	}
	s.inj = inj
	s.faultOn = true
	s.fArm = inj.Sched.Hostile()
	s.ftimeout = inj.Sched.Timeout
	s.fretryBase = inj.Sched.RetryBase
	s.fbudget = inj.Sched.RetryBudget
	s.net.EnableFaults()
	shards := s.net.ShardCount()
	s.failTab = make([][]int32, shards)
	for i := range s.failTab {
		tab := make([]int32, s.space.N())
		for j := range tab {
			tab[j] = -1
		}
		s.failTab[i] = tab
	}
	for _, n := range s.nics {
		n.wdFn = n.watchdog
	}
	inj.CrashSweep = s.faultCrash
	inj.Failover = s.faultFailover
}

// FaultsOn reports whether the fault layer is threaded through this system.
func (s *System) FaultsOn() bool { return s.faultOn }

// homeOf resolves an area's serving home: the declared home, chased through
// this shard's failover table when the fault layer is on. Every shard's
// table flips at the same virtual instant, so resolution is identical at
// every kernel count; without faults this is one predictable branch.
func (n *NIC) homeOf(a memory.Area) network.NodeID {
	h := a.Home
	if n.sys.faultOn {
		tab := n.sys.failTab[n.ps.idx]
		for range tab { // bounded chase: successors can fail over too
			nh := tab[h]
			if nh < 0 {
				break
			}
			h = int(nh)
		}
	}
	return network.NodeID(h)
}

// faultFailover is the injector's re-homing hook: record the crashed node's
// successor in this shard's table. Requests already addressed to the dead
// home keep bouncing (and retrying) until the flip; requests resolved after
// it go straight to the successor, which serves them against the crashed
// home's exported memory segment (the registered region outlives its owner —
// the crash loses the home's *detection* state, rebuilt by crashTransfer,
// not the data).
func (s *System) faultFailover(shard, node, successor int) {
	s.failTab[shard][node] = int32(successor)
}

// replyKindFor maps a round-trip request kind to its reply kind (the NACK
// bounce must dispatch through the normal reply path at the initiator).
func replyKindFor(k network.Kind) (network.Kind, bool) {
	switch k {
	case network.KindPutReq:
		return network.KindPutAck, true
	case network.KindGetReq:
		return network.KindGetReply, true
	case network.KindFetchReq:
		return network.KindFetchReply, true
	case network.KindClockRead:
		return network.KindClockReadResp, true
	case network.KindAtomicReq:
		return network.KindAtomicReply, true
	case network.KindLockReq:
		return network.KindLockGrant, true
	}
	return 0, false
}

// faultReqLost handles a dropped round-trip request. A send-time drop runs
// in the initiator's own context: mark the op so the watchdog retransmits
// knowing the request never left (the req itself is reclaimed by the caller
// with the message). A delivery-time drop runs at the crashed destination:
// bounce a NACK — fault-check-exempt, sent on the dead node's behalf — so
// the initiator learns of the loss in its own context.
func (s *System) faultReqLost(ps *shardPools, ctxShard int, src, dst network.NodeID, kind network.Kind, r *req) {
	if ctxShard == s.net.ShardOf(src) {
		ini := s.nics[src]
		if i := ini.findPending(r.id); i >= 0 {
			if op := ini.pending[i].op; op != nil && op.deadline != 0 {
				op.dropped = true
				op.rr = nil // reclaimed below with the message
			}
		}
		return
	}
	if reply, ok := replyKindFor(kind); ok {
		rs := ps.grabResp()
		rs.id = r.id
		rs.err = nackErr
		s.net.SendExempt(&network.Message{Src: dst, Dst: src, Kind: reply,
			Size: network.HeaderBytes, Area: wireArea(r.area), Payload: rs})
	}
}

// faultInvalLost completes an invalidation that can never be acknowledged —
// the vacuous-ack model: a dead sharer's copy will never be read again, so
// the home may count the acknowledgement as given. A send-time drop runs in
// the home's own context and joins the ack in place; a delivery-time drop
// bounces an ack message on the dead sharer's behalf. (A send-time inval
// drop can also mean a cut home→sharer link with the sharer alive; its stale
// copy then survives unseen by the directory — WI link cuts are lossy for
// coherence, see ARCHITECTURE.md.)
func (s *System) faultInvalLost(ps *shardPools, ctxShard int, src, dst network.NodeID, r *req) {
	if ctxShard == s.net.ShardOf(src) {
		s.nics[src].ackInval(r.id)
		return
	}
	rs := ps.grabResp()
	rs.id = r.id
	s.net.SendExempt(&network.Message{Src: dst, Dst: src, Kind: network.KindInvalAck,
		Size: network.HeaderBytes, Area: wireArea(r.area), Payload: rs})
}

// ---- Initiator lifecycle: deadlines, retransmission, typed failure ----

// armWatchdog ensures the NIC's coalesced deadline scan runs no later than
// at. One armed flag plus tolerance for redundant fires (the scan is
// idempotent and deterministic) replaces per-op timer events; the zero-fault
// tax of an armed-but-idle system is one flag check per issue.
func (n *NIC) armWatchdog(at sim.Time) {
	if n.wdArmed && n.wdAt <= at {
		return
	}
	n.wdArmed = true
	n.wdAt = at
	n.k.At(at, n.wdFn)
}

// faultAct is the expiry verdict for one overdue op.
type faultAct int

const (
	faultWait  faultAct = iota // peer looks alive: slowness never times out
	faultRetry                 // retransmit with backoff
	faultFail                  // fail now with ErrUnreachable
)

// expiryAction decides what to do with an op whose deadline passed, from
// this shard's fault view:
//   - this node itself crashed: fail (the sweep normally got there first);
//   - the request was dropped at send: always safe to retransmit;
//   - the destination crashed or the reply link is cut: the reply can never
//     arrive — retransmit (idempotent ops; after re-homing the retry lands
//     at the successor), except atomics, which a delivered-but-unacked
//     original would double-apply;
//   - otherwise the peer is healthy and merely slow: keep waiting. Slowness
//     is not death — the timeout only converts to action on evidence.
func (s *System) expiryAction(n *NIC, op *initOp) faultAct {
	sh := n.ps.idx
	if s.net.NodeFaulted(sh, n.id) {
		return faultFail
	}
	if op.dropped {
		return faultRetry
	}
	if !s.net.NodeFaulted(sh, op.dst) && !s.net.LinkFaulted(sh, op.dst, n.id) {
		return faultWait
	}
	if op.kind == network.KindAtomicReq {
		return faultFail
	}
	return faultRetry
}

// watchdog is the per-NIC coalesced deadline scan: fail or retransmit every
// overdue op, push healthy deadlines forward, re-arm at the earliest
// remaining deadline. It runs on the initiator's own kernel, so every
// decision and retransmission is filed exactly like first-attempt traffic.
func (n *NIC) watchdog() {
	n.wdArmed = false
	s := n.sys
	now := n.k.Now()
	next := sim.Time(-1)
	for i := 0; i < len(n.pending); i++ {
		op := n.pending[i].op
		if op == nil || op.deadline == 0 {
			continue
		}
		if op.deadline > now {
			if next < 0 || op.deadline < next {
				next = op.deadline
			}
			continue
		}
		switch s.expiryAction(n, op) {
		case faultWait:
			op.deadline = now + s.ftimeout
		case faultRetry:
			if op.attempt >= s.fbudget {
				n.failPendingAt(i, op, "timed out")
				i--
				continue
			}
			n.retransmit(n.pending[i].id, op)
		case faultFail:
			n.failPendingAt(i, op, "unreachable")
			i--
			continue
		}
		if next < 0 || op.deadline < next {
			next = op.deadline
		}
	}
	if next >= 0 {
		n.armWatchdog(next)
	}
}

// retransmit re-sends an op's request from its recorded template. The home
// is re-resolved through the failover table, so a retry after re-homing
// lands at the successor; the request id is unchanged, so a late original
// reply and the retry's reply dedupe at the pending table (first one wins,
// the other is absorbed as an orphan — the idempotence the shard-namespaced
// ids buy). Backoff grows the next deadline exponentially with hash-derived
// jitter: no RNG draw, so retransmission times are identical at every
// kernel count.
func (n *NIC) retransmit(id uint64, op *initOp) {
	s := n.sys
	op.attempt++
	op.dropped = false
	dst := n.homeOf(op.tmpl.area)
	op.dst = dst
	rr := n.ps.grabReq()
	owner := rr.owner
	*rr = op.tmpl
	rr.owner = owner
	rr.id = id
	rr.origin = n.id
	op.rr = rr
	s.net.Send(&network.Message{Src: n.id, Dst: dst, Kind: op.kind, Size: op.size, Area: wireArea(op.tmpl.area), Payload: rr})
	backoff := s.fretryBase << uint(op.attempt-1)
	// Jitter is salted with (area, kind), never the request id: ids are
	// shard-namespaced, so an id-derived jitter would move retransmissions
	// around with the kernel count.
	backoff += s.inj.RetryJitter(int(n.id), uint64(op.tmpl.area.ID)<<8|uint64(op.kind), op.attempt, s.fretryBase)
	op.deadline = n.k.Now() + s.ftimeout + backoff
	op.p.Relabel(fmt.Sprintf("%s->node%d (timeout, %d retries)", op.kind, int(dst), op.attempt))
}

// failPendingAt completes an op with the typed unreachable error: drop its
// pending entry and wake the process for its error tail.
func (n *NIC) failPendingAt(i int, op *initOp, why string) {
	n.dropPendingAt(i)
	op.rr = nil
	op.unreachable = true
	op.errs = fmt.Sprintf("%s to node %d %s after %d retries", op.kind, int(op.dst), why, op.attempt)
	op.deadline = 0
	op.finish()
}

// nackPending is the arrival side of the NACK bounce: mark the op dropped
// (its request was reclaimed at the crash site) and pull its deadline to
// now, so the watchdog decides retry-or-fail this instant instead of after
// a full silence window.
func (n *NIC) nackPending(rs *resp) {
	if i := n.findPending(rs.id); i >= 0 {
		if op := n.pending[i].op; op != nil && op.deadline != 0 {
			op.dropped = true
			op.rr = nil
			op.deadline = n.k.Now()
			n.armWatchdog(op.deadline)
		}
	}
	n.ps.releaseResp(rs)
}

// lostPending is the arrival side of the reply-loss bounce: the request was
// served but the reply died in transit. Idempotent ops retry immediately
// (the home serves again, or dedupes); an atomic fails with the typed error —
// its first application is irreversible, and a blind retry would double it.
func (n *NIC) lostPending(rs *resp) {
	if i := n.findPending(rs.id); i >= 0 {
		if op := n.pending[i].op; op != nil && op.deadline != 0 {
			if op.kind == network.KindAtomicReq {
				n.failPendingAt(i, op, "reply lost")
			} else {
				op.dropped = true
				op.rr = nil
				op.deadline = n.k.Now()
				n.armWatchdog(op.deadline)
			}
		}
	}
	n.ps.releaseResp(rs)
}

// err converts the op's transported error state back to an error, wrapping
// the typed sentinel when the retry budget was exhausted.
func (o *initOp) err() error {
	if o.unreachable {
		return fmt.Errorf("%w: %s", ErrUnreachable, o.errs)
	}
	return asError(o.errs)
}

// ---- Crash sweep and re-homing ----

// faultCrash is the injector's crash hook, run on every shard at the exact
// crash instant (before any same-instant program event):
//   - every shard purges the crashed node from the sharer directories of
//     areas homed on that shard, removes its queued lock acquisitions
//     (granting a dead requester would wedge the lock forever) and expires
//     lock tenures it holds — lease expiry: the lock passes on rather than
//     stranding the survivors;
//   - the crashed node's own shard additionally invalidates its cached
//     copies, drains the invalidation rounds it was serving as a home (so
//     every pooled struct completes its lifecycle — PoolBalance still
//     audits zero), removes ALL waiters from its lock queues, fails its
//     in-flight initiator ops with ErrUnreachable, and files the detection-
//     state transfer through the ordered log.
//
// In-flight home operations of the crashed node (already granted, inside
// their occupancy window) run to completion: they model DMA already in
// flight against the exported segment, and their replies are dropped by the
// fault views.
//
//dsmlint:eventhandler
func (s *System) faultCrash(shard, node int, at sim.Time) {
	fs, hasFS := s.coh.(coherence.FaultSupport)
	if hasFS {
		for _, a := range s.space.Areas() {
			if s.net.ShardOf(network.NodeID(a.Home)) == shard {
				fs.PurgeSharer(node, a)
			}
		}
	}
	for _, nic := range s.nics {
		if nic.ps.idx != shard {
			continue
		}
		crashedNIC := int(nic.id) == node
		for _, l := range nic.locks {
			if l == nil {
				continue
			}
			if crashedNIC {
				nic.purgeWaiters(l, fault.AnyNode)
			} else {
				nic.purgeWaiters(l, node)
				if l.held && l.owner == node {
					if l.msgHeld && l.depth == 1 {
						l.release() // expire the dead holder's tenure now
					} else {
						l.ownerDead = true // expire when the op tenure ends
					}
				}
			}
		}
		if crashedNIC {
			nic.drainInvalJoins()
		}
	}
	if s.net.ShardOf(network.NodeID(node)) == shard {
		nic := s.nics[node]
		if hasFS {
			fs.DropNodeCopies(node)
		}
		for i := len(nic.pending) - 1; i >= 0; i-- {
			if op := nic.pending[i].op; op != nil && op.deadline != 0 {
				nic.failPendingAt(i, op, "lost to local crash")
			}
		}
		nic.k.LogOrdered(func() { s.crashTransfer(node, at) })
	}
}

// purgeWaiters removes queued lock acquisitions owned by crashed (or, with
// fault.AnyNode, every queued acquisition — the whole table is dying). Their
// queued payloads (the home-side req, and for data ops the homeOp) complete
// their pool lifecycle here; the continuations never run.
func (n *NIC) purgeWaiters(l *lockState, crashed int) {
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		if crashed != fault.AnyNode && w.owner != crashed {
			kept = append(kept, w)
			continue
		}
		switch pl := w.payload.(type) {
		case *homeOp:
			n.ps.releaseReq(pl.r)
			pl.r = nil
			n.ps.releaseOp(pl)
		case *req:
			n.ps.releaseReq(pl)
		}
	}
	// Zero the tail so purged waiters are not retained by the backing array.
	for i := len(kept); i < len(l.waiters); i++ {
		l.waiters[i] = lockWaiter{}
	}
	l.waiters = kept
}

// drainInvalJoins force-completes every invalidation round the crashed home
// was waiting on: the outstanding acks will be dropped or orphan-absorbed,
// so each join's finish runs now — releasing the area lock and the writer's
// homeOp; the completion reply it sends is dropped at the dead source.
// Joins are visited in ascending id order: map iteration order must never
// reach the event stream.
func (n *NIC) drainInvalJoins() {
	if len(n.invalWait) == 0 {
		return
	}
	ids := make([]uint64, 0, len(n.invalWait))
	//dsmlint:ordered ids are sorted below before any join finishes
	for id := range n.invalWait {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	done := make(map[*invalJoin]bool, len(ids))
	for _, id := range ids {
		join := n.invalWait[id]
		delete(n.invalWait, id)
		if !done[join] {
			done[join] = true
			join.left = 0
			join.finish()
		}
	}
}

// ackInval joins one invalidation acknowledgement (real or synthesized by
// the drop hooks); under faults an orphan ack — its round already drained by
// a crash sweep — is absorbed silently.
func (n *NIC) ackInval(id uint64) {
	join, ok := n.invalWait[id]
	if !ok {
		if n.sys.faultOn {
			return
		}
		panic(fmt.Sprintf("rdma: node %d: orphan inval ack %d", n.id, id))
	}
	delete(n.invalWait, id)
	if join.recall {
		// Every recall acknowledgement — real, vacuous (dead owner) or
		// dataless (clean line) — ends the owner's exclusivity.
		n.sys.mes.ClearExclusive(join.area)
	}
	join.left--
	if join.left == 0 {
		join.finish()
	}
}

// crashTransfer re-seeds the detection state of the crashed node's home
// areas, modelling the successor's rebuild: the (V, W) clocks a home kept in
// volatile memory die with it, so each area's clocks are reconstructed from
// the collector's interned race reports — the merge of every report clock
// for the area signalled strictly before the crash, the only surviving
// store of detection history. Races whose evidence died with the home are
// lost (the recall cost of the fault, not a bug); clocks only shrink
// relative to the lost state, so re-homing cannot invent a false race.
// Runs through the ordered log, so at any kernel count it executes at the
// crash's exact serial position, after precisely the reports that precede
// it. Area-granularity clock detectors only; other granularities keep their
// state — a documented modelling shortcut.
func (s *System) crashTransfer(node int, at sim.Time) {
	if s.areaStates == nil {
		return
	}
	var reports []core.Report
	if s.cfg.Collector != nil {
		reports = s.cfg.Collector.Reports()
	}
	nn := s.space.N()
	for _, a := range s.space.Areas() {
		if a.Home != node || int(a.ID) >= len(s.areaStates) || s.areaStates[a.ID] == nil {
			continue
		}
		ca, ok := s.areaStates[a.ID].(core.ClockAccessor)
		if !ok {
			continue
		}
		v, w := vclock.New(nn), vclock.New(nn)
		for i := range reports {
			rep := &reports[i]
			if rep.Area != a.ID || rep.Time >= at {
				continue
			}
			if rep.Current.Clock.Len() == nn {
				v.Merge(rep.Current.Clock)
			}
			if rep.StoredClock.Len() == nn {
				v.Merge(rep.StoredClock)
				w.Merge(rep.StoredClock)
			}
		}
		ca.SetClocks(v, w)
	}
}
