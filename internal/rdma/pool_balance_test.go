package rdma

import (
	"errors"
	"fmt"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// The pool-ownership invariant: every pooled per-operation struct grabbed
// during a run is released by the time the run ends, as long as every
// operation actually completed — including operations that completed *with
// an error* (range violations used to be the easy place to lose a buffer on
// an early return). Failure schedules that park an initiator forever are
// allowed to hold exactly that operation's structs, and nothing else.

// runBalance spawns ops on a rig, runs the kernel, and asserts the final
// pool balance.
func runBalance(t *testing.T, nodes int, cfg Config, alloc func(s *memory.Space),
	body func(r *rig, p *sim.Proc), wantErr bool, want PoolBalance) {
	t.Helper()
	r := newRig(t, nodes, cfg, alloc)
	r.k.Spawn("P0", func(p *sim.Proc) { body(r, p) })
	err := r.k.Run()
	if wantErr && err == nil {
		t.Fatal("run succeeded, expected a deadlock")
	}
	if !wantErr && err != nil {
		t.Fatal(err)
	}
	if got := r.sys.PoolBalance(); got != want {
		t.Errorf("pool balance = %+v, want %+v", got, want)
	}
}

// opsMix issues every operation shape, with both succeeding and failing
// (out-of-range) variants, on both the CPS and legacy initiator paths.
func opsMix(r *rig, p *sim.Proc) {
	n := r.sys.NIC(0)
	clk := vclock.New(r.space.N())
	area := memory.Area{}
	for _, name := range []string{"x"} {
		a, err := r.space.Lookup(name)
		if err != nil {
			panic(err)
		}
		area = a
	}
	seq := uint64(0)
	acc := func(k core.AccessKind) core.Access {
		seq++
		clk.Tick(0)
		return core.Access{Proc: 0, Seq: seq, Kind: k, Clock: clk}
	}
	check := func(wantErr bool, err error) {
		if wantErr != (err != nil) {
			panic(fmt.Sprintf("op error = %v, want error %v", err, wantErr))
		}
	}
	ab, err := n.Put(p, area, 0, []memory.Word{1, 2}, acc(core.Write))
	check(false, err)
	r.sys.ReleaseClock(ab)
	_, err = n.Put(p, area, 7, []memory.Word{1, 2}, acc(core.Write)) // out of range
	check(true, err)
	_, ab, err = n.Get(p, area, 0, 2, acc(core.Read))
	check(false, err)
	r.sys.ReleaseClock(ab)
	_, _, err = n.Get(p, area, -1, 2, acc(core.Read)) // out of range
	check(true, err)
	_, ab, err = n.FetchAdd(p, area, 0, 3, acc(core.Write))
	check(false, err)
	r.sys.ReleaseClock(ab)
	_, _, err = n.FetchAdd(p, area, 99, 3, acc(core.Write)) // out of range
	check(true, err)
	rel, _ := n.LockArea(p, area, 0)
	r.sys.ReleaseClock(rel)
	n.UnlockArea(area, 0, vclock.Masked{V: clk.Copy()}.CopyInto(r.sys.GrabClock()))
}

func balanceConfigs() map[string]Config {
	mk := func(mut func(*Config)) Config {
		cfg := DefaultConfig(core.NewExactVWDetector(), nil)
		mut(&cfg)
		return cfg
	}
	return map[string]Config{
		"piggyback": mk(func(c *Config) {}),
		"legacy":    mk(func(c *Config) { c.LegacyInitiator = true }),
		"literal":   mk(func(c *Config) { c.Protocol = ProtocolLiteral }),
		"literal-legacy": mk(func(c *Config) {
			c.Protocol = ProtocolLiteral
			c.LegacyInitiator = true
		}),
		"write-invalidate": mk(func(c *Config) { c.Coherence = mustCoherence("write-invalidate") }),
		"compress":         mk(func(c *Config) { c.CompressClocks = true }),
		"detection-off":    {LocksEnabled: true, NICDelay: 200, MemPerWord: 2},
	}
}

// TestPoolBalanceCleanRuns asserts grab==release for every pool after runs
// where all operations completed, successes and failures alike, across the
// protocol/coherence matrix and both initiator paths.
func TestPoolBalanceCleanRuns(t *testing.T) {
	for name, cfg := range balanceConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			runBalance(t, 3, cfg, func(s *memory.Space) { s.Alloc("x", 1, 4) },
				opsMix, false, PoolBalance{})
		})
	}
}

// TestPoolBalanceWriteInvalidateRounds exercises the invalidation-join path
// (two sharers fetch, then the writer's put triggers an inval round) and
// requires a clean balance afterwards.
func TestPoolBalanceWriteInvalidateRounds(t *testing.T) {
	cfg := DefaultConfig(core.NewExactVWDetector(), nil)
	cfg.Coherence = mustCoherence("write-invalidate")
	r := newRig(t, 3, cfg, func(s *memory.Space) { s.Alloc("x", 0, 4) })
	area := mustArea(t, r.space, "x")
	spawnReader := func(id int) {
		r.k.Spawn(fmt.Sprintf("R%d", id), func(p *sim.Proc) {
			clk := vclock.New(3)
			for i := 0; i < 3; i++ {
				clk.Tick(id)
				_, ab, err := r.sys.NIC(id).Get(p, area, 0, 2, core.Access{Proc: id, Seq: uint64(i + 1), Kind: core.Read, Clock: clk})
				if err != nil {
					panic(err)
				}
				r.sys.ReleaseClock(ab)
				p.Sleep(500 * sim.Nanosecond)
			}
		})
	}
	spawnReader(1)
	spawnReader(2)
	r.k.Spawn("W0", func(p *sim.Proc) {
		clk := vclock.New(3)
		for i := 0; i < 3; i++ {
			p.Sleep(700 * sim.Nanosecond)
			clk.Tick(0)
			ab, err := r.sys.NIC(0).Put(p, area, 0, []memory.Word{memory.Word(i)}, core.Access{Proc: 0, Seq: uint64(i + 1), Kind: core.Write, Clock: clk})
			if err != nil {
				panic(err)
			}
			r.sys.ReleaseClock(ab)
		}
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.sys.PoolBalance(); got != (PoolBalance{}) {
		t.Errorf("pool balance = %+v, want all zero", got)
	}
	if r.sys.CoherenceStats().Invalidations == 0 {
		t.Error("schedule produced no invalidation rounds; the test lost its point")
	}
}

// TestPoolBalanceDownLink pins the failure-schedule accounting: a request
// dropped on a cut link parks its initiator forever. The dropped request
// buffer itself is reclaimed by the network drop hook (it used to leak),
// so the only live structs are the stuck operation's continuation state —
// and on the legacy path its pending record.
func TestPoolBalanceDownLink(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		legacy := legacy
		t.Run(fmt.Sprintf("legacy=%v", legacy), func(t *testing.T) {
			cfg := DefaultConfig(core.NewExactVWDetector(), nil)
			cfg.LegacyInitiator = legacy
			want := PoolBalance{InitOps: 1}
			if legacy {
				want = PoolBalance{Pendings: 1}
			}
			runBalance(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 4) },
				func(r *rig, p *sim.Proc) {
					r.net.CutLink(0, 1)
					clk := vclock.New(2)
					clk.Tick(0)
					r.sys.NIC(0).Put(p, mustAreaPanic(r.space, "x"), 0, []memory.Word{1},
						core.Access{Proc: 0, Seq: 1, Kind: core.Write, Clock: clk})
					panic("put on a cut link returned")
				}, true, want)
		})
	}
}

// TestPoolBalanceDroppedReply cuts the home→initiator direction instead:
// the request is served, the reply vanishes. The drop hook reclaims the
// pooled resp (another former leak); the home-side op completed. The stuck
// initiator keeps exactly its own continuation state plus the request
// buffer it still owns — the reply that would have proven the home done
// with it never arrived, so it stays reachable via the operation, not
// leaked.
func TestPoolBalanceDroppedReply(t *testing.T) {
	cfg := DefaultConfig(core.NewExactVWDetector(), nil)
	runBalance(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 4) },
		func(r *rig, p *sim.Proc) {
			r.net.CutLink(1, 0)
			clk := vclock.New(2)
			clk.Tick(0)
			r.sys.NIC(0).Put(p, mustAreaPanic(r.space, "x"), 0, []memory.Word{1},
				core.Access{Proc: 0, Seq: 1, Kind: core.Write, Clock: clk})
			panic("put with a cut reply link returned")
		}, true, PoolBalance{Reqs: 1, InitOps: 1})
	// The park label must name the stuck hop for the deadlock report.
	r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 4) })
	r.net.CutLink(1, 0)
	r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(2)
		clk.Tick(0)
		r.sys.NIC(0).Put(p, mustAreaPanic(r.space, "x"), 0, []memory.Word{1},
			core.Access{Proc: 0, Seq: 1, Kind: core.Write, Clock: clk})
	})
	err := r.k.Run()
	var d *sim.DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if len(d.Blocked) != 1 || d.Blocked[0] != "P0: rdma put.req" {
		t.Errorf("blocked = %v, want [P0: rdma put.req]", d.Blocked)
	}
}

func mustAreaPanic(s *memory.Space, name string) memory.Area {
	a, err := s.Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

func mustCoherence(name string) coherence.Protocol {
	p, err := coherence.FromName(name)
	if err != nil {
		panic(err)
	}
	return p
}
