package rdma

import (
	"fmt"
	"strings"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

func TestLiteralWithoutLocksSkipsLockTraffic(t *testing.T) {
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	cfg.Protocol = ProtocolLiteral
	cfg.LocksEnabled = false
	r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
	area := mustArea(t, r.space, "x")
	r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(2)
		clk.Tick(0)
		r.sys.NIC(0).Put(p, area, 0, []memory.Word{1}, wacc(0, 1, clk))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	s := r.net.Stats().Snapshot()
	if s.Msgs[network.KindLockReq] != 0 || s.Msgs[network.KindUnlock] != 0 {
		t.Fatalf("lock traffic with locks disabled: %v", s)
	}
	// 13 - lock(2) - unlock(1) = 10 messages.
	if s.TotalMsgs != 10 {
		t.Fatalf("msgs = %d, want 10", s.TotalMsgs)
	}
}

func TestLiteralDetectionOffFallsBackToPiggyback(t *testing.T) {
	cfg := DefaultConfig(nil, nil)
	cfg.Protocol = ProtocolLiteral
	r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("x", 1, 1) })
	area := mustArea(t, r.space, "x")
	r.k.Spawn("P0", func(p *sim.Proc) {
		r.sys.NIC(0).Put(p, area, 0, []memory.Word{1}, wacc(0, 1, nil))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.net.Stats().TotalMsgs; got != 2 {
		t.Fatalf("literal with detection off should cost 2 msgs, got %d", got)
	}
}

func TestLockReentrancyDepth(t *testing.T) {
	l := &lockState{}
	order := []string{}
	l.acquire(1, func() { order = append(order, "first") }, nil)
	l.acquire(1, func() { order = append(order, "reentrant") }, nil)
	l.acquire(2, func() { order = append(order, "other") }, nil)
	if strings.Join(order, ",") != "first,reentrant" {
		t.Fatalf("order = %v", order)
	}
	l.release() // depth 2 -> 1
	if len(order) != 2 {
		t.Fatal("waiter ran before full release")
	}
	l.release() // depth 1 -> 0, waiter runs
	if strings.Join(order, ",") != "first,reentrant,other" {
		t.Fatalf("order = %v", order)
	}
	l.release()
	if l.held {
		t.Fatal("lock still held")
	}
}

func TestReleaseUnheldLockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&lockState{}).release()
}

func TestNodeGranularitySharesOneState(t *testing.T) {
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	cfg.Granularity = GranularityNode
	r := newRig(t, 3, cfg, func(s *memory.Space) {
		s.Alloc("a", 1, 1)
		s.Alloc("b", 1, 1)
		s.Alloc("c", 2, 1)
	})
	a := mustArea(t, r.space, "a")
	b := mustArea(t, r.space, "b")
	c := mustArea(t, r.space, "c")
	r.k.Spawn("P0", func(p *sim.Proc) {
		clk := vclock.New(3)
		clk.Tick(0)
		r.sys.NIC(0).Put(p, a, 0, []memory.Word{1}, wacc(0, 1, clk.Copy()))
		clk.Tick(0)
		r.sys.NIC(0).Put(p, b, 0, []memory.Word{1}, wacc(0, 2, clk.Copy()))
		clk.Tick(0)
		r.sys.NIC(0).Put(p, c, 0, []memory.Word{1}, wacc(0, 3, clk.Copy()))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	// Areas a and b share node 1's state; c is node 2's: 2 states total.
	perState := 2 * (2 + 8*3 + 8) // V + W, each with a one-word occupancy mask
	if got := r.sys.StorageBytes(); got != 2*perState {
		t.Fatalf("storage = %d, want %d (2 node states)", got, 2*perState)
	}
}

func TestOrphanResponsePanics(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(nil, nil), nil)
	r.net.Send(&network.Message{Src: 1, Dst: 0, Kind: network.KindPutAck, Payload: &resp{id: 999}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for orphan response")
		}
	}()
	_ = r.k.Run()
}

func TestMissingUserHandlerPanics(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(nil, nil), nil)
	r.net.Send(&network.Message{Src: 0, Dst: 1, Kind: network.KindUser, Payload: "hello"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing user handler")
		}
	}()
	_ = r.k.Run()
}

func TestUserHandlerReceivesUserMessages(t *testing.T) {
	r := newRig(t, 2, DefaultConfig(nil, nil), nil)
	var got any
	r.sys.NIC(1).UserHandler = func(m *network.Message) { got = m.Payload }
	r.sys.NIC(0).SendUser(1, network.KindUser, 64, "ping")
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Fatalf("payload = %v", got)
	}
}

func TestAtomicCarriesDetection(t *testing.T) {
	// Two concurrent FetchAdds on one counter are flagged (atomics count as
	// writes), even though the arithmetic stays exact.
	cfg := DefaultConfig(core.NewExactVWDetector(), nil)
	r := newRig(t, 3, cfg, func(s *memory.Space) { s.Alloc("ctr", 0, 1) })
	area := mustArea(t, r.space, "ctr")
	for i := 1; i <= 2; i++ {
		i := i
		r.k.Spawn("adder", func(p *sim.Proc) {
			clk := vclock.New(3)
			clk.Tick(i)
			r.sys.NIC(i).FetchAdd(p, area, 0, 1, wacc(i, 1, clk))
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.sys.Collector().Total() == 0 {
		t.Fatal("concurrent atomics should be signalled (benign but concurrent)")
	}
	final := make([]memory.Word, 1)
	r.space.Node(0).ReadPublic(area.Off, final)
	if final[0] != 2 {
		t.Fatalf("counter = %d", final[0])
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	r := newRig(t, 2, cfg, nil)
	if !r.sys.DetectionOn() {
		t.Fatal("DetectionOn")
	}
	if r.sys.Config().Protocol != ProtocolPiggyback {
		t.Fatal("Config")
	}
	if r.sys.Space() != r.space {
		t.Fatal("Space")
	}
	if r.sys.NIC(1).ID() != 1 {
		t.Fatal("NIC ID")
	}
	off := newRig(t, 2, DefaultConfig(nil, nil), nil)
	if off.sys.DetectionOn() || off.sys.Collector() != nil {
		t.Fatal("detection-off accessors")
	}
}

func TestFig3OccupancyScalesWithSize(t *testing.T) {
	// Larger transfers hold the area longer: virtual completion time must
	// grow with the payload (the occupancy model behind Fig. 3).
	dur := func(words int) sim.Time {
		cfg := DefaultConfig(nil, nil)
		cfg.MemPerWord = 5 * sim.Nanosecond
		r := newRig(t, 2, cfg, func(s *memory.Space) { s.Alloc("buf", 1, 2048) })
		area := mustArea(t, r.space, "buf")
		r.k.Spawn("P0", func(p *sim.Proc) {
			r.sys.NIC(0).Put(p, area, 0, make([]memory.Word, words), wacc(0, 1, nil))
		})
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.k.Now()
	}
	small, large := dur(8), dur(1024)
	if large <= small {
		t.Fatalf("occupancy not size-dependent: %v vs %v", small, large)
	}
}

func TestWordGranularityEliminatesFalseSharing(t *testing.T) {
	// Disjoint-slot writes inside one area: flagged at area granularity,
	// clean at word granularity — and an overlapping write is still caught.
	run := func(g Granularity) (races int, storage int) {
		cfg := DefaultConfig(core.NewExactVWDetector(), nil)
		cfg.Granularity = g
		r := newRig(t, 3, cfg, func(s *memory.Space) { s.Alloc("slots", 0, 3) })
		area := mustArea(t, r.space, "slots")
		for i := 1; i <= 2; i++ {
			i := i
			r.k.Spawn(fmt.Sprintf("P%d", i), func(p *sim.Proc) {
				clk := vclock.New(3)
				clk.Tick(i)
				r.sys.NIC(i).Put(p, area, i, []memory.Word{memory.Word(i)}, wacc(i, 1, clk))
			})
		}
		if err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		return r.sys.Collector().Total(), r.sys.StorageBytes()
	}
	areaRaces, areaStorage := run(GranularityArea)
	wordRaces, wordStorage := run(GranularityWord)
	if areaRaces == 0 {
		t.Fatal("area granularity must flag the disjoint-slot writes (false sharing)")
	}
	if wordRaces != 0 {
		t.Fatalf("word granularity must not flag disjoint slots: %d", wordRaces)
	}
	if wordStorage <= areaStorage {
		t.Fatalf("word granularity must cost more storage: %d vs %d", wordStorage, areaStorage)
	}
}

func TestWordGranularityStillCatchesOverlap(t *testing.T) {
	cfg := DefaultConfig(core.NewExactVWDetector(), nil)
	cfg.Granularity = GranularityWord
	r := newRig(t, 3, cfg, func(s *memory.Space) { s.Alloc("slots", 0, 4) })
	area := mustArea(t, r.space, "slots")
	// Ranges [0,3) and [2,4): overlap at word 2.
	r.k.Spawn("P1", func(p *sim.Proc) {
		clk := vclock.New(3)
		clk.Tick(1)
		r.sys.NIC(1).Put(p, area, 0, []memory.Word{1, 1, 1}, wacc(1, 1, clk))
	})
	r.k.Spawn("P2", func(p *sim.Proc) {
		p.Sleep(20 * sim.Microsecond)
		clk := vclock.New(3)
		clk.Tick(2)
		r.sys.NIC(2).Put(p, area, 2, []memory.Word{2, 2}, wacc(2, 1, clk))
	})
	if err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.sys.Collector().Total(); got != 1 {
		t.Fatalf("overlapping ranges: %d reports, want 1 (deduped per op)", got)
	}
}

func TestWordGranularityRejectsLiteralProtocol(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig(core.NewVWDetector(), nil)
	cfg.Granularity = GranularityWord
	cfg.Protocol = ProtocolLiteral
	newRig(t, 2, cfg, nil)
}

func TestGranularityWordString(t *testing.T) {
	if GranularityWord.String() != "word" {
		t.Fatal("name")
	}
}
