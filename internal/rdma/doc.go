// Package rdma models the network interface cards of §III-B: one-sided
// put/get with OS bypass (remote operations are served entirely inside
// message-delivery events — the target *process* is never scheduled), NIC
// locks on memory areas with FIFO queuing (so a put on an area is delayed
// until a get in progress finishes, Fig. 3), and remote atomics as an
// extension.
//
// The race detector is wired into this layer, matching §V-B ("implemented
// in the communication library of the run-time support system"). Two wire
// protocols are provided:
//
//   - ProtocolLiteral follows Algorithms 1–2 message by message: the
//     initiating library locks the remote area, fetches its clocks
//     (get_clock/get_clock_W), compares locally (Algorithm 3), moves the
//     data, runs update_clock/update_clock_W (Algorithm 5: fetch, max_clock,
//     write back), and unlocks.
//   - ProtocolPiggyback sends one request carrying the initiator's clock;
//     the home NIC checks and updates atomically under its local lock and
//     replies with the merged clock.
//
// Both protocols produce identical verdicts (the comparison happens against
// the same state, under the same lock); they differ only in message count
// and bytes, which is what experiment E-T2 measures.
//
// Both sides of every operation are event-driven. The home side serves
// requests as pooled homeOp continuations inside message-delivery events
// (the target process is never scheduled). The initiator side is symmetric
// since the CPS conversion: an operation is a pooled initOp whose process
// issues the first request and parks exactly once — every intermediate hop
// (lock grants, the literal protocol's clock fetches, data replies)
// completes through pre-bound continuations in event context, with each
// follow-up phase filed via sim.Kernel.Defer into the very slot the old
// parked path's per-hop wakeup occupied. A remote operation therefore costs
// zero goroutine scheduling beyond its single park, and under the kernel's
// baton-passing scheduler even that park usually resumes without a
// goroutine switch. The pre-CPS parked path survives behind
// Config.LegacyInitiator purely as the reference for the differential
// determinism suite.
//
// Orthogonal to the wire protocol, the NICs serve accesses under a
// pluggable coherence protocol (internal/coherence). Write-update — the
// default and the model's original behaviour — keeps the home copy as the
// only copy, so every access is a home round trip and the detector sees
// everything. Write-invalidate caches whole areas at readers: a read miss
// fetches the area (KindFetchReq/KindFetchReply, write clock piggybacked),
// a hit is served locally with no messages, and a write completes only
// after every other copy is invalidated and acknowledged
// (KindInval/KindInvalAck), the home holding the area lock for the whole
// round so no fetch can revalidate a copy mid-write. The policy decisions
// and replica bookkeeping live in internal/coherence; this package owns
// only the messages and the locking.
//
// Under a partitioned multi-kernel run (sim.MultiKernel) every NIC executes
// on the kernel shard that owns its node, and the per-operation pools are
// sharded with it: a pooled struct belongs to the shard that grabbed it,
// releases on a foreign shard ride a return bin home at the next window
// barrier, and System.PoolBalanceShard audits each shard to zero after
// clean runs. Race reports flush through the barrier's ordered replay so
// the shared collector sees them in serial detection order. Opt-in home
// slot batching (Config.HomeSlotBatch) coalesces same-slot same-area data
// requests into one lock tenure with identical verdicts — see
// ARCHITECTURE.md's shard/window section.
package rdma
