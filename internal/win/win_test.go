package win

import (
	"fmt"
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
)

func cluster(t *testing.T, procs int, det core.Detector) *dsm.Cluster {
	t.Helper()
	c, err := dsm.New(dsm.Config{Procs: procs, Seed: 1, RDMA: rdma.DefaultConfig(det, nil)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFencedExchangeCleanUnderBothCheckers(t *testing.T) {
	// A correctly fenced neighbour exchange: zero MARMOT violations and
	// zero clock races.
	const n = 4
	c := cluster(t, n, core.NewExactVWDetector())
	w, err := Create(c, "halo", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		h := w.Attach(p)
		h.Fence() // open epoch 1
		right := (p.ID() + 1) % p.N()
		if err := h.Put(right, 0, memory.Word(p.ID()+10)); err != nil {
			return err
		}
		h.Fence() // close epoch 1, open epoch 2
		v, err := h.Get(p.ID(), 0, 1)
		if err != nil {
			return err
		}
		left := (p.ID() + p.N() - 1) % p.N()
		if v[0] != memory.Word(left+10) {
			return fmt.Errorf("rank %d saw %d", p.ID(), v[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(w.Checker().Violations()) != 0 {
		t.Fatalf("MARMOT violations on clean program: %v", w.Checker().Violations())
	}
	if res.RaceCount != 0 {
		t.Fatalf("clock races on clean program: %v", res.Races)
	}
}

func TestRMAOutsideEpochFlagged(t *testing.T) {
	c := cluster(t, 2, nil)
	w, err := Create(c, "w", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		h := w.Attach(p)
		if p.ID() == 0 {
			// BUG: Put before any Fence.
			if err := h.Put(1, 0, 5); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	vio := w.Checker().Violations()
	if len(vio) != 1 || vio[0].Kind != OutsideEpoch {
		t.Fatalf("violations = %v", vio)
	}
	if vio[0].String() == "" {
		t.Fatal("string")
	}
}

func TestConflictingPutsInOneEpochFlagged(t *testing.T) {
	const n = 3
	c := cluster(t, n, nil)
	w, err := Create(c, "w", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		h := w.Attach(p)
		h.Fence()
		if p.ID() != 0 {
			// BUG: both P1 and P2 put word 0 of rank 0's part in the same
			// epoch.
			if err := h.Put(0, 0, memory.Word(p.ID())); err != nil {
				return err
			}
		}
		h.Fence()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	vio := w.Checker().Violations()
	if len(vio) != 1 || vio[0].Kind != ConflictingRMA {
		t.Fatalf("violations = %v", vio)
	}
}

func TestAccumulatesCommuteWithinEpoch(t *testing.T) {
	const n = 4
	c := cluster(t, n, nil)
	w, err := Create(c, "acc", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		h := w.Attach(p)
		h.Fence()
		if err := h.Accumulate(0, 0, memory.Word(p.ID()+1)); err != nil {
			return err
		}
		h.Fence()
		if p.ID() == 0 {
			v, err := h.Get(0, 0, 1)
			if err != nil {
				return err
			}
			if v[0] != 1+2+3+4 {
				return fmt.Errorf("accumulated %d, want 10", v[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(w.Checker().Violations()) != 0 {
		t.Fatalf("accumulates must commute: %v", w.Checker().Violations())
	}
}

func TestGetPutConflictFlagged(t *testing.T) {
	c := cluster(t, 2, nil)
	w, err := Create(c, "gp", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		h := w.Attach(p)
		h.Fence()
		if p.ID() == 0 {
			if _, err := h.Get(0, 0, 1); err != nil {
				return err
			}
		} else {
			// put must arrive second in the epoch ledger for a
			// deterministic single violation.
			p.Sleep(10000)
			if err := h.Put(0, 0, 3); err != nil {
				return err
			}
		}
		h.Fence()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	vio := w.Checker().Violations()
	if len(vio) != 1 || vio[0].Kind != ConflictingRMA || vio[0].Op != "put" {
		t.Fatalf("violations = %v", vio)
	}
}

func TestGetsDoNotConflict(t *testing.T) {
	c := cluster(t, 3, nil)
	w, err := Create(c, "gg", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		h := w.Attach(p)
		h.Fence()
		if _, err := h.Get(0, 0, 1); err != nil {
			return err
		}
		h.Fence()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if len(w.Checker().Violations()) != 0 {
		t.Fatalf("concurrent gets flagged: %v", w.Checker().Violations())
	}
}

func TestMarmotBlindToCrossEpochRaceButClocksAreNot(t *testing.T) {
	// A put in epoch 1 and a conflicting put in epoch 2 with NO fence
	// between the conflicting pair... with fences between them the accesses
	// are ordered; to build a cross-checker contrast we instead compare:
	// MARMOT sees nothing wrong with *unfenced* code beyond "outside
	// epoch"; the clock detector reports the actual data race.
	const n = 2
	c := cluster(t, n, core.NewExactVWDetector())
	w, err := Create(c, "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(func(p *dsm.Proc) error {
		h := w.Attach(p)
		// Both ranks put the same word with no fence at all.
		return h.Put(0, 0, memory.Word(p.ID()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	vio := w.Checker().Violations()
	for _, v := range vio {
		if v.Kind != OutsideEpoch {
			t.Fatalf("unexpected kind: %v", v)
		}
	}
	if len(vio) != 2 {
		t.Fatalf("MARMOT should flag both calls as outside-epoch: %v", vio)
	}
	if res.RaceCount == 0 {
		t.Fatal("the clock detector must additionally see the data race itself")
	}
}

func TestViolationOrderingDeterministic(t *testing.T) {
	chk := NewChecker()
	chk.rma(1, 2, true, opPut, 0, 3, 1)
	chk.rma(2, 2, true, opPut, 0, 3, 1)
	chk.rma(0, 1, false, opGet, 1, 0, 1)
	v := chk.Violations()
	if len(v) != 2 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Epoch != 1 || v[1].Epoch != 2 {
		t.Fatalf("not sorted: %v", v)
	}
}
