package win

import (
	"fmt"
	"sort"

	"dsmrace/internal/dsm"
	"dsmrace/internal/memory"
)

// Window is an MPI-2 window: one region of every process's public memory
// exposed for RMA.
type Window struct {
	name  string
	words int
	n     int
	chk   *Checker
}

// part is the shared variable backing rank's exposure of the window.
func (w *Window) part(rank int) string { return fmt.Sprintf("win:%s@%d", w.name, rank) }

// Create allocates the window across the cluster (MPI_Win_create is
// collective; here it is the compile-time allocation step).
func Create(c *dsm.Cluster, name string, words int) (*Window, error) {
	w := &Window{name: name, words: words, n: c.Space().N(), chk: NewChecker()}
	for r := 0; r < w.n; r++ {
		if err := c.Alloc(w.part(r), r, words); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// Checker returns the window's usage checker.
func (w *Window) Checker() *Checker { return w.chk }

// Handle is a process's connection to a window.
type Handle struct {
	w       *Window
	p       *dsm.Proc
	epoch   int
	inEpoch bool
}

// Attach binds a running process to the window.
func (w *Window) Attach(p *dsm.Proc) *Handle { return &Handle{w: w, p: p} }

// Fence closes the current access epoch (if any) and opens the next
// (MPI_Win_fence). It synchronises all processes.
func (h *Handle) Fence() {
	if h.inEpoch {
		h.w.chk.closeEpoch(h.p.ID(), h.epoch)
	}
	h.p.Barrier()
	h.epoch++
	h.inEpoch = true
	h.w.chk.openEpoch(h.p.ID(), h.epoch)
}

// Put performs MPI_Put: write vals into target's window part at off.
func (h *Handle) Put(target, off int, vals ...memory.Word) error {
	h.w.chk.rma(h.p.ID(), h.epoch, h.inEpoch, opPut, target, off, len(vals))
	return h.p.Put(h.w.part(target), off, vals...)
}

// Get performs MPI_Get: read count words from target's window part.
func (h *Handle) Get(target, off, count int) ([]memory.Word, error) {
	h.w.chk.rma(h.p.ID(), h.epoch, h.inEpoch, opGet, target, off, count)
	return h.p.Get(h.w.part(target), off, count)
}

// Accumulate performs MPI_Accumulate with MPI_SUM on one word. Unlike Put,
// concurrent same-epoch accumulates to the same location are legal in
// MPI-2, and the checker treats them so.
func (h *Handle) Accumulate(target, off int, delta memory.Word) error {
	h.w.chk.rma(h.p.ID(), h.epoch, h.inEpoch, opAcc, target, off, 1)
	_, err := h.p.FetchAdd(h.w.part(target), off, delta)
	return err
}

// ---- the MARMOT-style checker ----

type opKind int

const (
	opPut opKind = iota
	opGet
	opAcc
)

func (k opKind) String() string {
	switch k {
	case opPut:
		return "put"
	case opGet:
		return "get"
	default:
		return "accumulate"
	}
}

// ViolationKind classifies checker findings.
type ViolationKind int

// Violation kinds.
const (
	// OutsideEpoch: an RMA call before the first fence (no access epoch).
	OutsideEpoch ViolationKind = iota
	// ConflictingRMA: two same-epoch RMA operations touch the same word of
	// the same target and at least one is a put — erroneous in MPI-2's
	// separate memory model (puts must be exclusive within an epoch).
	ConflictingRMA
)

// String names the violation kind.
func (k ViolationKind) String() string {
	if k == OutsideEpoch {
		return "rma-outside-epoch"
	}
	return "conflicting-rma-in-epoch"
}

// Violation is one checker finding.
type Violation struct {
	Kind   ViolationKind
	Origin int // calling rank
	Other  int // conflicting rank (ConflictingRMA), -1 otherwise
	Target int
	Off    int
	Op     string
	Epoch  int
}

// String renders the finding.
func (v Violation) String() string {
	if v.Kind == OutsideEpoch {
		return fmt.Sprintf("MARMOT: rank %d called %s on target %d outside any access epoch", v.Origin, v.Op, v.Target)
	}
	return fmt.Sprintf("MARMOT: epoch %d: rank %d's %s conflicts with rank %d at (target %d, word %d)",
		v.Epoch, v.Origin, v.Op, v.Other, v.Target, v.Off)
}

// Checker accumulates usage violations. It is driven by Handle calls and is
// safe under the simulation's serialised execution.
type Checker struct {
	violations []Violation
	// epochOps[epoch] -> per (target,off) the ops seen this epoch.
	epochOps map[int]map[[2]int][]epochOp
}

type epochOp struct {
	origin int
	kind   opKind
}

// NewChecker returns an empty checker.
func NewChecker() *Checker {
	return &Checker{epochOps: make(map[int]map[[2]int][]epochOp)}
}

// Violations returns all findings, sorted deterministically.
func (c *Checker) Violations() []Violation {
	out := append([]Violation(nil), c.violations...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		if a.Origin != b.Origin {
			return a.Origin < b.Origin
		}
		return a.Off < b.Off
	})
	return out
}

func (c *Checker) openEpoch(rank, epoch int) {
	if c.epochOps[epoch] == nil {
		c.epochOps[epoch] = make(map[[2]int][]epochOp)
	}
}

func (c *Checker) closeEpoch(rank, epoch int) {}

func (c *Checker) rma(origin, epoch int, inEpoch bool, kind opKind, target, off, count int) {
	if !inEpoch {
		c.violations = append(c.violations, Violation{
			Kind: OutsideEpoch, Origin: origin, Other: -1, Target: target, Off: off, Op: kind.String(), Epoch: epoch,
		})
		return
	}
	ops := c.epochOps[epoch]
	if ops == nil {
		ops = make(map[[2]int][]epochOp)
		c.epochOps[epoch] = ops
	}
	for w := off; w < off+count; w++ {
		key := [2]int{target, w}
		for _, prev := range ops[key] {
			if prev.origin == origin {
				continue // same origin: program order governs
			}
			// Accumulates commute with each other; any put conflicts with
			// everything; a get conflicts with a put.
			conflict := false
			switch {
			case kind == opPut || prev.kind == opPut:
				conflict = true
			case kind == opAcc && prev.kind == opAcc:
				conflict = false
			case kind == opGet && prev.kind == opGet:
				conflict = false
			case (kind == opGet && prev.kind == opAcc) || (kind == opAcc && prev.kind == opGet):
				conflict = true
			}
			if conflict {
				c.violations = append(c.violations, Violation{
					Kind: ConflictingRMA, Origin: origin, Other: prev.origin,
					Target: target, Off: w, Op: kind.String(), Epoch: epoch,
				})
				break
			}
		}
		ops[key] = append(ops[key], epochOp{origin: origin, kind: kind})
	}
}
