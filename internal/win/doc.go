// Package win models MPI-2 one-sided communication — windows, fence-based
// access epochs, and RMA put/get/accumulate — together with a MARMOT-style
// usage checker. The paper's related work (§II) cites MPI-2's remote memory
// access operations and the MARMOT tool that "checks correct usage of the
// synchronization features provided by MPI, such as fences and windows";
// this package reproduces that style of *discipline* checking so the
// evaluation can contrast it with the paper's clock-based *race* detection:
// MARMOT-style checks are purely syntactic (epoch bracketing, same-epoch
// conflicts) and need no clocks, but they cannot see cross-epoch races the
// way vector clocks do.
package win
