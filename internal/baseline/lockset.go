package baseline

import (
	"sort"

	"dsmrace/internal/core"
	"dsmrace/internal/vclock"
)

// Lockset is an Eraser-style detector adapted to the DSM model: instead of
// tracking happens-before it checks that every shared area is consistently
// protected by at least one common user-level lock. It follows Eraser's
// state machine (virgin → exclusive → shared → shared-modified) so that
// initialisation and read-sharing do not trigger reports.
//
// Locksets are insensitive to timing: they flag *potential* races even when
// the schedule happened to order the accesses — which yields false
// positives for programs synchronised without locks (e.g. barrier-phased
// codes) and is exactly the behavioural contrast the E-T3 table shows.
type Lockset struct{}

// NewLockset returns the lockset baseline.
func NewLockset() *Lockset { return &Lockset{} }

// Name implements core.Detector.
func (Lockset) Name() string { return "lockset" }

// NewAreaState implements core.Detector.
func (Lockset) NewAreaState(n int) core.AreaState {
	return &locksetState{phase: lsVirgin}
}

type lsPhase int

const (
	lsVirgin lsPhase = iota
	lsExclusive
	lsShared
	lsSharedModified
)

type locksetState struct {
	phase lsPhase
	owner int
	// candidates is the intersection of lock sets seen so far; nil means
	// "all locks" (no constraining access yet). Kept sorted and refined in
	// place, so steady-state accesses do not allocate.
	candidates []int
	hasCands   bool
	reported   bool // Eraser reports each area at most once
	// heldBuf is scratch for the sorted copy of acc.Locks.
	heldBuf []int
	// Last-access context stored by value; reports borrow priorBuf.
	last       core.Access
	hasLast    bool
	lastClock  vclock.VC
	lastLocks  []int
	priorBuf   core.Access
	priorClock vclock.VC
}

// intersectInPlace filters a down to its intersection with b (both sorted).
// The write index never passes the read index, so a's storage is reused.
func intersectInPlace(a []int, b []int) []int {
	k, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			a[k] = a[i]
			k++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return a[:k]
}

func (s *locksetState) OnAccess(acc core.Access, home int, absorb vclock.Masked) (*core.Report, vclock.Masked) {
	s.heldBuf = append(s.heldBuf[:0], acc.Locks...)
	held := s.heldBuf
	sort.Ints(held)

	switch s.phase {
	case lsVirgin:
		s.phase = lsExclusive
		s.owner = acc.Proc
	case lsExclusive:
		if acc.Proc != s.owner {
			if acc.Kind == core.Read {
				s.phase = lsShared
			} else {
				s.phase = lsSharedModified
			}
			s.candidates = append(s.candidates[:0], held...)
			s.hasCands = true
		}
	case lsShared:
		if acc.Kind == core.Write {
			s.phase = lsSharedModified
		}
		s.refine(held)
	case lsSharedModified:
		s.refine(held)
	}

	var rep *core.Report
	if s.phase == lsSharedModified && s.hasCands && len(s.candidates) == 0 && !s.reported {
		s.reported = true
		rep = &core.Report{
			Detector: "lockset",
			Area:     acc.Area,
			Current:  acc,
			Time:     acc.Time,
		}
		if s.hasLast {
			s.priorClock = s.last.Clock.CopyInto(s.priorClock)
			s.priorBuf = s.last
			s.priorBuf.Clock = s.priorClock
			s.priorBuf.ClockNZ = nil
			rep.Prior = &s.priorBuf
		}
	}
	s.lastClock = acc.Clock.CopyInto(s.lastClock)
	s.lastLocks = append(s.lastLocks[:0], acc.Locks...)
	s.last = acc
	s.last.Clock = s.lastClock
	s.last.ClockNZ = nil // the caller's mask aliases its scratch; drop it
	s.last.Locks = s.lastLocks
	s.hasLast = true
	return rep, vclock.Masked{}
}

func (s *locksetState) refine(held []int) {
	if !s.hasCands {
		s.candidates = append(s.candidates[:0], held...)
		s.hasCands = true
		return
	}
	s.candidates = intersectInPlace(s.candidates, held)
}

// StorageBytes: phase byte + candidate lock ids (8 bytes each).
func (s *locksetState) StorageBytes() int { return 1 + 8*len(s.candidates) }
