package baseline

import (
	"testing"

	"dsmrace/internal/core"
	"dsmrace/internal/vclock"
)

func acc(proc int, seq uint64, kind core.AccessKind, clk ...uint64) core.Access {
	return core.Access{Proc: proc, Seq: seq, Kind: kind, Clock: vclock.VC(clk)}
}

func accL(proc int, kind core.AccessKind, locks []int, clk ...uint64) core.Access {
	return core.Access{Proc: proc, Kind: kind, Clock: vclock.VC(clk), Locks: locks}
}

func TestSingleClockFalsePositiveOnConcurrentReads(t *testing.T) {
	// The exact contrast of Fig. 4 / §IV-D: concurrent read-only accesses.
	single := NewSingleClock().NewAreaState(3)
	vw := core.NewVWDetector().NewAreaState(3)

	init := acc(1, 1, core.Write, 0, 1, 0)
	r0 := acc(0, 1, core.Read, 1, 2, 0)
	r2 := acc(2, 1, core.Read, 0, 2, 1)

	for _, st := range []core.AreaState{single, vw} {
		if rep, _ := st.OnAccess(init, 1, vclock.Masked{}); rep != nil {
			t.Fatal("init must not race")
		}
		if rep, _ := st.OnAccess(r0, 1, vclock.Masked{}); rep != nil {
			t.Fatal("first read must not race under either detector")
		}
	}
	rep, _ := single.OnAccess(r2, 1, vclock.Masked{})
	if rep == nil {
		t.Fatal("single-clock must flag the second concurrent read (false positive)")
	}
	rep2, _ := vw.OnAccess(r2, 1, vclock.Masked{})
	if rep2 != nil {
		t.Fatal("vw must not flag concurrent reads")
	}
}

func TestSingleClockStillCatchesTrueRaces(t *testing.T) {
	st := NewSingleClock().NewAreaState(3)
	st.OnAccess(acc(0, 1, core.Write, 1, 0, 0), 1, vclock.Masked{})
	rep, _ := st.OnAccess(acc(2, 1, core.Write, 0, 0, 1), 1, vclock.Masked{})
	if rep == nil {
		t.Fatal("single-clock must detect Fig. 5(a)")
	}
	if rep.Detector != "single-clock" {
		t.Fatalf("detector name = %q", rep.Detector)
	}
}

func TestSingleClockStorageHalvesVW(t *testing.T) {
	n := 8
	s := NewSingleClock().NewAreaState(n).StorageBytes()
	v := core.NewVWDetector().NewAreaState(n).StorageBytes()
	if 2*s != v {
		t.Fatalf("single=%d vw=%d, want half", s, v)
	}
}

func TestSingleClockClockAccessor(t *testing.T) {
	ca := NewSingleClock().NewAreaState(2).(core.ClockAccessor)
	ca.SetClocks(vclock.VC{4, 0}, nil)
	v, w := ca.Clocks()
	if v.String() != "40" || w.String() != "40" {
		t.Fatalf("clocks = %s %s", v, w)
	}
	ca.SetClocks(nil, vclock.VC{5, 5})
	v, _ = ca.Clocks()
	if v.String() != "55" {
		t.Fatalf("W-only update must hit the single clock: %s", v)
	}
}

func TestNopNeverReports(t *testing.T) {
	st := Nop{}.NewAreaState(4)
	for i := 0; i < 10; i++ {
		rep, clk := st.OnAccess(acc(i%2, uint64(i), core.Write, 1, 0, 0, 0), 0, vclock.Masked{})
		if rep != nil || !clk.IsNil() {
			t.Fatal("nop must stay silent")
		}
	}
	if st.StorageBytes() != 0 {
		t.Fatal("nop must store nothing")
	}
	if (Nop{}).Name() != "off" {
		t.Fatal("name")
	}
}

func TestLocksetDisciplinedProgramClean(t *testing.T) {
	st := NewLockset().NewAreaState(2)
	// Two processes alternating under the same lock 7.
	seq := []core.Access{
		accL(0, core.Write, []int{7}, 1, 0),
		accL(1, core.Write, []int{7}, 0, 1),
		accL(0, core.Read, []int{7}, 2, 0),
		accL(1, core.Write, []int{7, 9}, 0, 2),
	}
	for i, a := range seq {
		if rep, _ := st.OnAccess(a, 0, vclock.Masked{}); rep != nil {
			t.Fatalf("disciplined access %d reported: %v", i, rep)
		}
	}
}

func TestLocksetDetectsUnlockedSharing(t *testing.T) {
	st := NewLockset().NewAreaState(2)
	st.OnAccess(accL(0, core.Write, nil, 1, 0), 0, vclock.Masked{})
	rep, _ := st.OnAccess(accL(1, core.Write, nil, 0, 1), 0, vclock.Masked{})
	if rep == nil {
		t.Fatal("unlocked write-write sharing must be reported")
	}
	// Eraser reports once per area.
	rep2, _ := st.OnAccess(accL(0, core.Write, nil, 2, 1), 0, vclock.Masked{})
	if rep2 != nil {
		t.Fatal("lockset must report an area at most once")
	}
}

func TestLocksetReadSharingIsClean(t *testing.T) {
	st := NewLockset().NewAreaState(3)
	st.OnAccess(accL(0, core.Write, nil, 1, 0, 0), 0, vclock.Masked{}) // init, exclusive
	st.OnAccess(accL(1, core.Read, nil, 0, 1, 0), 0, vclock.Masked{})  // shared
	rep, _ := st.OnAccess(accL(2, core.Read, nil, 0, 0, 1), 0, vclock.Masked{})
	if rep != nil {
		t.Fatal("read-only sharing must not be reported")
	}
}

func TestLocksetExclusivePhaseIgnoresLocks(t *testing.T) {
	// Initialisation by one process without locks is fine (virgin/exclusive).
	st := NewLockset().NewAreaState(2)
	for i := 0; i < 5; i++ {
		if rep, _ := st.OnAccess(accL(0, core.Write, nil, uint64(i+1), 0), 0, vclock.Masked{}); rep != nil {
			t.Fatal("exclusive-phase accesses must not be reported")
		}
	}
}

func TestLocksetIntersectionRefinement(t *testing.T) {
	st := NewLockset().NewAreaState(2)
	st.OnAccess(accL(0, core.Write, []int{1, 2}, 1, 0), 0, vclock.Masked{})
	// Second process shares only lock 2 — still protected.
	if rep, _ := st.OnAccess(accL(1, core.Write, []int{2, 3}, 0, 1), 0, vclock.Masked{}); rep != nil {
		t.Fatal("common lock 2 still held")
	}
	// Now an access under disjoint lock 9: intersection empties.
	rep, _ := st.OnAccess(accL(0, core.Write, []int{9}, 2, 1), 0, vclock.Masked{})
	if rep == nil {
		t.Fatal("emptied lockset must be reported")
	}
}

func TestLocksetTimingInsensitiveFalsePositive(t *testing.T) {
	// Barrier-style synchronisation without locks: the accesses are causally
	// ordered (no true race) but lockset still complains — its documented
	// weakness, measured in E-T3.
	st := NewLockset().NewAreaState(2)
	st.OnAccess(accL(0, core.Write, nil, 1, 0), 0, vclock.Masked{})
	rep, _ := st.OnAccess(accL(1, core.Write, nil, 2, 1), 0, vclock.Masked{}) // causally after
	if rep == nil {
		t.Fatal("lockset is timing-insensitive and must (falsely) report here")
	}
}

func TestEpochWriteWriteRace(t *testing.T) {
	st := NewEpoch().NewAreaState(3)
	st.OnAccess(acc(0, 1, core.Write, 1, 0, 0), 1, vclock.Masked{})
	rep, _ := st.OnAccess(acc(2, 1, core.Write, 0, 0, 1), 1, vclock.Masked{})
	if rep == nil {
		t.Fatal("epoch must detect Fig. 5(a) write-write race")
	}
	if rep.Detector != "epoch" {
		t.Fatalf("name = %s", rep.Detector)
	}
}

func TestEpochOrderedWritesClean(t *testing.T) {
	st := NewEpoch().NewAreaState(2)
	st.OnAccess(acc(0, 1, core.Write, 1, 0), 0, vclock.Masked{})
	// P1 absorbed P0's write (clock 1,1 dominates epoch 1@0).
	if rep, _ := st.OnAccess(acc(1, 1, core.Write, 1, 1), 0, vclock.Masked{}); rep != nil {
		t.Fatalf("ordered write raced: %v", rep)
	}
}

func TestEpochReadWriteRaces(t *testing.T) {
	st := NewEpoch().NewAreaState(2)
	st.OnAccess(acc(0, 1, core.Write, 1, 0), 0, vclock.Masked{})
	rep, _ := st.OnAccess(acc(1, 1, core.Read, 0, 1), 0, vclock.Masked{})
	if rep == nil {
		t.Fatal("read concurrent with write must race")
	}
	st2 := NewEpoch().NewAreaState(2)
	st2.OnAccess(acc(0, 1, core.Read, 1, 0), 0, vclock.Masked{})
	rep, _ = st2.OnAccess(acc(1, 1, core.Write, 0, 1), 0, vclock.Masked{})
	if rep == nil {
		t.Fatal("write concurrent with read must race")
	}
}

func TestEpochConcurrentReadsBenignAndInflate(t *testing.T) {
	st := NewEpoch().NewAreaState(3)
	before := st.StorageBytes()
	if rep, _ := st.OnAccess(acc(0, 1, core.Read, 1, 0, 0), 1, vclock.Masked{}); rep != nil {
		t.Fatal("read must not race")
	}
	if rep, _ := st.OnAccess(acc(2, 1, core.Read, 0, 0, 1), 1, vclock.Masked{}); rep != nil {
		t.Fatal("concurrent reads must not race under epoch either")
	}
	if st.StorageBytes() <= before {
		t.Fatal("concurrent reads must inflate the read vector")
	}
	// A write concurrent with one of the reads must still be caught after
	// inflation.
	rep, _ := st.OnAccess(acc(1, 1, core.Write, 1, 1, 0), 1, vclock.Masked{}) // covers P0's read, not P2's
	if rep == nil {
		t.Fatal("write concurrent with an inflated read must race")
	}
}

func TestEpochSameEpochFastPathKeepsStorageFlat(t *testing.T) {
	st := NewEpoch().NewAreaState(4)
	clk := vclock.New(4)
	base := st.StorageBytes()
	for i := 0; i < 20; i++ {
		clk.Tick(1)
		if rep, _ := st.OnAccess(core.Access{Proc: 1, Kind: core.Read, Clock: clk.Copy()}, 0, vclock.Masked{}); rep != nil {
			t.Fatal("sequential reads race-free")
		}
	}
	if st.StorageBytes() != base {
		t.Fatal("same-epoch reads must not inflate")
	}
}

func TestDetectorNames(t *testing.T) {
	if NewSingleClock().Name() != "single-clock" || NewLockset().Name() != "lockset" || NewEpoch().Name() != "epoch" {
		t.Fatal("names changed — tables depend on them")
	}
}
