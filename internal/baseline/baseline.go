package baseline

import (
	"dsmrace/internal/core"
	"dsmrace/internal/vclock"
)

// SingleClock is the paper's detector with the write-clock refinement
// removed: one general-purpose clock per area, used for both read and write
// checks. It is sound but reports concurrent read-only accesses as races —
// the false positives §IV-D says the W clock eliminates.
type SingleClock struct {
	// TickHomeOnWrite mirrors core.VWDetector.
	TickHomeOnWrite bool
}

// NewSingleClock returns the single-clock baseline configured like the
// paper's detector.
func NewSingleClock() *SingleClock { return &SingleClock{TickHomeOnWrite: true} }

// Name implements core.Detector.
func (d *SingleClock) Name() string { return "single-clock" }

// NewAreaState implements core.Detector.
func (d *SingleClock) NewAreaState(n int) core.AreaState {
	return &singleState{det: d, v: vclock.NewMasked(n)}
}

type singleState struct {
	det     *SingleClock
	v       vclock.Masked
	last    core.Access
	hasLast bool
	// lastClock, repClock and priorBuf are state-owned buffers backing the
	// retained last access and the borrowed report fields (see
	// core.AreaState.OnAccess).
	lastClock  vclock.Masked
	repClock   vclock.VC
	priorBuf   core.Access
	priorClock vclock.VC
}

func (s *singleState) OnAccess(acc core.Access, home int, absorb vclock.Masked) (*core.Report, vclock.Masked) {
	var rep *core.Report
	in := vclock.Masked{V: acc.Clock, M: acc.ClockNZ}
	// Compare-then-fold, as in the vw detector: the pre-merge snapshot a
	// report must show is only taken on the racing path, and a covering
	// access folds in as a block copy.
	ord := in.Compare(s.v)
	if ord == vclock.Concurrent {
		s.repClock = s.v.V.CopyInto(s.repClock)
		rep = &core.Report{
			Detector:    s.det.Name(),
			Area:        acc.Area,
			Current:     acc,
			StoredClock: s.repClock,
			Time:        acc.Time,
		}
		if s.hasLast {
			s.priorClock = s.last.Clock.CopyInto(s.priorClock)
			s.priorBuf = s.last
			s.priorBuf.Clock = s.priorClock
			s.priorBuf.ClockNZ = nil
			rep.Prior = &s.priorBuf
		}
		s.v.Merge(in)
	} else if ord == vclock.After {
		s.v = in.CopyInto(s.v)
	}
	if acc.Kind == core.Write && s.det.TickHomeOnWrite {
		s.v.Tick(home)
	}
	s.lastClock = in.CopyInto(s.lastClock)
	s.last = acc
	s.last.Clock = s.lastClock.V
	s.last.ClockNZ = s.lastClock.M
	s.hasLast = true
	return rep, s.v.CopyInto(absorb)
}

func (s *singleState) StorageBytes() int { return s.v.StorageBytes() }

// Clocks implements core.ClockAccessor: with a single clock, V and W are
// the same clock.
func (s *singleState) Clocks() (v, w vclock.VC) { return s.v.V.Copy(), s.v.V.Copy() }

// SetClocks implements core.ClockAccessor.
func (s *singleState) SetClocks(v, w vclock.VC) {
	if v != nil {
		s.v = vclock.Dense(v).CopyInto(s.v)
	} else if w != nil {
		s.v = vclock.Dense(w).CopyInto(s.v)
	}
}

// Nop detects nothing. Running workloads under Nop gives the cost floor the
// overhead tables (E-T2, E-T4) compare against.
type Nop struct{}

// Name implements core.Detector.
func (Nop) Name() string { return "off" }

// NewAreaState implements core.Detector.
func (Nop) NewAreaState(n int) core.AreaState { return nopState{} }

type nopState struct{}

func (nopState) OnAccess(acc core.Access, home int, absorb vclock.Masked) (*core.Report, vclock.Masked) {
	return nil, vclock.Masked{}
}
func (nopState) StorageBytes() int { return 0 }
