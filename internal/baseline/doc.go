// Package baseline implements the comparator race detectors the evaluation
// tables measure the paper's detector against: a single-clock variant (the
// strawman §IV-D argues against), an Eraser-style lockset detector, a
// FastTrack-style epoch detector (an extension showing what a decade of
// shared-memory race detection buys in this model), and a no-op detector
// establishing the overhead floor.
package baseline
