package baseline

import (
	"dsmrace/internal/core"
	"dsmrace/internal/vclock"
)

// Epoch is a FastTrack-style detector adapted to the DSM model: the write
// history of an area is summarised by a single epoch (the last writer's
// process id and its component value) instead of a full vector clock, and
// the read history stays an epoch until two causally unrelated reads force
// inflation to a full vector. It detects the same write-involved races as
// the paper's detector on this model but stores O(1) bytes per area in the
// common case — the space/precision trade-off row of table E-T10.
type Epoch struct{}

// NewEpoch returns the epoch baseline.
func NewEpoch() *Epoch { return &Epoch{} }

// Name implements core.Detector.
func (Epoch) Name() string { return "epoch" }

// NewAreaState implements core.Detector.
func (Epoch) NewAreaState(n int) core.AreaState {
	return &epochState{n: n}
}

// epoch is (clock value, process) — FastTrack's c@t.
type epoch struct {
	clk  uint64
	proc int
}

// happensBefore reports e ⊑ k: the event the epoch denotes is covered by k.
func (e epoch) happensBefore(k vclock.VC) bool {
	return e.clk <= k[e.proc]
}

func (e epoch) isZero() bool { return e.clk == 0 }

type epochState struct {
	n        int
	w        epoch     // last write epoch
	r        epoch     // last read epoch (when not inflated)
	rv       vclock.VC // inflated read vector, nil until needed
	homeTick uint64    // counts write events at the home, mirroring the VW home tick

	// Last-access context stored by value in state-owned buffers; reports
	// borrow priorBuf (see core.AreaState.OnAccess).
	lastW, lastR       core.Access
	hasLastW, hasLastR bool
	lwClock, lrClock   vclock.VC
	priorBuf           core.Access
	priorClock         vclock.VC
}

// setLast records acc into a last-access slot, copying its clock into the
// slot's state-owned buffer.
func (s *epochState) setLast(slot *core.Access, clk *vclock.VC, has *bool, acc core.Access) {
	*clk = acc.Clock.CopyInto(*clk)
	*slot = acc
	slot.Clock = *clk
	slot.ClockNZ = nil // the caller's mask aliases its scratch; drop it
	*has = true
}

func (s *epochState) OnAccess(acc core.Access, home int, absorb vclock.Masked) (*core.Report, vclock.Masked) {
	var rep *core.Report
	mk := func(prior *core.Access, has bool) *core.Report {
		r := &core.Report{
			Detector: "epoch",
			Area:     acc.Area,
			Current:  acc,
			Time:     acc.Time,
		}
		if has {
			s.priorClock = prior.Clock.CopyInto(s.priorClock)
			s.priorBuf = *prior
			s.priorBuf.Clock = s.priorClock
			s.priorBuf.ClockNZ = nil
			r.Prior = &s.priorBuf
		}
		return r
	}
	switch acc.Kind {
	case core.Write:
		// write-write race: last write not covered by k.
		if !s.w.isZero() && !s.w.happensBefore(acc.Clock) {
			rep = mk(&s.lastW, s.hasLastW)
		}
		// write-read races: any recorded read not covered by k.
		if rep == nil {
			if s.rv != nil {
				if !acc.Clock.Dominates(s.rv) {
					rep = mk(&s.lastR, s.hasLastR)
				}
			} else if !s.r.isZero() && !s.r.happensBefore(acc.Clock) {
				rep = mk(&s.lastR, s.hasLastR)
			}
		}
		s.w = epoch{clk: acc.Clock[acc.Proc], proc: acc.Proc}
		s.r = epoch{}
		s.rv = nil
		s.homeTick++
		s.setLast(&s.lastW, &s.lwClock, &s.hasLastW, acc)
	default: // Read
		if !s.w.isZero() && !s.w.happensBefore(acc.Clock) {
			rep = mk(&s.lastW, s.hasLastW)
		}
		me := epoch{clk: acc.Clock[acc.Proc], proc: acc.Proc}
		switch {
		case s.rv != nil:
			if me.clk > s.rv[me.proc] {
				s.rv[me.proc] = me.clk
			}
		case s.r.isZero() || s.r.happensBefore(acc.Clock):
			// same-epoch fast path: the new read covers the old one.
			s.r = me
		default:
			// two concurrent reads: inflate to a read vector.
			s.rv = vclock.New(s.n)
			s.rv[s.r.proc] = s.r.clk
			if me.clk > s.rv[me.proc] {
				s.rv[me.proc] = me.clk
			}
			s.r = epoch{}
		}
		s.setLast(&s.lastR, &s.lrClock, &s.hasLastR, acc)
	}
	return rep, vclock.Masked{}
}

// StorageBytes: two epochs (12 bytes each modelled) plus the read vector
// when inflated.
func (s *epochState) StorageBytes() int {
	b := 24
	if s.rv != nil {
		b += s.rv.WireSize()
	}
	return b
}
