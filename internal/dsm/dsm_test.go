package dsm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
)

func newCluster(t *testing.T, procs int, det core.Detector, mutate func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Procs: procs,
		Seed:  1,
		RDMA:  rdma.DefaultConfig(det, nil),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0}); err == nil {
		t.Fatal("zero procs must fail")
	}
	c := newCluster(t, 2, nil, nil)
	if _, err := c.RunEach([]Program{nil}); err == nil {
		t.Fatal("wrong program count must fail")
	}
}

func TestSPMDBarrierPhasedExchangeIsRaceFree(t *testing.T) {
	// Each process publishes into its own slot *area*, barrier, then reads
	// its neighbour's slot: classic halo-style phase structure, zero races.
	// (Clocks are per area — §V-A — so each slot must be its own area for
	// the concurrent publishes to be independent.)
	const n = 4
	c := newCluster(t, n, core.NewVWDetector(), nil)
	for i := 0; i < n; i++ {
		c.MustAlloc(fmt.Sprintf("slot%d", i), i, 1)
	}
	res, err := c.Run(func(p *Proc) error {
		if err := p.Put(fmt.Sprintf("slot%d", p.ID()), 0, memory.Word(100+p.ID())); err != nil {
			return err
		}
		p.Barrier()
		nb := (p.ID() + 1) % p.N()
		v, err := p.GetWord(fmt.Sprintf("slot%d", nb), 0)
		if err != nil {
			return err
		}
		if want := memory.Word(100 + nb); v != want {
			return fmt.Errorf("P%d read %d, want %d", p.ID(), v, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("race-free program reported %d races: %v", res.RaceCount, res.Races)
	}
	for i := 0; i < n; i++ {
		if res.Memory[i][0] != memory.Word(100+i) {
			t.Fatalf("final memory at node %d: %v", i, res.Memory[i][0])
		}
	}
}

func TestUnsynchronisedWritesRace(t *testing.T) {
	c := newCluster(t, 2, core.NewVWDetector(), nil)
	c.MustAlloc("x", 0, 1)
	res, err := c.Run(func(p *Proc) error {
		return p.Put("x", 0, memory.Word(p.ID()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("concurrent writes must be reported")
	}
}

func TestBarrierOrdersPhases(t *testing.T) {
	// Same accesses as above but separated by a barrier: no race.
	c := newCluster(t, 2, core.NewVWDetector(), nil)
	c.MustAlloc("x", 0, 1)
	res, err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			if err := p.Put("x", 0, 1); err != nil {
				return err
			}
		}
		p.Barrier()
		if p.ID() == 1 {
			return p.Put("x", 0, 2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("barrier-ordered writes reported %d races: %v", res.RaceCount, res.Races)
	}
	if res.Memory[0][0] != 2 {
		t.Fatalf("final x = %d, want 2", res.Memory[0][0])
	}
}

func TestLockProtectedIncrementsAreRaceFreeAndCorrect(t *testing.T) {
	const n, iters = 3, 5
	c := newCluster(t, n, core.NewVWDetector(), nil)
	c.MustAlloc("ctr", 0, 1)
	res, err := c.Run(func(p *Proc) error {
		for i := 0; i < iters; i++ {
			if err := p.Lock("ctr"); err != nil {
				return err
			}
			v, err := p.GetWord("ctr", 0)
			if err != nil {
				return err
			}
			if err := p.Put("ctr", 0, v+1); err != nil {
				return err
			}
			if err := p.Unlock("ctr"); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("lock-disciplined increments reported %d races: %v", res.RaceCount, res.Races)
	}
	if got := res.Memory[0][0]; got != n*iters {
		t.Fatalf("counter = %d, want %d (mutual exclusion broken)", got, n*iters)
	}
}

func TestUnlockWithoutLockFails(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	c.MustAlloc("x", 0, 1)
	res, err := c.Run(func(p *Proc) error { return p.Unlock("x") })
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstError() == nil {
		t.Fatal("unlock without lock must error")
	}
}

func TestBenignMasterWorkerSignalsButCompletes(t *testing.T) {
	// §IV-D: master-worker result delivery races on purpose; the detector
	// must signal and the program must still complete correctly (E-T5).
	const n = 4
	c := newCluster(t, n, core.NewVWDetector(), nil)
	c.MustAlloc("results", 0, 1) // all workers add into one cell
	res, err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Barrier() // wait for workers
			v, err := p.GetWord("results", 0)
			if err != nil {
				return err
			}
			if v != 1+2+3 {
				return fmt.Errorf("master read %d, want 6", v)
			}
			return nil
		}
		if _, err := p.FetchAdd("results", 0, memory.Word(p.ID())); err != nil {
			return err
		}
		p.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.RaceCount == 0 {
		t.Fatal("worker result race should be signalled")
	}
}

func TestDetectionOffReportsNothing(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	c.MustAlloc("x", 0, 1)
	res, err := c.Run(func(p *Proc) error { return p.Put("x", 0, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 || len(res.Races) != 0 {
		t.Fatal("no detector, no reports")
	}
	if res.StorageBytes != 0 {
		t.Fatalf("no detector, no clock storage: %d", res.StorageBytes)
	}
}

func TestPrivateMemoryIsolation(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	res, err := c.Run(func(p *Proc) error {
		if err := p.LocalWrite(0, memory.Word(p.ID()+7)); err != nil {
			return err
		}
		v, err := p.LocalRead(0, 1)
		if err != nil {
			return err
		}
		if v[0] != memory.Word(p.ID()+7) {
			return fmt.Errorf("private readback: %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestNilProgramNodeStillServesMemory(t *testing.T) {
	c := newCluster(t, 3, nil, nil)
	c.MustAlloc("x", 2, 4) // homed on the process-less node
	progs := []Program{
		func(p *Proc) error {
			if err := p.Put("x", 0, 11, 22); err != nil {
				return err
			}
			v, err := p.Get("x", 0, 2)
			if err != nil {
				return err
			}
			if v[0] != 11 || v[1] != 22 {
				return fmt.Errorf("got %v", v)
			}
			return nil
		},
		nil,
		nil,
	}
	res, err := c.RunEach(progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	if _, err := c.Run(func(p *Proc) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(func(p *Proc) error { return nil }); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestMustVariantsPanicBecomesRunError(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	_, err := c.Run(func(p *Proc) error {
		p.MustPut("nonexistent", 0, 1)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "unknown area") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func(seed int64) (sim.Time, int, uint64) {
		c := newCluster(t, 4, core.NewVWDetector(), func(cfg *Config) { cfg.Seed = seed })
		c.MustAlloc("x", 0, 8)
		res, err := c.Run(func(p *Proc) error {
			for i := 0; i < 10; i++ {
				if err := p.Put("x", p.Rand().Intn(8), memory.Word(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration, res.RaceCount, res.NetStats.TotalMsgs
	}
	d1, r1, m1 := run(42)
	d2, r2, m2 := run(42)
	if d1 != d2 || r1 != r2 || m1 != m2 {
		t.Fatalf("same seed diverged: (%v,%d,%d) vs (%v,%d,%d)", d1, r1, m1, d2, r2, m2)
	}
}

func TestReduceOneSidedMatchesCollective(t *testing.T) {
	const n = 4
	// One-sided: only P0 acts, nobody else participates (§V-B).
	c := newCluster(t, n, nil, nil)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("part%d", i)
		c.MustAlloc(names[i], i, 2)
	}
	progs := make([]Program, n)
	progs[0] = func(p *Proc) error {
		// The parts were pre-initialised below; reduce without any helper.
		got, err := p.ReduceOneSided(names, OpSum)
		if err != nil {
			return err
		}
		// Each node i holds {i, i+8}: sum = (0+1+2+3) + (8+9+10+11) = 44.
		if got != 44 {
			return fmt.Errorf("one-sided sum = %d, want 44", got)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		c.Space().Node(i).WritePublic(0, []memory.Word{memory.Word(i), memory.Word(i + 8)})
	}
	res, err := c.RunEach(progs)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}

	// Collective: everyone participates, same mathematical result.
	c2 := newCluster(t, n, nil, nil)
	c2.MustAlloc("scratch", 0, n+1)
	res2, err := c2.Run(func(p *Proc) error {
		got, err := p.ReduceCollective("scratch", memory.Word(p.ID()*10), OpSum, 0)
		if err != nil {
			return err
		}
		if got != 0+10+20+30 {
			return fmt.Errorf("collective sum = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.FirstError(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   ReduceOp
		want memory.Word
	}{
		{OpSum, 6}, {OpMax, 3}, {OpMin, 1}, {OpProd, 6},
	}
	for _, tc := range cases {
		acc := memory.Word(1)
		for _, v := range []memory.Word{2, 3} {
			acc = tc.op.Apply(acc, v)
		}
		if acc != tc.want {
			t.Errorf("%v fold = %d, want %d", tc.op, acc, tc.want)
		}
		if tc.op.String() == "" {
			t.Errorf("%d has no name", tc.op)
		}
	}
}

func TestBroadcast(t *testing.T) {
	const n = 3
	c := newCluster(t, n, core.NewVWDetector(), nil)
	c.MustAlloc("bcast", 1, 1)
	res, err := c.Run(func(p *Proc) error {
		v, err := p.Broadcast("bcast", 99, 1)
		if err != nil {
			return err
		}
		if v != 99 {
			return fmt.Errorf("P%d got %d", p.ID(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if res.RaceCount != 0 {
		t.Fatalf("broadcast raced: %v", res.Races)
	}
}

func TestOneSidedReduceMessageProfile(t *testing.T) {
	// E-T7's shape: one-sided reduce is 2 messages per remote part (get
	// req/reply) and zero involvement of other processes.
	const n = 4
	c := newCluster(t, n, nil, nil)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("part%d", i)
		c.MustAlloc(names[i], i, 1)
	}
	progs := make([]Program, n)
	progs[0] = func(p *Proc) error {
		_, err := p.ReduceOneSided(names, OpSum)
		return err
	}
	res, err := c.RunEach(progs)
	if err != nil {
		t.Fatal(err)
	}
	// 4 gets: 4 requests + 4 replies (one is loopback but still counted).
	if res.NetStats.TotalMsgs != 8 {
		t.Fatalf("one-sided reduce used %d msgs, want 8", res.NetStats.TotalMsgs)
	}
}

func TestSelfRacingProcessNeverReports(t *testing.T) {
	// A single process doing arbitrary put/get sequences is always ordered
	// by program order: zero reports expected (property-style sweep).
	for seed := int64(0); seed < 5; seed++ {
		c := newCluster(t, 1, core.NewVWDetector(), func(cfg *Config) { cfg.Seed = seed })
		c.MustAlloc("x", 0, 16)
		res, err := c.Run(func(p *Proc) error {
			for i := 0; i < 40; i++ {
				off := p.Rand().Intn(16)
				if p.Rand().Intn(2) == 0 {
					if err := p.Put("x", off, memory.Word(i)); err != nil {
						return err
					}
				} else if _, err := p.GetWord("x", off); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.RaceCount != 0 {
			t.Fatalf("seed %d: single process raced with itself: %v", seed, res.Races)
		}
	}
}

func TestErrorsSurfaceInResult(t *testing.T) {
	c := newCluster(t, 2, nil, nil)
	c.MustAlloc("x", 0, 1)
	sentinel := errors.New("boom")
	res, err := c.RunEach([]Program{
		func(p *Proc) error { return sentinel },
		func(p *Proc) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.Errors[0], sentinel) || res.Errors[1] != nil {
		t.Fatalf("errors = %v", res.Errors)
	}
	if !errors.Is(res.FirstError(), sentinel) {
		t.Fatal("FirstError")
	}
}

func TestHeldLocksTracking(t *testing.T) {
	c := newCluster(t, 1, nil, nil)
	c.MustAlloc("a", 0, 1)
	c.MustAlloc("b", 0, 1)
	res, err := c.Run(func(p *Proc) error {
		p.MustLock("b")
		p.MustLock("a")
		if got := p.HeldLocks(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
			return fmt.Errorf("held = %v", got)
		}
		p.MustUnlock("b")
		if got := p.HeldLocks(); len(got) != 1 || got[0] != 0 {
			return fmt.Errorf("after unlock: %v", got)
		}
		p.MustUnlock("a")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimePoolBalance runs a full runtime workout — user locks with
// clock-carrying unlocks, barriers, collectives, puts/gets/atomics — under
// both coherence protocols and asserts the transport's pool-ownership
// invariant: everything grabbed was released by the end of the run.
func TestRuntimePoolBalance(t *testing.T) {
	for _, coh := range []string{"write-update", "write-invalidate"} {
		coh := coh
		t.Run(coh, func(t *testing.T) {
			cp, err := coherence.FromName(coh)
			if err != nil {
				t.Fatal(err)
			}
			cfg := rdma.DefaultConfig(core.NewVWDetector(), nil)
			cfg.Coherence = cp
			c, err := New(Config{Procs: 4, Seed: 3, RDMA: cfg})
			if err != nil {
				t.Fatal(err)
			}
			c.MustAlloc("x", 0, 8)
			c.MustAlloc("s", 1, 8)
			res, err := c.Run(func(p *Proc) error {
				for i := 0; i < 10; i++ {
					p.MustLock("x")
					p.MustPut("x", p.ID(), memory.Word(i))
					p.MustGet("x", 0, 4)
					p.MustUnlock("x")
					p.MustFetchAdd("x", 4, 1)
				}
				p.Barrier()
				if _, err := p.ReduceCollective("s", memory.Word(p.ID()), OpSum, 1); err != nil {
					return err
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if ferr := res.FirstError(); ferr != nil {
				t.Fatal(ferr)
			}
			if got := c.System().PoolBalance(); got != (rdma.PoolBalance{}) {
				t.Errorf("pool balance after a clean runtime run = %+v, want all zero", got)
			}
		})
	}
}
