package dsm

import (
	"fmt"

	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/trace"
	"dsmrace/internal/vclock"
)

// ---- Barrier: a clock-merging global synchronisation point. All running
// processes must call Barrier the same number of times. The coordinator
// lives on node 0's NIC; arrivals carry each process's clock and releases
// carry the merge, so the barrier is a full happens-before exchange (which
// is what makes barrier-phased programs race-free under the detector). ----

type barrierArrive struct {
	proc  int
	epoch int
	clock vclock.VC
	// obs is the arriver's causal observation clock (fresh copy; nil unless
	// causal coherence) — the release half of the barrier's causal edge.
	obs vclock.VC
}

type barrierRelease struct {
	proc  int
	clock vclock.VC
	// obs is the merge of every participant's observation clock (fresh copy
	// per release; nil unless causal coherence).
	obs vclock.VC
}

type barrierCoord struct {
	c      *Cluster
	epochs map[int][]*barrierArrive
}

func (b *barrierCoord) arrive(a *barrierArrive) {
	if b.epochs == nil {
		b.epochs = make(map[int][]*barrierArrive)
	}
	b.epochs[a.epoch] = append(b.epochs[a.epoch], a)
	if len(b.epochs[a.epoch]) < len(b.c.procs) {
		return
	}
	arrivals := b.epochs[a.epoch]
	delete(b.epochs, a.epoch)
	merged := vclock.New(b.c.cfg.Procs)
	var mergedObs vclock.VC
	for _, ar := range arrivals {
		merged.Merge(ar.clock)
		if ar.obs != nil {
			if mergedObs == nil {
				mergedObs = ar.obs // fresh copy shipped in the arrival; adopt it
			} else {
				mergedObs.Merge(ar.obs)
			}
		}
	}
	now := b.c.kernelFor(0).Now()
	for _, ar := range arrivals {
		// Record the barrier at the merge instant so the verifier sees all
		// participants' barrier events before any post-barrier access.
		if b.c.rec != nil {
			b.c.rec.Append(trace.Event{Kind: trace.EvBarrier, Proc: ar.proc, Epoch: a.epoch, Time: now})
		}
		size := network.HeaderBytes + merged.WireSize()
		var obs vclock.VC
		if mergedObs != nil {
			obs = mergedObs.Copy()
			size += obs.WireSize()
		}
		b.c.sys.NIC(0).SendUser(network.NodeID(ar.proc), network.KindBarrier,
			size, &barrierRelease{proc: ar.proc, clock: merged.Copy(), obs: obs})
	}
}

// Barrier blocks until every running process has entered the same barrier
// epoch, then resumes all of them with merged clocks.
func (p *Proc) Barrier() {
	p.epoch++
	p.clock.Tick(p.id)
	p.barrierDone = false
	obs := p.c.sys.NIC(p.id).CausalObs()
	size := network.HeaderBytes + p.clock.V.WireSize()
	if obs != nil {
		size += obs.WireSize()
	}
	p.c.sys.NIC(p.id).SendUser(0, network.KindBarrier, size,
		&barrierArrive{proc: p.id, epoch: p.epoch, clock: p.clock.V.Copy(), obs: obs})
	for !p.barrierDone {
		p.sp.Park(fmt.Sprintf("barrier %d", p.epoch))
	}
	// The merged barrier clock has contributions from every process: merge
	// it densely (the mask saturates, as it must).
	p.clock.Merge(vclock.Dense(p.barrierClock))
}

func (p *Proc) barrierRelease(clk, obs vclock.VC) {
	// The release runs in this node's own handler context, so the causal
	// observation merge happens where the protocol state lives.
	p.c.sys.NIC(p.id).CausalMergeObs(obs)
	p.barrierClock = clk
	p.barrierDone = true
	p.sp.Ready()
}

// ReduceOp names a reduction operator.
type ReduceOp int

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
	OpProd
)

// String returns the operator name.
func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpProd:
		return "prod"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Apply folds b into a.
func (o ReduceOp) Apply(a, b memory.Word) memory.Word {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpProd:
		return a * b
	default:
		panic("dsm: unknown reduce op")
	}
}

// ReduceOneSided is the paper's §V-B future-work operation, implemented: a
// non-collective global reduction. The caller fetches every named area's
// contents with one-sided gets and folds them locally — no other process
// participates or is even aware.
func (p *Proc) ReduceOneSided(areaNames []string, op ReduceOp) (memory.Word, error) {
	var acc memory.Word
	first := true
	for _, name := range areaNames {
		a, err := p.Area(name)
		if err != nil {
			return 0, err
		}
		data, err := p.Get(name, 0, a.Len)
		if err != nil {
			return 0, err
		}
		for _, w := range data {
			if first {
				acc = w
				first = false
			} else {
				acc = op.Apply(acc, w)
			}
		}
	}
	if first {
		return 0, fmt.Errorf("dsm: one-sided reduce over no data")
	}
	return acc, nil
}

// ReduceCollective is the conventional counterpart every process must call:
// each contributes value into its slot of the scratch area (which must hold
// at least N()+1 words), the root folds and publishes, everyone reads the
// result. Costs two barriers; contrast with ReduceOneSided in E-T7.
func (p *Proc) ReduceCollective(scratch string, value memory.Word, op ReduceOp, root int) (memory.Word, error) {
	a, err := p.Area(scratch)
	if err != nil {
		return 0, err
	}
	if a.Len < p.N()+1 {
		return 0, fmt.Errorf("dsm: scratch %q needs %d words, has %d", scratch, p.N()+1, a.Len)
	}
	if err := p.Put(scratch, p.id, value); err != nil {
		return 0, err
	}
	p.Barrier()
	if p.id == root {
		vals, err := p.Get(scratch, 0, p.N())
		if err != nil {
			return 0, err
		}
		acc := vals[0]
		for _, v := range vals[1:] {
			acc = op.Apply(acc, v)
		}
		if err := p.Put(scratch, p.N(), acc); err != nil {
			return 0, err
		}
	}
	p.Barrier()
	return p.GetWord(scratch, p.N())
}

// Broadcast publishes value from root through the named one-word-or-larger
// area; every process returns the broadcast value. All processes must call
// it (it contains a barrier).
func (p *Proc) Broadcast(name string, value memory.Word, root int) (memory.Word, error) {
	if p.id == root {
		if err := p.Put(name, 0, value); err != nil {
			return 0, err
		}
	}
	p.Barrier()
	return p.GetWord(name, 0)
}

// ---- Non-collective one-sided global operations (§V-B): the caller acts
// on data spread across many nodes with pure one-sided traffic; no other
// process participates or is aware. ----

// BroadcastOneSided pushes value into word 0 of every named area — a
// one-sided broadcast the targets never notice.
func (p *Proc) BroadcastOneSided(areaNames []string, value memory.Word) error {
	for _, name := range areaNames {
		if err := p.Put(name, 0, value); err != nil {
			return err
		}
	}
	return nil
}

// GatherOneSided fetches word 0 of every named area, in order.
func (p *Proc) GatherOneSided(areaNames []string) ([]memory.Word, error) {
	out := make([]memory.Word, 0, len(areaNames))
	for _, name := range areaNames {
		v, err := p.GetWord(name, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ScatterOneSided writes vals[i] into word 0 of areaNames[i].
func (p *Proc) ScatterOneSided(areaNames []string, vals []memory.Word) error {
	if len(vals) != len(areaNames) {
		return fmt.Errorf("dsm: scatter arity: %d values for %d areas", len(vals), len(areaNames))
	}
	for i, name := range areaNames {
		if err := p.Put(name, 0, vals[i]); err != nil {
			return err
		}
	}
	return nil
}
