package dsm

import (
	"errors"
	"fmt"

	"dsmrace/internal/coherence"
	"dsmrace/internal/core"
	"dsmrace/internal/fault"
	"dsmrace/internal/memory"
	"dsmrace/internal/network"
	"dsmrace/internal/rdma"
	"dsmrace/internal/sim"
	"dsmrace/internal/trace"
	"dsmrace/internal/vclock"
)

// Config describes a cluster. The zero value is not runnable; use New to
// apply defaults.
type Config struct {
	// Procs is the number of processes (= nodes; one process per node).
	Procs int
	// PrivateWords and PublicWords size each node's segments (defaults 64Ki).
	PrivateWords, PublicWords int
	// Seed drives all simulation randomness.
	Seed int64
	// Latency is the interconnect model (default network.DefaultIB).
	Latency network.LatencyModel
	// RDMA configures the NIC layer, including the detector. Zero value
	// means rdma.DefaultConfig(nil, nil) — detection off.
	RDMA rdma.Config
	// Trace enables trace recording for offline verification.
	Trace bool
	// Label tags the run in traces and reports.
	Label string
	// MaxEvents and MaxTime bound the simulation (runaway guards).
	MaxEvents uint64
	MaxTime   sim.Time
	// Kernels requests partitioned multi-kernel execution: the cluster's
	// nodes are split across this many cooperating kernel shards that run
	// in parallel under conservative time windows, with fingerprints
	// bit-identical to the single-kernel run (see internal/sim.MultiKernel).
	// 0 or 1 selects the single kernel. The request degrades back to one
	// kernel — recorded in Result.Kernels/KernelNote — when the run cannot
	// be parallelised deterministically: serial-only programs, tracing or
	// observers (both need the single kernel's apply order across nodes),
	// or a latency model without a provable lookahead.
	Kernels int
	// Partition names the node→shard policy: "blocks" (locality-aware
	// contiguous ranges, the default) or "round-robin".
	Partition string
	// WindowExtension caps adaptive window extension on a Kernels>1 run:
	// 0 keeps the default cap, 1 disables extension (every window is one
	// lookahead), larger values allow windows of up to that many
	// lookahead-sized sub-rounds while no cross-shard traffic flows.
	// Deterministic at any setting; fingerprints never depend on it.
	WindowExtension int
	// PipelinedReplay selects whether quiet-window barrier replays overlap
	// the next window's execution: 0 auto (on whenever shard goroutines
	// run), 1 forced on, -1 forced off. Deterministic at any setting.
	PipelinedReplay int
	// LocalityGroup hints the affinity-group size for the blocks policy:
	// nodes [g*group, (g+1)*group) communicate mostly among themselves
	// (e.g. MigratoryGroups rings), so blocks are sized to whole groups and
	// their traffic never crosses a window barrier.
	LocalityGroup int
	// SerialOnly declares that the programs draw from the shared simulation
	// RNG (Proc.Rand) or share Go state across processes mid-run. Such a
	// run's draw order is the serial interleaving itself, so it cannot be
	// parallelised deterministically; Kernels degrades to 1. Workloads set
	// this via workload.Workload.SharedRand.
	SerialOnly bool
	// Chooser, when non-nil, resolves the kernel's explicit choice points
	// (sim.Config.Chooser) — the hook internal/mcheck drives to enumerate
	// delivery schedules systematically instead of sampling one from the
	// seed. Choice points are defined against the single kernel's event
	// order, so Kernels degrades to 1.
	Chooser func(n int) int
	// MetaChooser, when non-nil, resolves metadata-carrying choice points
	// (sim.Config.MetaChooser): like Chooser, but each choice arrives with
	// the delivery's (link, kind, size, area, timing) metadata so an
	// exploration driver can reason about independence without replay.
	// Single-kernel only, like Chooser.
	MetaChooser func(n int, m sim.ChoiceMeta) int
	// Faults, when non-nil, threads the deterministic fault-injection layer
	// (internal/fault) through the run: scheduled link cuts/heals, node
	// crash/restart with re-homing, probabilistic message loss, and
	// deadline/retry hardening on every initiator operation. A non-nil but
	// empty schedule enables the layer without perturbing the run — the
	// differential suite proves such a run bit-identical to Faults == nil.
	// Incompatible with LegacyInitiator and HomeSlotBatch.
	Faults *fault.Schedule
}

// Program is one process's code. It runs on a simulated process and may
// block in the Proc API. A returned error is reported in Result.Errors.
type Program func(p *Proc) error

// Result summarises a completed run.
type Result struct {
	// Races are the signalled race reports, in detection order (§IV-D:
	// signalled, never fatal).
	Races []core.Report
	// RaceCount includes reports dropped past the collector limit.
	RaceCount int
	// NetStats are the network traffic counters.
	NetStats network.Stats
	// Coherence counts protocol-level replica events (cache hits, fetches,
	// invalidations) — zero under write-update, where no replicas exist.
	Coherence coherence.Stats
	// Memory is each node's final public segment.
	Memory [][]memory.Word
	// Trace is the recorded event stream (nil unless Config.Trace).
	Trace *trace.Trace
	// Duration is the virtual time the run took.
	Duration sim.Time
	// Events is the number of simulation events executed.
	Events uint64
	// Kernels is the number of kernel shards the run actually executed on
	// (1 when a multi-kernel request degraded; see KernelNote).
	Kernels int
	// KernelNote explains a degraded Kernels request ("" when none).
	KernelNote string
	// WindowStats reports what the multi-kernel window/barrier machinery
	// did (nil on a single-kernel run): windows, adaptive extensions,
	// pipelined replays, merged records, and barrier-vs-window wall time.
	WindowStats *sim.MultiKernelStats
	// StorageBytes is the detection metadata footprint (E-T1).
	StorageBytes int
	// Errors holds each program's returned error (index = process id).
	Errors []error
}

// FirstError returns the first non-nil program error, or nil.
func (r *Result) FirstError() error {
	for _, e := range r.Errors {
		if e != nil {
			return e
		}
	}
	return nil
}

// Cluster is a configured system ready to run one program set. Allocate
// shared variables with Alloc before calling Run; a Cluster is single-shot.
type Cluster struct {
	cfg        Config
	kernel     *sim.Kernel // single-kernel mode (nil when mk is set)
	mk         *sim.MultiKernel
	shardOf    []int
	kernelNote string
	net        *network.Network
	space      *memory.Space
	sys        *rdma.System
	col        *core.Collector
	rec        *trace.Recorder
	procs      []*Proc
	bar        *barrierCoord
	ran        bool
	// look is the conservative-window lookahead of the latency model,
	// computed at EVERY kernel count (including one) when faults are
	// configured: it floors the failover delay, and the flip instant must
	// match across kernel counts for fingerprints to agree.
	look sim.Time
	inj  *fault.Injector
}

// New builds a cluster from cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.Procs <= 0 {
		return nil, errors.New("dsm: Procs must be positive")
	}
	if cfg.PrivateWords <= 0 {
		cfg.PrivateWords = 1 << 16
	}
	if cfg.PublicWords <= 0 {
		cfg.PublicWords = 1 << 16
	}
	if cfg.Latency == nil {
		cfg.Latency = network.DefaultIB()
	}
	kcount := cfg.Kernels
	if kcount < 1 {
		kcount = 1
	}
	if kcount > cfg.Procs {
		kcount = cfg.Procs
	}
	note := ""
	var look sim.Time
	deferAll := false
	if kcount > 1 {
		switch {
		case cfg.SerialOnly:
			kcount, note = 1, "serial-only programs (shared RNG draws order the run)"
		case cfg.Trace:
			kcount, note = 1, "tracing needs the single kernel's apply order"
		case cfg.RDMA.Observer != nil:
			kcount, note = 1, "observers need the single kernel's apply order"
		case cfg.RDMA.LegacyInitiator:
			kcount, note = 1, "the legacy initiator shim is single-kernel only"
		case cfg.Chooser != nil || cfg.MetaChooser != nil:
			kcount, note = 1, "the schedule chooser is single-kernel only"
		default:
			var ok bool
			look, deferAll, ok = network.ParallelLookahead(cfg.Latency, cfg.Procs)
			if !ok {
				kcount, note = 1, "latency model admits no conservative lookahead"
			}
		}
	}
	if cfg.Faults != nil {
		if cfg.RDMA.LegacyInitiator {
			return nil, errors.New("dsm: Faults is not supported with RDMA.LegacyInitiator")
		}
		if cfg.RDMA.HomeSlotBatch {
			return nil, errors.New("dsm: Faults is not supported with RDMA.HomeSlotBatch")
		}
		if err := cfg.Faults.Validate(cfg.Procs); err != nil {
			return nil, fmt.Errorf("dsm: %w", err)
		}
		if look == 0 {
			// Single kernel (or a degraded request): compute the lookahead
			// anyway — the failover-delay clamp must resolve to the same
			// value at every kernel count, or the re-homing instant (and
			// with it every fingerprint) would differ across K.
			if l, _, ok := network.ParallelLookahead(cfg.Latency, cfg.Procs); ok {
				look = l
			}
		}
	}
	c := &Cluster{
		cfg:        cfg,
		kernelNote: note,
		look:       look,
		space:      memory.NewSpace(cfg.Procs, cfg.PrivateWords, cfg.PublicWords),
	}
	scfg := sim.Config{Seed: cfg.Seed, MaxEvents: cfg.MaxEvents, MaxTime: cfg.MaxTime, Chooser: cfg.Chooser, MetaChooser: cfg.MetaChooser}
	if kcount > 1 {
		policy, err := sim.PartitionPolicyFromName(cfg.Partition)
		if err != nil {
			return nil, fmt.Errorf("dsm: %w", err)
		}
		c.mk = sim.NewMultiKernel(scfg, kcount, look)
		if cfg.WindowExtension != 0 {
			c.mk.SetAdaptiveWindow(cfg.WindowExtension)
		}
		if cfg.PipelinedReplay != 0 {
			c.mk.SetPipelinedReplay(cfg.PipelinedReplay)
		}
		c.shardOf = sim.PartitionNodes(cfg.Procs, kcount, policy, cfg.LocalityGroup)
		c.net = network.NewSharded(c.mk, c.shardOf, cfg.Procs, cfg.Latency, deferAll)
	} else {
		c.kernel = sim.NewKernel(scfg)
		c.net = network.New(c.kernel, cfg.Procs, cfg.Latency)
	}
	if cfg.RDMA.Detector != nil {
		if cfg.RDMA.Collector == nil {
			cfg.RDMA.Collector = &core.Collector{}
		}
		c.col = cfg.RDMA.Collector
		c.cfg.RDMA = cfg.RDMA
	}
	return c, nil
}

// Kernel exposes the simulation kernel (tests and advanced harnesses) —
// nil on a multi-kernel cluster, where no single kernel exists; see
// MultiKernel and kernelFor.
func (c *Cluster) Kernel() *sim.Kernel { return c.kernel }

// MultiKernel exposes the sharded kernel of a Kernels>1 cluster (nil on a
// single kernel).
func (c *Cluster) MultiKernel() *sim.MultiKernel { return c.mk }

// KernelsEffective returns the shard count the cluster will actually run
// on, with the degrade note ("" when the request held).
func (c *Cluster) KernelsEffective() (int, string) {
	if c.mk != nil {
		return c.mk.Shards(), ""
	}
	return 1, c.kernelNote
}

// ShardOf returns the kernel shard that owns node id (0 on a single
// kernel) — placement introspection for partition-policy tests and tools.
func (c *Cluster) ShardOf(id int) int {
	if c.shardOf == nil {
		return 0
	}
	return c.shardOf[id]
}

// kernelFor returns the kernel that executes node id's events.
func (c *Cluster) kernelFor(id int) *sim.Kernel {
	if c.mk != nil {
		return c.mk.Shard(c.shardOf[id])
	}
	return c.kernel
}

// Space exposes the global address space.
func (c *Cluster) Space() *memory.Space { return c.space }

// Alloc registers a shared variable before the run (the compile-time
// placement step of §III-A).
func (c *Cluster) Alloc(name string, home, words int) error {
	_, err := c.space.Alloc(name, home, words)
	return err
}

// AllocAuto registers a shared variable with automatic placement.
func (c *Cluster) AllocAuto(name string, words int, p memory.Placement) error {
	_, err := c.space.AllocAuto(name, words, p)
	return err
}

// MustAlloc is Alloc that panics on error (setup-time convenience).
func (c *Cluster) MustAlloc(name string, home, words int) {
	if err := c.Alloc(name, home, words); err != nil {
		panic(err)
	}
}

// Run executes the same program on every process (SPMD).
func (c *Cluster) Run(prog Program) (*Result, error) {
	progs := make([]Program, c.cfg.Procs)
	for i := range progs {
		progs[i] = prog
	}
	return c.RunEach(progs)
}

// RunEach executes programs[i] on process i. len(programs) must equal
// Config.Procs; nil entries mean "no program on that node" (its memory is
// still remotely accessible — OS bypass).
func (c *Cluster) RunEach(programs []Program) (*Result, error) {
	if c.ran {
		return nil, errors.New("dsm: cluster already ran; build a new one")
	}
	if len(programs) != c.cfg.Procs {
		return nil, fmt.Errorf("dsm: %d programs for %d processes", len(programs), c.cfg.Procs)
	}
	c.ran = true

	rcfg := c.cfg.RDMA
	if rcfg == (rdma.Config{}) {
		// Zero value: take the defaults with detection off.
		rcfg = rdma.DefaultConfig(nil, nil)
	}
	if c.cfg.Trace {
		c.rec = trace.NewRecorder(c.cfg.Procs, c.cfg.Seed, c.cfg.Label)
		rcfg.Observer = recorderObserver{rec: c.rec}
	}
	c.sys = rdma.NewSystem(c.net, c.space, rcfg)
	c.col = c.sys.Collector()
	c.bar = &barrierCoord{c: c}
	for i := 0; i < c.cfg.Procs; i++ {
		c.sys.NIC(i).UserHandler = c.userHandler
	}
	if c.cfg.Faults != nil {
		// Thread the fault layer and pre-file the schedule BEFORE spawning:
		// setup-phase events sort before same-instant program events, so a
		// fault at time T is visible to every program event at T — at any
		// kernel count.
		c.inj = fault.NewInjector(c.cfg.Faults.Resolved(c.look), c.net)
		c.sys.EnableFaults(c.inj)
		c.inj.NodeCrashed = c.nodeCrashed
		c.inj.NodeRestarted = c.nodeRestarted
		c.inj.Arm()
	}

	errs := make([]error, c.cfg.Procs)
	for i := 0; i < c.cfg.Procs; i++ {
		if programs[i] == nil {
			continue
		}
		p := &Proc{
			id:      i,
			c:       c,
			clock:   vclock.NewMasked(c.cfg.Procs),
			literal: rcfg.Protocol == rdma.ProtocolLiteral,
		}
		c.procs = append(c.procs, p)
		prog := programs[i]
		idx := i
		c.kernelFor(i).Spawn(fmt.Sprintf("P%d", i), func(sp *sim.Proc) {
			p.sp = sp
			errs[idx] = prog(p)
		})
	}

	var runErr error
	var dur sim.Time
	var events uint64
	kernels := 1
	if c.mk != nil {
		runErr = c.mk.Run()
		dur, events, kernels = c.mk.Now(), c.mk.Events(), c.mk.Shards()
	} else {
		runErr = c.kernel.Run()
		dur, events = c.kernel.Now(), c.kernel.Events()
	}
	if c.inj != nil {
		// The injector's bookkeeping events replicate per shard; subtract
		// them so Result.Events stays comparable across kernel counts.
		if oh := c.inj.OverheadEvents(); oh < events {
			events -= oh
		} else {
			events = 0
		}
	}
	// MESI M lines silently written can be newer than home memory; write them
	// back so the snapshot reflects every committed write.
	c.sys.FlushDirtyCopies()
	res := &Result{
		NetStats:     c.net.TotalStats(),
		Coherence:    c.sys.CoherenceStats(),
		Memory:       c.space.Snapshot(),
		Duration:     dur,
		Events:       events,
		Kernels:      kernels,
		KernelNote:   c.kernelNote,
		StorageBytes: c.sys.StorageBytes(),
		Errors:       errs,
	}
	if c.mk != nil {
		st := c.mk.Stats()
		res.WindowStats = &st
	}
	if c.col != nil {
		res.Races = c.col.Reports()
		res.RaceCount = c.col.Total()
	}
	if c.rec != nil {
		res.Trace = c.rec.Trace()
	}
	if runErr != nil {
		return res, runErr
	}
	return res, nil
}

// userHandler dispatches application-level messages (barrier protocol).
func (c *Cluster) userHandler(m *network.Message) {
	switch pl := m.Payload.(type) {
	case *barrierArrive:
		c.bar.arrive(pl)
	case *barrierRelease:
		c.procByID(pl.proc).barrierRelease(pl.clock, pl.obs)
	default:
		panic(fmt.Sprintf("dsm: unexpected user payload %T", m.Payload))
	}
}

// nodeCrashed is the injector's owner-shard crash hook: flag the process so
// fault-aware programs can observe the crash (Proc.Crashed) and stop issuing.
func (c *Cluster) nodeCrashed(node int) {
	for _, p := range c.procs {
		if p.id == node {
			p.crashed = true
			return
		}
	}
}

// nodeRestarted brings the process back: the crash flag clears, the restart
// generation ticks (waking AwaitRestart), and the process rejoins with a
// fresh masked clock column — its pre-crash clock died with its volatile
// state, exactly like a real rejoining rank.
func (c *Cluster) nodeRestarted(node int) {
	for _, p := range c.procs {
		if p.id == node {
			p.crashed = false
			p.restarted = true
			p.clock = vclock.NewMasked(c.cfg.Procs)
			return
		}
	}
}

func (c *Cluster) procByID(id int) *Proc {
	for _, p := range c.procs {
		if p.id == id {
			return p
		}
	}
	panic(fmt.Sprintf("dsm: no process %d", id))
}

// recorderObserver adapts a trace.Recorder to the rdma.Observer interface.
type recorderObserver struct{ rec *trace.Recorder }

// Access implements rdma.Observer.
func (o recorderObserver) Access(acc core.Access, area memory.Area, off, count int, at sim.Time) {
	kind := trace.EvGet
	if acc.Kind == core.Write {
		kind = trace.EvPut
	}
	var clk vclock.VC
	if acc.Clock != nil {
		clk = acc.Clock.Copy()
	}
	o.rec.Append(trace.Event{
		Kind: kind, Proc: acc.Proc, Seq: acc.Seq,
		Area: area.ID, Home: area.Home, Off: off, Count: count,
		Time: at, Clock: clk,
	})
}

// LockAcq implements rdma.Observer.
func (o recorderObserver) LockAcq(proc int, area memory.Area, at sim.Time) {
	o.rec.Append(trace.Event{Kind: trace.EvLockAcq, Proc: proc, Area: area.ID, Home: area.Home, Time: at})
}

// LockRel implements rdma.Observer.
func (o recorderObserver) LockRel(proc int, area memory.Area, at sim.Time) {
	o.rec.Append(trace.Event{Kind: trace.EvLockRel, Proc: proc, Area: area.ID, Home: area.Home, Time: at})
}

// Network exposes the simulated interconnect, primarily so tests and
// harnesses can inject link failures. The paper's model assumes a reliable
// network; a cut link therefore manifests as a blocked operation, which the
// kernel surfaces as a deadlock report naming the stuck process.
func (c *Cluster) Network() *network.Network { return c.net }

// System exposes the RDMA layer after Run has wired it (nil before), so
// tests can assert transport-level invariants — pool balance, coherence
// statistics — against full runtime runs with locks, barriers and
// collectives in play.
func (c *Cluster) System() *rdma.System { return c.sys }
