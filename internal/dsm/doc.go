// Package dsm is the distributed-shared-memory runtime of §III: a cluster
// of processes, each mapping a private and a public memory segment, joined
// by a simulated RDMA interconnect. Programs written against Proc's API
// (Put/Get/Lock/Unlock/Barrier/collectives) execute deterministically under
// a seeded discrete-event kernel, with the paper's race detector wired into
// the communication library exactly as §V-B prescribes.
//
// The runtime is coherence-protocol agnostic: Proc.Get/Put route through
// the NIC layer, which serves them under the configured
// internal/coherence.Protocol (single-copy write-update by default,
// directory-based write-invalidate as the alternative). Results carry both
// the network statistics and the protocol's replica statistics, so a
// workload can be compared across protocols without touching its program.
package dsm
