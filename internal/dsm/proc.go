package dsm

import (
	"fmt"
	"math/rand"
	"sort"

	"dsmrace/internal/core"
	"dsmrace/internal/memory"
	"dsmrace/internal/sim"
	"dsmrace/internal/vclock"
)

// Proc is one process's handle onto the cluster: its identity, its vector
// clock (ticked before every operation, update_local_clock), and the
// blocking operation API backed by its NIC.
type Proc struct {
	id    int
	c     *Cluster
	sp    *sim.Proc
	clock vclock.Masked
	seq   uint64
	held  []int // sorted area ids of held user locks
	// lastName/lastArea memoise the most recent name resolution.
	lastName string
	lastArea memory.Area
	// literal records whether the run uses the literal wire protocol, whose
	// one-way clock messages outlive the issuing operation and therefore
	// need fresh access-clock copies; the piggyback protocol lets accesses
	// alias the process clock directly (see newAccess).
	literal bool

	epoch        int
	barrierDone  bool
	barrierClock vclock.VC

	// Fault-layer state (Config.Faults): crashed marks the node down in the
	// current schedule; restarted latches true at the first restart, waking
	// AwaitRestart.
	crashed   bool
	restarted bool
}

// ID returns the process id (also its node id).
func (p *Proc) ID() int { return p.id }

// N returns the number of processes in the cluster.
func (p *Proc) N() int { return p.c.cfg.Procs }

// Now returns the current virtual time.
func (p *Proc) Now() sim.Time { return p.sp.Now() }

// Rand returns the deterministic simulation random source. On a
// multi-kernel cluster the shared source is only drawable by serial-only
// runs (Config.SerialOnly — which forces one kernel), so a draw here under
// Kernels>1 panics with that instruction rather than silently breaking
// determinism.
func (p *Proc) Rand() *rand.Rand { return p.c.kernelFor(p.id).Rand() }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d sim.Time) { p.sp.Sleep(d) }

// Yield lets other ready processes run at the current instant.
func (p *Proc) Yield() { p.sp.Yield() }

// Clock returns a copy of the process's current vector clock.
func (p *Proc) Clock() vclock.VC { return p.clock.V.Copy() }

// Seq returns the per-process operation sequence number of the most recent
// operation.
func (p *Proc) Seq() uint64 { return p.seq }

// Area resolves a shared variable name (compile-time address resolution).
// A one-entry memo captures the dominant pattern — lock, access, unlock on
// the same variable — so two of the three resolutions are a pointer-equal
// string compare instead of a hash-and-probe.
func (p *Proc) Area(name string) (memory.Area, error) {
	if name == p.lastName {
		return p.lastArea, nil
	}
	a, err := p.c.space.Lookup(name)
	if err == nil {
		p.lastName, p.lastArea = name, a
	}
	return a, err
}

// newAccess ticks the local clock and stamps a new access descriptor.
func (p *Proc) newAccess(kind core.AccessKind) core.Access {
	p.seq++
	p.clock.Tick(p.id)
	var locks []int
	if len(p.held) > 0 {
		locks = append(locks, p.held...)
	}
	// Under the piggyback protocol the access clock aliases the process
	// clock with no copy at all: the process is parked for the whole round
	// trip (its clock cannot tick), the home side finishes reading the
	// clock strictly before it sends the reply, and every retainer — the
	// detector's last-access slots, cloned reports, the trace recorder —
	// copies at handling time. The literal protocol ships clocks in
	// one-way messages that outlive the operation, so it snapshots.
	snap := p.clock
	if p.literal {
		snap = p.clock.Copy()
	}
	return core.Access{Proc: p.id, Seq: p.seq, Kind: kind, Clock: snap.V, ClockNZ: snap.M, Locks: locks}
}

// absorb merges a piggybacked reply clock into the process clock and
// returns the buffer to the RDMA system's pool — the operation that handed
// it out is complete and nothing else references it.
func (p *Proc) absorb(clk vclock.Masked) {
	if !clk.IsNil() {
		p.clock.Merge(clk)
		p.c.sys.NIC(p.id).ReleaseClock(clk)
	}
}

// absorbDominant installs a reply clock known to dominate the process's
// current clock, collapsing the merge to a buffer swap. A write ack's
// piggybacked clock qualifies: it is the area clock *after* the home merged
// in the very clock K this process sent — V' = max(V, K) (+ home tick) ≥ K —
// and the process was parked for the whole round trip, so its clock still
// equals K and max(K, V') is V' verbatim. By reply time nothing else
// references either buffer (the pooled reply buffer was detached from its
// resp, and the in-flight access that aliased the process clock completed),
// so the process adopts the reply buffer and recycles its old clock.
func (p *Proc) absorbDominant(clk vclock.Masked) {
	if clk.IsNil() {
		return
	}
	if clk.Len() == p.clock.Len() {
		p.clock, clk = clk, p.clock
	} else {
		p.clock = clk.CopyInto(p.clock)
	}
	p.c.sys.NIC(p.id).ReleaseClock(clk)
}

// Put writes vals into the shared variable name starting at word offset off
// (a one-sided remote write; the home process is not involved).
func (p *Proc) Put(name string, off int, vals ...memory.Word) error {
	a, err := p.Area(name)
	if err != nil {
		return err
	}
	absorb, err := p.c.sys.NIC(p.id).Put(p.sp, a, off, vals, p.newAccess(core.Write))
	p.absorbDominant(absorb)
	return err
}

// Get reads count words from the shared variable name at word offset off.
func (p *Proc) Get(name string, off, count int) ([]memory.Word, error) {
	a, err := p.Area(name)
	if err != nil {
		return nil, err
	}
	data, absorb, err := p.c.sys.NIC(p.id).Get(p.sp, a, off, count, p.newAccess(core.Read))
	p.absorb(absorb)
	return data, err
}

// GetWord reads a single word.
func (p *Proc) GetWord(name string, off int) (memory.Word, error) {
	data, err := p.Get(name, off, 1)
	if err != nil {
		return 0, err
	}
	return data[0], nil
}

// FetchAdd atomically adds delta to a shared word, returning its previous
// value. Counts as a write for detection.
func (p *Proc) FetchAdd(name string, off int, delta memory.Word) (memory.Word, error) {
	a, err := p.Area(name)
	if err != nil {
		return 0, err
	}
	old, absorb, err := p.c.sys.NIC(p.id).FetchAdd(p.sp, a, off, delta, p.newAccess(core.Write))
	p.absorbDominant(absorb)
	return old, err
}

// CompareAndSwap atomically replaces a shared word when it equals expect;
// swapped reports whether the replacement happened.
func (p *Proc) CompareAndSwap(name string, off int, expect, repl memory.Word) (old memory.Word, swapped bool, err error) {
	a, err := p.Area(name)
	if err != nil {
		return 0, false, err
	}
	old, absorb, err := p.c.sys.NIC(p.id).CompareAndSwap(p.sp, a, off, expect, repl, p.newAccess(core.Write))
	p.absorbDominant(absorb)
	return old, err == nil && old == expect, err
}

// Lock acquires the NIC lock of the named area (§III-A: locks guarantee
// exclusive access to a memory area). Locks are granted FIFO and carry the
// previous releaser's clock, creating a happens-before edge.
func (p *Proc) Lock(name string) error {
	a, err := p.Area(name)
	if err != nil {
		return err
	}
	p.clock.Tick(p.id)
	rel, err := p.c.sys.NIC(p.id).LockArea(p.sp, a, p.id)
	if err != nil {
		return err
	}
	p.absorb(rel)
	idx := sort.SearchInts(p.held, int(a.ID))
	if idx == len(p.held) || p.held[idx] != int(a.ID) {
		p.held = append(p.held, 0)
		copy(p.held[idx+1:], p.held[idx:])
		p.held[idx] = int(a.ID)
	}
	return nil
}

// Unlock releases the named area's lock.
func (p *Proc) Unlock(name string) error {
	a, err := p.Area(name)
	if err != nil {
		return err
	}
	idx := sort.SearchInts(p.held, int(a.ID))
	if idx == len(p.held) || p.held[idx] != int(a.ID) {
		return fmt.Errorf("dsm: P%d unlocking %q which it does not hold", p.id, name)
	}
	p.held = append(p.held[:idx], p.held[idx+1:]...)
	p.clock.Tick(p.id)
	// The release clock rides to the home in a pooled buffer; the home's
	// unlock handler adopts that buffer as the lock's release-clock slot
	// (recycling the previous slot buffer) and the next user-level grant
	// hands it onward — it re-enters the pool only after the acquirer
	// absorbs it.
	p.c.sys.NIC(p.id).UnlockArea(a, p.id, p.clock.CopyInto(p.c.sys.NIC(p.id).GrabClock()))
	return nil
}

// HeldLocks returns the area ids of the user locks currently held.
func (p *Proc) HeldLocks() []int { return append([]int(nil), p.held...) }

// Crashed reports whether this node is currently down in the fault schedule
// (always false without Config.Faults). A crashed node's operations fail
// with rdma.ErrUnreachable and its messages are dropped; fault-aware
// programs poll this and stop issuing (or AwaitRestart) when it flips.
func (p *Proc) Crashed() bool { return p.crashed }

// AwaitRestart parks the process until the fault schedule restarts its node.
// If the schedule never restarts it, the process stays parked and the run
// ends with a deadlock report naming it.
func (p *Proc) AwaitRestart() {
	p.sp.Await(&p.restarted, "crashed (await restart)")
}

// LocalWrite stores vals into this process's *private* memory. Remote
// processes can never reach it (Fig. 1).
func (p *Proc) LocalWrite(off int, vals ...memory.Word) error {
	return p.c.space.Node(p.id).WritePrivate(p.id, off, vals)
}

// LocalRead loads count words from this process's private memory.
func (p *Proc) LocalRead(off, count int) ([]memory.Word, error) {
	out := make([]memory.Word, count)
	if err := p.c.space.Node(p.id).ReadPrivate(p.id, off, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ---- Must variants: panic on error; the kernel converts the panic into a
// run error, which suits example programs and workload generators. ----

// MustPut is Put or panic.
func (p *Proc) MustPut(name string, off int, vals ...memory.Word) {
	if err := p.Put(name, off, vals...); err != nil {
		panic(err)
	}
}

// MustGet is Get or panic.
func (p *Proc) MustGet(name string, off, count int) []memory.Word {
	data, err := p.Get(name, off, count)
	if err != nil {
		panic(err)
	}
	return data
}

// MustGetWord is GetWord or panic.
func (p *Proc) MustGetWord(name string, off int) memory.Word {
	w, err := p.GetWord(name, off)
	if err != nil {
		panic(err)
	}
	return w
}

// MustFetchAdd is FetchAdd or panic.
func (p *Proc) MustFetchAdd(name string, off int, delta memory.Word) memory.Word {
	w, err := p.FetchAdd(name, off, delta)
	if err != nil {
		panic(err)
	}
	return w
}

// MustLock is Lock or panic.
func (p *Proc) MustLock(name string) {
	if err := p.Lock(name); err != nil {
		panic(err)
	}
}

// MustUnlock is Unlock or panic.
func (p *Proc) MustUnlock(name string) {
	if err := p.Unlock(name); err != nil {
		panic(err)
	}
}
